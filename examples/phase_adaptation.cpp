/**
 * @file
 * Phase-based hill climbing (Section 5): on a workload whose threads
 * change behavior every few epochs, the BBV phase detector + Markov
 * predictor let the learner re-install previously learned
 * partitionings instead of re-climbing. This example reports phase
 * statistics and compares plain vs phase-based hill climbing.
 *
 *   ./phase_adaptation [workload-name]   (default: mcf-twolf)
 */

#include <cstdio>

#include "harness/runner.hh"
#include "harness/table.hh"
#include "phase/phase_hill.hh"
#include "workload/workloads.hh"

using namespace smthill;

int
main(int argc, char **argv)
{
    // mcf (Low-frequency) and twolf (High-frequency) both vary with
    // time, the situation Section 5 targets.
    const std::string name = argc > 1 ? argv[1] : "mcf-twolf";
    const Workload &workload = workloadByName(name);
    RunConfig rc = benchRunConfig(96);
    auto solo = soloIpcs(workload, rc, 8 * rc.epochSize);

    HillConfig hc;
    hc.epochSize = rc.epochSize;
    hc.metric = PerfMetric::WeightedIpc;

    HillClimbing plain(hc);
    RunResult plain_res = runPolicy(workload, plain, rc);

    PhaseHillClimbing phased(hc);
    RunResult phased_res = runPolicy(workload, phased, rc);

    Table t({"policy", "wipc", "avg-ipc"});
    t.beginRow();
    t.cell(plain.name());
    t.cell(plain_res.metric(PerfMetric::WeightedIpc, solo));
    t.cell(plain_res.metric(PerfMetric::AvgIpc, solo));
    t.beginRow();
    t.cell(phased.name());
    t.cell(phased_res.metric(PerfMetric::WeightedIpc, solo));
    t.cell(phased_res.metric(PerfMetric::AvgIpc, solo));
    t.print();

    std::printf("\nphase statistics (%d epochs):\n", rc.epochs);
    std::printf("  distinct phases observed : %d\n", phased.phasesSeen());
    std::printf("  phase prediction accuracy: %.1f%%\n",
                100.0 * phased.predictionAccuracy());
    std::printf("  partition reuses         : %llu\n",
                static_cast<unsigned long long>(phased.reuses()));
    std::printf("\nThe paper reports a small overall gain (+0.4%%) that\n"
                "concentrates in temporally-limited workloads (+2.1%%).\n");
    return 0;
}
