/**
 * @file
 * Quickstart: build an SMT machine for a Table 3 workload, run the
 * hill-climbing resource distributor on it, and compare its end
 * performance against ICOUNT.
 *
 *   ./quickstart [workload-name]   (default: art-mcf)
 */

#include <cstdio>

#include "core/hill_climbing.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "policy/icount.hh"
#include "workload/workloads.hh"

using namespace smthill;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "art-mcf";
    const Workload &workload = workloadByName(name);

    // Experiment parameters: the paper's 64K-cycle epochs; scale the
    // epoch count with SMTHILL_EPOCHS if you want longer runs.
    RunConfig rc = benchRunConfig(/*default_epochs=*/48);

    std::printf("workload %s (%s, %d threads)\n", workload.name.c_str(),
                workload.group.c_str(), workload.numThreads());

    // Stand-alone IPCs (the reference for the weighted metrics) come
    // from solo runs of each thread's benchmark.
    auto solo = soloIpcs(workload, rc, 8 * rc.epochSize);
    for (int i = 0; i < workload.numThreads(); ++i)
        std::printf("  solo %-8s ipc=%.3f\n",
                    workload.benchmarks[i].c_str(), solo[i]);

    // Baseline: ICOUNT fetch policy, fully shared resources.
    IcountPolicy icount;
    RunResult base = runPolicy(workload, icount, rc);

    // The paper's contribution: hill-climbing resource distribution,
    // learning with the weighted IPC metric.
    HillConfig hc;
    hc.epochSize = rc.epochSize;
    hc.metric = PerfMetric::WeightedIpc;
    HillClimbing hill(hc);
    RunResult learned = runPolicy(workload, hill, rc);

    Table t({"policy", "wipc", "avg-ipc", "hmean"});
    for (const auto &[label, res] :
         {std::pair<const char *, const RunResult &>{"ICOUNT", base},
          {"HILL-WIPC", learned}}) {
        t.beginRow();
        t.cell(std::string(label));
        t.cell(res.metric(PerfMetric::WeightedIpc, solo));
        t.cell(res.metric(PerfMetric::AvgIpc, solo));
        t.cell(res.metric(PerfMetric::HarmonicWeightedIpc, solo));
    }
    t.print();

    std::printf("\nlearned partition (anchor): %s of %d int rename regs\n",
                hill.anchor().str().c_str(), rc.machine.intRegs);
    double gain = learned.metric(PerfMetric::WeightedIpc, solo) /
                      base.metric(PerfMetric::WeightedIpc, solo) -
                  1.0;
    std::printf("hill-climbing vs ICOUNT: %+.1f%% weighted IPC\n",
                100.0 * gain);
    return 0;
}
