/**
 * @file
 * Pipeline-visibility example: attach a tracer to the machine, run a
 * short window of a workload under FLUSH, and show (a) the last
 * pipeline events including squashes, and (b) an ASCII occupancy
 * timeline of the partitioned resources — the clog-and-recover
 * dynamics the resource-distribution policies fight over.
 *
 *   ./pipeline_trace [workload-name]   (default: art-gzip)
 */

#include <cstdio>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "pipeline/tracer.hh"
#include "policy/flush.hh"
#include "workload/workloads.hh"

using namespace smthill;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "art-gzip";
    const Workload &workload = workloadByName(name);
    RunConfig rc = benchRunConfig(4);

    SmtCpu cpu = makeCpu(workload, rc);
    FlushPolicy flush;
    flush.attach(cpu);

    // Occupancy timeline: sample the int-rename-register occupancy
    // of each thread every 256 cycles for 16K cycles.
    std::printf("int rename register occupancy under FLUSH "
                "(one row per 256 cycles; %d registers total):\n\n",
                cpu.config().intRegs);
    const int buckets = 64;
    for (int row = 0; row < 48; ++row) {
        for (int c = 0; c < 256; ++c) {
            flush.cycle(cpu);
            cpu.step();
        }
        const Occupancy &o = cpu.occupancy();
        std::string line(buckets, '.');
        int t0 = o.intRegs[0] * buckets / cpu.config().intRegs;
        int t1 = o.intRegs[1] * buckets / cpu.config().intRegs;
        for (int i = 0; i < t0 && i < buckets; ++i)
            line[i] = '0';
        for (int i = t0; i < t0 + t1 && i < buckets; ++i)
            line[i] = '1';
        std::printf("  %6llu |%s| %3d+%3d\n",
                    static_cast<unsigned long long>(cpu.now()),
                    line.c_str(), o.intRegs[0], o.intRegs[1]);
    }

    // Event trace of the last few dozen pipeline events (the policy
    // keeps running, or its fetch locks would starve the machine).
    PipelineTracer tracer(48);
    cpu.setTracer(&tracer);
    for (int c = 0; c < 64; ++c) {
        flush.cycle(cpu);
        cpu.step();
    }
    std::printf("\nlast %zu pipeline events:\n", tracer.size());
    tracer.dump(stdout);
    cpu.setTracer(nullptr);

    // Derived statistics over a measured epoch.
    std::printf("\nderived statistics over one epoch:\n");
    MachineSnapshot before = MachineSnapshot::capture(cpu);
    runOneEpoch(cpu, flush, rc.epochSize);
    buildReport(before, MachineSnapshot::capture(cpu),
                workload.benchmarks)
        .print();

    std::printf("\ntotal squashed by FLUSH so far: %llu instructions\n",
                static_cast<unsigned long long>(flush.flushedInsts()));
    return 0;
}
