/**
 * @file
 * Compare every resource-distribution policy in the library —
 * ICOUNT, STALL, FLUSH, DCRA, static partitioning, and the three
 * hill-climbing variants — on one workload, with a per-epoch trace
 * of the partition the learner is using.
 *
 *   ./policy_comparison [workload-name]   (default: swim-twolf)
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "core/hill_climbing.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "policy/dcra.hh"
#include "policy/dg.hh"
#include "policy/flush.hh"
#include "policy/icount.hh"
#include "policy/stall.hh"
#include "policy/stall_flush.hh"
#include "policy/static_partition.hh"
#include "workload/workloads.hh"

using namespace smthill;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "swim-twolf";
    const Workload &workload = workloadByName(name);
    RunConfig rc = benchRunConfig(48);
    auto solo = soloIpcs(workload, rc, 8 * rc.epochSize);

    std::vector<std::unique_ptr<ResourcePolicy>> policies;
    policies.push_back(std::make_unique<IcountPolicy>());
    policies.push_back(std::make_unique<StallPolicy>());
    policies.push_back(std::make_unique<DgPolicy>());
    policies.push_back(std::make_unique<PdgPolicy>());
    policies.push_back(std::make_unique<FlushPolicy>());
    policies.push_back(std::make_unique<StallFlushPolicy>());
    policies.push_back(std::make_unique<DcraPolicy>());
    policies.push_back(std::make_unique<StaticPartitionPolicy>());
    for (PerfMetric m : {PerfMetric::AvgIpc, PerfMetric::WeightedIpc,
                         PerfMetric::HarmonicWeightedIpc}) {
        HillConfig hc;
        hc.epochSize = rc.epochSize;
        hc.metric = m;
        policies.push_back(std::make_unique<HillClimbing>(hc));
    }

    std::printf("workload %s (%s), %d epochs of %llu cycles\n\n",
                workload.name.c_str(), workload.group.c_str(), rc.epochs,
                static_cast<unsigned long long>(rc.epochSize));

    Table t({"policy", "wipc", "avg-ipc", "hmean", "flushed", "mispred"});
    HillClimbing *hill_wipc = nullptr;
    std::vector<EpochRecord> hill_epochs;
    for (auto &p : policies) {
        RunResult res = runPolicy(workload, *p, rc);
        t.beginRow();
        t.cell(p->name());
        t.cell(res.metric(PerfMetric::WeightedIpc, solo));
        t.cell(res.metric(PerfMetric::AvgIpc, solo));
        t.cell(res.metric(PerfMetric::HarmonicWeightedIpc, solo));
        std::uint64_t flushed = 0, mispred = 0;
        for (int i = 0; i < workload.numThreads(); ++i) {
            flushed += res.stats.flushed[i];
            mispred += res.stats.mispredicts[i];
        }
        t.cell(static_cast<std::int64_t>(flushed));
        t.cell(static_cast<std::int64_t>(mispred));
        if (p->name() == "HILL-WIPC") {
            hill_wipc = static_cast<HillClimbing *>(p.get());
            hill_epochs = res.epochs;
        }
    }
    t.print();

    if (hill_wipc) {
        std::printf("\nHILL-WIPC partition trajectory "
                    "(thread-0 share per epoch):\n  ");
        for (std::size_t e = 0; e < hill_epochs.size(); ++e) {
            std::printf("%d%s",
                        hill_epochs[e].partitioned
                            ? hill_epochs[e].partition.share[0]
                            : -1,
                        e + 1 < hill_epochs.size() ? " " : "\n");
        }
        std::printf("final anchor: %s\n",
                    hill_wipc->anchor().str().c_str());
    }
    return 0;
}
