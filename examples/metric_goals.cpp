/**
 * @file
 * The user-definable performance goal property (Sections 2 and 4.4):
 * the same hill-climbing mechanism optimizes throughput, weighted
 * speedup, or fairness depending only on the feedback metric it is
 * given. This example runs all three learners on one asymmetric
 * workload and shows how the chosen goal shifts both the learned
 * partition and the achieved metrics.
 *
 *   ./metric_goals [workload-name]   (default: art-gzip)
 */

#include <cstdio>

#include "core/hill_climbing.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "workload/workloads.hh"

using namespace smthill;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "art-gzip";
    const Workload &workload = workloadByName(name);
    RunConfig rc = benchRunConfig(64);
    auto solo = soloIpcs(workload, rc, 8 * rc.epochSize);

    std::printf("workload %s: per-thread solo IPCs", name.c_str());
    for (int i = 0; i < workload.numThreads(); ++i)
        std::printf(" %s=%.3f", workload.benchmarks[i].c_str(), solo[i]);
    std::printf("\n\n");

    Table t({"learning goal", "wipc", "avg-ipc", "hmean",
             "learned partition"});
    for (PerfMetric goal : {PerfMetric::AvgIpc, PerfMetric::WeightedIpc,
                            PerfMetric::HarmonicWeightedIpc}) {
        HillConfig hc;
        hc.epochSize = rc.epochSize;
        hc.metric = goal;
        HillClimbing hill(hc);
        RunResult res = runPolicy(workload, hill, rc);
        t.beginRow();
        t.cell(std::string(metricName(goal)));
        t.cell(res.metric(PerfMetric::WeightedIpc, solo));
        t.cell(res.metric(PerfMetric::AvgIpc, solo));
        t.cell(res.metric(PerfMetric::HarmonicWeightedIpc, solo));
        t.cell(hill.anchor().str());
    }
    t.print();

    std::printf("\nEach learner should do best under the metric it was\n"
                "given as feedback (the diagonal of Figure 10).\n");
    return 0;
}
