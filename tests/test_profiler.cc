/**
 * @file
 * Unit tests for the host-side span profiler: disabled-by-default
 * zero collection, nested-span aggregation, exact JSON round-trips,
 * pool-worker busy/idle spans, Perfetto injection, and the clock
 * contract — simulator outputs are bit-identical with profiling on
 * or off at any jobs count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/event_trace.hh"
#include "common/profile.hh"
#include "common/stat_registry.hh"
#include "common/thread_pool.hh"
#include "core/offline_exhaustive.hh"
#include "trace/program_profile.hh"

namespace smthill
{
namespace
{

/** Every profiler test starts and ends clean and disabled. */
class Profile : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        prof::setProfilingEnabled(false);
        prof::resetProfile();
    }
    void TearDown() override
    {
        prof::setProfilingEnabled(false);
        prof::resetProfile();
    }
};

const prof::SpanStats *
findSpan(const std::vector<prof::SpanStats> &spans,
         const std::string &name)
{
    for (const auto &s : spans)
        if (s.name == name)
            return &s;
    return nullptr;
}

SmtCpu
testCpu()
{
    ProfileParams mlp;
    mlp.name = "mlp";
    mlp.numBlocks = 12;
    mlp.avgBlockLen = 8;
    mlp.pLoadCold = 0.08;
    mlp.meanDepDist = 30;
    mlp.serialFrac = 0.1;
    mlp.burstProb = 0.6;
    mlp.burstMax = 6;
    ProfileParams ilp = mlp;
    ilp.name = "ilp";
    ilp.pLoadCold = 0.0;
    ilp.meanDepDist = 6;
    ilp.burstProb = 0.0;

    SmtConfig cfg;
    cfg.numThreads = 2;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(buildProfile(mlp), 0);
    gens.emplace_back(buildProfile(ilp), 1);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(80000);
    return cpu;
}

TEST_F(Profile, DisabledCollectsNothing)
{
    ASSERT_FALSE(prof::profilingEnabled());
    {
        SMTHILL_PROF_SCOPE("test.disabled");
        SMTHILL_PROF_SCOPE("test.disabled.child");
    }
    prof::ProfileReport report = prof::profileReport();
    EXPECT_TRUE(report.spans.empty());
    EXPECT_EQ(report.parallelEfficiency, -1.0);
}

TEST_F(Profile, RegistersNoGlobalStats)
{
    // The profiler must never widen the exported "counters" blob:
    // fig09's stats export is bit-compared against pre-profiler runs.
    std::vector<std::string> before = globalStats().names();
    prof::setProfilingEnabled(true);
    {
        SMTHILL_PROF_SCOPE("test.stats_free");
    }
    prof::profileReport();
    EXPECT_EQ(globalStats().names(), before);
}

TEST_F(Profile, AggregatesNestedSpans)
{
    prof::setProfilingEnabled(true);
    for (int i = 0; i < 3; ++i) {
        SMTHILL_PROF_SCOPE("test.parent");
        {
            SMTHILL_PROF_SCOPE("test.child");
        }
        {
            SMTHILL_PROF_SCOPE("test.child");
        }
    }
    prof::ProfileReport report = prof::profileReport();

    const prof::SpanStats *parent = findSpan(report.spans, "test.parent");
    const prof::SpanStats *child = findSpan(report.spans, "test.child");
    ASSERT_NE(parent, nullptr);
    ASSERT_NE(child, nullptr);
    EXPECT_EQ(parent->count, 3u);
    EXPECT_EQ(child->count, 6u);

    // Self time excludes children: the parent's self is its total
    // minus the child instances that ran inside it.
    EXPECT_LE(parent->selfNs, parent->totalNs);
    EXPECT_EQ(parent->selfNs, parent->totalNs - child->totalNs);
    // Children have no children, so their self time is their total.
    EXPECT_EQ(child->selfNs, child->totalNs);
    EXPECT_LE(parent->maxNs, parent->totalNs);

    // Single-threaded collection: one thread entry mirroring the merge.
    ASSERT_EQ(report.threads.size(), 1u);
    EXPECT_EQ(report.threads[0].spans.size(), report.spans.size());
}

TEST_F(Profile, ResetDropsEverything)
{
    prof::setProfilingEnabled(true);
    {
        SMTHILL_PROF_SCOPE("test.reset_me");
    }
    EXPECT_FALSE(prof::profileReport().spans.empty());
    prof::resetProfile();
    EXPECT_TRUE(prof::profileReport().spans.empty());
}

TEST_F(Profile, JsonRoundTripIsExact)
{
    prof::setProfilingEnabled(true);
    for (int i = 0; i < 5; ++i) {
        SMTHILL_PROF_SCOPE("test.roundtrip");
        SMTHILL_PROF_SCOPE("test.roundtrip.inner");
    }
    prof::ProfileReport report = prof::profileReport();
    ASSERT_FALSE(report.spans.empty());

    Json doc = prof::profileToJson(report);
    EXPECT_EQ(doc.at("schema").asString(), "smthill.profile.v1");

    Json reparsed;
    std::string error;
    ASSERT_TRUE(Json::parse(doc.dump(2), reparsed, error)) << error;
    prof::ProfileReport back;
    ASSERT_TRUE(prof::profileFromJson(reparsed, back, error)) << error;
    EXPECT_EQ(back, report);
}

TEST_F(Profile, FromJsonRejectsMalformedDocs)
{
    prof::ProfileReport out;
    std::string error;

    EXPECT_FALSE(prof::profileFromJson(Json("nope"), out, error));
    EXPECT_FALSE(error.empty());

    Json wrong = Json::object();
    wrong.set("schema", Json("smthill.events.v1"));
    EXPECT_FALSE(prof::profileFromJson(wrong, out, error));

    Json bad_spans = Json::object();
    bad_spans.set("schema", Json("smthill.profile.v1"));
    bad_spans.set("parallel_efficiency", Json(-1.0));
    bad_spans.set("spans", Json("not an array"));
    bad_spans.set("threads", Json::array());
    EXPECT_FALSE(prof::profileFromJson(bad_spans, out, error));
}

TEST_F(Profile, PoolWorkersRecordBusyAndIdleSpans)
{
    prof::setProfilingEnabled(true);
    {
        ThreadPool pool(2);
        std::vector<std::uint64_t> out(64, 0);
        pool.parallelFor(out.size(), [&](std::size_t i) {
            std::uint64_t acc = 0;
            for (std::uint64_t k = 0; k < 10000; ++k)
                acc += (i + 1) * k;
            out[i] = acc;
        });
    } // pool joins: every busy/idle span is closed

    prof::ProfileReport report = prof::profileReport();
    const prof::SpanStats *busy =
        findSpan(report.spans, prof::kWorkerBusySpan);
    ASSERT_NE(busy, nullptr);
    EXPECT_GT(busy->count, 0u);
    // Utilization is measured from those spans and must be a ratio.
    EXPECT_GE(report.parallelEfficiency, 0.0);
    EXPECT_LE(report.parallelEfficiency, 1.0);
}

TEST_F(Profile, AppendHostSpansInjectsAHostTrack)
{
    prof::setProfilingEnabled(true);
    {
        SMTHILL_PROF_SCOPE("test.perfetto");
    }
    EventTrace trace;
    prof::appendHostSpans(trace);
    ASSERT_GT(trace.size(), 0u);

    std::string text = trace.toJsonl();
    EXPECT_NE(text.find("test.perfetto"), std::string::npos);
    EXPECT_NE(text.find("host"), std::string::npos);
}

TEST_F(Profile, SimOutputsIdenticalAcrossProfilingAndJobs)
{
    // The clock contract: an offline sweep — pool workers, arena
    // restores, per-epoch commits — picks bit-identical partitions
    // and IPCs whether profiling is off, on serial, or on with a
    // worker pool.
    OfflineConfig oc;
    oc.epochSize = 8192;
    oc.stride = 32;
    oc.metric = PerfMetric::AvgIpc;

    auto sweep = [&](bool profiling, int jobs) {
        prof::setProfilingEnabled(profiling);
        OfflineConfig cfg = oc;
        cfg.jobs = jobs;
        SmtCpu cpu = testCpu();
        return OfflineExhaustive(cfg).run(cpu, 3);
    };

    OfflineResult base = sweep(false, 1);
    OfflineResult on_serial = sweep(true, 1);
    OfflineResult on_pool = sweep(true, 4);
    prof::setProfilingEnabled(false);

    ASSERT_EQ(base.epochs.size(), 3u);
    for (const OfflineResult *other : {&on_serial, &on_pool}) {
        ASSERT_EQ(other->epochs.size(), base.epochs.size());
        for (std::size_t e = 0; e < base.epochs.size(); ++e) {
            EXPECT_EQ(other->epochs[e].best.share[0],
                      base.epochs[e].best.share[0]);
            EXPECT_EQ(other->epochs[e].metricValue,
                      base.epochs[e].metricValue);
            for (int t = 0; t < base.epochs[e].ipc.numThreads; ++t)
                EXPECT_EQ(other->epochs[e].ipc.ipc[t],
                          base.epochs[e].ipc.ipc[t]);
        }
    }

    // And the profiled runs actually saw the instrumented hot paths.
    prof::ProfileReport report = prof::profileReport();
    EXPECT_NE(findSpan(report.spans, "offline.step_epoch"), nullptr);
    EXPECT_NE(findSpan(report.spans, "offline.trial_epoch"), nullptr);
}

} // namespace
} // namespace smthill
