// Must-flag fixture for rule `layering`: linted under the path
// src/pipeline/layering_flag.cc, where including the validate layer
// is an upward edge (pipeline rank 20 -> validate rank 70).
#include "common/types.hh"
#include "validate/invariants.hh"

int
checkedWidth(int width)
{
    return width > 0 ? width : 1;
}
