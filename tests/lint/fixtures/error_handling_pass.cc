// Must-pass fixture for rule `error-handling`: owned storage and
// fatal()/panic() from common/log.hh; deleted special members are
// not naked deletes.
#include <vector>

#include "common/log.hh"

class Buffer
{
  public:
    explicit Buffer(int n)
    {
        if (n <= 0)
            smthill::fatal("Buffer: size must be positive");
        data.resize(static_cast<std::size_t>(n));
    }

    Buffer(const Buffer &) = delete;
    Buffer &operator=(const Buffer &) = delete;

  private:
    std::vector<int> data;
};
