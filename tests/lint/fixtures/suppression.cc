// Suppression fixture: the first two violations carry a matching
// `smthill-lint: allow(...)` (same line, then line above); the third
// names the wrong rule, so exactly one finding must survive.
#include <cstdlib>

int
seededFallback()
{
    int a = rand(); // smthill-lint: allow(no-libc-random)
    // smthill-lint: allow(no-libc-random)
    int b = rand();
    int c = rand(); // smthill-lint: allow(no-wall-clock)
    return a + b + c;
}
