// Must-flag fixture for the analyzer's hot-path-allocation pass:
// refill() grows a container and is reachable from the SmtCpu::step
// root through the name-matched call graph.

void
SmtCpu::step()
{
    refill();
}

void
refill()
{
    buffer.push_back(0);
}
