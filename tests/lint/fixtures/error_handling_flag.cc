// Must-flag fixture for rule `error-handling`: manual ownership and
// ad-hoc process exits bypass the fatal()/panic() conventions (and
// `throw` in library code leaves errors unloggable).
#include <cstdlib>

struct Buffer
{
    int *data = nullptr;
};

Buffer
makeBuffer(int n)
{
    if (n <= 0)
        exit(2);
    if (n > 1 << 20)
        throw n;
    Buffer b;
    b.data = new int[static_cast<unsigned>(n)];
    return b;
}

void
freeBuffer(Buffer &b)
{
    delete[] b.data;
}
