// Must-flag fixture for rule `cpu-copy-hot-path`: copy-constructing
// a whole SmtCpu per trial pays the full allocation tax the machine
// arena exists to avoid. Both the copy-init and the single-argument
// direct-init spellings must surface.
#include "pipeline/cpu.hh"

namespace smthill
{

double
sweepTrials(const SmtCpu &checkpoint, int n)
{
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        SmtCpu trial = checkpoint;
        trial.run(1024);
        sum += static_cast<double>(trial.stats().committedTotal());
    }
    SmtCpu probe(checkpoint);
    probe.run(64);
    return sum;
}

} // namespace smthill
