// Must-pass fixture for the analyzer's parallel-capture pass: every
// by-reference capture is either written through an index-disjoint
// slot, an atomic, or under a lock — the three sanctioned shapes.

void
disjointSlots(ThreadPool &pool, std::vector<int> &out)
{
    pool.parallelFor(out.size(), [&](std::size_t i) {
        out[i] = static_cast<int>(i) * 2;
    });
}

void
atomicReduce(ThreadPool &pool, const std::vector<int> &in)
{
    std::atomic<int> sum{0};
    pool.parallelFor(in.size(), [&](std::size_t i) {
        sum += in[i];
    });
}

void
lockedAppend(ThreadPool &pool, std::mutex &m)
{
    std::vector<int> rows;
    pool.parallelFor(64, [&](std::size_t i) {
        std::lock_guard<std::mutex> hold(m);
        rows.push_back(static_cast<int>(i));
    });
}
