// Must-flag fixture for rule `stat-name`: one off-convention name
// (not smthill.*, not dotted-lowercase) and one duplicate
// registration of a well-formed name (linted under a src/ path, so
// duplicates count).
#include "common/stat_registry.hh"

using smthill::globalStats;

void
registerStats()
{
    globalStats().counter("ThreadPool.Tasks").inc();
    globalStats().gauge("smthill.fixture.depth").set(1.0);
    globalStats().gauge("smthill.fixture.depth").set(2.0);
}
