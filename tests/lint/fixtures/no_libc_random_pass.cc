// Must-pass fixture for rule `no-libc-random`: draws flow through
// the project's seeded, copyable generator. A struct member named
// `rand` (not a call) is also legal.
#include "common/rng.hh"

struct TrialResult
{
    double hill = 0.0;
    double rand = 0.0; // RAND-HILL column, never called
};

int
pickThread(smthill::Rng &rng, int num_threads)
{
    return static_cast<int>(
        rng.nextBelow(static_cast<std::uint64_t>(num_threads)));
}
