// Carve-out fixture for rule `no-wall-clock` (lexed, never compiled):
// identical content must lint clean under src/common/profile.cc —
// the host profiler's sanctioned steady-clock home — and flag under
// every other src/ path. Covers both the identifier branch
// (steady_clock) and the include branch (<ctime>).
#include <chrono>
#include <ctime>

long
hostSpanNowNs()
{
    auto t0 = std::chrono::steady_clock::now();
    return static_cast<long>(t0.time_since_epoch().count());
}
