// Must-pass fixture for rule `schema-field`: every field literal is
// in the smthill.epoch-trace.v1 list (linted under the path
// src/core/epoch_trace.cc).
#include "common/json.hh"

using smthill::Json;

Json
writeEpoch(int id, double value)
{
    Json rec = Json::object();
    rec.set("epoch", Json(id));
    rec.set("metric_value", Json(value));
    if (rec.contains("trial"))
        return rec.at("trial");
    return rec;
}
