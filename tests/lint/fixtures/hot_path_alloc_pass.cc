// Must-pass fixture for the analyzer's hot-path-allocation pass: the
// path reachable from SmtCpu::step only writes into preallocated
// storage; the one allocation lives in setup(), which no root
// reaches.

void
SmtCpu::step()
{
    advance();
}

void
advance()
{
    buffer[cursor] = cursor;
}

void
setup()
{
    buffer.reserve(64);
}
