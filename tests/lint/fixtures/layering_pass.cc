// Must-pass fixture for rule `layering`: linted under the path
// src/pipeline/layering_pass.cc; same-or-lower-ranked includes only.
#include "branch/predictors.hh"
#include "common/types.hh"
#include "memory/cache.hh"
#include "pipeline/smt_config.hh"

int
checkedWidth(int width)
{
    return width > 0 ? width : 1;
}
