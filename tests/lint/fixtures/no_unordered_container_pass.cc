// Must-pass fixture for rule `no-unordered-container`: ordered
// containers iterate deterministically.
#include <map>
#include <string>

double
sumShares(const std::map<std::string, double> &shares)
{
    double total = 0.0;
    for (const auto &[name, share] : shares)
        total += share;
    return total;
}
