// Must-pass fixture for the analyzer's stale-suppression pass: the
// marker consumes a real parallel-capture finding, so it is live and
// the whole unit analyzes clean.

void
inlineOnly(ThreadPool &pool)
{
    int n = 0;
    pool.parallelFor(4, [&](std::size_t) { n++; }); // smthill-lint: allow(parallel-capture)
}
