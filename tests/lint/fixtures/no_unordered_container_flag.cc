// Must-flag fixture for rule `no-unordered-container`: hash-table
// iteration order varies across standard libraries and runs, so any
// result derived from it is non-reproducible.
#include <string>
#include <unordered_map>

double
sumShares(const std::unordered_map<std::string, double> &shares)
{
    double total = 0.0;
    for (const auto &[name, share] : shares)
        total += share;
    return total;
}
