// Companion reader for cross_tu_stat_flag.cc: analyzed together
// under a tests/ synthetic path, this lookup marks the stat consumed
// project-wide and the pair is clean. Analyzed alone it must fire
// the complementary looked-up-but-never-registered finding.

void
checkWidgetFrobs()
{
    expectNonZero(
        globalStats().counter("smthill.widget.frobs").value());
}
