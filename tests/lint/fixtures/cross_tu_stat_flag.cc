// Must-flag fixture for the analyzer's cross-tu-consistency pass
// (stat half): analyzed alone under a src/ synthetic path, this
// registers a stat that nothing outside the file ever reads.

StatCounter &
widgetFrobs()
{
    static StatCounter &c =
        globalStats().counter("smthill.widget.frobs");
    return c;
}
