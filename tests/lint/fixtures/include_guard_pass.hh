/**
 * @file
 * Must-pass fixture for rule `include-guard`: canonical guard for
 * the synthetic lint path src/fixture/include_guard_pass.hh.
 */

#ifndef SMTHILL_FIXTURE_INCLUDE_GUARD_PASS_HH
#define SMTHILL_FIXTURE_INCLUDE_GUARD_PASS_HH

struct Placeholder
{
    int value = 0;
};

#endif // SMTHILL_FIXTURE_INCLUDE_GUARD_PASS_HH
