// Must-pass fixture for rule `no-wall-clock`: timing derives from
// simulated cycles, and members merely *named* time are legal.
#include <cstdint>

struct EpochClock
{
    std::uint64_t cycle = 0;
    std::uint64_t time = 0; // member named `time`, never called

    std::uint64_t
    elapsed(std::uint64_t since) const
    {
        return cycle - since;
    }
};
