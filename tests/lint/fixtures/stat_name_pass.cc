// Must-pass fixture for rule `stat-name`: smthill.* dotted-lowercase
// names, each registered once; computed names are skipped (checked
// at run time by the registry itself, not statically).
#include <string>

#include "common/stat_registry.hh"

using smthill::globalStats;

void
registerStats(const std::string &prefix)
{
    globalStats().counter("smthill.fixture.tasks").inc();
    globalStats().gauge("smthill.fixture.queue_depth").set(0.0);
    globalStats().counter(prefix + ".hits").inc();
}
