// Must-flag fixture for rule `include-guard`: a stale guard macro
// (not the canonical SMTHILL_<PATH>_HH for this header's path).
#ifndef FIXTURE_GUARD_LEGACY_H
#define FIXTURE_GUARD_LEGACY_H

struct Placeholder
{
    int value = 0;
};

#endif // FIXTURE_GUARD_LEGACY_H
