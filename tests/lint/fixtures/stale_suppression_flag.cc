// Must-flag fixture for the analyzer's stale-suppression pass: the
// marker below suppresses nothing — no parallel-capture finding ever
// lands on that line — so the marker itself becomes the finding.

int
answer()
{
    return 42; // smthill-lint: allow(parallel-capture)
}
