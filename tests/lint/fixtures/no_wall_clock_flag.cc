// Must-flag fixture for rule `no-wall-clock` (lexed, never compiled):
// wall-clock reads make two runs of the same seed diverge.
#include <ctime>

long
epochStampSeconds()
{
    return time(nullptr);
}

double
elapsedSinceStart()
{
    auto t0 = std::chrono::steady_clock::now();
    return static_cast<double>(t0.time_since_epoch().count());
}
