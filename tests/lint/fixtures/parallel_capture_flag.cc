// Must-flag fixture for the analyzer's parallel-capture pass: 'sum'
// and 'rows' are captured by reference and mutated inside pool
// lambdas without index-disjoint access, atomics, or a lock.

void
racyReduce(ThreadPool &pool, const std::vector<int> &in)
{
    int sum = 0;
    pool.parallelFor(in.size(), [&](std::size_t i) {
        sum += in[i];
    });
}

void
racyAppend(ThreadPool &pool)
{
    std::vector<int> rows;
    pool.parallelForWorker(64, [&rows](std::size_t i, int worker) {
        rows.push_back(static_cast<int>(i) + worker);
    });
}
