// Must-flag fixture for rule `no-libc-random`: out-of-band
// randomness breaks checkpoint-clone replay.
#include <random>

int
pickThread(int num_threads)
{
    std::mt19937 gen(std::random_device{}());
    return static_cast<int>(gen() % static_cast<unsigned>(num_threads));
}

int
legacyPick(int num_threads)
{
    return rand() % num_threads;
}
