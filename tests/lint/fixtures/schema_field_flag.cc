// Must-flag fixture for rule `schema-field`: the test lints this
// content under the path src/core/epoch_trace.cc, so JSON field
// literals must come from the smthill.epoch-trace.v1 list; writing a
// new field without bumping the schema version is the defect.
#include "common/json.hh"

using smthill::Json;

Json
writeEpoch(int id)
{
    Json rec = Json::object();
    rec.set("epoch", Json(id));
    rec.set("wall_ms", Json(0.0)); // not in smthill.epoch-trace.v1
    return rec;
}
