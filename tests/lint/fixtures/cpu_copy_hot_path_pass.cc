// Must-pass fixture for rule `cpu-copy-hot-path`: reference
// bindings, real constructor calls, materialized function results,
// and arena restores are all legal ways to get at a machine.
#include <utility>
#include <vector>

#include "core/machine_arena.hh"
#include "pipeline/cpu.hh"

namespace smthill
{

SmtCpu makeMachine(const SmtConfig &cfg);

double
sweepTrials(MachineArena &arena, const SmtCpu &checkpoint, int n)
{
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        SmtCpu &trial = arena.acquire(0, checkpoint);
        trial.run(1024);
        sum += static_cast<double>(trial.stats().committedTotal());
    }
    SmtConfig cfg;
    std::vector<StreamGenerator> gens;
    SmtCpu fresh(cfg, std::move(gens));
    SmtCpu built = makeMachine(cfg);
    built.restoreFrom(checkpoint);
    return sum;
}

} // namespace smthill
