/**
 * @file
 * Tests for the cross-TU analyzer (lint/analyze.hh): the phase-1
 * project model (call-graph edges, pool-lambda capture extraction,
 * stat/schema/event tables), each phase-2 pass against its must-flag
 * / must-pass fixture pair under tests/lint/fixtures/, and the
 * smthill.lint.v1 JSON round-trip of analyzer findings.
 *
 * Fixtures are analyzed under *synthetic* paths, exactly like
 * test_lint.cc: the hot-path domain and the stat registration rules
 * key off the path handed to analyzeUnits, so fixture content can
 * stand in for any module from one on-disk directory (which the tree
 * walker skips, keeping the Analyze ctest run clean).
 */

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "lint/analyze.hh"

using namespace smthill;
using lint::Finding;

namespace
{

std::string
fixture(const std::string &name)
{
    const std::string path =
        std::string(SMTHILL_LINT_FIXTURES) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

lint::SourceUnit
unit(const std::string &path, const std::string &fixtureName)
{
    return {path, fixture(fixtureName)};
}

/** Every finding must carry @p rule (and nothing else may fire). */
void
expectOnlyRule(const std::vector<Finding> &findings,
               const std::string &rule)
{
    EXPECT_FALSE(findings.empty()) << "expected a " << rule << " finding";
    for (const Finding &f : findings) {
        EXPECT_EQ(f.rule, rule) << f.file << ":" << f.line << ": "
                                << f.message;
        EXPECT_GT(f.line, 0);
        EXPECT_FALSE(f.message.empty());
    }
}

TEST(Analyze, PassNamesAreTheFourDocumentedPasses)
{
    std::vector<std::string> names = lint::passNames();
    ASSERT_EQ(names.size(), 4u);
    EXPECT_NE(std::find(names.begin(), names.end(), "parallel-capture"),
              names.end());
    EXPECT_NE(
        std::find(names.begin(), names.end(), "cross-tu-consistency"),
        names.end());
    EXPECT_NE(
        std::find(names.begin(), names.end(), "hot-path-allocation"),
        names.end());
    EXPECT_NE(
        std::find(names.begin(), names.end(), "stale-suppression"),
        names.end());
}

// ---------------------------------------------------------------
// Phase 1: project model
// ---------------------------------------------------------------

TEST(AnalyzeModel, CallGraphRecordsDefinitionsAndEdges)
{
    lint::ProjectModel m = lint::buildProjectModel(
        {{"src/core/graph.cc",
          "void alpha() { beta(); }\n"
          "void beta() { gamma(1); gamma(2); }\n"
          "int gamma(int x) { return x; }\n"}});

    auto find = [&](const std::string &bare) -> const lint::FunctionDef * {
        for (const lint::FunctionDef &f : m.functions)
            if (f.bare == bare)
                return &f;
        return nullptr;
    };
    const lint::FunctionDef *alpha = find("alpha");
    const lint::FunctionDef *beta = find("beta");
    const lint::FunctionDef *gamma = find("gamma");
    ASSERT_NE(alpha, nullptr);
    ASSERT_NE(beta, nullptr);
    ASSERT_NE(gamma, nullptr);

    ASSERT_EQ(alpha->calls.size(), 1u);
    EXPECT_EQ(alpha->calls[0].name, "beta");
    ASSERT_EQ(beta->calls.size(), 2u);
    EXPECT_EQ(beta->calls[0].name, "gamma");
    EXPECT_EQ(beta->calls[1].name, "gamma");
    EXPECT_TRUE(gamma->calls.empty());
    EXPECT_EQ(alpha->file, "src/core/graph.cc");
}

TEST(AnalyzeModel, QualifiedDefinitionKeepsBothNames)
{
    lint::ProjectModel m = lint::buildProjectModel(
        {{"src/pipeline/fake.cc",
          "void SmtCpu::step() { tick(); }\n"}});
    bool found = false;
    for (const lint::FunctionDef &f : m.functions) {
        if (f.qual != "SmtCpu::step")
            continue;
        found = true;
        EXPECT_EQ(f.bare, "step");
    }
    EXPECT_TRUE(found) << "qualified definition missing from model";
}

TEST(AnalyzeModel, PoolLambdaCapturesAndParamsExtracted)
{
    lint::ProjectModel m = lint::buildProjectModel(
        {{"src/core/fanout.cc",
          "void f(ThreadPool &pool, int x, int y) {\n"
          "    pool.parallelForWorker(8,\n"
          "        [&x, y](std::size_t i, int w) { use(x, y, i, w); });\n"
          "}\n"}});
    ASSERT_EQ(m.poolLambdas.size(), 1u);
    const lint::PoolLambda &pl = m.poolLambdas[0];
    EXPECT_EQ(pl.callee, "parallelForWorker");
    EXPECT_FALSE(pl.byRefDefault);
    ASSERT_EQ(pl.captures.size(), 2u);
    EXPECT_EQ(pl.captures[0].name, "x");
    EXPECT_TRUE(pl.captures[0].byRef);
    EXPECT_EQ(pl.captures[1].name, "y");
    EXPECT_FALSE(pl.captures[1].byRef);
    EXPECT_EQ(pl.indexParam, "i");
    EXPECT_EQ(pl.workerParam, "w");
}

TEST(AnalyzeModel, StatTableSeparatesRegistrationFromMention)
{
    lint::ProjectModel m = lint::buildProjectModel(
        {{"src/common/widget.cc",
          "StatCounter &f() {\n"
          "    static StatCounter &c =\n"
          "        globalStats().counter(\"smthill.widget.frobs\");\n"
          "    return c;\n"
          "}\n"},
         {"tests/test_widget.cc",
          "void t() { check(\"smthill.widget.frobs\"); }\n"}});
    ASSERT_EQ(m.stats.count("smthill.widget.frobs"), 1u);
    const lint::StatUse &use = m.stats.at("smthill.widget.frobs");
    ASSERT_EQ(use.registrations.size(), 1u);
    EXPECT_EQ(use.registrations[0].file, "src/common/widget.cc");
    // The bare string in the test is a mention, not a registration.
    ASSERT_EQ(use.mentions.size(), 2u);
    EXPECT_EQ(use.mentions[1].file, "tests/test_widget.cc");
}

TEST(AnalyzeModel, SchemaTableSplitsWriterAndParserSides)
{
    // Field sites are only collected in a schema's governed files
    // (the catalog's file list); smthill.events.v1 governs two
    // distinct TUs, one per side.
    lint::ProjectModel m = lint::buildProjectModel(
        {{"src/common/event_trace.cc",
          "void w(Json &j) { j.set(\"clock\", Json(1)); }\n"},
         {"tools/smthill_trace_report.cc",
          "void r(const Json &j) { use(j.at(\"clock\")); }\n"}});
    ASSERT_EQ(m.schemas.count("smthill.events.v1"), 1u);
    const lint::SchemaUse &su = m.schemas.at("smthill.events.v1");
    ASSERT_EQ(su.written.count("clock"), 1u);
    EXPECT_EQ(su.written.at("clock")[0].file,
              "src/common/event_trace.cc");
    ASSERT_EQ(su.parsed.count("clock"), 1u);
    EXPECT_EQ(su.parsed.at("clock")[0].file,
              "tools/smthill_trace_report.cc");
}

TEST(AnalyzeModel, EventTablesRecordEmissionAndCatalog)
{
    lint::ProjectModel m = lint::buildProjectModel(
        {{"src/core/emit.cc",
          "void f(EventTrace *t) {\n"
          "    t->instant(1, 0, 0, \"hill\", \"epoch\");\n"
          "    t->counter(1, 0, 0, \"share.t\" + std::to_string(2), 8);\n"
          "}\n"},
         {"tools/smthill_trace_report.cc",
          "const char *const kKnownEventNames[] = {\n"
          "    \"epoch\", \"share.t*\",\n"
          "};\n"}});
    // instant: the name is the string after the category.
    EXPECT_EQ(m.emittedEvents.count("epoch"), 1u);
    // A computed counter name records as a prefix wildcard.
    EXPECT_EQ(m.emittedEvents.count("share.t*"), 1u);
    EXPECT_EQ(m.knownEventNames.count("epoch"), 1u);
    EXPECT_EQ(m.knownEventNames.count("share.t*"), 1u);
}

// ---------------------------------------------------------------
// Phase 2: fire/pass fixture pairs
// ---------------------------------------------------------------

TEST(AnalyzePasses, ParallelCaptureFlagAndPass)
{
    std::vector<Finding> fire = lint::analyzeUnits(
        {unit("src/core/racy.cc", "parallel_capture_flag.cc")});
    expectOnlyRule(fire, "parallel-capture");
    // Both the reduction ('sum') and the growth ('rows') must fire.
    EXPECT_EQ(fire.size(), 2u);

    EXPECT_TRUE(lint::analyzeUnits({unit("src/core/tidy.cc",
                                         "parallel_capture_pass.cc")})
                    .empty());
}

TEST(AnalyzePasses, HotPathAllocationFlagAndPass)
{
    std::vector<Finding> fire = lint::analyzeUnits(
        {unit("src/pipeline/fetch_q.cc", "hot_path_alloc_flag.cc")});
    expectOnlyRule(fire, "hot-path-allocation");
    ASSERT_EQ(fire.size(), 1u);
    // The finding names the reachability chain from the root.
    EXPECT_NE(fire[0].message.find("SmtCpu::step"), std::string::npos)
        << fire[0].message;
    EXPECT_NE(fire[0].message.find("refill"), std::string::npos);

    EXPECT_TRUE(lint::analyzeUnits({unit("src/pipeline/fetch_q.cc",
                                         "hot_path_alloc_pass.cc")})
                    .empty());
}

TEST(AnalyzePasses, HotPathDomainExcludesTestsAndValidate)
{
    // The same growth shape outside the hot-path domain stays clean:
    // tests are not simulation inner loops, and validate/ is
    // explicitly carved out of the domain.
    EXPECT_TRUE(lint::analyzeUnits({unit("tests/test_fetch_q.cc",
                                         "hot_path_alloc_flag.cc")})
                    .empty());
    EXPECT_TRUE(lint::analyzeUnits({unit("src/validate/fetch_q.cc",
                                         "hot_path_alloc_flag.cc")})
                    .empty());
}

TEST(AnalyzePasses, CrossTuStatFlagAndPass)
{
    std::vector<Finding> fire = lint::analyzeUnits(
        {unit("src/common/widget.cc", "cross_tu_stat_flag.cc")});
    expectOnlyRule(fire, "cross-tu-consistency");
    ASSERT_EQ(fire.size(), 1u);
    EXPECT_NE(fire[0].message.find("smthill.widget.frobs"),
              std::string::npos);

    // With the reader unit alongside, the stat is consumed cross-TU.
    EXPECT_TRUE(
        lint::analyzeUnits(
            {unit("src/common/widget.cc", "cross_tu_stat_flag.cc"),
             unit("tests/test_widget.cc", "cross_tu_stat_pass.cc")})
            .empty());

    // The reader alone fires the complementary direction: a lookup
    // of a stat that src/ never registers.
    std::vector<Finding> orphan = lint::analyzeUnits(
        {unit("tests/test_widget.cc", "cross_tu_stat_pass.cc")});
    expectOnlyRule(orphan, "cross-tu-consistency");
}

TEST(AnalyzePasses, CrossTuSchemaAsymmetryNeedsDistinctReader)
{
    // Writer-only, no distinct reader file: a single-TU schema is
    // self-consistent by construction and must stay clean (dead
    // listed fields included — no parser means no contract yet).
    EXPECT_TRUE(
        lint::analyzeUnits(
            {{"src/common/event_trace.cc",
              "void w(Json &j) { j.set(\"clock\", Json(1)); }\n"}})
            .empty());

    // A distinct reader that parses a different field makes the
    // unparsed write a real asymmetry.
    std::vector<Finding> fire = lint::analyzeUnits(
        {{"src/common/event_trace.cc",
          "void w(Json &j) { j.set(\"clock\", Json(1)); }\n"},
         {"tools/smthill_trace_report.cc",
          "void r(const Json &j) { use(j.at(\"ts\")); }\n"}});
    bool sawClock = false;
    for (const Finding &f : fire) {
        EXPECT_EQ(f.rule, "cross-tu-consistency");
        if (f.message.find("\"clock\"") != std::string::npos)
            sawClock = true;
    }
    EXPECT_TRUE(sawClock)
        << "written-but-unparsed 'clock' must fire with a distinct "
           "reader present";
}

TEST(AnalyzePasses, CrossTuUnknownEventFires)
{
    std::vector<Finding> fire = lint::analyzeUnits(
        {{"src/core/emit.cc",
          "void f(EventTrace *t) {\n"
          "    t->instant(1, 0, 0, \"hill\", \"epoch\");\n"
          "    t->instant(1, 0, 0, \"hill\", \"mystery\");\n"
          "}\n"},
         {"tools/smthill_trace_report.cc",
          "const char *const kKnownEventNames[] = {\"epoch\"};\n"}});
    expectOnlyRule(fire, "cross-tu-consistency");
    ASSERT_EQ(fire.size(), 1u);
    EXPECT_NE(fire[0].message.find("mystery"), std::string::npos);
}

TEST(AnalyzePasses, StaleSuppressionFlagAndPass)
{
    std::vector<Finding> fire = lint::analyzeUnits(
        {unit("src/core/stale.cc", "stale_suppression_flag.cc")});
    expectOnlyRule(fire, "stale-suppression");
    ASSERT_EQ(fire.size(), 1u);
    EXPECT_NE(fire[0].message.find("parallel-capture"),
              std::string::npos);

    EXPECT_TRUE(lint::analyzeUnits({unit("src/core/live.cc",
                                         "stale_suppression_pass.cc")})
                    .empty());
}

TEST(AnalyzePasses, SuppressionOnlyCoversTheNamedPass)
{
    // An allow(hot-path-allocation) marker does not silence a
    // parallel-capture finding on the same line.
    std::vector<Finding> fire = lint::analyzeUnits(
        {{"src/core/racy.cc",
          "void f(ThreadPool &pool) {\n"
          "    int n = 0;\n"
          "    pool.parallelFor(4, [&](std::size_t) { n++; }); "
          "// smthill-lint: allow(hot-path-allocation)\n"
          "}\n"}});
    ASSERT_EQ(fire.size(), 2u);
    // The race still fires, and the marker itself goes stale.
    EXPECT_EQ(fire[0].rule, "parallel-capture");
    EXPECT_EQ(fire[1].rule, "stale-suppression");
}

// ---------------------------------------------------------------
// JSON round-trip
// ---------------------------------------------------------------

TEST(AnalyzeJson, FindingsRoundTripThroughLintV1)
{
    std::vector<Finding> fire = lint::analyzeUnits(
        {unit("src/core/racy.cc", "parallel_capture_flag.cc"),
         unit("src/pipeline/fetch_q.cc", "hot_path_alloc_flag.cc")});
    ASSERT_FALSE(fire.empty());

    Json doc = lint::analysisToJson(fire);
    EXPECT_EQ(doc.at("schema").asString(), "smthill.lint.v1");
    EXPECT_EQ(doc.at("tool").asString(), "smthill_analyze");
    EXPECT_EQ(doc.at("passes").size(), lint::passNames().size());

    // The analyzer extensions must not break the shared reader.
    std::string error;
    std::vector<Finding> back;
    ASSERT_TRUE(lint::findingsFromJson(doc, back, error)) << error;
    ASSERT_EQ(back.size(), fire.size());
    for (std::size_t i = 0; i < fire.size(); ++i) {
        EXPECT_EQ(back[i].file, fire[i].file);
        EXPECT_EQ(back[i].line, fire[i].line);
        EXPECT_EQ(back[i].rule, fire[i].rule);
        EXPECT_EQ(back[i].message, fire[i].message);
    }

    // Serialization survives a text round-trip too.
    Json reparsed;
    ASSERT_TRUE(Json::parse(doc.dump(2), reparsed, error)) << error;
    std::vector<Finding> again;
    ASSERT_TRUE(lint::findingsFromJson(reparsed, again, error)) << error;
    EXPECT_EQ(again.size(), fire.size());
}

} // namespace
