/**
 * @file
 * Bandit allocator unit tests: the arm lattice covers the quantized
 * partition space and conserves the register file, UCB1 selection is
 * deterministic (unplayed-first in index order, strict-argmax tie
 * break), EXP3 draws replay from the seeded stream, and churn
 * attach/detach rebuilds the lattice and re-seeds a drained anchor.
 * The RL allocator gets the matching churn/state checks.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/stat_registry.hh"
#include "policy/bandit.hh"
#include "policy/rl_alloc.hh"
#include "trace/spec_profiles.hh"

namespace smthill
{
namespace
{

SmtCpu
makeMachine(const std::vector<const char *> &benches)
{
    SmtConfig cfg;
    cfg.numThreads = static_cast<int>(benches.size());
    std::vector<StreamGenerator> gens;
    for (std::size_t i = 0; i < benches.size(); ++i)
        gens.emplace_back(specProfile(benches[i]), i);
    return SmtCpu(cfg, std::move(gens));
}

TEST(Bandit, TwoThreadLatticeCoversQuantizedSpace)
{
    BanditConfig bc;
    bc.stride = 16;
    BanditAllocator bandit(bc);
    SmtCpu cpu = makeMachine({"art", "mcf"});
    bandit.attach(cpu);

    const int total = cpu.config().intRegs;
    ASSERT_EQ(bandit.arms().size(),
              static_cast<std::size_t>(total / bc.stride - 1))
        << "2-thread arms must be exactly enumeratePartitions2";
    for (std::size_t k = 0; k < bandit.arms().size(); ++k) {
        const Partition &arm = bandit.arms()[k];
        EXPECT_EQ(arm.total(), total) << "arm " << k;
        EXPECT_EQ(arm.share[0],
                  bc.stride * (static_cast<int>(k) + 1))
            << "arm " << k << ": lattice must ascend by stride";
        EXPECT_GE(arm.share[0], bc.stride);
        EXPECT_GE(arm.share[1], bc.stride);
    }
}

TEST(Bandit, WideMachineArmsConserveTotalsAndFloors)
{
    BanditConfig bc;
    bc.stride = 8;
    bc.minShare = 4;
    BanditAllocator bandit(bc);
    SmtCpu cpu = makeMachine({"art", "mcf", "gcc", "bzip2"});
    bandit.attach(cpu);

    const int total = cpu.config().intRegs;
    const std::size_t na = 4;
    ASSERT_GE(bandit.arms().size(), 1u);
    ASSERT_LE(bandit.arms().size(), 1 + 3 * na)
        << "spoke construction is bounded at 1 + 3 * active";
    for (std::size_t k = 0; k < bandit.arms().size(); ++k) {
        const Partition &arm = bandit.arms()[k];
        EXPECT_EQ(arm.total(), total) << "arm " << k;
        for (int t = 0; t < arm.numThreads; ++t)
            EXPECT_GE(arm.share[t], bc.minShare)
                << "arm " << k << " thread " << t;
    }
}

TEST(Bandit, Ucb1PlaysUnplayedArmsInIndexOrder)
{
    BanditConfig bc;
    bc.epochSize = 2048;
    bc.stride = 64; // few arms, so the sweep phase ends in-test
    BanditAllocator bandit(bc);
    SmtCpu cpu = makeMachine({"art", "mcf"});
    bandit.attach(cpu);

    const int k = static_cast<int>(bandit.arms().size());
    ASSERT_GT(k, 1);
    EXPECT_EQ(bandit.currentArm(), 0)
        << "attach pulls the first unplayed arm";

    // Tie-break determinism: until every arm has a reward, UCB1 must
    // walk the lattice strictly in index order, whatever the rewards.
    for (int e = 0; e + 1 < k; ++e) {
        cpu.run(bc.epochSize);
        bandit.epoch(cpu, static_cast<std::uint64_t>(e));
        EXPECT_EQ(bandit.currentArm(), e + 1) << "epoch " << e;
    }
    cpu.run(bc.epochSize);
    bandit.epoch(cpu, static_cast<std::uint64_t>(k - 1));
    // Every arm played once: selection is now the strict-argmax UCB
    // index, which two identical replays must agree on exactly.
    EXPECT_EQ(bandit.pulls(), static_cast<std::uint64_t>(k));

    BanditAllocator twin(bc);
    SmtCpu other = makeMachine({"art", "mcf"});
    twin.attach(other);
    for (int e = 0; e < k; ++e) {
        other.run(bc.epochSize);
        twin.epoch(other, static_cast<std::uint64_t>(e));
    }
    EXPECT_EQ(twin.currentArm(), bandit.currentArm())
        << "identical replays diverged after the sweep phase";
}

TEST(Bandit, ChurnRebuildsLatticeAndReseedsDrainedAnchor)
{
    BanditConfig bc;
    bc.epochSize = 2048;
    bc.stride = 32;
    BanditAllocator bandit(bc);
    SmtCpu cpu = makeMachine({"art", "mcf", "gcc"});
    const int total = cpu.config().intRegs;
    for (int i = 0; i < 3; ++i)
        cpu.setThreadEnabled(static_cast<ThreadId>(i), false);
    bandit.attach(cpu);
    EXPECT_TRUE(bandit.arms().empty()) << "no active threads, no arms";

    // First arrival: one thread is not partitionable, still no arms,
    // but the anchor must hold the whole register file for it.
    cpu.resetContext(0, StreamGenerator(specProfile("twolf"), 7));
    bandit.threadAttached(cpu, 0);
    EXPECT_TRUE(bandit.arms().empty());
    EXPECT_EQ(bandit.anchor().total(), total);

    // Second arrival: the 2-thread lattice appears on contexts {0, 2}.
    cpu.resetContext(2, StreamGenerator(specProfile("gzip"), 8));
    bandit.threadAttached(cpu, 2);
    EXPECT_EQ(bandit.arms().size(),
              static_cast<std::size_t>(total / bc.stride - 1));
    for (const Partition &arm : bandit.arms()) {
        EXPECT_EQ(arm.total(), total);
        EXPECT_EQ(arm.share[1], 0) << "inactive context got registers";
    }
    EXPECT_EQ(bandit.anchor().total(), total);

    // Full drain, then a re-arrival: the drained anchor (total 0) must
    // re-seed so admitAttached has a register file to conserve.
    cpu.idleContext(0);
    bandit.threadDetached(cpu, 0);
    cpu.idleContext(2);
    bandit.threadDetached(cpu, 2);
    EXPECT_TRUE(bandit.arms().empty());
    EXPECT_EQ(bandit.anchor().total(), 0) << "drained anchor keeps shares";

    cpu.resetContext(1, StreamGenerator(specProfile("mesa"), 9));
    bandit.threadAttached(cpu, 1);
    EXPECT_EQ(bandit.anchor().total(), total)
        << "re-seed lost the register file";
    EXPECT_EQ(bandit.anchor().share[1], total);
}

TEST(RlAlloc, ChurnKeepsAnchorConservedAndClearsStaleRows)
{
    RlConfig rc;
    rc.epochSize = 2048;
    RlAllocator rl(rc);
    SmtCpu cpu = makeMachine({"art", "mcf"});
    const int total = cpu.config().intRegs;
    rl.attach(cpu);
    EXPECT_EQ(rl.anchor().total(), total);

    // Learn something, then churn thread 0 out and back in: its Q
    // rows/columns must reset (a new job's dynamics are unrelated)
    // and the anchor must stay conserved throughout.
    for (int e = 0; e < 4; ++e) {
        cpu.run(rc.epochSize);
        rl.epoch(cpu, static_cast<std::uint64_t>(e));
    }
    cpu.idleContext(0);
    rl.threadDetached(cpu, 0);
    EXPECT_EQ(rl.anchor().total(), total);
    EXPECT_EQ(rl.anchor().share[0], 0);

    cpu.resetContext(0, StreamGenerator(specProfile("twolf"), 3));
    rl.threadAttached(cpu, 0);
    EXPECT_EQ(rl.anchor().total(), total);
    for (int a = 0; a <= RlAllocator::kStay; ++a)
        EXPECT_EQ(rl.qValue(0, a), 0.0)
            << "stale Q row survived churn, action " << a;
    for (int s = 0; s < kMaxThreads; ++s)
        EXPECT_EQ(rl.qValue(s, 0), 0.0)
            << "stale Q column survived churn, state " << s;
}

TEST(Bandit, ExportsEpochSwitchAndRebuildStats)
{
    StatRegistry &stats = globalStats();
    std::uint64_t epochs0 =
        stats.counter("smthill.bandit.epochs").value();
    std::uint64_t switches0 =
        stats.counter("smthill.bandit.switches").value();
    std::uint64_t rebuilds0 =
        stats.counter("smthill.bandit.rebuilds").value();

    BanditConfig bc;
    bc.epochSize = 2048;
    bc.stride = 64;
    BanditAllocator bandit(bc);
    SmtCpu cpu = makeMachine({"art", "mcf"});
    bandit.attach(cpu);
    EXPECT_GE(stats.counter("smthill.bandit.rebuilds").value(),
              rebuilds0 + 1)
        << "attach must rebuild the arm lattice";

    const int k = static_cast<int>(bandit.arms().size());
    for (int e = 0; e < k; ++e) {
        cpu.run(bc.epochSize);
        bandit.epoch(cpu, static_cast<std::uint64_t>(e));
    }
    EXPECT_EQ(stats.counter("smthill.bandit.epochs").value(),
              epochs0 + static_cast<std::uint64_t>(k));
    // The sweep phase pulls each arm once, so the first k epochs
    // switch arms at least k - 1 times.
    EXPECT_GE(stats.counter("smthill.bandit.switches").value(),
              switches0 + static_cast<std::uint64_t>(k - 1));
}

TEST(RlAlloc, ExportsEpochExploreAndAnchorMoveStats)
{
    StatRegistry &stats = globalStats();
    std::uint64_t epochs0 = stats.counter("smthill.rl.epochs").value();
    std::uint64_t explores0 =
        stats.counter("smthill.rl.explores").value();
    std::uint64_t moves0 =
        stats.counter("smthill.rl.anchor_moves").value();

    RlConfig rc;
    rc.epochSize = 2048;
    RlAllocator rl(rc);
    SmtCpu cpu = makeMachine({"art", "mcf"});
    rl.attach(cpu);
    constexpr int kEpochs = 24;
    for (int e = 0; e < kEpochs; ++e) {
        cpu.run(rc.epochSize);
        rl.epoch(cpu, static_cast<std::uint64_t>(e));
    }
    EXPECT_EQ(stats.counter("smthill.rl.epochs").value(),
              epochs0 + kEpochs);
    // Greedy/explore and anchor movement depend on the seeded streams;
    // both counters are monotone, so the floor assertion is exact.
    EXPECT_GE(stats.counter("smthill.rl.explores").value(), explores0);
    EXPECT_GE(stats.counter("smthill.rl.anchor_moves").value(), moves0);
}

} // namespace
} // namespace smthill
