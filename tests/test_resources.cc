/**
 * @file
 * Unit tests for Partition and the proportional limit derivation of
 * Section 3.1.2.
 */

#include <gtest/gtest.h>

#include "pipeline/resources.hh"
#include "pipeline/smt_config.hh"

namespace smthill
{
namespace
{

TEST(Partition, EqualSplitsExactly)
{
    Partition p = Partition::equal(2, 256);
    EXPECT_EQ(p.share[0], 128);
    EXPECT_EQ(p.share[1], 128);
    EXPECT_EQ(p.total(), 256);
}

TEST(Partition, EqualHandlesRemainder)
{
    Partition p = Partition::equal(3, 256);
    EXPECT_EQ(p.total(), 256);
    for (int i = 0; i < 3; ++i) {
        EXPECT_GE(p.share[i], 85);
        EXPECT_LE(p.share[i], 86);
    }
}

TEST(Partition, ClampMinPreservesTotal)
{
    Partition p;
    p.numThreads = 3;
    p.share = {2, 250, 4};
    p.clampMin(8);
    EXPECT_EQ(p.total(), 256);
    for (int i = 0; i < 3; ++i)
        EXPECT_GE(p.share[i], 8);
}

TEST(Partition, ClampMinInfeasibleFloorDegrades)
{
    // Regression (fuzzer stage A): min_share 100 x 3 threads > 256 is
    // infeasible; clampMin used to bail out half-done, leaving shares
    // below every floor. It must degrade to the best feasible floor
    // (total / numThreads = 85) and still conserve the total.
    Partition p;
    p.numThreads = 3;
    p.share = {100, 56, 100};
    p.clampMin(100);
    EXPECT_EQ(p.total(), 256);
    for (int i = 0; i < 3; ++i)
        EXPECT_GE(p.share[i], 85) << p.str();
}

TEST(Partition, ClampMinExactlyFeasibleFloor)
{
    // min_share * numThreads == total: the only valid result is the
    // equal split.
    Partition p;
    p.numThreads = 4;
    p.share = {0, 0, 0, 256};
    p.clampMin(64);
    EXPECT_EQ(p.total(), 256);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(p.share[i], 64) << p.str();
}

TEST(Partition, ClampMinLeavesFeasiblePartitionsAlone)
{
    Partition p;
    p.numThreads = 3;
    p.share = {10, 116, 130};
    Partition before = p;
    p.clampMin(8);
    EXPECT_EQ(p, before);
}

TEST(Partition, StrFormat)
{
    Partition p;
    p.numThreads = 2;
    p.share = {100, 156};
    EXPECT_EQ(p.str(), "100/156");
}

TEST(DeriveLimits, ProportionalScaling)
{
    SmtConfig cfg;
    Partition p;
    p.numThreads = 2;
    p.share = {64, 192};
    DerivedLimits lim = deriveLimits(p, cfg);
    EXPECT_EQ(lim.intRegs[0], 64);
    EXPECT_EQ(lim.intRegs[1], 192);
    // 64/256 of the 80-entry IQ and 512-entry ROB.
    EXPECT_EQ(lim.intIq[0], 20);
    EXPECT_EQ(lim.intIq[1], 60);
    EXPECT_EQ(lim.rob[0], 128);
    EXPECT_EQ(lim.rob[1], 384);
}

TEST(DeriveLimits, MinimumOfOne)
{
    SmtConfig cfg;
    Partition p;
    p.numThreads = 2;
    p.share = {0, 256};
    DerivedLimits lim = deriveLimits(p, cfg);
    EXPECT_GE(lim.intRegs[0], 1);
    EXPECT_GE(lim.intIq[0], 1);
    EXPECT_GE(lim.rob[0], 1);
}

TEST(Occupancy, Totals)
{
    Occupancy o;
    o.intIq = {3, 4, 0, 0, 0, 0, 0, 0};
    o.rob = {10, 20, 30, 0, 0, 0, 0, 0};
    EXPECT_EQ(o.totalIntIq(), 7);
    EXPECT_EQ(o.totalRob(), 60);
    EXPECT_EQ(o.totalLsq(), 0);
}

TEST(SmtConfig, DefaultsMatchTable1)
{
    SmtConfig cfg;
    EXPECT_EQ(cfg.fetchWidth, 8);
    EXPECT_EQ(cfg.issueWidth, 8);
    EXPECT_EQ(cfg.commitWidth, 8);
    EXPECT_EQ(cfg.ifqSize, 32);
    EXPECT_EQ(cfg.intIqSize, 80);
    EXPECT_EQ(cfg.fpIqSize, 80);
    EXPECT_EQ(cfg.lsqSize, 256);
    EXPECT_EQ(cfg.intRegs, 256);
    EXPECT_EQ(cfg.fpRegs, 256);
    EXPECT_EQ(cfg.robSize, 512);
    EXPECT_EQ(cfg.intAddUnits, 6);
    EXPECT_EQ(cfg.intMulUnits, 3);
    EXPECT_EQ(cfg.memPorts, 4);
    EXPECT_EQ(cfg.fpAddUnits, 3);
    EXPECT_EQ(cfg.fpMulUnits, 3);
    EXPECT_EQ(cfg.mem.il1.sizeBytes, 64u * 1024);
    EXPECT_EQ(cfg.mem.dl1.ways, 2u);
    EXPECT_EQ(cfg.mem.ul2.sizeBytes, 1024u * 1024);
    EXPECT_EQ(cfg.mem.ul2.ways, 4u);
    EXPECT_EQ(cfg.mem.l2Latency, 20u);
    EXPECT_EQ(cfg.mem.memFirstChunk, 300u);
    EXPECT_EQ(cfg.mem.memInterChunk, 6u);
    EXPECT_EQ(cfg.gshareEntries, 8192u);
    EXPECT_EQ(cfg.bimodalEntries, 2048u);
    EXPECT_EQ(cfg.metaEntries, 8192u);
    EXPECT_EQ(cfg.btbEntries, 2048u);
    EXPECT_EQ(cfg.btbWays, 4u);
    EXPECT_EQ(cfg.rasEntries, 64u);
    cfg.validate(); // must not abort
}

} // namespace
} // namespace smthill
