/**
 * @file
 * Unit tests for the hill-width analysis (Section 3.3.1).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/hill_width.hh"

namespace smthill
{
namespace
{

TEST(HillWidth, SharpPeakHasSmallWidth)
{
    std::vector<int> shares;
    std::vector<double> curve;
    for (int s = 16; s <= 240; s += 16) {
        shares.push_back(s);
        // A narrow spike at 128.
        curve.push_back(s == 128 ? 1.0 : 0.5);
    }
    EXPECT_LE(hillWidth(shares, curve, 0.99), 16.0);
}

TEST(HillWidth, FlatCurveHasFullWidth)
{
    std::vector<int> shares;
    std::vector<double> curve;
    for (int s = 16; s <= 240; s += 16) {
        shares.push_back(s);
        curve.push_back(1.0);
    }
    EXPECT_DOUBLE_EQ(hillWidth(shares, curve, 0.99), 224.0);
}

TEST(HillWidth, GaussianHillWidthGrowsAsLevelDrops)
{
    std::vector<int> shares;
    std::vector<double> curve;
    for (int s = 2; s <= 254; s += 2) {
        shares.push_back(s);
        double x = (s - 128.0) / 60.0;
        curve.push_back(std::exp(-x * x));
    }
    HillWidthProfile p = hillWidthProfile(shares, curve);
    EXPECT_LT(p.w99, p.w98);
    EXPECT_LT(p.w98, p.w95);
    EXPECT_LT(p.w95, p.w90);
}

TEST(HillWidth, OffCenterPeak)
{
    // Peaks need not be at the middle of the partition space
    // (Section 3.3.1 explicitly notes this).
    std::vector<int> shares;
    std::vector<double> curve;
    for (int s = 16; s <= 240; s += 16) {
        shares.push_back(s);
        double x = (s - 48.0) / 30.0;
        curve.push_back(std::exp(-x * x));
    }
    double w = hillWidth(shares, curve, 0.9);
    EXPECT_GT(w, 0.0);
    EXPECT_LT(w, 100.0);
}

TEST(HillWidth, OnlyContiguousRegionCounts)
{
    // Two peaks: the secondary peak's region must not add to the
    // width of the maximal peak.
    std::vector<int> shares = {16, 48, 80, 112, 144, 176, 208, 240};
    std::vector<double> curve = {0.95, 0.4, 0.4, 0.4, 1.0, 0.4, 0.4, 0.4};
    EXPECT_LE(hillWidth(shares, curve, 0.9), 32.0)
        << "the disjoint 0.95 point is a separate peak";
}

TEST(HillWidth, SinglePointCurve)
{
    EXPECT_DOUBLE_EQ(hillWidth({128}, {1.0}, 0.99), 1.0);
}

TEST(HillWidth, EmptyCurve)
{
    EXPECT_DOUBLE_EQ(hillWidth({}, {}, 0.99), 0.0);
}

TEST(HillWidth, MismatchedLengthsDie)
{
    EXPECT_DEATH(hillWidth({1, 2}, {1.0}, 0.9), "mismatch");
}

TEST(HillWidth, DullVsSharpClassification)
{
    // The paper's classification: dull peaks have hillWidth_0.99 of
    // 32+ registers; sharp peaks under 8. Build one of each.
    std::vector<int> shares;
    std::vector<double> dull, sharp;
    for (int s = 2; s <= 254; s += 2) {
        shares.push_back(s);
        double xd = (s - 128.0) / 200.0;
        dull.push_back(1.0 - xd * xd); // very wide parabola
        double xs = (s - 128.0) / 12.0;
        sharp.push_back(std::exp(-xs * xs));
    }
    EXPECT_GE(hillWidth(shares, dull, 0.99), 32.0);
    EXPECT_LE(hillWidth(shares, sharp, 0.99), 8.0);
}

} // namespace
} // namespace smthill
