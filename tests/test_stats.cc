/**
 * @file
 * Unit tests for the statistics helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hh"

namespace smthill
{
namespace
{

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-9);
}

TEST(RunningStat, MergeMatchesCombinedStream)
{
    RunningStat a, b, all;
    for (int i = 0; i < 10; ++i) {
        a.add(i);
        all.add(i);
    }
    for (int i = 10; i < 25; ++i) {
        b.add(i * 0.5);
        all.add(i * 0.5);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.mean(), all.mean());
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
    EXPECT_NEAR(a.stddev(), all.stddev(), 1e-12);
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, empty;
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(RunningStat, ResetClears)
{
    RunningStat s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, CountsAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);   // bucket 0
    h.add(9.5);   // bucket 9
    h.add(-5.0);  // clamps to 0
    h.add(50.0);  // clamps to 9
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(9), 2u);
    EXPECT_EQ(h.totalCount(), 4u);
}

TEST(Histogram, BucketMid)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.bucketMid(0), 0.5);
    EXPECT_DOUBLE_EQ(h.bucketMid(9), 9.5);
}

TEST(Histogram, QuantileMonotone)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    double q10 = h.quantile(0.10);
    double q50 = h.quantile(0.50);
    double q90 = h.quantile(0.90);
    EXPECT_LT(q10, q50);
    EXPECT_LT(q50, q90);
    EXPECT_NEAR(q50, 50.0, 2.0);
}

TEST(Histogram, QuantileEmpty)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(VectorStats, MeanOf)
{
    EXPECT_DOUBLE_EQ(meanOf({}), 0.0);
    EXPECT_DOUBLE_EQ(meanOf({2.0, 4.0}), 3.0);
}

TEST(VectorStats, GeomeanOf)
{
    EXPECT_DOUBLE_EQ(geomeanOf({}), 0.0);
    EXPECT_NEAR(geomeanOf({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomeanOf({2.0, 0.0}), 0.0);
}

} // namespace
} // namespace smthill
