/**
 * @file
 * Unit tests for the minimal JSON value type: writer/parser
 * round-trips, escaping, number fidelity, and error reporting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/json.hh"

namespace smthill
{
namespace
{

Json
parseOk(const std::string &text)
{
    Json out;
    std::string error;
    EXPECT_TRUE(Json::parse(text, out, error)) << error;
    return out;
}

TEST(Json, DefaultIsNull)
{
    Json j;
    EXPECT_TRUE(j.isNull());
    EXPECT_EQ(j.dump(), "null");
}

TEST(Json, ScalarsDump)
{
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(-7).dump(), "-7");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, IntegersSurviveExactly)
{
    // Counter values are uint64 but well below 2^53 in practice;
    // anything that fits a double must round-trip digit-exact.
    std::uint64_t big = 123456789012345ULL;
    Json j(big);
    EXPECT_EQ(j.dump(), "123456789012345");
    Json back = parseOk(j.dump());
    EXPECT_EQ(static_cast<std::uint64_t>(back.asInt()), big);
}

TEST(Json, DoublesRoundTripBitExact)
{
    for (double v : {0.1, 1.0 / 3.0, 2.5e-9, 1.7976931348623157e308,
                     -0.0078125, 3.141592653589793}) {
        Json back = parseOk(Json(v).dump());
        EXPECT_EQ(back.asDouble(), v) << Json(v).dump();
    }
}

TEST(Json, NonFiniteDumpsAsNull)
{
    EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(),
              "null");
    EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

TEST(Json, StringEscapes)
{
    Json j(std::string("a\"b\\c\n\t\x01"));
    std::string dumped = j.dump();
    EXPECT_EQ(dumped, "\"a\\\"b\\\\c\\n\\t\\u0001\"");
    EXPECT_EQ(parseOk(dumped).asString(), j.asString());
}

TEST(Json, ParsesUnicodeEscape)
{
    EXPECT_EQ(parseOk("\"\\u0041\\u00e9\"").asString(), "A\xc3\xa9");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Json o = Json::object();
    o.set("zebra", Json(1));
    o.set("alpha", Json(2));
    o.set("mid", Json(3));
    EXPECT_EQ(o.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
    EXPECT_EQ(o.members()[0].first, "zebra");
    EXPECT_EQ(o.at("alpha").asInt(), 2);
    EXPECT_TRUE(o.contains("mid"));
    EXPECT_FALSE(o.contains("missing"));
}

TEST(Json, SetOverwritesInPlace)
{
    Json o = Json::object();
    o.set("k", Json(1));
    o.set("k", Json(2));
    EXPECT_EQ(o.size(), 1u);
    EXPECT_EQ(o.at("k").asInt(), 2);
}

TEST(Json, NestedRoundTrip)
{
    Json doc = Json::object();
    doc.set("name", Json("trace"));
    doc.set("ok", Json(true));
    doc.set("none", Json());
    Json arr = Json::array();
    arr.push(Json(1));
    arr.push(Json(2.5));
    Json inner = Json::object();
    inner.set("deep", Json("value"));
    arr.push(std::move(inner));
    doc.set("items", std::move(arr));

    for (int indent : {0, 2}) {
        Json back = parseOk(doc.dump(indent));
        EXPECT_TRUE(back == doc) << doc.dump(indent);
    }
}

TEST(Json, ParseRejectsGarbage)
{
    Json out;
    std::string error;
    EXPECT_FALSE(Json::parse("", out, error));
    EXPECT_FALSE(Json::parse("{", out, error));
    EXPECT_FALSE(Json::parse("[1,]", out, error));
    EXPECT_FALSE(Json::parse("\"unterminated", out, error));
    EXPECT_FALSE(Json::parse("tru", out, error));
    EXPECT_FALSE(Json::parse("1 2", out, error))
        << "trailing data must be rejected";
    EXPECT_FALSE(Json::parse("{'single': 1}", out, error))
        << "no extensions: single quotes are not JSON";
    EXPECT_FALSE(error.empty());
}

TEST(Json, ParseAcceptsWhitespace)
{
    Json back = parseOk("  {\n\t\"a\" : [ 1 , 2 ] }\n");
    EXPECT_EQ(back.at("a").items()[1].asInt(), 2);
}

TEST(Json, EqualityComparesStructurally)
{
    EXPECT_TRUE(parseOk("{\"a\":1,\"b\":[true,null]}") ==
                parseOk("{ \"a\": 1, \"b\": [ true, null ] }"));
    EXPECT_FALSE(parseOk("{\"a\":1}") == parseOk("{\"a\":2}"));
    EXPECT_FALSE(parseOk("[1]") == parseOk("[1,1]"));
}

TEST(Json, JsonEscapeHelper)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
}

} // namespace
} // namespace smthill
