/**
 * @file
 * Unit tests for program profiles and the SPEC-2000-like registry.
 */

#include <gtest/gtest.h>

#include <set>

#include "trace/program_profile.hh"
#include "trace/spec_profiles.hh"

namespace smthill
{
namespace
{

TEST(ProgramProfile, BuildProducesValidProfile)
{
    ProfileParams pp;
    pp.name = "toy";
    pp.numBlocks = 16;
    ProgramProfile prof = buildProfile(pp);
    EXPECT_EQ(prof.blocks.size(), 16u);
    EXPECT_FALSE(prof.phases.empty());
    prof.validate(); // must not abort
}

TEST(ProgramProfile, BuildIsDeterministic)
{
    ProfileParams pp;
    pp.name = "toy";
    pp.seed = 99;
    ProgramProfile a = buildProfile(pp);
    ProgramProfile b = buildProfile(pp);
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (std::size_t i = 0; i < a.blocks.size(); ++i) {
        EXPECT_EQ(a.blocks[i].length, b.blocks[i].length);
        EXPECT_EQ(a.blocks[i].takenTarget, b.blocks[i].takenTarget);
        EXPECT_EQ(a.blocks[i].branch, b.blocks[i].branch);
    }
}

TEST(ProgramProfile, BlockPcsAreDisjointAndOrdered)
{
    ProgramProfile prof = buildProfile(ProfileParams{.name = "toy"});
    Addr prev_end = prof.codeBase;
    for (std::uint32_t i = 0; i < prof.blocks.size(); ++i) {
        Addr pc = prof.blockPc(i);
        EXPECT_EQ(pc, prev_end);
        prev_end = pc + (prof.blocks[i].length + 1) * 4;
    }
    EXPECT_EQ(prof.codeBytes(), prev_end - prof.codeBase);
}

TEST(ProgramProfile, FreqClassControlsPhaseCount)
{
    ProfileParams pp;
    pp.name = "toy";
    pp.freqClass = 0;
    EXPECT_EQ(buildProfile(pp).phases.size(), 1u);
    pp.freqClass = 1;
    EXPECT_EQ(buildProfile(pp).phases.size(), 2u);
    pp.freqClass = 2;
    EXPECT_EQ(buildProfile(pp).phases.size(), 2u);
}

TEST(ProgramProfile, HighFreqPhasesAreShorterThanLowFreq)
{
    ProfileParams pp;
    pp.name = "toy";
    pp.ipcEstimate = 1.0;
    pp.freqClass = 2;
    auto high = buildProfile(pp);
    pp.freqClass = 1;
    auto low = buildProfile(pp);
    EXPECT_LT(high.phases[0].lengthInsts, low.phases[0].lengthInsts);
}

TEST(ProgramProfile, PhaseLengthScalesWithIpcEstimate)
{
    ProfileParams pp;
    pp.name = "toy";
    pp.freqClass = 1;
    pp.ipcEstimate = 2.0;
    auto fast = buildProfile(pp);
    pp.ipcEstimate = 0.1;
    auto slow = buildProfile(pp);
    EXPECT_GT(fast.phases[0].lengthInsts, slow.phases[0].lengthInsts);
}

TEST(ProgramProfile, MixIsNormalizable)
{
    ProgramProfile prof = buildProfile(ProfileParams{.name = "toy"});
    for (const auto &b : prof.blocks) {
        double sum = b.mix.intAlu + b.mix.intMul + b.mix.fpAlu +
                     b.mix.fpMul + b.mix.load + b.mix.store;
        EXPECT_GT(sum, 0.0);
    }
}

TEST(SpecProfiles, HasAll22Benchmarks)
{
    EXPECT_EQ(specBenchmarkNames().size(), 22u);
}

TEST(SpecProfiles, AllBuildAndValidate)
{
    for (const auto &name : specBenchmarkNames()) {
        ProgramProfile prof = specProfile(name);
        EXPECT_EQ(prof.name, name);
        prof.validate();
    }
}

TEST(SpecProfiles, TypeColumnsMatchTable2)
{
    // Spot-check the Type and category flags against Table 2.
    EXPECT_FALSE(specInfo("bzip2").isFp);
    EXPECT_FALSE(specInfo("bzip2").isMem);
    EXPECT_TRUE(specInfo("swim").isFp);
    EXPECT_TRUE(specInfo("swim").isMem);
    EXPECT_FALSE(specInfo("mcf").isFp);
    EXPECT_TRUE(specInfo("mcf").isMem);
    EXPECT_TRUE(specInfo("apsi").isFp);
    EXPECT_FALSE(specInfo("apsi").isMem);
}

TEST(SpecProfiles, FreqColumnMatchesTable2)
{
    EXPECT_EQ(specInfo("mcf").freqClass, 1);    // Low
    EXPECT_EQ(specInfo("gzip").freqClass, 2);   // High
    EXPECT_EQ(specInfo("swim").freqClass, 0);   // No
    EXPECT_EQ(specInfo("vortex").freqClass, 2); // High
}

TEST(SpecProfiles, PaperRscValuesPreserved)
{
    EXPECT_EQ(specInfo("swim").paperRsc, 213);
    EXPECT_EQ(specInfo("perlbmk").paperRsc, 59);
    EXPECT_EQ(specInfo("gap").paperRsc, 208);
}

TEST(SpecProfiles, MemBenchmarksTouchMemory)
{
    for (const auto &name : specBenchmarkNames()) {
        const auto &params = specParams(name);
        if (params.isMem) {
            EXPECT_GT(params.pLoadCold, 0.0) << name;
        } else {
            EXPECT_LT(params.pLoadCold, 0.01) << name;
        }
    }
}

TEST(SpecProfiles, UnknownNameIsRecognized)
{
    EXPECT_TRUE(isSpecBenchmark("art"));
    EXPECT_FALSE(isSpecBenchmark("doom"));
}

TEST(SpecProfiles, SeedsAreUnique)
{
    std::set<std::uint64_t> seeds;
    for (const auto &name : specBenchmarkNames())
        seeds.insert(specParams(name).seed);
    EXPECT_EQ(seeds.size(), specBenchmarkNames().size());
}

} // namespace
} // namespace smthill
