/**
 * @file
 * The parallel execution layer's determinism contract: OFF-LINE
 * exhaustive learning and RAND-HILL must produce bit-identical epoch
 * records and chosen partitions at jobs=1 (the exact legacy serial
 * path) and jobs=8, and runGrid cells must reduce to the same values
 * as a serial loop.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/offline_exhaustive.hh"
#include "core/rand_hill.hh"
#include "harness/runner.hh"
#include "policy/bandit.hh"
#include "policy/icount.hh"
#include "policy/rl_alloc.hh"
#include "trace/program_profile.hh"

namespace smthill
{
namespace
{

ProgramProfile
profileWith(double p_cold, int dep, const char *name)
{
    ProfileParams pp;
    pp.name = name;
    pp.numBlocks = 12;
    pp.avgBlockLen = 8;
    pp.pLoadCold = p_cold;
    pp.meanDepDist = dep;
    pp.serialFrac = 0.1;
    return buildProfile(pp);
}

SmtCpu
twoThreadCpu()
{
    SmtConfig cfg;
    cfg.numThreads = 2;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(profileWith(0.08, 30, "mem"), 0);
    gens.emplace_back(profileWith(0.0, 6, "ilp"), 1);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(80000);
    return cpu;
}

SmtCpu
fourThreadCpu()
{
    SmtConfig cfg;
    cfg.numThreads = 4;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(profileWith(0.08, 30, "mem0"), 0);
    gens.emplace_back(profileWith(0.0, 6, "ilp1"), 1);
    gens.emplace_back(profileWith(0.03, 14, "mix2"), 2);
    gens.emplace_back(profileWith(0.0, 10, "ilp3"), 3);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(80000);
    return cpu;
}

void
expectIdenticalEpochs(const OfflineResult &a, const OfflineResult &b)
{
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (std::size_t e = 0; e < a.epochs.size(); ++e) {
        const OfflineEpoch &ea = a.epochs[e];
        const OfflineEpoch &eb = b.epochs[e];
        EXPECT_EQ(ea.best, eb.best) << "epoch " << e;
        EXPECT_EQ(ea.metricValue, eb.metricValue) << "epoch " << e;
        ASSERT_EQ(ea.ipc.numThreads, eb.ipc.numThreads);
        for (int t = 0; t < ea.ipc.numThreads; ++t)
            EXPECT_EQ(ea.ipc.ipc[t], eb.ipc.ipc[t])
                << "epoch " << e << " thread " << t;
        EXPECT_EQ(ea.curveShares, eb.curveShares) << "epoch " << e;
        EXPECT_EQ(ea.curve, eb.curve) << "epoch " << e;
    }
}

TEST(ParallelDeterminism, OfflineIdenticalAcrossJobCounts)
{
    OfflineConfig oc;
    oc.epochSize = 8192;
    oc.stride = 16; // 15 trials per epoch
    oc.metric = PerfMetric::AvgIpc;
    oc.keepCurves = true;

    OfflineConfig serial = oc;
    serial.jobs = 1;
    OfflineConfig parallel = oc;
    parallel.jobs = 8;

    SmtCpu a = twoThreadCpu();
    SmtCpu b = twoThreadCpu();
    OfflineResult ra = OfflineExhaustive(serial).run(a, 3);
    OfflineResult rb = OfflineExhaustive(parallel).run(b, 3);

    expectIdenticalEpochs(ra, rb);
    // The advanced machines must also agree exactly.
    EXPECT_EQ(a.now(), b.now());
    EXPECT_EQ(a.stats().committedTotal(), b.stats().committedTotal());
}

TEST(ParallelDeterminism, OfflineTieBreakIsFirstMaximumInCurveOrder)
{
    // The reduce keeps the first strict maximum in enumeration
    // order, and enumeratePartitions2 enumerates ascending share[0],
    // so any exact metric tie resolves to the lowest share[0] — for
    // every job count. Verified against the retained curve.
    OfflineConfig oc;
    oc.epochSize = 4096;
    oc.stride = 32;
    oc.metric = PerfMetric::AvgIpc;
    oc.keepCurves = true;
    for (int jobs : {1, 8}) {
        oc.jobs = jobs;
        SmtCpu cpu = twoThreadCpu();
        OfflineEpoch rec = OfflineExhaustive(oc).stepEpoch(cpu);
        ASSERT_FALSE(rec.curve.empty());
        // Curve shares ascend, so the first maximum is the lowest
        // share[0] among maxima; best must be exactly that trial.
        std::size_t first_max = 0;
        for (std::size_t i = 1; i < rec.curve.size(); ++i) {
            EXPECT_GT(rec.curveShares[i], rec.curveShares[i - 1]);
            if (rec.curve[i] > rec.curve[first_max])
                first_max = i;
        }
        EXPECT_EQ(rec.best.share[0], rec.curveShares[first_max])
            << "jobs=" << jobs;
        EXPECT_EQ(rec.metricValue, rec.curve[first_max]);
    }
}

TEST(ParallelDeterminism, RandHillIdenticalAcrossJobCounts)
{
    RandHillConfig rh;
    rh.epochSize = 4096;
    rh.iterations = 16;
    rh.metric = PerfMetric::AvgIpc;
    rh.seed = 7;

    RandHillConfig serial = rh;
    serial.jobs = 1;
    RandHillConfig parallel = rh;
    parallel.jobs = 8;

    SmtCpu a = fourThreadCpu();
    SmtCpu b = fourThreadCpu();
    RandHill hs(serial);
    RandHill hp(parallel);
    OfflineResult ra = hs.run(a, 3);
    OfflineResult rb = hp.run(b, 3);

    expectIdenticalEpochs(ra, rb);
    EXPECT_EQ(a.now(), b.now());
    EXPECT_EQ(a.stats().committedTotal(), b.stats().committedTotal());
}

TEST(ParallelDeterminism, RandHillPartialLastRoundMatches)
{
    // iterations not a multiple of numThreads: the trailing partial
    // round must behave identically in both modes.
    RandHillConfig rh;
    rh.epochSize = 4096;
    rh.iterations = 10; // 2 full rounds + 2 trials on 4 threads
    rh.metric = PerfMetric::AvgIpc;

    RandHillConfig serial = rh;
    serial.jobs = 1;
    RandHillConfig parallel = rh;
    parallel.jobs = 8;

    SmtCpu a = fourThreadCpu();
    SmtCpu b = fourThreadCpu();
    OfflineEpoch ea = RandHill(serial).stepEpoch(a);
    OfflineEpoch eb = RandHill(parallel).stepEpoch(b);
    EXPECT_EQ(ea.best, eb.best);
    EXPECT_EQ(ea.metricValue, eb.metricValue);
}

TEST(ParallelDeterminism, RunGridMatchesSerialLoop)
{
    // Same cells through runGrid at jobs=4 and a plain loop: the
    // per-cell outputs must agree exactly (cells are pure functions
    // of the shared warm machine).
    RunConfig rc;
    rc.epochs = 2;
    rc.epochSize = 4096;
    rc.warmupCycles = 40000;

    const std::vector<Workload> workloads = {
        workloadByName("art-mcf"), workloadByName("swim-twolf")};

    auto runCell = [&](std::size_t i) {
        IcountPolicy icount;
        return runPolicy(workloads[i], icount, rc)
            .overallIpc.ipc[0];
    };

    std::vector<double> serial(workloads.size());
    for (std::size_t i = 0; i < workloads.size(); ++i)
        serial[i] = runCell(i);

    std::vector<double> parallel(workloads.size());
    runGrid(workloads.size(), 4,
            [&](std::size_t i) { parallel[i] = runCell(i); });

    EXPECT_EQ(serial, parallel);
}

/**
 * The new learners (BANDIT-UCB, BANDIT-EXP3, RL-Q) under the grid:
 * jobs=1 (exact serial path) and jobs=4 must produce bit-identical
 * epoch records and machine end states. Their seeded Rng streams
 * live inside the policy object each cell constructs, so nothing
 * about worker scheduling may leak into the results.
 */
TEST(ParallelDeterminism, NewLearnersIdenticalAcrossJobCounts)
{
    const Cycle epoch_size = 8192;
    auto makeLearner = [&](int li) -> std::unique_ptr<ResourcePolicy> {
        switch (li) {
          case 0: {
            BanditConfig bc;
            bc.epochSize = epoch_size;
            bc.seed = 5;
            return std::make_unique<BanditAllocator>(bc);
          }
          case 1: {
            BanditConfig bc;
            bc.epochSize = epoch_size;
            bc.algo = BanditAlgo::Exp3;
            bc.seed = 5;
            return std::make_unique<BanditAllocator>(bc);
          }
          default: {
            RlConfig rc;
            rc.epochSize = epoch_size;
            rc.epsilon = 0.3; // make sure exploration draws happen
            rc.seed = 5;
            return std::make_unique<RlAllocator>(rc);
          }
        }
    };

    const SmtCpu two = twoThreadCpu();
    const SmtCpu four = fourThreadCpu();
    const std::size_t cells = 6; // 3 learners x 2 machines

    auto runAll = [&](int jobs) {
        std::vector<RunResult> out(cells);
        runGrid(cells, jobs, [&](std::size_t cell) {
            auto p = makeLearner(static_cast<int>(cell % 3));
            out[cell] =
                runPolicyOn(cell < 3 ? two : four, *p, 4, epoch_size);
        });
        return out;
    };

    std::vector<RunResult> serial = runAll(1);
    std::vector<RunResult> parallel = runAll(4);
    for (std::size_t cell = 0; cell < cells; ++cell) {
        const RunResult &a = serial[cell];
        const RunResult &b = parallel[cell];
        ASSERT_EQ(a.epochs.size(), b.epochs.size()) << "cell " << cell;
        for (std::size_t e = 0; e < a.epochs.size(); ++e) {
            EXPECT_EQ(a.epochs[e].partition, b.epochs[e].partition)
                << "cell " << cell << " epoch " << e;
            EXPECT_EQ(a.epochs[e].partitioned, b.epochs[e].partitioned)
                << "cell " << cell << " epoch " << e;
            for (int t = 0; t < a.epochs[e].ipc.numThreads; ++t)
                EXPECT_EQ(a.epochs[e].ipc.ipc[t], b.epochs[e].ipc.ipc[t])
                    << "cell " << cell << " epoch " << e;
        }
        EXPECT_EQ(a.finalSnapshot.cycle, b.finalSnapshot.cycle)
            << "cell " << cell;
        for (int t = 0; t < a.finalSnapshot.numThreads; ++t)
            EXPECT_EQ(a.finalSnapshot.stats.committed[t],
                      b.finalSnapshot.stats.committed[t])
                << "cell " << cell << " thread " << t;
    }
}

TEST(ParallelDeterminism, MakeCpuCacheCoherentUnderConcurrency)
{
    // Hammer the warm-machine cache from concurrent cells: every
    // copy of the same workload/config must be the same machine.
    RunConfig rc;
    rc.epochs = 1;
    rc.epochSize = 1024;
    rc.warmupCycles = 20000;
    const Workload &w = workloadByName("art-mcf");

    SmtCpu reference = makeCpu(w, rc);
    std::vector<Cycle> nows(16);
    std::vector<std::uint64_t> committed(16);
    runGrid(16, 8, [&](std::size_t i) {
        SmtCpu cpu = makeCpu(w, rc);
        nows[i] = cpu.now();
        committed[i] = cpu.stats().committedTotal();
    });
    for (std::size_t i = 0; i < 16; ++i) {
        EXPECT_EQ(nows[i], reference.now());
        EXPECT_EQ(committed[i], reference.stats().committedTotal());
    }
}

} // namespace
} // namespace smthill
