/**
 * @file
 * Unit tests for the SMT pipeline core: forward progress, occupancy
 * invariants, statistics, determinism, and checkpoint-by-copy.
 */

#include <gtest/gtest.h>

#include "pipeline/cpu.hh"
#include "trace/spec_profiles.hh"

namespace smthill
{
namespace
{

ProgramProfile
toyProfile(const char *name = "toy", double p_cold = 0.0)
{
    ProfileParams pp;
    pp.name = name;
    pp.numBlocks = 12;
    pp.avgBlockLen = 8;
    pp.pLoadCold = p_cold;
    return buildProfile(pp);
}

SmtCpu
makeToyCpu(int threads, double p_cold = 0.0)
{
    SmtConfig cfg;
    cfg.numThreads = threads;
    std::vector<StreamGenerator> gens;
    for (int i = 0; i < threads; ++i)
        gens.emplace_back(toyProfile(), i);
    if (p_cold > 0.0) {
        gens.clear();
        for (int i = 0; i < threads; ++i)
            gens.emplace_back(toyProfile("toy-mem", p_cold), i);
    }
    return SmtCpu(cfg, std::move(gens));
}

TEST(SmtCpu, MakesForwardProgress)
{
    SmtCpu cpu = makeToyCpu(1);
    cpu.run(20000);
    EXPECT_GT(cpu.stats().committed[0], 500u);
    EXPECT_EQ(cpu.now(), 20000u);
    // After the caches warm, throughput is much higher.
    auto before = cpu.stats().committed[0];
    cpu.run(300000);
    auto warm = cpu.stats().committed[0];
    cpu.run(100000);
    EXPECT_GT(cpu.stats().committed[0] - warm,
              (warm - before) / 4);
    EXPECT_GT(cpu.stats().committed[0], 100000u);
}

TEST(SmtCpu, AllThreadsProgress)
{
    SmtCpu cpu = makeToyCpu(4);
    cpu.run(50000);
    for (int i = 0; i < 4; ++i)
        EXPECT_GT(cpu.stats().committed[i], 1000u) << "thread " << i;
}

TEST(SmtCpu, IpcIsPhysical)
{
    SmtCpu cpu = makeToyCpu(2);
    cpu.run(50000);
    double total_ipc =
        static_cast<double>(cpu.stats().committedTotal()) / 50000.0;
    EXPECT_LE(total_ipc, 8.0) << "cannot exceed commit width";
    EXPECT_GT(total_ipc, 0.5);
}

TEST(SmtCpu, Deterministic)
{
    SmtCpu a = makeToyCpu(2);
    SmtCpu b = makeToyCpu(2);
    a.run(30000);
    b.run(30000);
    EXPECT_EQ(a.stats().committed[0], b.stats().committed[0]);
    EXPECT_EQ(a.stats().committed[1], b.stats().committed[1]);
    EXPECT_EQ(a.stats().mispredicts[0], b.stats().mispredicts[0]);
}

TEST(SmtCpu, CheckpointCopyReplaysIdentically)
{
    SmtCpu cpu = makeToyCpu(2, 0.05);
    cpu.run(10000);
    SmtCpu checkpoint = cpu; // whole-machine checkpoint
    cpu.run(20000);
    checkpoint.run(20000);
    EXPECT_EQ(cpu.stats().committed[0], checkpoint.stats().committed[0]);
    EXPECT_EQ(cpu.stats().committed[1], checkpoint.stats().committed[1]);
    EXPECT_EQ(cpu.stats().flushed[0], checkpoint.stats().flushed[0]);
    EXPECT_EQ(cpu.memory().dl1().misses(),
              checkpoint.memory().dl1().misses());
}

TEST(SmtCpu, CheckpointDivergesUnderDifferentControl)
{
    SmtCpu cpu = makeToyCpu(2);
    cpu.run(10000);
    SmtCpu checkpoint = cpu;
    checkpoint.setPartition(Partition::equal(2, 64)); // tiny machine
    cpu.run(30000);
    checkpoint.run(30000);
    EXPECT_NE(cpu.stats().committedTotal(),
              checkpoint.stats().committedTotal());
}

TEST(SmtCpu, StatsAccumulate)
{
    SmtCpu cpu = makeToyCpu(1, 0.02);
    cpu.run(40000);
    const CpuStats &s = cpu.stats();
    EXPECT_GT(s.fetched[0], s.committed[0] * 9 / 10);
    EXPECT_GT(s.branches[0], 0u);
    EXPECT_GT(s.loads[0], 0u);
    EXPECT_GT(s.committedTotal(), 0u);
}

TEST(SmtCpu, MispredictsOccurAndAreBounded)
{
    SmtCpu cpu = makeToyCpu(1);
    cpu.run(100000);
    const CpuStats &s = cpu.stats();
    EXPECT_GT(s.mispredicts[0], 0u);
    EXPECT_LT(s.mispredicts[0], s.branches[0] / 2)
        << "predictors should do much better than chance";
}

TEST(SmtCpu, OccupancyWithinCapacities)
{
    SmtCpu cpu = makeToyCpu(2, 0.1);
    const SmtConfig &cfg = cpu.config();
    for (int i = 0; i < 20000; ++i) {
        cpu.step();
        const Occupancy &o = cpu.occupancy();
        ASSERT_LE(o.totalIfq(), cfg.ifqSize);
        ASSERT_LE(o.totalIntIq(), cfg.intIqSize);
        ASSERT_LE(o.totalFpIq(), cfg.fpIqSize);
        ASSERT_LE(o.totalIntRegs(), cfg.intRegs);
        ASSERT_LE(o.totalFpRegs(), cfg.fpRegs);
        ASSERT_LE(o.totalRob(), cfg.robSize);
        ASSERT_LE(o.totalLsq(), cfg.lsqSize);
        for (int t = 0; t < 2; ++t) {
            ASSERT_GE(o.intIq[t], 0);
            ASSERT_GE(o.rob[t], 0);
            ASSERT_GE(o.intRegs[t], 0);
            ASSERT_GE(o.lsq[t], 0);
            ASSERT_GE(o.ifq[t], 0);
        }
    }
}

TEST(SmtCpu, DrainsToEmptyWhenDisabled)
{
    SmtCpu cpu = makeToyCpu(1);
    cpu.run(5000);
    cpu.setThreadEnabled(0, false);
    cpu.run(3000); // enough to drain any in-flight work
    const Occupancy &o = cpu.occupancy();
    EXPECT_EQ(o.totalRob(), 0);
    EXPECT_EQ(o.totalIfq(), 0);
    EXPECT_EQ(o.totalIntIq(), 0);
    auto committed = cpu.stats().committed[0];
    cpu.run(1000);
    EXPECT_EQ(cpu.stats().committed[0], committed)
        << "a disabled thread must not commit";
}

TEST(SmtCpu, ReEnableResumes)
{
    SmtCpu cpu = makeToyCpu(2);
    cpu.run(5000);
    cpu.setThreadEnabled(1, false);
    cpu.run(3000);
    auto c1 = cpu.stats().committed[1];
    cpu.setThreadEnabled(1, true);
    cpu.run(5000);
    EXPECT_GT(cpu.stats().committed[1], c1);
}

TEST(SmtCpu, SoloEpochMeasuresOnlyThatThread)
{
    SmtCpu cpu = makeToyCpu(2);
    cpu.run(5000);
    cpu.setThreadEnabled(0, false);
    cpu.run(2000); // drain
    auto c0 = cpu.stats().committed[0];
    auto c1 = cpu.stats().committed[1];
    cpu.run(10000);
    EXPECT_EQ(cpu.stats().committed[0], c0);
    EXPECT_GT(cpu.stats().committed[1], c1 + 1000);
}

TEST(SmtCpu, StallFreezesCommit)
{
    SmtCpu cpu = makeToyCpu(2);
    cpu.run(10000);
    auto before = cpu.stats().committedTotal();
    cpu.stallUntil(cpu.now() + 200);
    // During the stall fetch/dispatch/issue/commit are frozen; only
    // already-issued operations drain. With all-hot loads everything
    // in flight completes within a handful of cycles, so commit stays
    // flat over the stall window.
    cpu.run(200);
    auto after = cpu.stats().committedTotal();
    EXPECT_EQ(after, before);
    cpu.run(2000);
    EXPECT_GT(cpu.stats().committedTotal(), after);
}

TEST(SmtCpu, FetchLockStopsFetchButDrainsPipeline)
{
    SmtCpu cpu = makeToyCpu(2);
    cpu.run(5000);
    cpu.setFetchLocked(0, true);
    EXPECT_TRUE(cpu.fetchLocked(0));
    cpu.run(3000);
    auto c0 = cpu.stats().committed[0];
    cpu.run(2000);
    EXPECT_EQ(cpu.stats().committed[0], c0);
    cpu.setFetchLocked(0, false);
    cpu.run(2000);
    EXPECT_GT(cpu.stats().committed[0], c0);
}

TEST(SmtCpu, IcountFetchFavorsNonCloggedThread)
{
    // Thread 0 is memory-bound (cold misses), thread 1 is clean ILP;
    // without partitioning, ICOUNT alone should still let thread 1
    // commit far more instructions.
    SmtConfig cfg;
    cfg.numThreads = 2;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(toyProfile("mem", 0.15), 0);
    gens.emplace_back(toyProfile("ilp", 0.0), 1);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(100000);
    EXPECT_GT(cpu.stats().committed[1], 2 * cpu.stats().committed[0]);
}

TEST(SmtCpu, BranchObserverSeesCommittedBranches)
{
    SmtCpu cpu = makeToyCpu(1);
    struct Ctx
    {
        std::uint64_t count = 0;
        std::uint64_t insts = 0;
    } ctx;
    cpu.setBranchObserver(
        [](void *c, const CommittedBranch &cb) {
            auto *x = static_cast<Ctx *>(c);
            ++x->count;
            x->insts += cb.blockLength;
        },
        &ctx);
    cpu.run(20000);
    EXPECT_NEAR(static_cast<double>(ctx.count),
                static_cast<double>(cpu.stats().branches[0]), 64.0);
    EXPECT_GT(ctx.insts, 0u);
}

TEST(SmtCpu, ConfigValidationRejectsMismatch)
{
    SmtConfig cfg;
    cfg.numThreads = 2;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(toyProfile(), 0);
    EXPECT_DEATH(
        { SmtCpu cpu(cfg, std::move(gens)); }, "expected 2 programs");
}

TEST(SmtCpu, SingleThreadIpcReasonable)
{
    // A clean ILP toy program on the Table 1 machine should sustain
    // at least ~1 IPC (once warm) and not exceed the 8-wide limit.
    SmtCpu cpu = makeToyCpu(1);
    cpu.run(400000); // warm caches/predictors
    auto before = cpu.stats().committed[0];
    cpu.run(100000);
    double ipc = static_cast<double>(cpu.stats().committed[0] - before) /
                 100000.0;
    EXPECT_GT(ipc, 1.0);
    EXPECT_LT(ipc, 8.0);
}

} // namespace
} // namespace smthill
