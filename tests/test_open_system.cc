/**
 * @file
 * Open-system traffic scenario tests: schedule/run determinism,
 * lifetime-correct per-job accounting, horizon close-out, fairness
 * helpers, and the churn regressions the differential fuzzer forced
 * (flow-counter identity across context resets, per-job report rows
 * on reused contexts).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/hill_climbing.hh"
#include "core/machine_arena.hh"
#include "harness/report.hh"
#include "policy/bandit.hh"
#include "policy/icount.hh"
#include "policy/rl_alloc.hh"
#include "trace/spec_profiles.hh"
#include "validate/invariants.hh"
#include "workload/open_system.hh"

namespace smthill
{
namespace
{

SmtConfig
smallMachine(int threads)
{
    SmtConfig cfg;
    cfg.numThreads = threads;
    return cfg;
}

/** Fast open-system config: short jobs, brisk arrivals, one pool. */
OpenSystemConfig
fastConfig(int jobs, std::uint64_t seed = 11)
{
    OpenSystemConfig oc;
    oc.seed = seed;
    oc.arrivalRate = 1.0 / 2048.0;
    oc.numJobs = jobs;
    oc.minJobInstructions = 2'000;
    oc.maxJobInstructions = 5'000;
    oc.epochSize = 4'096;
    oc.horizon = 2'000'000;
    return oc;
}

bool
sameRun(const OpenSystemResult &a, const OpenSystemResult &b)
{
    if (a.cycles != b.cycles || a.committedTotal != b.committedTotal ||
        a.completedJobs != b.completedJobs ||
        a.horizonJobs != b.horizonJobs ||
        a.maxQueueDepth != b.maxQueueDepth ||
        a.jobs.size() != b.jobs.size())
        return false;
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        const JobRecord &x = a.jobs[i];
        const JobRecord &y = b.jobs[i];
        if (x.arriveCycle != y.arriveCycle ||
            x.attachCycle != y.attachCycle ||
            x.departCycle != y.departCycle || x.context != y.context ||
            x.completed != y.completed ||
            !(x.atAttach == y.atAttach) || !(x.atDepart == y.atDepart))
            return false;
    }
    return true;
}

TEST(OpenSystemSchedule, DeterministicAndBounded)
{
    OpenSystemConfig oc = fastConfig(16);
    oc.slaWeights = true;
    OpenSystem a(smallMachine(2), oc);
    OpenSystem b(smallMachine(4), oc); // machine shape is irrelevant

    ASSERT_EQ(a.schedule().size(), 16u);
    Cycle prev = 0;
    for (std::size_t i = 0; i < a.schedule().size(); ++i) {
        const JobRecord &job = a.schedule()[i];
        const JobRecord &twin = b.schedule()[i];
        EXPECT_EQ(job.jobId, static_cast<int>(i));
        EXPECT_GE(job.arriveCycle, prev + 1) << "gaps clamp to >= 1";
        prev = job.arriveCycle;
        EXPECT_GE(job.instructions, oc.minJobInstructions);
        EXPECT_LE(job.instructions, oc.maxJobInstructions);
        EXPECT_GE(job.priority, 1);
        EXPECT_LE(job.priority, 4);
        EXPECT_TRUE(isSpecBenchmark(job.benchmark));

        EXPECT_EQ(job.arriveCycle, twin.arriveCycle);
        EXPECT_EQ(job.benchmark, twin.benchmark);
        EXPECT_EQ(job.instructions, twin.instructions);
        EXPECT_EQ(job.streamSeed, twin.streamSeed);
    }

    // Priorities are all 1 unless SLA weights are enabled.
    oc.slaWeights = false;
    OpenSystem plain(smallMachine(2), oc);
    for (const JobRecord &job : plain.schedule())
        EXPECT_EQ(job.priority, 1);

    // A different seed must produce a different schedule.
    OpenSystemConfig other = oc;
    other.seed = oc.seed + 1;
    OpenSystem c(smallMachine(2), other);
    bool any_diff = false;
    for (std::size_t i = 0; i < c.schedule().size(); ++i)
        any_diff |= c.schedule()[i].arriveCycle !=
                        plain.schedule()[i].arriveCycle ||
                    c.schedule()[i].benchmark !=
                        plain.schedule()[i].benchmark;
    EXPECT_TRUE(any_diff);
}

TEST(OpenSystemRun, SameConfigRunsAreBitIdentical)
{
    OpenSystemConfig oc = fastConfig(8);
    OpenSystem sys(smallMachine(2), oc);
    IcountPolicy p1;
    IcountPolicy p2;
    OpenSystemResult a = sys.run(p1);
    OpenSystemResult b = sys.run(p2);
    EXPECT_TRUE(sameRun(a, b));
    EXPECT_GT(a.completedJobs, 0);
}

TEST(OpenSystemRun, CommittedAttributionIsExactUnderHill)
{
    OpenSystemConfig oc = fastConfig(10);
    oc.slaWeights = true;
    OpenSystem sys(smallMachine(4), oc);
    HillConfig hc;
    hc.epochSize = oc.epochSize;
    HillClimbing hill(hc);
    OpenSystemResult res = sys.run(hill);

    // Idle contexts are parked, so every committed instruction
    // belongs to exactly one job's residency window.
    std::uint64_t job_committed = 0;
    for (const JobRecord &job : res.jobs)
        job_committed += job.committed();
    EXPECT_EQ(job_committed, res.committedTotal);

    // A completed job stops within one commit group of its bound.
    SmtConfig machine = smallMachine(4);
    for (const JobRecord &job : res.jobs) {
        if (!job.completed)
            continue;
        EXPECT_GE(job.committed(), job.instructions);
        EXPECT_LT(job.committed(),
                  job.instructions +
                      static_cast<std::uint64_t>(machine.commitWidth));
    }
}

/**
 * Regression (satellite 1): a hardware context's cumulative counters
 * keep counting across job lifetimes, so a per-context report merges
 * every job that reused the context into one row. Two sequential jobs
 * on a one-context machine must come out as two rows, each sized by
 * its own attach/depart snapshot difference.
 */
TEST(OpenSystemReport, SequentialJobsOnOneContextGetSeparateRows)
{
    OpenSystemConfig oc = fastConfig(2);
    oc.arrivalRate = 1.0 / 64.0; // both arrive early -> 2nd queues
    OpenSystem sys(smallMachine(1), oc);
    IcountPolicy icount;
    OpenSystemResult res = sys.run(icount);

    ASSERT_EQ(res.completedJobs, 2);
    EXPECT_EQ(res.jobs[0].context, 0);
    EXPECT_EQ(res.jobs[1].context, 0) << "context must be reused";
    EXPECT_GE(res.jobs[1].attachCycle, res.jobs[0].departCycle);
    EXPECT_EQ(res.maxQueueDepth, 1);

    MachineReport rep = buildJobReport(res);
    ASSERT_EQ(rep.threads.size(), 2u)
        << "reused context merged two jobs into one row";
    for (std::size_t i = 0; i < 2; ++i) {
        const JobRecord &job = res.jobs[i];
        EXPECT_EQ(rep.threads[i].committed, job.committed())
            << "row " << i << " charged with its predecessor's work";
        EXPECT_DOUBLE_EQ(rep.threads[i].ipc, job.ipc());
        EXPECT_NE(rep.threads[i].label.find(job.benchmark),
                  std::string::npos);
    }
    EXPECT_NE(rep.threads[0].label, rep.threads[1].label);
}

/**
 * Regression (churn bug #1, found by fuzz stage G): resetContext and
 * idleContext squash whatever is in flight, and those squashed
 * instructions must count as flushed — otherwise the flow identity
 * fetched == committed + flushed + in-flight is permanently broken
 * and the invariant sweep fires flow.in_flight a few epochs later.
 */
TEST(OpenSystemFlow, ContextParkAndResetKeepFlowIdentity)
{
    SmtCpu cpu(smallMachine(2),
               {StreamGenerator(specProfile("gzip"), 1),
                StreamGenerator(specProfile("mcf"), 2)});
    cpu.run(5'000); // plenty of instructions in flight

    int squashed = cpu.idleContext(0);
    EXPECT_GT(squashed, 0) << "park must have squashed in-flight work";
    // Thread 0 has nothing in flight now: the identity is exact.
    EXPECT_EQ(cpu.stats().fetched[0],
              cpu.stats().committed[0] + cpu.stats().flushed[0])
        << "squashed instructions were not counted as flushed";

    cpu.resetContext(0, StreamGenerator(specProfile("twolf"), 3));
    cpu.run(5'000);
    cpu.resetContext(0, StreamGenerator(specProfile("gzip"), 4));
    cpu.run(5'000);

    InvariantChecker chk;
    chk.checkFlowCounters(cpu.stats(), cpu.config());
    chk.checkCpu(cpu);
    EXPECT_TRUE(chk.ok()) << chk.summary();
}

TEST(OpenSystemRun, HorizonClosesOutResidentJobs)
{
    OpenSystemConfig oc = fastConfig(6);
    oc.minJobInstructions = 400'000; // far more than the horizon allows
    oc.maxJobInstructions = 500'000;
    oc.horizon = 64 * 1024;
    OpenSystem sys(smallMachine(2), oc);
    IcountPolicy icount;
    OpenSystemResult res = sys.run(icount);

    EXPECT_EQ(res.completedJobs, 0);
    EXPECT_EQ(res.horizonJobs, 6);
    EXPECT_EQ(res.cycles, oc.horizon);
    for (const JobRecord &job : res.jobs) {
        EXPECT_FALSE(job.completed);
        EXPECT_EQ(job.departCycle, res.cycles);
        if (job.attached) {
            EXPECT_GT(job.residency(), 0u);
            EXPECT_GE(job.atDepart.committed, job.atAttach.committed);
        } else {
            EXPECT_EQ(job.residency(), 0u) << "unplaced job ran";
        }
    }
    EXPECT_DOUBLE_EQ(jobThroughput(res), 0.0);
}

/**
 * Regression (satellite 3): jobs so short they attach AND depart
 * between two epoch boundaries — zero full-residency epochs. Every
 * report row and masked metric must stay finite: per-job rates
 * divide by the job's own residency (>= 1 by construction), never by
 * elapsed-epoch quantities that round to zero for sub-epoch lives.
 * Pinned for the whole learner family, whose epoch() measurement
 * only ever sees these jobs as partial-residency contributions.
 */
TEST(OpenSystemRun, SubEpochJobsKeepReportAndMetricsFinite)
{
    OpenSystemConfig oc;
    oc.seed = 7;
    oc.arrivalRate = 1.0 / 1024.0;
    oc.numJobs = 12;
    oc.minJobInstructions = 50; // lives measured in hundreds of cycles
    oc.maxJobInstructions = 200;
    oc.epochSize = 256 * 1024;  // boundaries measured in hundreds of K
    oc.horizon = 2'000'000;
    OpenSystem sys(smallMachine(4), oc);

    std::vector<std::unique_ptr<ResourcePolicy>> learners;
    HillConfig hc;
    hc.epochSize = oc.epochSize;
    learners.push_back(std::make_unique<HillClimbing>(hc));
    BanditConfig bc;
    bc.epochSize = oc.epochSize;
    learners.push_back(std::make_unique<BanditAllocator>(bc));
    RlConfig rlc;
    rlc.epochSize = oc.epochSize;
    learners.push_back(std::make_unique<RlAllocator>(rlc));

    for (auto &policy : learners) {
        OpenSystemResult res = sys.run(*policy);
        ASSERT_GT(res.completedJobs, 0) << policy->name();

        std::uint64_t job_committed = 0;
        for (const JobRecord &job : res.jobs) {
            job_committed += job.committed();
            if (!job.completed)
                continue;
            EXPECT_GE(job.residency(), 1u) << policy->name();
            EXPECT_LT(job.residency(), oc.epochSize) << policy->name()
                << ": job was meant to live inside one epoch";
            EXPECT_TRUE(std::isfinite(job.ipc())) << policy->name();
            EXPECT_GT(job.ipc(), 0.0) << policy->name();
        }
        EXPECT_EQ(job_committed, res.committedTotal) << policy->name();

        MachineReport rep = buildJobReport(res);
        for (const ThreadReport &tr : rep.threads) {
            EXPECT_TRUE(std::isfinite(tr.ipc)) << tr.label;
            EXPECT_TRUE(std::isfinite(tr.fetchShare)) << tr.label;
            EXPECT_TRUE(std::isfinite(tr.mispredictRate)) << tr.label;
            EXPECT_TRUE(std::isfinite(tr.dl1Mpki)) << tr.label;
            EXPECT_TRUE(std::isfinite(tr.l2Mpki)) << tr.label;
            EXPECT_TRUE(std::isfinite(tr.lockedFrac)) << tr.label;
            EXPECT_TRUE(std::isfinite(tr.flushedPerCommit)) << tr.label;
        }
    }
}

/**
 * Regression (satellite 2): the warm-machine fast path — makeMachine
 * once, MachineArena restore per run, runOn — must be bit-identical
 * to the cold run() path for every learner in the family.
 */
TEST(OpenSystemRun, ArenaRestoredMachinesMatchColdRuns)
{
    OpenSystemConfig oc = fastConfig(8);
    oc.slaWeights = true;
    OpenSystem sys(smallMachine(4), oc);
    const SmtCpu checkpoint = sys.makeMachine();
    MachineArena arena(1);

    std::vector<std::unique_ptr<ResourcePolicy>> learners;
    HillConfig hc;
    hc.epochSize = oc.epochSize;
    learners.push_back(std::make_unique<HillClimbing>(hc));
    BanditConfig bc;
    bc.epochSize = oc.epochSize;
    learners.push_back(std::make_unique<BanditAllocator>(bc));
    RlConfig rlc;
    rlc.epochSize = oc.epochSize;
    learners.push_back(std::make_unique<RlAllocator>(rlc));

    for (auto &policy : learners) {
        auto twin = policy->clone();
        OpenSystemResult cold = sys.run(*policy);
        SmtCpu &warm = arena.acquire(0, checkpoint);
        OpenSystemResult restored = sys.runOn(warm, *twin);
        EXPECT_TRUE(sameRun(cold, restored)) << policy->name();
    }
}

TEST(OpenSystemMetrics, JainFairnessUnitValues)
{
    EXPECT_DOUBLE_EQ(jainFairness({}), 0.0);
    EXPECT_DOUBLE_EQ(jainFairness({0.0, 0.0}), 0.0);
    EXPECT_DOUBLE_EQ(jainFairness({0.7, 0.7, 0.7, 0.7}), 1.0);
    EXPECT_DOUBLE_EQ(jainFairness({1.0, 0.0, 0.0, 0.0}), 0.25);
    EXPECT_NEAR(jainFairness({2.0, 1.0}), 0.9, 1e-12);
}

TEST(OpenSystemMetrics, LatencyTailsOrderedAndWeighted)
{
    OpenSystemConfig oc = fastConfig(12);
    oc.slaWeights = true;
    OpenSystem sys(smallMachine(2), oc);
    IcountPolicy icount;
    OpenSystemResult res = sys.run(icount);
    ASSERT_GT(res.completedJobs, 0);

    LatencyStats lat = jobLatencyStats(res);
    EXPECT_GT(lat.p50, 0.0);
    EXPECT_LE(lat.p50, lat.p95);
    EXPECT_LE(lat.p95, lat.p99);
    EXPECT_GT(jobThroughput(res), 0.0);

    std::vector<double> weighted = priorityWeightedJobIpcs(res);
    EXPECT_EQ(weighted.size(),
              static_cast<std::size_t>(res.completedJobs));
    for (std::size_t i = 0, w = 0; i < res.jobs.size(); ++i) {
        const JobRecord &job = res.jobs[i];
        if (!job.completed)
            continue;
        EXPECT_DOUBLE_EQ(weighted[w++], job.ipc() / job.priority);
    }
}

} // namespace
} // namespace smthill
