/**
 * @file
 * Unit tests for the derived-statistics report and pipeline tracer.
 */

#include <gtest/gtest.h>

#include <map>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "pipeline/tracer.hh"
#include "policy/flush.hh"
#include "policy/icount.hh"
#include "trace/program_profile.hh"

namespace smthill
{
namespace
{

SmtCpu
testCpu(double p_cold = 0.1)
{
    ProfileParams a;
    a.name = "mem";
    a.numBlocks = 12;
    a.avgBlockLen = 8;
    a.pLoadCold = p_cold;
    ProfileParams b;
    b.name = "ilp";
    b.numBlocks = 12;
    b.avgBlockLen = 8;
    b.pLoadWarm = 0.0; // DL1-resident only: near-zero MPKI
    SmtConfig cfg;
    cfg.numThreads = 2;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(buildProfile(a), 0);
    gens.emplace_back(buildProfile(b), 1);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(200000);
    return cpu;
}

TEST(Report, RatesAreConsistent)
{
    SmtCpu cpu = testCpu();
    MachineReport rep = runAndReport(cpu, 100000, {"mem", "ilp"});
    ASSERT_EQ(rep.threads.size(), 2u);
    EXPECT_EQ(rep.cycles, 100000u);
    double sum = rep.threads[0].ipc + rep.threads[1].ipc;
    EXPECT_NEAR(sum, rep.totalIpc, 1e-9);
    EXPECT_EQ(rep.threads[0].label, "mem");

    double share_sum =
        rep.threads[0].fetchShare + rep.threads[1].fetchShare;
    EXPECT_NEAR(share_sum, 1.0, 1e-9);

    // The memory thread must show much higher MPKI. (The clean
    // thread still takes some DL1 misses from warm-region stores.)
    EXPECT_GT(rep.threads[0].dl1Mpki, 3 * rep.threads[1].dl1Mpki);
    for (const auto &tr : rep.threads) {
        EXPECT_GE(tr.mispredictRate, 0.0);
        EXPECT_LE(tr.mispredictRate, 1.0);
        EXPECT_GE(tr.lockedFrac, 0.0);
    }
}

TEST(Report, EmptyIntervalIsSafe)
{
    SmtCpu cpu = testCpu();
    MachineSnapshot s = MachineSnapshot::capture(cpu);
    MachineReport rep = buildReport(s, s);
    EXPECT_EQ(rep.cycles, 0u);
    EXPECT_TRUE(rep.threads.empty());
}

TEST(Report, FlushShowsInFlushPerCommit)
{
    SmtCpu cpu = testCpu(0.25);
    FlushPolicy flush;
    flush.attach(cpu);
    MachineSnapshot before = MachineSnapshot::capture(cpu);
    for (int i = 0; i < 100000; ++i) {
        flush.cycle(cpu);
        cpu.step();
    }
    MachineReport rep =
        buildReport(before, MachineSnapshot::capture(cpu));
    EXPECT_GT(rep.threads[0].flushedPerCommit, 0.0);
}

TEST(Report, RunResultCarriesSnapshots)
{
    RunConfig rc;
    rc.epochs = 2;
    rc.epochSize = 8192;
    rc.warmupCycles = 32768;
    IcountPolicy p;
    RunResult res = runPolicy(workloadByName("art-mcf"), p, rc);
    MachineReport rep = res.report({"art", "mcf"});
    EXPECT_EQ(rep.cycles, 2u * 8192u);
    ASSERT_EQ(rep.threads.size(), 2u);
    EXPECT_NEAR(rep.threads[0].ipc, res.overallIpc.ipc[0], 1e-9);
}

TEST(Tracer, RecordsAllStagesInOrder)
{
    SmtCpu cpu = testCpu(0.0);
    PipelineTracer tracer(1 << 16);
    cpu.setTracer(&tracer);
    cpu.run(200);
    auto events = tracer.events();
    ASSERT_GT(events.size(), 50u);
    bool saw[6] = {false, false, false, false, false, false};
    Cycle prev = 0;
    for (const auto &e : events) {
        saw[static_cast<int>(e.stage)] = true;
        EXPECT_GE(e.cycle, prev);
        prev = e.cycle;
    }
    EXPECT_TRUE(saw[static_cast<int>(TraceStage::Fetch)]);
    EXPECT_TRUE(saw[static_cast<int>(TraceStage::Dispatch)]);
    EXPECT_TRUE(saw[static_cast<int>(TraceStage::Issue)]);
    EXPECT_TRUE(saw[static_cast<int>(TraceStage::Complete)]);
    EXPECT_TRUE(saw[static_cast<int>(TraceStage::Commit)]);
}

TEST(Tracer, PerInstructionLifecycleOrder)
{
    SmtCpu cpu = testCpu(0.0);
    PipelineTracer tracer(1 << 16);
    cpu.setTracer(&tracer);
    cpu.run(500);
    // For any given (tid, seq), stage order must be fetch <= dispatch
    // <= issue <= complete <= commit in time.
    std::map<std::pair<ThreadId, InstSeq>, Cycle> last_stage_cycle;
    std::map<std::pair<ThreadId, InstSeq>, int> last_stage;
    for (const auto &e : tracer.events()) {
        if (e.stage == TraceStage::Squash)
            continue;
        auto key = std::make_pair(e.tid, e.seq);
        auto it = last_stage.find(key);
        if (it != last_stage.end()) {
            EXPECT_GT(static_cast<int>(e.stage), it->second)
                << "seq " << e.seq;
            EXPECT_GE(e.cycle, last_stage_cycle[key]);
        }
        last_stage[key] = static_cast<int>(e.stage);
        last_stage_cycle[key] = e.cycle;
    }
}

TEST(Tracer, ThreadFilter)
{
    SmtCpu cpu = testCpu(0.0);
    PipelineTracer tracer(1 << 14);
    tracer.filterThread(1);
    cpu.setTracer(&tracer);
    cpu.run(300);
    ASSERT_GT(tracer.size(), 0u);
    for (const auto &e : tracer.events())
        EXPECT_EQ(e.tid, 1u);
    EXPECT_GT(tracer.offered(), tracer.size());
}

TEST(Tracer, StageFilter)
{
    SmtCpu cpu = testCpu(0.0);
    PipelineTracer tracer(1 << 14);
    tracer.filterStages(std::uint32_t{1}
                        << static_cast<int>(TraceStage::Commit));
    cpu.setTracer(&tracer);
    cpu.run(300);
    ASSERT_GT(tracer.size(), 0u);
    for (const auto &e : tracer.events())
        EXPECT_EQ(e.stage, TraceStage::Commit);
}

TEST(Tracer, RingEvictsOldest)
{
    PipelineTracer tracer(4);
    for (int i = 0; i < 10; ++i) {
        TraceEvent e;
        e.seq = static_cast<InstSeq>(i);
        tracer.record(e);
    }
    auto events = tracer.events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().seq, 6u);
    EXPECT_EQ(events.back().seq, 9u);
    EXPECT_EQ(tracer.offered(), 10u);
}

TEST(Tracer, ClearResets)
{
    PipelineTracer tracer(8);
    tracer.record(TraceEvent{});
    tracer.clear();
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, SquashEventsOnFlush)
{
    SmtCpu cpu = testCpu(0.2);
    PipelineTracer tracer(1 << 16);
    tracer.filterStages(std::uint32_t{1}
                        << static_cast<int>(TraceStage::Squash));
    cpu.setTracer(&tracer);
    cpu.run(200);
    int flushed = cpu.flushThreadAfter(0, cpu.stats().committed[0] + 1);
    EXPECT_EQ(tracer.size(), static_cast<std::size_t>(flushed));
}

TEST(Tracer, StageNames)
{
    EXPECT_STREQ(traceStageName(TraceStage::Fetch), "fetch");
    EXPECT_STREQ(traceStageName(TraceStage::Squash), "squash");
}

} // namespace
} // namespace smthill
