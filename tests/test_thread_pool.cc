/**
 * @file
 * Unit tests for the fixed-size worker thread pool: full index
 * coverage with ordered results, jobs=1 inline degeneracy,
 * deterministic exception propagation, and future-based submission.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/stat_registry.hh"
#include "common/thread_pool.hh"

namespace smthill
{
namespace
{

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ResultsLandInOrderedSlots)
{
    // The ordering contract: each task owns slot i, so the reduced
    // output is in index order no matter which worker ran what.
    ThreadPool pool(8);
    constexpr std::size_t n = 257;
    std::vector<std::size_t> out(n, 0);
    pool.parallelFor(n, [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, JobsOneRunsInlineOnCaller)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.jobs(), 1);
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(16);
    std::vector<std::size_t> order;
    pool.parallelFor(16, [&](std::size_t i) {
        seen[i] = std::this_thread::get_id();
        // Safe only because jobs=1 runs every index inline on the
        // caller — this test asserts exactly that serial order.
        order.push_back(i); // smthill-lint: allow(parallel-capture)
    });
    for (const auto &id : seen)
        EXPECT_EQ(id, caller);
    // Inline execution is also in ascending index order.
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, JobsClampedToAtLeastOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.jobs(), 1);
    int ran = 0;
    // jobs clamps to 1, so the lambda runs inline; the unguarded
    // counter is the point of the clamping test.
    pool.parallelFor(3, [&](std::size_t) { ran++; }); // smthill-lint: allow(parallel-capture)
    EXPECT_EQ(ran, 3);
}

TEST(ThreadPool, EmptyRangeIsANoOp)
{
    ThreadPool pool(4);
    pool.parallelFor(0, [&](std::size_t) { FAIL(); });
}

TEST(ThreadPool, PropagatesLowestIndexException)
{
    ThreadPool pool(4);
    // Multiple throwing indices: the surviving exception must be the
    // lowest index, independent of scheduling.
    for (int attempt = 0; attempt < 10; ++attempt) {
        try {
            pool.parallelFor(64, [&](std::size_t i) {
                if (i % 7 == 3) // throws at 3, 10, 17, ...
                    throw std::runtime_error("boom at " +
                                             std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "boom at 3");
        }
    }
}

TEST(ThreadPool, ExceptionPropagatesWithJobsOne)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.parallelFor(
                     5,
                     [&](std::size_t i) {
                         if (i == 2)
                             throw std::logic_error("serial");
                     }),
                 std::logic_error);
}

TEST(ThreadPool, AllTasksFinishBeforeThrowingReturn)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 200;
    std::atomic<int> completed{0};
    try {
        pool.parallelFor(n, [&](std::size_t i) {
            if (i == 0)
                throw std::runtime_error("early");
            completed++;
        });
        FAIL();
    } catch (const std::runtime_error &) {
        // parallelFor must not return/throw while tasks are still
        // touching caller-owned state.
        EXPECT_EQ(completed.load(), static_cast<int>(n) - 1);
    }
}

TEST(ThreadPool, SubmitReturnsFutureResults)
{
    ThreadPool pool(3);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 20; ++i)
        futs.push_back(pool.submit([i] { return i * 3; }));
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * 3);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture)
{
    ThreadPool pool(2);
    auto fut = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, DefaultJobsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultJobs(), 1);
}

TEST(ThreadPool, ExportsIndexAndQueueDepthStats)
{
    ThreadPool pool(4);
    std::uint64_t before =
        globalStats().counter("smthill.thread_pool.for_indices").value();
    pool.parallelFor(64, [](std::size_t) {});
    EXPECT_GE(
        globalStats().counter("smthill.thread_pool.for_indices").value(),
        before + 64);
    // queue_depth is a live gauge; once parallelFor returns, every
    // enqueued task has been drained.
    EXPECT_EQ(
        globalStats().gauge("smthill.thread_pool.queue_depth").value(),
        0.0);
}

TEST(ThreadPool, ReusableAcrossManyParallelFors)
{
    ThreadPool pool(4);
    for (int round = 0; round < 50; ++round) {
        std::atomic<int> sum{0};
        pool.parallelFor(10, [&](std::size_t i) {
            sum += static_cast<int>(i);
        });
        EXPECT_EQ(sum.load(), 45);
    }
}

} // namespace
} // namespace smthill
