/**
 * @file
 * Unit tests for the partition search-space helpers (enumeration,
 * Figure 8 trial and anchor moves).
 */

#include <gtest/gtest.h>

#include "core/partitioning.hh"

namespace smthill
{
namespace
{

TEST(Enumerate2, PaperConfigurationGives127Trials)
{
    // Section 3.2: every other partitioning of 256 registers across
    // 2 threads -> 127 trials.
    auto all = enumeratePartitions2(256, 2);
    EXPECT_EQ(all.size(), 127u);
    EXPECT_EQ(all.front().share[0], 2);
    EXPECT_EQ(all.back().share[0], 254);
}

TEST(Enumerate2, SharesAlwaysSumToTotal)
{
    for (const auto &p : enumeratePartitions2(256, 16)) {
        EXPECT_EQ(p.total(), 256);
        EXPECT_EQ(p.numThreads, 2);
        EXPECT_GE(p.share[0], 16);
        EXPECT_GE(p.share[1], 16);
    }
}

TEST(Enumerate2, StrideControlsCount)
{
    EXPECT_EQ(enumeratePartitions2(256, 16).size(), 15u);
    EXPECT_EQ(enumeratePartitions2(256, 128).size(), 1u);
}

TEST(Enumerate2, RejectsBadArguments)
{
    EXPECT_DEATH(enumeratePartitions2(4, 0), "bad stride");
    EXPECT_DEATH(enumeratePartitions2(2, 4), "bad stride");
}

TEST(Enumerate2, OddTotalEnumeratesFloorTrials)
{
    // total not a multiple of stride: floor(255/2) - 1 = 126 trials,
    // each still conserving the odd total exactly.
    auto all = enumeratePartitions2(255, 2);
    EXPECT_EQ(all.size(), 126u);
    for (const auto &p : all)
        EXPECT_EQ(p.total(), 255);
    EXPECT_EQ(all.front().share[0], 2);
    EXPECT_EQ(all.back().share[0], 252);
    EXPECT_EQ(all.back().share[1], 3);
}

TEST(Enumerate2, StrideOfHalfTotalGivesSingleSplit)
{
    auto all = enumeratePartitions2(64, 32);
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0].share[0], 32);
    EXPECT_EQ(all[0].share[1], 32);
}

TEST(Enumerate2, StridePastHalfTotalStillConserves)
{
    // 31 < 64/2, but the second step (62) overshoots total - stride:
    // exactly one lopsided trial, conserving the total.
    auto all = enumeratePartitions2(64, 31);
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0].share[0], 31);
    EXPECT_EQ(all[0].share[1], 33);
    EXPECT_EQ(all[0].total(), 64);
}

TEST(TrialPartition, ShiftsDeltaFromEveryOtherThread)
{
    Partition anchor = Partition::equal(4, 256);
    Partition t = trialPartition(anchor, 1, 4, 4);
    EXPECT_EQ(t.share[1], 64 + 12); // gains Delta * (N-1)
    EXPECT_EQ(t.share[0], 60);
    EXPECT_EQ(t.share[2], 60);
    EXPECT_EQ(t.share[3], 60);
    EXPECT_EQ(t.total(), 256);
}

TEST(TrialPartition, RespectsFloor)
{
    Partition anchor;
    anchor.numThreads = 2;
    anchor.share = {6, 250};
    Partition t = trialPartition(anchor, 1, 4, 4);
    EXPECT_EQ(t.share[0], 4) << "donor stops at the floor";
    EXPECT_EQ(t.share[1], 252);
    EXPECT_EQ(t.total(), 256);
}

TEST(TrialPartition, FloorLimitsGainToo)
{
    Partition anchor;
    anchor.numThreads = 2;
    anchor.share = {4, 252};
    Partition t = trialPartition(anchor, 1, 4, 4);
    EXPECT_EQ(t, anchor) << "nothing to take";
}

TEST(TrialPartition, DeltaLargerThanShareNeverGoesNegative)
{
    // Regression guard: a donor with share < delta gives only what it
    // has above the floor — never wrapping negative.
    Partition anchor;
    anchor.numThreads = 2;
    anchor.share = {3, 253};
    Partition t = trialPartition(anchor, 1, 8, 0);
    EXPECT_EQ(t.share[0], 0);
    EXPECT_EQ(t.share[1], 256);
    EXPECT_EQ(t.total(), 256);
}

TEST(TrialPartition, DonorAlreadyBelowFloorGivesNothing)
{
    Partition anchor;
    anchor.numThreads = 2;
    anchor.share = {2, 254};
    Partition t = trialPartition(anchor, 1, 8, 4);
    EXPECT_EQ(t, anchor) << "share below the floor must not donate";
}

TEST(TrialPartition, RejectsOutOfRangeFavoredThread)
{
    // Regression: an out-of-range favored thread used to write the
    // gained units into a share slot no thread owns, silently
    // changing the enforced total.
    Partition anchor = Partition::equal(2, 256);
    EXPECT_DEATH(trialPartition(anchor, 2, 4, 4), "favors thread");
    EXPECT_DEATH(trialPartition(anchor, -1, 4, 4), "favors thread");
    EXPECT_DEATH(moveAnchor(anchor, 5, 4, 4), "favors thread");
}

TEST(TrialPartition, RejectsNegativeDelta)
{
    Partition anchor = Partition::equal(2, 256);
    EXPECT_DEATH(trialPartition(anchor, 0, -4, 4), "negative delta");
}

TEST(TrialPartition, ThreeAndFourThreadRemainders)
{
    // Odd totals with 3-4 threads: remainders from Partition::equal
    // must survive trial/anchor moves without leaking units.
    for (int threads : {3, 4}) {
        Partition anchor = Partition::equal(threads, 255);
        for (int favored = 0; favored < threads; ++favored) {
            Partition t = trialPartition(anchor, favored, 4, 4);
            EXPECT_EQ(t.total(), 255) << threads << "T favored "
                                      << favored;
            Partition m = moveAnchor(t, favored, 4, 4);
            EXPECT_EQ(m.total(), 255);
        }
    }
}

TEST(MoveAnchor, MatchesTrialSemantics)
{
    // Figure 8 uses the same +Delta*(N-1)/-Delta move for the anchor
    // as for trials.
    Partition anchor = Partition::equal(2, 256);
    EXPECT_EQ(moveAnchor(anchor, 0, 4, 4),
              trialPartition(anchor, 0, 4, 4));
}

TEST(MoveAnchor, RepeatedMovesStayValid)
{
    Partition anchor = Partition::equal(2, 256);
    for (int i = 0; i < 200; ++i) {
        anchor = moveAnchor(anchor, 0, 4, 4);
        ASSERT_EQ(anchor.total(), 256);
        ASSERT_GE(anchor.share[1], 4);
    }
    EXPECT_EQ(anchor.share[1], 4) << "converges to the floor";
    EXPECT_EQ(anchor.share[0], 252);
}

TEST(MoveAnchor, GradientWalkReachesAnyInteriorPoint)
{
    // Alternating moves can reach an asymmetric target.
    Partition anchor = Partition::equal(2, 256);
    for (int i = 0; i < 12; ++i)
        anchor = moveAnchor(anchor, 0, 4, 4);
    EXPECT_EQ(anchor.share[0], 128 + 48);
}

/** Parameterized sweep: moves preserve the invariants for any N. */
class MoveSweep : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(MoveSweep, TotalAndFloorInvariants)
{
    auto [threads, delta] = GetParam();
    Partition anchor = Partition::equal(threads, 256);
    for (int favored = 0; favored < threads; ++favored) {
        Partition t = trialPartition(anchor, favored, delta, delta);
        EXPECT_EQ(t.total(), 256);
        for (int i = 0; i < threads; ++i)
            EXPECT_GE(t.share[i], delta);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MoveSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 6, 8),
                       ::testing::Values(1, 2, 4, 8, 16)));

} // namespace
} // namespace smthill
