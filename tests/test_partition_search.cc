/**
 * @file
 * Unit tests for the partition search-space helpers (enumeration,
 * Figure 8 trial and anchor moves).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "common/rng.hh"
#include "core/partitioning.hh"

namespace smthill
{
namespace
{

TEST(Enumerate2, PaperConfigurationGives127Trials)
{
    // Section 3.2: every other partitioning of 256 registers across
    // 2 threads -> 127 trials.
    auto all = enumeratePartitions2(256, 2);
    EXPECT_EQ(all.size(), 127u);
    EXPECT_EQ(all.front().share[0], 2);
    EXPECT_EQ(all.back().share[0], 254);
}

TEST(Enumerate2, SharesAlwaysSumToTotal)
{
    for (const auto &p : enumeratePartitions2(256, 16)) {
        EXPECT_EQ(p.total(), 256);
        EXPECT_EQ(p.numThreads, 2);
        EXPECT_GE(p.share[0], 16);
        EXPECT_GE(p.share[1], 16);
    }
}

TEST(Enumerate2, StrideControlsCount)
{
    EXPECT_EQ(enumeratePartitions2(256, 16).size(), 15u);
    EXPECT_EQ(enumeratePartitions2(256, 128).size(), 1u);
}

TEST(Enumerate2, RejectsBadArguments)
{
    EXPECT_DEATH(enumeratePartitions2(4, 0), "bad stride");
    EXPECT_DEATH(enumeratePartitions2(2, 4), "bad stride");
}

TEST(Enumerate2, OddTotalEnumeratesFloorTrials)
{
    // total not a multiple of stride: floor(255/2) - 1 = 126 trials,
    // each still conserving the odd total exactly.
    auto all = enumeratePartitions2(255, 2);
    EXPECT_EQ(all.size(), 126u);
    for (const auto &p : all)
        EXPECT_EQ(p.total(), 255);
    EXPECT_EQ(all.front().share[0], 2);
    EXPECT_EQ(all.back().share[0], 252);
    EXPECT_EQ(all.back().share[1], 3);
}

TEST(Enumerate2, StrideOfHalfTotalGivesSingleSplit)
{
    auto all = enumeratePartitions2(64, 32);
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0].share[0], 32);
    EXPECT_EQ(all[0].share[1], 32);
}

TEST(Enumerate2, StridePastHalfTotalStillConserves)
{
    // 31 < 64/2, but the second step (62) overshoots total - stride:
    // exactly one lopsided trial, conserving the total.
    auto all = enumeratePartitions2(64, 31);
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0].share[0], 31);
    EXPECT_EQ(all[0].share[1], 33);
    EXPECT_EQ(all[0].total(), 64);
}

TEST(TrialPartition, ShiftsDeltaFromEveryOtherThread)
{
    Partition anchor = Partition::equal(4, 256);
    Partition t = trialPartition(anchor, 1, 4, 4);
    EXPECT_EQ(t.share[1], 64 + 12); // gains Delta * (N-1)
    EXPECT_EQ(t.share[0], 60);
    EXPECT_EQ(t.share[2], 60);
    EXPECT_EQ(t.share[3], 60);
    EXPECT_EQ(t.total(), 256);
}

TEST(TrialPartition, RespectsFloor)
{
    Partition anchor;
    anchor.numThreads = 2;
    anchor.share = {6, 250};
    Partition t = trialPartition(anchor, 1, 4, 4);
    EXPECT_EQ(t.share[0], 4) << "donor stops at the floor";
    EXPECT_EQ(t.share[1], 252);
    EXPECT_EQ(t.total(), 256);
}

TEST(TrialPartition, FloorLimitsGainToo)
{
    Partition anchor;
    anchor.numThreads = 2;
    anchor.share = {4, 252};
    Partition t = trialPartition(anchor, 1, 4, 4);
    EXPECT_EQ(t, anchor) << "nothing to take";
}

TEST(TrialPartition, DeltaLargerThanShareNeverGoesNegative)
{
    // Regression guard: a donor with share < delta gives only what it
    // has above the floor — never wrapping negative.
    Partition anchor;
    anchor.numThreads = 2;
    anchor.share = {3, 253};
    Partition t = trialPartition(anchor, 1, 8, 0);
    EXPECT_EQ(t.share[0], 0);
    EXPECT_EQ(t.share[1], 256);
    EXPECT_EQ(t.total(), 256);
}

TEST(TrialPartition, DonorAlreadyBelowFloorGivesNothing)
{
    Partition anchor;
    anchor.numThreads = 2;
    anchor.share = {2, 254};
    Partition t = trialPartition(anchor, 1, 8, 4);
    EXPECT_EQ(t, anchor) << "share below the floor must not donate";
}

TEST(TrialPartition, RejectsOutOfRangeFavoredThread)
{
    // Regression: an out-of-range favored thread used to write the
    // gained units into a share slot no thread owns, silently
    // changing the enforced total.
    Partition anchor = Partition::equal(2, 256);
    EXPECT_DEATH(trialPartition(anchor, 2, 4, 4), "favors thread");
    EXPECT_DEATH(trialPartition(anchor, -1, 4, 4), "favors thread");
    EXPECT_DEATH(moveAnchor(anchor, 5, 4, 4), "favors thread");
}

TEST(TrialPartition, RejectsNegativeDelta)
{
    Partition anchor = Partition::equal(2, 256);
    EXPECT_DEATH(trialPartition(anchor, 0, -4, 4), "negative delta");
}

TEST(TrialPartition, ThreeAndFourThreadRemainders)
{
    // Odd totals with 3-4 threads: remainders from Partition::equal
    // must survive trial/anchor moves without leaking units.
    for (int threads : {3, 4}) {
        Partition anchor = Partition::equal(threads, 255);
        for (int favored = 0; favored < threads; ++favored) {
            Partition t = trialPartition(anchor, favored, 4, 4);
            EXPECT_EQ(t.total(), 255) << threads << "T favored "
                                      << favored;
            Partition m = moveAnchor(t, favored, 4, 4);
            EXPECT_EQ(m.total(), 255);
        }
    }
}

TEST(MoveAnchor, MatchesTrialSemantics)
{
    // Figure 8 uses the same +Delta*(N-1)/-Delta move for the anchor
    // as for trials.
    Partition anchor = Partition::equal(2, 256);
    EXPECT_EQ(moveAnchor(anchor, 0, 4, 4),
              trialPartition(anchor, 0, 4, 4));
}

TEST(MoveAnchor, RepeatedMovesStayValid)
{
    Partition anchor = Partition::equal(2, 256);
    for (int i = 0; i < 200; ++i) {
        anchor = moveAnchor(anchor, 0, 4, 4);
        ASSERT_EQ(anchor.total(), 256);
        ASSERT_GE(anchor.share[1], 4);
    }
    EXPECT_EQ(anchor.share[1], 4) << "converges to the floor";
    EXPECT_EQ(anchor.share[0], 252);
}

TEST(MoveAnchor, GradientWalkReachesAnyInteriorPoint)
{
    // Alternating moves can reach an asymmetric target.
    Partition anchor = Partition::equal(2, 256);
    for (int i = 0; i < 12; ++i)
        anchor = moveAnchor(anchor, 0, 4, 4);
    EXPECT_EQ(anchor.share[0], 128 + 48);
}

/** Parameterized sweep: moves preserve the invariants for any N. */
class MoveSweep : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(MoveSweep, TotalAndFloorInvariants)
{
    auto [threads, delta] = GetParam();
    Partition anchor = Partition::equal(threads, 256);
    for (int favored = 0; favored < threads; ++favored) {
        Partition t = trialPartition(anchor, favored, delta, delta);
        EXPECT_EQ(t.total(), 256);
        for (int i = 0; i < threads; ++i)
            EXPECT_GE(t.share[i], delta);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MoveSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 6, 8),
                       ::testing::Values(1, 2, 4, 8, 16)));

// --- Open-system churn: masked redistribution (PR 7) ----------------

TEST(RedistributeDetached, FreedSharesSpreadOverSurvivors)
{
    Partition p;
    p.numThreads = 4;
    p.share = {100, 60, 60, 36};
    std::array<bool, kMaxThreads> active{};
    active[0] = active[2] = active[3] = true; // thread 1 departed

    Partition q = redistributeDetached(p, active, 8);
    EXPECT_EQ(q.total(), 256) << "departure conserves the total";
    EXPECT_EQ(q.share[1], 0) << "inactive contexts hold nothing";
    EXPECT_EQ(q.share[0], 120);
    EXPECT_EQ(q.share[2], 80);
    EXPECT_EQ(q.share[3], 56);
}

TEST(RedistributeDetached, LastDeparturesZeroThePartition)
{
    Partition p = Partition::equal(3, 256);
    std::array<bool, kMaxThreads> active{}; // everyone gone
    Partition q = redistributeDetached(p, active, 8);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(q.share[i], 0);
}

TEST(AdmitAttached, NewcomerFundedFromRichestActives)
{
    Partition p;
    p.numThreads = 4;
    p.share = {200, 56, 0, 0};
    std::array<bool, kMaxThreads> active{};
    active[0] = active[1] = active[2] = true; // thread 2 just arrived

    Partition q = admitAttached(p, active, 2, 8);
    EXPECT_EQ(q.total(), 256);
    EXPECT_GE(q.share[2], 256 / 3 - 1)
        << "newcomer starts near its equal share";
    EXPECT_EQ(q.share[3], 0);
    for (int i = 0; i < 3; ++i)
        EXPECT_GE(q.share[i], 8) << "feasible floor over the actives";
}

TEST(AdmitAttached, InactiveNewcomerIsFatal)
{
    Partition p = Partition::equal(2, 256);
    std::array<bool, kMaxThreads> active{};
    active[0] = active[1] = true;
    EXPECT_DEATH(admitAttached(p, active, 3, 8), "admitAttached");
}

/**
 * Property: any random attach/detach sequence keeps the partition
 * feasible — total conserved (or zero when nobody is active), every
 * active share at the PR-3 feasible floor min(min_share,
 * total / num_active), every inactive share exactly zero.
 */
TEST(ChurnRefeasibility, RandomAttachDetachSequencesStayFeasible)
{
    const int kTotal = 256;
    const int kThreads = 4;
    Rng rng(0xC0FFEE);
    for (int trial = 0; trial < 64; ++trial) {
        int min_share = 1 << rng.nextBelow(6); // 1..32
        std::array<bool, kMaxThreads> active{};
        Partition p;
        p.numThreads = kThreads;
        p.share.fill(0);

        for (int step = 0; step < 48; ++step) {
            int tid = static_cast<int>(rng.nextBelow(kThreads));
            if (active[tid]) {
                active[tid] = false;
                p = redistributeDetached(p, active, min_share);
            } else {
                active[tid] = true;
                // The caller owns re-seeding a drained anchor (churn
                // bug #2): admitAttached conserves a zero total.
                if (p.total() == 0)
                    p.share[tid] = kTotal;
                p = admitAttached(p, active, tid, min_share);
            }

            int num_active = 0;
            for (int i = 0; i < kThreads; ++i)
                num_active += active[i] ? 1 : 0;
            if (num_active == 0) {
                EXPECT_EQ(p.total(), 0);
                continue;
            }
            ASSERT_EQ(p.total(), kTotal)
                << "step " << step << " of trial " << trial;
            int floor_eff = std::min(min_share, kTotal / num_active);
            for (int i = 0; i < kThreads; ++i) {
                if (active[i]) {
                    EXPECT_GE(p.share[i], floor_eff)
                        << "active thread " << i << " below floor";
                } else {
                    EXPECT_EQ(p.share[i], 0)
                        << "inactive thread " << i << " holds shares";
                }
            }
        }
    }
}

} // namespace
} // namespace smthill
