/**
 * @file
 * Unit tests for the partition search-space helpers (enumeration,
 * Figure 8 trial and anchor moves).
 */

#include <gtest/gtest.h>

#include "core/partitioning.hh"

namespace smthill
{
namespace
{

TEST(Enumerate2, PaperConfigurationGives127Trials)
{
    // Section 3.2: every other partitioning of 256 registers across
    // 2 threads -> 127 trials.
    auto all = enumeratePartitions2(256, 2);
    EXPECT_EQ(all.size(), 127u);
    EXPECT_EQ(all.front().share[0], 2);
    EXPECT_EQ(all.back().share[0], 254);
}

TEST(Enumerate2, SharesAlwaysSumToTotal)
{
    for (const auto &p : enumeratePartitions2(256, 16)) {
        EXPECT_EQ(p.total(), 256);
        EXPECT_EQ(p.numThreads, 2);
        EXPECT_GE(p.share[0], 16);
        EXPECT_GE(p.share[1], 16);
    }
}

TEST(Enumerate2, StrideControlsCount)
{
    EXPECT_EQ(enumeratePartitions2(256, 16).size(), 15u);
    EXPECT_EQ(enumeratePartitions2(256, 128).size(), 1u);
}

TEST(Enumerate2, RejectsBadArguments)
{
    EXPECT_DEATH(enumeratePartitions2(4, 0), "bad stride");
    EXPECT_DEATH(enumeratePartitions2(2, 4), "bad stride");
}

TEST(TrialPartition, ShiftsDeltaFromEveryOtherThread)
{
    Partition anchor = Partition::equal(4, 256);
    Partition t = trialPartition(anchor, 1, 4, 4);
    EXPECT_EQ(t.share[1], 64 + 12); // gains Delta * (N-1)
    EXPECT_EQ(t.share[0], 60);
    EXPECT_EQ(t.share[2], 60);
    EXPECT_EQ(t.share[3], 60);
    EXPECT_EQ(t.total(), 256);
}

TEST(TrialPartition, RespectsFloor)
{
    Partition anchor;
    anchor.numThreads = 2;
    anchor.share = {6, 250};
    Partition t = trialPartition(anchor, 1, 4, 4);
    EXPECT_EQ(t.share[0], 4) << "donor stops at the floor";
    EXPECT_EQ(t.share[1], 252);
    EXPECT_EQ(t.total(), 256);
}

TEST(TrialPartition, FloorLimitsGainToo)
{
    Partition anchor;
    anchor.numThreads = 2;
    anchor.share = {4, 252};
    Partition t = trialPartition(anchor, 1, 4, 4);
    EXPECT_EQ(t, anchor) << "nothing to take";
}

TEST(MoveAnchor, MatchesTrialSemantics)
{
    // Figure 8 uses the same +Delta*(N-1)/-Delta move for the anchor
    // as for trials.
    Partition anchor = Partition::equal(2, 256);
    EXPECT_EQ(moveAnchor(anchor, 0, 4, 4),
              trialPartition(anchor, 0, 4, 4));
}

TEST(MoveAnchor, RepeatedMovesStayValid)
{
    Partition anchor = Partition::equal(2, 256);
    for (int i = 0; i < 200; ++i) {
        anchor = moveAnchor(anchor, 0, 4, 4);
        ASSERT_EQ(anchor.total(), 256);
        ASSERT_GE(anchor.share[1], 4);
    }
    EXPECT_EQ(anchor.share[1], 4) << "converges to the floor";
    EXPECT_EQ(anchor.share[0], 252);
}

TEST(MoveAnchor, GradientWalkReachesAnyInteriorPoint)
{
    // Alternating moves can reach an asymmetric target.
    Partition anchor = Partition::equal(2, 256);
    for (int i = 0; i < 12; ++i)
        anchor = moveAnchor(anchor, 0, 4, 4);
    EXPECT_EQ(anchor.share[0], 128 + 48);
}

/** Parameterized sweep: moves preserve the invariants for any N. */
class MoveSweep : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(MoveSweep, TotalAndFloorInvariants)
{
    auto [threads, delta] = GetParam();
    Partition anchor = Partition::equal(threads, 256);
    for (int favored = 0; favored < threads; ++favored) {
        Partition t = trialPartition(anchor, favored, delta, delta);
        EXPECT_EQ(t.total(), 256);
        for (int i = 0; i < threads; ++i)
            EXPECT_GE(t.share[i], delta);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MoveSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 6, 8),
                       ::testing::Values(1, 2, 4, 8, 16)));

} // namespace
} // namespace smthill
