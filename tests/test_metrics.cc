/**
 * @file
 * Unit tests for the three performance metrics of Section 3.1.1.
 */

#include <gtest/gtest.h>

#include "core/metrics.hh"

namespace smthill
{
namespace
{

IpcSample
sample2(double a, double b)
{
    IpcSample s;
    s.numThreads = 2;
    s.ipc = {a, b};
    return s;
}

std::array<double, kMaxThreads>
solo2(double a, double b)
{
    std::array<double, kMaxThreads> s{};
    s[0] = a;
    s[1] = b;
    return s;
}

TEST(Metrics, AvgIpcIsThroughput)
{
    EXPECT_DOUBLE_EQ(evalMetric(PerfMetric::AvgIpc, sample2(1.5, 0.5)),
                     2.0);
}

TEST(Metrics, AvgIpcIgnoresSoloIpcs)
{
    EXPECT_DOUBLE_EQ(evalMetric(PerfMetric::AvgIpc, sample2(1.0, 1.0),
                                solo2(4.0, 0.25)),
                     2.0);
}

TEST(Metrics, WeightedIpcNormalizesBySolo)
{
    // Each thread at half its solo speed -> weighted IPC 0.5.
    double w = evalMetric(PerfMetric::WeightedIpc, sample2(2.0, 0.1),
                          solo2(4.0, 0.2));
    EXPECT_DOUBLE_EQ(w, 0.5);
}

TEST(Metrics, WeightedIpcEqualWeightPerThread)
{
    // A fast thread cannot dominate: both threads contribute their
    // ratio equally.
    double w = evalMetric(PerfMetric::WeightedIpc, sample2(4.0, 0.0),
                          solo2(4.0, 0.2));
    EXPECT_DOUBLE_EQ(w, 0.5);
}

TEST(Metrics, HarmonicPenalizesImbalance)
{
    // Balanced ratios: harmonic == weighted.
    double bal = evalMetric(PerfMetric::HarmonicWeightedIpc,
                            sample2(2.0, 0.1), solo2(4.0, 0.2));
    EXPECT_DOUBLE_EQ(bal, 0.5);
    // Unbalanced ratios with the same weighted mean score lower.
    double unbal = evalMetric(PerfMetric::HarmonicWeightedIpc,
                              sample2(3.6, 0.02), solo2(4.0, 0.2));
    double w_unbal = evalMetric(PerfMetric::WeightedIpc,
                                sample2(3.6, 0.02), solo2(4.0, 0.2));
    EXPECT_DOUBLE_EQ(w_unbal, 0.5);
    EXPECT_LT(unbal, bal);
}

TEST(Metrics, HarmonicZeroIpcIsZero)
{
    EXPECT_DOUBLE_EQ(evalMetric(PerfMetric::HarmonicWeightedIpc,
                                sample2(1.0, 0.0), solo2(1.0, 1.0)),
                     0.0);
}

TEST(Metrics, UnknownSoloDefaultsToOne)
{
    // Solo IPCs <= 0 are treated as 1 so learning can proceed before
    // the first SingleIPC sample.
    double w = evalMetric(PerfMetric::WeightedIpc, sample2(0.6, 0.4),
                          solo2(0.0, -1.0));
    EXPECT_DOUBLE_EQ(w, 0.5);
}

TEST(Metrics, EmptySampleIsZero)
{
    IpcSample s;
    EXPECT_DOUBLE_EQ(evalMetric(PerfMetric::AvgIpc, s), 0.0);
    EXPECT_DOUBLE_EQ(evalMetric(PerfMetric::WeightedIpc, s), 0.0);
}

TEST(Metrics, Names)
{
    EXPECT_STREQ(metricName(PerfMetric::AvgIpc), "IPC");
    EXPECT_STREQ(metricName(PerfMetric::WeightedIpc), "WIPC");
    EXPECT_STREQ(metricName(PerfMetric::HarmonicWeightedIpc), "HWIPC");
}

TEST(Metrics, FourThreadWeighted)
{
    IpcSample s;
    s.numThreads = 4;
    s.ipc = {1.0, 1.0, 0.5, 0.25};
    std::array<double, kMaxThreads> solo{};
    solo[0] = 2.0;
    solo[1] = 1.0;
    solo[2] = 1.0;
    solo[3] = 0.5;
    // Ratios: 0.5, 1.0, 0.5, 0.5 -> mean 0.625.
    EXPECT_DOUBLE_EQ(evalMetric(PerfMetric::WeightedIpc, s, solo), 0.625);
}

/**
 * Property sweep: for any positive sample, the harmonic mean of
 * weighted IPC never exceeds the (arithmetic) weighted IPC.
 */
class MetricOrderingTest
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(MetricOrderingTest, HarmonicLeqArithmetic)
{
    auto [a, b] = GetParam();
    IpcSample s = sample2(a, b);
    auto solo = solo2(3.0, 0.4);
    double arith = evalMetric(PerfMetric::WeightedIpc, s, solo);
    double harm = evalMetric(PerfMetric::HarmonicWeightedIpc, s, solo);
    EXPECT_LE(harm, arith + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MetricOrderingTest,
    ::testing::Combine(::testing::Values(0.1, 0.5, 1.0, 2.0, 3.0),
                       ::testing::Values(0.05, 0.2, 0.4, 0.8)));

// --- Masked evaluation under open-system churn (PR 7) ---------------

/**
 * Regression: in an open system an idle context reads IPC 0 for the
 * whole epoch. Before masking, that zero fed straight into the
 * metrics — the harmonic mean collapsed to 0 and the averages were
 * diluted by contexts that held no job — so the learner compared
 * every trial against a floor and the gradient signal vanished.
 */
TEST(MaskedMetrics, IdleContextDoesNotZeroHarmonicMean)
{
    IpcSample s;
    s.numThreads = 3;
    s.ipc = {1.2, 0.0, 0.6}; // context 1 idle
    auto solo = solo2(2.4, 1.2);
    solo[2] = 1.2;
    std::array<bool, kMaxThreads> active{};
    active[0] = active[2] = true;

    double unmasked =
        evalMetric(PerfMetric::HarmonicWeightedIpc, s, solo);
    EXPECT_DOUBLE_EQ(unmasked, 0.0) << "zero IPC poisons the mean";

    double masked =
        evalMetricMasked(PerfMetric::HarmonicWeightedIpc, s, solo,
                         active);
    EXPECT_DOUBLE_EQ(masked, 0.5)
        << "both resident jobs run at half their solo speed";
}

TEST(MaskedMetrics, IdleContextDoesNotDiluteAverages)
{
    IpcSample s;
    s.numThreads = 4;
    s.ipc = {1.0, 0.0, 0.0, 1.0}; // only contexts 0 and 3 resident
    auto solo = solo2(2.0, 2.0);
    solo[2] = 2.0;
    solo[3] = 2.0;
    std::array<bool, kMaxThreads> active{};
    active[0] = active[3] = true;

    EXPECT_DOUBLE_EQ(evalMetricMasked(PerfMetric::AvgIpc, s, solo,
                                      active),
                     2.0);
    EXPECT_DOUBLE_EQ(evalMetricMasked(PerfMetric::WeightedIpc, s, solo,
                                      active),
                     0.5);
}

TEST(MaskedMetrics, FullMaskMatchesUnmaskedEvaluation)
{
    // Closed system (every context active): the masked evaluator must
    // be bit-identical to the legacy one for all three metrics.
    IpcSample s = sample2(1.5, 0.5);
    auto solo = solo2(3.0, 0.4);
    std::array<bool, kMaxThreads> active{};
    active[0] = active[1] = true;
    for (PerfMetric m :
         {PerfMetric::AvgIpc, PerfMetric::WeightedIpc,
          PerfMetric::HarmonicWeightedIpc}) {
        EXPECT_EQ(evalMetricMasked(m, s, solo, active),
                  evalMetric(m, s, solo));
    }
}

TEST(MaskedMetrics, EmptyMaskEvaluatesToZero)
{
    IpcSample s = sample2(1.5, 0.5);
    auto solo = solo2(3.0, 0.4);
    std::array<bool, kMaxThreads> active{};
    EXPECT_DOUBLE_EQ(evalMetricMasked(PerfMetric::AvgIpc, s, solo,
                                      active),
                     0.0);
}

} // namespace
} // namespace smthill
