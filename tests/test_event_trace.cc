/**
 * @file
 * Unit tests for the cycle-level event tracer (common/event_trace.hh):
 * ring wrap/overflow accounting, export round-trips through both
 * sinks, the drop-on-copy attachment handle, jobs-independence of
 * recorded streams, and the event-stream monotonicity invariant.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/event_trace.hh"
#include "common/stat_registry.hh"
#include "core/hill_climbing.hh"
#include "core/offline_exhaustive.hh"
#include "harness/runner.hh"
#include "harness/sync_runner.hh"
#include "policy/icount.hh"
#include "validate/invariants.hh"

namespace smthill
{
namespace
{

SimEvent
instantAt(Cycle ts, int tid = 0)
{
    SimEvent e;
    e.ts = ts;
    e.ph = 'i';
    e.tid = tid;
    e.cat = "test";
    e.name = "ev";
    return e;
}

TEST(EventTrace, RingKeepsNewestAndCountsDrops)
{
    std::uint64_t dropped_before =
        globalStats().counter("smthill.event_trace.dropped").value();

    EventTrace trace(4);
    for (Cycle ts = 0; ts < 10; ++ts)
        trace.record(instantAt(ts));

    EXPECT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace.capacity(), 4u);
    EXPECT_EQ(trace.recorded(), 10u);
    EXPECT_EQ(trace.dropped(), 6u);

    // Oldest first, and only the newest four survive.
    std::vector<SimEvent> events = trace.events();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].ts, 6u + i);

    // The drops are mirrored into the global registry.
    EXPECT_EQ(
        globalStats().counter("smthill.event_trace.dropped").value(),
        dropped_before + 6);

    // The exporter reports them too.
    Json doc = trace.toPerfettoJson();
    EXPECT_EQ(doc.at("otherData").at("dropped").asInt(), 6);
}

TEST(EventTrace, ClearKeepsLifetimeCounters)
{
    EventTrace trace(8);
    for (Cycle ts = 0; ts < 5; ++ts)
        trace.record(instantAt(ts));
    trace.clear();
    EXPECT_TRUE(trace.empty());
    EXPECT_EQ(trace.recorded(), 5u);
    trace.record(instantAt(99));
    EXPECT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace.recorded(), 6u);
}

TEST(EventTrace, DisabledTracerTouchesNoGlobalCounters)
{
    std::uint64_t recorded_before =
        globalStats().counter("smthill.event_trace.recorded").value();

    // A full policy run with no tracer attached anywhere must not
    // offer a single event.
    RunConfig rc;
    rc.epochSize = 4096;
    rc.epochs = 3;
    rc.warmupCycles = 16384;
    HillConfig hc;
    hc.epochSize = rc.epochSize;
    HillClimbing hill(hc);
    runPolicy(workloadByName("art-mcf"), hill, rc);

    EXPECT_EQ(
        globalStats().counter("smthill.event_trace.recorded").value(),
        recorded_before);
}

TEST(EventTrace, PerfettoRoundTrip)
{
    EventTrace trace;
    trace.processName(0, "proc");
    trace.threadName(0, 1, "thr");
    Json args = Json::object();
    args.set("epoch", 7);
    trace.instant(100, 0, 1, "hill", "anchor.move", std::move(args));
    trace.complete(200, 64, 0, kControlTid, "epoch", "epoch");
    trace.counter(300, 0, 1, "share.t1", 128.0);

    Json doc = trace.toPerfettoJson();
    EXPECT_EQ(doc.at("otherData").at("schema").asString(),
              "smthill.events.v1");

    std::vector<SimEvent> back;
    std::string error;
    ASSERT_TRUE(EventTrace::fromPerfettoJson(doc, back, error)) << error;
    EXPECT_EQ(back, trace.events());
}

TEST(EventTrace, JsonlRoundTripAndStreamingSinkMatch)
{
    std::ostringstream streamed;
    EventTrace trace;
    trace.streamTo(&streamed);
    trace.instant(10, 0, 0, "machine", "thread.enabled");
    trace.complete(20, 5, 0, kControlTid, "hill", "round");
    trace.counter(30, 0, 1, "share.t1", 120.0);
    trace.streamTo(nullptr);

    // No drops occurred, so the live stream and the batch export are
    // the same text.
    std::string batch = trace.toJsonl();
    EXPECT_EQ(streamed.str(), batch);

    std::vector<SimEvent> back;
    std::string error;
    ASSERT_TRUE(EventTrace::fromJsonlText(batch, back, error)) << error;
    EXPECT_EQ(back, trace.events());

    // The auto-detecting loader accepts both forms.
    std::vector<SimEvent> auto_jsonl;
    ASSERT_TRUE(
        EventTrace::loadEventTraceText(batch, auto_jsonl, error))
        << error;
    EXPECT_EQ(auto_jsonl, trace.events());
    std::vector<SimEvent> auto_doc;
    ASSERT_TRUE(EventTrace::loadEventTraceText(
        trace.toPerfettoJson().dump(2), auto_doc, error))
        << error;
    EXPECT_EQ(auto_doc, trace.events());
}

TEST(EventTrace, AttachmentHandleDropsOnCopy)
{
    EventTrace trace;
    EventTraceRef ref;
    ref.trace = &trace;
    ref.pid = 3;

    EventTraceRef copied(ref);
    EXPECT_EQ(copied.trace, nullptr);
    EXPECT_EQ(copied.pid, 0);

    EventTraceRef assigned;
    assigned.trace = &trace;
    assigned.pid = 5;
    assigned = ref;
    EXPECT_EQ(assigned.trace, nullptr);
    EXPECT_EQ(assigned.pid, 0);
}

TEST(EventTrace, MachineCheckpointsDoNotEmit)
{
    RunConfig rc;
    rc.epochSize = 4096;
    rc.warmupCycles = 16384;
    SmtCpu cpu = makeCpu(workloadByName("art-mcf"), rc);
    EventTrace trace;
    cpu.setEventTrace(&trace, 0);

    // A checkpoint copy runs independently: nothing it does may land
    // in the original's stream.
    SmtCpu checkpoint = cpu;
    Partition p;
    p.numThreads = 2;
    p.share[0] = 100;
    p.share[1] = 156;
    checkpoint.setPartition(p);
    checkpoint.run(1024);
    EXPECT_TRUE(trace.empty());

    // The original still emits.
    cpu.setPartition(p);
    EXPECT_EQ(trace.size(), 2u); // one share counter per thread
}

/**
 * The same synchronized comparison, traced at jobs=1 and jobs=4,
 * must produce bit-identical event streams: the offline trial sweeps
 * run on worker threads, but only checkpoint copies (which drop the
 * attachment) ever execute there.
 */
TEST(EventTrace, StreamsBitIdenticalAcrossJobs)
{
    auto runTraced = [](int jobs) {
        RunConfig rc;
        rc.epochSize = 4096;
        rc.epochs = 3;
        rc.warmupCycles = 16384;
        const Workload &w = workloadByName("art-mcf");

        OfflineConfig oc;
        oc.epochSize = rc.epochSize;
        oc.stride = 64;
        oc.jobs = jobs;
        OfflineExhaustive off(oc);

        IcountPolicy icount;
        std::vector<ResourcePolicy *> policies{&icount};
        EventTrace trace;
        syncCompareOffline(makeCpu(w, rc), off, policies, rc.epochs,
                           &trace);
        return trace.events();
    };

    std::vector<SimEvent> serial = runTraced(1);
    std::vector<SimEvent> parallel = runTraced(4);
    EXPECT_FALSE(serial.empty());
    EventDiff d = diffEvents(serial, parallel);
    EXPECT_FALSE(d.diverged) << d.description;
}

TEST(EventTraceInvariant, AcceptsRealTraceAndOrderedTracks)
{
    RunConfig rc;
    rc.epochSize = 4096;
    rc.epochs = 4;
    rc.warmupCycles = 16384;
    HillConfig hc;
    hc.epochSize = rc.epochSize;
    HillClimbing hill(hc);
    EventTrace trace;
    hill.setEventTrace(&trace, 0);
    runPolicy(workloadByName("art-mcf"), hill, rc);
    EXPECT_FALSE(trace.empty());

    InvariantChecker chk;
    chk.checkEventStream(trace.events());
    EXPECT_TRUE(chk.ok()) << chk.summary();
}

TEST(EventTraceInvariant, FlagsTimeTravelBadDurationAndPhase)
{
    // Independent tracks may interleave arbitrarily.
    std::vector<SimEvent> ok = {instantAt(100, 0), instantAt(10, 1),
                                instantAt(100, 0), instantAt(20, 1)};
    InvariantChecker accepts;
    accepts.checkEventStream(ok);
    EXPECT_TRUE(accepts.ok()) << accepts.summary();

    // Same track going backwards fires.
    std::vector<SimEvent> backwards = {instantAt(100), instantAt(99)};
    InvariantChecker chk1;
    chk1.checkEventStream(backwards);
    ASSERT_FALSE(chk1.ok());
    EXPECT_EQ(chk1.violations()[0].check, "events.monotonic");

    // A slice ending before an already-reached point fires too.
    SimEvent slice = instantAt(0);
    slice.ph = 'X';
    slice.dur = 50;
    std::vector<SimEvent> overlap = {instantAt(200), slice};
    InvariantChecker chk2;
    chk2.checkEventStream(overlap);
    ASSERT_FALSE(chk2.ok());
    EXPECT_EQ(chk2.violations()[0].check, "events.monotonic");

    // Negative-duration slices are malformed.
    SimEvent bad_dur = instantAt(300);
    bad_dur.ph = 'X';
    bad_dur.dur = -1;
    InvariantChecker chk3;
    chk3.checkEventStream({bad_dur});
    ASSERT_FALSE(chk3.ok());
    EXPECT_EQ(chk3.violations()[0].check, "events.duration");

    // Unknown phase characters are malformed.
    SimEvent bad_ph = instantAt(400);
    bad_ph.ph = 'Q';
    InvariantChecker chk4;
    chk4.checkEventStream({bad_ph});
    ASSERT_FALSE(chk4.ok());
    EXPECT_EQ(chk4.violations()[0].check, "events.phase");
}

TEST(EventTrace, DiffReportsFirstDivergence)
{
    std::vector<SimEvent> a = {instantAt(1), instantAt(2), instantAt(3)};
    std::vector<SimEvent> b = a;
    EXPECT_FALSE(diffEvents(a, b).diverged);

    b[1].ts = 99;
    EventDiff d = diffEvents(a, b);
    ASSERT_TRUE(d.diverged);
    EXPECT_EQ(d.index, 1u);
    EXPECT_NE(d.description.find("ts"), std::string::npos);

    b = a;
    b.pop_back();
    EventDiff shorter = diffEvents(a, b);
    ASSERT_TRUE(shorter.diverged);
    EXPECT_EQ(shorter.index, 2u);
}

} // namespace
} // namespace smthill
