/**
 * @file
 * Stress suites: random workloads under every policy, checkpointing
 * under active policies mid-flush, and custom-workload construction.
 * These guard the machine invariants in corners the curated Table 3
 * workloads never reach.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/hill_climbing.hh"
#include "harness/runner.hh"
#include "policy/dcra.hh"
#include "policy/dg.hh"
#include "policy/flush.hh"
#include "policy/icount.hh"
#include "policy/stall_flush.hh"
#include "workload/workloads.hh"

namespace smthill
{
namespace
{

TEST(CustomWorkload, BuildsWithDerivedGroup)
{
    Workload w = makeCustomWorkload({"art", "gzip", "mcf"});
    EXPECT_EQ(w.name, "art-gzip-mcf");
    EXPECT_EQ(w.group, "MIX3");
    EXPECT_EQ(w.numThreads(), 3);

    EXPECT_EQ(makeCustomWorkload({"bzip2", "eon"}).group, "ILP2");
    EXPECT_EQ(makeCustomWorkload({"art", "mcf"}).group, "MEM2");
    EXPECT_EQ(makeCustomWorkload({"swim"}).group, "MEM1");
}

TEST(CustomWorkload, RejectsBadInput)
{
    EXPECT_DEATH(makeCustomWorkload({}), "1..8");
    EXPECT_DEATH(makeCustomWorkload({"quake3"}), "unknown benchmark");
}

TEST(CustomWorkload, RandomIsDeterministicPerSeed)
{
    Workload a = randomWorkload(3, 42);
    Workload b = randomWorkload(3, 42);
    EXPECT_EQ(a.name, b.name);
    Workload c = randomWorkload(3, 43);
    // Different seeds usually differ (not guaranteed, but with 22
    // benchmarks the collision chance over names is tiny).
    EXPECT_EQ(c.numThreads(), 3);
}

TEST(CustomWorkload, RandomHasNoDuplicateMembers)
{
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Workload w = randomWorkload(5, seed);
        for (std::size_t i = 0; i < w.benchmarks.size(); ++i)
            for (std::size_t j = i + 1; j < w.benchmarks.size(); ++j)
                EXPECT_NE(w.benchmarks[i], w.benchmarks[j]) << seed;
    }
}

/**
 * Property: every policy survives every random workload without
 * violating occupancy limits or starving a thread.
 */
class RandomWorkloadStress
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(RandomWorkloadStress, AllPoliciesSurvive)
{
    auto [threads, seed] = GetParam();
    Workload w = randomWorkload(threads, static_cast<std::uint64_t>(seed));
    RunConfig rc;
    rc.epochs = 3;
    rc.epochSize = 8192;
    rc.warmupCycles = 65536;

    std::vector<std::unique_ptr<ResourcePolicy>> policies;
    policies.push_back(std::make_unique<IcountPolicy>());
    policies.push_back(std::make_unique<FlushPolicy>());
    policies.push_back(std::make_unique<StallFlushPolicy>());
    policies.push_back(std::make_unique<DgPolicy>());
    policies.push_back(std::make_unique<PdgPolicy>());
    policies.push_back(std::make_unique<DcraPolicy>());
    {
        HillConfig hc;
        hc.epochSize = rc.epochSize;
        hc.metric = PerfMetric::AvgIpc;
        hc.sampleSingleIpc = false;
        policies.push_back(std::make_unique<HillClimbing>(hc));
    }

    for (auto &p : policies) {
        RunResult res = runPolicy(w, *p, rc);
        const Occupancy dummy{}; // silence unused warnings pattern
        (void)dummy;
        std::uint64_t total = 0;
        for (int t = 0; t < threads; ++t)
            total += res.stats.committed[t];
        EXPECT_GT(total, 500u) << w.name << " under " << p->name();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomWorkloadStress,
    ::testing::Combine(::testing::Values(2, 3, 4, 6),
                       ::testing::Values(1, 2, 3)));

TEST(CheckpointStress, CopyDuringFlushReplaysExactly)
{
    // Checkpoint a machine while FLUSH has a thread locked and
    // mid-recovery; both copies must evolve identically under the
    // same subsequent control.
    Workload w = makeCustomWorkload({"art", "gzip"});
    RunConfig rc;
    rc.warmupCycles = 200000;
    SmtCpu cpu = makeCpu(w, rc);
    FlushPolicy flush;
    flush.attach(cpu);

    // Drive until a lock is active.
    int guard = 0;
    while (!cpu.fetchLocked(0) && guard++ < 200000) {
        flush.cycle(cpu);
        cpu.step();
    }
    ASSERT_TRUE(cpu.fetchLocked(0)) << "never saw a FLUSH lock";

    SmtCpu copy = cpu;
    auto policy_copy = flush.clone();
    for (int i = 0; i < 50000; ++i) {
        flush.cycle(cpu);
        cpu.step();
        policy_copy->cycle(copy);
        copy.step();
    }
    EXPECT_EQ(cpu.stats().committed[0], copy.stats().committed[0]);
    EXPECT_EQ(cpu.stats().committed[1], copy.stats().committed[1]);
    EXPECT_EQ(cpu.stats().flushed[0], copy.stats().flushed[0]);
}

TEST(CheckpointStress, ManySequentialCheckpointsStayConsistent)
{
    Workload w = makeCustomWorkload({"swim", "mcf"});
    RunConfig rc;
    rc.warmupCycles = 150000;
    SmtCpu cpu = makeCpu(w, rc);
    // Interleave copies and running; final state must match a
    // straight-line run of the same machine.
    SmtCpu straight = cpu;
    for (int i = 0; i < 10; ++i) {
        SmtCpu checkpoint = cpu; // discarded copy
        (void)checkpoint;
        cpu.run(5000);
        straight.run(5000);
    }
    EXPECT_EQ(cpu.stats().committedTotal(),
              straight.stats().committedTotal());
    EXPECT_EQ(cpu.memory().ul2().misses(),
              straight.memory().ul2().misses());
}

TEST(CheckpointStress, HillStateSurvivesClone)
{
    Workload w = makeCustomWorkload({"art", "mcf"});
    RunConfig rc;
    rc.warmupCycles = 150000;
    SmtCpu cpu = makeCpu(w, rc);
    HillConfig hc;
    hc.epochSize = 8192;
    hc.metric = PerfMetric::AvgIpc;
    hc.sampleSingleIpc = false;
    HillClimbing hill(hc);
    hill.attach(cpu);
    for (int e = 0; e < 12; ++e) {
        runOneEpoch(cpu, hill, hc.epochSize);
        hill.epoch(cpu, e);
    }

    // Clone machine + policy; both must evolve identically.
    SmtCpu cpu2 = cpu;
    auto hill2 = hill.clone();
    for (int e = 12; e < 20; ++e) {
        runOneEpoch(cpu, hill, hc.epochSize);
        hill.epoch(cpu, e);
        runOneEpoch(cpu2, *hill2, hc.epochSize);
        hill2->epoch(cpu2, e);
    }
    auto *h2 = dynamic_cast<HillClimbing *>(hill2.get());
    ASSERT_NE(h2, nullptr);
    EXPECT_EQ(hill.anchor(), h2->anchor());
    EXPECT_EQ(cpu.stats().committedTotal(),
              cpu2.stats().committedTotal());
}

} // namespace
} // namespace smthill
