/**
 * @file
 * Unit tests for the named-statistic registry: find-or-create
 * semantics, reference stability, JSON export, and concurrent
 * updates from pool-like worker threads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/stat_registry.hh"
#include "common/thread_pool.hh"

namespace smthill
{
namespace
{

TEST(StatRegistry, CounterFindOrCreate)
{
    StatRegistry reg;
    StatCounter &a = reg.counter("hits");
    StatCounter &b = reg.counter("hits");
    EXPECT_EQ(&a, &b) << "same name must yield the same object";
    a.inc();
    b.add(4);
    EXPECT_EQ(a.value(), 5u);
}

TEST(StatRegistry, GaugeSetAndAdd)
{
    StatRegistry reg;
    StatGauge &g = reg.gauge("depth");
    g.set(3.0);
    g.add(-1.5);
    EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(StatRegistry, DistributionSummary)
{
    StatRegistry reg;
    StatDistribution &d = reg.distribution("lat");
    for (double v : {2.0, 4.0, 6.0})
        d.add(v);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 6.0);
    EXPECT_NEAR(d.stddev(), std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(StatRegistry, EmptyDistributionIsDefined)
{
    StatRegistry reg;
    StatDistribution &d = reg.distribution("empty");
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(StatRegistry, NamesInRegistrationOrder)
{
    StatRegistry reg;
    reg.counter("c1");
    reg.gauge("g1");
    reg.distribution("d1");
    reg.counter("c1"); // lookup, not a new registration
    std::vector<std::string> names = reg.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "c1");
    EXPECT_EQ(names[1], "g1");
    EXPECT_EQ(names[2], "d1");
}

TEST(StatRegistry, KindMismatchDies)
{
    StatRegistry reg;
    reg.counter("x");
    EXPECT_DEATH(reg.gauge("x"), "x");
}

TEST(StatRegistry, ToJsonExportsEveryKind)
{
    StatRegistry reg;
    reg.counter("hits").add(7);
    reg.gauge("depth").set(2.25);
    StatDistribution &d = reg.distribution("lat");
    d.add(1.0);
    d.add(3.0);

    Json j = reg.toJson();
    EXPECT_EQ(j.at("hits").asInt(), 7);
    EXPECT_DOUBLE_EQ(j.at("depth").asDouble(), 2.25);
    const Json &dist = j.at("lat");
    EXPECT_EQ(dist.at("count").asInt(), 2);
    EXPECT_DOUBLE_EQ(dist.at("mean").asDouble(), 2.0);
    EXPECT_DOUBLE_EQ(dist.at("min").asDouble(), 1.0);
    EXPECT_DOUBLE_EQ(dist.at("max").asDouble(), 3.0);

    // The export round-trips through the parser.
    Json back;
    std::string error;
    ASSERT_TRUE(Json::parse(j.dump(2), back, error)) << error;
    EXPECT_TRUE(back == j);
}

TEST(StatRegistry, ResetValuesKeepsRegistrations)
{
    StatRegistry reg;
    StatCounter &c = reg.counter("c");
    c.add(5);
    reg.gauge("g").set(1.0);
    reg.distribution("d").add(2.0);
    reg.resetValues();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
    EXPECT_EQ(reg.distribution("d").count(), 0u);
    EXPECT_EQ(reg.names().size(), 3u);
}

TEST(StatRegistry, ConcurrentCountsAreExact)
{
    StatRegistry reg;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg] {
            // Registration races with other workers on purpose; every
            // thread must land on the same counter object.
            StatCounter &c = reg.counter("shared");
            for (int i = 0; i < kPerThread; ++i)
                c.inc();
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(reg.counter("shared").value(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(StatRegistry, GlobalRegistryIsSingleton)
{
    EXPECT_EQ(&globalStats(), &globalStats());
}

TEST(StatRegistry, ThreadPoolRegistersItsStats)
{
    // The pool wires itself into globalStats(); tasks executed there
    // are visible in the export.
    std::uint64_t before = globalStats().counter("smthill.thread_pool.tasks")
                               .value();
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.parallelFor(16, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 16);
    EXPECT_GE(globalStats().counter("smthill.thread_pool.tasks").value(),
              before);
}

} // namespace
} // namespace smthill
