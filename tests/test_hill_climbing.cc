/**
 * @file
 * Unit tests for the hill-climbing learner (Figure 8).
 */

#include <gtest/gtest.h>

#include "core/hill_climbing.hh"
#include "harness/runner.hh"
#include "trace/program_profile.hh"

namespace smthill
{
namespace
{

ProgramProfile
profileWith(double p_cold, int dep, const char *name)
{
    ProfileParams pp;
    pp.name = name;
    pp.numBlocks = 12;
    pp.avgBlockLen = 8;
    pp.pLoadCold = p_cold;
    pp.meanDepDist = dep;
    pp.serialFrac = 0.1;
    pp.burstProb = p_cold > 0 ? 0.6 : 0.0;
    pp.burstMax = 6;
    return buildProfile(pp);
}

SmtCpu
asymmetricCpu()
{
    // Thread 0 profits from a large window (bursty misses); thread 1
    // is a short-chain ILP thread that does not.
    SmtConfig cfg;
    cfg.numThreads = 2;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(profileWith(0.08, 30, "mlp"), 0);
    gens.emplace_back(profileWith(0.0, 6, "ilp"), 1);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(100000); // warm
    return cpu;
}

HillConfig
fastConfig()
{
    HillConfig hc;
    hc.epochSize = 16384;
    hc.sampleSingleIpc = false;
    hc.metric = PerfMetric::AvgIpc;
    return hc;
}

TEST(HillClimbing, AttachInstallsEqualAnchorTrial)
{
    SmtCpu cpu = asymmetricCpu();
    HillClimbing hill(fastConfig());
    hill.attach(cpu);
    EXPECT_TRUE(cpu.partitioningEnabled());
    EXPECT_EQ(hill.anchor().share[0], 128);
    // First trial favors thread 0 by Delta.
    EXPECT_EQ(cpu.partition().share[0], 132);
    EXPECT_EQ(cpu.partition().share[1], 124);
}

TEST(HillClimbing, RoundMovesAnchorAlongGradient)
{
    SmtCpu cpu = asymmetricCpu();
    HillClimbing hill(fastConfig());
    hill.attach(cpu);
    Partition before = hill.anchor();
    // Run one full round (N=2 epochs).
    for (int e = 0; e < 2; ++e) {
        runOneEpoch(cpu, hill, hill.config().epochSize);
        hill.epoch(cpu, e);
    }
    Partition after = hill.anchor();
    EXPECT_NE(before, after) << "the anchor must move every round";
    EXPECT_EQ(after.total(), 256);
    int moved = std::abs(after.share[0] - before.share[0]);
    EXPECT_EQ(moved, 4) << "one round moves exactly Delta";
}

TEST(HillClimbing, ChargesSoftwareCost)
{
    SmtCpu cpu = asymmetricCpu();
    HillConfig hc = fastConfig();
    hc.softwareCost = 200;
    HillClimbing hill(hc);
    hill.attach(cpu);
    runOneEpoch(cpu, hill, hc.epochSize);
    auto committed = cpu.stats().committedTotal();
    hill.epoch(cpu, 0);
    cpu.run(200);
    EXPECT_EQ(cpu.stats().committedTotal(), committed)
        << "the 200-cycle software stall freezes commit";
}

TEST(HillClimbing, ClimbsTowardMlpThread)
{
    // A steep, monotone hill: thread 0 converts every extra window
    // entry into overlapped misses, thread 1 is a serial chain that
    // needs almost none. On a small machine the climber must walk
    // decisively toward thread 0.
    SmtConfig cfg;
    cfg.numThreads = 2;
    cfg.intRegs = 64;
    cfg.robSize = 128;
    cfg.intIqSize = 40;
    cfg.lsqSize = 64;
    cfg.fpRegs = 64;

    ProfileParams win;
    win.name = "window";
    win.numBlocks = 12;
    win.avgBlockLen = 8;
    win.pLoadCold = 0.10;
    win.burstProb = 0.9;
    win.burstMax = 16;
    win.serialFrac = 0.0;
    win.meanDepDist = 64;

    ProfileParams chain;
    chain.name = "chain";
    chain.numBlocks = 12;
    chain.avgBlockLen = 8;
    chain.serialFrac = 0.9;
    chain.meanDepDist = 2;
    chain.pLoadWarm = 0.0;

    std::vector<StreamGenerator> gens;
    gens.emplace_back(buildProfile(win), 0);
    gens.emplace_back(buildProfile(chain), 1);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(300000); // warm

    HillClimbing hill(fastConfig());
    hill.attach(cpu);
    double mean_share0 = 0.0;
    int counted = 0;
    for (int e = 0; e < 40; ++e) {
        runOneEpoch(cpu, hill, hill.config().epochSize);
        hill.epoch(cpu, e);
        if (e >= 20) {
            mean_share0 += hill.anchor().share[0];
            ++counted;
        }
    }
    EXPECT_GT(mean_share0 / counted, 40.0)
        << "anchor should spend its time well above the equal split "
           "(32) on the window-hungry side";
}

TEST(HillClimbing, SamplingEpochRunsThreadSolo)
{
    SmtCpu cpu = asymmetricCpu();
    HillConfig hc = fastConfig();
    hc.metric = PerfMetric::WeightedIpc;
    hc.sampleSingleIpc = true;
    hc.samplePeriod = 3; // sample quickly for the test
    HillClimbing hill(hc);
    hill.attach(cpu);

    bool sampled = false;
    for (int e = 0; e < 12 && !sampled; ++e) {
        runOneEpoch(cpu, hill, hc.epochSize);
        hill.epoch(cpu, e);
        if (hill.samplingActive()) {
            sampled = true;
            // Exactly one thread is enabled during the sample epoch.
            int enabled = cpu.threadEnabled(0) + cpu.threadEnabled(1);
            EXPECT_EQ(enabled, 1);
            EXPECT_FALSE(cpu.partitioningEnabled());
        }
    }
    ASSERT_TRUE(sampled);

    // After the sampling epoch, estimates appear and execution
    // resumes multithreaded.
    runOneEpoch(cpu, hill, hc.epochSize);
    hill.epoch(cpu, 99);
    EXPECT_FALSE(hill.samplingActive());
    EXPECT_TRUE(cpu.threadEnabled(0));
    EXPECT_TRUE(cpu.threadEnabled(1));
    EXPECT_TRUE(cpu.partitioningEnabled());
    double est0 = hill.singleIpc()[0], est1 = hill.singleIpc()[1];
    EXPECT_GT(est0 + est1, 0.0);
}

TEST(HillClimbing, SingleIpcEstimatesConverge)
{
    SmtCpu cpu = asymmetricCpu();
    HillConfig hc = fastConfig();
    hc.metric = PerfMetric::WeightedIpc;
    hc.sampleSingleIpc = true;
    hc.samplePeriod = 2;
    HillClimbing hill(hc);
    hill.attach(cpu);
    for (int e = 0; e < 24; ++e) {
        runOneEpoch(cpu, hill, hc.epochSize);
        hill.epoch(cpu, e);
    }
    // Both threads must have been sampled by now.
    EXPECT_GT(hill.singleIpc()[0], 0.0);
    EXPECT_GT(hill.singleIpc()[1], 0.0);
    // The ILP thread is much faster solo than the MLP thread.
    EXPECT_GT(hill.singleIpc()[1], hill.singleIpc()[0]);
}

TEST(HillClimbing, NamesFollowMetric)
{
    HillConfig hc;
    hc.metric = PerfMetric::AvgIpc;
    EXPECT_EQ(HillClimbing(hc).name(), "HILL-IPC");
    hc.metric = PerfMetric::WeightedIpc;
    EXPECT_EQ(HillClimbing(hc).name(), "HILL-WIPC");
    hc.metric = PerfMetric::HarmonicWeightedIpc;
    EXPECT_EQ(HillClimbing(hc).name(), "HILL-HWIPC");
}

TEST(HillClimbing, CloneCopiesLearnedState)
{
    SmtCpu cpu = asymmetricCpu();
    HillClimbing hill(fastConfig());
    hill.attach(cpu);
    for (int e = 0; e < 10; ++e) {
        runOneEpoch(cpu, hill, hill.config().epochSize);
        hill.epoch(cpu, e);
    }
    auto clone = hill.clone();
    auto *hc = dynamic_cast<HillClimbing *>(clone.get());
    ASSERT_NE(hc, nullptr);
    EXPECT_EQ(hc->anchor(), hill.anchor());
}

TEST(HillClimbing, SharesNeverBelowFloor)
{
    SmtCpu cpu = asymmetricCpu();
    HillConfig hc = fastConfig();
    hc.minShare = 4;
    HillClimbing hill(hc);
    hill.attach(cpu);
    for (int e = 0; e < 60; ++e) {
        runOneEpoch(cpu, hill, hc.epochSize);
        hill.epoch(cpu, e);
        ASSERT_GE(cpu.partition().share[0], 4);
        ASSERT_GE(cpu.partition().share[1], 4);
        ASSERT_EQ(cpu.partition().total(), 256);
    }
}

TEST(HillClimbing, FourThreadRoundsRotateTrials)
{
    SmtConfig cfg;
    cfg.numThreads = 4;
    std::vector<StreamGenerator> gens;
    for (int i = 0; i < 4; ++i)
        gens.emplace_back(profileWith(0.02 * i, 10, "t"), i);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(50000);
    HillClimbing hill(fastConfig());
    hill.attach(cpu);
    // Epoch e's trial favors thread e % 4.
    for (int e = 0; e < 8; ++e) {
        const Partition &trial = cpu.partition();
        int favored = e % 4;
        for (int i = 0; i < 4; ++i) {
            if (i == favored)
                EXPECT_GT(trial.share[i], hill.anchor().share[i] - 1);
            else
                EXPECT_LE(trial.share[i], hill.anchor().share[i]);
        }
        runOneEpoch(cpu, hill, hill.config().epochSize);
        hill.epoch(cpu, e);
    }
}

TEST(HillClimbing, RejectsBadConfig)
{
    HillConfig hc;
    hc.delta = 0;
    EXPECT_DEATH(HillClimbing h(hc), "delta");
}

// --- Open-system churn (PR 7) ---------------------------------------

/**
 * Regression: a context freed by one job and reused by the next kept
 * the previous occupant's stand-alone IPC estimate, so the weighted
 * metrics scored the new job against a solo speed it never had (and
 * the learner never re-sampled, since the slot already "had" an
 * estimate). A newly attached job must be sampled solo afresh.
 */
TEST(HillClimbingChurn, SingleIpcRebootstrapsOnContextReuse)
{
    SmtCpu cpu = asymmetricCpu();
    HillConfig hc = fastConfig();
    hc.metric = PerfMetric::WeightedIpc;
    hc.sampleSingleIpc = true;
    hc.samplePeriod = 2;
    HillClimbing hill(hc);
    hill.attach(cpu);

    // Converge both estimates in the closed system.
    for (int e = 0; e < 16; ++e) {
        runOneEpoch(cpu, hill, hc.epochSize);
        hill.epoch(cpu, e);
    }
    ASSERT_GT(hill.singleIpc()[1], 0.0);
    double old_est = hill.singleIpc()[1];

    // Job on context 1 departs; a different program arrives on the
    // same context.
    cpu.idleContext(1);
    hill.threadDetached(cpu, 1);
    EXPECT_FALSE(hill.threadActive(1));

    cpu.resetContext(1,
                     StreamGenerator(profileWith(0.0, 4, "new-job"), 7));
    hill.threadAttached(cpu, 1);
    EXPECT_TRUE(hill.threadActive(1));

    // The stale estimate must be gone and a solo re-sample queued.
    EXPECT_DOUBLE_EQ(hill.singleIpc()[1], 0.0)
        << "inherited the departed job's solo IPC";
    EXPECT_TRUE(hill.soloResamplePending(1));

    // Within a few epochs the learner samples the newcomer solo and
    // installs a fresh estimate.
    for (int e = 16; e < 28 && hill.soloResamplePending(1); ++e) {
        runOneEpoch(cpu, hill, hc.epochSize);
        hill.epoch(cpu, e);
    }
    EXPECT_FALSE(hill.soloResamplePending(1));
    EXPECT_GT(hill.singleIpc()[1], 0.0);
    EXPECT_NE(hill.singleIpc()[1], old_est)
        << "estimate was measured, not inherited";
}

/**
 * Regression: a thread that attached halfway through an epoch was
 * charged the full epoch as divisor, halving its measured IPC; under
 * WIPC/HWIPC that systematically penalized every arrival's first
 * epoch. The divisor must be the cycles the context actually held
 * the job.
 */
TEST(HillClimbingChurn, MidEpochAttachChargesPartialResidency)
{
    // Expose the protected epoch measurement for the assertion below.
    struct HillProbe : HillClimbing {
        using HillClimbing::HillClimbing;
        using HillClimbing::measureEpoch;
    };

    SmtCpu cpu = asymmetricCpu();
    cpu.idleContext(1); // open system: context 1 starts empty

    HillConfig hc = fastConfig();
    HillProbe hill(hc);
    hill.attach(cpu);

    // Half an epoch with only thread 0 resident.
    runOneEpoch(cpu, hill, hc.epochSize / 2);

    // A job arrives on context 1 mid-epoch.
    cpu.resetContext(1,
                     StreamGenerator(profileWith(0.0, 6, "arrival"), 3));
    hill.threadAttached(cpu, 1);
    std::uint64_t committed_at_attach = cpu.stats().committed[1];
    Cycle attach_cycle = cpu.now();

    // Second half of the epoch with both threads resident.
    runOneEpoch(cpu, hill, hc.epochSize / 2);

    std::uint64_t delta = cpu.stats().committed[1] - committed_at_attach;
    Cycle resident = cpu.now() - attach_cycle;
    ASSERT_GT(delta, 0u);

    IpcSample s = hill.measureEpoch(cpu);
    EXPECT_DOUBLE_EQ(s.ipc[1], static_cast<double>(delta) /
                                   static_cast<double>(resident))
        << "divisor must be the job's residency, not the full epoch";
}

/**
 * A mid-epoch departure redistributes the freed shares immediately
 * and keeps the installed partition feasible for the survivors.
 */
TEST(HillClimbingChurn, DetachRedistributesAndStaysFeasible)
{
    SmtConfig cfg;
    cfg.numThreads = 4;
    std::vector<StreamGenerator> gens;
    for (int i = 0; i < 4; ++i)
        gens.emplace_back(profileWith(0.01, 8, "t"), i);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(50000);

    HillConfig hc = fastConfig();
    hc.minShare = 8;
    HillClimbing hill(hc);
    hill.attach(cpu);
    for (int e = 0; e < 4; ++e) {
        runOneEpoch(cpu, hill, hc.epochSize);
        hill.epoch(cpu, e);
    }

    cpu.idleContext(2);
    hill.threadDetached(cpu, 2);

    const Partition &p = cpu.partition();
    EXPECT_TRUE(cpu.partitioningEnabled());
    EXPECT_EQ(p.total(), 256) << "freed shares redistributed";
    EXPECT_EQ(hill.anchor().share[2], 0)
        << "departed context holds no shares";
    for (int i = 0; i < 4; ++i) {
        if (i == 2)
            continue;
        EXPECT_GE(hill.anchor().share[i], 8)
            << "survivor " << i << " below the feasible floor";
    }

    // Down to one survivor: partitioning must drop out entirely.
    cpu.idleContext(1);
    hill.threadDetached(cpu, 1);
    cpu.idleContext(3);
    hill.threadDetached(cpu, 3);
    EXPECT_FALSE(cpu.partitioningEnabled());
}

/**
 * Regression (churn bug #2, found by the attach/detach property
 * sweep): when the last job departed, redistributeDetached freed
 * every share into the void and the anchor's total dropped to zero;
 * admitAttached conserves the total it is given, so the first
 * arrivals after a drain inherited — and installed — an all-zero
 * partition that starved every context until the horizon. The anchor
 * must be re-seeded with the full register file on refill.
 */
TEST(HillClimbingChurn, DrainToEmptyThenRefillReseedsAnchor)
{
    SmtConfig cfg;
    cfg.numThreads = 4;
    std::vector<StreamGenerator> gens;
    for (int i = 0; i < 4; ++i)
        gens.emplace_back(profileWith(0.01, 8, "t"), i);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(50000);

    HillConfig hc = fastConfig();
    hc.minShare = 8;
    HillClimbing hill(hc);
    hill.attach(cpu);
    for (int e = 0; e < 2; ++e) {
        runOneEpoch(cpu, hill, hc.epochSize);
        hill.epoch(cpu, e);
    }

    // Every job departs: the machine drains completely.
    for (int i = 0; i < 4; ++i) {
        cpu.idleContext(i);
        hill.threadDetached(cpu, i);
    }
    EXPECT_EQ(hill.anchor().total(), 0) << "drained anchor holds shares";
    EXPECT_FALSE(cpu.partitioningEnabled());

    // Two arrivals refill contexts 1 and 3.
    cpu.resetContext(1, StreamGenerator(profileWith(0.0, 6, "j1"), 11));
    hill.threadAttached(cpu, 1);
    cpu.resetContext(3, StreamGenerator(profileWith(0.0, 6, "j3"), 13));
    hill.threadAttached(cpu, 3);

    EXPECT_EQ(hill.anchor().total(), 256)
        << "refill after a drain lost the register file";
    EXPECT_GE(hill.anchor().share[1], 8);
    EXPECT_GE(hill.anchor().share[3], 8);
    EXPECT_TRUE(cpu.partitioningEnabled());
    EXPECT_EQ(cpu.partition().total(), 256)
        << "an all-zero partition was installed";
}

} // namespace
} // namespace smthill
