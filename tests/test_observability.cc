/**
 * @file
 * Tests for the observability layer and the measurement bugfixes it
 * made visible:
 *  - EpochTracer JSON/CSV export and round-trip;
 *  - MachineReport JSON round-trip, the flushed-with-zero-commits
 *    reporting, and snapshot/report thread-range consistency;
 *  - hill-climbing epoch IPCs measured over actual elapsed cycles
 *    (not the nominal epoch size);
 *  - the SingleIPC bootstrap that samples every thread solo at
 *    attach, before the first learning epoch;
 *  - share-conservation / min-share properties of trialPartition and
 *    moveAnchor across the whole anchor space, including extremes.
 */

#include <gtest/gtest.h>

#include "core/epoch_trace.hh"
#include "core/hill_climbing.hh"
#include "core/partitioning.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "trace/program_profile.hh"

namespace smthill
{
namespace
{

ProgramProfile
simpleProfile(double p_cold, int dep, const char *name)
{
    ProfileParams pp;
    pp.name = name;
    pp.numBlocks = 12;
    pp.avgBlockLen = 8;
    pp.pLoadCold = p_cold;
    pp.meanDepDist = dep;
    pp.serialFrac = 0.1;
    pp.burstProb = p_cold > 0 ? 0.6 : 0.0;
    pp.burstMax = 6;
    return buildProfile(pp);
}

SmtCpu
twoThreadCpu()
{
    SmtConfig cfg;
    cfg.numThreads = 2;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(simpleProfile(0.08, 30, "mlp"), 0);
    gens.emplace_back(simpleProfile(0.0, 6, "ilp"), 1);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(100000);
    return cpu;
}

EpochTraceRecord
sampleRecord(std::uint64_t id)
{
    EpochTraceRecord r;
    r.epochId = id;
    r.cycle = 100000 + id * 16384;
    r.elapsedCycles = 16184;
    r.numThreads = 2;
    r.ipc = {0.75, 1.25};
    r.metricValue = 0.875;
    r.partitioned = true;
    r.trial.numThreads = 2;
    r.trial.share = {132, 124};
    r.anchor.numThreads = 2;
    r.anchor.share = {128, 128};
    r.roundPerf = {0.8, 0.9};
    r.singleIpcEst = {1.1, 2.2};
    r.gradientThread = 1;
    r.samplingThread = -1;
    r.anchorMoved = true;
    r.softwareCost = 200;
    return r;
}

TEST(EpochTracer, JsonRoundTripsEveryField)
{
    EpochTracer tracer;
    tracer.record(sampleRecord(0));
    EpochTraceRecord unpart = sampleRecord(1);
    unpart.partitioned = false;
    unpart.samplingThread = 0;
    unpart.gradientThread = -1;
    unpart.anchorMoved = false;
    tracer.record(unpart);

    Json j = tracer.toJson(PerfMetric::WeightedIpc);
    EXPECT_EQ(j.at("schema").asString(), "smthill.epoch-trace.v1");
    EXPECT_EQ(j.at("metric").asString(), "WIPC");
    EXPECT_EQ(j.at("num_threads").asInt(), 2);
    EXPECT_TRUE(j.at("epochs").items()[1].at("trial").isNull())
        << "sampling epochs have no trial partition";

    // Export -> serialize -> parse -> rebuild must reproduce every
    // field of every record.
    Json reparsed;
    std::string error;
    ASSERT_TRUE(Json::parse(j.dump(2), reparsed, error)) << error;
    std::vector<EpochTraceRecord> back;
    ASSERT_TRUE(EpochTracer::fromJson(reparsed, back, error)) << error;
    ASSERT_EQ(back.size(), tracer.size());
    for (std::size_t i = 0; i < back.size(); ++i) {
        const EpochTraceRecord &a = tracer.records()[i];
        const EpochTraceRecord &b = back[i];
        EXPECT_EQ(b.epochId, a.epochId);
        EXPECT_EQ(b.cycle, a.cycle);
        EXPECT_EQ(b.elapsedCycles, a.elapsedCycles);
        EXPECT_EQ(b.numThreads, a.numThreads);
        EXPECT_EQ(b.partitioned, a.partitioned);
        if (a.partitioned) {
            EXPECT_EQ(b.trial, a.trial);
        }
        EXPECT_EQ(b.anchor, a.anchor);
        EXPECT_EQ(b.gradientThread, a.gradientThread);
        EXPECT_EQ(b.samplingThread, a.samplingThread);
        EXPECT_EQ(b.anchorMoved, a.anchorMoved);
        EXPECT_EQ(b.softwareCost, a.softwareCost);
        for (int t = 0; t < a.numThreads; ++t) {
            EXPECT_EQ(b.ipc[t], a.ipc[t]);
            EXPECT_EQ(b.roundPerf[t], a.roundPerf[t]);
            EXPECT_EQ(b.singleIpcEst[t], a.singleIpcEst[t]);
        }
        EXPECT_EQ(b.metricValue, a.metricValue);
    }
}

TEST(EpochTracer, RejectsForeignDocuments)
{
    Json j = Json::object();
    j.set("schema", Json("smthill.report.v1"));
    std::vector<EpochTraceRecord> out;
    std::string error;
    EXPECT_FALSE(EpochTracer::fromJson(j, out, error));
    EXPECT_FALSE(error.empty());
}

TEST(EpochTracer, CsvHasHeaderAndOneRowPerEpoch)
{
    EpochTracer tracer;
    tracer.record(sampleRecord(0));
    tracer.record(sampleRecord(1));
    std::string csv = tracer.toCsv();
    std::size_t lines = 0;
    for (char c : csv)
        lines += c == '\n';
    EXPECT_EQ(lines, 3u) << "header + 2 rows";
    EXPECT_EQ(csv.substr(0, 6), "epoch,");
    EXPECT_NE(csv.find("single_ipc_est_1"), std::string::npos);
}

// ---------------------------------------------------------------
// MachineReport: JSON round-trip and the reporting fixes.

MachineSnapshot
emptySnapshot(int nt, Cycle cycle)
{
    MachineSnapshot s;
    s.cycle = cycle;
    s.numThreads = nt;
    return s;
}

TEST(MachineReport, JsonRoundTrip)
{
    MachineSnapshot before = emptySnapshot(2, 1000);
    MachineSnapshot after = emptySnapshot(2, 11000);
    after.stats.committed = {5000, 2500};
    after.stats.fetched = {9000, 4000};
    after.stats.flushed = {700, 40};
    after.stats.branches = {800, 400};
    after.stats.mispredicts = {60, 4};
    after.stats.partitionLockCycles = {100, 300};
    after.stats.stalledCycles = 600;
    after.dl1Misses = {200, 20};
    after.l2Misses = {50, 5};

    MachineReport rep = buildReport(before, after, {"a", "b"});
    Json j = rep.toJson();
    Json reparsed;
    std::string error;
    ASSERT_TRUE(Json::parse(j.dump(2), reparsed, error)) << error;
    MachineReport back;
    ASSERT_TRUE(machineReportFromJson(reparsed, back, error)) << error;
    EXPECT_EQ(back, rep);
    EXPECT_EQ(back.stalledCycles, 600u);
}

TEST(MachineReport, FromJsonRejectsForeignSchema)
{
    Json j = Json::object();
    j.set("schema", Json("something.else"));
    MachineReport out;
    std::string error;
    EXPECT_FALSE(machineReportFromJson(j, out, error));
}

TEST(MachineReport, FlushedReportedWithoutCommits)
{
    // Regression: a thread squashed out of every commit used to
    // vanish into flushedPerCommit == 0 with its flush traffic
    // hidden; the raw count must survive into the report.
    MachineSnapshot before = emptySnapshot(2, 0);
    MachineSnapshot after = emptySnapshot(2, 10000);
    after.stats.committed = {4000, 0};
    after.stats.fetched = {6000, 0};
    after.stats.flushed = {10, 900};

    MachineReport rep = buildReport(before, after, {"busy", "starved"});
    ASSERT_EQ(rep.threads.size(), 2u);
    EXPECT_EQ(rep.threads[1].label, "starved");
    EXPECT_EQ(rep.threads[1].flushed, 900u);
    EXPECT_DOUBLE_EQ(rep.threads[1].flushedPerCommit, 0.0)
        << "no commits: the ratio stays 0, the count does not";
    EXPECT_DOUBLE_EQ(rep.threads[0].flushedPerCommit, 10.0 / 4000.0);
}

TEST(MachineReport, IgnoresCountersBeyondMachineThreads)
{
    // Regression: capture() fills miss counters only for the
    // machine's contexts but the report used to scan kMaxThreads,
    // picking up stale garbage in the tail slots.
    MachineSnapshot before = emptySnapshot(2, 0);
    MachineSnapshot after = emptySnapshot(2, 10000);
    after.stats.committed = {4000, 3000};
    after.stats.fetched = {5000, 4000};
    // Garbage beyond numThreads that a full-width scan would report.
    after.stats.committed[3] = 7777;
    after.stats.fetched[3] = 8888;

    MachineReport rep = buildReport(before, after, {});
    EXPECT_EQ(rep.threads.size(), 2u);
    EXPECT_DOUBLE_EQ(rep.totalIpc, (4000.0 + 3000.0) / 10000.0)
        << "total IPC must not include out-of-range counters";
}

TEST(MachineReport, CaptureRecordsThreadCount)
{
    SmtCpu cpu = twoThreadCpu();
    MachineSnapshot s = MachineSnapshot::capture(cpu);
    EXPECT_EQ(s.numThreads, 2);
}

TEST(MachineReport, StalledCyclesCountedByCpu)
{
    SmtCpu cpu = twoThreadCpu();
    MachineSnapshot before = MachineSnapshot::capture(cpu);
    cpu.stallUntil(cpu.now() + 500);
    cpu.run(1000);
    MachineSnapshot after = MachineSnapshot::capture(cpu);
    MachineReport rep = buildReport(before, after, {});
    EXPECT_EQ(rep.stalledCycles, 500u);
}

// ---------------------------------------------------------------
// Hill-climbing measurement fixes, observed through the tracer.

HillConfig
tracedConfig()
{
    HillConfig hc;
    hc.epochSize = 16384;
    hc.sampleSingleIpc = false;
    hc.metric = PerfMetric::AvgIpc;
    return hc;
}

TEST(HillMeasurement, IpcUsesActualElapsedCycles)
{
    // Regression: per-epoch IPC used to divide by the nominal epoch
    // size although the software-cost stall shortens the executed
    // window; the trace must show the true denominator.
    SmtCpu cpu = twoThreadCpu();
    HillConfig hc = tracedConfig();
    hc.softwareCost = 4096; // a quarter of the epoch, unmissable
    HillClimbing hill(hc);
    EpochTracer tracer;
    hill.setEpochTracer(&tracer);
    hill.attach(cpu);
    for (int e = 0; e < 3; ++e) {
        runOneEpoch(cpu, hill, hc.epochSize);
        hill.epoch(cpu, e);
    }
    ASSERT_EQ(tracer.size(), 3u);
    // First epoch after attach: no stall charged yet.
    EXPECT_EQ(tracer.records()[0].elapsedCycles, hc.epochSize);
    // Every later epoch lost softwareCost cycles to the boundary
    // stall.
    for (std::size_t e = 1; e < 3; ++e)
        EXPECT_EQ(tracer.records()[e].elapsedCycles,
                  hc.epochSize - hc.softwareCost)
            << "epoch " << e;
    // And the IPCs are measured over that shorter window: with a
    // quarter of the epoch stalled, dividing the same commits by the
    // nominal size would understate IPC by exactly 25%.
    const EpochTraceRecord &r = tracer.records()[1];
    EXPECT_GT(r.ipc[0] + r.ipc[1], 0.0);
}

TEST(HillMeasurement, ElapsedConsistentAcrossEpochSizes)
{
    // Running with a *larger* actual epoch than cfg.epochSize used to
    // inflate nothing visibly but skewed IPC by 2x; the trace keeps
    // the denominators honest.
    SmtCpu cpu = twoThreadCpu();
    HillConfig hc = tracedConfig();
    hc.softwareCost = 0;
    HillClimbing hill(hc);
    EpochTracer tracer;
    hill.setEpochTracer(&tracer);
    hill.attach(cpu);
    Cycle actual = 2 * hc.epochSize;
    runOneEpoch(cpu, hill, actual);
    hill.epoch(cpu, 0);
    ASSERT_EQ(tracer.size(), 1u);
    EXPECT_EQ(tracer.records()[0].elapsedCycles, actual)
        << "measurement window must follow the machine, not the config";
}

TEST(HillBootstrap, SamplesEveryThreadBeforeLearning)
{
    // Regression: weighted-metric learners used to run their first
    // samplePeriod * T epochs on all-zero SingleIPC estimates, i.e.
    // on raw IPC. The bootstrap samples each thread solo immediately.
    SmtCpu cpu = twoThreadCpu();
    HillConfig hc = tracedConfig();
    hc.metric = PerfMetric::WeightedIpc;
    hc.sampleSingleIpc = true;
    hc.samplePeriod = 40;
    HillClimbing hill(hc);
    EpochTracer tracer;
    hill.setEpochTracer(&tracer);
    hill.attach(cpu);

    EXPECT_TRUE(hill.bootstrapping());
    EXPECT_TRUE(hill.samplingActive());
    EXPECT_FALSE(hill.estimatesReady());
    EXPECT_FALSE(cpu.partitioningEnabled())
        << "bootstrap epochs run one thread solo";

    Partition anchor_before = hill.anchor();
    // One solo epoch per thread completes the bootstrap.
    for (int e = 0; e < 2; ++e) {
        EXPECT_TRUE(hill.bootstrapping());
        runOneEpoch(cpu, hill, hc.epochSize);
        hill.epoch(cpu, e);
    }
    EXPECT_FALSE(hill.bootstrapping());
    EXPECT_TRUE(hill.estimatesReady());
    EXPECT_GT(hill.singleIpc()[0], 0.0);
    EXPECT_GT(hill.singleIpc()[1], 0.0);
    EXPECT_TRUE(cpu.partitioningEnabled())
        << "learning resumes partitioned after the bootstrap";
    EXPECT_TRUE(cpu.threadEnabled(0));
    EXPECT_TRUE(cpu.threadEnabled(1));
    EXPECT_EQ(hill.anchor(), anchor_before)
        << "no anchor moves before estimates exist";

    // The trace labels the bootstrap epochs as sampling epochs.
    ASSERT_EQ(tracer.size(), 2u);
    EXPECT_EQ(tracer.records()[0].samplingThread, 0);
    EXPECT_EQ(tracer.records()[1].samplingThread, 1);
    for (const EpochTraceRecord &r : tracer.records())
        EXPECT_FALSE(r.partitioned);
}

TEST(HillBootstrap, SkippedWhenMetricNeedsNoEstimates)
{
    SmtCpu cpu = twoThreadCpu();
    HillClimbing hill(tracedConfig()); // AvgIpc, no sampling
    hill.attach(cpu);
    EXPECT_FALSE(hill.bootstrapping());
    EXPECT_FALSE(hill.samplingActive());
    EXPECT_TRUE(cpu.partitioningEnabled());
}

TEST(HillBootstrap, EstimatesExposedInTrace)
{
    SmtCpu cpu = twoThreadCpu();
    HillConfig hc = tracedConfig();
    hc.metric = PerfMetric::WeightedIpc;
    hc.sampleSingleIpc = true;
    HillClimbing hill(hc);
    EpochTracer tracer;
    hill.setEpochTracer(&tracer);
    hill.attach(cpu);
    for (int e = 0; e < 3; ++e) {
        runOneEpoch(cpu, hill, hc.epochSize);
        hill.epoch(cpu, e);
    }
    // The first post-bootstrap record carries both estimates.
    const EpochTraceRecord &r = tracer.records()[2];
    EXPECT_GT(r.singleIpcEst[0], 0.0);
    EXPECT_GT(r.singleIpcEst[1], 0.0);
}

// ---------------------------------------------------------------
// Partition-move properties.

Partition
makeAnchor(const std::vector<int> &shares)
{
    Partition p;
    p.numThreads = static_cast<int>(shares.size());
    for (std::size_t i = 0; i < shares.size(); ++i)
        p.share[i] = shares[i];
    return p;
}

void
expectValidMove(const Partition &anchor, const Partition &moved,
                int min_share, const char *what)
{
    EXPECT_EQ(moved.numThreads, anchor.numThreads);
    EXPECT_EQ(moved.total(), anchor.total())
        << what << " must conserve the machine total";
    for (int i = 0; i < moved.numThreads; ++i)
        EXPECT_GE(moved.share[i], min_share)
            << what << " share " << i << " under the floor";
}

TEST(PartitionMoves, PreserveTotalAndFloorAcrossAnchorSpace)
{
    const int total = 256;
    const int min_share = 4;
    for (int nt : {2, 3, 4}) {
        // Walk a grid of anchors: thread 0 takes s, the remainder is
        // spread as evenly as integer division allows.
        for (int s = min_share; s <= total - (nt - 1) * min_share;
             s += 12) {
            std::vector<int> shares(nt, 0);
            shares[0] = s;
            int rest = total - s;
            for (int i = 1; i < nt; ++i) {
                int give = rest / (nt - i);
                shares[i] = give;
                rest -= give;
            }
            Partition anchor = makeAnchor(shares);
            ASSERT_EQ(anchor.total(), total);
            for (int delta : {1, 4, 19}) {
                for (int favored = 0; favored < nt; ++favored) {
                    expectValidMove(
                        anchor,
                        trialPartition(anchor, favored, delta, min_share),
                        min_share, "trialPartition");
                    expectValidMove(
                        anchor,
                        moveAnchor(anchor, favored, delta, min_share),
                        min_share, "moveAnchor");
                }
            }
        }
    }
}

TEST(PartitionMoves, ExtremeAnchorsStayValid)
{
    const int total = 256;
    const int min_share = 4;
    for (int nt : {2, 4}) {
        // One thread holds everything the floor allows; the donors
        // have zero headroom, so any delta must clamp, not go
        // negative.
        std::vector<int> shares(nt, min_share);
        shares[0] = total - (nt - 1) * min_share;
        Partition fat = makeAnchor(shares);
        for (int delta : {4, 64, 1000}) {
            for (int favored = 0; favored < nt; ++favored) {
                expectValidMove(fat,
                                trialPartition(fat, favored, delta,
                                               min_share),
                                min_share, "trialPartition@extreme");
                expectValidMove(fat,
                                moveAnchor(fat, favored, delta,
                                           min_share),
                                min_share, "moveAnchor@extreme");
            }
        }
        // Favoring the fat thread with a delta larger than every
        // donor's headroom combined must cap at the floor exactly.
        Partition t = trialPartition(fat, 0, 1000, min_share);
        for (int i = 1; i < nt; ++i)
            EXPECT_EQ(t.share[i], min_share);
        EXPECT_EQ(t.share[0], total - (nt - 1) * min_share);
    }
}

} // namespace
} // namespace smthill
