/**
 * @file
 * Unit tests for OFF-LINE exhaustive learning (Section 3.1).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/offline_exhaustive.hh"
#include "harness/runner.hh"
#include "policy/icount.hh"
#include "trace/program_profile.hh"

namespace smthill
{
namespace
{

ProgramProfile
profileWith(double p_cold, int dep, const char *name)
{
    ProfileParams pp;
    pp.name = name;
    pp.numBlocks = 12;
    pp.avgBlockLen = 8;
    pp.pLoadCold = p_cold;
    pp.meanDepDist = dep;
    pp.serialFrac = 0.1;
    pp.burstProb = p_cold > 0 ? 0.6 : 0.0;
    pp.burstMax = 6;
    return buildProfile(pp);
}

SmtCpu
testCpu()
{
    SmtConfig cfg;
    cfg.numThreads = 2;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(profileWith(0.08, 30, "mlp"), 0);
    gens.emplace_back(profileWith(0.0, 6, "ilp"), 1);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(80000);
    return cpu;
}

OfflineConfig
fastConfig()
{
    OfflineConfig oc;
    oc.epochSize = 8192;
    oc.stride = 32; // 7 trials per epoch, fast for tests
    oc.metric = PerfMetric::AvgIpc;
    return oc;
}

TEST(Offline, StepAdvancesExactlyOneEpoch)
{
    SmtCpu cpu = testCpu();
    Cycle before = cpu.now();
    OfflineExhaustive off(fastConfig());
    off.stepEpoch(cpu);
    EXPECT_EQ(cpu.now(), before + 8192);
}

TEST(Offline, BestTrialIsMaxOfCurve)
{
    SmtCpu cpu = testCpu();
    OfflineConfig oc = fastConfig();
    oc.keepCurves = true;
    OfflineExhaustive off(oc);
    OfflineEpoch rec = off.stepEpoch(cpu);
    ASSERT_EQ(rec.curve.size(), 7u);
    double max_metric = *std::max_element(rec.curve.begin(),
                                          rec.curve.end());
    EXPECT_DOUBLE_EQ(rec.metricValue, max_metric);
    // The recorded best share appears in the curve at the max.
    auto it = std::find(rec.curve.begin(), rec.curve.end(), max_metric);
    std::size_t idx = static_cast<std::size_t>(it - rec.curve.begin());
    EXPECT_EQ(rec.curveShares[idx], rec.best.share[0]);
}

TEST(Offline, ChosenEpochMatchesBestTrialPerformance)
{
    // The committed epoch re-runs the best partitioning from the same
    // checkpoint, so the committed IPCs must equal the best trial's.
    SmtCpu cpu = testCpu();
    OfflineConfig oc = fastConfig();
    oc.keepCurves = true;
    OfflineExhaustive off(oc);
    OfflineEpoch rec = off.stepEpoch(cpu);
    double m = evalMetric(oc.metric, rec.ipc, oc.singleIpc);
    EXPECT_DOUBLE_EQ(m, rec.metricValue);
}

TEST(Offline, NeverWorseThanEqualPartitionTrial)
{
    SmtCpu cpu = testCpu();
    const SmtCpu checkpoint = cpu;
    OfflineConfig oc = fastConfig();
    OfflineExhaustive off(oc);
    OfflineEpoch rec = off.stepEpoch(cpu);

    IpcSample equal_run = runFixedPartitionEpoch(
        checkpoint, Partition::equal(2, 256), oc.epochSize);
    double equal_metric = evalMetric(oc.metric, equal_run, oc.singleIpc);
    EXPECT_GE(rec.metricValue, equal_metric - 1e-12);
}

TEST(Offline, BeatsIcountOverARun)
{
    // The limit result in miniature: OFF-LINE end performance must
    // be at least ICOUNT's on the same machine and window.
    SmtCpu cpu = testCpu();
    const SmtCpu start = cpu;
    OfflineConfig oc = fastConfig();
    OfflineExhaustive off(oc);
    OfflineResult res = off.run(cpu, 6);

    SmtCpu icount_cpu = start;
    IcountPolicy icount;
    icount.attach(icount_cpu);
    double icount_sum = 0.0;
    for (int e = 0; e < 6; ++e) {
        IpcSample s = runOneEpoch(icount_cpu, icount, oc.epochSize);
        icount_sum += evalMetric(oc.metric, s, oc.singleIpc);
    }
    EXPECT_GE(res.meanMetric() * 6, icount_sum * 0.98)
        << "OFF-LINE should not lose to ICOUNT";
}

TEST(Offline, RunReturnsRequestedEpochs)
{
    SmtCpu cpu = testCpu();
    OfflineExhaustive off(fastConfig());
    OfflineResult res = off.run(cpu, 4);
    EXPECT_EQ(res.epochs.size(), 4u);
    EXPECT_GT(res.meanMetric(), 0.0);
}

TEST(Offline, RequiresTwoThreads)
{
    SmtConfig cfg;
    cfg.numThreads = 1;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(profileWith(0.0, 6, "solo"), 0);
    SmtCpu cpu(cfg, std::move(gens));
    OfflineExhaustive off(fastConfig());
    EXPECT_DEATH(off.stepEpoch(cpu), "2 hardware contexts");
}

TEST(Offline, FixedPartitionEpochDoesNotMutateCheckpoint)
{
    SmtCpu cpu = testCpu();
    auto committed = cpu.stats().committedTotal();
    Cycle now = cpu.now();
    runFixedPartitionEpoch(cpu, Partition::equal(2, 256), 4096);
    EXPECT_EQ(cpu.stats().committedTotal(), committed);
    EXPECT_EQ(cpu.now(), now);
}

TEST(Offline, AdvancedOutputContinuesFromTrial)
{
    SmtCpu cpu = testCpu();
    SmtCpu advanced = cpu; // placeholder value
    IpcSample s = runFixedPartitionEpoch(cpu, Partition::equal(2, 256),
                                         4096, &advanced);
    EXPECT_EQ(advanced.now(), cpu.now() + 4096);
    double ipc_from_stats =
        static_cast<double>(advanced.stats().committedTotal() -
                            cpu.stats().committedTotal()) /
        4096.0;
    EXPECT_NEAR(s.ipc[0] + s.ipc[1], ipc_from_stats, 1e-9);
}

} // namespace
} // namespace smthill
