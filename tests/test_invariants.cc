/**
 * @file
 * The invariant layer must have no silent checkers: every check is
 * fed deliberately corrupted state here and must fire, and clean
 * state from a real machine must pass.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "validate/checked_cpu.hh"
#include "validate/diff_fuzz.hh"
#include "validate/invariants.hh"

using namespace smthill;

namespace
{

/** Names of every violation the checker recorded. */
std::vector<std::string>
checksFired(const InvariantChecker &chk)
{
    std::vector<std::string> out;
    for (const InvariantViolation &v : chk.violations())
        out.push_back(v.check);
    return out;
}

bool
fired(const InvariantChecker &chk, const std::string &name)
{
    for (const InvariantViolation &v : chk.violations())
        if (v.check == name)
            return true;
    return false;
}

/** A small warmed machine, deterministic across tests. */
SmtCpu
smallMachine()
{
    FuzzCase c = makeFuzzCase(7);
    SmtCpu cpu(c.machine, c.workload.makeGenerators(1));
    cpu.run(20 * 1024);
    return cpu;
}

} // namespace

TEST(InvariantPartitionShape, AcceptsCleanPartition)
{
    InvariantChecker chk;
    chk.checkPartitionShape(Partition::equal(4, 256), 4, 256, 4);
    EXPECT_TRUE(chk.ok()) << chk.summary();
}

TEST(InvariantPartitionShape, FiresOnThreadMismatch)
{
    InvariantChecker chk;
    chk.checkPartitionShape(Partition::equal(3, 256), 4, 256);
    EXPECT_TRUE(fired(chk, "partition.threads")) << chk.summary();
}

TEST(InvariantPartitionShape, FiresOnNegativeShare)
{
    Partition p = Partition::equal(2, 256);
    p.share[1] = -4;
    p.share[0] = 260;
    InvariantChecker chk;
    chk.checkPartitionShape(p, 2, 256);
    EXPECT_TRUE(fired(chk, "partition.negative")) << chk.summary();
}

TEST(InvariantPartitionShape, FiresOnOverAllocation)
{
    Partition p = Partition::equal(2, 256);
    p.share[0] += 8;
    InvariantChecker chk;
    chk.checkPartitionShape(p, 2, 256);
    EXPECT_TRUE(fired(chk, "partition.total")) << chk.summary();
}

TEST(InvariantPartitionShape, StrictModeFiresOnUnderAllocation)
{
    Partition p = Partition::equal(2, 200); // sums to 200, not 256
    InvariantChecker lax;
    lax.checkPartitionShape(p, 2, 256);
    EXPECT_TRUE(lax.ok()) << "under-allocation is legal by default";

    InvariantChecker::Options o;
    o.strictPartitionTotal = true;
    InvariantChecker strict(o);
    strict.checkPartitionShape(p, 2, 256);
    EXPECT_TRUE(fired(strict, "partition.total")) << strict.summary();
}

TEST(InvariantPartitionShape, FiresOnFeasibleFloorBreach)
{
    Partition p = Partition::equal(2, 256);
    p.share[0] = 2;
    p.share[1] = 254;
    InvariantChecker chk;
    chk.checkPartitionShape(p, 2, 256, 4);
    EXPECT_TRUE(fired(chk, "partition.min_share")) << chk.summary();
}

TEST(InvariantPartitionShape, InfeasibleFloorDoesNotBind)
{
    // min_share 200 x 2 threads > 256: no partition can satisfy it,
    // so the floor check must not fire.
    InvariantChecker chk;
    chk.checkPartitionShape(Partition::equal(2, 256), 2, 256, 200);
    EXPECT_TRUE(chk.ok()) << chk.summary();
}

TEST(InvariantPartitionConserves, FiresOnTotalChange)
{
    Partition before = Partition::equal(2, 256);
    Partition after = before;
    after.share[0] -= 4; // lost units
    InvariantChecker chk;
    chk.checkPartitionConserves(before, after);
    EXPECT_TRUE(fired(chk, "partition.conservation")) << chk.summary();

    chk.clear();
    chk.checkPartitionConserves(before, before);
    EXPECT_TRUE(chk.ok());
}

TEST(InvariantOccupancy, FiresOnCapacityOverflowAndNegative)
{
    SmtConfig cfg;
    Occupancy occ;
    occ.rob[0] = cfg.robSize + 1; // over capacity
    occ.intIq[1] = -2;            // negative counter
    InvariantChecker chk;
    chk.checkOccupancyCapacity(occ, cfg);
    EXPECT_TRUE(fired(chk, "occupancy.capacity")) << chk.summary();
    EXPECT_TRUE(fired(chk, "occupancy.negative")) << chk.summary();
}

TEST(InvariantOccupancy, StrictLimitsFire)
{
    SmtConfig cfg;
    DerivedLimits limits = deriveLimits(Partition::equal(2, 256), cfg);
    Occupancy occ;
    occ.intRegs[0] = limits.intRegs[0] + 1;
    occ.intIq[1] = limits.intIq[1] + 1;
    occ.rob[0] = limits.rob[0] + 1;
    InvariantChecker chk;
    chk.checkOccupancyLimits(occ, limits, 2);
    EXPECT_TRUE(fired(chk, "occupancy.int_regs_limit"));
    EXPECT_TRUE(fired(chk, "occupancy.int_iq_limit"));
    EXPECT_TRUE(fired(chk, "occupancy.rob_limit"));
}

TEST(InvariantOccupancy, TransientAllowsDrainButNotGrowth)
{
    SmtConfig cfg;
    DerivedLimits limits = deriveLimits(Partition::equal(2, 256), cfg);
    int cap = limits.intRegs[0];

    // Above the cap but draining (prev was higher): legal right
    // after a partition shrink.
    Occupancy prev;
    prev.intRegs[0] = cap + 10;
    Occupancy cur;
    cur.intRegs[0] = cap + 5;
    InvariantChecker chk;
    chk.checkOccupancyTransient(cur, prev, limits, 2);
    EXPECT_TRUE(chk.ok()) << chk.summary();

    // Above the cap and growing: dispatch gated on the cap can never
    // do this.
    cur.intRegs[0] = cap + 12;
    chk.checkOccupancyTransient(cur, prev, limits, 2);
    EXPECT_TRUE(fired(chk, "occupancy.partition_limit"))
        << chk.summary();
}

TEST(InvariantFlow, FiresOnEachBrokenIdentity)
{
    SmtConfig cfg;
    CpuStats stats;

    stats.fetched[0] = 10;
    stats.committed[0] = 8;
    stats.flushed[0] = 5; // committed + flushed > fetched
    InvariantChecker chk;
    chk.checkFlowCounters(stats, cfg);
    EXPECT_TRUE(fired(chk, "flow.fetched")) << chk.summary();

    stats = CpuStats{};
    stats.fetched[0] =
        static_cast<std::uint64_t>(cfg.ifqSize + cfg.robSize) + 100;
    chk.clear();
    chk.checkFlowCounters(stats, cfg); // nothing ever retired
    EXPECT_TRUE(fired(chk, "flow.in_flight")) << chk.summary();

    stats = CpuStats{};
    stats.fetched[1] = 100;
    stats.committed[1] = 100;
    stats.branches[1] = 10;
    stats.mispredicts[1] = 11;
    chk.clear();
    chk.checkFlowCounters(stats, cfg);
    EXPECT_TRUE(fired(chk, "flow.mispredicts")) << chk.summary();

    stats = CpuStats{};
    stats.fetched[0] = 50;
    stats.committed[0] = 50;
    stats.branches[0] = 51;
    chk.clear();
    chk.checkFlowCounters(stats, cfg);
    EXPECT_TRUE(fired(chk, "flow.branches")) << chk.summary();

    stats = CpuStats{};
    stats.fetched[0] = 50;
    stats.committed[0] = 50;
    stats.loads[0] = 51;
    chk.clear();
    chk.checkFlowCounters(stats, cfg);
    EXPECT_TRUE(fired(chk, "flow.loads")) << chk.summary();
}

TEST(InvariantCache, CleanMachinePassesCorruptedSampleFires)
{
    SmtCpu cpu = smallMachine();
    InvariantChecker chk;
    chk.checkCacheCounters(cpu.memory());
    EXPECT_TRUE(chk.ok()) << chk.summary();

    CacheCounterSample s = CacheCounterSample::capture(cpu.memory());
    ASSERT_GT(s.dl1Misses, 0u) << "warmup produced no DL1 misses";

    CacheCounterSample bad = s;
    bad.dl1PerThread[0] += 1;
    chk.clear();
    chk.checkCacheCounters(bad);
    EXPECT_TRUE(fired(chk, "cache.dl1_attribution")) << chk.summary();

    bad = s;
    bad.l2PerThread[1] += 3;
    chk.clear();
    chk.checkCacheCounters(bad);
    EXPECT_TRUE(fired(chk, "cache.l2_attribution")) << chk.summary();

    bad = s;
    bad.ul2Hits += 2; // an L2 access no L1 miss produced
    chk.clear();
    chk.checkCacheCounters(bad);
    EXPECT_TRUE(fired(chk, "cache.level_reconcile")) << chk.summary();
}

TEST(InvariantEpochTrace, CleanRunPassesCorruptedRecordsFire)
{
    SmtCpu cpu = smallMachine();
    HillConfig hc;
    hc.epochSize = 2048;
    hc.delta = 4;
    hc.minShare = 2;
    HillClimbing hill(hc);
    EpochTracer tracer;
    hill.setEpochTracer(&tracer);
    runPolicyOn(std::move(cpu), hill, 5, hc.epochSize);
    ASSERT_FALSE(tracer.empty());

    InvariantChecker chk;
    chk.checkEpochTrace(hill, tracer);
    EXPECT_TRUE(chk.ok()) << chk.summary();

    // Stale anchor in the last record.
    EpochTracer bad;
    for (EpochTraceRecord r : tracer.records()) {
        r.anchor.share[0] += 1;
        bad.record(r);
    }
    chk.clear();
    chk.checkEpochTrace(hill, bad);
    EXPECT_TRUE(fired(chk, "trace.anchor")) << chk.summary();

    // SingleIPC estimates that disagree with the live learner.
    bad.clear();
    for (EpochTraceRecord r : tracer.records()) {
        r.singleIpcEst[0] += 0.5;
        bad.record(r);
    }
    chk.clear();
    chk.checkEpochTrace(hill, bad);
    EXPECT_TRUE(fired(chk, "trace.single_ipc")) << chk.summary();

    // Duplicated epoch id.
    bad.clear();
    for (EpochTraceRecord r : tracer.records()) {
        r.epochId = 3;
        bad.record(r);
    }
    chk.clear();
    chk.checkEpochTrace(hill, bad);
    EXPECT_TRUE(fired(chk, "trace.epoch_order")) << chk.summary();

    // Impossible measurement windows and IPCs.
    bad.clear();
    for (EpochTraceRecord r : tracer.records()) {
        r.elapsedCycles = 0;
        r.ipc[0] = std::nan("");
        bad.record(r);
    }
    chk.clear();
    chk.checkEpochTrace(hill, bad);
    EXPECT_TRUE(fired(chk, "trace.elapsed")) << chk.summary();
    EXPECT_TRUE(fired(chk, "trace.ipc")) << chk.summary();
}

TEST(InvariantChecked, CleanMachineStaysClean)
{
    InvariantChecker::Options o;
    o.strictPartitionTotal = true;
    CheckedCpu checked(smallMachine(), o, 1);
    checked.cpu().setPartition(
        Partition::equal(checked.cpu().numThreads(),
                         checked.cpu().config().intRegs));
    checked.run(4096);
    checked.checkNow();
    EXPECT_TRUE(checked.checker().ok()) << checked.checker().summary();
}

TEST(InvariantChecked, StrictTotalCatchesUnderAllocation)
{
    InvariantChecker::Options o;
    o.strictPartitionTotal = true;
    CheckedCpu checked(smallMachine(), o, 0);
    int regs = checked.cpu().config().intRegs;
    checked.cpu().setPartition(
        Partition::equal(checked.cpu().numThreads(), regs - 8));
    checked.checkNow();
    EXPECT_TRUE(fired(checked.checker(), "partition.total"))
        << checked.checker().summary();
}

TEST(InvariantChecked, FailFastPanics)
{
    InvariantChecker::Options o;
    o.strictPartitionTotal = true;
    o.failFast = true;
    CheckedCpu checked(smallMachine(), o, 0);
    int regs = checked.cpu().config().intRegs;
    checked.cpu().setPartition(
        Partition::equal(checked.cpu().numThreads(), regs - 8));
    EXPECT_DEATH(checked.checkNow(), "invariant violated");
}

TEST(InvariantChecker, RecordingCapStillCountsEverything)
{
    InvariantChecker::Options o;
    o.maxViolations = 2;
    InvariantChecker chk(o);
    Partition bad = Partition::equal(3, 90);
    bad.share[0] = -1; // negative + under-floor violations per call
    for (int i = 0; i < 5; ++i)
        chk.checkPartitionShape(bad, 3, 300, 10);
    EXPECT_EQ(chk.violations().size(), 2u);
    EXPECT_GT(chk.totalViolations(), 2u);
    EXPECT_FALSE(chk.ok());
    EXPECT_NE(chk.summary().find("more violations"), std::string::npos);

    chk.clear();
    EXPECT_TRUE(chk.ok());
    EXPECT_EQ(checksFired(chk).size(), 0u);
}
