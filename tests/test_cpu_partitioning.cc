/**
 * @file
 * Unit tests for partition enforcement, fetch-locking at partition
 * limits, and the FLUSH squash machinery (Section 3.2 mechanisms).
 */

#include <gtest/gtest.h>

#include "pipeline/cpu.hh"
#include "trace/program_profile.hh"

namespace smthill
{
namespace
{

ProgramProfile
profileWith(double p_cold, const char *name = "toy")
{
    ProfileParams pp;
    pp.name = name;
    pp.numBlocks = 12;
    pp.avgBlockLen = 8;
    pp.pLoadCold = p_cold;
    pp.meanDepDist = 16;
    pp.serialFrac = 0.1;
    return buildProfile(pp);
}

SmtCpu
makeCpu2(double cold0, double cold1)
{
    SmtConfig cfg;
    cfg.numThreads = 2;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(profileWith(cold0, "t0"), 0);
    gens.emplace_back(profileWith(cold1, "t1"), 1);
    return SmtCpu(cfg, std::move(gens));
}

TEST(Partitioning, OccupancyRespectsLimits)
{
    SmtCpu cpu = makeCpu2(0.2, 0.0);
    Partition p;
    p.numThreads = 2;
    p.share = {64, 192};
    cpu.setPartition(p);
    DerivedLimits lim = deriveLimits(p, cpu.config());
    for (int i = 0; i < 30000; ++i) {
        cpu.step();
        const Occupancy &o = cpu.occupancy();
        for (int t = 0; t < 2; ++t) {
            ASSERT_LE(o.intRegs[t], lim.intRegs[t]) << "thread " << t;
            ASSERT_LE(o.intIq[t], lim.intIq[t]) << "thread " << t;
            ASSERT_LE(o.rob[t], lim.rob[t]) << "thread " << t;
        }
    }
}

TEST(Partitioning, StarvedThreadStillProgresses)
{
    SmtCpu cpu = makeCpu2(0.0, 0.0);
    Partition p;
    p.numThreads = 2;
    p.share = {8, 248};
    cpu.setPartition(p);
    cpu.run(50000);
    EXPECT_GT(cpu.stats().committed[0], 1000u)
        << "even a tiny partition guarantees forward progress";
}

TEST(Partitioning, PartitionShiftsThroughput)
{
    // Giving nearly everything to thread 0 must raise its IPC and
    // lower thread 1's, relative to the reverse split.
    SmtCpu base = makeCpu2(0.08, 0.08);
    base.run(20000); // warm a little

    SmtCpu a = base;
    Partition pa;
    pa.numThreads = 2;
    pa.share = {224, 32};
    a.setPartition(pa);
    a.run(100000);

    SmtCpu b = base;
    Partition pb;
    pb.numThreads = 2;
    pb.share = {32, 224};
    b.setPartition(pb);
    b.run(100000);

    std::uint64_t a0 = a.stats().committed[0] - base.stats().committed[0];
    std::uint64_t a1 = a.stats().committed[1] - base.stats().committed[1];
    std::uint64_t b0 = b.stats().committed[0] - base.stats().committed[0];
    std::uint64_t b1 = b.stats().committed[1] - base.stats().committed[1];
    EXPECT_GT(a0, b0);
    EXPECT_GT(b1, a1);
}

TEST(Partitioning, ClearPartitionRestoresSharing)
{
    SmtCpu cpu = makeCpu2(0.0, 0.0);
    cpu.setPartition(Partition::equal(2, 64));
    EXPECT_TRUE(cpu.partitioningEnabled());
    cpu.clearPartition();
    EXPECT_FALSE(cpu.partitioningEnabled());
    cpu.run(20000);
    // Occupancy may now exceed what the old partition would allow.
    EXPECT_GT(cpu.stats().committedTotal(), 10000u);
}

TEST(Partitioning, SetPartitionRejectsOverflow)
{
    SmtCpu cpu = makeCpu2(0.0, 0.0);
    Partition p;
    p.numThreads = 2;
    p.share = {200, 200};
    EXPECT_DEATH(cpu.setPartition(p), "shares sum");
}

TEST(Partitioning, SetPartitionRejectsWrongThreadCount)
{
    SmtCpu cpu = makeCpu2(0.0, 0.0);
    Partition p = Partition::equal(3, 256);
    EXPECT_DEATH(cpu.setPartition(p), "thread-count mismatch");
}

TEST(Partitioning, LockCyclesAreCounted)
{
    SmtCpu cpu = makeCpu2(0.3, 0.0); // thread 0 clogs hard
    Partition p;
    p.numThreads = 2;
    p.share = {16, 240};
    cpu.setPartition(p);
    cpu.run(50000);
    EXPECT_GT(cpu.stats().partitionLockCycles[0], 100u);
}

TEST(Flush, SquashReleasesResources)
{
    SmtCpu cpu = makeCpu2(0.3, 0.0);
    // Run until thread 0 has a decent backend footprint.
    cpu.run(5000);
    const Occupancy &o = cpu.occupancy();
    int before_rob = o.rob[0];
    int flushed = cpu.flushThreadAfter(0, 0); // squash ~everything
    if (before_rob > 1) {
        EXPECT_GT(flushed, 0);
        EXPECT_LE(o.rob[0], before_rob);
    }
    // The machine must still be consistent and make progress.
    cpu.run(20000);
    EXPECT_GT(cpu.stats().committedTotal(), 3000u);
}

TEST(Flush, FlushedInstructionsAreRefetched)
{
    SmtCpu cpu = makeCpu2(0.1, 0.0);
    cpu.run(4000);
    auto committed_before = cpu.stats().committed[0];
    auto fetched_before = cpu.stats().fetched[0];
    int flushed = cpu.flushThreadAfter(0, committed_before + 2);
    cpu.run(4000);
    // The squashed instructions were re-fetched: total fetches exceed
    // what a straight-line run would need.
    EXPECT_GE(cpu.stats().fetched[0] - fetched_before,
              static_cast<std::uint64_t>(flushed));
    EXPECT_GT(cpu.stats().committed[0], committed_before);
}

TEST(Flush, ReplayedStreamMatchesUnflushedRun)
{
    // Flushing must not corrupt the architectural instruction stream:
    // committed counts evolve identically to a no-flush twin once the
    // pipeline refills (same generator stream replayed).
    SmtCpu a = makeCpu2(0.05, 0.05);
    SmtCpu b = a;
    a.run(3000);
    b.run(3000);
    b.flushThreadAfter(0, b.stats().committed[0] + 1);
    // Give the flushed machine time to refill and catch up: both must
    // keep committing; stream contents are identical by construction
    // (checked via determinism of the committed count trajectory
    // being monotone and close).
    a.run(30000);
    b.run(30000);
    std::uint64_t ca = a.stats().committed[0];
    std::uint64_t cb = b.stats().committed[0];
    EXPECT_NEAR(static_cast<double>(ca), static_cast<double>(cb),
                static_cast<double>(ca) * 0.05 + 200);
}

TEST(Flush, FlushAfterFutureSeqIsNoop)
{
    SmtCpu cpu = makeCpu2(0.0, 0.0);
    cpu.run(2000);
    int flushed = cpu.flushThreadAfter(0, 1'000'000'000);
    EXPECT_EQ(flushed, 0);
}

TEST(Flush, FlushCountsInStats)
{
    SmtCpu cpu = makeCpu2(0.2, 0.0);
    cpu.run(5000);
    auto before = cpu.stats().flushed[0];
    int n = cpu.flushThreadAfter(0, cpu.stats().committed[0] + 1);
    EXPECT_EQ(cpu.stats().flushed[0] - before,
              static_cast<std::uint64_t>(n));
}

TEST(Flush, CheckpointAfterFlushReplays)
{
    SmtCpu cpu = makeCpu2(0.15, 0.0);
    cpu.run(6000);
    cpu.flushThreadAfter(0, cpu.stats().committed[0] + 4);
    SmtCpu copy = cpu;
    cpu.run(20000);
    copy.run(20000);
    EXPECT_EQ(cpu.stats().committed[0], copy.stats().committed[0]);
    EXPECT_EQ(cpu.stats().committed[1], copy.stats().committed[1]);
}

TEST(OutstandingMisses, TrackedAndRetired)
{
    SmtCpu cpu = makeCpu2(0.4, 0.0);
    cpu.run(3000);
    // With a 40% cold-miss load mix there should regularly be misses
    // in flight for thread 0 and none fabricated for thread 1.
    int seen_t0 = 0;
    for (int i = 0; i < 2000; ++i) {
        cpu.step();
        seen_t0 += cpu.dl1MissesInFlight(0) > 0;
        for (const OutstandingMiss &m : cpu.outstandingMisses(0)) {
            ASSERT_LE(m.issuedAt, cpu.now());
            ASSERT_GT(m.completesAt, m.issuedAt);
        }
    }
    EXPECT_GT(seen_t0, 500);
}

TEST(OutstandingMisses, ClearEventually)
{
    SmtCpu cpu = makeCpu2(0.05, 0.0);
    cpu.run(5000);
    cpu.setFetchLocked(0, true);
    cpu.setFetchLocked(1, true);
    cpu.run(3000); // all loads must complete
    EXPECT_EQ(cpu.dl1MissesInFlight(0), 0);
    EXPECT_EQ(cpu.dl1MissesInFlight(1), 0);
}

TEST(FrontEndCount, TracksIfqAndIqs)
{
    SmtCpu cpu = makeCpu2(0.0, 0.0);
    cpu.run(1000);
    const Occupancy &o = cpu.occupancy();
    EXPECT_EQ(cpu.frontEndCount(0), o.ifq[0] + o.intIq[0] + o.fpIq[0]);
}

} // namespace
} // namespace smthill
