/**
 * @file
 * Checkpoint/restore equivalence: SmtCpu::restoreFrom into a warm
 * machine must replay bit-identically to a fresh value copy of the
 * same checkpoint, across stats, occupancy, memory state, and the
 * cached occupancy totals — including when the target machine is
 * differently shaped or has advanced far past the checkpoint. The
 * MachineArena reuse path (the OFF-LINE/RAND-HILL trial sweeps) gets
 * the same treatment across multiple rounds.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/machine_arena.hh"
#include "core/offline_exhaustive.hh"
#include "harness/runner.hh"
#include "pipeline/cpu.hh"
#include "policy/bandit.hh"
#include "policy/rl_alloc.hh"
#include "trace/spec_profiles.hh"
#include "validate/invariants.hh"

namespace smthill
{
namespace
{

SmtCpu
makeMachine(const std::vector<const char *> &benches)
{
    SmtConfig cfg;
    cfg.numThreads = static_cast<int>(benches.size());
    std::vector<StreamGenerator> gens;
    for (std::size_t i = 0; i < benches.size(); ++i)
        gens.emplace_back(specProfile(benches[i]), i);
    return SmtCpu(cfg, std::move(gens));
}

/** Every externally visible counter the two paths must agree on. */
void
expectMachinesEqual(const SmtCpu &a, const SmtCpu &b)
{
    ASSERT_EQ(a.numThreads(), b.numThreads());
    EXPECT_EQ(a.now(), b.now());
    for (int i = 0; i < a.numThreads(); ++i) {
        EXPECT_EQ(a.stats().committed[i], b.stats().committed[i])
            << "thread " << i;
        EXPECT_EQ(a.stats().fetched[i], b.stats().fetched[i])
            << "thread " << i;
        EXPECT_EQ(a.stats().flushed[i], b.stats().flushed[i])
            << "thread " << i;
        EXPECT_EQ(a.stats().mispredicts[i], b.stats().mispredicts[i])
            << "thread " << i;
        EXPECT_EQ(a.stats().loads[i], b.stats().loads[i])
            << "thread " << i;
    }
    EXPECT_EQ(a.memory().dl1().misses(), b.memory().dl1().misses());
    EXPECT_EQ(a.memory().ul2().misses(), b.memory().ul2().misses());
    EXPECT_EQ(OccupancyTotals::of(a.occupancy()),
              OccupancyTotals::of(b.occupancy()));
    EXPECT_EQ(a.occupancyTotals(), b.occupancyTotals());
}

TEST(CheckpointRestore, RoundTripMatchesValueCopy)
{
    SmtCpu cpu = makeMachine({"art", "mcf"});
    cpu.run(50000);
    const SmtCpu checkpoint = cpu;

    // Reference path: a fresh value copy.
    SmtCpu viaCopy = checkpoint;
    viaCopy.run(30000);

    // Restore path: a machine that has advanced well past the
    // checkpoint, pulled back by restoreFrom.
    SmtCpu warm = checkpoint;
    warm.run(40000);
    warm.restoreFrom(checkpoint);
    expectMachinesEqual(warm, checkpoint);
    warm.run(30000);

    expectMachinesEqual(viaCopy, warm);
}

TEST(CheckpointRestore, RestoreIntoDifferentlyShapedMachine)
{
    SmtCpu cpu = makeMachine({"art", "mcf"});
    cpu.run(30000);
    const SmtCpu checkpoint = cpu;

    SmtCpu reference = checkpoint;
    reference.run(20000);

    // A 4-thread machine with different profiles: restoreFrom is a
    // full overwrite, so the shape mismatch must not matter.
    SmtCpu other = makeMachine({"gcc", "bzip2", "fma3d", "mesa"});
    other.run(10000);
    other.restoreFrom(checkpoint);
    ASSERT_EQ(other.numThreads(), 2);
    other.run(20000);

    expectMachinesEqual(reference, other);
}

TEST(CheckpointRestore, RestorePreservesPartitionReplay)
{
    SmtCpu cpu = makeMachine({"art", "mcf"});
    cpu.run(30000);
    const SmtCpu checkpoint = cpu;

    Partition p;
    p.numThreads = 2;
    p.share[0] = 96;
    p.share[1] = cpu.config().intRegs - 96;

    SmtCpu viaCopy = checkpoint;
    IpcSample a = runTrialEpoch(viaCopy, p, 16 * 1024);

    SmtCpu warm = checkpoint;
    warm.run(25000); // diverge, then pull back
    warm.restoreFrom(checkpoint);
    IpcSample b = runTrialEpoch(warm, p, 16 * 1024);

    for (int i = 0; i < 2; ++i)
        EXPECT_EQ(a.ipc[i], b.ipc[i]) << "thread " << i;
    expectMachinesEqual(viaCopy, warm);
}

TEST(CheckpointRestore, ArenaReuseStaysBitIdenticalAcrossRounds)
{
    SmtCpu cpu = makeMachine({"art", "mcf"});
    cpu.run(50000);
    const SmtCpu checkpoint = cpu;

    Partition p = Partition::equal(2, cpu.config().intRegs);

    SmtCpu reference = checkpoint;
    IpcSample want = runTrialEpoch(reference, p, 8 * 1024);

    MachineArena arena(2);
    EXPECT_EQ(arena.workers(), 2);
    for (int round = 0; round < 3; ++round) {
        for (int w = 0; w < arena.workers(); ++w) {
            SmtCpu &trial = arena.acquire(w, checkpoint);
            IpcSample got = runTrialEpoch(trial, p, 8 * 1024);
            for (int i = 0; i < 2; ++i) {
                EXPECT_EQ(want.ipc[i], got.ipc[i])
                    << "round " << round << " worker " << w
                    << " thread " << i;
            }
            expectMachinesEqual(reference, trial);
        }
    }
}

/**
 * Clone determinism for the new learners: a clone() taken before
 * attach carries the same config and Rng stream position, so running
 * original and clone from value copies of one checkpoint — and from
 * an arena-restored machine — must be bit-identical in every epoch
 * record and machine end state.
 */
TEST(CheckpointRestore, NewLearnerClonesReplayBitIdentically)
{
    SmtCpu cpu = makeMachine({"art", "mcf"});
    cpu.run(50000);
    const SmtCpu checkpoint = cpu;
    const Cycle epoch_size = 8 * 1024;

    std::vector<std::unique_ptr<ResourcePolicy>> learners;
    BanditConfig ucb;
    ucb.epochSize = epoch_size;
    ucb.seed = 9;
    learners.push_back(std::make_unique<BanditAllocator>(ucb));
    BanditConfig exp3 = ucb;
    exp3.algo = BanditAlgo::Exp3;
    learners.push_back(std::make_unique<BanditAllocator>(exp3));
    RlConfig rlc;
    rlc.epochSize = epoch_size;
    rlc.epsilon = 0.3;
    rlc.seed = 9;
    learners.push_back(std::make_unique<RlAllocator>(rlc));

    MachineArena arena(1);
    for (auto &p : learners) {
        auto q = p->clone();
        RunResult a = runPolicyOn(checkpoint, *p, 4, epoch_size);

        SmtCpu &warm = arena.acquire(0, checkpoint);
        // runPolicyOn copies its machine argument, so the arena
        // machine doubles as the restored-path starting point.
        RunResult b = runPolicyOn(warm, *q, 4, epoch_size);

        ASSERT_EQ(a.epochs.size(), b.epochs.size()) << p->name();
        for (std::size_t e = 0; e < a.epochs.size(); ++e) {
            EXPECT_EQ(a.epochs[e].partition, b.epochs[e].partition)
                << p->name() << " epoch " << e;
            for (int t = 0; t < a.epochs[e].ipc.numThreads; ++t)
                EXPECT_EQ(a.epochs[e].ipc.ipc[t],
                          b.epochs[e].ipc.ipc[t])
                    << p->name() << " epoch " << e << " thread " << t;
        }
        EXPECT_EQ(a.finalSnapshot.cycle, b.finalSnapshot.cycle)
            << p->name();
        for (int t = 0; t < a.finalSnapshot.numThreads; ++t)
            EXPECT_EQ(a.finalSnapshot.stats.committed[t],
                      b.finalSnapshot.stats.committed[t])
                << p->name() << " thread " << t;
    }
}

TEST(CheckpointRestore, InvariantsHoldAfterRestore)
{
    SmtCpu cpu = makeMachine({"art", "mcf", "gcc", "bzip2"});
    cpu.run(40000);
    const SmtCpu checkpoint = cpu;

    SmtCpu warm = checkpoint;
    warm.run(12345); // land mid-flight, queues populated
    warm.restoreFrom(checkpoint);
    InvariantChecker chk;
    chk.checkCpu(warm);
    warm.run(7777);
    chk.checkCpu(warm);
    EXPECT_TRUE(chk.ok()) << chk.summary();
    EXPECT_EQ(OccupancyTotals::of(warm.occupancy()),
              warm.occupancyTotals());
}

} // namespace
} // namespace smthill
