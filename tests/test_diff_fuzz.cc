/**
 * @file
 * The fuzz harness itself: seed determinism, case diversity, clean
 * seeds passing end to end, the minimizer's fixed point on passing
 * cases, and a regression pinning the trace round-trip bug the fuzzer
 * surfaced (stale trial partitions recorded for solo-sampling epochs).
 */

#include <set>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "harness/runner.hh"
#include "validate/diff_fuzz.hh"

using namespace smthill;

TEST(FuzzCaseGen, SameSeedSameCase)
{
    FuzzCase a = makeFuzzCase(42);
    FuzzCase b = makeFuzzCase(42);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_EQ(a.machine.intRegs, b.machine.intRegs);
    EXPECT_EQ(a.machine.robSize, b.machine.robSize);
    EXPECT_EQ(a.workload.name, b.workload.name);
    EXPECT_EQ(a.hill.epochSize, b.hill.epochSize);
    EXPECT_EQ(a.policyChoice, b.policyChoice);
}

TEST(FuzzCaseGen, SeedsCoverDistinctShapes)
{
    std::set<std::string> descriptions;
    std::set<int> policies;
    std::set<int> threads;
    for (std::uint64_t s = 1; s <= 16; ++s) {
        FuzzCase c = makeFuzzCase(s);
        descriptions.insert(c.str());
        policies.insert(c.policyChoice);
        threads.insert(c.workload.numThreads());
        EXPECT_GE(c.machine.numThreads, 2);
        EXPECT_GT(c.epochs, 0);
        EXPECT_GT(c.warmup, 0u);
    }
    EXPECT_EQ(descriptions.size(), 16u) << "seeds collapsed";
    EXPECT_GT(policies.size(), 1u) << "policy choice never varies";
    EXPECT_GT(threads.size(), 1u) << "thread count never varies";
}

TEST(FuzzRun, FirstSeedsPassAllStages)
{
    FuzzSummary sum = runFuzzSeeds(1, 3);
    EXPECT_EQ(sum.casesRun, 3);
    for (const FuzzResult &r : sum.failures)
        ADD_FAILURE() << "seed " << r.seed << ":\n" << r.summary();
}

TEST(FuzzMinimize, PassingCaseIsItsOwnFixedPoint)
{
    FuzzCase c = makeFuzzCase(1);
    FuzzCase m = minimizeFuzzCase(c, 4);
    EXPECT_EQ(m.str(), c.str())
        << "minimizer shrank a case that never failed";
}

// Regression: traceEpoch used to store the stale enforced partition in
// rec.trial for solo-sampling epochs (partitioned == false), while the
// JSON export writes `trial: null` for them — so any run containing a
// sampling epoch failed the fromJson round trip. Force sampling every
// epoch and require the round trip to be exact.
TEST(FuzzRegression, TraceRoundTripWithSamplingEpochs)
{
    FuzzCase c = makeFuzzCase(1);
    SmtCpu cpu(c.machine, c.workload.makeGenerators(1));
    cpu.run(16 * 1024);

    HillConfig hc = c.hill;
    hc.samplePeriod = 1; // a solo-sampling epoch in every round
    hc.sampleSingleIpc = true;
    HillClimbing hill(hc);
    EpochTracer tracer;
    hill.setEpochTracer(&tracer);
    runPolicyOn(std::move(cpu), hill, 8, hc.epochSize);
    ASSERT_FALSE(tracer.empty());

    bool saw_sampling_epoch = false;
    for (const EpochTraceRecord &r : tracer.records())
        saw_sampling_epoch |= !r.partitioned;
    ASSERT_TRUE(saw_sampling_epoch)
        << "samplePeriod=1 produced no solo epochs; regression "
           "coverage lost";

    std::string err;
    Json parsed;
    ASSERT_TRUE(
        Json::parse(tracer.toJson(hc.metric).dump(), parsed, err))
        << err;
    std::vector<EpochTraceRecord> back;
    ASSERT_TRUE(EpochTracer::fromJson(parsed, back, err)) << err;
    EXPECT_EQ(back, tracer.records())
        << "epoch trace does not round-trip through JSON";
}

// Regression: on nominally phase-free streams, cold-start BBV noise
// mints phantom phases whose occurrences each last exactly one epoch.
// The RLE Markov predictor trained on that churn forecast transitions
// between them, and PHASE-HILL jumped its anchor to a round-stale
// learned partitioning, drifting off HILL's trajectory (stage F,
// fuzz seeds 69/90/121 of the PR-4 deep sweep). The phase-stability
// reuse gate (average run length >= 2 epochs for both ends of the
// predicted transition) must keep all three seeds bit-identical.
TEST(FuzzRegression, PhaseFreeSeeds69_90_121Identical)
{
    for (std::uint64_t seed : {69ull, 90ull, 121ull}) {
        FuzzResult r = runFuzzCase(makeFuzzCase(seed));
        EXPECT_TRUE(r.passed())
            << "seed " << seed << ":\n" << r.summary();
    }
}
