/**
 * @file
 * Property-based tests: machine invariants checked across parameter
 * sweeps (thread counts, partition splits, workload classes, stream
 * seeds) using parameterized gtest suites.
 */

#include <gtest/gtest.h>

#include "core/partitioning.hh"
#include "pipeline/cpu.hh"
#include "trace/program_profile.hh"
#include "trace/spec_profiles.hh"

namespace smthill
{
namespace
{

ProgramProfile
sweepProfile(int variant)
{
    ProfileParams pp;
    pp.name = "sweep" + std::to_string(variant);
    pp.seed = 1000 + variant * 7;
    pp.numBlocks = 10 + variant * 3;
    pp.avgBlockLen = 6 + variant;
    pp.pLoadCold = 0.05 * (variant % 3);
    pp.serialFrac = 0.1 + 0.1 * (variant % 4);
    pp.burstProb = variant % 2 ? 0.5 : 0.0;
    pp.burstMax = 4;
    return buildProfile(pp);
}

/**
 * Property: for any thread count and any legal partition, the
 * pipeline never violates occupancy limits, never deadlocks, and all
 * enabled threads make forward progress.
 */
class PipelineInvariants
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(PipelineInvariants, HoldsUnderSweep)
{
    auto [threads, share_variant] = GetParam();
    SmtConfig cfg;
    cfg.numThreads = threads;
    std::vector<StreamGenerator> gens;
    for (int i = 0; i < threads; ++i)
        gens.emplace_back(sweepProfile(i), i);
    SmtCpu cpu(cfg, std::move(gens));

    // Build an intentionally skewed partition.
    Partition p = Partition::equal(threads, cfg.intRegs);
    for (int step = 0; step < share_variant * 8; ++step)
        p = moveAnchor(p, step % threads, 4, 4);
    cpu.setPartition(p);
    DerivedLimits lim = deriveLimits(p, cfg);

    for (int i = 0; i < 30000; ++i) {
        cpu.step();
        const Occupancy &o = cpu.occupancy();
        ASSERT_LE(o.totalRob(), cfg.robSize);
        ASSERT_LE(o.totalIntRegs(), cfg.intRegs);
        ASSERT_LE(o.totalIfq(), cfg.ifqSize);
        for (int t = 0; t < threads; ++t) {
            ASSERT_LE(o.intRegs[t], lim.intRegs[t]);
            ASSERT_LE(o.intIq[t], lim.intIq[t]);
            ASSERT_LE(o.rob[t], lim.rob[t]);
        }
    }
    for (int t = 0; t < threads; ++t)
        EXPECT_GT(cpu.stats().committed[t], 200u)
            << "thread " << t << " with share " << p.share[t];
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineInvariants,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6),
                       ::testing::Values(0, 1, 3)));

/**
 * Property: checkpoint-copy then replay is bit-identical for every
 * benchmark class (ILP/MEM, Int/FP, phased or not).
 */
class CheckpointReplay : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CheckpointReplay, IdenticalForBenchmark)
{
    SmtConfig cfg;
    cfg.numThreads = 2;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(specProfile(GetParam()), 0);
    gens.emplace_back(specProfile("gzip"), 1);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(30000);
    SmtCpu copy = cpu;
    cpu.run(30000);
    copy.run(30000);
    EXPECT_EQ(cpu.stats().committed[0], copy.stats().committed[0]);
    EXPECT_EQ(cpu.stats().committed[1], copy.stats().committed[1]);
    EXPECT_EQ(cpu.stats().mispredicts[0], copy.stats().mispredicts[0]);
    EXPECT_EQ(cpu.memory().ul2().misses(), copy.memory().ul2().misses());
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, CheckpointReplay,
                         ::testing::Values("bzip2", "gap", "mcf", "art",
                                           "swim", "gcc", "wupwise",
                                           "equake", "vortex", "ammp"));

/**
 * Property: a thread's solo throughput is monotonically
 * non-decreasing (within tolerance) in its resource share.
 */
class ShareMonotonicity : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ShareMonotonicity, MoreWindowNeverMuchWorse)
{
    SmtConfig cfg;
    cfg.numThreads = 1;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(specProfile(GetParam()), 0);
    SmtCpu base(cfg, std::move(gens));
    base.run(200000); // warm

    double prev_ipc = 0.0;
    for (int share : {32, 96, 160, 256}) {
        SmtCpu cpu = base;
        Partition p;
        p.numThreads = 1;
        p.share[0] = share;
        cpu.setPartition(p);
        auto before = cpu.stats().committed[0];
        cpu.run(100000);
        double ipc =
            static_cast<double>(cpu.stats().committed[0] - before) /
            100000.0;
        EXPECT_GT(ipc, prev_ipc * 0.93)
            << GetParam() << " share " << share;
        prev_ipc = std::max(prev_ipc, ipc);
    }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, ShareMonotonicity,
                         ::testing::Values("art", "swim", "gap", "mcf",
                                           "bzip2", "twolf"));

/**
 * Property: generator streams are reproducible across seeds and the
 * dependence structure never references the future.
 */
class StreamSanity : public ::testing::TestWithParam<const char *>
{
};

TEST_P(StreamSanity, WellFormedStream)
{
    StreamGenerator g(specProfile(GetParam()), 3);
    const auto &prof = g.profile();
    for (std::uint64_t i = 0; i < 30000; ++i) {
        SynthInst inst = g.next();
        ASSERT_LT(inst.blockId, prof.blocks.size());
        ASSERT_GE(inst.srcDist[0], 0);
        ASSERT_LE(static_cast<std::uint64_t>(inst.srcDist[0]), i);
        if (isMemOp(inst.op)) {
            ASSERT_NE(inst.effAddr, 0u);
        }
        if (inst.isBranch()) {
            ASSERT_NE(inst.target, 0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, StreamSanity,
                         ::testing::Values("bzip2", "perlbmk", "eon",
                                           "vortex", "gzip", "parser",
                                           "gap", "crafty", "gcc", "apsi",
                                           "fma3d", "wupwise", "mesa",
                                           "equake", "vpr", "mcf", "twolf",
                                           "art", "lucas", "ammp", "swim",
                                           "applu"));

/**
 * Property: flushing at an arbitrary point never breaks forward
 * progress or resource accounting.
 */
class FlushAnywhere : public ::testing::TestWithParam<int>
{
};

TEST_P(FlushAnywhere, MachineSurvives)
{
    SmtConfig cfg;
    cfg.numThreads = 2;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(specProfile("art"), 0);
    gens.emplace_back(specProfile("gzip"), 1);
    SmtCpu cpu(cfg, std::move(gens));

    int when = GetParam();
    cpu.run(when);
    auto committed = cpu.stats().committed[0];
    cpu.flushThreadAfter(0, committed + static_cast<InstSeq>(when % 7));
    cpu.run(40000);
    const Occupancy &o = cpu.occupancy();
    EXPECT_GE(o.totalRob(), 0);
    EXPECT_LE(o.totalRob(), cfg.robSize);
    EXPECT_GT(cpu.stats().committed[0], committed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FlushAnywhere,
                         ::testing::Values(1, 17, 333, 1024, 5000, 20000));

} // namespace
} // namespace smthill
