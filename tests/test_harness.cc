/**
 * @file
 * Unit tests for the experiment runner, solo-IPC measurement, the
 * synchronized comparison machinery, and the table printer.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/runner.hh"
#include "harness/sync_runner.hh"
#include "harness/table.hh"
#include "policy/dcra.hh"
#include "policy/icount.hh"

namespace smthill
{
namespace
{

RunConfig
fastConfig()
{
    RunConfig rc;
    rc.epochSize = 8192;
    rc.epochs = 4;
    rc.warmupCycles = 32768;
    return rc;
}

TEST(Runner, MakeCpuSetsThreadCountAndWarms)
{
    RunConfig rc = fastConfig();
    SmtCpu cpu = makeCpu(workloadByName("art-mcf"), rc);
    EXPECT_EQ(cpu.numThreads(), 2);
    EXPECT_EQ(cpu.now(), rc.warmupCycles);
    EXPECT_GT(cpu.stats().committedTotal(), 0u);
}

TEST(Runner, RunPolicyProducesEpochRecords)
{
    RunConfig rc = fastConfig();
    IcountPolicy p;
    RunResult res = runPolicy(workloadByName("apsi-eon"), p, rc);
    ASSERT_EQ(res.epochs.size(), 4u);
    for (const auto &e : res.epochs) {
        EXPECT_FALSE(e.partitioned) << "ICOUNT runs unpartitioned";
        EXPECT_GT(e.ipc.ipc[0] + e.ipc.ipc[1], 0.0);
    }
    EXPECT_GT(res.overallIpc.ipc[0], 0.0);
}

TEST(Runner, OverallIpcConsistentWithEpochs)
{
    RunConfig rc = fastConfig();
    IcountPolicy p;
    RunResult res = runPolicy(workloadByName("apsi-eon"), p, rc);
    double epoch_mean = 0.0;
    for (const auto &e : res.epochs)
        epoch_mean += e.ipc.ipc[0];
    epoch_mean /= static_cast<double>(res.epochs.size());
    // ICOUNT neither stalls nor samples, so the end-to-end IPC is the
    // mean of the per-epoch IPCs.
    EXPECT_NEAR(res.overallIpc.ipc[0], epoch_mean, 1e-9);
}

TEST(Runner, RunOneEpochAdvancesExactly)
{
    RunConfig rc = fastConfig();
    SmtCpu cpu = makeCpu(workloadByName("art-mcf"), rc);
    IcountPolicy p;
    p.attach(cpu);
    Cycle before = cpu.now();
    runOneEpoch(cpu, p, 4096);
    EXPECT_EQ(cpu.now(), before + 4096);
}

TEST(Runner, SoloIpcCachedAndPositive)
{
    RunConfig rc = fastConfig();
    double a = soloIpc("bzip2", rc, 16384);
    double b = soloIpc("bzip2", rc, 16384);
    EXPECT_GT(a, 0.0);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(Runner, SoloIpcsCoverWorkload)
{
    RunConfig rc = fastConfig();
    auto solo = soloIpcs(workloadByName("art-mcf"), rc, 16384);
    EXPECT_GT(solo[0], 0.0);
    EXPECT_GT(solo[1], 0.0);
    EXPECT_DOUBLE_EQ(solo[2], 0.0);
}

TEST(Runner, MetricUsesOverallIpc)
{
    RunConfig rc = fastConfig();
    IcountPolicy p;
    RunResult res = runPolicy(workloadByName("apsi-eon"), p, rc);
    std::array<double, kMaxThreads> solo{};
    solo[0] = res.overallIpc.ipc[0];
    solo[1] = res.overallIpc.ipc[1];
    EXPECT_NEAR(res.metric(PerfMetric::WeightedIpc, solo), 1.0, 1e-9);
}

TEST(Runner, EnvScaleParsesAndDefaults)
{
    ::unsetenv("SMTHILL_TEST_KNOB");
    EXPECT_EQ(envScale("SMTHILL_TEST_KNOB", 7u), 7u);
    ::setenv("SMTHILL_TEST_KNOB", "123", 1);
    EXPECT_EQ(envScale("SMTHILL_TEST_KNOB", 7u), 123u);
    ::setenv("SMTHILL_TEST_KNOB", "bogus", 1);
    EXPECT_EQ(envScale("SMTHILL_TEST_KNOB", 7u), 7u);
    ::unsetenv("SMTHILL_TEST_KNOB");
}

TEST(SyncRunner, ComparesPoliciesFromSharedCheckpoints)
{
    RunConfig rc = fastConfig();
    SmtCpu cpu = makeCpu(workloadByName("art-mcf"), rc);

    OfflineConfig oc;
    oc.epochSize = 8192;
    oc.stride = 64;
    oc.metric = PerfMetric::AvgIpc;
    OfflineExhaustive off(oc);

    IcountPolicy icount;
    DcraPolicy dcra;
    std::vector<ResourcePolicy *> policies{&icount, &dcra};
    SyncResult res = syncCompareOffline(cpu, off, policies, 3);

    ASSERT_EQ(res.offline.metric.size(), 3u);
    ASSERT_EQ(res.others.size(), 2u);
    ASSERT_EQ(res.others[0].metric.size(), 3u);
    EXPECT_EQ(res.others[0].name, "ICOUNT");
    EXPECT_EQ(res.others[1].name, "DCRA");

    // OFF-LINE picks the best fixed partition per epoch; it must beat
    // or match ICOUNT in virtually every epoch (Section 3.3).
    EXPECT_GE(res.offlineWinRate(0), 2.0 / 3.0);
}

TEST(SyncRunner, TraceHillVsOfflineProducesCurves)
{
    RunConfig rc = fastConfig();
    SmtCpu cpu = makeCpu(workloadByName("art-mcf"), rc);
    HillConfig hc;
    hc.epochSize = 8192;
    hc.metric = PerfMetric::AvgIpc;
    hc.sampleSingleIpc = false;
    HillClimbing hill(hc);

    OfflineConfig oc;
    oc.stride = 64;
    oc.metric = PerfMetric::AvgIpc;

    auto trace = traceHillVsOffline(cpu, hill, oc, 3);
    ASSERT_EQ(trace.size(), 3u);
    for (const auto &e : trace) {
        EXPECT_GT(e.curve.size(), 0u);
        EXPECT_GE(e.hillShare0, 0);
        EXPECT_GT(e.offlineMetric, 0.0);
        // Hill can never beat the per-epoch exhaustive best by more
        // than noise.
        EXPECT_LE(e.hillMetric, e.offlineMetric * 1.10);
    }
}

TEST(Table, AlignsAndCounts)
{
    Table t({"name", "value"});
    t.beginRow();
    t.cell("alpha");
    t.cell(1.5, 2);
    t.beginRow();
    t.cell("b");
    t.cell(std::int64_t{42});
    EXPECT_EQ(t.numRows(), 2u);
    t.print();    // must not crash
    t.printCsv();
}

TEST(Table, IncompleteRowDies)
{
    Table t({"a", "b"});
    t.beginRow();
    t.cell("only-one");
    EXPECT_DEATH(t.beginRow(), "cells");
}

TEST(Table, CellOutsideRowDies)
{
    Table t({"a"});
    EXPECT_DEATH(t.cell("x"), "outside");
}

TEST(Table, FmtPrecision)
{
    EXPECT_EQ(fmt(1.23456, 2), "1.23");
    EXPECT_EQ(fmt(2.0, 3), "2.000");
}

} // namespace
} // namespace smthill
