/**
 * @file
 * Unit tests for the key=value option registry and config-file
 * parsing.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/options.hh"

namespace smthill
{
namespace
{

struct Knobs
{
    std::int64_t count = 1;
    std::uint64_t cycles = 2;
    int width = 3;
    double ratio = 0.5;
    bool flag = false;
    std::string name = "default";

    OptionSet
    options()
    {
        OptionSet o;
        o.addInt("count", &count, "a count");
        o.addUint("cycles", &cycles, "cycles");
        o.addInt32("width", &width, "a width");
        o.addDouble("ratio", &ratio, "a ratio");
        o.addBool("flag", &flag, "a flag");
        o.addString("name", &name, "a name");
        return o;
    }
};

TEST(Options, SetAllKinds)
{
    Knobs k;
    OptionSet o = k.options();
    std::string err;
    EXPECT_TRUE(o.set("count", "-7", err)) << err;
    EXPECT_TRUE(o.set("cycles", "65536", err)) << err;
    EXPECT_TRUE(o.set("width", "8", err)) << err;
    EXPECT_TRUE(o.set("ratio", "0.25", err)) << err;
    EXPECT_TRUE(o.set("flag", "true", err)) << err;
    EXPECT_TRUE(o.set("name", "art-mcf", err)) << err;
    EXPECT_EQ(k.count, -7);
    EXPECT_EQ(k.cycles, 65536u);
    EXPECT_EQ(k.width, 8);
    EXPECT_DOUBLE_EQ(k.ratio, 0.25);
    EXPECT_TRUE(k.flag);
    EXPECT_EQ(k.name, "art-mcf");
}

TEST(Options, HexIntegers)
{
    Knobs k;
    OptionSet o = k.options();
    std::string err;
    EXPECT_TRUE(o.set("cycles", "0x10000", err));
    EXPECT_EQ(k.cycles, 65536u);
}

TEST(Options, BoolSpellings)
{
    Knobs k;
    OptionSet o = k.options();
    std::string err;
    for (const char *v : {"1", "true", "yes"}) {
        k.flag = false;
        EXPECT_TRUE(o.set("flag", v, err));
        EXPECT_TRUE(k.flag) << v;
    }
    for (const char *v : {"0", "false", "no"}) {
        k.flag = true;
        EXPECT_TRUE(o.set("flag", v, err));
        EXPECT_FALSE(k.flag) << v;
    }
    EXPECT_FALSE(o.set("flag", "maybe", err));
}

TEST(Options, RejectsUnknownAndMalformed)
{
    Knobs k;
    OptionSet o = k.options();
    std::string err;
    EXPECT_FALSE(o.set("bogus", "1", err));
    EXPECT_NE(err.find("unknown"), std::string::npos);
    EXPECT_FALSE(o.set("count", "seven", err));
    EXPECT_FALSE(o.set("ratio", "fast", err));
}

TEST(Options, ParseArgsSplitsPositional)
{
    Knobs k;
    OptionSet o = k.options();
    std::vector<std::string> pos;
    std::string err;
    EXPECT_TRUE(o.parseArgs({"width=5", "run", "flag=1"}, pos, err));
    EXPECT_EQ(k.width, 5);
    EXPECT_TRUE(k.flag);
    ASSERT_EQ(pos.size(), 1u);
    EXPECT_EQ(pos[0], "run");
}

TEST(Options, ParseArgsReportsFirstError)
{
    Knobs k;
    OptionSet o = k.options();
    std::vector<std::string> pos;
    std::string err;
    EXPECT_FALSE(o.parseArgs({"width=5", "nope=1"}, pos, err));
    EXPECT_EQ(k.width, 5) << "options before the error still apply";
}

TEST(Options, LoadFileAppliesAndSkipsComments)
{
    Knobs k;
    OptionSet o = k.options();
    std::string path = "/tmp/smthill_opt_test.cfg";
    {
        std::ofstream f(path);
        f << "# a comment\n\n"
          << "width = 11\n"
          << "  name =  spaced value  \n"
          << "ratio=2.5\n";
    }
    std::string err;
    EXPECT_TRUE(o.loadFile(path, err)) << err;
    EXPECT_EQ(k.width, 11);
    EXPECT_EQ(k.name, "spaced value");
    EXPECT_DOUBLE_EQ(k.ratio, 2.5);
    std::remove(path.c_str());
}

TEST(Options, LoadFileReportsLineNumbers)
{
    Knobs k;
    OptionSet o = k.options();
    std::string path = "/tmp/smthill_opt_bad.cfg";
    {
        std::ofstream f(path);
        f << "width = 11\n"
          << "this line has no equals\n";
    }
    std::string err;
    EXPECT_FALSE(o.loadFile(path, err));
    EXPECT_NE(err.find(":2"), std::string::npos) << err;
    std::remove(path.c_str());
}

TEST(Options, LoadMissingFileFails)
{
    Knobs k;
    OptionSet o = k.options();
    std::string err;
    EXPECT_FALSE(o.loadFile("/nonexistent/path.cfg", err));
}

TEST(Options, HasAndDuplicates)
{
    Knobs k;
    OptionSet o = k.options();
    EXPECT_TRUE(o.has("width"));
    EXPECT_FALSE(o.has("height"));
    int dummy = 0;
    EXPECT_DEATH(o.addInt32("width", &dummy, "dup"), "duplicate");
}

} // namespace
} // namespace smthill
