/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

namespace smthill
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, CopyResumesStream)
{
    Rng a(7);
    for (int i = 0; i < 17; ++i)
        a.next();
    Rng b = a; // checkpoint
    std::vector<std::uint64_t> expect;
    for (int i = 0; i < 50; ++i)
        expect.push_back(a.next());
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(b.next(), expect[i]);
}

TEST(Rng, EqualityReflectsState)
{
    Rng a(9), b(9);
    EXPECT_EQ(a, b);
    a.next();
    EXPECT_NE(a, b);
    b.next();
    EXPECT_EQ(a, b);
}

TEST(Rng, NextBelowInRange)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        auto v = r.nextBelow(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, NextBelowCoversAllValues)
{
    Rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(r.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeInclusiveBounds)
{
    Rng r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        auto v = r.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextRangeDegenerate)
{
    Rng r(5);
    EXPECT_EQ(r.nextRange(4, 4), 4);
    EXPECT_EQ(r.nextRange(9, 2), 9); // hi < lo collapses to lo
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng r(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
        EXPECT_FALSE(r.chance(-0.5));
        EXPECT_TRUE(r.chance(1.5));
    }
}

TEST(Rng, ChanceFrequencyMatchesProbability)
{
    Rng r(77);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GeometricBounds)
{
    Rng r(21);
    for (int i = 0; i < 5000; ++i) {
        int v = r.nextGeometric(0.25, 32);
        EXPECT_GE(v, 1);
        EXPECT_LE(v, 32);
    }
}

TEST(Rng, GeometricMeanApproximatesInverseP)
{
    Rng r(23);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += r.nextGeometric(0.125, 1000);
    EXPECT_NEAR(sum / n, 8.0, 0.5);
}

TEST(Rng, GeometricDegenerateCases)
{
    Rng r(29);
    EXPECT_EQ(r.nextGeometric(1.0, 50), 1);
    EXPECT_EQ(r.nextGeometric(0.0, 50), 50);
    EXPECT_EQ(r.nextGeometric(0.5, 1), 1);
}

} // namespace
} // namespace smthill
