/**
 * @file
 * Unit tests for the RAND-HILL ideal learner (Section 4.3).
 */

#include <gtest/gtest.h>

#include "core/rand_hill.hh"
#include "harness/runner.hh"
#include "policy/icount.hh"
#include "trace/program_profile.hh"

namespace smthill
{
namespace
{

ProgramProfile
profileWith(double p_cold, int dep, const char *name)
{
    ProfileParams pp;
    pp.name = name;
    pp.numBlocks = 12;
    pp.avgBlockLen = 8;
    pp.pLoadCold = p_cold;
    pp.meanDepDist = dep;
    pp.serialFrac = 0.1;
    return buildProfile(pp);
}

SmtCpu
fourThreadCpu()
{
    SmtConfig cfg;
    cfg.numThreads = 4;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(profileWith(0.08, 30, "mem0"), 0);
    gens.emplace_back(profileWith(0.0, 6, "ilp1"), 1);
    gens.emplace_back(profileWith(0.03, 14, "mix2"), 2);
    gens.emplace_back(profileWith(0.0, 10, "ilp3"), 3);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(80000);
    return cpu;
}

RandHillConfig
fastConfig()
{
    RandHillConfig rc;
    rc.epochSize = 4096;
    rc.iterations = 16;
    rc.metric = PerfMetric::AvgIpc;
    return rc;
}

TEST(RandHill, StepAdvancesOneEpoch)
{
    SmtCpu cpu = fourThreadCpu();
    Cycle before = cpu.now();
    RandHill rh(fastConfig());
    rh.stepEpoch(cpu);
    EXPECT_EQ(cpu.now(), before + 4096);
}

TEST(RandHill, WorksOnFourThreads)
{
    SmtCpu cpu = fourThreadCpu();
    RandHill rh(fastConfig());
    OfflineEpoch rec = rh.stepEpoch(cpu);
    EXPECT_EQ(rec.best.numThreads, 4);
    EXPECT_EQ(rec.best.total(), 256);
    EXPECT_GT(rec.metricValue, 0.0);
}

TEST(RandHill, BestBeatsEqualTrial)
{
    SmtCpu cpu = fourThreadCpu();
    const SmtCpu checkpoint = cpu;
    RandHillConfig rc = fastConfig();
    RandHill rh(rc);
    OfflineEpoch rec = rh.stepEpoch(cpu);

    IpcSample equal_run = runFixedPartitionEpoch(
        checkpoint, Partition::equal(4, 256), rc.epochSize);
    double equal_metric = evalMetric(rc.metric, equal_run, rc.singleIpc);
    // The search includes near-equal trials in its first round, so it
    // can never end below them.
    EXPECT_GE(rec.metricValue, equal_metric - 0.05);
}

TEST(RandHill, DeterministicForSameSeed)
{
    RandHillConfig rc = fastConfig();
    rc.seed = 7;
    SmtCpu a = fourThreadCpu();
    SmtCpu b = fourThreadCpu();
    RandHill ra(rc), rb(rc);
    OfflineEpoch ea = ra.stepEpoch(a);
    OfflineEpoch eb = rb.stepEpoch(b);
    EXPECT_EQ(ea.best, eb.best);
    EXPECT_DOUBLE_EQ(ea.metricValue, eb.metricValue);
}

TEST(RandHill, MoreIterationsNeverHurt)
{
    SmtCpu base = fourThreadCpu();
    RandHillConfig small = fastConfig();
    small.iterations = 4;
    RandHillConfig big = fastConfig();
    big.iterations = 32;
    SmtCpu a = base, b = base;
    OfflineEpoch ea = RandHill(small).stepEpoch(a);
    OfflineEpoch eb = RandHill(big).stepEpoch(b);
    EXPECT_GE(eb.metricValue, ea.metricValue - 1e-9)
        << "a superset search cannot find a worse best";
}

TEST(RandHill, RunAdvancesAllEpochs)
{
    SmtCpu cpu = fourThreadCpu();
    Cycle start = cpu.now();
    RandHill rh(fastConfig());
    OfflineResult res = rh.run(cpu, 3);
    EXPECT_EQ(res.epochs.size(), 3u);
    EXPECT_EQ(cpu.now(), start + 3 * 4096);
}

TEST(RandHill, TwoThreadsAlsoSupported)
{
    SmtConfig cfg;
    cfg.numThreads = 2;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(profileWith(0.05, 20, "a"), 0);
    gens.emplace_back(profileWith(0.0, 8, "b"), 1);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(50000);
    RandHill rh(fastConfig());
    OfflineEpoch rec = rh.stepEpoch(cpu);
    EXPECT_EQ(rec.best.total(), 256);
}

TEST(RandHill, RejectsBadConfig)
{
    RandHillConfig rc;
    rc.iterations = 0;
    EXPECT_DEATH(RandHill r(rc), "iteration");
}

} // namespace
} // namespace smthill
