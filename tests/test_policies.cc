/**
 * @file
 * Unit tests for the baseline resource-distribution policies.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "policy/dcra.hh"
#include "policy/flush.hh"
#include "policy/icount.hh"
#include "policy/stall.hh"
#include "policy/static_partition.hh"
#include "trace/program_profile.hh"

namespace smthill
{
namespace
{

ProgramProfile
profileWith(double p_cold, const char *name)
{
    ProfileParams pp;
    pp.name = name;
    pp.numBlocks = 12;
    pp.avgBlockLen = 8;
    pp.pLoadCold = p_cold;
    // The "clean" thread must touch only DL1-resident data, or slow
    // compulsory L2 warm-up makes it look memory-bound to FLUSH.
    pp.pLoadWarm = p_cold > 0.0 ? 0.05 : 0.0;
    pp.meanDepDist = 16;
    pp.serialFrac = 0.15;
    return buildProfile(pp);
}

SmtCpu
mixedCpu()
{
    SmtConfig cfg;
    cfg.numThreads = 2;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(profileWith(0.2, "mem"), 0);
    gens.emplace_back(profileWith(0.0, "ilp"), 1);
    SmtCpu cpu(cfg, std::move(gens));
    // Warm caches so compulsory misses don't make the clean thread
    // look memory-bound.
    cpu.run(300000);
    return cpu;
}

TEST(Icount, RunsUnpartitioned)
{
    SmtCpu cpu = mixedCpu();
    IcountPolicy p;
    p.attach(cpu);
    EXPECT_FALSE(cpu.partitioningEnabled());
    IpcSample s = runOneEpoch(cpu, p, 30000);
    EXPECT_GT(s.ipc[0] + s.ipc[1], 0.2);
}

TEST(Icount, NameAndClone)
{
    IcountPolicy p;
    EXPECT_EQ(p.name(), "ICOUNT");
    auto c = p.clone();
    EXPECT_EQ(c->name(), "ICOUNT");
}

TEST(Flush, FlushesCloggedThread)
{
    SmtCpu cpu = mixedCpu();
    FlushPolicy p;
    p.attach(cpu);
    runOneEpoch(cpu, p, 60000);
    EXPECT_GT(p.flushedInsts(), 0u)
        << "a 20% cold-miss thread must trigger flushes";
    EXPECT_GT(cpu.stats().flushed[0], 0u);
    EXPECT_EQ(cpu.stats().flushed[1], 0u)
        << "the clean thread must never be flushed";
}

TEST(Flush, LocksWhileMissOutstandingThenUnlocks)
{
    SmtCpu cpu = mixedCpu();
    FlushPolicy p;
    p.attach(cpu);
    // Drive until a flush+lock happens.
    bool locked_seen = false;
    for (int i = 0; i < 60000 && !locked_seen; ++i) {
        p.cycle(cpu);
        cpu.step();
        locked_seen = cpu.fetchLocked(0);
    }
    ASSERT_TRUE(locked_seen);
    // Eventually the miss returns and the lock is dropped.
    bool unlocked_seen = false;
    for (int i = 0; i < 5000 && !unlocked_seen; ++i) {
        p.cycle(cpu);
        cpu.step();
        unlocked_seen = !cpu.fetchLocked(0);
    }
    EXPECT_TRUE(unlocked_seen);
}

TEST(Flush, HelpsIlpPartnerAgainstClog)
{
    // With FLUSH, the clean thread should commit at least as much as
    // under plain ICOUNT (clog is bounded).
    SmtCpu a = mixedCpu();
    IcountPolicy icount;
    icount.attach(a);
    runOneEpoch(a, icount, 100000);

    SmtCpu b = mixedCpu();
    FlushPolicy flush;
    flush.attach(b);
    runOneEpoch(b, flush, 100000);

    EXPECT_GE(b.stats().committed[1] * 10, a.stats().committed[1] * 9);
}

TEST(Stall, LocksOnLongLoadsAndRecovers)
{
    SmtCpu cpu = mixedCpu();
    StallPolicy p(10);
    p.attach(cpu);
    int locked_cycles = 0;
    for (int i = 0; i < 60000; ++i) {
        p.cycle(cpu);
        cpu.step();
        locked_cycles += cpu.fetchLocked(0);
    }
    EXPECT_GT(locked_cycles, 1000);
    EXPECT_GT(cpu.stats().committed[0], 100u);
    EXPECT_EQ(cpu.stats().flushed[0], 0u) << "STALL never squashes";
}

TEST(Dcra, SlowThreadGetsLargerShare)
{
    SmtCpu cpu = mixedCpu();
    DcraPolicy p(2);
    p.attach(cpu);
    // Step until thread 0 (memory-bound) is classified slow. The
    // classification is re-read after the policy acts so the check
    // sees the same state DCRA saw.
    int t0_larger = 0, samples = 0;
    for (int i = 0; i < 60000; ++i) {
        p.cycle(cpu);
        cpu.step();
        p.cycle(cpu); // recompute on post-step state
        if (cpu.partitioningEnabled() && cpu.dl1MissesInFlight(0) > 0 &&
            cpu.dl1MissesInFlight(1) == 0) {
            ++samples;
            t0_larger +=
                cpu.partition().share[0] > cpu.partition().share[1];
        }
    }
    ASSERT_GT(samples, 100);
    EXPECT_EQ(t0_larger, samples)
        << "DCRA must always favor the slow thread in this state";
}

TEST(Dcra, EqualSharesWhenSameClass)
{
    SmtCpu cpu = mixedCpu();
    DcraPolicy p(2);
    p.attach(cpu);
    for (int i = 0; i < 20000; ++i) {
        p.cycle(cpu);
        cpu.step();
        p.cycle(cpu); // recompute on post-step state
        if (cpu.dl1MissesInFlight(0) == 0 && cpu.dl1MissesInFlight(1) == 0) {
            ASSERT_EQ(cpu.partition().share[0], cpu.partition().share[1]);
        }
    }
}

TEST(Dcra, SharesAlwaysSumToTotal)
{
    SmtCpu cpu = mixedCpu();
    DcraPolicy p(3);
    p.attach(cpu);
    for (int i = 0; i < 20000; ++i) {
        p.cycle(cpu);
        cpu.step();
        ASSERT_EQ(cpu.partition().total(), cpu.config().intRegs);
    }
}

TEST(Dcra, RejectsBadSharingFactor)
{
    EXPECT_DEATH(DcraPolicy p(0), "sharing factor");
}

TEST(StaticPartition, EqualByDefault)
{
    SmtCpu cpu = mixedCpu();
    StaticPartitionPolicy p;
    p.attach(cpu);
    ASSERT_TRUE(cpu.partitioningEnabled());
    EXPECT_EQ(cpu.partition().share[0], 128);
    EXPECT_EQ(cpu.partition().share[1], 128);
    runOneEpoch(cpu, p, 20000);
    EXPECT_EQ(cpu.partition().share[0], 128) << "static never moves";
}

TEST(StaticPartition, CustomShares)
{
    SmtCpu cpu = mixedCpu();
    Partition custom;
    custom.numThreads = 2;
    custom.share = {192, 64};
    StaticPartitionPolicy p(custom);
    p.attach(cpu);
    EXPECT_EQ(cpu.partition().share[0], 192);
}

TEST(AllPolicies, CloneIsIndependent)
{
    FlushPolicy f;
    SmtCpu cpu = mixedCpu();
    f.attach(cpu);
    runOneEpoch(cpu, f, 30000);
    auto c = f.clone();
    EXPECT_EQ(c->name(), "FLUSH");
    // Cloning after activity must not share mutable state: running
    // the clone on a fresh machine works from a clean slate.
    SmtCpu cpu2 = mixedCpu();
    c->attach(cpu2);
    runOneEpoch(cpu2, *c, 10000);
    EXPECT_GT(cpu2.stats().committedTotal(), 0u);
}

} // namespace
} // namespace smthill
