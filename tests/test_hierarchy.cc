/**
 * @file
 * Unit tests for the memory hierarchy (latencies, inclusion of
 * statistics, per-thread miss counters).
 */

#include <gtest/gtest.h>

#include "memory/hierarchy.hh"

namespace smthill
{
namespace
{

TEST(Hierarchy, ColdDataAccessGoesToMemory)
{
    MemoryHierarchy m;
    auto res = m.dataAccess(0, 0x1000, false);
    EXPECT_EQ(res.level, MemLevel::Memory);
    EXPECT_EQ(res.latency, 1u + 20u + 300u);
}

TEST(Hierarchy, SecondAccessHitsL1)
{
    MemoryHierarchy m;
    m.dataAccess(0, 0x1000, false);
    auto res = m.dataAccess(0, 0x1000, false);
    EXPECT_EQ(res.level, MemLevel::L1);
    EXPECT_EQ(res.latency, 1u);
}

TEST(Hierarchy, L2HitAfterDl1Eviction)
{
    MemoryHierarchy m;
    // Fill one DL1 set (2 ways) and evict; the line stays in the L2.
    Addr dl1_set_stride = 512 * 64; // dl1: 512 sets
    m.dataAccess(0, 0x0, false);
    m.dataAccess(0, dl1_set_stride, false);
    m.dataAccess(0, 2 * dl1_set_stride, false); // evicts 0x0 from DL1
    auto res = m.dataAccess(0, 0x0, false);
    EXPECT_EQ(res.level, MemLevel::L2);
    EXPECT_EQ(res.latency, 21u);
}

TEST(Hierarchy, InstAccessUsesIl1)
{
    MemoryHierarchy m;
    auto miss = m.instAccess(0, 0x400000);
    EXPECT_EQ(miss.level, MemLevel::Memory);
    auto hit = m.instAccess(0, 0x400000);
    EXPECT_EQ(hit.level, MemLevel::L1);
    EXPECT_EQ(hit.latency, 1u);
}

TEST(Hierarchy, InstAndDataDoNotShareL1)
{
    MemoryHierarchy m;
    m.instAccess(0, 0x8000);
    auto res = m.dataAccess(0, 0x8000, false);
    EXPECT_EQ(res.level, MemLevel::L2) << "data should miss DL1 but hit "
                                          "the unified L2";
}

TEST(Hierarchy, PerThreadMissCounters)
{
    MemoryHierarchy m;
    m.dataAccess(0, 0x1000, false);
    m.dataAccess(1, 0x2000, false);
    m.dataAccess(1, 0x3000, false);
    EXPECT_EQ(m.dl1Misses(0), 1u);
    EXPECT_EQ(m.dl1Misses(1), 2u);
    EXPECT_EQ(m.l2Misses(0), 1u);
    EXPECT_EQ(m.l2Misses(1), 2u);
}

TEST(Hierarchy, Dl1MissL2HitCountsOnlyDl1)
{
    MemoryHierarchy m;
    Addr dl1_set_stride = 512 * 64;
    m.dataAccess(0, 0x0, false);
    m.dataAccess(0, dl1_set_stride, false);
    m.dataAccess(0, 2 * dl1_set_stride, false);
    auto l2_before = m.l2Misses(0);
    m.dataAccess(0, 0x0, false); // L2 hit
    EXPECT_EQ(m.l2Misses(0), l2_before);
}

TEST(Hierarchy, CustomLatencies)
{
    MemoryConfig cfg;
    cfg.l1Latency = 2;
    cfg.l2Latency = 12;
    cfg.memFirstChunk = 100;
    MemoryHierarchy m(cfg);
    EXPECT_EQ(m.dataAccess(0, 0x0, false).latency, 2u + 12u + 100u);
    EXPECT_EQ(m.dataAccess(0, 0x0, false).latency, 2u);
}

TEST(Hierarchy, CopyIsIndependent)
{
    MemoryHierarchy a;
    a.dataAccess(0, 0x1000, false);
    MemoryHierarchy b = a;
    b.dataAccess(0, 0x5000, false);
    EXPECT_EQ(a.dl1Misses(0), 1u);
    EXPECT_EQ(b.dl1Misses(0), 2u);
    // The copied DL1 still holds the original line.
    EXPECT_EQ(b.dataAccess(0, 0x1000, false).level, MemLevel::L1);
}

TEST(Hierarchy, WorkingSetBeyondL2Misses)
{
    MemoryHierarchy m;
    // Stream 2 MB (twice the L2) twice; second pass must still miss.
    for (Addr a = 0; a < 2 * 1024 * 1024; a += 64)
        m.dataAccess(0, a, false);
    auto before = m.l2Misses(0);
    for (Addr a = 0; a < 2 * 1024 * 1024; a += 64)
        m.dataAccess(0, a, false);
    EXPECT_GT(m.l2Misses(0) - before, 16000u);
}

TEST(Hierarchy, WorkingSetUnderL2HitsAfterWarmup)
{
    MemoryHierarchy m;
    for (int pass = 0; pass < 2; ++pass)
        for (Addr a = 0; a < 256 * 1024; a += 64)
            m.dataAccess(0, a, false);
    auto before = m.l2Misses(0);
    for (Addr a = 0; a < 256 * 1024; a += 64)
        m.dataAccess(0, a, false);
    EXPECT_EQ(m.l2Misses(0), before);
}

} // namespace
} // namespace smthill
