/**
 * @file
 * Unit tests for the branch predictors, BTB, and RAS.
 */

#include <gtest/gtest.h>

#include "branch/predictors.hh"
#include "common/rng.hh"

namespace smthill
{
namespace
{

TEST(Bimodal, LearnsBiasedBranch)
{
    BimodalPredictor bp(64);
    Addr pc = 0x4000;
    for (int i = 0; i < 10; ++i)
        bp.update(pc, true);
    EXPECT_TRUE(bp.predict(pc));
    for (int i = 0; i < 10; ++i)
        bp.update(pc, false);
    EXPECT_FALSE(bp.predict(pc));
}

TEST(Bimodal, HysteresisSurvivesOneFlip)
{
    BimodalPredictor bp(64);
    Addr pc = 0x4000;
    for (int i = 0; i < 10; ++i)
        bp.update(pc, true);
    bp.update(pc, false); // one not-taken shouldn't flip a 2-bit ctr
    EXPECT_TRUE(bp.predict(pc));
}

TEST(Bimodal, DistinctPcsIndependent)
{
    BimodalPredictor bp(1024);
    Addr a = 0x1000, b = 0x1004;
    for (int i = 0; i < 8; ++i) {
        bp.update(a, true);
        bp.update(b, false);
    }
    EXPECT_TRUE(bp.predict(a));
    EXPECT_FALSE(bp.predict(b));
}

TEST(Gshare, LearnsAlternatingPattern)
{
    // Bimodal cannot learn a strict T/N/T/N pattern, gshare can.
    GsharePredictor gp(4096, 8);
    Addr pc = 0x2000;
    bool outcome = false;
    // Train.
    for (int i = 0; i < 4000; ++i) {
        outcome = !outcome;
        auto hist = gp.history();
        bool pred = gp.predictAndShift(pc);
        gp.update(pc, hist, outcome);
        if (pred != outcome)
            gp.repairHistory(hist, outcome);
    }
    // Evaluate.
    int correct = 0;
    for (int i = 0; i < 200; ++i) {
        outcome = !outcome;
        auto hist = gp.history();
        bool pred = gp.predictAndShift(pc);
        correct += pred == outcome;
        gp.update(pc, hist, outcome);
        if (pred != outcome)
            gp.repairHistory(hist, outcome);
    }
    EXPECT_GT(correct, 190);
}

TEST(Gshare, HistoryRepairRestoresState)
{
    GsharePredictor gp(1024, 10);
    Addr pc = 0x2000;
    auto h0 = gp.history();
    gp.predictAndShift(pc);
    gp.repairHistory(h0, true);
    EXPECT_EQ(gp.history(), ((h0 << 1) | 1) & ((1u << 10) - 1));
}

TEST(Hybrid, PredictsBiasedBranchesWell)
{
    HybridPredictor hp;
    Rng rng(5);
    Addr pc = 0x3000;
    int correct = 0, total = 0;
    for (int i = 0; i < 5000; ++i) {
        bool outcome = rng.chance(0.95);
        auto lk = hp.predict(pc);
        if (i > 500) {
            ++total;
            correct += lk.prediction == outcome;
        }
        hp.update(pc, lk, outcome);
        if (lk.prediction != outcome)
            hp.repairHistory(lk, outcome);
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.90);
}

TEST(Hybrid, ChoosesBetterComponent)
{
    // An alternating branch: gshare learns it, bimodal cannot; the
    // meta-chooser must converge to gshare, yielding high accuracy.
    HybridPredictor hp(1024, 4096, 64);
    Addr pc = 0x3004;
    bool outcome = false;
    int late_correct = 0, late_total = 0;
    for (int i = 0; i < 6000; ++i) {
        outcome = !outcome;
        auto lk = hp.predict(pc);
        if (i > 5000) {
            ++late_total;
            late_correct += lk.prediction == outcome;
        }
        hp.update(pc, lk, outcome);
        if (lk.prediction != outcome)
            hp.repairHistory(lk, outcome);
    }
    EXPECT_GT(static_cast<double>(late_correct) / late_total, 0.9);
}

TEST(Btb, MissThenHit)
{
    Btb btb(256, 4);
    Addr target = 0;
    EXPECT_FALSE(btb.lookup(0x100, target));
    btb.update(0x100, 0x900);
    EXPECT_TRUE(btb.lookup(0x100, target));
    EXPECT_EQ(target, 0x900u);
}

TEST(Btb, UpdateOverwritesTarget)
{
    Btb btb(256, 4);
    btb.update(0x100, 0x900);
    btb.update(0x100, 0xa00);
    Addr target = 0;
    ASSERT_TRUE(btb.lookup(0x100, target));
    EXPECT_EQ(target, 0xa00u);
}

TEST(Btb, LruEvictionWithinSet)
{
    Btb btb(8, 4); // 2 sets of 4 ways
    // Five PCs mapping to the same set (stride = 2 sets * 4 bytes).
    Addr pcs[5] = {0x000, 0x008, 0x010, 0x018, 0x020};
    for (Addr pc : pcs)
        btb.update(pc, pc + 1);
    Addr target = 0;
    // The oldest entry (0x000) must have been evicted.
    EXPECT_FALSE(btb.lookup(0x000, target));
    for (int i = 1; i < 5; ++i)
        EXPECT_TRUE(btb.lookup(pcs[i], target)) << i;
}

TEST(Btb, LookupRefreshesLru)
{
    Btb btb(8, 4);
    Addr pcs[4] = {0x000, 0x008, 0x010, 0x018};
    for (Addr pc : pcs)
        btb.update(pc, pc + 1);
    Addr target = 0;
    ASSERT_TRUE(btb.lookup(0x000, target)); // refresh oldest
    btb.update(0x020, 0x21);                // evicts 0x008 now
    EXPECT_TRUE(btb.lookup(0x000, target));
    EXPECT_FALSE(btb.lookup(0x008, target));
}

TEST(Ras, PushPopOrder)
{
    ReturnAddressStack ras(8);
    EXPECT_TRUE(ras.empty());
    ras.push(0x10);
    ras.push(0x20);
    ras.push(0x30);
    EXPECT_EQ(ras.size(), 3u);
    EXPECT_EQ(ras.pop(), 0x30u);
    EXPECT_EQ(ras.pop(), 0x20u);
    EXPECT_EQ(ras.pop(), 0x10u);
    EXPECT_TRUE(ras.empty());
}

TEST(Ras, PopEmptyReturnsZero)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, OverflowWrapsKeepingNewest)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3); // overwrites the oldest
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
}

TEST(Predictors, CopyPreservesLearnedState)
{
    HybridPredictor hp;
    Addr pc = 0x5000;
    for (int i = 0; i < 100; ++i) {
        auto lk = hp.predict(pc);
        hp.update(pc, lk, true);
    }
    HybridPredictor copy = hp; // checkpoint
    auto a = hp.predict(pc);
    auto b = copy.predict(pc);
    EXPECT_EQ(a.prediction, b.prediction);
    EXPECT_TRUE(b.prediction);
}

} // namespace
} // namespace smthill
