/**
 * @file
 * Tests for the project linter (lint/lint.hh): every rule has a
 * must-flag and a must-pass fixture under tests/lint/fixtures/, the
 * suppression comment works (and only for the named rule), and
 * findings round-trip through the common/json layer as
 * `smthill.lint.v1` documents.
 *
 * Fixtures are linted under *synthetic* paths: path-scoped rules
 * (schema files, module ranks, guard canonicalization) key off the
 * path handed to lintFile(), so fixture content can exercise any
 * rule from one on-disk directory — which the tree walker skips, so
 * the intentionally-failing files never dirty the `Lint` ctest run.
 */

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "lint/lexer.hh"
#include "lint/lint.hh"

using namespace smthill;
using lint::Finding;

namespace
{

std::string
fixture(const std::string &name)
{
    const std::string path =
        std::string(SMTHILL_LINT_FIXTURES) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Lint fixture @p name under synthetic @p path. */
std::vector<Finding>
lintFixture(const std::string &name, const std::string &path)
{
    return lint::lintFile(path, fixture(name));
}

/** Expect >= 1 finding, every one of @p rule. */
void
expectFlagged(const std::string &name, const std::string &path,
              const std::string &rule)
{
    std::vector<Finding> findings = lintFixture(name, path);
    EXPECT_FALSE(findings.empty())
        << name << " must produce a " << rule << " finding";
    for (const Finding &f : findings) {
        EXPECT_EQ(f.rule, rule)
            << name << " raised an unexpected rule at line " << f.line
            << ": " << f.message;
        EXPECT_EQ(f.file, path);
        EXPECT_GT(f.line, 0);
        EXPECT_FALSE(f.message.empty());
    }
}

void
expectClean(const std::string &name, const std::string &path)
{
    std::vector<Finding> findings = lintFixture(name, path);
    EXPECT_TRUE(findings.empty())
        << name << " must lint clean; first: "
        << (findings.empty() ? "" : findings[0].message);
}

} // namespace

TEST(Lint, RuleCatalog)
{
    std::vector<std::string> rules = lint::ruleNames();
    EXPECT_EQ(rules.size(), 9u);
    for (const char *rule : {"no-wall-clock", "no-libc-random",
                             "no-unordered-container", "stat-name",
                             "schema-field", "error-handling",
                             "cpu-copy-hot-path", "include-guard",
                             "layering"}) {
        EXPECT_NE(std::find(rules.begin(), rules.end(), rule),
                  rules.end())
            << rule;
    }
}

TEST(Lint, NoWallClockFixtures)
{
    expectFlagged("no_wall_clock_flag.cc",
                  "src/fixture/no_wall_clock_flag.cc", "no-wall-clock");
    expectClean("no_wall_clock_pass.cc",
                "src/fixture/no_wall_clock_pass.cc");
}

TEST(Lint, ProfilerSourceIsExemptFromWallClockRule)
{
    // The host profiler is the one sanctioned steady-clock user: the
    // same clock-reading content lints clean under its own path and
    // keeps flagging everywhere else.
    std::vector<Finding> carved = lint::lintFile(
        "src/common/profile.cc", fixture("no_wall_clock_carveout.cc"));
    EXPECT_TRUE(carved.empty());

    expectFlagged("no_wall_clock_carveout.cc",
                  "src/fixture/no_wall_clock_carveout.cc",
                  "no-wall-clock");
}

TEST(Lint, NoLibcRandomFixtures)
{
    expectFlagged("no_libc_random_flag.cc",
                  "src/fixture/no_libc_random_flag.cc",
                  "no-libc-random");
    expectClean("no_libc_random_pass.cc",
                "src/fixture/no_libc_random_pass.cc");
}

TEST(Lint, RngSourceIsExemptFromDeterminismRules)
{
    // The same flagged content lints clean under the RNG's own path.
    std::vector<Finding> findings = lint::lintFile(
        "src/common/rng.cc", fixture("no_libc_random_flag.cc"));
    EXPECT_TRUE(findings.empty());
}

TEST(Lint, NoUnorderedContainerFixtures)
{
    expectFlagged("no_unordered_container_flag.cc",
                  "src/fixture/no_unordered_container_flag.cc",
                  "no-unordered-container");
    expectClean("no_unordered_container_pass.cc",
                "src/fixture/no_unordered_container_pass.cc");
}

TEST(Lint, StatNameFixtures)
{
    expectFlagged("stat_name_flag.cc", "src/fixture/stat_name_flag.cc",
                  "stat-name");
    expectClean("stat_name_pass.cc", "src/fixture/stat_name_pass.cc");

    // The flag fixture carries one convention violation and one
    // duplicate registration; both must surface.
    std::vector<Finding> findings = lintFixture(
        "stat_name_flag.cc", "src/fixture/stat_name_flag.cc");
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_NE(findings[0].message.find("convention"),
              std::string::npos);
    EXPECT_NE(findings[1].message.find("already registered"),
              std::string::npos);
}

TEST(Lint, StatDuplicatesIgnoredOutsideSrc)
{
    // Tests and benches look up production stats by name to assert
    // on them; that re-lookup is not a duplicate registration.
    std::vector<Finding> findings = lint::lintFile(
        "tests/fixture_stat.cc", fixture("stat_name_flag.cc"));
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("convention"),
              std::string::npos);
}

TEST(Lint, SchemaFieldFixtures)
{
    expectFlagged("schema_field_flag.cc", "src/core/epoch_trace.cc",
                  "schema-field");
    expectClean("schema_field_pass.cc", "src/core/epoch_trace.cc");

    // Off the two writer files the rule does not apply at all.
    std::vector<Finding> findings = lint::lintFile(
        "src/fixture/other.cc", fixture("schema_field_flag.cc"));
    EXPECT_TRUE(findings.empty());
}

TEST(Lint, ErrorHandlingFixtures)
{
    expectFlagged("error_handling_flag.cc",
                  "src/fixture/error_handling_flag.cc",
                  "error-handling");
    expectClean("error_handling_pass.cc",
                "src/fixture/error_handling_pass.cc");

    // new / delete[] / exit / throw: four distinct findings.
    EXPECT_EQ(lintFixture("error_handling_flag.cc",
                          "src/fixture/error_handling_flag.cc")
                  .size(),
              4u);

    // `throw` is a library-code rule; under tests/ it is legal (the
    // thread-pool suite throws to exercise exception propagation).
    std::vector<Finding> inTests = lint::lintFile(
        "tests/fixture_throw.cc",
        "void f() { throw 1; }\n");
    EXPECT_TRUE(inTests.empty());
}

TEST(Lint, CpuCopyHotPathFixtures)
{
    expectFlagged("cpu_copy_hot_path_flag.cc",
                  "src/fixture/cpu_copy_hot_path_flag.cc",
                  "cpu-copy-hot-path");
    expectClean("cpu_copy_hot_path_pass.cc",
                "src/fixture/cpu_copy_hot_path_pass.cc");

    // Copy-init and direct-init both surface.
    EXPECT_EQ(lintFixture("cpu_copy_hot_path_flag.cc",
                          "src/fixture/cpu_copy_hot_path_flag.cc")
                  .size(),
              2u);

    // Bench loops are hot paths too; tests keep checkpoint value
    // semantics on purpose and are exempt, as is the arena itself.
    expectFlagged("cpu_copy_hot_path_flag.cc",
                  "bench/cpu_copy_hot_path_flag.cc",
                  "cpu-copy-hot-path");
    EXPECT_TRUE(lintFixture("cpu_copy_hot_path_flag.cc",
                            "tests/cpu_copy_hot_path_flag.cc")
                    .empty());
    EXPECT_TRUE(lintFixture("cpu_copy_hot_path_flag.cc",
                            "src/core/machine_arena.cc")
                    .empty());

    // The intentional copies that remain (one checkpoint capture per
    // epoch, the checkpoint microbench) carry allow() comments.
    std::vector<Finding> suppressed = lint::lintFile(
        "src/fixture/allowed.cc",
        "void f(const SmtCpu &cpu) {\n"
        "    // smthill-lint: allow(cpu-copy-hot-path)\n"
        "    SmtCpu checkpoint = cpu;\n"
        "}\n");
    EXPECT_TRUE(suppressed.empty());
}

TEST(Lint, IncludeGuardFixtures)
{
    expectFlagged("include_guard_flag.hh",
                  "src/fixture/include_guard_flag.hh", "include-guard");
    expectClean("include_guard_pass.hh",
                "src/fixture/include_guard_pass.hh");

    // #pragma once violates the house #ifndef convention.
    std::vector<Finding> pragma = lint::lintFile(
        "src/fixture/p.hh", "#pragma once\nstruct P {};\n");
    ASSERT_EQ(pragma.size(), 1u);
    EXPECT_EQ(pragma[0].rule, "include-guard");

    // The guard macro is path-canonical, so the passing content
    // flags when linted under a different path.
    std::vector<Finding> moved = lint::lintFile(
        "src/fixture/renamed.hh", fixture("include_guard_pass.hh"));
    ASSERT_EQ(moved.size(), 1u);
    EXPECT_EQ(moved[0].rule, "include-guard");
}

TEST(Lint, LayeringFixtures)
{
    expectFlagged("layering_flag.cc", "src/pipeline/layering_flag.cc",
                  "layering");
    expectClean("layering_pass.cc", "src/pipeline/layering_pass.cc");

    // The same upward include is legal from the top of the stack.
    std::vector<Finding> fromValidate = lint::lintFile(
        "src/validate/layering_flag.cc", fixture("layering_flag.cc"));
    EXPECT_TRUE(fromValidate.empty());
}

TEST(Lint, SuppressionComment)
{
    // Two matching allows (same line, line above) suppress; the
    // wrong-rule allow does not.
    std::vector<Finding> findings = lintFixture(
        "suppression.cc", "src/fixture/suppression.cc");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "no-libc-random");
    EXPECT_FALSE(
        lint::lexFile(fixture("suppression.cc"))
            .suppressed("no-libc-random", 12))
        << "wrong-rule allow must not suppress";
}

TEST(Lint, FindingsJsonRoundTrip)
{
    std::vector<Finding> findings;
    const std::vector<std::pair<std::string, std::string>> cases = {
        {"no_libc_random_flag.cc",
         "src/fixture/no_libc_random_flag.cc"},
        {"stat_name_flag.cc", "src/fixture/stat_name_flag.cc"},
        {"layering_flag.cc", "src/pipeline/layering_flag.cc"},
    };
    for (const auto &[name, path] : cases) {
        std::vector<Finding> here = lintFixture(name, path);
        findings.insert(findings.end(), here.begin(), here.end());
    }
    ASSERT_FALSE(findings.empty());

    Json doc = lint::findingsToJson(findings);
    EXPECT_EQ(doc.at("schema").asString(), "smthill.lint.v1");

    // Serialize, reparse, and rebuild: bit-identical findings.
    Json reparsed;
    std::string error;
    ASSERT_TRUE(Json::parse(doc.dump(2), reparsed, error)) << error;
    std::vector<Finding> rebuilt;
    ASSERT_TRUE(lint::findingsFromJson(reparsed, rebuilt, error))
        << error;
    EXPECT_EQ(rebuilt, findings);
}

TEST(Lint, FindingsJsonRejectsMalformedDocs)
{
    std::vector<Finding> out;
    std::string error;

    Json wrongSchema = Json::object();
    wrongSchema.set("schema", Json("smthill.report.v1"));
    wrongSchema.set("findings", Json::array());
    EXPECT_FALSE(lint::findingsFromJson(wrongSchema, out, error));
    EXPECT_FALSE(error.empty());

    Json noFindings = Json::object();
    noFindings.set("schema", Json("smthill.lint.v1"));
    EXPECT_FALSE(lint::findingsFromJson(noFindings, out, error));

    Json badEntry = Json::object();
    badEntry.set("schema", Json("smthill.lint.v1"));
    Json arr = Json::array();
    Json item = Json::object();
    item.set("rule", Json("stat-name"));
    arr.push(std::move(item));
    badEntry.set("findings", std::move(arr));
    EXPECT_FALSE(lint::findingsFromJson(badEntry, out, error));
    EXPECT_TRUE(out.empty());
}

TEST(Lint, LintPathsWalksAndReportsErrors)
{
    // The fixture directory lints clean when reached through the
    // walker: directories named `fixtures` are skipped, which is
    // what keeps the tree-wide Lint ctest green.
    std::string error;
    std::vector<Finding> viaParent = lint::lintPaths(
        {std::string(SMTHILL_LINT_FIXTURES) + "/.."}, error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_TRUE(viaParent.empty());

    // Passing the fixture directory explicitly lints its contents.
    std::vector<Finding> direct =
        lint::lintPaths({SMTHILL_LINT_FIXTURES}, error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_FALSE(direct.empty());

    // Unknown paths surface as errors, not findings.
    std::vector<Finding> missing =
        lint::lintPaths({"/nonexistent/smthill"}, error);
    EXPECT_TRUE(missing.empty());
    EXPECT_FALSE(error.empty());
}
