/**
 * @file
 * Unit tests for the bench-export regression gate: direction/noise
 * classification by metric name, self-diff always passing, injected
 * regressions being flagged, threshold overrides, and unmatched
 * entry/metric reporting.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/bench_diff.hh"

namespace smthill
{
namespace
{

/** Minimal sim-speed-shaped document with one benchmark entry. */
Json
speedDoc(double kcycles, double ns_per_iter)
{
    Json doc = Json::object();
    doc.set("schema", Json("smthill.bench.sim-speed.v1"));
    Json rows = Json::array();
    Json row = Json::object();
    row.set("name", Json("BM_CoreCycles/threads:2"));
    row.set("iterations", Json(static_cast<std::uint64_t>(64)));
    row.set("kcycles_per_sec", Json(kcycles));
    row.set("real_ns_per_iter", Json(ns_per_iter));
    rows.push(std::move(row));
    doc.set("benchmarks", std::move(rows));
    return doc;
}

const MetricDelta *
findDelta(const BenchDiffResult &result, const std::string &metric)
{
    for (const MetricDelta &d : result.deltas)
        if (d.metric == metric)
            return &d;
    return nullptr;
}

TEST(BenchDiff, MetricDirectionByName)
{
    EXPECT_EQ(metricDirection("kcycles_per_sec"), 1);
    EXPECT_EQ(metricDirection("items_per_sec"), 1);
    EXPECT_EQ(metricDirection("throughput"), 1);
    EXPECT_EQ(metricDirection("weighted_ipc"), 1);
    EXPECT_EQ(metricDirection("parallel_efficiency"), 1);
    EXPECT_EQ(metricDirection("real_ns_per_iter"), -1);
    EXPECT_EQ(metricDirection("latency_p99"), -1);
    EXPECT_EQ(metricDirection("total_ns"), -1);
    EXPECT_EQ(metricDirection("iterations"), 0);
    EXPECT_EQ(metricDirection("seed"), 0);
}

TEST(BenchDiff, NoisePctByClass)
{
    EXPECT_EQ(metricNoisePct("parallel_efficiency"), 20.0);
    EXPECT_EQ(metricNoisePct("kcycles_per_sec"), 10.0);
    EXPECT_EQ(metricNoisePct("weighted_ipc"), 5.0);
    EXPECT_EQ(metricNoisePct("total_ns"), 50.0);
    EXPECT_EQ(metricNoisePct("real_ns_per_iter"), 10.0);
    EXPECT_EQ(metricNoisePct("iterations"), 0.0);
}

TEST(BenchDiff, SelfDiffNeverRegresses)
{
    Json doc = speedDoc(800.0, 1.25e6);
    BenchDiffResult result;
    std::string error;
    ASSERT_TRUE(diffBenchDocs(doc, doc, 0.0, result, error)) << error;
    EXPECT_FALSE(result.regressed);
    EXPECT_GT(result.gatedMetrics, 0);
    EXPECT_TRUE(result.notes.empty());
    for (const MetricDelta &d : result.deltas)
        EXPECT_EQ(d.deltaPct, 0.0);
}

TEST(BenchDiff, TwentyPercentSlowdownIsFlagged)
{
    Json base = speedDoc(800.0, 1.25e6);
    Json cand = speedDoc(640.0, 1.50e6); // -20% rate, +20% latency
    BenchDiffResult result;
    std::string error;
    ASSERT_TRUE(diffBenchDocs(base, cand, 0.0, result, error)) << error;
    EXPECT_TRUE(result.regressed);

    const MetricDelta *rate = findDelta(result, "kcycles_per_sec");
    ASSERT_NE(rate, nullptr);
    EXPECT_TRUE(rate->regression);
    EXPECT_NEAR(rate->deltaPct, -20.0, 1e-9);

    const MetricDelta *lat = findDelta(result, "real_ns_per_iter");
    ASSERT_NE(lat, nullptr);
    EXPECT_TRUE(lat->regression);

    // Informational fields never gate, whatever they do.
    const MetricDelta *iters = findDelta(result, "iterations");
    ASSERT_NE(iters, nullptr);
    EXPECT_FALSE(iters->regression);
    EXPECT_EQ(iters->direction, 0);
}

TEST(BenchDiff, ImprovementIsNotARegression)
{
    Json base = speedDoc(800.0, 1.25e6);
    Json cand = speedDoc(1000.0, 1.00e6); // +25% rate, -20% latency
    BenchDiffResult result;
    std::string error;
    ASSERT_TRUE(diffBenchDocs(base, cand, 0.0, result, error)) << error;
    EXPECT_FALSE(result.regressed);
}

TEST(BenchDiff, WithinNoiseBandPasses)
{
    Json base = speedDoc(800.0, 1.25e6);
    Json cand = speedDoc(760.0, 1.30e6); // -5% / +4%: inside 10%
    BenchDiffResult result;
    std::string error;
    ASSERT_TRUE(diffBenchDocs(base, cand, 0.0, result, error)) << error;
    EXPECT_FALSE(result.regressed);
}

TEST(BenchDiff, ThresholdOverrideTightensTheGate)
{
    Json base = speedDoc(800.0, 1.25e6);
    Json cand = speedDoc(760.0, 1.25e6); // -5%: inside default 10%
    BenchDiffResult result;
    std::string error;
    ASSERT_TRUE(diffBenchDocs(base, cand, 2.0, result, error)) << error;
    EXPECT_TRUE(result.regressed);
    const MetricDelta *rate = findDelta(result, "kcycles_per_sec");
    ASSERT_NE(rate, nullptr);
    EXPECT_EQ(rate->noisePct, 2.0);
}

TEST(BenchDiff, SchemaMismatchIsNotComparable)
{
    Json base = speedDoc(800.0, 1.25e6);
    Json other = speedDoc(800.0, 1.25e6);
    other.set("schema", Json("smthill.bench.open-system.v1"));
    BenchDiffResult result;
    std::string error;
    EXPECT_FALSE(diffBenchDocs(base, other, 0.0, result, error));
    EXPECT_NE(error.find("schema mismatch"), std::string::npos);

    Json no_schema = Json::object();
    EXPECT_FALSE(diffBenchDocs(no_schema, base, 0.0, result, error));
    EXPECT_FALSE(error.empty());
}

TEST(BenchDiff, UnmatchedEntriesAndMetricsAreNoted)
{
    // base has a second benchmark entry the candidate lacks.
    Json base = Json::object();
    base.set("schema", Json("smthill.bench.sim-speed.v1"));
    Json rows = Json::array();
    Json row0 = Json::object();
    row0.set("name", Json("BM_CoreCycles/threads:2"));
    row0.set("kcycles_per_sec", Json(800.0));
    rows.push(std::move(row0));
    Json row1 = Json::object();
    row1.set("name", Json("BM_HillEpoch"));
    row1.set("kcycles_per_sec", Json(500.0));
    rows.push(std::move(row1));
    base.set("benchmarks", std::move(rows));

    Json extra = speedDoc(800.0, 1.25e6);
    BenchDiffResult result;
    std::string error;
    ASSERT_TRUE(diffBenchDocs(base, extra, 0.0, result, error)) << error;
    // The baseline-only entry is reported but cannot gate.
    EXPECT_FALSE(result.regressed);
    ASSERT_FALSE(result.notes.empty());
    EXPECT_NE(result.notes[0].find("BM_HillEpoch"), std::string::npos);

    // And in reverse, the candidate-only entry is reported as new
    // (after the notes about its missing metrics).
    BenchDiffResult reversed;
    ASSERT_TRUE(diffBenchDocs(extra, base, 0.0, reversed, error))
        << error;
    bool saw_new = false;
    for (const std::string &note : reversed.notes)
        saw_new = saw_new ||
                  note.find("new in candidate") != std::string::npos;
    EXPECT_TRUE(saw_new);
}

TEST(BenchDiff, RenderMentionsVerdict)
{
    Json base = speedDoc(800.0, 1.25e6);
    Json cand = speedDoc(640.0, 1.25e6);
    BenchDiffResult result;
    std::string error;
    ASSERT_TRUE(diffBenchDocs(base, cand, 0.0, result, error)) << error;
    std::string text = renderBenchDiff(result);
    EXPECT_NE(text.find("REGRESSION"), std::string::npos);
    EXPECT_NE(text.find("kcycles_per_sec"), std::string::npos);

    BenchDiffResult clean;
    ASSERT_TRUE(diffBenchDocs(base, base, 0.0, clean, error)) << error;
    EXPECT_NE(renderBenchDiff(clean).find("no regression"),
              std::string::npos);
}

} // namespace
} // namespace smthill
