/**
 * @file
 * Unit tests for the remaining related-work policies of Section 2:
 * DG, PDG, and the STALL-FLUSH hybrid.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "policy/dg.hh"
#include "policy/flush.hh"
#include "policy/stall_flush.hh"
#include "trace/program_profile.hh"

namespace smthill
{
namespace
{

ProgramProfile
profileWith(double p_cold, const char *name)
{
    ProfileParams pp;
    pp.name = name;
    pp.numBlocks = 12;
    pp.avgBlockLen = 8;
    pp.pLoadCold = p_cold;
    pp.pLoadWarm = p_cold > 0.0 ? 0.05 : 0.0;
    pp.meanDepDist = 16;
    pp.serialFrac = 0.15;
    return buildProfile(pp);
}

SmtCpu
mixedCpu()
{
    SmtConfig cfg;
    cfg.numThreads = 2;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(profileWith(0.2, "mem"), 0);
    gens.emplace_back(profileWith(0.0, "ilp"), 1);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(300000);
    return cpu;
}

TEST(Dg, GatesOnOutstandingMisses)
{
    SmtCpu cpu = mixedCpu();
    DgPolicy p(1);
    p.attach(cpu);
    int gated0 = 0, gated1 = 0;
    for (int i = 0; i < 60000; ++i) {
        p.cycle(cpu);
        cpu.step();
        gated0 += cpu.fetchLocked(0);
        gated1 += cpu.fetchLocked(1);
    }
    EXPECT_GT(gated0, 5000) << "the missing thread is gated often";
    EXPECT_LT(gated1, gated0 / 4) << "the clean thread rarely gates";
    EXPECT_GT(cpu.stats().committed[0], 100u);
    EXPECT_EQ(cpu.stats().flushed[0], 0u) << "DG never squashes";
}

TEST(Dg, ThresholdLoosensGating)
{
    SmtCpu base = mixedCpu();
    int gated[2] = {0, 0};
    int idx = 0;
    for (int threshold : {1, 4}) {
        SmtCpu cpu = base;
        DgPolicy p(threshold);
        p.attach(cpu);
        for (int i = 0; i < 40000; ++i) {
            p.cycle(cpu);
            cpu.step();
            gated[idx] += cpu.fetchLocked(0);
        }
        ++idx;
    }
    EXPECT_GT(gated[0], gated[1])
        << "a higher miss threshold gates less";
}

TEST(Dg, RejectsBadThreshold)
{
    EXPECT_DEATH(DgPolicy p(0), "threshold");
}

TEST(Pdg, PredictorLearnsMissPcs)
{
    PdgPolicy p;
    Addr missing = 0x1000, hitting = 0x2000;
    for (int i = 0; i < 4; ++i) {
        p.train(0, missing, true);
        p.train(0, hitting, false);
    }
    EXPECT_TRUE(p.predictsMiss(0, missing));
    EXPECT_FALSE(p.predictsMiss(0, hitting));
}

TEST(Pdg, TablesArePerThread)
{
    PdgPolicy p;
    Addr pc = 0x3000;
    for (int i = 0; i < 4; ++i)
        p.train(0, pc, true);
    EXPECT_TRUE(p.predictsMiss(0, pc));
    EXPECT_FALSE(p.predictsMiss(1, pc));
}

TEST(Pdg, GatesTheMissingThread)
{
    SmtCpu cpu = mixedCpu();
    PdgPolicy p;
    p.attach(cpu);
    int gated0 = 0, gated1 = 0;
    for (int i = 0; i < 80000; ++i) {
        p.cycle(cpu);
        cpu.step();
        gated0 += cpu.fetchLocked(0);
        gated1 += cpu.fetchLocked(1);
    }
    EXPECT_GT(gated0, 5000);
    EXPECT_LT(gated1, gated0 / 4);
    EXPECT_GT(cpu.stats().committed[0], 100u) << "no deadlock";
    EXPECT_GT(cpu.stats().committed[1], 10000u);
}

TEST(Pdg, RejectsNonPow2Table)
{
    EXPECT_DEATH(PdgPolicy p(1000), "power of two");
}

TEST(StallFlush, FlushesLessThanFlush)
{
    SmtCpu a = mixedCpu();
    FlushPolicy flush;
    flush.attach(a);
    for (int i = 0; i < 100000; ++i) {
        flush.cycle(a);
        a.step();
    }

    SmtCpu b = mixedCpu();
    StallFlushPolicy hybrid;
    hybrid.attach(b);
    for (int i = 0; i < 100000; ++i) {
        hybrid.cycle(b);
        b.step();
    }

    EXPECT_LT(hybrid.flushedInsts(), flush.flushedInsts())
        << "the hybrid's whole point is fewer squashed instructions";
    EXPECT_GT(b.stats().committedTotal(), 10000u);
}

TEST(StallFlush, PressureThresholdControlsFlushing)
{
    // A looser pressure threshold must flush at least as much as a
    // tight one; both must keep the machine progressing.
    SmtCpu base = mixedCpu();
    std::uint64_t flushed_loose = 0, flushed_tight = 0;
    {
        SmtCpu cpu = base;
        StallFlushPolicy loose(20, 0.5);
        loose.attach(cpu);
        for (int i = 0; i < 60000; ++i) {
            loose.cycle(cpu);
            cpu.step();
        }
        flushed_loose = loose.flushedInsts();
        EXPECT_GT(cpu.stats().committedTotal(), 10000u);
    }
    {
        SmtCpu cpu = base;
        StallFlushPolicy tight(20, 1.0);
        tight.attach(cpu);
        for (int i = 0; i < 60000; ++i) {
            tight.cycle(cpu);
            cpu.step();
        }
        flushed_tight = tight.flushedInsts();
        EXPECT_GT(cpu.stats().committedTotal(), 10000u);
    }
    EXPECT_GE(flushed_loose, flushed_tight);
}

TEST(StallFlush, RejectsBadPressure)
{
    EXPECT_DEATH(StallFlushPolicy p(20, 0.0), "pressure");
    EXPECT_DEATH(StallFlushPolicy p2(20, 1.5), "pressure");
}

TEST(RelatedPolicies, NamesAndClones)
{
    DgPolicy dg;
    PdgPolicy pdg;
    StallFlushPolicy sf;
    EXPECT_EQ(dg.name(), "DG");
    EXPECT_EQ(pdg.name(), "PDG");
    EXPECT_EQ(sf.name(), "STALL-FLUSH");
    EXPECT_EQ(dg.clone()->name(), "DG");
    EXPECT_EQ(pdg.clone()->name(), "PDG");
    EXPECT_EQ(sf.clone()->name(), "STALL-FLUSH");
}

} // namespace
} // namespace smthill
