/**
 * @file
 * Unit tests for periodic stat snapshots: StatDistribution quantile
 * estimates (exact nearest-rank below the reservoir cap, strided
 * estimates above it), delta-row semantics of StatSnapshotter, the
 * streaming JSONL sink, and exact JSONL round-trips.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "common/stat_registry.hh"
#include "common/stat_snapshot.hh"

namespace smthill
{
namespace
{

TEST(Snapshot, DistributionQuantilesExactBelowCap)
{
    StatDistribution d;
    for (int v = 1; v <= 100; ++v)
        d.add(static_cast<double>(v));
    // Nearest-rank over 1..100: q*(n-1)+0.5 rounds to index 50 / 94.
    EXPECT_EQ(d.p50(), 51.0);
    EXPECT_EQ(d.p95(), 95.0);
    EXPECT_EQ(d.quantile(0.0), 1.0);
    EXPECT_EQ(d.quantile(1.0), 100.0);
    EXPECT_EQ(d.min(), 1.0);
    EXPECT_EQ(d.max(), 100.0);
}

TEST(Snapshot, DistributionQuantileOfEmptyIsZero)
{
    StatDistribution d;
    EXPECT_EQ(d.p50(), 0.0);
    EXPECT_EQ(d.quantile(0.9), 0.0);
}

TEST(Snapshot, DistributionQuantilesSurviveDecimation)
{
    // Four times the reservoir cap forces at least two stride
    // doublings; the strided subset still tracks the underlying
    // uniform ramp closely.
    StatDistribution d;
    const int n = static_cast<int>(StatDistribution::kSampleCap) * 4;
    for (int v = 1; v <= n; ++v)
        d.add(static_cast<double>(v));
    EXPECT_EQ(d.count(), static_cast<std::uint64_t>(n));
    EXPECT_EQ(d.min(), 1.0);
    EXPECT_EQ(d.max(), static_cast<double>(n));
    EXPECT_NEAR(d.p50(), 0.50 * n, 0.02 * n);
    EXPECT_NEAR(d.p95(), 0.95 * n, 0.02 * n);
}

TEST(Snapshot, DistributionResetClearsReservoir)
{
    StatDistribution d;
    for (int v = 0; v < 10; ++v)
        d.add(5.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.p50(), 0.0);
    d.add(7.0);
    EXPECT_EQ(d.p50(), 7.0);
}

TEST(Snapshot, RegistryJsonCarriesQuantiles)
{
    StatRegistry reg;
    StatDistribution &d = reg.distribution("smthill.test.lat");
    for (int v = 1; v <= 100; ++v)
        d.add(static_cast<double>(v));

    Json doc = reg.toJson();
    const Json &dj = doc.at("smthill.test.lat");
    EXPECT_EQ(dj.at("count").asDouble(), 100.0);
    EXPECT_EQ(dj.at("min").asDouble(), 1.0);
    EXPECT_EQ(dj.at("p50").asDouble(), 51.0);
    EXPECT_EQ(dj.at("p95").asDouble(), 95.0);
    EXPECT_EQ(dj.at("max").asDouble(), 100.0);

    // The document reparses to the identical value (exact doubles).
    Json back;
    std::string error;
    ASSERT_TRUE(Json::parse(doc.dump(2), back, error)) << error;
    EXPECT_EQ(back, doc);
}

TEST(Snapshot, CounterRowsAreDeltas)
{
    StatRegistry reg;
    StatCounter &hits = reg.counter("smthill.test.hits");
    StatCounter &misses = reg.counter("smthill.test.misses");
    StatSnapshotter snap(reg);

    hits.add(10);
    misses.add(3);
    Json r0 = snap.sample(0, 1000);
    EXPECT_EQ(r0.at("seq").asDouble(), 0.0);
    EXPECT_EQ(r0.at("epoch").asDouble(), 0.0);
    EXPECT_EQ(r0.at("cycle").asDouble(), 1000.0);
    EXPECT_EQ(r0.at("counters").at("smthill.test.hits").asDouble(),
              10.0);
    EXPECT_EQ(r0.at("counters").at("smthill.test.misses").asDouble(),
              3.0);

    // Only movement shows up: misses is flat, so its key vanishes.
    hits.add(7);
    Json r1 = snap.sample(1, 2000);
    EXPECT_EQ(r1.at("seq").asDouble(), 1.0);
    EXPECT_EQ(r1.at("counters").at("smthill.test.hits").asDouble(), 7.0);
    EXPECT_FALSE(r1.at("counters").contains("smthill.test.misses"));

    // A reset between samples re-baselines instead of underflowing.
    reg.resetValues();
    hits.add(2);
    Json r2 = snap.sample(2, 3000);
    EXPECT_EQ(r2.at("counters").at("smthill.test.hits").asDouble(), 2.0);
}

TEST(Snapshot, GaugesAreLevelsAndDistsCumulative)
{
    StatRegistry reg;
    StatGauge &depth = reg.gauge("smthill.test.depth");
    StatDistribution &lat = reg.distribution("smthill.test.lat");
    StatSnapshotter snap(reg);

    depth.set(4.0);
    Json r0 = snap.sample(0, 0);
    EXPECT_EQ(r0.at("gauges").at("smthill.test.depth").asDouble(), 4.0);
    // A distribution with no samples yet is omitted, not zero-filled.
    EXPECT_FALSE(r0.at("dists").contains("smthill.test.lat"));

    lat.add(10.0);
    lat.add(20.0);
    depth.set(1.5);
    Json r1 = snap.sample(1, 0);
    EXPECT_EQ(r1.at("gauges").at("smthill.test.depth").asDouble(), 1.5);
    const Json &dj = r1.at("dists").at("smthill.test.lat");
    EXPECT_EQ(dj.at("count").asDouble(), 2.0);
    EXPECT_EQ(dj.at("mean").asDouble(), 15.0);
    EXPECT_EQ(dj.at("min").asDouble(), 10.0);
    EXPECT_EQ(dj.at("max").asDouble(), 20.0);
}

TEST(Snapshot, StreamingSinkMatchesToJsonl)
{
    StatRegistry reg;
    StatCounter &c = reg.counter("smthill.test.ticks");
    StatSnapshotter snap(reg);

    std::ostringstream stream;
    snap.streamTo(&stream);
    c.add(5);
    snap.sample(0, 100);
    c.add(5);
    snap.sample(1, 200);
    snap.streamTo(nullptr);

    // The streamed bytes are exactly the batch serialization: a
    // killed run's partial file is a prefix of the full series.
    EXPECT_EQ(stream.str(), snap.toJsonl());
    EXPECT_EQ(snap.rows().size(), 2u);
}

TEST(Snapshot, JsonlRoundTripIsExact)
{
    StatRegistry reg;
    StatCounter &c = reg.counter("smthill.test.work");
    StatGauge &g = reg.gauge("smthill.test.level");
    StatDistribution &d = reg.distribution("smthill.test.lat");
    StatSnapshotter snap(reg);
    for (int e = 0; e < 4; ++e) {
        c.add(static_cast<std::uint64_t>(e) * 3 + 1);
        g.set(0.25 * e);
        d.add(static_cast<double>(e) + 0.5);
        snap.sample(static_cast<std::uint64_t>(e),
                    static_cast<std::uint64_t>(e) * 8192);
    }

    const std::string text = snap.toJsonl();
    std::vector<Json> rows;
    std::string error;
    ASSERT_TRUE(StatSnapshotter::fromJsonlText(text, rows, error))
        << error;
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(StatSnapshotter::rowsToJsonl(rows), text);
}

TEST(Snapshot, FromJsonlRejectsBadStreams)
{
    std::vector<Json> rows;
    std::string error;

    EXPECT_FALSE(StatSnapshotter::fromJsonlText("", rows, error));
    EXPECT_FALSE(error.empty());

    EXPECT_FALSE(StatSnapshotter::fromJsonlText(
        "{\"schema\":\"smthill.events.v1\"}\n", rows, error));

    // Header fine, row missing required fields.
    std::string text = StatSnapshotter::headerLine() + "\n" +
                       "{\"seq\":0,\"epoch\":0}\n";
    EXPECT_FALSE(StatSnapshotter::fromJsonlText(text, rows, error));
    EXPECT_NE(error.find("line 2"), std::string::npos);

    // Unparsable JSON line is reported with its line number.
    text = StatSnapshotter::headerLine() + "\n{not json\n";
    EXPECT_FALSE(StatSnapshotter::fromJsonlText(text, rows, error));
    EXPECT_NE(error.find("line 2"), std::string::npos);
}

} // namespace
} // namespace smthill
