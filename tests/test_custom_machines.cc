/**
 * @file
 * Pipeline validation on non-default machine configurations: do the
 * structural parameters actually bind? Commit width caps IPC, memory
 * ports cap load throughput, a single fetch thread serializes the
 * front end, tiny windows strangle MLP, and slower memory hurts
 * memory-bound threads more than ILP threads.
 */

#include <gtest/gtest.h>

#include "pipeline/cpu.hh"
#include "trace/program_profile.hh"

namespace smthill
{
namespace
{

ProgramProfile
ilpProfile(const char *name = "ilp")
{
    ProfileParams pp;
    pp.name = name;
    pp.numBlocks = 12;
    pp.avgBlockLen = 10;
    pp.serialFrac = 0.05;
    pp.meanDepDist = 24;
    pp.pLoadWarm = 0.0;
    pp.randomBranchFrac = 0.0;
    return buildProfile(pp);
}

ProgramProfile
memProfile(const char *name = "mem")
{
    ProfileParams pp;
    pp.name = name;
    pp.numBlocks = 12;
    pp.avgBlockLen = 10;
    pp.pLoadCold = 0.10;
    pp.burstProb = 0.8;
    pp.burstMax = 8;
    pp.serialFrac = 0.05;
    pp.meanDepDist = 30;
    return buildProfile(pp);
}

double
soloIpcOn(const SmtConfig &cfg, const ProgramProfile &prof,
          Cycle warm = 300000, Cycle measure = 200000)
{
    std::vector<StreamGenerator> gens;
    gens.emplace_back(prof, 0);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(warm);
    auto before = cpu.stats().committed[0];
    cpu.run(measure);
    return static_cast<double>(cpu.stats().committed[0] - before) /
           static_cast<double>(measure);
}

TEST(CustomMachine, CommitWidthCapsIpc)
{
    SmtConfig narrow;
    narrow.numThreads = 1;
    narrow.commitWidth = 2;
    double ipc = soloIpcOn(narrow, ilpProfile());
    EXPECT_LE(ipc, 2.0);
    EXPECT_GT(ipc, 1.0) << "the cap should actually be approached";

    SmtConfig wide;
    wide.numThreads = 1;
    double wide_ipc = soloIpcOn(wide, ilpProfile());
    EXPECT_GT(wide_ipc, ipc) << "8-wide commit must beat 2-wide";
}

TEST(CustomMachine, IssueWidthCapsIpc)
{
    SmtConfig narrow;
    narrow.numThreads = 1;
    narrow.issueWidth = 2;
    double ipc = soloIpcOn(narrow, ilpProfile());
    EXPECT_LE(ipc, 2.0);
}

TEST(CustomMachine, MemPortsBindLoadThroughput)
{
    // An ILP profile with ~36% memory ops: one port vs four.
    SmtConfig one_port;
    one_port.numThreads = 1;
    one_port.memPorts = 1;
    SmtConfig four_ports;
    four_ports.numThreads = 1;
    double one = soloIpcOn(one_port, ilpProfile());
    double four = soloIpcOn(four_ports, ilpProfile());
    EXPECT_GT(four, one * 1.1);
    // With one port, total IPC can't exceed ~1/memFraction.
    EXPECT_LT(one, 1.0 / 0.30);
}

TEST(CustomMachine, SmallWindowStranglesMlp)
{
    SmtConfig small;
    small.numThreads = 1;
    small.intRegs = 32;
    small.robSize = 64;
    small.intIqSize = 16;
    small.lsqSize = 32;
    SmtConfig big;
    big.numThreads = 1;
    double small_ipc = soloIpcOn(small, memProfile());
    double big_ipc = soloIpcOn(big, memProfile());
    EXPECT_GT(big_ipc, small_ipc * 1.5)
        << "a bursty-MLP thread must benefit strongly from window";
}

TEST(CustomMachine, MemoryLatencyHurtsMemMoreThanIlp)
{
    SmtConfig fast;
    fast.numThreads = 1;
    SmtConfig slow = fast;
    slow.mem.memFirstChunk = 600;

    double ilp_fast = soloIpcOn(fast, ilpProfile());
    double ilp_slow = soloIpcOn(slow, ilpProfile());
    double mem_fast = soloIpcOn(fast, memProfile());
    double mem_slow = soloIpcOn(slow, memProfile());

    double ilp_loss = 1.0 - ilp_slow / ilp_fast;
    double mem_loss = 1.0 - mem_slow / mem_fast;
    EXPECT_LT(ilp_loss, 0.10) << "DL1-resident code barely notices";
    EXPECT_GT(mem_loss, ilp_loss + 0.10);
}

TEST(CustomMachine, SingleFetchThreadStillWorks)
{
    SmtConfig cfg;
    cfg.numThreads = 2;
    cfg.fetchThreadsPerCycle = 1; // ICOUNT.1.8
    std::vector<StreamGenerator> gens;
    gens.emplace_back(ilpProfile("a"), 0);
    gens.emplace_back(ilpProfile("b"), 1);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(200000);
    EXPECT_GT(cpu.stats().committed[0], 20000u);
    EXPECT_GT(cpu.stats().committed[1], 20000u);
}

TEST(CustomMachine, Icount28BeatsIcount18OnIlpPair)
{
    // Two fetch threads per cycle exploit fetch fragmentation
    // (groups end at taken branches), the classic ICOUNT.2.8 result.
    auto run = [](int fetch_threads) {
        SmtConfig cfg;
        cfg.numThreads = 2;
        cfg.fetchThreadsPerCycle = fetch_threads;
        std::vector<StreamGenerator> gens;
        gens.emplace_back(ilpProfile("a"), 0);
        gens.emplace_back(ilpProfile("b"), 1);
        SmtCpu cpu(cfg, std::move(gens));
        cpu.run(300000);
        auto before = cpu.stats().committedTotal();
        cpu.run(200000);
        return static_cast<double>(cpu.stats().committedTotal() -
                                   before);
    };
    EXPECT_GT(run(2), run(1) * 1.02);
}

TEST(CustomMachine, ZeroCycleRunIsNoop)
{
    SmtConfig cfg;
    cfg.numThreads = 1;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(ilpProfile(), 0);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(0);
    EXPECT_EQ(cpu.now(), 0u);
    EXPECT_EQ(cpu.stats().committedTotal(), 0u);
}

TEST(CustomMachine, EightContextsRun)
{
    SmtConfig cfg;
    cfg.numThreads = 8;
    std::vector<StreamGenerator> gens;
    for (int i = 0; i < 8; ++i)
        gens.emplace_back(i % 2 ? ilpProfile("i") : memProfile("m"), i);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(100000);
    for (int i = 0; i < 8; ++i)
        EXPECT_GT(cpu.stats().committed[i], 500u) << i;
}

TEST(CustomMachine, RejectsTooManyThreads)
{
    SmtConfig cfg;
    cfg.numThreads = 9;
    EXPECT_DEATH(cfg.validate(), "numThreads");
}

TEST(CustomMachine, LongerL2LatencyLowersWarmIpc)
{
    ProfileParams pp;
    pp.name = "warm";
    pp.numBlocks = 12;
    pp.avgBlockLen = 10;
    pp.pLoadWarm = 0.2; // lots of L2 traffic
    pp.serialFrac = 0.3;
    SmtConfig fast;
    fast.numThreads = 1;
    SmtConfig slow = fast;
    slow.mem.l2Latency = 60;
    double f = soloIpcOn(fast, buildProfile(pp));
    double s = soloIpcOn(slow, buildProfile(pp));
    EXPECT_GT(f, s * 1.05);
}

} // namespace
} // namespace smthill
