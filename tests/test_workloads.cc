/**
 * @file
 * Unit tests for the Table 3 multiprogrammed workloads.
 */

#include <gtest/gtest.h>

#include <set>

#include "trace/spec_profiles.hh"
#include "workload/workloads.hh"

namespace smthill
{
namespace
{

TEST(Workloads, FortyTwoTotal)
{
    EXPECT_EQ(allWorkloads().size(), 42u);
    EXPECT_EQ(twoThreadWorkloads().size(), 21u);
    EXPECT_EQ(fourThreadWorkloads().size(), 21u);
}

TEST(Workloads, SevenPerGroup)
{
    for (const auto &g : workloadGroups())
        EXPECT_EQ(workloadsInGroup(g).size(), 7u) << g;
}

TEST(Workloads, GroupThreadCountsConsistent)
{
    for (const auto &w : allWorkloads()) {
        bool four = w.group.back() == '4';
        EXPECT_EQ(w.numThreads(), four ? 4 : 2) << w.name;
    }
}

TEST(Workloads, AllBenchmarksExist)
{
    for (const auto &w : allWorkloads())
        for (const auto &b : w.benchmarks)
            EXPECT_TRUE(isSpecBenchmark(b)) << w.name << ": " << b;
}

TEST(Workloads, GroupCompositionMatchesCategories)
{
    // ILP groups contain only ILP benchmarks; MEM groups only MEM;
    // MIX groups contain at least one of each.
    for (const auto &w : allWorkloads()) {
        int mem = 0;
        for (const auto &b : w.benchmarks)
            mem += specInfo(b).isMem;
        if (w.group.rfind("ILP", 0) == 0)
            EXPECT_EQ(mem, 0) << w.name;
        else if (w.group.rfind("MEM", 0) == 0)
            // Table 3's MEM4 rows include parser (an ILP benchmark)
            // twice, so MEM groups are "all but at most one" MEM.
            EXPECT_GE(mem, w.numThreads() - 1) << w.name;
        else {
            EXPECT_GT(mem, 0) << w.name;
            EXPECT_LT(mem, w.numThreads()) << w.name;
        }
    }
}

TEST(Workloads, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &w : allWorkloads())
        EXPECT_TRUE(names.insert(w.name).second) << w.name;
}

TEST(Workloads, PaperRscSumsSpotChecks)
{
    // Table 3 lists the summed Table 2 "Rsc" values.
    EXPECT_EQ(workloadByName("apsi-eon").paperRscSum(), 127 + 82);
    EXPECT_EQ(workloadByName("art-mcf").paperRscSum(), 176 + 97);
    EXPECT_EQ(workloadByName("swim-mcf").paperRscSum(), 213 + 97);
    EXPECT_EQ(workloadByName("apsi-gap-wupwise-perlbmk").paperRscSum(),
              127 + 208 + 161 + 59);
    EXPECT_EQ(workloadByName("art-mcf-vpr-swim").paperRscSum(),
              176 + 97 + 180 + 213);
}

TEST(Workloads, LookupByNameWorks)
{
    const Workload &w = workloadByName("art-mcf");
    EXPECT_EQ(w.group, "MEM2");
    ASSERT_EQ(w.benchmarks.size(), 2u);
    EXPECT_EQ(w.benchmarks[0], "art");
    EXPECT_EQ(w.benchmarks[1], "mcf");
}

TEST(Workloads, UnknownLookupDies)
{
    EXPECT_DEATH(workloadByName("quake3-doom"), "unknown workload");
    EXPECT_DEATH(workloadsInGroup("ILP9"), "unknown workload group");
}

TEST(Workloads, MakeGeneratorsProducesOnePerThread)
{
    const Workload &w = workloadByName("art-mcf-swim-twolf");
    auto gens = w.makeGenerators();
    ASSERT_EQ(gens.size(), 4u);
    EXPECT_EQ(gens[0].profile().name, "art");
    EXPECT_EQ(gens[3].profile().name, "twolf");
}

TEST(Workloads, SeedSaltVariesStreams)
{
    const Workload &w = workloadByName("art-mcf");
    auto a = w.makeGenerators(0);
    auto b = w.makeGenerators(1);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a[0].next().effAddr == b[0].next().effAddr;
    EXPECT_LT(same, 100);
}

TEST(Workloads, ReconstructedRowsAreMarked)
{
    int reconstructed = 0;
    for (const auto &w : allWorkloads())
        reconstructed += w.reconstructed;
    EXPECT_EQ(reconstructed, 4) << "exactly the 4 illegible 4-thread "
                                   "rows are reconstructions";
    // All 2-thread and all MEM4 rows are verbatim.
    for (const auto &w : allWorkloads()) {
        if (w.numThreads() == 2 || w.group == "MEM4") {
            EXPECT_FALSE(w.reconstructed) << w.name;
        }
    }
}

} // namespace
} // namespace smthill
