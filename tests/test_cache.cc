/**
 * @file
 * Unit tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include "memory/cache.hh"

namespace smthill
{
namespace
{

CacheConfig
smallCache()
{
    return CacheConfig{"t", 1024, 64, 2}; // 8 sets, 2 ways
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.hits(), 1u);
}

TEST(Cache, SameLineDifferentOffsetsHit)
{
    Cache c(smallCache());
    c.access(0x1000, false);
    EXPECT_TRUE(c.access(0x103f, false).hit);
    EXPECT_FALSE(c.access(0x1040, false).hit) << "next line is distinct";
}

TEST(Cache, LruEvictionWithinSet)
{
    Cache c(smallCache()); // 2 ways
    Addr set_stride = 8 * 64; // 8 sets
    Addr a = 0x0, b = a + set_stride, d = a + 2 * set_stride;
    c.access(a, false);
    c.access(b, false);
    c.access(d, false); // evicts a (LRU)
    EXPECT_FALSE(c.access(a, false).hit);
    EXPECT_TRUE(c.access(d, false).hit);
}

TEST(Cache, AccessRefreshesLru)
{
    Cache c(smallCache());
    Addr set_stride = 8 * 64;
    Addr a = 0x0, b = a + set_stride, d = a + 2 * set_stride;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false); // a becomes MRU
    c.access(d, false); // evicts b
    EXPECT_TRUE(c.access(a, false).hit);
    EXPECT_FALSE(c.access(b, false).hit);
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache c(smallCache());
    Addr set_stride = 8 * 64;
    c.access(0x0, true); // dirty
    c.access(0x0 + set_stride, false);
    auto res = c.access(0x0 + 2 * set_stride, false); // evicts dirty
    EXPECT_TRUE(res.writebackVictim);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache c(smallCache());
    Addr set_stride = 8 * 64;
    c.access(0x0, false);
    c.access(0x0 + set_stride, false);
    auto res = c.access(0x0 + 2 * set_stride, false);
    EXPECT_FALSE(res.writebackVictim);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache c(smallCache());
    Addr set_stride = 8 * 64;
    c.access(0x0, false);  // clean fill
    c.access(0x0, true);   // write hit -> dirty
    c.access(0x0 + set_stride, false);
    auto res = c.access(0x0 + 2 * set_stride, false);
    EXPECT_TRUE(res.writebackVictim);
}

TEST(Cache, ProbeDoesNotAllocate)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_EQ(c.misses(), 0u);
    c.access(0x1000, false);
    EXPECT_TRUE(c.probe(0x1000));
}

TEST(Cache, FlushAllInvalidates)
{
    Cache c(smallCache());
    c.access(0x1000, false);
    c.flushAll();
    EXPECT_FALSE(c.probe(0x1000));
}

TEST(Cache, CapacityIsRespected)
{
    Cache c(smallCache()); // 16 lines total
    for (Addr a = 0; a < 17 * 64; a += 64)
        c.access(a, false);
    int resident = 0;
    for (Addr a = 0; a < 17 * 64; a += 64)
        resident += c.probe(a);
    EXPECT_LE(resident, 16);
}

TEST(Cache, Table1GeometriesConstruct)
{
    Cache il1(CacheConfig{"il1", 64 * 1024, 64, 2});
    Cache dl1(CacheConfig{"dl1", 64 * 1024, 64, 2});
    Cache ul2(CacheConfig{"ul2", 1024 * 1024, 64, 4});
    EXPECT_EQ(il1.numSets(), 512u);
    EXPECT_EQ(ul2.numSets(), 4096u);
}

TEST(Cache, CopyPreservesContents)
{
    Cache c(smallCache());
    c.access(0x40, true);
    Cache copy = c;
    EXPECT_TRUE(copy.probe(0x40));
    // Mutating the copy must not affect the original.
    Addr set_stride = 8 * 64;
    copy.access(0x40 + set_stride, false);
    copy.access(0x40 + 2 * set_stride, false);
    EXPECT_FALSE(copy.probe(0x40));
    EXPECT_TRUE(c.probe(0x40));
}

} // namespace
} // namespace smthill
