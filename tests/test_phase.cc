/**
 * @file
 * Unit tests for the phase machinery: BBVs, phase table, Markov
 * predictor, and phase-based hill climbing (Section 5).
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "phase/bbv.hh"
#include "phase/markov_predictor.hh"
#include "phase/phase_hill.hh"
#include "phase/phase_table.hh"

namespace smthill
{
namespace
{

TEST(Bbv, HarvestNormalizes)
{
    BbvAccumulator acc(2);
    acc.record(0, 3, 10);
    acc.record(0, 5, 30);
    acc.record(1, 3, 60);
    EXPECT_EQ(acc.accumulated(), 100u);
    BbvSignature sig = acc.harvest();
    double sum = 0;
    for (double w : sig.weights)
        sum += w;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_EQ(sig.weights.size(), 2u * kBbvEntries);
    EXPECT_EQ(acc.accumulated(), 0u) << "harvest resets";
}

TEST(Bbv, DistanceZeroForIdentical)
{
    BbvAccumulator a(1), b(1);
    for (int i = 0; i < 10; ++i) {
        a.record(0, i, 5);
        b.record(0, i, 5);
    }
    EXPECT_NEAR(a.harvest().distance(b.harvest()), 0.0, 1e-12);
}

TEST(Bbv, DistanceLargeForDisjointBlocks)
{
    BbvAccumulator a(1), b(1);
    a.record(0, 1, 100);
    b.record(0, 2, 100);
    double d = a.harvest().distance(b.harvest());
    EXPECT_NEAR(d, 2.0, 1e-9) << "disjoint unit vectors are 2 apart";
}

TEST(Bbv, ThreadsOccupySeparateRegions)
{
    BbvAccumulator a(2), b(2);
    a.record(0, 1, 100);
    b.record(1, 1, 100);
    EXPECT_NEAR(a.harvest().distance(b.harvest()), 2.0, 1e-9);
}

TEST(Bbv, EmptyHarvestIsSafe)
{
    BbvAccumulator acc(1);
    BbvSignature sig = acc.harvest();
    double sum = 0;
    for (double w : sig.weights)
        sum += w;
    EXPECT_DOUBLE_EQ(sum, 0.0);
}

BbvSignature
sigFor(int hot_block, int threads = 1)
{
    BbvAccumulator acc(threads);
    acc.record(0, hot_block, 100);
    acc.record(0, hot_block + 17, 10);
    return acc.harvest();
}

TEST(PhaseTable, SameSignatureSameId)
{
    PhaseTable table;
    int a = table.classify(sigFor(1));
    int b = table.classify(sigFor(1));
    EXPECT_EQ(a, b);
    EXPECT_EQ(table.size(), 1);
}

TEST(PhaseTable, DifferentSignaturesDifferentIds)
{
    PhaseTable table;
    int a = table.classify(sigFor(1));
    int b = table.classify(sigFor(30));
    EXPECT_NE(a, b);
    EXPECT_EQ(table.size(), 2);
}

TEST(PhaseTable, NearbySignaturesMatch)
{
    PhaseTable table(128, 0.5);
    BbvAccumulator a(1), b(1);
    a.record(0, 1, 100);
    a.record(0, 2, 10);
    b.record(0, 1, 100);
    b.record(0, 2, 14); // slightly different weighting
    int ia = table.classify(a.harvest());
    int ib = table.classify(b.harvest());
    EXPECT_EQ(ia, ib);
}

TEST(PhaseTable, LruRecyclingWhenFull)
{
    PhaseTable table(2, 0.1);
    int a = table.classify(sigFor(1));
    table.classify(sigFor(20));
    table.classify(sigFor(40)); // recycles the LRU entry (block 1)
    EXPECT_EQ(table.size(), 2);
    int a2 = table.classify(sigFor(1));
    EXPECT_NE(a, a2) << "block-1 phase was evicted and re-founded";
}

TEST(PhaseTable, IdsStayBoundedByCapacity)
{
    // Regression (fuzzer stage B): recycling used to mint a fresh
    // nextId++ for every evicted entry, so an arbitrary signature
    // stream grew phase IDs without bound — and with them every
    // structure keyed by phase ID. A recycled slot keeps its ID.
    PhaseTable table(4, 0.05);
    for (int i = 0; i < 40; ++i) {
        int id = table.classify(sigFor(i * 3 + 1));
        EXPECT_GE(id, 0);
        EXPECT_LT(id, 4) << "phase ID escaped the table capacity";
    }
    EXPECT_LE(table.size(), 4);
}

TEST(PhaseTable, RecycledFlagSignalsStaleId)
{
    PhaseTable table(1, 0.05);
    bool recycled = true;
    int a = table.classify(sigFor(1), &recycled);
    EXPECT_FALSE(recycled) << "first insert does not recycle";
    int b = table.classify(sigFor(30), &recycled);
    EXPECT_TRUE(recycled) << "eviction must be visible to consumers";
    EXPECT_EQ(a, b) << "the slot keeps its ID across recycling";
    bool again = true;
    table.classify(sigFor(30), &again);
    EXPECT_FALSE(again) << "a plain hit does not recycle";
}

TEST(Markov, LearnsAlternation)
{
    MarkovPhasePredictor mp(256);
    // Pattern: 3 epochs of phase 0, then 2 of phase 1, repeated.
    for (int rep = 0; rep < 30; ++rep) {
        for (int i = 0; i < 3; ++i)
            mp.observe(0);
        for (int i = 0; i < 2; ++i)
            mp.observe(1);
    }
    // At the end of a full cycle the next phase is 0; feed 3 zeros
    // and expect it to predict the switch to 1.
    mp.observe(0);
    mp.observe(0);
    EXPECT_EQ(mp.predict(), 0) << "mid-run predicts continuation";
    mp.observe(0);
    EXPECT_EQ(mp.predict(), 1) << "end of run-length-3 predicts switch";
}

TEST(Markov, FallbackIsLastValue)
{
    MarkovPhasePredictor mp(256);
    mp.observe(7);
    EXPECT_EQ(mp.predict(), 7);
}

TEST(Markov, ColdStartSaysDontKnow)
{
    // Regression (fuzzer stage B): before any observation the
    // predictor used to answer phase 0 — indistinguishable from a
    // real prediction of phase 0, so consumers could act on pure
    // noise. Cold start must answer -1.
    MarkovPhasePredictor mp(256);
    EXPECT_EQ(mp.predict(), -1);
    mp.observe(3);
    EXPECT_EQ(mp.predict(), 3) << "one observation ends cold start";
}

TEST(Markov, RunLengthSaturatesWithoutCorruption)
{
    // Run lengths are folded into a 16-bit tag; a run longer than
    // 65535 epochs must saturate instead of wrapping into a tag that
    // aliases short runs.
    MarkovPhasePredictor mp(256);
    for (int i = 0; i < 70000; ++i)
        mp.observe(5);
    EXPECT_EQ(mp.predict(), 5) << "a monotone stream predicts itself";
    mp.observe(9);
    int p = mp.predict();
    EXPECT_TRUE(p == 5 || p == 9) << "prediction left the alphabet";
}

TEST(Markov, AccuracyTracksStablePattern)
{
    MarkovPhasePredictor mp(256);
    for (int i = 0; i < 200; ++i)
        mp.observe(i / 100); // two long runs
    EXPECT_GT(mp.accuracy(), 0.95);
    EXPECT_GT(mp.predictions(), 100u);
}

TEST(Markov, RejectsNonPow2)
{
    EXPECT_DEATH(MarkovPhasePredictor mp(100), "power of two");
}

ProgramProfile
phasedProfile(const char *name)
{
    ProfileParams pp;
    pp.name = name;
    pp.numBlocks = 16;
    pp.avgBlockLen = 8;
    pp.freqClass = 1;
    pp.phaseSwing = 0.8;
    pp.pLoadCold = 0.05;
    pp.ipcEstimate = 0.8;
    return buildProfile(pp);
}

TEST(PhaseHill, RunsAndDetectsPhases)
{
    SmtConfig cfg;
    cfg.numThreads = 2;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(phasedProfile("pa"), 0);
    gens.emplace_back(phasedProfile("pb"), 1);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(50000);

    HillConfig hc;
    hc.epochSize = 16384;
    hc.metric = PerfMetric::AvgIpc;
    hc.sampleSingleIpc = false;
    PhaseHillClimbing hill(hc);
    hill.attach(cpu);
    for (int e = 0; e < 30; ++e) {
        runOneEpoch(cpu, hill, hc.epochSize);
        hill.epoch(cpu, e);
    }
    EXPECT_GE(hill.phasesSeen(), 1);
    EXPECT_GT(cpu.stats().committedTotal(), 10000u);
}

TEST(PhaseHill, LearnedPartitionsStayBounded)
{
    // Regression (fuzzer stage B): unbounded phase IDs made the
    // learned phase -> partition map grow without limit. IDs now stay
    // inside the table capacity and recycling drops the stale entry.
    SmtConfig cfg;
    cfg.numThreads = 2;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(phasedProfile("pa"), 0);
    gens.emplace_back(phasedProfile("pb"), 1);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(50000);

    HillConfig hc;
    hc.epochSize = 8192;
    hc.metric = PerfMetric::AvgIpc;
    hc.sampleSingleIpc = false;
    PhaseHillClimbing hill(hc);
    hill.attach(cpu);
    for (int e = 0; e < 60; ++e) {
        runOneEpoch(cpu, hill, hc.epochSize);
        hill.epoch(cpu, e);
    }
    EXPECT_LE(hill.learnedPartitions().size(), 128u);
    for (const auto &[phase, part] : hill.learnedPartitions()) {
        EXPECT_GE(phase, 0);
        EXPECT_LT(phase, 128);
        EXPECT_EQ(part.numThreads, 2);
    }
}

TEST(PhaseHill, NameAndClone)
{
    PhaseHillClimbing hill;
    EXPECT_EQ(hill.name(), "PHASE-HILL-WIPC");
    auto c = hill.clone();
    EXPECT_EQ(c->name(), "PHASE-HILL-WIPC");
}

TEST(PhaseHill, ObserverSurvivesReattach)
{
    SmtConfig cfg;
    cfg.numThreads = 2;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(phasedProfile("pa"), 0);
    gens.emplace_back(phasedProfile("pb"), 1);
    SmtCpu cpu(cfg, std::move(gens));

    PhaseHillClimbing hill;
    hill.attach(cpu);
    auto clone = hill.clone();
    SmtCpu cpu2 = cpu;
    clone->attach(cpu2); // re-registers the observer on the copy
    cpu2.run(30000);
    auto *ph = dynamic_cast<PhaseHillClimbing *>(clone.get());
    ASSERT_NE(ph, nullptr);
}

} // namespace
} // namespace smthill
