/**
 * @file
 * Unit tests for the synthetic instruction stream generator.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/spec_profiles.hh"
#include "trace/stream_generator.hh"

namespace smthill
{
namespace
{

ProgramProfile
toyProfile(int freq_class = 0)
{
    ProfileParams pp;
    pp.name = "toy";
    pp.numBlocks = 8;
    pp.avgBlockLen = 6;
    pp.freqClass = freq_class;
    pp.pLoadCold = 0.05;
    pp.pLoadWarm = 0.05;
    pp.burstProb = 0.5;
    pp.burstMax = 4;
    return buildProfile(pp);
}

TEST(StreamGenerator, Deterministic)
{
    StreamGenerator a(toyProfile(), 0), b(toyProfile(), 0);
    for (int i = 0; i < 5000; ++i) {
        SynthInst x = a.next(), y = b.next();
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(x.op, y.op);
        ASSERT_EQ(x.effAddr, y.effAddr);
        ASSERT_EQ(x.taken, y.taken);
        ASSERT_EQ(x.srcDist[0], y.srcDist[0]);
    }
}

TEST(StreamGenerator, StreamSeedChangesStream)
{
    // The CFG walk (and thus the PC sequence) can coincide early, but
    // data addresses and op choices must diverge across stream seeds.
    StreamGenerator a(toyProfile(), 0), b(toyProfile(), 1);
    int same = 0;
    for (int i = 0; i < 500; ++i) {
        SynthInst x = a.next(), y = b.next();
        same += x.effAddr == y.effAddr && x.op == y.op;
    }
    EXPECT_LT(same, 450);
}

TEST(StreamGenerator, CopyResumesStream)
{
    StreamGenerator a(toyProfile(), 0);
    for (int i = 0; i < 1234; ++i)
        a.next();
    StreamGenerator b = a;
    for (int i = 0; i < 2000; ++i) {
        SynthInst x = a.next(), y = b.next();
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(x.op, y.op);
        ASSERT_EQ(x.effAddr, y.effAddr);
    }
}

TEST(StreamGenerator, BlocksEndWithBranches)
{
    StreamGenerator g(toyProfile(), 0);
    const auto &prof = g.profile();
    std::uint32_t cur_block = 0;
    std::uint32_t pos = 0;
    for (int i = 0; i < 20000; ++i) {
        SynthInst inst = g.next();
        ASSERT_EQ(inst.blockId, cur_block);
        if (pos < prof.blocks[cur_block].length) {
            ASSERT_NE(inst.op, OpClass::Branch);
            ++pos;
        } else {
            ASSERT_EQ(inst.op, OpClass::Branch);
            cur_block = inst.taken ? prof.blocks[cur_block].takenTarget
                                   : prof.blocks[cur_block].fallTarget;
            pos = 0;
        }
    }
}

TEST(StreamGenerator, BranchTargetsMatchCfg)
{
    StreamGenerator g(toyProfile(), 0);
    const auto &prof = g.profile();
    for (int i = 0; i < 20000; ++i) {
        SynthInst inst = g.next();
        if (!inst.isBranch())
            continue;
        std::uint32_t succ = inst.taken
                                 ? prof.blocks[inst.blockId].takenTarget
                                 : prof.blocks[inst.blockId].fallTarget;
        ASSERT_EQ(inst.target, prof.blockPc(succ));
    }
}

TEST(StreamGenerator, DependenceDistancesInRange)
{
    StreamGenerator g(toyProfile(), 0);
    for (std::uint64_t i = 0; i < 50000; ++i) {
        SynthInst inst = g.next();
        for (int k = 0; k < 2; ++k) {
            ASSERT_GE(inst.srcDist[k], 0);
            ASSERT_LE(static_cast<std::uint64_t>(inst.srcDist[k]), i)
                << "dependence reaches before program start";
            ASSERT_LE(inst.srcDist[k], 512);
        }
    }
}

TEST(StreamGenerator, LoadsAndStoresHaveAddresses)
{
    StreamGenerator g(toyProfile(), 0);
    int mem_ops = 0;
    for (int i = 0; i < 20000; ++i) {
        SynthInst inst = g.next();
        if (isMemOp(inst.op)) {
            ++mem_ops;
            ASSERT_NE(inst.effAddr, 0u);
        }
    }
    EXPECT_GT(mem_ops, 1000);
}

TEST(StreamGenerator, ColdLoadsMissDistinctLines)
{
    // Cold (streaming) loads advance a full cache line every access,
    // so their line addresses must all be distinct within a window.
    ProfileParams pp;
    pp.name = "cold";
    pp.pLoadCold = 1.0;
    pp.pLoadWarm = 0.0;
    pp.loadFrac = 0.5;
    ProgramProfile prof = buildProfile(pp);
    StreamGenerator g(prof, 0);
    std::set<Addr> lines;
    int loads = 0;
    for (int i = 0; i < 20000 && loads < 1000; ++i) {
        SynthInst inst = g.next();
        // Per-block miss-bias diverts some loads to the hot region;
        // the streaming (cold-region) ones must never repeat a line.
        if (inst.isLoad() && inst.effAddr >= 0x4000'0000) {
            ++loads;
            ASSERT_TRUE(lines.insert(inst.effAddr >> 6).second)
                << "cold load revisited a line";
        }
    }
    EXPECT_GE(loads, 1000);
}

TEST(StreamGenerator, HotLoadsStayInHotRegion)
{
    ProfileParams pp;
    pp.name = "hot";
    pp.pLoadCold = 0.0;
    pp.pLoadWarm = 0.0;
    pp.hotBytes = 4096;
    ProgramProfile prof = buildProfile(pp);
    StreamGenerator g(prof, 0);
    for (int i = 0; i < 20000; ++i) {
        SynthInst inst = g.next();
        if (inst.isLoad()) {
            ASSERT_GE(inst.effAddr, prof.dataBase);
            ASSERT_LT(inst.effAddr, prof.dataBase + prof.hotBytes);
        }
    }
}

TEST(StreamGenerator, PhaseAdvancesWithInstructions)
{
    ProgramProfile prof = toyProfile(2);
    ASSERT_EQ(prof.phases.size(), 2u);
    StreamGenerator g(prof, 0);
    std::uint64_t phase0_len = prof.phases[0].lengthInsts;
    for (std::uint64_t i = 0; i < phase0_len; ++i)
        g.next();
    EXPECT_EQ(g.currentPhase(), 1u);
}

TEST(StreamGenerator, EmittedCountTracks)
{
    StreamGenerator g(toyProfile(), 0);
    for (int i = 0; i < 321; ++i)
        g.next();
    EXPECT_EQ(g.emittedCount(), 321u);
}

TEST(StreamGenerator, OpMixRoughlyMatchesProfile)
{
    StreamGenerator g(specProfile("bzip2"), 0);
    std::map<OpClass, int> counts;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        counts[g.next().op]++;
    double load_frac = static_cast<double>(counts[OpClass::Load]) / n;
    double br_frac = static_cast<double>(counts[OpClass::Branch]) / n;
    EXPECT_NEAR(load_frac, 0.24, 0.08); // loadFrac ~0.26 minus branches
    EXPECT_GT(br_frac, 0.04);
    EXPECT_LT(br_frac, 0.20);
    EXPECT_EQ(counts[OpClass::FpAlu] + counts[OpClass::FpMul], 0)
        << "bzip2 is an integer benchmark";
}

TEST(StreamGenerator, FpBenchmarkEmitsFpOps)
{
    StreamGenerator g(specProfile("swim"), 0);
    int fp = 0;
    for (int i = 0; i < 20000; ++i)
        fp += isFpOp(g.next().op);
    EXPECT_GT(fp, 2000);
}

TEST(StreamGenerator, BurstsProduceIndependentColdLoads)
{
    StreamGenerator g(specProfile("swim"), 0);
    int independent_cold = 0;
    for (int i = 0; i < 200000; ++i) {
        SynthInst inst = g.next();
        if (inst.isLoad() && inst.effAddr >= 0x4000'0000 &&
            inst.srcDist[0] == 0 && inst.srcDist[1] == 0)
            ++independent_cold;
    }
    EXPECT_GT(independent_cold, 500)
        << "swim should exhibit clustered, independent misses";
}

} // namespace
} // namespace smthill
