/**
 * @file
 * Integration tests: end-to-end scenarios that exercise the paper's
 * claims in miniature across modules (workloads -> pipeline ->
 * policies -> learners -> metrics).
 */

#include <gtest/gtest.h>

#include "core/hill_climbing.hh"
#include "core/hill_width.hh"
#include "core/offline_exhaustive.hh"
#include "core/rand_hill.hh"
#include "harness/runner.hh"
#include "harness/sync_runner.hh"
#include "policy/dcra.hh"
#include "policy/flush.hh"
#include "policy/icount.hh"
#include "policy/static_partition.hh"

namespace smthill
{
namespace
{

RunConfig
mediumConfig(int epochs = 12)
{
    RunConfig rc;
    rc.epochSize = 16384;
    rc.epochs = epochs;
    rc.warmupCycles = 128 * 1024;
    return rc;
}

double
runMetric(const Workload &w, ResourcePolicy &p, const RunConfig &rc,
          PerfMetric m, const std::array<double, kMaxThreads> &solo)
{
    return runPolicy(w, p, rc).metric(m, solo);
}

TEST(Integration, MemWorkloadCausesClogUnderIcount)
{
    // The central pathology the paper targets: under full sharing, a
    // memory-bound thread occupies most of the window while an ILP
    // partner starves relative to a fair static split.
    RunConfig rc = mediumConfig();
    const Workload &w = workloadByName("art-gzip"); // MEM + ILP

    IcountPolicy icount;
    RunResult shared = runPolicy(w, icount, rc);

    StaticPartitionPolicy fair;
    RunResult split = runPolicy(w, fair, rc);

    // gzip (thread 1) must do materially better when art is contained.
    EXPECT_GT(split.overallIpc.ipc[1], shared.overallIpc.ipc[1] * 1.02);
}

TEST(Integration, OfflineBeatsBaselinesOnMemPair)
{
    RunConfig rc = mediumConfig(8);
    const Workload &w = workloadByName("art-mcf");
    auto solo = soloIpcs(w, rc, 8 * rc.epochSize);

    OfflineConfig oc;
    oc.epochSize = rc.epochSize;
    oc.stride = 32;
    oc.singleIpc = solo;
    OfflineExhaustive off(oc);

    SmtCpu cpu = makeCpu(w, rc);
    OfflineResult res = off.run(cpu, rc.epochs);
    double offline_metric = res.meanMetric();

    IcountPolicy icount;
    double icount_metric =
        runMetric(w, icount, rc, PerfMetric::WeightedIpc, solo);
    FlushPolicy flush;
    double flush_metric =
        runMetric(w, flush, rc, PerfMetric::WeightedIpc, solo);

    EXPECT_GT(offline_metric, icount_metric);
    EXPECT_GT(offline_metric, flush_metric);
}

TEST(Integration, HillLearnsOnMlpWorkload)
{
    // Hill climbing (AvgIpc feedback for speed) must end up at least
    // as good as a fixed equal split on a workload with an interior
    // optimum, given time to learn.
    RunConfig rc = mediumConfig(40);
    const Workload &w = workloadByName("art-gzip");
    auto solo = soloIpcs(w, rc, 8 * rc.epochSize);

    HillConfig hc;
    hc.epochSize = rc.epochSize;
    hc.metric = PerfMetric::AvgIpc;
    hc.sampleSingleIpc = false;
    HillClimbing hill(hc);
    double hill_m = runMetric(w, hill, rc, PerfMetric::AvgIpc, solo);

    StaticPartitionPolicy fair;
    double fair_m = runMetric(w, fair, rc, PerfMetric::AvgIpc, solo);

    EXPECT_GT(hill_m, fair_m * 0.97)
        << "hill must at least roughly match the equal split";
}

TEST(Integration, SynchronizedOfflineWinsMostEpochs)
{
    // Figure 5 in miniature: epoch-synchronized OFF-LINE dominates
    // ICOUNT nearly everywhere.
    RunConfig rc = mediumConfig();
    const Workload &w = workloadByName("art-mcf");
    auto solo = soloIpcs(w, rc, 4 * rc.epochSize);

    OfflineConfig oc;
    oc.epochSize = rc.epochSize;
    oc.stride = 32;
    oc.singleIpc = solo;
    OfflineExhaustive off(oc);

    IcountPolicy icount;
    std::vector<ResourcePolicy *> policies{&icount};
    SyncResult res =
        syncCompareOffline(makeCpu(w, rc), off, policies, 6);
    EXPECT_GE(res.offlineWinRate(0), 5.0 / 6.0);
}

TEST(Integration, HillWidthsFromOfflineCurves)
{
    // Figure 6/7 pipeline: real curves in, hill widths out.
    RunConfig rc = mediumConfig();
    OfflineConfig oc;
    oc.epochSize = rc.epochSize;
    oc.stride = 16;
    oc.keepCurves = true;
    OfflineExhaustive off(oc);

    SmtCpu cpu = makeCpu(workloadByName("art-mcf"), rc);
    OfflineEpoch rec = off.stepEpoch(cpu);
    HillWidthProfile p = hillWidthProfile(rec.curveShares, rec.curve);
    EXPECT_GT(p.w90, 0.0);
    EXPECT_LE(p.w99, p.w90);
    EXPECT_LE(p.w90, 256.0);
}

TEST(Integration, RandHillMatchesOfflineOnTwoThreads)
{
    // On 2 threads, RAND-HILL's best should be close to exhaustive
    // search's best for the same epoch.
    RunConfig rc = mediumConfig();
    SmtCpu cpu = makeCpu(workloadByName("art-mcf"), rc);
    const SmtCpu checkpoint = cpu;

    OfflineConfig oc;
    oc.epochSize = rc.epochSize;
    oc.stride = 8;
    OfflineExhaustive off(oc);
    SmtCpu a = checkpoint;
    OfflineEpoch best = off.stepEpoch(a);

    RandHillConfig rh_cfg;
    rh_cfg.epochSize = rc.epochSize;
    rh_cfg.iterations = 96;
    RandHill rh(rh_cfg);
    SmtCpu b = checkpoint;
    OfflineEpoch rh_best = rh.stepEpoch(b);

    EXPECT_GT(rh_best.metricValue, best.metricValue * 0.90);
}

TEST(Integration, WeightedMetricChangesLearnedAllocation)
{
    // Learning with throughput (AvgIpc) vs weighted IPC feedback must
    // be able to produce different final anchors on an asymmetric
    // workload (the user-definable-goal property, Section 4.4).
    RunConfig rc = mediumConfig(30);
    const Workload &w = workloadByName("art-gzip");

    HillConfig a;
    a.epochSize = rc.epochSize;
    a.metric = PerfMetric::AvgIpc;
    a.sampleSingleIpc = false;
    HillClimbing hill_ipc(a);
    runPolicy(w, hill_ipc, rc);

    HillConfig b = a;
    b.metric = PerfMetric::HarmonicWeightedIpc;
    b.sampleSingleIpc = true;
    b.samplePeriod = 10;
    HillClimbing hill_hw(b);
    runPolicy(w, hill_hw, rc);

    // They need not differ hugely, but the machinery must produce
    // valid (and usually distinct) anchors.
    EXPECT_EQ(hill_ipc.anchor().total(), 256);
    EXPECT_EQ(hill_hw.anchor().total(), 256);
}

TEST(Integration, FourThreadWorkloadRunsAllPolicies)
{
    RunConfig rc = mediumConfig(6);
    const Workload &w = workloadByName("art-mcf-swim-twolf");
    IcountPolicy icount;
    FlushPolicy flush;
    DcraPolicy dcra;
    HillConfig hc;
    hc.epochSize = rc.epochSize;
    hc.metric = PerfMetric::AvgIpc;
    hc.sampleSingleIpc = false;
    HillClimbing hill(hc);
    for (ResourcePolicy *p :
         std::initializer_list<ResourcePolicy *>{&icount, &flush, &dcra,
                                                 &hill}) {
        RunResult res = runPolicy(w, *p, rc);
        for (int t = 0; t < 4; ++t)
            EXPECT_GT(res.overallIpc.ipc[t], 0.0)
                << p->name() << " thread " << t;
    }
}

TEST(Integration, EpochSynchronizationPreservesDeterminism)
{
    RunConfig rc = mediumConfig(4);
    const Workload &w = workloadByName("swim-twolf");
    IcountPolicy p1, p2;
    RunResult a = runPolicy(w, p1, rc);
    RunResult b = runPolicy(w, p2, rc);
    for (std::size_t e = 0; e < a.epochs.size(); ++e) {
        EXPECT_DOUBLE_EQ(a.epochs[e].ipc.ipc[0], b.epochs[e].ipc.ipc[0]);
        EXPECT_DOUBLE_EQ(a.epochs[e].ipc.ipc[1], b.epochs[e].ipc.ipc[1]);
    }
}

} // namespace
} // namespace smthill
