/**
 * @file
 * Simulator-component microbenchmarks (google-benchmark): core cycle
 * throughput for different thread counts and workload classes,
 * whole-machine checkpoint cost, stream generation, predictor and
 * cache access rates. These are engineering numbers, not paper
 * results; they bound how large the figure benches can be scaled.
 */

#include <benchmark/benchmark.h>

#include "branch/predictors.hh"
#include "common/rng.hh"
#include "core/offline_exhaustive.hh"
#include "harness/runner.hh"
#include "memory/cache.hh"
#include "trace/spec_profiles.hh"

using namespace smthill;

namespace
{

SmtCpu
machineFor(const std::vector<std::string> &benches)
{
    SmtConfig cfg;
    cfg.numThreads = static_cast<int>(benches.size());
    std::vector<StreamGenerator> gens;
    for (std::size_t i = 0; i < benches.size(); ++i)
        gens.emplace_back(specProfile(benches[i]), i);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(200000); // warm
    return cpu;
}

void
BM_CoreCycles(benchmark::State &state,
              const std::vector<std::string> &benches)
{
    SmtCpu cpu = machineFor(benches);
    for (auto _ : state)
        cpu.step();
    state.SetItemsProcessed(state.iterations());
    state.counters["ipc"] = benchmark::Counter(
        static_cast<double>(cpu.stats().committedTotal()) /
        static_cast<double>(cpu.now()));
}

void
BM_Checkpoint(benchmark::State &state)
{
    SmtCpu cpu = machineFor({"art", "mcf"});
    for (auto _ : state) {
        SmtCpu copy = cpu;
        benchmark::DoNotOptimize(&copy);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_StreamGenerator(benchmark::State &state)
{
    StreamGenerator gen(specProfile("gcc"), 0);
    for (auto _ : state) {
        SynthInst inst = gen.next();
        benchmark::DoNotOptimize(inst);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_HybridPredictor(benchmark::State &state)
{
    HybridPredictor hp;
    Rng rng(1);
    Addr pc = 0x400000;
    for (auto _ : state) {
        auto lk = hp.predict(pc);
        bool taken = rng.chance(0.7);
        hp.update(pc, lk, taken);
        pc = 0x400000 + (rng.next() & 0x3ff) * 4;
    }
    state.SetItemsProcessed(state.iterations());
}

/**
 * The fig04 hot loop at bench stride (16 -> 15 trials/epoch) across
 * 1/2/4/8 jobs; tracks the parallel layer's speedup. Results are
 * bit-identical across the job counts (asserted by the determinism
 * tests); this measures wall clock only.
 */
void
BM_OfflineEpoch_Parallel(benchmark::State &state)
{
    SmtCpu cpu = machineFor({"art", "mcf"});
    OfflineConfig oc;
    oc.epochSize = 16 * 1024;
    oc.stride = 16;
    oc.jobs = static_cast<int>(state.range(0));
    OfflineExhaustive off(oc);
    for (auto _ : state) {
        SmtCpu epoch_cpu = cpu;
        benchmark::DoNotOptimize(off.stepEpoch(epoch_cpu));
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["jobs"] =
        benchmark::Counter(static_cast<double>(oc.jobs));
}

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(CacheConfig{"dl1", 64 * 1024, 64, 2});
    Rng rng(2);
    for (auto _ : state) {
        Addr addr = rng.next() & 0x3'ffff; // 256 KB footprint
        benchmark::DoNotOptimize(cache.access(addr, false));
    }
    state.SetItemsProcessed(state.iterations());
}

} // namespace

BENCHMARK_CAPTURE(BM_CoreCycles, solo_ilp,
                  std::vector<std::string>{"bzip2"});
BENCHMARK_CAPTURE(BM_CoreCycles, smt2_mem,
                  std::vector<std::string>{"art", "mcf"});
BENCHMARK_CAPTURE(BM_CoreCycles, smt4_mix,
                  std::vector<std::string>{"art", "mcf", "fma3d", "gcc"});
BENCHMARK(BM_Checkpoint);
BENCHMARK(BM_OfflineEpoch_Parallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StreamGenerator);
BENCHMARK(BM_HybridPredictor);
BENCHMARK(BM_CacheAccess);

BENCHMARK_MAIN();
