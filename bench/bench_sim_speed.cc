/**
 * @file
 * Simulator-component microbenchmarks (google-benchmark): core cycle
 * throughput for different thread counts and workload classes,
 * whole-machine checkpoint cost, stream generation, predictor and
 * cache access rates. These are engineering numbers, not paper
 * results; they bound how large the figure benches can be scaled.
 *
 * SMTHILL_STATS_JSON=FILE writes the run results as a
 * `smthill.bench.sim-speed.v1` document: one entry per benchmark with
 * iterations, per-iteration real/cpu time (ns), items/sec, and — for
 * the BM_CoreCycles* family, where one item is one simulated cycle —
 * the headline kcycles/sec figure. The committed baseline lives at
 * bench/BENCH_sim_speed.json; regenerate it with
 *   SMTHILL_STATS_JSON=bench/BENCH_sim_speed.json ./bench_sim_speed
 * and compare kcycles/sec before accepting a change that touches the
 * core loop (the event-trace instrumentation, for example, must stay
 * within noise when no tracer is attached).
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "branch/predictors.hh"
#include "common/event_trace.hh"
#include "common/json.hh"
#include "common/rng.hh"
#include "core/offline_exhaustive.hh"
#include "harness/runner.hh"
#include "memory/cache.hh"
#include "trace/spec_profiles.hh"

using namespace smthill;

namespace
{

SmtCpu
machineFor(const std::vector<std::string> &benches)
{
    SmtConfig cfg;
    cfg.numThreads = static_cast<int>(benches.size());
    std::vector<StreamGenerator> gens;
    for (std::size_t i = 0; i < benches.size(); ++i)
        gens.emplace_back(specProfile(benches[i]), i);
    SmtCpu cpu(cfg, std::move(gens));
    cpu.run(200000); // warm
    return cpu;
}

void
BM_CoreCycles(benchmark::State &state,
              const std::vector<std::string> &benches)
{
    SmtCpu cpu = machineFor(benches);
    for (auto _ : state)
        cpu.step();
    state.SetItemsProcessed(state.iterations());
    state.counters["ipc"] = benchmark::Counter(
        static_cast<double>(cpu.stats().committedTotal()) /
        static_cast<double>(cpu.now()));
}

/**
 * BM_CoreCycles with an event trace attached to the machine. The
 * core loop itself emits nothing (events come from partition changes,
 * stalls, and flushes driven by policies), so any delta against the
 * smt2_mem config is pure pointer-check overhead — the "zero cost
 * when disabled" claim, measured.
 */
void
BM_CoreCycles_EventTrace(benchmark::State &state)
{
    SmtCpu cpu = machineFor({"art", "mcf"});
    EventTrace trace(1024);
    cpu.setEventTrace(&trace, 0);
    for (auto _ : state)
        cpu.step();
    state.SetItemsProcessed(state.iterations());
}

void
BM_Checkpoint(benchmark::State &state)
{
    SmtCpu cpu = machineFor({"art", "mcf"});
    for (auto _ : state) {
        // The copy is the thing being measured.
        SmtCpu copy = cpu; // smthill-lint: allow(cpu-copy-hot-path)
        benchmark::DoNotOptimize(&copy);
    }
    state.SetItemsProcessed(state.iterations());
}

/**
 * The arena path the trial sweeps actually take: restore a warm
 * machine from a checkpoint via SmtCpu::restoreFrom. The delta
 * against BM_Checkpoint is the allocation tax a cold copy-construct
 * pays on top of the state copy.
 */
void
BM_CheckpointRestore(benchmark::State &state)
{
    SmtCpu cpu = machineFor({"art", "mcf"});
    SmtCpu warm = cpu; // smthill-lint: allow(cpu-copy-hot-path)
    for (auto _ : state) {
        warm.restoreFrom(cpu);
        benchmark::DoNotOptimize(&warm);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_StreamGenerator(benchmark::State &state)
{
    StreamGenerator gen(specProfile("gcc"), 0);
    for (auto _ : state) {
        SynthInst inst = gen.next();
        benchmark::DoNotOptimize(inst);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_HybridPredictor(benchmark::State &state)
{
    HybridPredictor hp;
    Rng rng(1);
    Addr pc = 0x400000;
    for (auto _ : state) {
        auto lk = hp.predict(pc);
        bool taken = rng.chance(0.7);
        hp.update(pc, lk, taken);
        pc = 0x400000 + (rng.next() & 0x3ff) * 4;
    }
    state.SetItemsProcessed(state.iterations());
}

/**
 * The fig04 hot loop at bench stride (16 -> 15 trials/epoch) across
 * 1/2/4/8 jobs; tracks the parallel layer's speedup. Results are
 * bit-identical across the job counts (asserted by the determinism
 * tests); this measures wall clock only.
 */
void
BM_OfflineEpoch_Parallel(benchmark::State &state)
{
    SmtCpu cpu = machineFor({"art", "mcf"});
    OfflineConfig oc;
    oc.epochSize = 16 * 1024;
    oc.stride = 16;
    oc.jobs = static_cast<int>(state.range(0));
    OfflineExhaustive off(oc);
    for (auto _ : state) {
        // One copy per measured epoch so every iteration sweeps the
        // same program point; the sweep inside uses the arena.
        SmtCpu epoch_cpu = cpu; // smthill-lint: allow(cpu-copy-hot-path)
        benchmark::DoNotOptimize(off.stepEpoch(epoch_cpu));
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["jobs"] =
        benchmark::Counter(static_cast<double>(oc.jobs));
}

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(CacheConfig{"dl1", 64 * 1024, 64, 2});
    Rng rng(2);
    for (auto _ : state) {
        Addr addr = rng.next() & 0x3'ffff; // 256 KB footprint
        benchmark::DoNotOptimize(cache.access(addr, false));
    }
    state.SetItemsProcessed(state.iterations());
}

/**
 * Console reporting plus per-run capture for the JSON export: every
 * plain iteration run is kept (aggregates and errored runs are not).
 */
class CaptureReporter : public benchmark::ConsoleReporter
{
  public:
    std::vector<Run> captured;

    bool
    ReportContext(const Context &context) override
    {
        return benchmark::ConsoleReporter::ReportContext(context);
    }

    void
    ReportRuns(const std::vector<Run> &report) override
    {
        for (const Run &r : report)
            if (r.run_type == Run::RT_Iteration && !r.error_occurred)
                captured.push_back(r);
        benchmark::ConsoleReporter::ReportRuns(report);
    }
};

/** Per-iteration time in nanoseconds, independent of the time unit. */
double
perIterNs(double accumulated_seconds, benchmark::IterationCount iters)
{
    if (iters == 0)
        return 0.0;
    return 1e9 * accumulated_seconds / static_cast<double>(iters);
}

void
exportResults(const std::vector<CaptureReporter::Run> &runs,
              const std::string &path)
{
    Json doc = Json::object();
    doc.set("schema", Json("smthill.bench.sim-speed.v1"));

    // Jobs-scaling efficiency for the parallel family: real_time at
    // jobs=1 divided by (real_time at jobs=j times j). 1.0 is perfect
    // scaling; 1/j is no real-time benefit at all (e.g. a single-CPU
    // host, where only cpu_ns_per_iter divides).
    double base_real_ns = 0.0;
    for (const auto &r : runs) {
        auto jobs_it = r.counters.find("jobs");
        if (jobs_it != r.counters.end() &&
            static_cast<int>(jobs_it->second) == 1) {
            base_real_ns = perIterNs(r.real_accumulated_time, r.iterations);
            break;
        }
    }

    Json list = Json::array();
    for (const auto &r : runs) {
        Json entry = Json::object();
        std::string name = r.benchmark_name();
        entry.set("name", Json(name));
        entry.set("iterations",
                  Json(static_cast<std::uint64_t>(r.iterations)));
        entry.set("real_ns_per_iter",
                  Json(perIterNs(r.real_accumulated_time, r.iterations)));
        entry.set("cpu_ns_per_iter",
                  Json(perIterNs(r.cpu_accumulated_time, r.iterations)));
        auto ips = r.counters.find("items_per_second");
        if (ips != r.counters.end()) {
            double per_sec = ips->second;
            entry.set("items_per_sec", Json(per_sec));
            // One item of a core-cycle bench is one simulated cycle.
            if (name.rfind("BM_CoreCycles", 0) == 0)
                entry.set("kcycles_per_sec", Json(per_sec / 1e3));
        }
        auto jobs_it = r.counters.find("jobs");
        if (jobs_it != r.counters.end() && base_real_ns > 0.0) {
            double j = jobs_it->second;
            double real_ns = perIterNs(r.real_accumulated_time,
                                       r.iterations);
            if (j > 0.0 && real_ns > 0.0) {
                entry.set("parallel_efficiency",
                          Json(base_real_ns / (real_ns * j)));
            }
        }
        list.push(std::move(entry));
    }
    doc.set("benchmarks", std::move(list));
    benchutil::writeAndReloadJson(path, doc);
    std::printf("exported %s\n", path.c_str());
}

} // namespace

BENCHMARK_CAPTURE(BM_CoreCycles, solo_ilp,
                  std::vector<std::string>{"bzip2"});
BENCHMARK_CAPTURE(BM_CoreCycles, smt2_mem,
                  std::vector<std::string>{"art", "mcf"});
BENCHMARK_CAPTURE(BM_CoreCycles, smt4_mix,
                  std::vector<std::string>{"art", "mcf", "fma3d", "gcc"});
BENCHMARK(BM_CoreCycles_EventTrace);
BENCHMARK(BM_Checkpoint);
BENCHMARK(BM_CheckpointRestore);
BENCHMARK(BM_OfflineEpoch_Parallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StreamGenerator);
BENCHMARK(BM_HybridPredictor);
BENCHMARK(BM_CacheAccess);

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    CaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    const std::string path = benchutil::statsJsonPath();
    if (!path.empty())
        exportResults(reporter.captured, path);
    return 0;
}
