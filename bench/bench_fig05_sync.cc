/**
 * @file
 * Figure 5: synchronized time-varying performance of OFF-LINE, DCRA,
 * FLUSH, and ICOUNT on the art-mcf workload. All techniques run each
 * epoch from the same machine checkpoint (the one OFF-LINE's best
 * path produced), so per-epoch numbers are directly comparable. The
 * paper finds OFF-LINE at or above every other technique in
 * essentially every epoch.
 *
 * Scale with SMTHILL_EPOCHS (default 24) and SMTHILL_OFFLINE_STRIDE
 * (default 16). SMTHILL_WORKLOAD overrides the workload.
 *
 * SMTHILL_STATS_JSON=FILE additionally writes the per-epoch series
 * as `smthill.bench.fig05.v1` JSON, reparses the file, re-derives
 * the win rates from the parsed data, and fails unless they are
 * bit-identical to the stdout path — the figure is reproducible from
 * the export alone.
 *
 * SMTHILL_EVENT_TRACE=FILE writes the synchronized comparison's
 * cycle-level `smthill.events.v1` trace: the OFF-LINE path renders
 * as one Perfetto process and each compared policy as another, so
 * the per-epoch checkpoint structure is visible at ui.perfetto.dev
 * (.jsonl extension selects the JSONL form).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "bench_common.hh"
#include "common/event_trace.hh"
#include "harness/sync_runner.hh"
#include "harness/table.hh"
#include "policy/dcra.hh"
#include "policy/flush.hh"
#include "policy/icount.hh"

using namespace smthill;
using namespace smthill::benchutil;

int
main()
{
    const char *wname_env = std::getenv("SMTHILL_WORKLOAD");
    const std::string wname = wname_env && *wname_env ? wname_env
                                                      : "art-mcf";
    banner("Figure 5: synchronized per-epoch weighted IPC (" + wname +
           ")");

    RunConfig rc = benchRunConfig(24);
    const Workload &w = workloadByName(wname);
    auto solo = soloIpcs(w, rc, soloWindow(rc));

    OfflineConfig oc;
    oc.epochSize = rc.epochSize;
    oc.stride = static_cast<int>(envScale("SMTHILL_OFFLINE_STRIDE", 16));
    oc.singleIpc = solo;
    OfflineExhaustive off(oc);

    IcountPolicy icount;
    FlushPolicy flush;
    DcraPolicy dcra;
    std::vector<ResourcePolicy *> policies{&icount, &flush, &dcra};

    EventTrace event_trace;
    const std::string trace_path = eventTracePath();
    SyncResult res = syncCompareOffline(
        makeCpu(w, rc), off, policies, rc.epochs,
        trace_path.empty() ? nullptr : &event_trace);

    Table t({"epoch", "ICOUNT", "FLUSH", "DCRA", "OFF-LINE"});
    for (int e = 0; e < rc.epochs; ++e) {
        t.beginRow();
        t.cell(static_cast<std::int64_t>(e));
        t.cell(res.others[0].metric[e]);
        t.cell(res.others[1].metric[e]);
        t.cell(res.others[2].metric[e]);
        t.cell(res.offline.metric[e]);
    }
    t.print();

    std::printf("\nOFF-LINE epoch win rates (paper: 100%% vs ICOUNT and "
                "FLUSH, 97.2%% vs DCRA):\n");
    std::printf("  vs ICOUNT: %5.1f%%\n", 100.0 * res.offlineWinRate(0));
    std::printf("  vs FLUSH : %5.1f%%\n", 100.0 * res.offlineWinRate(1));
    std::printf("  vs DCRA  : %5.1f%%\n", 100.0 * res.offlineWinRate(2));

    const std::string export_path = statsJsonPath();
    if (!export_path.empty()) {
        const char *names[] = {"ICOUNT", "FLUSH", "DCRA"};
        Json doc = Json::object();
        doc.set("schema", Json("smthill.bench.fig05.v1"));
        doc.set("workload", Json(wname));
        doc.set("epochs", Json(rc.epochs));
        Json series = Json::object();
        auto pushSeries = [&](const char *name,
                              const std::vector<double> &vals) {
            Json arr = Json::array();
            for (double v : vals)
                arr.push(Json(v));
            series.set(name, std::move(arr));
        };
        for (std::size_t p = 0; p < 3; ++p)
            pushSeries(names[p], res.others[p].metric);
        pushSeries("OFF-LINE", res.offline.metric);
        doc.set("series", std::move(series));
        doc.set("counters", globalStats().toJson());

        // Re-derive every win rate from the re-parsed file and demand
        // bit-identity with the in-memory numbers printed above.
        Json re = writeAndReloadJson(export_path, doc);
        const Json &rs = re.at("series");
        for (std::size_t p = 0; p < 3; ++p) {
            const auto &off_series = rs.at("OFF-LINE").items();
            const auto &other = rs.at(names[p]).items();
            std::size_t n = std::min(off_series.size(), other.size());
            std::size_t wins = 0;
            for (std::size_t e = 0; e < n; ++e)
                if (off_series[e].asDouble() >= other[e].asDouble())
                    ++wins;
            double rate = n ? static_cast<double>(wins) /
                                  static_cast<double>(n)
                            : 0.0;
            checkExportValue(names[p], rate, res.offlineWinRate(p));
        }
        std::printf("\nexported %s (win rates re-derived from the "
                    "file match)\n",
                    export_path.c_str());
    }

    if (!trace_path.empty())
        writeEventTrace(event_trace, trace_path);
    return 0;
}
