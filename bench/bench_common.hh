/**
 * @file
 * Helpers shared by the figure/table benches: standard baselines,
 * group-mean bookkeeping, and percent-gain reporting.
 */

#ifndef SMTHILL_BENCH_BENCH_COMMON_HH
#define SMTHILL_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace smthill::benchutil
{

/** Mean-by-key accumulator (per workload group, per policy...). */
class GroupMeans
{
  public:
    void
    add(const std::string &key, double value)
    {
        auto &e = sums[key];
        e.first += value;
        e.second += 1;
    }

    double
    mean(const std::string &key) const
    {
        auto it = sums.find(key);
        if (it == sums.end() || it->second.second == 0)
            return 0.0;
        return it->second.first / it->second.second;
    }

  private:
    std::map<std::string, std::pair<double, int>> sums;
};

/** @return percent gain of a over b. */
inline double
pctGain(double a, double b)
{
    return b > 0.0 ? 100.0 * (a / b - 1.0) : 0.0;
}

/** Print a "X vs Y: +Z%" line. */
inline void
printGain(const char *what, double ours, double theirs)
{
    std::printf("  %-28s %+6.1f%%\n", what, pctGain(ours, theirs));
}

/** Solo-IPC window used consistently across benches. */
inline Cycle
soloWindow(const RunConfig &rc)
{
    return static_cast<Cycle>(rc.epochs) * rc.epochSize;
}

/**
 * Grid concurrency for benches: SMTHILL_JOBS pins it (CI sets 1 for
 * byte-stable logs), otherwise all hardware threads are used.
 */
inline int
benchJobs()
{
    return static_cast<int>(envScale(
        "SMTHILL_JOBS",
        static_cast<std::uint64_t>(ThreadPool::defaultJobs())));
}

} // namespace smthill::benchutil

#endif // SMTHILL_BENCH_BENCH_COMMON_HH
