/**
 * @file
 * Helpers shared by the figure/table benches: standard baselines,
 * group-mean bookkeeping, and percent-gain reporting.
 */

#ifndef SMTHILL_BENCH_BENCH_COMMON_HH
#define SMTHILL_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/event_trace.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/profile.hh"
#include "common/stat_registry.hh"
#include "common/stat_snapshot.hh"
#include "harness/runner.hh"

namespace smthill::benchutil
{

/** Mean-by-key accumulator (per workload group, per policy...). */
class GroupMeans
{
  public:
    void
    add(const std::string &key, double value)
    {
        auto &e = sums[key];
        e.first += value;
        e.second += 1;
    }

    double
    mean(const std::string &key) const
    {
        auto it = sums.find(key);
        if (it == sums.end() || it->second.second == 0)
            return 0.0;
        return it->second.first / it->second.second;
    }

  private:
    std::map<std::string, std::pair<double, int>> sums;
};

/** @return percent gain of a over b. */
inline double
pctGain(double a, double b)
{
    return b > 0.0 ? 100.0 * (a / b - 1.0) : 0.0;
}

/** Print a "X vs Y: +Z%" line. */
inline void
printGain(const char *what, double ours, double theirs)
{
    std::printf("  %-28s %+6.1f%%\n", what, pctGain(ours, theirs));
}

/** Solo-IPC window used consistently across benches. */
inline Cycle
soloWindow(const RunConfig &rc)
{
    return static_cast<Cycle>(rc.epochs) * rc.epochSize;
}

/**
 * Grid concurrency for benches: SMTHILL_JOBS pins it (CI sets 1 for
 * byte-stable logs), otherwise all hardware threads are used.
 */
inline int
benchJobs()
{
    return static_cast<int>(envScale(
        "SMTHILL_JOBS",
        static_cast<std::uint64_t>(ThreadPool::defaultJobs())));
}

/**
 * Export destination for the machine-readable figure data
 * (SMTHILL_STATS_JSON); empty disables the export path entirely.
 */
inline std::string
statsJsonPath()
{
    const char *p = std::getenv("SMTHILL_STATS_JSON");
    return p && *p ? p : "";
}

/**
 * Opt-in cycle-level event-trace destination (SMTHILL_EVENT_TRACE);
 * empty disables tracing entirely.
 */
inline std::string
eventTracePath()
{
    const char *p = std::getenv("SMTHILL_EVENT_TRACE");
    return p && *p ? p : "";
}

/**
 * Opt-in periodic stat-snapshot destination (SMTHILL_SNAPSHOTS, a
 * `smthill.snapshots.v1` JSONL stream); empty disables sampling.
 */
inline std::string
snapshotsPath()
{
    const char *p = std::getenv("SMTHILL_SNAPSHOTS");
    return p && *p ? p : "";
}

/**
 * Host-profile report destination (SMTHILL_PROFILE_JSON). Only
 * consulted when profiling is on; empty falls back to a stdout
 * summary table.
 */
inline std::string
profileJsonPath()
{
    const char *p = std::getenv("SMTHILL_PROFILE_JSON");
    return p && *p ? p : "";
}

/**
 * Streaming snapshot sink over globalStats(): opens @p path and
 * emits one `smthill.snapshots.v1` row per sample() call; an empty
 * path makes every operation a no-op. sample() is thread-safe, so
 * grid cells can report completion from pool workers.
 */
class SnapshotSink
{
  public:
    explicit SnapshotSink(const std::string &path)
    {
        if (path.empty())
            return;
        out.open(path, std::ios::binary);
        if (!out)
            fatal(msg("cannot write '", path, "'"));
        snap.emplace(globalStats());
        snap->streamTo(&out);
        file = path;
    }

    ~SnapshotSink()
    {
        if (!snap)
            return;
        snap->streamTo(nullptr);
        if (!out)
            fatal(msg("cannot write '", file, "'"));
        std::printf("wrote %zu stat snapshots to %s\n",
                    snap->rows().size(), file.c_str());
    }

    SnapshotSink(const SnapshotSink &) = delete;
    SnapshotSink &operator=(const SnapshotSink &) = delete;

    void
    sample(std::uint64_t epoch, std::uint64_t cycle)
    {
        if (snap)
            snap->sample(epoch, cycle);
    }

  private:
    std::ofstream out;
    std::optional<StatSnapshotter> snap;
    std::string file;
};

/**
 * Write @p trace to @p path: a ".jsonl" extension selects the JSONL
 * stream form, anything else the Chrome trace-event / Perfetto JSON
 * document. When profiling is on, the collected host spans are
 * injected first as a second clock track. Fatal on I/O failure.
 */
inline void
writeEventTrace(EventTrace &trace, const std::string &path)
{
    SMTHILL_PROF_SCOPE("bench.export");
    if (prof::profilingEnabled())
        prof::appendHostSpans(trace);
    bool as_jsonl =
        path.size() >= 6 &&
        path.compare(path.size() - 6, 6, ".jsonl") == 0;
    std::ofstream out(path, std::ios::binary);
    out << (as_jsonl ? trace.toJsonl()
                     : trace.toPerfettoJson().dump(2) + "\n");
    if (!out)
        fatal(msg("cannot write '", path, "'"));
    std::printf("wrote %s event trace to %s (%zu events, %llu "
                "dropped)\n",
                as_jsonl ? "JSONL" : "Perfetto", path.c_str(),
                trace.size(),
                static_cast<unsigned long long>(trace.dropped()));
}

/**
 * Write @p doc to @p path, read the file back, and reparse it. The
 * caller re-derives its figure values from the returned document and
 * checks them against the stdout path, proving the export is a
 * faithful substitute for scraping the tables. Fatal on I/O or parse
 * failure.
 */
inline Json
writeAndReloadJson(const std::string &path, const Json &doc)
{
    SMTHILL_PROF_SCOPE("bench.export");
    {
        std::ofstream out(path, std::ios::binary);
        out << doc.dump(2) << '\n';
        if (!out)
            fatal(msg("cannot write '", path, "'"));
    }
    std::ifstream in(path, std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (!in)
        fatal(msg("cannot read back '", path, "'"));
    Json reloaded;
    std::string error;
    if (!Json::parse(text, reloaded, error))
        fatal(msg("export '", path, "' does not reparse: ", error));
    return reloaded;
}

/** Fatal unless @p a and @p b are bit-identical doubles. */
inline void
checkExportValue(const char *what, double a, double b)
{
    if (a != b)
        fatal(msg("export self-check failed for ", what, ": ", a,
                  " != ", b));
}

/**
 * Emit the host-profile report when profiling is on: to
 * SMTHILL_PROFILE_JSON as a `smthill.profile.v1` document (with a
 * write/reload/reparse self-check, like the figure exports), or as a
 * compact stdout table of the heaviest spans. No-op when profiling
 * is off, keeping default bench output byte-identical.
 */
inline void
exportProfileIfEnabled()
{
    if (!prof::profilingEnabled())
        return;
    const prof::ProfileReport report = prof::profileReport();
    const std::string path = profileJsonPath();
    if (!path.empty()) {
        Json reloaded =
            writeAndReloadJson(path, prof::profileToJson(report));
        prof::ProfileReport back;
        std::string error;
        if (!prof::profileFromJson(reloaded, back, error))
            fatal(msg("profile export '", path,
                      "' does not reload: ", error));
        std::printf("wrote host profile to %s (%zu spans, "
                    "parallel_efficiency %.3f)\n",
                    path.c_str(), report.spans.size(),
                    report.parallelEfficiency);
        return;
    }
    std::vector<prof::SpanStats> spans = report.spans;
    std::sort(spans.begin(), spans.end(),
              [](const prof::SpanStats &a, const prof::SpanStats &b) {
                  return a.totalNs > b.totalNs;
              });
    std::printf("host profile (parallel_efficiency %.3f):\n",
                report.parallelEfficiency);
    std::printf("  %-28s %10s %12s %12s %12s\n", "span", "count",
                "total_ms", "self_ms", "max_ms");
    const std::size_t shown = spans.size() < 12 ? spans.size() : 12;
    for (std::size_t i = 0; i < shown; ++i) {
        const prof::SpanStats &s = spans[i];
        std::printf("  %-28s %10llu %12.3f %12.3f %12.3f\n",
                    s.name.c_str(),
                    static_cast<unsigned long long>(s.count),
                    static_cast<double>(s.totalNs) / 1e6,
                    static_cast<double>(s.selfNs) / 1e6,
                    static_cast<double>(s.maxNs) / 1e6);
    }
}

} // namespace smthill::benchutil

#endif // SMTHILL_BENCH_BENCH_COMMON_HH
