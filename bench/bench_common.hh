/**
 * @file
 * Helpers shared by the figure/table benches: standard baselines,
 * group-mean bookkeeping, and percent-gain reporting.
 */

#ifndef SMTHILL_BENCH_BENCH_COMMON_HH
#define SMTHILL_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/event_trace.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/stat_registry.hh"
#include "harness/runner.hh"

namespace smthill::benchutil
{

/** Mean-by-key accumulator (per workload group, per policy...). */
class GroupMeans
{
  public:
    void
    add(const std::string &key, double value)
    {
        auto &e = sums[key];
        e.first += value;
        e.second += 1;
    }

    double
    mean(const std::string &key) const
    {
        auto it = sums.find(key);
        if (it == sums.end() || it->second.second == 0)
            return 0.0;
        return it->second.first / it->second.second;
    }

  private:
    std::map<std::string, std::pair<double, int>> sums;
};

/** @return percent gain of a over b. */
inline double
pctGain(double a, double b)
{
    return b > 0.0 ? 100.0 * (a / b - 1.0) : 0.0;
}

/** Print a "X vs Y: +Z%" line. */
inline void
printGain(const char *what, double ours, double theirs)
{
    std::printf("  %-28s %+6.1f%%\n", what, pctGain(ours, theirs));
}

/** Solo-IPC window used consistently across benches. */
inline Cycle
soloWindow(const RunConfig &rc)
{
    return static_cast<Cycle>(rc.epochs) * rc.epochSize;
}

/**
 * Grid concurrency for benches: SMTHILL_JOBS pins it (CI sets 1 for
 * byte-stable logs), otherwise all hardware threads are used.
 */
inline int
benchJobs()
{
    return static_cast<int>(envScale(
        "SMTHILL_JOBS",
        static_cast<std::uint64_t>(ThreadPool::defaultJobs())));
}

/**
 * Export destination for the machine-readable figure data
 * (SMTHILL_STATS_JSON); empty disables the export path entirely.
 */
inline std::string
statsJsonPath()
{
    const char *p = std::getenv("SMTHILL_STATS_JSON");
    return p && *p ? p : "";
}

/**
 * Opt-in cycle-level event-trace destination (SMTHILL_EVENT_TRACE);
 * empty disables tracing entirely.
 */
inline std::string
eventTracePath()
{
    const char *p = std::getenv("SMTHILL_EVENT_TRACE");
    return p && *p ? p : "";
}

/**
 * Write @p trace to @p path: a ".jsonl" extension selects the JSONL
 * stream form, anything else the Chrome trace-event / Perfetto JSON
 * document. Fatal on I/O failure.
 */
inline void
writeEventTrace(const EventTrace &trace, const std::string &path)
{
    bool as_jsonl =
        path.size() >= 6 &&
        path.compare(path.size() - 6, 6, ".jsonl") == 0;
    std::ofstream out(path, std::ios::binary);
    out << (as_jsonl ? trace.toJsonl()
                     : trace.toPerfettoJson().dump(2) + "\n");
    if (!out)
        fatal(msg("cannot write '", path, "'"));
    std::printf("wrote %s event trace to %s (%zu events, %llu "
                "dropped)\n",
                as_jsonl ? "JSONL" : "Perfetto", path.c_str(),
                trace.size(),
                static_cast<unsigned long long>(trace.dropped()));
}

/**
 * Write @p doc to @p path, read the file back, and reparse it. The
 * caller re-derives its figure values from the returned document and
 * checks them against the stdout path, proving the export is a
 * faithful substitute for scraping the tables. Fatal on I/O or parse
 * failure.
 */
inline Json
writeAndReloadJson(const std::string &path, const Json &doc)
{
    {
        std::ofstream out(path, std::ios::binary);
        out << doc.dump(2) << '\n';
        if (!out)
            fatal(msg("cannot write '", path, "'"));
    }
    std::ifstream in(path, std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (!in)
        fatal(msg("cannot read back '", path, "'"));
    Json reloaded;
    std::string error;
    if (!Json::parse(text, reloaded, error))
        fatal(msg("export '", path, "' does not reparse: ", error));
    return reloaded;
}

/** Fatal unless @p a and @p b are bit-identical doubles. */
inline void
checkExportValue(const char *what, double a, double b)
{
    if (a != b)
        fatal(msg("export self-check failed for ", what, ": ", a,
                  " != ", b));
}

} // namespace smthill::benchutil

#endif // SMTHILL_BENCH_BENCH_COMMON_HH
