/**
 * @file
 * Figure 10: every technique evaluated under all three performance
 * metrics — (a) weighted IPC, (b) average IPC, (c) harmonic mean of
 * weighted IPC — with hill climbing learning under each metric in
 * turn (HILL-IPC / HILL-WIPC / HILL-HWIPC). The paper's key finding:
 * hill climbing does best under a given evaluation metric when it
 * learns with that same metric (+5.9% matched vs mismatched), a
 * capability the fixed-policy baselines lack.
 *
 * The grid also runs the alternative learners with their reward
 * selected from the same three metrics (BANDIT-* via UCB1 arm
 * rewards, RL-* via Q-learning rewards), so the matched-diagonal
 * question is asked of every learning rule, not just hill climbing.
 *
 * Results are summarized by workload group, as in the paper.
 * Scale with SMTHILL_EPOCHS (default 32).
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/hill_climbing.hh"
#include "harness/table.hh"
#include "policy/bandit.hh"
#include "policy/dcra.hh"
#include "policy/flush.hh"
#include "policy/icount.hh"
#include "policy/rl_alloc.hh"

using namespace smthill;
using namespace smthill::benchutil;

int
main()
{
    banner("Figure 10: metric cross-comparison by workload group");

    RunConfig rc = benchRunConfig(20);

    const PerfMetric metrics[] = {PerfMetric::WeightedIpc,
                                  PerfMetric::AvgIpc,
                                  PerfMetric::HarmonicWeightedIpc};
    const char *policy_names[] = {
        "ICOUNT",      "FLUSH",      "DCRA",
        "HILL-IPC",    "HILL-WIPC",  "HILL-HWIPC",
        "BANDIT-IPC",  "BANDIT-WIPC", "BANDIT-HWIPC",
        "RL-IPC",      "RL-WIPC",    "RL-HWIPC",
    };
    constexpr int kNumPolicies =
        static_cast<int>(sizeof(policy_names) / sizeof(policy_names[0]));

    // Learning metric for the learner columns (3..11): each family
    // cycles IPC / WIPC / HWIPC in the same order.
    auto learnMetric = [](int pi) {
        switch ((pi - 3) % 3) {
          case 0:
            return PerfMetric::AvgIpc;
          case 1:
            return PerfMetric::WeightedIpc;
          default:
            return PerfMetric::HarmonicWeightedIpc;
        }
    };

    // results[policy][eval_metric][group] accumulated as means.
    GroupMeans means;

    // The grid is workload x policy: every cell builds its own
    // policy and machine, so all kNumPolicies x |workloads| runs are
    // independent; evaluation values land in per-cell slots and the
    // means accumulate serially afterwards.
    const std::vector<Workload> &workloads = allWorkloads();
    const std::size_t cells = workloads.size() * kNumPolicies;
    std::vector<std::array<double, 3>> values(cells);

    runGrid(cells, rc.jobs, [&](std::size_t cell) {
        const Workload &w = workloads[cell / kNumPolicies];
        const int pi = static_cast<int>(cell % kNumPolicies);
        auto solo = soloIpcs(w, rc, soloWindow(rc));
        const std::uint64_t seed =
            rc.seedSalt + 1 + cell / kNumPolicies;

        std::unique_ptr<ResourcePolicy> policy;
        switch (pi) {
          case 0:
            policy = std::make_unique<IcountPolicy>();
            break;
          case 1:
            policy = std::make_unique<FlushPolicy>();
            break;
          case 2:
            policy = std::make_unique<DcraPolicy>();
            break;
          case 3:
          case 4:
          case 5: {
            HillConfig hc;
            hc.epochSize = rc.epochSize;
            hc.metric = learnMetric(pi);
            policy = std::make_unique<HillClimbing>(hc);
            break;
          }
          case 6:
          case 7:
          case 8: {
            BanditConfig bc;
            bc.epochSize = rc.epochSize;
            bc.metric = learnMetric(pi);
            bc.seed = seed;
            bc.singleIpc = solo;
            policy = std::make_unique<BanditAllocator>(bc);
            break;
          }
          default: {
            RlConfig rlc;
            rlc.epochSize = rc.epochSize;
            rlc.metric = learnMetric(pi);
            rlc.seed = seed;
            rlc.singleIpc = solo;
            policy = std::make_unique<RlAllocator>(rlc);
          }
        }
        RunResult res = runPolicy(w, *policy, rc);
        for (int mi = 0; mi < 3; ++mi)
            values[cell][mi] = res.metric(metrics[mi], solo);
    });

    for (std::size_t cell = 0; cell < cells; ++cell) {
        const Workload &w = workloads[cell / kNumPolicies];
        const int pi = static_cast<int>(cell % kNumPolicies);
        for (int mi = 0; mi < 3; ++mi) {
            double v = values[cell][mi];
            means.add(std::string(policy_names[pi]) + "/" +
                          metricName(metrics[mi]) + "/" + w.group,
                      v);
            means.add(std::string(policy_names[pi]) + "/" +
                          metricName(metrics[mi]) + "/all",
                      v);
        }
    }

    for (PerfMetric em : metrics) {
        std::printf("\n-- evaluated under %s --\n", metricName(em));
        std::vector<std::string> headers = {"policy"};
        for (const auto &g : workloadGroups())
            headers.push_back(g);
        headers.push_back("all");
        Table t(headers);
        for (const char *pn : policy_names) {
            t.beginRow();
            t.cell(std::string(pn));
            for (const auto &g : workloadGroups())
                t.cell(means.mean(std::string(pn) + "/" +
                                  metricName(em) + "/" + g));
            t.cell(means.mean(std::string(pn) + "/" + metricName(em) +
                              "/all"));
        }
        t.print();
    }

    // The matched-metric diagonal (paper: matched beats mismatched by
    // ~5.9% on average), asked of every learning rule in the race.
    const char *eval_names[] = {"IPC", "WIPC", "HWIPC"};
    const char *families[] = {"HILL", "BANDIT", "RL"};
    for (const char *fam : families) {
        std::printf("\n%s matched vs mismatched learning metric "
                    "(overall):\n",
                    fam);
        for (int e = 0; e < 3; ++e) {
            double matched = means.mean(std::string(fam) + "-" +
                                        eval_names[e] + "/" +
                                        eval_names[e] + "/all");
            double mism = 0.0;
            for (int l = 0; l < 3; ++l)
                if (l != e)
                    mism += means.mean(std::string(fam) + "-" +
                                       eval_names[l] + "/" +
                                       eval_names[e] + "/all");
            mism /= 2.0;
            std::printf("  eval %-6s matched=%.3f mismatched=%.3f "
                        "(%+.1f%%)\n",
                        eval_names[e], matched, mism,
                        pctGain(matched, mism));
        }
    }
    return 0;
}
