/**
 * @file
 * Open-system traffic scenario: jobs arrive on a seeded exponential
 * process, attach to free hardware contexts, run a bounded
 * instruction stream, and depart. The lambda sweep crosses three
 * arrival intensities (mean inter-arrival gap 64K / 16K / 4K cycles)
 * with six policies (ICOUNT, DCRA, HILL, PHASE-HILL, BANDIT, RL) —
 * the full learner family racing on identical arrival schedules —
 * and reports job throughput, sojourn-latency tails (p50/p95/p99),
 * and Jain fairness over priority-weighted per-job IPCs: the
 * serving-system regime the paper's closed 2-4-thread mixes cannot
 * exercise.
 *
 * Cells share one cold-machine checkpoint through a MachineArena
 * (restoreFrom per cell instead of full construction), which is
 * bit-identical to fresh construction because the cold machine is a
 * pure function of the machine shape. Every cell is an independent
 * deterministic run, so results are bit-identical across
 * SMTHILL_JOBS settings and same-seed reruns.
 * Scale with SMTHILL_OS_JOBS (jobs per run, default 12) and
 * SMTHILL_SEED; export with SMTHILL_STATS_JSON
 * (`smthill.bench.open-system.v1`); trace one run with
 * SMTHILL_EVENT_TRACE.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "core/hill_climbing.hh"
#include "core/machine_arena.hh"
#include "harness/table.hh"
#include "phase/phase_hill.hh"
#include "policy/bandit.hh"
#include "policy/dcra.hh"
#include "policy/icount.hh"
#include "policy/rl_alloc.hh"
#include "workload/open_system.hh"

using namespace smthill;
using namespace smthill::benchutil;

namespace
{

constexpr int kNumPolicies = 6;

std::unique_ptr<ResourcePolicy>
makePolicy(int pi, Cycle epoch_size, std::uint64_t seed)
{
    switch (pi) {
      case 0:
        return std::make_unique<IcountPolicy>();
      case 1:
        return std::make_unique<DcraPolicy>();
      case 2: {
        HillConfig hc;
        hc.epochSize = epoch_size;
        return std::make_unique<HillClimbing>(hc);
      }
      case 3: {
        HillConfig hc;
        hc.epochSize = epoch_size;
        return std::make_unique<PhaseHillClimbing>(hc);
      }
      case 4: {
        BanditConfig bc;
        bc.epochSize = epoch_size;
        bc.seed = seed;
        return std::make_unique<BanditAllocator>(bc);
      }
      default: {
        RlConfig rc;
        rc.epochSize = epoch_size;
        rc.seed = seed;
        return std::make_unique<RlAllocator>(rc);
      }
    }
}

} // namespace

int
main()
{
    banner("Open-system lambda sweep: arrival traffic vs policy");

    RunConfig rc = benchRunConfig(16);

    SmtConfig machine = rc.machine;
    machine.numThreads = 4;

    OpenSystemConfig base;
    base.seed = envScale("SMTHILL_SEED", 1);
    base.numJobs = static_cast<int>(envScale("SMTHILL_OS_JOBS", 12));
    base.minJobInstructions = 20'000;
    base.maxJobInstructions = 60'000;
    base.epochSize = rc.epochSize;
    base.horizon = envScale("SMTHILL_OS_HORIZON", 16'000'000);
    base.slaWeights = true;

    const Cycle mean_gaps[] = {64 * 1024, 16 * 1024, 4 * 1024};
    const char *policy_names[] = {"ICOUNT", "DCRA", "HILL",
                                  "PHASE-HILL", "BANDIT", "RL"};
    constexpr std::size_t kNumGaps =
        sizeof(mean_gaps) / sizeof(mean_gaps[0]);

    const std::size_t cells = kNumGaps * kNumPolicies;
    std::vector<OpenSystemResult> results(cells);

    // Warm-machine fast path: the cold machine every cell starts
    // from is identical across the sweep (same shape, same pool), so
    // build it once and restore per worker instead of reconstructing
    // the cache hierarchy and predictors cells-times over.
    const int jobs = benchJobs();
    OpenSystem proto(machine, base);
    const SmtCpu checkpoint = proto.makeMachine();
    MachineArena arena(jobs);

    // Opt-in time series: one smthill.snapshots.v1 delta row per
    // completed cell (host telemetry only; cell results are
    // unaffected).
    SnapshotSink snapshots(snapshotsPath());

    runGridWorker(cells, jobs, [&](std::size_t cell, int worker) {
        const Cycle gap = mean_gaps[cell / kNumPolicies];
        const int pi = static_cast<int>(cell % kNumPolicies);
        OpenSystemConfig cfg = base;
        cfg.arrivalRate = 1.0 / static_cast<double>(gap);
        OpenSystem sys(machine, cfg);
        auto policy = makePolicy(pi, cfg.epochSize, base.seed);
        SmtCpu &cpu = arena.acquire(worker, checkpoint);
        results[cell] = sys.runOn(cpu, *policy);
        snapshots.sample(cell, results[cell].cycles);
    });

    for (std::size_t gi = 0; gi < kNumGaps; ++gi) {
        std::printf("\n-- mean inter-arrival gap %llu cycles --\n",
                    static_cast<unsigned long long>(mean_gaps[gi]));
        Table t({"policy", "jobs/Mcyc", "p50", "p95", "p99", "fairness",
                 "done", "maxq"});
        for (int pi = 0; pi < kNumPolicies; ++pi) {
            const OpenSystemResult &res =
                results[gi * kNumPolicies + pi];
            LatencyStats lat = jobLatencyStats(res);
            double fair = jainFairness(priorityWeightedJobIpcs(res));
            t.beginRow();
            t.cell(std::string(policy_names[pi]));
            t.cell(jobThroughput(res));
            t.cell(lat.p50, 0);
            t.cell(lat.p95, 0);
            t.cell(lat.p99, 0);
            t.cell(fair, 3);
            t.cell(static_cast<double>(res.completedJobs), 0);
            t.cell(static_cast<double>(res.maxQueueDepth), 0);
        }
        t.print();
    }

    // Optional cycle-level trace of one run (HILL at the heaviest
    // traffic): the job.arrive/job.attach/job.depart markers land on
    // the same timeline as the machine and learner events.
    std::string trace_path = eventTracePath();
    if (!trace_path.empty()) {
        OpenSystemConfig cfg = base;
        cfg.arrivalRate =
            1.0 / static_cast<double>(mean_gaps[kNumGaps - 1]);
        OpenSystem sys(machine, cfg);
        auto policy = makePolicy(2, cfg.epochSize, base.seed);
        EventTrace trace;
        trace.processName(1, "open-system HILL");
        sys.run(*policy, &trace, 1);
        writeEventTrace(trace, trace_path);
    }

    std::string stats_path = statsJsonPath();
    if (!stats_path.empty()) {
        Json doc = Json::object();
        doc.set("schema", Json("smthill.bench.open-system.v1"));
        doc.set("seed", Json(base.seed));
        doc.set("machine_threads", Json(machine.numThreads));
        doc.set("num_jobs", Json(base.numJobs));
        Json rows = Json::array();
        for (std::size_t cell = 0; cell < cells; ++cell) {
            const OpenSystemResult &res = results[cell];
            LatencyStats lat = jobLatencyStats(res);
            Json row = Json::object();
            row.set("mean_gap",
                    Json(mean_gaps[cell / kNumPolicies]));
            row.set("policy",
                    Json(policy_names[cell % kNumPolicies]));
            row.set("throughput", Json(jobThroughput(res)));
            row.set("latency_p50", Json(lat.p50));
            row.set("latency_p95", Json(lat.p95));
            row.set("latency_p99", Json(lat.p99));
            row.set("fairness",
                    Json(jainFairness(priorityWeightedJobIpcs(res))));
            row.set("completed_jobs", Json(res.completedJobs));
            row.set("horizon_jobs", Json(res.horizonJobs));
            row.set("max_queue_depth", Json(res.maxQueueDepth));
            row.set("cycles", Json(res.cycles));
            row.set("committed_total", Json(res.committedTotal));
            rows.push(std::move(row));
        }
        doc.set("rows", std::move(rows));

        Json reloaded = writeAndReloadJson(stats_path, doc);
        const Json &row0 = reloaded.at("rows").items().front();
        checkExportValue("throughput", row0.at("throughput").asDouble(),
                         jobThroughput(results[0]));
        checkExportValue("latency_p99",
                         row0.at("latency_p99").asDouble(),
                         jobLatencyStats(results[0]).p99);
        std::printf("wrote open-system stats to %s\n",
                    stats_path.c_str());
    }
    exportProfileIfEnabled();
    return 0;
}
