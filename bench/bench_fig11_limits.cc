/**
 * @file
 * Figure 11: hill-climbing against the ideal off-line learners.
 * Top: HILL-WIPC vs OFF-LINE on the 21 two-thread workloads (paper:
 * hill achieves 96.6% of ideal). Bottom: DCRA vs HILL-WIPC vs
 * RAND-HILL on the 21 four-thread workloads (paper: hill achieves
 * 94.1% of RAND-HILL; RAND-HILL beats DCRA by 7.4%).
 *
 * Scale with SMTHILL_EPOCHS (default 10), SMTHILL_OFFLINE_STRIDE
 * (default 16), SMTHILL_RANDHILL_ITERS (default 32; paper 128).
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/hill_climbing.hh"
#include "core/offline_exhaustive.hh"
#include "core/rand_hill.hh"
#include "harness/table.hh"
#include "policy/dcra.hh"

using namespace smthill;
using namespace smthill::benchutil;

int
main()
{
    banner("Figure 11: HILL-WIPC vs ideal learners");

    RunConfig rc = benchRunConfig(8);
    const int stride =
        static_cast<int>(envScale("SMTHILL_OFFLINE_STRIDE", 16));
    const int iters =
        static_cast<int>(envScale("SMTHILL_RANDHILL_ITERS", 24));

    // ---- top: 2-thread, HILL vs OFF-LINE -------------------------
    // Both halves fan their workload cells across rc.jobs threads;
    // rows are filled per-cell and printed in order afterwards.
    std::printf("\n-- 2-thread: HILL-WIPC vs OFF-LINE --\n");
    GroupMeans means;

    struct TwoRow
    {
        double hill, off;
    };
    const std::vector<Workload> two = twoThreadWorkloads();
    std::vector<TwoRow> two_rows(two.size());
    runGrid(two.size(), rc.jobs, [&](std::size_t i) {
        const Workload &w = two[i];
        auto solo = soloIpcs(w, rc, soloWindow(rc));

        HillConfig hc;
        hc.epochSize = rc.epochSize;
        hc.metric = PerfMetric::WeightedIpc;
        HillClimbing hill(hc);
        two_rows[i].hill =
            runPolicy(w, hill, rc).metric(PerfMetric::WeightedIpc, solo);

        OfflineConfig oc;
        oc.epochSize = rc.epochSize;
        oc.stride = stride;
        oc.singleIpc = solo;
        OfflineExhaustive off(oc);
        SmtCpu cpu = makeCpu(w, rc);
        two_rows[i].off = off.run(cpu, rc.epochs).meanMetric();
    });

    Table top({"workload", "group", "HILL-WIPC", "OFF-LINE",
               "hill/ideal"});
    for (std::size_t i = 0; i < two.size(); ++i) {
        const Workload &w = two[i];
        double m_hill = two_rows[i].hill;
        double m_off = two_rows[i].off;
        top.beginRow();
        top.cell(w.name);
        top.cell(w.group);
        top.cell(m_hill);
        top.cell(m_off);
        top.cell(m_off > 0 ? m_hill / m_off : 0.0);
        means.add("2T/HILL", m_hill);
        means.add("2T/OFF", m_off);
    }
    top.print();
    std::printf("hill achieves %.1f%% of OFF-LINE (paper: 96.6%%)\n",
                100.0 * means.mean("2T/HILL") / means.mean("2T/OFF"));

    // ---- bottom: 4-thread, DCRA vs HILL vs RAND-HILL -------------
    std::printf("\n-- 4-thread: DCRA vs HILL-WIPC vs RAND-HILL --\n");

    struct FourRow
    {
        double dcra, hill, rand;
    };
    const std::vector<Workload> four = fourThreadWorkloads();
    std::vector<FourRow> four_rows(four.size());
    runGrid(four.size(), rc.jobs, [&](std::size_t i) {
        const Workload &w = four[i];
        auto solo = soloIpcs(w, rc, soloWindow(rc));

        DcraPolicy dcra;
        four_rows[i].dcra =
            runPolicy(w, dcra, rc).metric(PerfMetric::WeightedIpc, solo);

        HillConfig hc;
        hc.epochSize = rc.epochSize;
        hc.metric = PerfMetric::WeightedIpc;
        HillClimbing hill(hc);
        four_rows[i].hill =
            runPolicy(w, hill, rc).metric(PerfMetric::WeightedIpc, solo);

        RandHillConfig rh;
        rh.epochSize = rc.epochSize;
        rh.iterations = iters;
        rh.singleIpc = solo;
        RandHill rand_hill(rh);
        SmtCpu cpu = makeCpu(w, rc);
        four_rows[i].rand = rand_hill.run(cpu, rc.epochs).meanMetric();
    });

    Table bot({"workload", "group", "DCRA", "HILL-WIPC", "RAND-HILL",
               "hill/ideal"});
    for (std::size_t i = 0; i < four.size(); ++i) {
        const Workload &w = four[i];
        double m_dcra = four_rows[i].dcra;
        double m_hill = four_rows[i].hill;
        double m_rand = four_rows[i].rand;
        bot.beginRow();
        bot.cell(w.name);
        bot.cell(w.group);
        bot.cell(m_dcra);
        bot.cell(m_hill);
        bot.cell(m_rand);
        bot.cell(m_rand > 0 ? m_hill / m_rand : 0.0);
        means.add("4T/DCRA", m_dcra);
        means.add("4T/HILL", m_hill);
        means.add("4T/RAND", m_rand);
    }
    bot.print();
    std::printf("hill achieves %.1f%% of RAND-HILL (paper: 94.1%%)\n",
                100.0 * means.mean("4T/HILL") / means.mean("4T/RAND"));
    printGain("RAND-HILL over DCRA (paper +7.4%)", means.mean("4T/RAND"),
              means.mean("4T/DCRA"));
    return 0;
}
