/**
 * @file
 * Ablation sweeps for the design choices DESIGN.md calls out:
 *   1. epoch size (Section 3.1.1 says 64K cycles is consistently
 *      good: too small -> inter-epoch jitter, too large -> slow
 *      adaptation);
 *   2. the hill step Delta (the paper uses 4);
 *   3. the epoch-boundary software cost (the paper charges 200
 *      cycles and argues it is negligible);
 *   4. partitioning granularity: hill climbing vs a static equal
 *      split vs no partitioning at all (ICOUNT).
 *
 * Run on three representative workloads. Scale with SMTHILL_EPOCHS
 * (default 32, in 64K-cycle-equivalents of simulated time).
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/hill_climbing.hh"
#include "harness/table.hh"
#include "policy/icount.hh"
#include "policy/static_partition.hh"

using namespace smthill;
using namespace smthill::benchutil;

namespace
{

const char *kWorkloads[] = {"art-mcf", "swim-twolf", "art-gzip"};

double
runHill(const Workload &w, const RunConfig &rc, HillConfig hc,
        const std::array<double, kMaxThreads> &solo)
{
    HillClimbing hill(hc);
    return runPolicy(w, hill, rc).metric(PerfMetric::WeightedIpc, solo);
}

} // namespace

int
main()
{
    banner("Ablations: epoch size, Delta, software cost, partitioning");

    RunConfig base = benchRunConfig(32);
    const Cycle budget =
        static_cast<Cycle>(base.epochs) * base.epochSize;

    // 1. Epoch size sweep (same total simulated cycles).
    std::printf("\n-- epoch size (weighted IPC; total cycles fixed) --\n");
    {
        Table t({"workload", "8K", "16K", "32K", "64K", "128K"});
        for (const char *wn : kWorkloads) {
            const Workload &w = workloadByName(wn);
            auto solo = soloIpcs(w, base, budget);
            t.beginRow();
            t.cell(w.name);
            for (Cycle es : {8u * 1024u, 16u * 1024u, 32u * 1024u,
                             64u * 1024u, 128u * 1024u}) {
                RunConfig rc = base;
                rc.epochSize = es;
                rc.epochs = static_cast<int>(budget / es);
                HillConfig hc;
                hc.epochSize = es;
                hc.metric = PerfMetric::WeightedIpc;
                t.cell(runHill(w, rc, hc, solo));
            }
        }
        t.print();
    }

    // 2. Delta sweep.
    std::printf("\n-- hill step Delta (paper uses 4) --\n");
    {
        Table t({"workload", "d=1", "d=2", "d=4", "d=8", "d=16"});
        for (const char *wn : kWorkloads) {
            const Workload &w = workloadByName(wn);
            auto solo = soloIpcs(w, base, budget);
            t.beginRow();
            t.cell(w.name);
            for (int delta : {1, 2, 4, 8, 16}) {
                HillConfig hc;
                hc.epochSize = base.epochSize;
                hc.metric = PerfMetric::WeightedIpc;
                hc.delta = delta;
                hc.minShare = delta;
                t.cell(runHill(w, base, hc, solo));
            }
        }
        t.print();
    }

    // 3. Software cost.
    std::printf("\n-- epoch-boundary software cost --\n");
    {
        Table t({"workload", "0 cycles", "200 cycles", "2000 cycles"});
        for (const char *wn : kWorkloads) {
            const Workload &w = workloadByName(wn);
            auto solo = soloIpcs(w, base, budget);
            t.beginRow();
            t.cell(w.name);
            for (Cycle cost : {Cycle{0}, Cycle{200}, Cycle{2000}}) {
                HillConfig hc;
                hc.epochSize = base.epochSize;
                hc.metric = PerfMetric::WeightedIpc;
                hc.softwareCost = cost;
                t.cell(runHill(w, base, hc, solo));
            }
        }
        t.print();
    }

    // 4. Partitioning granularity.
    std::printf("\n-- partitioning: none vs static-equal vs learned --\n");
    {
        Table t({"workload", "ICOUNT(none)", "STATIC(equal)", "HILL"});
        for (const char *wn : kWorkloads) {
            const Workload &w = workloadByName(wn);
            auto solo = soloIpcs(w, base, budget);
            IcountPolicy icount;
            StaticPartitionPolicy fixed;
            HillConfig hc;
            hc.epochSize = base.epochSize;
            hc.metric = PerfMetric::WeightedIpc;
            t.beginRow();
            t.cell(w.name);
            t.cell(runPolicy(w, icount, base)
                       .metric(PerfMetric::WeightedIpc, solo));
            t.cell(runPolicy(w, fixed, base)
                       .metric(PerfMetric::WeightedIpc, solo));
            t.cell(runHill(w, base, hc, solo));
        }
        t.print();
    }
    return 0;
}
