/**
 * @file
 * Table 3 plus the Figure 11 annotation rows: the 42 multiprogrammed
 * workloads with their summed resource requirements ("Rsc" column of
 * Table 3), their SM/LG classification against the machine's total
 * window, and the behavior the classification predicts (SS / TL /
 * JL), per Section 4.4.2.
 */

#include <cstdio>

#include "bench_common.hh"
#include "harness/table.hh"
#include "trace/spec_profiles.hh"
#include "workload/workloads.hh"

using namespace smthill;
using namespace smthill::benchutil;

namespace
{

/** Derived-characteristics label, Section 4.4.2. */
std::string
classify(const Workload &w)
{
    int threshold = w.numThreads() == 2 ? 256 : 416;
    if (w.paperRscSum() <= threshold)
        return "SM";
    bool high = false, low = false;
    for (const auto &b : w.benchmarks) {
        int f = specInfo(b).freqClass;
        high = high || f == 2;
        low = low || f == 1;
    }
    std::string tag = "LG(";
    if (low)
        tag += "L";
    if (high)
        tag += "H";
    if (!low && !high)
        tag += "-";
    return tag + ")";
}

/** Predicted time-varying behavior from the classification. */
std::string
predict(const std::string &cls)
{
    if (cls == "SM")
        return "SS";
    std::string out;
    if (cls.find('L') != std::string::npos)
        out += "TL";
    if (cls.find('H') != std::string::npos)
        out += out.empty() ? "JL" : "+JL";
    if (out.empty())
        out = "TL"; // large but static: learning time still binds
    return out;
}

} // namespace

int
main()
{
    banner("Table 3: multiprogrammed workloads, Rsc sums, and "
           "predicted behavior classes");

    for (const auto &group : workloadGroups()) {
        std::printf("\n-- %s --\n", group.c_str());
        const std::vector<Workload> ws = workloadsInGroup(group);

        // Classification cells run across the grid (cheap here, but
        // the same pattern as the simulation benches).
        struct Row
        {
            std::int64_t rsc;
            std::string cls;
        };
        std::vector<Row> rows(ws.size());
        runGrid(ws.size(), benchJobs(), [&](std::size_t i) {
            rows[i].rsc =
                static_cast<std::int64_t>(ws[i].paperRscSum());
            rows[i].cls = classify(ws[i]);
        });

        Table t({"workload", "Rsc(sum)", "class", "predicted",
                 "source"});
        for (std::size_t i = 0; i < ws.size(); ++i) {
            const Workload &w = ws[i];
            t.beginRow();
            t.cell(w.name);
            t.cell(rows[i].rsc);
            t.cell(rows[i].cls);
            t.cell(predict(rows[i].cls));
            t.cell(std::string(w.reconstructed ? "reconstructed"
                                               : "Table 3"));
        }
        t.print();
    }

    std::printf("\nSM workloads fit the 256-register window and should "
                "show spatially-stable (SS) behavior; LG(H) workloads\n"
                "predict jitter-limited (JL) and LG(L) temporally-"
                "limited (TL) behavior (Section 4.4.2).\n");
    return 0;
}
