/**
 * @file
 * Table 3 plus the Figure 11 annotation rows: the 42 multiprogrammed
 * workloads with their summed resource requirements ("Rsc" column of
 * Table 3), their SM/LG classification against the machine's total
 * window, and the behavior the classification predicts (SS / TL /
 * JL), per Section 4.4.2.
 */

#include <cstdio>

#include "harness/table.hh"
#include "trace/spec_profiles.hh"
#include "workload/workloads.hh"

using namespace smthill;

namespace
{

/** Derived-characteristics label, Section 4.4.2. */
std::string
classify(const Workload &w)
{
    int threshold = w.numThreads() == 2 ? 256 : 416;
    if (w.paperRscSum() <= threshold)
        return "SM";
    bool high = false, low = false;
    for (const auto &b : w.benchmarks) {
        int f = specInfo(b).freqClass;
        high = high || f == 2;
        low = low || f == 1;
    }
    std::string tag = "LG(";
    if (low)
        tag += "L";
    if (high)
        tag += "H";
    if (!low && !high)
        tag += "-";
    return tag + ")";
}

/** Predicted time-varying behavior from the classification. */
std::string
predict(const std::string &cls)
{
    if (cls == "SM")
        return "SS";
    std::string out;
    if (cls.find('L') != std::string::npos)
        out += "TL";
    if (cls.find('H') != std::string::npos)
        out += out.empty() ? "JL" : "+JL";
    if (out.empty())
        out = "TL"; // large but static: learning time still binds
    return out;
}

} // namespace

int
main()
{
    banner("Table 3: multiprogrammed workloads, Rsc sums, and "
           "predicted behavior classes");

    for (const auto &group : workloadGroups()) {
        std::printf("\n-- %s --\n", group.c_str());
        Table t({"workload", "Rsc(sum)", "class", "predicted",
                 "source"});
        for (const auto &w : workloadsInGroup(group)) {
            std::string cls = classify(w);
            t.beginRow();
            t.cell(w.name);
            t.cell(static_cast<std::int64_t>(w.paperRscSum()));
            t.cell(cls);
            t.cell(predict(cls));
            t.cell(std::string(w.reconstructed ? "reconstructed"
                                               : "Table 3"));
        }
        t.print();
    }

    std::printf("\nSM workloads fit the 256-register window and should "
                "show spatially-stable (SS) behavior; LG(H) workloads\n"
                "predict jitter-limited (JL) and LG(L) temporally-"
                "limited (TL) behavior (Section 4.4.2).\n");
    return 0;
}
