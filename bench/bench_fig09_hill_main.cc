/**
 * @file
 * Figure 9 (the paper's headline result): hill-climbing with
 * weighted-IPC feedback (HILL-WIPC) versus ICOUNT, FLUSH, and DCRA
 * on all 42 multiprogrammed workloads, evaluated under weighted IPC.
 * The paper reports +12.4% over ICOUNT, +11.3% over FLUSH, and
 * +2.4% over DCRA, with larger gains on 2-thread (+3.3%) than
 * 4-thread (+0.4%) workloads and the biggest MEM2 gain (+5.1%).
 *
 * Scale with SMTHILL_EPOCHS (default 64; the paper's 1B-instruction
 * windows correspond to thousands of epochs of learning time).
 *
 * SMTHILL_STATS_JSON=FILE additionally writes every cell as
 * `smthill.bench.fig09.v1` JSON, reparses the file, re-derives the
 * overall means and headline gains from the parsed cells, and fails
 * unless they are bit-identical to the stdout path.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/hill_climbing.hh"
#include "harness/table.hh"
#include "policy/dcra.hh"
#include "policy/flush.hh"
#include "policy/icount.hh"

using namespace smthill;
using namespace smthill::benchutil;

int
main()
{
    banner("Figure 9: HILL-WIPC vs ICOUNT / FLUSH / DCRA "
           "(42 workloads, weighted IPC)");

    RunConfig rc = benchRunConfig(48);

    // Workload cells run concurrently across rc.jobs threads; each
    // fills its own row, reduced/printed in workload order below.
    struct Row
    {
        double icount, flush, dcra, hill;
    };
    const std::vector<Workload> &workloads = allWorkloads();
    std::vector<Row> rows(workloads.size());

    runGrid(workloads.size(), rc.jobs, [&](std::size_t i) {
        const Workload &w = workloads[i];
        auto solo = soloIpcs(w, rc, soloWindow(rc));

        IcountPolicy icount;
        FlushPolicy flush;
        DcraPolicy dcra;
        HillConfig hc;
        hc.epochSize = rc.epochSize;
        hc.metric = PerfMetric::WeightedIpc;
        HillClimbing hill(hc);

        Row &r = rows[i];
        r.icount = runPolicy(w, icount, rc)
                       .metric(PerfMetric::WeightedIpc, solo);
        r.flush =
            runPolicy(w, flush, rc).metric(PerfMetric::WeightedIpc, solo);
        r.dcra =
            runPolicy(w, dcra, rc).metric(PerfMetric::WeightedIpc, solo);
        r.hill =
            runPolicy(w, hill, rc).metric(PerfMetric::WeightedIpc, solo);
    });

    Table t({"workload", "group", "ICOUNT", "FLUSH", "DCRA",
             "HILL-WIPC"});
    GroupMeans means;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const Workload &w = workloads[i];
        const Row &r = rows[i];
        t.beginRow();
        t.cell(w.name);
        t.cell(w.group);
        t.cell(r.icount);
        t.cell(r.flush);
        t.cell(r.dcra);
        t.cell(r.hill);

        for (const auto &key : {w.group, std::string("all"),
                                std::string(w.numThreads() == 2 ? "2T"
                                                                : "4T")}) {
            means.add(key + "/ICOUNT", r.icount);
            means.add(key + "/FLUSH", r.flush);
            means.add(key + "/DCRA", r.dcra);
            means.add(key + "/HILL", r.hill);
        }
    }
    t.print();

    std::printf("\ngroup means (weighted IPC):\n");
    for (const auto &g : workloadGroups()) {
        std::printf("  %-5s ICOUNT=%.3f FLUSH=%.3f DCRA=%.3f HILL=%.3f\n",
                    g.c_str(), means.mean(g + "/ICOUNT"),
                    means.mean(g + "/FLUSH"), means.mean(g + "/DCRA"),
                    means.mean(g + "/HILL"));
    }

    std::printf("\nHILL-WIPC gains (paper: +12.4%% / +11.3%% / +2.4%%):\n");
    printGain("over ICOUNT", means.mean("all/HILL"),
              means.mean("all/ICOUNT"));
    printGain("over FLUSH", means.mean("all/HILL"),
              means.mean("all/FLUSH"));
    printGain("over DCRA", means.mean("all/HILL"),
              means.mean("all/DCRA"));
    std::printf("\nby thread count (paper: 2T +3.3%%, 4T +0.4%% over "
                "DCRA):\n");
    printGain("2-thread over DCRA", means.mean("2T/HILL"),
              means.mean("2T/DCRA"));
    printGain("4-thread over DCRA", means.mean("4T/HILL"),
              means.mean("4T/DCRA"));
    printGain("MEM2 over DCRA (paper +5.1%)", means.mean("MEM2/HILL"),
              means.mean("MEM2/DCRA"));

    const std::string export_path = statsJsonPath();
    if (!export_path.empty()) {
        Json doc = Json::object();
        doc.set("schema", Json("smthill.bench.fig09.v1"));
        doc.set("epochs", Json(rc.epochs));
        doc.set("epoch_size", Json(rc.epochSize));
        Json cells = Json::array();
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            Json c = Json::object();
            c.set("workload", Json(workloads[i].name));
            c.set("group", Json(workloads[i].group));
            c.set("threads", Json(workloads[i].numThreads()));
            c.set("icount", Json(rows[i].icount));
            c.set("flush", Json(rows[i].flush));
            c.set("dcra", Json(rows[i].dcra));
            c.set("hill", Json(rows[i].hill));
            cells.push(std::move(c));
        }
        doc.set("cells", std::move(cells));
        doc.set("counters", globalStats().toJson());

        // Re-derive the overall means from the re-parsed cells and
        // demand bit-identity with the stdout path. GroupMeans adds
        // values in the same (workload) order, so the float sums are
        // reproducible exactly.
        Json re = writeAndReloadJson(export_path, doc);
        GroupMeans remeans;
        for (const Json &c : re.at("cells").items()) {
            remeans.add("all/ICOUNT", c.at("icount").asDouble());
            remeans.add("all/FLUSH", c.at("flush").asDouble());
            remeans.add("all/DCRA", c.at("dcra").asDouble());
            remeans.add("all/HILL", c.at("hill").asDouble());
        }
        for (const char *k : {"ICOUNT", "FLUSH", "DCRA", "HILL"})
            checkExportValue(k,
                             remeans.mean(std::string("all/") + k),
                             means.mean(std::string("all/") + k));
        std::printf("\nexported %s (overall means re-derived from the "
                    "file match)\n",
                    export_path.c_str());
    }
    return 0;
}
