/**
 * @file
 * Figure 9 (the paper's headline result): hill-climbing with
 * weighted-IPC feedback (HILL-WIPC) versus ICOUNT, FLUSH, and DCRA
 * on all 42 multiprogrammed workloads, evaluated under weighted IPC.
 * The paper reports +12.4% over ICOUNT, +11.3% over FLUSH, and
 * +2.4% over DCRA, with larger gains on 2-thread (+3.3%) than
 * 4-thread (+0.4%) workloads and the biggest MEM2 gain (+5.1%).
 *
 * The grid also races the full learner family on identical seeds:
 * PHASE-HILL, BANDIT (UCB1 over the partition lattice), and RL
 * (epsilon-greedy Q-learning over anchor moves) run the same
 * workloads under the same weighted-IPC yardstick, so the table
 * doubles as the learner-race result quoted in EXPERIMENTS.md.
 *
 * Scale with SMTHILL_EPOCHS (default 64; the paper's 1B-instruction
 * windows correspond to thousands of epochs of learning time).
 *
 * SMTHILL_STATS_JSON=FILE additionally writes every cell as
 * `smthill.bench.learner-race.v1` JSON, reparses the file, re-derives
 * the overall means and headline gains from the parsed cells, and
 * fails unless they are bit-identical to the stdout path.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/hill_climbing.hh"
#include "harness/table.hh"
#include "phase/phase_hill.hh"
#include "policy/bandit.hh"
#include "policy/dcra.hh"
#include "policy/flush.hh"
#include "policy/icount.hh"
#include "policy/rl_alloc.hh"

using namespace smthill;
using namespace smthill::benchutil;

int
main()
{
    banner("Figure 9: HILL-WIPC vs ICOUNT / FLUSH / DCRA "
           "(42 workloads, weighted IPC)");

    RunConfig rc = benchRunConfig(48);

    // Workload cells run concurrently across rc.jobs threads; each
    // fills its own row, reduced/printed in workload order below.
    struct Row
    {
        double icount, flush, dcra, hill, phase, bandit, rl;
    };
    const std::vector<Workload> &workloads = allWorkloads();
    std::vector<Row> rows(workloads.size());

    // Opt-in time series: one smthill.snapshots.v1 delta row per
    // completed workload cell (host telemetry only; the race results
    // are unaffected).
    SnapshotSink snapshots(snapshotsPath());

    runGrid(workloads.size(), rc.jobs, [&](std::size_t i) {
        const Workload &w = workloads[i];
        auto solo = soloIpcs(w, rc, soloWindow(rc));

        // Every learner in the race gets the same per-cell seed, so
        // the comparison varies only the learning rule.
        const std::uint64_t seed = rc.seedSalt + 1 + i;

        IcountPolicy icount;
        FlushPolicy flush;
        DcraPolicy dcra;
        HillConfig hc;
        hc.epochSize = rc.epochSize;
        hc.metric = PerfMetric::WeightedIpc;
        HillClimbing hill(hc);
        PhaseHillClimbing phase(hc);
        BanditConfig bc;
        bc.epochSize = rc.epochSize;
        bc.metric = PerfMetric::WeightedIpc;
        bc.seed = seed;
        bc.singleIpc = solo;
        BanditAllocator bandit(bc);
        RlConfig rlc;
        rlc.epochSize = rc.epochSize;
        rlc.metric = PerfMetric::WeightedIpc;
        rlc.seed = seed;
        rlc.singleIpc = solo;
        RlAllocator rl(rlc);

        Row &r = rows[i];
        r.icount = runPolicy(w, icount, rc)
                       .metric(PerfMetric::WeightedIpc, solo);
        r.flush =
            runPolicy(w, flush, rc).metric(PerfMetric::WeightedIpc, solo);
        r.dcra =
            runPolicy(w, dcra, rc).metric(PerfMetric::WeightedIpc, solo);
        r.hill =
            runPolicy(w, hill, rc).metric(PerfMetric::WeightedIpc, solo);
        r.phase =
            runPolicy(w, phase, rc).metric(PerfMetric::WeightedIpc, solo);
        r.bandit = runPolicy(w, bandit, rc)
                       .metric(PerfMetric::WeightedIpc, solo);
        r.rl = runPolicy(w, rl, rc).metric(PerfMetric::WeightedIpc, solo);
        snapshots.sample(i, 0);
    });

    Table t({"workload", "group", "ICOUNT", "FLUSH", "DCRA",
             "HILL-WIPC", "PHASE", "BANDIT", "RL"});
    GroupMeans means;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const Workload &w = workloads[i];
        const Row &r = rows[i];
        t.beginRow();
        t.cell(w.name);
        t.cell(w.group);
        t.cell(r.icount);
        t.cell(r.flush);
        t.cell(r.dcra);
        t.cell(r.hill);
        t.cell(r.phase);
        t.cell(r.bandit);
        t.cell(r.rl);

        for (const auto &key : {w.group, std::string("all"),
                                std::string(w.numThreads() == 2 ? "2T"
                                                                : "4T")}) {
            means.add(key + "/ICOUNT", r.icount);
            means.add(key + "/FLUSH", r.flush);
            means.add(key + "/DCRA", r.dcra);
            means.add(key + "/HILL", r.hill);
            means.add(key + "/PHASE", r.phase);
            means.add(key + "/BANDIT", r.bandit);
            means.add(key + "/RL", r.rl);
        }
    }
    t.print();

    std::printf("\ngroup means (weighted IPC):\n");
    for (const auto &g : workloadGroups()) {
        std::printf("  %-5s ICOUNT=%.3f FLUSH=%.3f DCRA=%.3f HILL=%.3f "
                    "PHASE=%.3f BANDIT=%.3f RL=%.3f\n",
                    g.c_str(), means.mean(g + "/ICOUNT"),
                    means.mean(g + "/FLUSH"), means.mean(g + "/DCRA"),
                    means.mean(g + "/HILL"), means.mean(g + "/PHASE"),
                    means.mean(g + "/BANDIT"), means.mean(g + "/RL"));
    }

    std::printf("\nHILL-WIPC gains (paper: +12.4%% / +11.3%% / +2.4%%):\n");
    printGain("over ICOUNT", means.mean("all/HILL"),
              means.mean("all/ICOUNT"));
    printGain("over FLUSH", means.mean("all/HILL"),
              means.mean("all/FLUSH"));
    printGain("over DCRA", means.mean("all/HILL"),
              means.mean("all/DCRA"));
    std::printf("\nby thread count (paper: 2T +3.3%%, 4T +0.4%% over "
                "DCRA):\n");
    printGain("2-thread over DCRA", means.mean("2T/HILL"),
              means.mean("2T/DCRA"));
    printGain("4-thread over DCRA", means.mean("4T/HILL"),
              means.mean("4T/DCRA"));
    printGain("MEM2 over DCRA (paper +5.1%)", means.mean("MEM2/HILL"),
              means.mean("MEM2/DCRA"));

    std::printf("\nlearner race (overall means vs HILL-WIPC):\n");
    printGain("PHASE-HILL over HILL", means.mean("all/PHASE"),
              means.mean("all/HILL"));
    printGain("BANDIT over HILL", means.mean("all/BANDIT"),
              means.mean("all/HILL"));
    printGain("RL over HILL", means.mean("all/RL"),
              means.mean("all/HILL"));

    const std::string export_path = statsJsonPath();
    if (!export_path.empty()) {
        Json doc = Json::object();
        doc.set("schema", Json("smthill.bench.learner-race.v1"));
        doc.set("epochs", Json(rc.epochs));
        doc.set("epoch_size", Json(rc.epochSize));
        doc.set("seed", Json(rc.seedSalt));
        Json cells = Json::array();
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            Json c = Json::object();
            c.set("workload", Json(workloads[i].name));
            c.set("group", Json(workloads[i].group));
            c.set("threads", Json(workloads[i].numThreads()));
            c.set("icount", Json(rows[i].icount));
            c.set("flush", Json(rows[i].flush));
            c.set("dcra", Json(rows[i].dcra));
            c.set("hill", Json(rows[i].hill));
            c.set("phase_hill", Json(rows[i].phase));
            c.set("bandit", Json(rows[i].bandit));
            c.set("rl", Json(rows[i].rl));
            cells.push(std::move(c));
        }
        doc.set("cells", std::move(cells));
        doc.set("counters", globalStats().toJson());

        // Re-derive the overall means from the re-parsed cells and
        // demand bit-identity with the stdout path. GroupMeans adds
        // values in the same (workload) order, so the float sums are
        // reproducible exactly.
        Json re = writeAndReloadJson(export_path, doc);
        GroupMeans remeans;
        for (const Json &c : re.at("cells").items()) {
            remeans.add("all/ICOUNT", c.at("icount").asDouble());
            remeans.add("all/FLUSH", c.at("flush").asDouble());
            remeans.add("all/DCRA", c.at("dcra").asDouble());
            remeans.add("all/HILL", c.at("hill").asDouble());
            remeans.add("all/PHASE", c.at("phase_hill").asDouble());
            remeans.add("all/BANDIT", c.at("bandit").asDouble());
            remeans.add("all/RL", c.at("rl").asDouble());
        }
        for (const char *k : {"ICOUNT", "FLUSH", "DCRA", "HILL", "PHASE",
                              "BANDIT", "RL"})
            checkExportValue(k,
                             remeans.mean(std::string("all/") + k),
                             means.mean(std::string("all/") + k));
        std::printf("\nexported %s (overall means re-derived from the "
                    "file match)\n",
                    export_path.c_str());
    }
    exportProfileIfEnabled();
    return 0;
}
