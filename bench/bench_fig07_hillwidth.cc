/**
 * @file
 * Figures 6 and 7 (hill peak analysis, Section 3.3.1): for every
 * two-thread workload, run OFF-LINE with full curves retained and
 * report hill-width_N averaged across epochs for
 * N in {0.99, 0.98, 0.97, 0.95, 0.90}.
 *
 * The paper finds 5 dull-peak workloads (equake-bzip2, mcf-eon,
 * fma3d-mesa, gzip-bzip2, lucas-crafty: width_.99 >= 32) and 14
 * sharp-peak ones (width_.99 <= 8).
 *
 * Scale with SMTHILL_EPOCHS (default 6) and SMTHILL_OFFLINE_STRIDE
 * (default 4 — widths below the stride are unmeasurable).
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/hill_width.hh"
#include "core/offline_exhaustive.hh"
#include "harness/table.hh"

using namespace smthill;
using namespace smthill::benchutil;

int
main()
{
    banner("Figure 7: hill-width_N per 2-thread workload "
           "(averaged over epochs)");

    RunConfig rc = benchRunConfig(4);
    const int stride =
        static_cast<int>(envScale("SMTHILL_OFFLINE_STRIDE", 8));

    Table t({"workload", "group", "w.99", "w.98", "w.97", "w.95", "w.90",
             "peak"});

    for (const Workload &w : twoThreadWorkloads()) {
        auto solo = soloIpcs(w, rc, soloWindow(rc));
        OfflineConfig oc;
        oc.epochSize = rc.epochSize;
        oc.stride = stride;
        oc.singleIpc = solo;
        oc.keepCurves = true;
        OfflineExhaustive off(oc);

        SmtCpu cpu = makeCpu(w, rc);
        double w99 = 0, w98 = 0, w97 = 0, w95 = 0, w90 = 0;
        for (int e = 0; e < rc.epochs; ++e) {
            OfflineEpoch rec = off.stepEpoch(cpu);
            HillWidthProfile p =
                hillWidthProfile(rec.curveShares, rec.curve);
            w99 += p.w99;
            w98 += p.w98;
            w97 += p.w97;
            w95 += p.w95;
            w90 += p.w90;
        }
        double n = rc.epochs;
        t.beginRow();
        t.cell(w.name);
        t.cell(w.group);
        t.cell(w99 / n, 1);
        t.cell(w98 / n, 1);
        t.cell(w97 / n, 1);
        t.cell(w95 / n, 1);
        t.cell(w90 / n, 1);
        t.cell(std::string(w99 / n >= 32 ? "dull"
                           : w99 / n <= 8 ? "sharp"
                                          : "medium"));
    }
    t.print();

    std::printf("\nshape to check: a mix of dull and sharp peaks, with "
                "small workloads (that fit the window) dull and\n"
                "window-hungry MEM pairs sharp. Sharp peaks are where "
                "learning the exact partitioning pays (Section 3.3.1).\n");
    return 0;
}
