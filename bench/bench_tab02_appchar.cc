/**
 * @file
 * Table 2 ("Rsc" and "Freq" columns), per Section 4.4.2: for every
 * modeled benchmark, measure (a) the number of integer rename
 * registers needed to reach 95% of its maximum stand-alone IPC, and
 * (b) how often that requirement changes across 64K-cycle epochs —
 * classifying the benchmark as No / Low / High frequency variation.
 *
 * Scale with SMTHILL_VAR_EPOCHS (default 12 epochs for the variation
 * measurement).
 */

#include <cstdio>
#include <vector>

#include "harness/runner.hh"
#include "harness/table.hh"
#include "pipeline/cpu.hh"
#include "trace/spec_profiles.hh"

using namespace smthill;

namespace
{

const char *
freqName(int cls)
{
    return cls == 2 ? "High" : cls == 1 ? "Low" : "No";
}

/** IPC of a warm solo machine at a given register share. */
double
ipcAtShare(const SmtCpu &warm, int share, Cycle window)
{
    SmtCpu cpu = warm; // smthill-lint: allow(cpu-copy-hot-path)
    Partition p;
    p.numThreads = 1;
    p.share[0] = share;
    cpu.setPartition(p);
    auto before = cpu.stats().committed[0];
    cpu.run(window);
    return static_cast<double>(cpu.stats().committed[0] - before) /
           static_cast<double>(window);
}

/** Smallest share (stepping by 8) reaching 95% of the 256-reg IPC. */
int
requirementAt(const SmtCpu &warm, Cycle window)
{
    double max_ipc = ipcAtShare(warm, 256, window);
    for (int share = 24; share < 256; share += 8) {
        if (ipcAtShare(warm, share, window) >= 0.95 * max_ipc)
            return share;
    }
    return 256;
}

} // namespace

int
main()
{
    banner("Table 2: per-benchmark resource requirement (Rsc) and "
           "time variation (Freq)");

    const int var_epochs =
        static_cast<int>(envScale("SMTHILL_VAR_EPOCHS", 8));
    const Cycle epoch = 64 * 1024;

    Table t({"app", "type", "cat", "Rsc(paper)", "Rsc(model)",
             "Freq(paper)", "changes/epoch", "Freq(model)"});

    for (const auto &name : specBenchmarkNames()) {
        const SpecInfo &info = specInfo(name);

        SmtConfig cfg;
        cfg.numThreads = 1;
        std::vector<StreamGenerator> gens;
        gens.emplace_back(specProfile(name), 0);
        SmtCpu cpu(cfg, std::move(gens));
        cpu.run(512 * 1024); // warm

        // (a) Steady-state requirement over a long window.
        int rsc = requirementAt(cpu, 2 * epoch);

        // (b) Per-epoch requirement trajectory.
        int changes = 0;
        int prev = -1;
        SmtCpu walker = cpu; // smthill-lint: allow(cpu-copy-hot-path)
        for (int e = 0; e < var_epochs; ++e) {
            int req = requirementAt(walker, epoch);
            if (prev >= 0 && std::abs(req - prev) >= 16)
                ++changes;
            prev = req;
            walker.clearPartition();
            walker.run(epoch);
        }
        double rate = var_epochs > 1
                          ? static_cast<double>(changes) / (var_epochs - 1)
                          : 0.0;
        const char *model_freq =
            rate > 0.34 ? "High" : rate > 0.09 ? "Low" : "No";

        t.beginRow();
        t.cell(name);
        t.cell(std::string(info.isFp ? "FP" : "Int"));
        t.cell(std::string(info.isMem ? "MEM" : "ILP"));
        t.cell(static_cast<std::int64_t>(info.paperRsc));
        t.cell(static_cast<std::int64_t>(rsc));
        t.cell(std::string(freqName(info.freqClass)));
        t.cell(rate, 2);
        t.cell(std::string(model_freq));
    }
    t.print();

    std::printf("\nshape to check: MEM benchmarks with bursty misses "
                "(swim, art, ammp, twolf, vpr) and long-distance ILP\n"
                "(gap, wupwise) need large windows; short-chain ILP "
                "(perlbmk, bzip2, fma3d, lucas) needs small ones.\n");
    return 0;
}
