/**
 * @file
 * Section 5: phase detection and prediction. Runs plain HILL-WIPC
 * and PHASE-HILL-WIPC (BBV phase table + RLE Markov predictor +
 * per-phase partition reuse) on all 42 workloads and reports the
 * overall gain, the gain restricted to TL-class workloads (large
 * with a low-frequency member — where the paper sees the benefit,
 * +2.1% vs +0.4% overall), and the phase statistics.
 *
 * Scale with SMTHILL_EPOCHS (default 32).
 */

#include <cstdio>

#include "bench_common.hh"
#include "harness/table.hh"
#include "phase/phase_hill.hh"
#include "trace/spec_profiles.hh"

using namespace smthill;
using namespace smthill::benchutil;

namespace
{

/** TL-class prediction from Section 4.4.2's labels. */
bool
isTemporallyLimited(const Workload &w)
{
    int threshold = w.numThreads() == 2 ? 256 : 416;
    if (w.paperRscSum() <= threshold)
        return false;
    for (const auto &b : w.benchmarks)
        if (specInfo(b).freqClass == 1)
            return true;
    return false;
}

} // namespace

int
main()
{
    banner("Section 5: phase-based hill climbing");

    RunConfig rc = benchRunConfig(24);

    Table t({"workload", "group", "HILL", "PHASE-HILL", "gain%",
             "phases", "pred.acc", "reuses", "TL?"});
    GroupMeans means;

    for (const Workload &w : allWorkloads()) {
        auto solo = soloIpcs(w, rc, soloWindow(rc));

        HillConfig hc;
        hc.epochSize = rc.epochSize;
        hc.metric = PerfMetric::WeightedIpc;

        HillClimbing plain(hc);
        double m_plain =
            runPolicy(w, plain, rc).metric(PerfMetric::WeightedIpc, solo);

        PhaseHillClimbing phased(hc);
        double m_phase = runPolicy(w, phased, rc)
                             .metric(PerfMetric::WeightedIpc, solo);

        bool tl = isTemporallyLimited(w);
        t.beginRow();
        t.cell(w.name);
        t.cell(w.group);
        t.cell(m_plain);
        t.cell(m_phase);
        t.cell(pctGain(m_phase, m_plain), 2);
        t.cell(static_cast<std::int64_t>(phased.phasesSeen()));
        t.cell(phased.predictionAccuracy(), 2);
        t.cell(static_cast<std::int64_t>(phased.reuses()));
        t.cell(std::string(tl ? "TL" : "-"));

        means.add("all/plain", m_plain);
        means.add("all/phase", m_phase);
        if (tl) {
            means.add("tl/plain", m_plain);
            means.add("tl/phase", m_phase);
        }
    }
    t.print();

    std::printf("\nphase-based gains:\n");
    printGain("overall (paper +0.4%)", means.mean("all/phase"),
              means.mean("all/plain"));
    printGain("TL workloads (paper +2.1%)", means.mean("tl/phase"),
              means.mean("tl/plain"));
    return 0;
}
