/**
 * @file
 * Figure 2: IPC of mesa, vortex, and fma3d running simultaneously
 * during a 32K-cycle interval, as the fraction of resources
 * distributed to each thread is varied. The paper plots a 2-D
 * surface over (mesa share, vortex share); fma3d receives the rest.
 * This bench prints the same surface as a grid, per thread and
 * total, and reports the peak — which should sit at an interior
 * point of the space (the "hill" that motivates hill climbing).
 *
 * Scale with SMTHILL_SURFACE_STEP (default 32 registers).
 */

#include <cstdio>

#include "core/machine_arena.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "pipeline/cpu.hh"
#include "trace/spec_profiles.hh"

using namespace smthill;

int
main()
{
    banner("Figure 2: IPC vs resource distribution "
           "(mesa / vortex / fma3d, 32K-cycle interval)");

    const int step = static_cast<int>(envScale("SMTHILL_SURFACE_STEP", 32));
    const Cycle interval = 32 * 1024;
    const int total = 256;
    const int min_share = 8;

    SmtConfig cfg;
    cfg.numThreads = 3;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(specProfile("mesa"), 0);
    gens.emplace_back(specProfile("vortex"), 1);
    gens.emplace_back(specProfile("fma3d"), 2);
    SmtCpu machine(cfg, std::move(gens));
    machine.run(512 * 1024); // warm to a representative point
    const SmtCpu checkpoint = machine; // smthill-lint: allow(cpu-copy-hot-path)

    std::printf("rows: mesa share; columns: vortex share; "
                "cell: total IPC (fma3d gets the remainder)\n\n");

    // One arena machine serves the whole serial walk: restoreFrom is
    // a bit-exact rewind to the checkpoint, so every cell starts from
    // the same warm state without a full SmtCpu copy per cell.
    MachineArena arena(1);

    double best = 0.0;
    int best_mesa = 0, best_vortex = 0;

    // Header row.
    std::printf("%6s", "");
    for (int v = min_share; v + min_share <= total - min_share; v += step)
        std::printf(" %6d", v);
    std::printf("\n");

    for (int m = min_share; m + 2 * min_share <= total; m += step) {
        std::printf("%6d", m);
        for (int v = min_share; v + min_share <= total - min_share;
             v += step) {
            int f = total - m - v;
            if (f < min_share) {
                std::printf(" %6s", "-");
                continue;
            }
            SmtCpu &trial = arena.acquire(0, checkpoint);
            Partition p;
            p.numThreads = 3;
            p.share = {m, v, f};
            trial.setPartition(p);
            auto before = trial.stats().committedTotal();
            trial.run(interval);
            double ipc = static_cast<double>(
                             trial.stats().committedTotal() - before) /
                         static_cast<double>(interval);
            std::printf(" %6.3f", ipc);
            if (ipc > best) {
                best = ipc;
                best_mesa = m;
                best_vortex = v;
            }
        }
        std::printf("\n");
    }

    std::printf("\npeak: IPC=%.3f at mesa=%d vortex=%d fma3d=%d\n", best,
                best_mesa, best_vortex, total - best_mesa - best_vortex);
    std::printf("paper shape: a well-defined hill with a clear interior "
                "performance peak.\n");
    return 0;
}
