/**
 * @file
 * Figure 4 (the limit study, Section 3.3): OFF-LINE exhaustive
 * learning versus ICOUNT, FLUSH, and DCRA on the 21 two-thread
 * workloads, under the weighted IPC metric. The paper reports
 * OFF-LINE gains of +19.2% over ICOUNT, +18.0% over FLUSH, and
 * +7.6% over DCRA, largest in the MEM2 group.
 *
 * Scale with SMTHILL_EPOCHS (default 12) and SMTHILL_OFFLINE_STRIDE
 * (default 16; the paper uses 2 = 127 trials/epoch).
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/offline_exhaustive.hh"
#include "harness/table.hh"
#include "policy/dcra.hh"
#include "policy/flush.hh"
#include "policy/icount.hh"

using namespace smthill;
using namespace smthill::benchutil;

int
main()
{
    banner("Figure 4: OFF-LINE exhaustive learning vs ICOUNT / FLUSH / "
           "DCRA (2-thread workloads, weighted IPC)");

    RunConfig rc = benchRunConfig(10);
    const int stride =
        static_cast<int>(envScale("SMTHILL_OFFLINE_STRIDE", 16));

    // One grid cell per workload; cells run concurrently (rc.jobs)
    // and fill their own row, which is reduced/printed in order.
    struct Row
    {
        double icount, flush, dcra, off;
    };
    const std::vector<Workload> workloads = twoThreadWorkloads();
    std::vector<Row> rows(workloads.size());

    runGrid(workloads.size(), rc.jobs, [&](std::size_t i) {
        const Workload &w = workloads[i];
        auto solo = soloIpcs(w, rc, soloWindow(rc));

        IcountPolicy icount;
        FlushPolicy flush;
        DcraPolicy dcra;
        Row &r = rows[i];
        r.icount = runPolicy(w, icount, rc)
                       .metric(PerfMetric::WeightedIpc, solo);
        r.flush =
            runPolicy(w, flush, rc).metric(PerfMetric::WeightedIpc, solo);
        r.dcra =
            runPolicy(w, dcra, rc).metric(PerfMetric::WeightedIpc, solo);

        OfflineConfig oc;
        oc.epochSize = rc.epochSize;
        oc.stride = stride;
        oc.singleIpc = solo;
        OfflineExhaustive off(oc);
        SmtCpu cpu = makeCpu(w, rc);
        r.off = off.run(cpu, rc.epochs).meanMetric();
    });

    Table t({"workload", "group", "ICOUNT", "FLUSH", "DCRA", "OFF-LINE"});
    GroupMeans means;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const Workload &w = workloads[i];
        const Row &r = rows[i];
        t.beginRow();
        t.cell(w.name);
        t.cell(w.group);
        t.cell(r.icount);
        t.cell(r.flush);
        t.cell(r.dcra);
        t.cell(r.off);

        means.add(w.group + "/ICOUNT", r.icount);
        means.add(w.group + "/FLUSH", r.flush);
        means.add(w.group + "/DCRA", r.dcra);
        means.add(w.group + "/OFF", r.off);
        means.add("all/ICOUNT", r.icount);
        means.add("all/FLUSH", r.flush);
        means.add("all/DCRA", r.dcra);
        means.add("all/OFF", r.off);
    }
    t.print();

    std::printf("\ngroup means (weighted IPC):\n");
    for (const char *g : {"ILP2", "MIX2", "MEM2"}) {
        std::printf("  %-5s ICOUNT=%.3f FLUSH=%.3f DCRA=%.3f "
                    "OFF-LINE=%.3f\n",
                    g, means.mean(std::string(g) + "/ICOUNT"),
                    means.mean(std::string(g) + "/FLUSH"),
                    means.mean(std::string(g) + "/DCRA"),
                    means.mean(std::string(g) + "/OFF"));
    }

    std::printf("\nOFF-LINE gains (paper: +19.2%% / +18.0%% / +7.6%%):\n");
    printGain("over ICOUNT", means.mean("all/OFF"),
              means.mean("all/ICOUNT"));
    printGain("over FLUSH", means.mean("all/OFF"),
              means.mean("all/FLUSH"));
    printGain("over DCRA", means.mean("all/OFF"), means.mean("all/DCRA"));
    std::printf("\nMEM2 gains (paper: +21.9%% / +39.4%% / +13.2%%):\n");
    printGain("over ICOUNT", means.mean("MEM2/OFF"),
              means.mean("MEM2/ICOUNT"));
    printGain("over FLUSH", means.mean("MEM2/OFF"),
              means.mean("MEM2/FLUSH"));
    printGain("over DCRA", means.mean("MEM2/OFF"),
              means.mean("MEM2/DCRA"));
    return 0;
}
