/**
 * @file
 * Figure 4 (the limit study, Section 3.3): OFF-LINE exhaustive
 * learning versus ICOUNT, FLUSH, and DCRA on the 21 two-thread
 * workloads, under the weighted IPC metric. The paper reports
 * OFF-LINE gains of +19.2% over ICOUNT, +18.0% over FLUSH, and
 * +7.6% over DCRA, largest in the MEM2 group.
 *
 * Scale with SMTHILL_EPOCHS (default 12) and SMTHILL_OFFLINE_STRIDE
 * (default 16; the paper uses 2 = 127 trials/epoch).
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/offline_exhaustive.hh"
#include "harness/table.hh"
#include "policy/dcra.hh"
#include "policy/flush.hh"
#include "policy/icount.hh"

using namespace smthill;
using namespace smthill::benchutil;

int
main()
{
    banner("Figure 4: OFF-LINE exhaustive learning vs ICOUNT / FLUSH / "
           "DCRA (2-thread workloads, weighted IPC)");

    RunConfig rc = benchRunConfig(10);
    const int stride =
        static_cast<int>(envScale("SMTHILL_OFFLINE_STRIDE", 16));

    Table t({"workload", "group", "ICOUNT", "FLUSH", "DCRA", "OFF-LINE"});
    GroupMeans means;

    for (const Workload &w : twoThreadWorkloads()) {
        auto solo = soloIpcs(w, rc, soloWindow(rc));

        IcountPolicy icount;
        FlushPolicy flush;
        DcraPolicy dcra;
        double m_icount = runPolicy(w, icount, rc)
                              .metric(PerfMetric::WeightedIpc, solo);
        double m_flush =
            runPolicy(w, flush, rc).metric(PerfMetric::WeightedIpc, solo);
        double m_dcra =
            runPolicy(w, dcra, rc).metric(PerfMetric::WeightedIpc, solo);

        OfflineConfig oc;
        oc.epochSize = rc.epochSize;
        oc.stride = stride;
        oc.singleIpc = solo;
        OfflineExhaustive off(oc);
        SmtCpu cpu = makeCpu(w, rc);
        double m_off = off.run(cpu, rc.epochs).meanMetric();

        t.beginRow();
        t.cell(w.name);
        t.cell(w.group);
        t.cell(m_icount);
        t.cell(m_flush);
        t.cell(m_dcra);
        t.cell(m_off);

        means.add(w.group + "/ICOUNT", m_icount);
        means.add(w.group + "/FLUSH", m_flush);
        means.add(w.group + "/DCRA", m_dcra);
        means.add(w.group + "/OFF", m_off);
        means.add("all/ICOUNT", m_icount);
        means.add("all/FLUSH", m_flush);
        means.add("all/DCRA", m_dcra);
        means.add("all/OFF", m_off);
    }
    t.print();

    std::printf("\ngroup means (weighted IPC):\n");
    for (const char *g : {"ILP2", "MIX2", "MEM2"}) {
        std::printf("  %-5s ICOUNT=%.3f FLUSH=%.3f DCRA=%.3f "
                    "OFF-LINE=%.3f\n",
                    g, means.mean(std::string(g) + "/ICOUNT"),
                    means.mean(std::string(g) + "/FLUSH"),
                    means.mean(std::string(g) + "/DCRA"),
                    means.mean(std::string(g) + "/OFF"));
    }

    std::printf("\nOFF-LINE gains (paper: +19.2%% / +18.0%% / +7.6%%):\n");
    printGain("over ICOUNT", means.mean("all/OFF"),
              means.mean("all/ICOUNT"));
    printGain("over FLUSH", means.mean("all/OFF"),
              means.mean("all/FLUSH"));
    printGain("over DCRA", means.mean("all/OFF"), means.mean("all/DCRA"));
    std::printf("\nMEM2 gains (paper: +21.9%% / +39.4%% / +13.2%%):\n");
    printGain("over ICOUNT", means.mean("MEM2/OFF"),
              means.mean("MEM2/ICOUNT"));
    printGain("over FLUSH", means.mean("MEM2/OFF"),
              means.mean("MEM2/FLUSH"));
    printGain("over DCRA", means.mean("MEM2/OFF"),
              means.mean("MEM2/DCRA"));
    return 0;
}
