/**
 * @file
 * Figure 12: time-varying behavior of HILL-WIPC against OFF-LINE's
 * per-epoch exhaustive map, for the paper's five representative
 * workloads — temporally-stable (swim-mcf), spatially-stable
 * (applu-ammp), temporally-limited (mcf-eon), spatially-limited
 * (art-mcf), and jitter-limited (swim-twolf).
 *
 * For every epoch this prints hill's partition, OFF-LINE's best
 * partition, both metric values, and a coarse rendering of the
 * performance hill (the gray-scale columns of Figure 12).
 *
 * Scale with SMTHILL_EPOCHS (default 16) and SMTHILL_OFFLINE_STRIDE
 * (default 16).
 *
 * SMTHILL_EVENT_TRACE=FILE writes the hill-climbing runs' cycle-level
 * `smthill.events.v1` trace: one Perfetto process per representative
 * workload, with epoch/round slices, anchor-move audits, and the
 * per-thread share counter tracks (.jsonl selects the JSONL form).
 */

#include <cstdio>

#include "bench_common.hh"
#include "harness/sync_runner.hh"
#include "harness/table.hh"
#include "phase/phase_hill.hh"
#include "policy/bandit.hh"
#include "policy/rl_alloc.hh"

using namespace smthill;
using namespace smthill::benchutil;

namespace
{

/** Render a curve as a ten-bucket shade string (light..dark). */
std::string
shade(const std::vector<double> &curve)
{
    static const char *levels = " .:-=+*#%@";
    double lo = curve[0], hi = curve[0];
    for (double v : curve) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    std::string out;
    for (double v : curve) {
        int idx = hi > lo ? static_cast<int>((v - lo) / (hi - lo) * 9.0)
                          : 9;
        out += levels[idx];
    }
    return out;
}

} // namespace

int
main()
{
    banner("Figure 12: representative time-varying behaviors "
           "(HILL-WIPC vs per-epoch OFF-LINE map)");

    RunConfig rc = benchRunConfig(12);

    EventTrace event_trace;
    const std::string trace_path = eventTracePath();
    int trace_pid = 0;

    const std::pair<const char *, const char *> cases[] = {
        {"swim-mcf", "TS (temporally-stable)"},
        {"applu-ammp", "SS (spatially-stable)"},
        {"mcf-eon", "TL (temporally-limited)"},
        {"art-mcf", "SL (spatially-limited)"},
        {"swim-twolf", "JL (jitter-limited)"},
    };

    for (const auto &[wname, label] : cases) {
        const Workload &w = workloadByName(wname);
        auto solo = soloIpcs(w, rc, soloWindow(rc));

        HillConfig hc;
        hc.epochSize = rc.epochSize;
        hc.metric = PerfMetric::WeightedIpc;
        HillClimbing hill(hc);
        if (!trace_path.empty()) {
            // One Perfetto process per representative workload.
            event_trace.processName(trace_pid, wname);
            for (int i = 0; i < w.numThreads(); ++i)
                event_trace.threadName(trace_pid, i, w.benchmarks[i]);
            event_trace.threadName(trace_pid, kControlTid, "control");
            hill.setEventTrace(&event_trace, trace_pid);
            ++trace_pid;
        }

        OfflineConfig oc;
        oc.stride =
            static_cast<int>(envScale("SMTHILL_OFFLINE_STRIDE", 16));
        oc.metric = PerfMetric::WeightedIpc;
        oc.singleIpc = solo;

        auto trace =
            traceHillVsOffline(makeCpu(w, rc), hill, oc, rc.epochs);

        std::printf("\n-- %s: %s --\n", wname, label);
        std::printf("%5s %6s %6s %8s %8s  %s\n", "epoch", "hill",
                    "best", "hillWIPC", "bestWIPC",
                    "hill shape (share 0 low->high)");
        double hill_sum = 0, best_sum = 0;
        for (std::size_t e = 0; e < trace.size(); ++e) {
            const HillTraceEpoch &rec = trace[e];
            std::printf("%5zu %6d %6d %8.3f %8.3f  |%s|\n", e,
                        rec.hillShare0, rec.offlineShare0,
                        rec.hillMetric, rec.offlineMetric,
                        shade(rec.curve).c_str());
            hill_sum += rec.hillMetric;
            best_sum += rec.offlineMetric;
        }
        std::printf("   hill achieves %.1f%% of the per-epoch best\n",
                    100.0 * hill_sum / best_sum);
    }

    std::printf("\nshape to check: TS/SS workloads track the best "
                "closely; TL misses during abrupt shifts; SL risks\n"
                "non-maximal peaks; JL re-course-corrects under "
                "inter-epoch jitter (Section 4.4.1).\n");

    // Learner race per representative behavior: the full family on
    // identical machines and seeds, evaluated under weighted IPC.
    // Shows which behaviors reward memory (PHASE), lattice search
    // (BANDIT), or state-action credit (RL) over plain climbing.
    std::printf("\nlearner race per representative workload "
                "(weighted IPC):\n");
    Table race({"workload", "behavior", "HILL", "PHASE", "BANDIT",
                "RL"});
    for (const auto &[wname, label] : cases) {
        const Workload &w = workloadByName(wname);
        auto solo = soloIpcs(w, rc, soloWindow(rc));

        HillConfig hc;
        hc.epochSize = rc.epochSize;
        hc.metric = PerfMetric::WeightedIpc;
        HillClimbing hill(hc);
        PhaseHillClimbing phase(hc);
        BanditConfig bc;
        bc.epochSize = rc.epochSize;
        bc.metric = PerfMetric::WeightedIpc;
        bc.seed = rc.seedSalt + 1;
        bc.singleIpc = solo;
        BanditAllocator bandit(bc);
        RlConfig rlc;
        rlc.epochSize = rc.epochSize;
        rlc.metric = PerfMetric::WeightedIpc;
        rlc.seed = rc.seedSalt + 1;
        rlc.singleIpc = solo;
        RlAllocator rl(rlc);

        race.beginRow();
        race.cell(std::string(wname));
        race.cell(std::string(label, 2));
        ResourcePolicy *const racers[] = {&hill, &phase, &bandit, &rl};
        for (ResourcePolicy *p : racers)
            race.cell(runPolicy(w, *p, rc)
                          .metric(PerfMetric::WeightedIpc, solo));
    }
    race.print();

    if (!trace_path.empty())
        writeEventTrace(event_trace, trace_path);
    return 0;
}
