#!/bin/sh
# One-shot hardening matrix (ROADMAP.md): every gate the PR
# acceptance bar cares about, driven from a clean shell and
# summarized per stage at the end.
#
# Usage: check_all.sh [source-dir]
#
# Stages:
#   tier1    default build + full ctest suite
#   werror   -DSMTHILL_WERROR=ON build (warnings are errors)
#   lint     smthill_lint over the tree (ctest -R Lint)
#   analyze  smthill_analyze cross-TU passes (ctest -R Analyze)
#   tidy     clang-tidy wrapper (skips without clang-tidy)
#   asan     -DSMTHILL_SANITIZE=address build + FuzzSmoke + tests
#   tsan     -DSMTHILL_SANITIZE=thread build + parallel suites
#   benchdiff  report-only perf diff of bench/BENCH_sim_speed.json
#              against a fresh bench_sim_speed run (never fails the
#              matrix; refresh the baseline when it legitimately moves)
#
# Every stage runs even after a failure; the exit status is nonzero
# iff any stage (other than an explicit skip) failed. Build trees are
# reused across invocations (build/, build-werror/, build-asan/,
# build-tsan/).

set -u

SRC_DIR=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
JOBS=$(nproc 2> /dev/null || echo 4)

RESULTS=""
OVERALL=0

record()
{
    # record <stage> <status>: 0 pass, 77 skip, else fail
    case $2 in
        0)  RESULTS="$RESULTS$1: PASS\n" ;;
        77) RESULTS="$RESULTS$1: SKIP\n" ;;
        *)  RESULTS="$RESULTS$1: FAIL (exit $2)\n"; OVERALL=1 ;;
    esac
}

stage_build()
{
    # stage_build <build-dir> <cmake-args...>
    dir=$1
    shift
    cmake -B "$dir" -S "$SRC_DIR" "$@" > /dev/null &&
        cmake --build "$dir" -j "$JOBS"
}

echo "== tier1: default build + full test suite =="
stage_build "$SRC_DIR/build" &&
    (cd "$SRC_DIR/build" && ctest --output-on-failure -j "$JOBS")
record tier1 $?

echo "== werror: warnings-as-errors build =="
stage_build "$SRC_DIR/build-werror" -DSMTHILL_WERROR=ON
record werror $?

echo "== lint: project linter over the tree =="
(cd "$SRC_DIR/build" && ctest --output-on-failure -R '^Lint$')
record lint $?

echo "== analyze: cross-TU analyzer passes =="
(cd "$SRC_DIR/build" && ctest --output-on-failure -R '^Analyze$')
record analyze $?

echo "== tidy: clang-tidy wrapper =="
"$SRC_DIR/tools/run_clang_tidy.sh" "$SRC_DIR" "$SRC_DIR/build"
record tidy $?

echo "== asan: address-sanitized fuzz smoke + tests =="
stage_build "$SRC_DIR/build-asan" -DSMTHILL_SANITIZE=address &&
    (cd "$SRC_DIR/build-asan" &&
     ctest --output-on-failure -j "$JOBS" -R 'FuzzSmoke|TsanFixture')
record asan $?

echo "== tsan: thread-sanitized parallel suites =="
stage_build "$SRC_DIR/build-tsan" -DSMTHILL_SANITIZE=thread &&
    (cd "$SRC_DIR/build-tsan" &&
     ctest --output-on-failure -j "$JOBS" \
           -R 'ThreadPool|ParallelDeterminism|TsanFixture|FuzzSmoke')
record tsan $?

echo "== benchdiff: report-only perf diff vs the tracked baseline =="
# Report-only by design: microbenchmark numbers shift with host load,
# so the gate informs here and blocks only when run by hand. A fast
# run (min_time 0.05) is plenty to catch a 2x cliff.
if [ -x "$SRC_DIR/build/bench/bench_sim_speed" ] &&
       [ -x "$SRC_DIR/build/tools/smthill_bench_diff" ]; then
    BENCH_NOW=$SRC_DIR/build/bench_sim_speed_now.json
    SMTHILL_STATS_JSON="$BENCH_NOW" \
        "$SRC_DIR/build/bench/bench_sim_speed" \
        --benchmark_min_time=0.05 > /dev/null 2>&1 &&
        "$SRC_DIR/build/tools/smthill_bench_diff" \
            "$SRC_DIR/bench/BENCH_sim_speed.json" "$BENCH_NOW"
    echo "(benchdiff is report-only; refresh bench/BENCH_sim_speed.json"
    echo " when a deliberate perf change moves the baseline)"
    record benchdiff 0
else
    record benchdiff 77
fi

echo
echo "== hardening matrix =="
# shellcheck disable=SC2059
printf "$RESULTS"
exit $OVERALL
