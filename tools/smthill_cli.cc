/**
 * @file
 * smthill command-line driver: run any workload under any policy
 * with any machine/experiment parameters, and print end metrics, a
 * derived statistics report, per-epoch CSV series, or a pipeline
 * trace — without recompiling.
 *
 * Usage:
 *   smthill_cli [key=value ...] [config=FILE]
 *   smthill_cli help            (list options, policies, workloads)
 *
 * Examples:
 *   smthill_cli workload=art-mcf policy=hill-wipc epochs=64
 *   smthill_cli workload=swim-twolf policy=dcra csv=1
 *   smthill_cli workload=art-mcf policy=flush int_regs=128 trace=200
 *
 * Comma-separated workload/policy lists run every combination as a
 * grid of independent cells across `jobs` worker threads (default:
 * all hardware threads) and print one summary table:
 *   smthill_cli workload=art-mcf,swim-twolf policy=icount,dcra jobs=8
 *
 * Machine-readable export:
 *   stats_json=FILE   (or --stats-json=FILE) writes a
 *     `smthill.stats.v1` document: {"schema", "run" (workload,
 *     policy, epochs, epoch_size, warmup_cycles, seed, solo_epochs),
 *     "metrics" (weighted_ipc, avg_ipc, harmonic_weighted_ipc),
 *     "report" (a `smthill.report.v1` object), "counters" (the
 *     process-wide StatRegistry dump)}. Grid runs replace "run" /
 *     "metrics" / "report" with "grid" + a "cells" array holding the
 *     same three metrics per workload x policy cell.
 *   epoch_trace=FILE  (or --epoch-trace=FILE) writes the per-epoch
 *     `smthill.epoch-trace.v1` trace (see core/epoch_trace.hh); a
 *     path ending in ".csv" writes the flat CSV form instead. Hill
 *     policies record their internal state (anchor/trial partitions,
 *     round perf, SingleIPC estimates); other policies get a generic
 *     trace synthesized from the per-epoch IPC series.
 *   event_trace=FILE  (or --event-trace=FILE) writes the cycle-level
 *     `smthill.events.v1` event trace (see common/event_trace.hh):
 *     epoch/round slices, anchor-move and phase-reuse decision
 *     audits, and per-thread resource-share counter tracks. A path
 *     ending in ".jsonl" writes the streaming JSONL form; any other
 *     path writes Chrome trace-event / Perfetto JSON loadable at
 *     ui.perfetto.dev.
 *   snapshots=FILE    (or --snapshots=FILE) streams one
 *     `smthill.snapshots.v1` delta row of the process-wide
 *     StatRegistry per measured epoch (single-run mode only).
 *   profile=1 turns on the host-side span profiler for this run
 *     (equivalent to SMTHILL_PROFILE=ON); profile_json=FILE writes
 *     the `smthill.profile.v1` report there instead of the stdout
 *     span table.
 * GNU-style spellings are accepted: "--stats-json=x" is normalized
 * to "stats_json=x" (dashes only rewritten in the key, not values).
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/event_trace.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/options.hh"
#include "common/profile.hh"
#include "common/stat_registry.hh"
#include "common/stat_snapshot.hh"
#include "core/epoch_trace.hh"
#include "core/hill_climbing.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "phase/phase_hill.hh"
#include "policy/bandit.hh"
#include "policy/dcra.hh"
#include "policy/dg.hh"
#include "policy/flush.hh"
#include "policy/icount.hh"
#include "policy/rl_alloc.hh"
#include "policy/stall.hh"
#include "policy/stall_flush.hh"
#include "policy/static_partition.hh"
#include "workload/workloads.hh"

using namespace smthill;

namespace
{

std::unique_ptr<ResourcePolicy>
makePolicy(const std::string &name, Cycle epoch_size)
{
    HillConfig hc;
    hc.epochSize = epoch_size;
    if (name == "icount")
        return std::make_unique<IcountPolicy>();
    if (name == "stall")
        return std::make_unique<StallPolicy>();
    if (name == "flush")
        return std::make_unique<FlushPolicy>();
    if (name == "stall-flush")
        return std::make_unique<StallFlushPolicy>();
    if (name == "dg")
        return std::make_unique<DgPolicy>();
    if (name == "pdg")
        return std::make_unique<PdgPolicy>();
    if (name == "dcra")
        return std::make_unique<DcraPolicy>();
    if (name == "static")
        return std::make_unique<StaticPartitionPolicy>();
    if (name == "hill-ipc") {
        hc.metric = PerfMetric::AvgIpc;
        return std::make_unique<HillClimbing>(hc);
    }
    if (name == "hill-wipc") {
        hc.metric = PerfMetric::WeightedIpc;
        return std::make_unique<HillClimbing>(hc);
    }
    if (name == "hill-hwipc") {
        hc.metric = PerfMetric::HarmonicWeightedIpc;
        return std::make_unique<HillClimbing>(hc);
    }
    if (name == "phase-hill") {
        hc.metric = PerfMetric::WeightedIpc;
        return std::make_unique<PhaseHillClimbing>(hc);
    }
    if (name == "bandit-ucb" || name == "bandit-exp3") {
        BanditConfig bc;
        bc.epochSize = epoch_size;
        bc.metric = PerfMetric::WeightedIpc;
        if (name == "bandit-exp3")
            bc.algo = BanditAlgo::Exp3;
        return std::make_unique<BanditAllocator>(bc);
    }
    if (name == "rl") {
        RlConfig rc;
        rc.epochSize = epoch_size;
        rc.metric = PerfMetric::WeightedIpc;
        return std::make_unique<RlAllocator>(rc);
    }
    return nullptr;
}

const char *kPolicyNames =
    "icount stall flush stall-flush dg pdg dcra static hill-ipc "
    "hill-wipc hill-hwipc phase-hill bandit-ucb bandit-exp3 rl";

/** @return the feedback metric a policy name implies (WIPC default). */
PerfMetric
policyMetric(const std::string &name)
{
    if (name == "hill-ipc")
        return PerfMetric::AvgIpc;
    if (name == "hill-hwipc")
        return PerfMetric::HarmonicWeightedIpc;
    return PerfMetric::WeightedIpc;
}

/**
 * Accept GNU-style spellings: "--stats-json=x" normalizes to
 * "stats_json=x". Only the key (before '=') is rewritten, so values
 * keep their dashes (workload=art-mcf).
 */
std::string
normalizeArg(const std::string &arg)
{
    std::string s = arg;
    if (s.rfind("--", 0) == 0)
        s = s.substr(2);
    std::size_t key_end = s.find('=');
    if (key_end == std::string::npos)
        key_end = s.size();
    for (std::size_t i = 0; i < key_end; ++i)
        if (s[i] == '-')
            s[i] = '_';
    return s;
}

/** Write @p content to @p path, fataling on I/O failure. */
void
writeTextFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    out << content;
    if (!out)
        fatal(msg("cannot write '", path, "'"));
}

/** Shared metadata + counters skeleton of a smthill.stats.v1 doc. */
Json
statsDocument()
{
    Json root = Json::object();
    root.set("schema", Json("smthill.stats.v1"));
    return root;
}

/**
 * Emit the host-profile report when profiling is on: to @p path as a
 * `smthill.profile.v1` document, or as a stdout span summary when
 * @p path is empty. No-op with profiling off, so default CLI output
 * is untouched.
 */
void
exportProfile(const std::string &path)
{
    if (!prof::profilingEnabled())
        return;
    const prof::ProfileReport report = prof::profileReport();
    if (!path.empty()) {
        writeTextFile(path, prof::profileToJson(report).dump(2) + "\n");
        std::printf("wrote host profile to %s (%zu spans, "
                    "parallel_efficiency %.3f)\n",
                    path.c_str(), report.spans.size(),
                    report.parallelEfficiency);
        return;
    }
    std::printf("\nhost profile (parallel_efficiency %.3f):\n",
                report.parallelEfficiency);
    for (const prof::SpanStats &s : report.spans)
        std::printf("  %-28s count=%llu total_ms=%.3f self_ms=%.3f\n",
                    s.name.c_str(),
                    static_cast<unsigned long long>(s.count),
                    static_cast<double>(s.totalNs) / 1e6,
                    static_cast<double>(s.selfNs) / 1e6);
}

/** Split a comma-separated list; empty pieces are dropped. */
std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > start)
            out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

/**
 * Grid mode: run every workload x policy cell concurrently and print
 * one row per cell, in list order.
 */
int
runCliGrid(const std::vector<std::string> &workload_names,
           const std::vector<std::string> &policy_names,
           const RunConfig &rc, std::uint64_t solo_epochs,
           const std::string &stats_json)
{
    struct Cell
    {
        double wipc, ipc, hwipc;
    };
    const std::size_t cells =
        workload_names.size() * policy_names.size();
    std::vector<Cell> results(cells);

    // Resolve names up front so unknown workloads/policies fail fast
    // on the main thread instead of inside a worker.
    std::vector<const Workload *> workloads;
    for (const auto &wn : workload_names)
        workloads.push_back(&workloadByName(wn));
    for (const auto &pn : policy_names)
        if (!makePolicy(pn, rc.epochSize))
            fatal(msg("unknown policy '", pn, "'; choose from: ",
                      kPolicyNames));

    runGrid(cells, rc.jobs, [&](std::size_t i) {
        const Workload &w = *workloads[i / policy_names.size()];
        const std::string &pn = policy_names[i % policy_names.size()];
        auto policy = makePolicy(pn, rc.epochSize);
        auto solo = soloIpcs(w, rc, solo_epochs * rc.epochSize);
        RunResult res = runPolicy(w, *policy, rc);
        results[i] = {res.metric(PerfMetric::WeightedIpc, solo),
                      res.metric(PerfMetric::AvgIpc, solo),
                      res.metric(PerfMetric::HarmonicWeightedIpc, solo)};
    });

    std::printf("%zu x %zu grid, %d epochs x %llu cycles, jobs=%d\n\n",
                workload_names.size(), policy_names.size(), rc.epochs,
                static_cast<unsigned long long>(rc.epochSize), rc.jobs);
    Table t({"workload", "policy", "weighted IPC", "avg IPC",
             "harmonic"});
    for (std::size_t i = 0; i < cells; ++i) {
        t.beginRow();
        t.cell(workload_names[i / policy_names.size()]);
        t.cell(policy_names[i % policy_names.size()]);
        t.cell(results[i].wipc);
        t.cell(results[i].ipc);
        t.cell(results[i].hwipc);
    }
    t.print();

    if (!stats_json.empty()) {
        Json root = statsDocument();
        Json grid = Json::object();
        grid.set("epochs", Json(rc.epochs));
        grid.set("epoch_size", Json(rc.epochSize));
        grid.set("jobs", Json(rc.jobs));
        root.set("grid", std::move(grid));
        Json cells_arr = Json::array();
        for (std::size_t i = 0; i < cells; ++i) {
            Json c = Json::object();
            c.set("workload",
                  Json(workload_names[i / policy_names.size()]));
            c.set("policy",
                  Json(policy_names[i % policy_names.size()]));
            c.set("weighted_ipc", Json(results[i].wipc));
            c.set("avg_ipc", Json(results[i].ipc));
            c.set("harmonic_weighted_ipc", Json(results[i].hwipc));
            cells_arr.push(std::move(c));
        }
        root.set("cells", std::move(cells_arr));
        root.set("counters", globalStats().toJson());
        writeTextFile(stats_json, root.dump(2) + "\n");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload_name = "art-mcf";
    std::string policy_name = "hill-wipc";
    std::string config_file;
    RunConfig rc;
    bool csv = false;
    std::int64_t trace_events = 0;
    std::uint64_t solo_epochs = 16;
    std::string stats_json;
    std::string epoch_trace;
    std::string event_trace;
    std::string snapshots;
    std::string profile_json;
    bool profile_on = false;

    OptionSet opts;
    opts.addString("workload", &workload_name,
                   "Table 3 workload name (e.g. art-mcf)");
    opts.addString("policy", &policy_name, kPolicyNames);
    opts.addString("config", &config_file,
                   "config file of key = value lines");
    opts.addInt32("epochs", &rc.epochs, "measured epochs");
    opts.addUint("epoch_size", &rc.epochSize, "cycles per epoch");
    opts.addUint("warmup", &rc.warmupCycles, "warm-up cycles");
    opts.addUint("seed", &rc.seedSalt, "workload stream seed salt");
    opts.addUint("solo_epochs", &solo_epochs,
                 "epochs of solo run per thread (weighted metrics)");
    opts.addBool("csv", &csv, "print per-epoch CSV instead of tables");
    opts.addString("stats_json", &stats_json,
                   "write a smthill.stats.v1 JSON document here");
    opts.addString("epoch_trace", &epoch_trace,
                   "write the smthill.epoch-trace.v1 per-epoch trace "
                   "here (.csv extension selects CSV)");
    opts.addString("event_trace", &event_trace,
                   "write the smthill.events.v1 cycle-level event "
                   "trace here (.jsonl extension selects JSONL; "
                   "anything else gets Perfetto JSON)");
    opts.addString("snapshots", &snapshots,
                   "stream one smthill.snapshots.v1 stat-delta row "
                   "per epoch to this JSONL file");
    opts.addBool("profile", &profile_on,
                 "turn on the host span profiler "
                 "(same as SMTHILL_PROFILE=ON)");
    opts.addString("profile_json", &profile_json,
                   "write the smthill.profile.v1 host-profile report "
                   "here (default: stdout span table)");
    opts.addInt("trace", &trace_events,
                "dump the last N pipeline events after the run");
    opts.addInt32("jobs", &rc.jobs,
                  "worker threads for workload/policy grids "
                  "(default: hardware threads; 1 = serial)");

    // Machine overrides (Table 1 defaults).
    opts.addInt32("fetch_width", &rc.machine.fetchWidth, "fetch width");
    opts.addInt32("issue_width", &rc.machine.issueWidth, "issue width");
    opts.addInt32("commit_width", &rc.machine.commitWidth,
                  "commit width");
    opts.addInt32("fetch_threads", &rc.machine.fetchThreadsPerCycle,
                  "threads fetched per cycle (ICOUNT.x.8)");
    opts.addInt32("ifq", &rc.machine.ifqSize, "IFQ entries");
    opts.addInt32("int_iq", &rc.machine.intIqSize, "int IQ entries");
    opts.addInt32("fp_iq", &rc.machine.fpIqSize, "fp IQ entries");
    opts.addInt32("lsq", &rc.machine.lsqSize, "LSQ entries");
    opts.addInt32("int_regs", &rc.machine.intRegs,
                  "int rename registers (the partitioned unit)");
    opts.addInt32("fp_regs", &rc.machine.fpRegs, "fp rename registers");
    opts.addInt32("rob", &rc.machine.robSize, "ROB entries");
    opts.addUint("mem_latency", &rc.machine.mem.memFirstChunk,
                 "memory first-chunk latency");
    opts.addUint("l2_latency", &rc.machine.mem.l2Latency,
                 "L2 hit latency");

    std::vector<std::string> args;
    args.reserve(static_cast<std::size_t>(argc - 1));
    for (int i = 1; i < argc; ++i)
        args.push_back(normalizeArg(argv[i]));
    if (!args.empty() && args[0] == "help") {
        std::printf("usage: %s [key=value ...]\n\noptions:\n", argv[0]);
        opts.printHelp();
        std::printf("\nworkloads:\n ");
        for (const auto &w : allWorkloads())
            std::printf(" %s", w.name.c_str());
        std::printf("\n");
        return 0;
    }

    std::vector<std::string> positional;
    std::string error;
    if (!opts.parseArgs(args, positional, error))
        fatal(error);
    if (!positional.empty())
        fatal(msg("unexpected argument '", positional[0],
                  "' (use key=value; see 'help')"));
    if (!config_file.empty() && !opts.loadFile(config_file, error))
        fatal(error);
    if (profile_on)
        prof::setProfilingEnabled(true);

    std::vector<std::string> workload_names = splitList(workload_name);
    std::vector<std::string> policy_names = splitList(policy_name);
    if (workload_names.empty() || policy_names.empty())
        fatal("workload/policy lists must not be empty");
    if (workload_names.size() > 1 || policy_names.size() > 1) {
        if (csv || trace_events > 0 || !epoch_trace.empty() ||
            !event_trace.empty() || !snapshots.empty())
            fatal("csv/trace/epoch_trace/event_trace/snapshots are "
                  "single-run features; drop them or run one workload "
                  "x policy cell");
        int status = runCliGrid(workload_names, policy_names, rc,
                                solo_epochs, stats_json);
        exportProfile(profile_json);
        return status;
    }

    const Workload &workload = workloadByName(workload_name);
    auto policy = makePolicy(policy_name, rc.epochSize);
    if (!policy)
        fatal(msg("unknown policy '", policy_name, "'; choose from: ",
                  kPolicyNames));

    auto solo = soloIpcs(workload, rc, solo_epochs * rc.epochSize);

    SmtCpu cpu = makeCpu(workload, rc);
    PipelineTracer tracer(trace_events > 0
                              ? static_cast<std::size_t>(trace_events)
                              : 1);
    if (trace_events > 0)
        cpu.setTracer(&tracer);

    // Learning policies record their epoch-by-epoch state into the
    // tracer; non-learning policies leave it empty and a generic
    // trace is synthesized from the runner's per-epoch records below.
    EpochTracer epoch_tracer;
    if (!epoch_trace.empty())
        policy->setEpochTracer(&epoch_tracer);

    // Cycle-level event trace: the run files under process 0, with
    // one named track per hardware thread plus the control track.
    EventTrace event_tracer;
    if (!event_trace.empty()) {
        event_tracer.processName(0, workload.name + " / " +
                                        policy->name());
        for (int i = 0; i < workload.numThreads(); ++i)
            event_tracer.threadName(0, i, workload.benchmarks[i]);
        event_tracer.threadName(0, kControlTid, "control");
        policy->setEventTrace(&event_tracer, 0);
    }

    // Per-epoch stat snapshots: the observer samples the process-wide
    // registry after every policy.epoch() hook, stamped with the
    // machine's own cycle clock.
    std::ofstream snapshot_out;
    std::optional<StatSnapshotter> snapshotter;
    if (!snapshots.empty()) {
        snapshot_out.open(snapshots, std::ios::binary);
        if (!snapshot_out)
            fatal(msg("cannot write '", snapshots, "'"));
        snapshotter.emplace(globalStats());
        snapshotter->streamTo(&snapshot_out);
    }
    EpochObserver on_epoch;
    if (snapshotter) {
        on_epoch = [&](int e, const SmtCpu &c) {
            snapshotter->sample(static_cast<std::uint64_t>(e), c.now());
        };
    }

    RunResult res = runPolicyOn(std::move(cpu), *policy, rc.epochs,
                                rc.epochSize, on_epoch);

    if (snapshotter) {
        snapshotter->streamTo(nullptr);
        if (!snapshot_out)
            fatal(msg("cannot write '", snapshots, "'"));
        std::printf("wrote %zu stat snapshots to %s\n",
                    snapshotter->rows().size(), snapshots.c_str());
    }

    PerfMetric metric = policyMetric(policy_name);
    if (!epoch_trace.empty()) {
        if (epoch_tracer.empty()) {
            for (std::size_t e = 0; e < res.epochs.size(); ++e) {
                const EpochRecord &er = res.epochs[e];
                EpochTraceRecord r;
                r.epochId = e;
                r.cycle = res.startSnapshot.cycle +
                          (static_cast<Cycle>(e) + 1) * rc.epochSize;
                r.elapsedCycles = rc.epochSize;
                r.numThreads = workload.numThreads();
                r.ipc = er.ipc.ipc;
                r.metricValue = evalMetric(metric, er.ipc, solo);
                r.partitioned = er.partitioned;
                r.trial = er.partition;
                r.anchor = er.partition;
                epoch_tracer.record(std::move(r));
            }
        }
        bool as_csv = epoch_trace.size() >= 4 &&
                      epoch_trace.compare(epoch_trace.size() - 4, 4,
                                          ".csv") == 0;
        writeTextFile(epoch_trace,
                      as_csv ? epoch_tracer.toCsv()
                             : epoch_tracer.toJson(metric).dump(2) +
                                   "\n");
    }

    if (!event_trace.empty()) {
        bool as_jsonl =
            event_trace.size() >= 6 &&
            event_trace.compare(event_trace.size() - 6, 6, ".jsonl") ==
                0;
        writeTextFile(event_trace,
                      as_jsonl
                          ? event_tracer.toJsonl()
                          : event_tracer.toPerfettoJson().dump(2) +
                                "\n");
    }

    if (!stats_json.empty()) {
        Json root = statsDocument();
        Json run = Json::object();
        run.set("workload", Json(workload.name));
        run.set("policy", Json(policy_name));
        run.set("epochs", Json(rc.epochs));
        run.set("epoch_size", Json(rc.epochSize));
        run.set("warmup_cycles", Json(rc.warmupCycles));
        run.set("seed", Json(rc.seedSalt));
        run.set("solo_epochs", Json(solo_epochs));
        root.set("run", std::move(run));
        Json metrics = Json::object();
        metrics.set("weighted_ipc",
                    Json(res.metric(PerfMetric::WeightedIpc, solo)));
        metrics.set("avg_ipc",
                    Json(res.metric(PerfMetric::AvgIpc, solo)));
        metrics.set("harmonic_weighted_ipc",
                    Json(res.metric(PerfMetric::HarmonicWeightedIpc,
                                    solo)));
        root.set("metrics", std::move(metrics));
        root.set("report", res.report(workload.benchmarks).toJson());
        root.set("counters", globalStats().toJson());
        writeTextFile(stats_json, root.dump(2) + "\n");
    }

    if (csv) {
        std::printf("epoch");
        for (int i = 0; i < workload.numThreads(); ++i)
            std::printf(",ipc_%s", workload.benchmarks[i].c_str());
        std::printf(",wipc,share0\n");
        for (std::size_t e = 0; e < res.epochs.size(); ++e) {
            std::printf("%zu", e);
            for (int i = 0; i < workload.numThreads(); ++i)
                std::printf(",%.4f", res.epochs[e].ipc.ipc[i]);
            std::printf(",%.4f,%d\n",
                        evalMetric(PerfMetric::WeightedIpc,
                                   res.epochs[e].ipc, solo),
                        res.epochs[e].partitioned
                            ? res.epochs[e].partition.share[0]
                            : -1);
        }
        exportProfile(profile_json);
        return 0;
    }

    std::printf("workload %s (%s) under %s, %d epochs x %llu cycles\n\n",
                workload.name.c_str(), workload.group.c_str(),
                policy->name().c_str(), rc.epochs,
                static_cast<unsigned long long>(rc.epochSize));

    Table t({"metric", "value"});
    t.beginRow();
    t.cell(std::string("weighted IPC"));
    t.cell(res.metric(PerfMetric::WeightedIpc, solo));
    t.beginRow();
    t.cell(std::string("average IPC"));
    t.cell(res.metric(PerfMetric::AvgIpc, solo));
    t.beginRow();
    t.cell(std::string("harmonic mean"));
    t.cell(res.metric(PerfMetric::HarmonicWeightedIpc, solo));
    t.print();

    // Derived statistics over the measured interval.
    std::printf("\n");
    res.report(workload.benchmarks).print();

    if (trace_events > 0) {
        std::printf("\nlast %zu pipeline events:\n", tracer.size());
        tracer.dump(stdout);
    }
    exportProfile(profile_json);
    return 0;
}
