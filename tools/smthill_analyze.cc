/**
 * @file
 * smthill-analyze driver: run the two-phase cross-translation-unit
 * analyzer (lint/analyze.hh, architecture in DESIGN.md §9) over
 * files and directory trees. Phase 1 builds a project model (call
 * graph, pool-lambda captures, stat/schema/event tables, suppression
 * audit); phase 2 runs the parallel-capture, cross-tu-consistency,
 * hot-path-allocation, and stale-suppression passes over it.
 *
 * Usage:
 *   smthill_analyze [json=FILE] [quiet=1] [list_passes=1] <paths...>
 *
 * GNU spellings are accepted ("--json=out.json"). Findings print as
 * `file:line: [pass] message`; `json=FILE` additionally writes a
 * `smthill.lint.v1` document with `tool`/`passes` metadata. Exit
 * status is 0 only when every path is clean — the `Analyze` ctest
 * entry runs the whole tree, and a finding is suppressed only by an
 * explicit `// smthill-lint: allow(<pass>)` at the offending line.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "lint/analyze.hh"

using namespace smthill;

namespace
{

/** Rewrite "--key-name=v" to "key_name=v" (keys only, not values). */
std::string
normalizeArg(const std::string &arg)
{
    std::string out = arg;
    if (out.rfind("--", 0) == 0)
        out = out.substr(2);
    std::size_t eq = out.find('=');
    std::size_t keyEnd = eq == std::string::npos ? out.size() : eq;
    for (std::size_t i = 0; i < keyEnd; ++i) {
        if (out[i] == '-')
            out[i] = '_';
    }
    return out;
}

void
usage()
{
    std::printf(
        "usage: smthill_analyze [json=FILE] [quiet=1] [list_passes=1] "
        "<paths...>\n"
        "  cross-TU analysis over .hh/.h/.cc/.cpp files under each "
        "path; exits\n  nonzero on any unsuppressed finding "
        "(// smthill-lint: allow(<pass>) suppresses one line)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath;
    bool quiet = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        std::string arg = normalizeArg(argv[i]);
        if (arg == "help" || arg == "h") {
            usage();
            return 0;
        }
        if (arg == "list_passes" || arg == "list_passes=1") {
            for (const std::string &pass : lint::passNames())
                std::printf("%s\n", pass.c_str());
            return 0;
        }
        if (arg.rfind("json=", 0) == 0) {
            jsonPath = arg.substr(5);
            continue;
        }
        if (arg == "quiet" || arg == "quiet=1") {
            quiet = true;
            continue;
        }
        paths.push_back(argv[i]);
    }

    if (paths.empty()) {
        usage();
        return 2;
    }

    std::string error;
    std::vector<lint::Finding> findings =
        lint::analyzePaths(paths, error);
    if (!error.empty()) {
        std::fprintf(stderr, "smthill_analyze: %s\n", error.c_str());
        return 2;
    }

    if (!quiet) {
        for (const lint::Finding &f : findings) {
            std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                        f.rule.c_str(), f.message.c_str());
        }
    }

    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "smthill_analyze: cannot write %s\n",
                         jsonPath.c_str());
            return 2;
        }
        out << lint::analysisToJson(findings).dump(2) << "\n";
    }

    if (findings.empty()) {
        if (!quiet)
            std::printf("smthill_analyze: clean (%zu pass%s)\n",
                        lint::passNames().size(),
                        lint::passNames().size() == 1 ? "" : "es");
        return 0;
    }
    std::fprintf(stderr, "smthill_analyze: %zu finding%s\n",
                 findings.size(), findings.size() == 1 ? "" : "s");
    return 1;
}
