/**
 * @file
 * Differential fuzz driver over the simulator (see
 * validate/diff_fuzz.hh for the stage battery). Each seed expands
 * deterministically into a random machine/workload/policy scenario;
 * failures print their findings and a minimized reproducer line.
 *
 * Usage:
 *   smthill_fuzz [seeds=N] [start=S] [verbose=1]
 *   smthill_fuzz seed=S          (re-run one reproducer seed)
 *   smthill_fuzz help
 *
 * GNU spellings are accepted ("--seeds=64"). Exit status is 0 only
 * when every case passes — the ctest fuzz-smoke target runs the
 * fixed seeds [1, 64].
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/options.hh"
#include "validate/diff_fuzz.hh"

using namespace smthill;

namespace
{

/** Rewrite "--key-name=v" to "key_name=v" (keys only, not values). */
std::string
normalizeArg(const std::string &arg)
{
    std::string out = arg;
    if (out.rfind("--", 0) == 0)
        out = out.substr(2);
    std::size_t eq = out.find('=');
    std::size_t keyEnd = eq == std::string::npos ? out.size() : eq;
    for (std::size_t i = 0; i < keyEnd; ++i) {
        if (out[i] == '-')
            out[i] = '_';
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::int64_t seeds = 64;
    std::int64_t start = 1;
    std::int64_t one_seed = -1;
    bool verbose = false;

    OptionSet opts;
    opts.addInt("seeds", &seeds, "number of consecutive seeds to run");
    opts.addInt("start", &start, "first seed of the range");
    opts.addInt("seed", &one_seed,
                "run exactly this one seed, verbosely");
    opts.addBool("verbose", &verbose, "print one line per case");

    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i)
        args.push_back(normalizeArg(argv[i]));

    std::vector<std::string> positional;
    std::string error;
    if (!opts.parseArgs(args, positional, error))
        fatal(error);
    for (const std::string &p : positional) {
        if (p == "help") {
            std::printf("smthill_fuzz: differential fuzz harness\n\n");
            opts.printHelp();
            return 0;
        }
        fatal(msg("unexpected argument '", p, "' (try help)"));
    }

    if (one_seed >= 0) {
        start = one_seed;
        seeds = 1;
        verbose = true;
    }
    if (seeds < 1)
        fatal("seeds must be positive");

    FuzzSummary summary = runFuzzSeeds(
        static_cast<std::uint64_t>(start), static_cast<int>(seeds),
        verbose);

    std::printf("fuzz: %d case(s), %zu failure(s)\n", summary.casesRun,
                summary.failures.size());
    return summary.passed() ? 0 : 1;
}
