#!/bin/sh
# Run clang-tidy over the project's compilation database with the
# curated check set from .clang-tidy at the repo root.
#
# Usage: run_clang_tidy.sh <source-dir> <build-dir>
#
# Exits 77 (the ctest SKIP_RETURN_CODE for TidyClean) with a notice
# when clang-tidy is not installed, so toolchains without clang see a
# skipped test rather than a failure. Any tidy diagnostic is an
# error: the tree is expected to stay tidy-clean.

set -u

SRC_DIR=${1:?usage: run_clang_tidy.sh <source-dir> <build-dir>}
BUILD_DIR=${2:?usage: run_clang_tidy.sh <source-dir> <build-dir>}

TIDY=""
for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                 clang-tidy-16 clang-tidy-15; do
    if command -v "$candidate" > /dev/null 2>&1; then
        TIDY=$candidate
        break
    fi
done

if [ -z "$TIDY" ]; then
    echo "TidyClean: clang-tidy not found on PATH; skipping" \
         "(install clang-tidy to enable this pass)"
    exit 77
fi

# A missing compilation database is an environment gap (generator or
# cache predating CMAKE_EXPORT_COMPILE_COMMANDS), not a lint failure:
# skip like the missing-binary case so ctest reports "skipped".
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "TidyClean: $BUILD_DIR/compile_commands.json missing;" \
         "skipping (re-configure to regenerate the compilation" \
         "database)"
    exit 77
fi

# Every first-party translation unit; generated header TUs are
# covered transitively via the headers they include.
FILES=$(find "$SRC_DIR/src" "$SRC_DIR/bench" "$SRC_DIR/tools" \
             "$SRC_DIR/tests" "$SRC_DIR/examples" \
             \( -name '*.cc' -o -name '*.cpp' \) \
             ! -path '*/fixtures/*' | sort)

STATUS=0
for f in $FILES; do
    "$TIDY" -p "$BUILD_DIR" --quiet --warnings-as-errors='*' "$f" \
        || STATUS=1
done

if [ "$STATUS" -eq 0 ]; then
    echo "TidyClean: clean ($TIDY)"
fi
exit $STATUS
