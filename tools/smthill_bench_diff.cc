/**
 * @file
 * Perf-regression gate over bench exports: load two
 * `smthill.bench.*.v1` / `smthill.profile.v1` documents, compare
 * metric-by-metric with per-metric noise thresholds, print the table,
 * and exit nonzero on regression.
 *
 * Usage: smthill_bench_diff BASELINE.json CANDIDATE.json [threshold=PCT]
 *
 * Exit codes: 0 no regression, 1 regression detected, 2 usage or
 * input error. `threshold=PCT` overrides every gated metric's default
 * tolerance (see metricNoisePct in harness/bench_diff.cc).
 *
 * Workflow: regenerate a baseline with e.g.
 *   SMTHILL_STATS_JSON=/tmp/now.json ./build/bench/bench_sim_speed
 *   smthill_bench_diff bench/BENCH_sim_speed.json /tmp/now.json
 * and commit the refreshed bench/BENCH_*.json alongside any PR that
 * moves the numbers on purpose (see README "Observability").
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>

#include "common/json.hh"
#include "harness/bench_diff.hh"

namespace
{

bool
loadJsonFile(const std::string &path, smthill::Json &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "smthill_bench_diff: cannot open '%s'\n",
                     path.c_str());
        return false;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::string error;
    if (!smthill::Json::parse(text, out, error)) {
        std::fprintf(stderr,
                     "smthill_bench_diff: '%s' does not parse: %s\n",
                     path.c_str(), error.c_str());
        return false;
    }
    return true;
}

void
usage()
{
    std::fprintf(stderr,
                 "usage: smthill_bench_diff BASELINE.json "
                 "CANDIDATE.json [threshold=PCT]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baselinePath;
    std::string candidatePath;
    double threshold = 0.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("threshold=", 0) == 0) {
            char *end = nullptr;
            threshold = std::strtod(arg.c_str() + 10, &end);
            if (!end || *end != '\0' || threshold <= 0.0) {
                std::fprintf(stderr,
                             "smthill_bench_diff: bad %s (want a "
                             "positive percent)\n",
                             arg.c_str());
                return 2;
            }
        } else if (baselinePath.empty()) {
            baselinePath = arg;
        } else if (candidatePath.empty()) {
            candidatePath = arg;
        } else {
            usage();
            return 2;
        }
    }
    if (baselinePath.empty() || candidatePath.empty()) {
        usage();
        return 2;
    }

    smthill::Json baseline;
    smthill::Json candidate;
    if (!loadJsonFile(baselinePath, baseline) ||
        !loadJsonFile(candidatePath, candidate))
        return 2;

    smthill::BenchDiffResult result;
    std::string error;
    if (!smthill::diffBenchDocs(baseline, candidate, threshold, result,
                                error)) {
        std::fprintf(stderr, "smthill_bench_diff: %s\n", error.c_str());
        return 2;
    }
    std::fputs(smthill::renderBenchDiff(result).c_str(), stdout);
    return result.regressed ? 1 : 0;
}
