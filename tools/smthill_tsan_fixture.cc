/**
 * @file
 * Distilled ThreadSanitizer fixture for the analyzer's
 * parallel-capture pass (DESIGN.md §9): the exact race shape the
 * pass flags in tests/lint/fixtures/parallel_capture_flag.cc — a
 * by-reference capture mutated inside a parallelFor lambda without
 * index-disjoint access, atomics, or a lock — next to its three
 * sanctioned repairs.
 *
 * Usage:
 *   smthill_tsan_fixture racy    # the flagged shape; TSan reports a
 *                                # data race (build with
 *                                # -DSMTHILL_SANITIZE=thread)
 *   smthill_tsan_fixture fixed   # disjoint slots + atomic + lock;
 *                                # clean under TSan
 *
 * The `TsanFixtureFixed` ctest entry runs `fixed` in every build
 * flavor; `racy` is the manual cross-validation step recorded in
 * EXPERIMENTS.md — one confirmed TSan report per analyzer finding
 * shape, so the pass is anchored to a real schedule-dependent bug,
 * not just a lexical pattern.
 */

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/thread_pool.hh"

using namespace smthill;

namespace
{

constexpr std::size_t kN = 4096;

int
runRacy()
{
    ThreadPool pool(4);
    // The flagged shape: 'sum' is captured by reference and mutated
    // from every worker with no synchronization. TSan reports the
    // race; without TSan the sum is merely (sometimes) wrong.
    long sum = 0;
    pool.parallelFor(kN, [&](std::size_t i) { // smthill-lint: allow(parallel-capture)
        sum += static_cast<long>(i);
    });
    std::printf("racy sum = %ld (expected %ld)\n", sum,
                static_cast<long>(kN) * (kN - 1) / 2);
    return 0;
}

int
runFixed()
{
    ThreadPool pool(4);
    const long expected = static_cast<long>(kN) * (kN - 1) / 2;

    // Repair 1: index-disjoint slots, reduced after the join.
    std::vector<long> slots(kN, 0);
    pool.parallelFor(kN, [&](std::size_t i) {
        slots[i] = static_cast<long>(i);
    });
    long reduced = 0;
    for (long v : slots)
        reduced += v;

    // Repair 2: an atomic accumulator.
    std::atomic<long> atomicSum{0};
    pool.parallelFor(kN, [&](std::size_t i) {
        atomicSum += static_cast<long>(i);
    });

    // Repair 3: a lock around the shared mutation.
    long lockedSum = 0;
    std::mutex m;
    pool.parallelFor(kN, [&](std::size_t i) {
        std::lock_guard<std::mutex> hold(m);
        lockedSum += static_cast<long>(i);
    });

    bool ok = reduced == expected && atomicSum.load() == expected &&
              lockedSum == expected;
    std::printf("fixed sums = %ld / %ld / %ld (expected %ld)\n",
                reduced, atomicSum.load(), lockedSum, expected);
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 2 && std::strcmp(argv[1], "racy") == 0)
        return runRacy();
    if (argc == 2 && std::strcmp(argv[1], "fixed") == 0)
        return runFixed();
    std::fprintf(stderr, "usage: smthill_tsan_fixture racy|fixed\n");
    return 2;
}
