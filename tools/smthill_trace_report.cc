/**
 * @file
 * Offline reporting over `smthill.events.v1` cycle-level event
 * traces (common/event_trace.hh), in either export form (Perfetto
 * JSON or JSONL; auto-detected).
 *
 * Usage:
 *   smthill_trace_report summarize TRACE [csv=FILE]
 *     Event counts by category/name, the epoch latency distribution,
 *     and the per-thread resource-share timeline as an ASCII table
 *     (csv=FILE additionally writes the full timeline as CSV rows of
 *     cycle,pid,thread,share).
 *
 *   smthill_trace_report diff TRACE_A TRACE_B
 *     Compare two traces event by event. Exits 0 when the streams
 *     are identical; otherwise reports the first divergent event
 *     (with a little surrounding context) and exits 1. This is the
 *     debugging companion to the differential fuzzer: two runs that
 *     should be equivalent are localized to the first decision where
 *     they split.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/event_trace.hh"
#include "common/log.hh"
#include "harness/table.hh"

using namespace smthill;

namespace
{

/**
 * Every event name the simulator emits (smthill_analyze keeps this
 * in sync with the instant/complete/counter call sites cross-TU). A
 * trailing '*' marks a prefix wildcard for computed names. Names
 * outside this catalog are bucketed as unknown by summarize —
 * usually a typo at the emitter or a new event missing its report
 * support.
 */
const char *const kKnownEventNames[] = {
    "anchor.move",       "arm.pull",        "best.partition",
    "churn.attach",      "churn.detach",    "classify",
    "context.idle",      "context.reset",   "epoch",
    "flush",             "job.arrive",      "job.attach",
    "job.depart",        "partition.clear", "reuse.decision",
    "round",             "sample.begin",    "share.t*",
    "single_ipc.update", "stall",           "thread.enabled",
    "transition",        "trial.install",
};

/** @return true when @p name matches a catalog entry or wildcard. */
bool
knownEventName(const std::string &name)
{
    for (const char *entry : kKnownEventNames) {
        std::string e = entry;
        if (!e.empty() && e.back() == '*') {
            if (name.rfind(e.substr(0, e.size() - 1), 0) == 0)
                return true;
        } else if (name == e) {
            return true;
        }
    }
    return false;
}

/** Slurp @p path, fataling on I/O failure. */
std::string
readTextFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal(msg("cannot open '", path, "'"));
    std::ostringstream ss;
    ss << in.rdbuf();
    if (!in && !in.eof())
        fatal(msg("cannot read '", path, "'"));
    return ss.str();
}

/** Load a trace file in either export form, fataling on errors. */
std::vector<SimEvent>
loadTrace(const std::string &path)
{
    std::vector<SimEvent> events;
    std::string error;
    if (!EventTrace::loadEventTraceText(readTextFile(path), events,
                                        error))
        fatal(msg(path, ": ", error));
    return events;
}

/** q-quantile (0..1) of an ascending-sorted sample vector. */
std::int64_t
quantile(const std::vector<std::int64_t> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    std::size_t i = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(i, sorted.size() - 1)];
}

void
printEventCounts(const std::vector<SimEvent> &events)
{
    std::map<std::pair<std::string, std::string>, std::uint64_t> counts;
    for (const SimEvent &e : events)
        ++counts[{e.cat, e.name}];

    banner("event counts");
    Table t({"cat", "name", "count"});
    for (const auto &[key, n] : counts) {
        t.beginRow();
        t.cell(key.first);
        t.cell(key.second);
        t.cell(static_cast<std::int64_t>(n));
    }
    t.print();
    std::printf("total: %zu events\n", events.size());

    // Names outside the catalog get called out rather than silently
    // folded into the table — catching emitter typos is the point.
    // Perfetto 'M' metadata (process_name/thread_name) is viewer
    // plumbing, not a simulator event, and is exempt.
    std::map<std::string, std::uint64_t> unknown;
    for (const SimEvent &e : events)
        if (e.ph != 'M' && !knownEventName(e.name))
            ++unknown[e.name];
    for (const auto &[name, n] : unknown)
        std::printf("warning: unknown event name '%s' (%llu events) — "
                    "not in this report's catalog\n",
                    name.c_str(),
                    static_cast<unsigned long long>(n));
}

void
printEpochLatency(const std::vector<SimEvent> &events)
{
    std::vector<std::int64_t> durs;
    for (const SimEvent &e : events)
        if (e.ph == 'X' && e.cat == "epoch" && e.dur >= 0)
            durs.push_back(e.dur);

    banner("epoch latency (cycles)");
    if (durs.empty()) {
        std::printf("no epoch slices in trace\n");
        return;
    }
    std::sort(durs.begin(), durs.end());
    double mean = 0.0;
    for (std::int64_t d : durs)
        mean += static_cast<double>(d);
    mean /= static_cast<double>(durs.size());

    Table t({"epochs", "min", "p50", "p90", "max", "mean"});
    t.beginRow();
    t.cell(static_cast<std::int64_t>(durs.size()));
    t.cell(durs.front());
    t.cell(quantile(durs, 0.5));
    t.cell(quantile(durs, 0.9));
    t.cell(durs.back());
    t.cell(mean, 1);
    t.print();
}

/** share.tN counter samples folded into per-(pid, cycle) snapshots. */
struct ShareTimeline
{
    // pid -> thread id -> last value, rebuilt cycle by cycle.
    std::map<int, std::vector<int>> threads; ///< sorted tids per pid
    // pid -> cycle -> (tid -> value) updates at that cycle.
    std::map<int, std::map<Cycle, std::map<int, double>>> updates;
};

ShareTimeline
collectShares(const std::vector<SimEvent> &events)
{
    ShareTimeline tl;
    for (const SimEvent &e : events) {
        if (e.ph != 'C' || e.name.rfind("share.t", 0) != 0)
            continue;
        bool has_value = e.args.isObject() && e.args.contains("value");
        tl.updates[e.pid][e.ts][e.tid] =
            has_value ? e.args.at("value").asDouble() : 0.0;
        std::vector<int> &tids = tl.threads[e.pid];
        if (std::find(tids.begin(), tids.end(), e.tid) == tids.end())
            tids.push_back(e.tid);
    }
    for (auto &[pid, tids] : tl.threads)
        std::sort(tids.begin(), tids.end());
    return tl;
}

void
printShareTimeline(const ShareTimeline &tl)
{
    banner("per-thread share timeline");
    if (tl.updates.empty()) {
        std::printf("no share.tN counter events in trace\n");
        return;
    }
    constexpr std::size_t kMaxRows = 48;
    for (const auto &[pid, by_cycle] : tl.updates) {
        const std::vector<int> &tids = tl.threads.at(pid);
        std::vector<std::string> headers = {"cycle"};
        for (int tid : tids)
            headers.push_back(msg("share.t", tid));
        Table t(std::move(headers));

        // Carry the last seen value forward so each printed row is a
        // complete snapshot even when only one thread's share moved.
        std::map<int, double> current;
        std::vector<std::pair<Cycle, std::map<int, double>>> rows;
        for (const auto &[cycle, upd] : by_cycle) {
            for (const auto &[tid, value] : upd)
                current[tid] = value;
            rows.emplace_back(cycle, current);
        }
        std::size_t step =
            rows.size() <= kMaxRows ? 1 : (rows.size() + kMaxRows - 1) /
                                              kMaxRows;
        auto emit = [&](std::size_t i) {
            t.beginRow();
            t.cell(static_cast<std::int64_t>(rows[i].first));
            for (int tid : tids) {
                auto it = rows[i].second.find(tid);
                t.cell(it == rows[i].second.end()
                           ? std::int64_t{-1}
                           : static_cast<std::int64_t>(it->second));
            }
        };
        for (std::size_t i = 0; i < rows.size(); i += step)
            emit(i);
        // The final snapshot is the run's end state; always show it.
        if (step > 1 && (rows.size() - 1) % step != 0)
            emit(rows.size() - 1);
        std::printf("process %d:\n", pid);
        t.print();
        if (step > 1)
            std::printf("(%zu of %zu snapshots shown; csv=FILE writes "
                        "all)\n",
                        t.numRows(), rows.size());
    }
}

void
writeShareCsv(const ShareTimeline &tl, const std::string &path)
{
    std::ostringstream out;
    out << "cycle,pid,thread,share\n";
    for (const auto &[pid, by_cycle] : tl.updates)
        for (const auto &[cycle, upd] : by_cycle)
            for (const auto &[tid, value] : upd)
                out << cycle << ',' << pid << ',' << tid << ','
                    << static_cast<std::int64_t>(value) << '\n';

    std::ofstream f(path, std::ios::binary);
    f << out.str();
    if (!f)
        fatal(msg("cannot write '", path, "'"));
    std::printf("wrote share timeline CSV to %s\n", path.c_str());
}

int
runSummarize(const std::string &trace_path, const std::string &csv_path)
{
    std::vector<SimEvent> events = loadTrace(trace_path);
    std::printf("%s: %zu events\n", trace_path.c_str(), events.size());
    printEventCounts(events);
    printEpochLatency(events);
    ShareTimeline tl = collectShares(events);
    printShareTimeline(tl);
    if (!csv_path.empty())
        writeShareCsv(tl, csv_path);
    return 0;
}

int
runDiff(const std::string &path_a, const std::string &path_b)
{
    std::vector<SimEvent> a = loadTrace(path_a);
    std::vector<SimEvent> b = loadTrace(path_b);
    EventDiff d = diffEvents(a, b);
    if (!d.diverged) {
        std::printf("identical: %zu events\n", a.size());
        return 0;
    }
    std::printf("DIVERGED at event %zu: %s\n", d.index,
                d.description.c_str());
    // A little leading context localizes the decision that split.
    std::size_t from = d.index >= 3 ? d.index - 3 : 0;
    for (std::size_t i = from; i < d.index && i < a.size(); ++i)
        std::printf("  common  [%zu] %s\n", i,
                    eventSummary(a[i]).c_str());
    if (d.index < a.size())
        std::printf("  A       [%zu] %s\n", d.index,
                    eventSummary(a[d.index]).c_str());
    else
        std::printf("  A       [%zu] <end of stream>\n", d.index);
    if (d.index < b.size())
        std::printf("  B       [%zu] %s\n", d.index,
                    eventSummary(b[d.index]).c_str());
    else
        std::printf("  B       [%zu] <end of stream>\n", d.index);
    return 1;
}

[[noreturn]] void
usage()
{
    fatal("usage: smthill_trace_report summarize TRACE [csv=FILE]\n"
          "       smthill_trace_report diff TRACE_A TRACE_B");
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        usage();

    if (args[0] == "summarize") {
        std::string csv_path;
        std::vector<std::string> rest;
        for (std::size_t i = 1; i < args.size(); ++i) {
            if (args[i].rfind("csv=", 0) == 0)
                csv_path = args[i].substr(4);
            else
                rest.push_back(args[i]);
        }
        if (rest.size() != 1)
            usage();
        return runSummarize(rest[0], csv_path);
    }
    if (args[0] == "diff") {
        if (args.size() != 3)
            usage();
        return runDiff(args[1], args[2]);
    }
    usage();
}
