# Empty compiler generated dependencies file for smthill_cli.
# This may be replaced when dependencies are built.
