file(REMOVE_RECURSE
  "CMakeFiles/smthill_cli.dir/smthill_cli.cc.o"
  "CMakeFiles/smthill_cli.dir/smthill_cli.cc.o.d"
  "smthill_cli"
  "smthill_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smthill_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
