file(REMOVE_RECURSE
  "../bench/bench_fig05_sync"
  "../bench/bench_fig05_sync.pdb"
  "CMakeFiles/bench_fig05_sync.dir/bench_fig05_sync.cc.o"
  "CMakeFiles/bench_fig05_sync.dir/bench_fig05_sync.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
