file(REMOVE_RECURSE
  "../bench/bench_fig11_limits"
  "../bench/bench_fig11_limits.pdb"
  "CMakeFiles/bench_fig11_limits.dir/bench_fig11_limits.cc.o"
  "CMakeFiles/bench_fig11_limits.dir/bench_fig11_limits.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
