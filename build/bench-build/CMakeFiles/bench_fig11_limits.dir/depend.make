# Empty dependencies file for bench_fig11_limits.
# This may be replaced when dependencies are built.
