# Empty dependencies file for bench_fig04_offline_limit.
# This may be replaced when dependencies are built.
