file(REMOVE_RECURSE
  "../bench/bench_fig04_offline_limit"
  "../bench/bench_fig04_offline_limit.pdb"
  "CMakeFiles/bench_fig04_offline_limit.dir/bench_fig04_offline_limit.cc.o"
  "CMakeFiles/bench_fig04_offline_limit.dir/bench_fig04_offline_limit.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_offline_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
