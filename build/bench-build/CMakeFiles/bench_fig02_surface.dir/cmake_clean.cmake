file(REMOVE_RECURSE
  "../bench/bench_fig02_surface"
  "../bench/bench_fig02_surface.pdb"
  "CMakeFiles/bench_fig02_surface.dir/bench_fig02_surface.cc.o"
  "CMakeFiles/bench_fig02_surface.dir/bench_fig02_surface.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
