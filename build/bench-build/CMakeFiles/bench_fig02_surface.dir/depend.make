# Empty dependencies file for bench_fig02_surface.
# This may be replaced when dependencies are built.
