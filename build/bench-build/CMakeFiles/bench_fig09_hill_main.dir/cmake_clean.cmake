file(REMOVE_RECURSE
  "../bench/bench_fig09_hill_main"
  "../bench/bench_fig09_hill_main.pdb"
  "CMakeFiles/bench_fig09_hill_main.dir/bench_fig09_hill_main.cc.o"
  "CMakeFiles/bench_fig09_hill_main.dir/bench_fig09_hill_main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_hill_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
