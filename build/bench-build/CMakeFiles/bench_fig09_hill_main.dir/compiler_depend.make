# Empty compiler generated dependencies file for bench_fig09_hill_main.
# This may be replaced when dependencies are built.
