# Empty compiler generated dependencies file for bench_sec5_phase.
# This may be replaced when dependencies are built.
