file(REMOVE_RECURSE
  "../bench/bench_sec5_phase"
  "../bench/bench_sec5_phase.pdb"
  "CMakeFiles/bench_sec5_phase.dir/bench_sec5_phase.cc.o"
  "CMakeFiles/bench_sec5_phase.dir/bench_sec5_phase.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
