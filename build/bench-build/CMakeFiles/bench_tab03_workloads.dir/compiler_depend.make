# Empty compiler generated dependencies file for bench_tab03_workloads.
# This may be replaced when dependencies are built.
