file(REMOVE_RECURSE
  "../bench/bench_tab03_workloads"
  "../bench/bench_tab03_workloads.pdb"
  "CMakeFiles/bench_tab03_workloads.dir/bench_tab03_workloads.cc.o"
  "CMakeFiles/bench_tab03_workloads.dir/bench_tab03_workloads.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab03_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
