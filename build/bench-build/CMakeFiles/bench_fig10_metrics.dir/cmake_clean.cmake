file(REMOVE_RECURSE
  "../bench/bench_fig10_metrics"
  "../bench/bench_fig10_metrics.pdb"
  "CMakeFiles/bench_fig10_metrics.dir/bench_fig10_metrics.cc.o"
  "CMakeFiles/bench_fig10_metrics.dir/bench_fig10_metrics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
