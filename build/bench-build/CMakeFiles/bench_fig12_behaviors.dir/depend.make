# Empty dependencies file for bench_fig12_behaviors.
# This may be replaced when dependencies are built.
