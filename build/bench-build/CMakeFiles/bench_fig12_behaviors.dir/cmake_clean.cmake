file(REMOVE_RECURSE
  "../bench/bench_fig12_behaviors"
  "../bench/bench_fig12_behaviors.pdb"
  "CMakeFiles/bench_fig12_behaviors.dir/bench_fig12_behaviors.cc.o"
  "CMakeFiles/bench_fig12_behaviors.dir/bench_fig12_behaviors.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_behaviors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
