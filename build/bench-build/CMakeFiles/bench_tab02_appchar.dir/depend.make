# Empty dependencies file for bench_tab02_appchar.
# This may be replaced when dependencies are built.
