file(REMOVE_RECURSE
  "../bench/bench_tab02_appchar"
  "../bench/bench_tab02_appchar.pdb"
  "CMakeFiles/bench_tab02_appchar.dir/bench_tab02_appchar.cc.o"
  "CMakeFiles/bench_tab02_appchar.dir/bench_tab02_appchar.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab02_appchar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
