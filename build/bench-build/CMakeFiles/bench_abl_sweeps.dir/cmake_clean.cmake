file(REMOVE_RECURSE
  "../bench/bench_abl_sweeps"
  "../bench/bench_abl_sweeps.pdb"
  "CMakeFiles/bench_abl_sweeps.dir/bench_abl_sweeps.cc.o"
  "CMakeFiles/bench_abl_sweeps.dir/bench_abl_sweeps.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
