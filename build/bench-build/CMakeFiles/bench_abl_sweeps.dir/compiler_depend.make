# Empty compiler generated dependencies file for bench_abl_sweeps.
# This may be replaced when dependencies are built.
