file(REMOVE_RECURSE
  "../bench/bench_fig07_hillwidth"
  "../bench/bench_fig07_hillwidth.pdb"
  "CMakeFiles/bench_fig07_hillwidth.dir/bench_fig07_hillwidth.cc.o"
  "CMakeFiles/bench_fig07_hillwidth.dir/bench_fig07_hillwidth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_hillwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
