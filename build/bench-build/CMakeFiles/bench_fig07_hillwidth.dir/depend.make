# Empty dependencies file for bench_fig07_hillwidth.
# This may be replaced when dependencies are built.
