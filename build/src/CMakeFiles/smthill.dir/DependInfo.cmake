
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/branch/predictors.cc" "src/CMakeFiles/smthill.dir/branch/predictors.cc.o" "gcc" "src/CMakeFiles/smthill.dir/branch/predictors.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/smthill.dir/common/log.cc.o" "gcc" "src/CMakeFiles/smthill.dir/common/log.cc.o.d"
  "/root/repo/src/common/options.cc" "src/CMakeFiles/smthill.dir/common/options.cc.o" "gcc" "src/CMakeFiles/smthill.dir/common/options.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/smthill.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/smthill.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/smthill.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/smthill.dir/common/stats.cc.o.d"
  "/root/repo/src/core/hill_climbing.cc" "src/CMakeFiles/smthill.dir/core/hill_climbing.cc.o" "gcc" "src/CMakeFiles/smthill.dir/core/hill_climbing.cc.o.d"
  "/root/repo/src/core/hill_width.cc" "src/CMakeFiles/smthill.dir/core/hill_width.cc.o" "gcc" "src/CMakeFiles/smthill.dir/core/hill_width.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/smthill.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/smthill.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/offline_exhaustive.cc" "src/CMakeFiles/smthill.dir/core/offline_exhaustive.cc.o" "gcc" "src/CMakeFiles/smthill.dir/core/offline_exhaustive.cc.o.d"
  "/root/repo/src/core/partitioning.cc" "src/CMakeFiles/smthill.dir/core/partitioning.cc.o" "gcc" "src/CMakeFiles/smthill.dir/core/partitioning.cc.o.d"
  "/root/repo/src/core/rand_hill.cc" "src/CMakeFiles/smthill.dir/core/rand_hill.cc.o" "gcc" "src/CMakeFiles/smthill.dir/core/rand_hill.cc.o.d"
  "/root/repo/src/harness/report.cc" "src/CMakeFiles/smthill.dir/harness/report.cc.o" "gcc" "src/CMakeFiles/smthill.dir/harness/report.cc.o.d"
  "/root/repo/src/harness/runner.cc" "src/CMakeFiles/smthill.dir/harness/runner.cc.o" "gcc" "src/CMakeFiles/smthill.dir/harness/runner.cc.o.d"
  "/root/repo/src/harness/sync_runner.cc" "src/CMakeFiles/smthill.dir/harness/sync_runner.cc.o" "gcc" "src/CMakeFiles/smthill.dir/harness/sync_runner.cc.o.d"
  "/root/repo/src/harness/table.cc" "src/CMakeFiles/smthill.dir/harness/table.cc.o" "gcc" "src/CMakeFiles/smthill.dir/harness/table.cc.o.d"
  "/root/repo/src/memory/cache.cc" "src/CMakeFiles/smthill.dir/memory/cache.cc.o" "gcc" "src/CMakeFiles/smthill.dir/memory/cache.cc.o.d"
  "/root/repo/src/memory/hierarchy.cc" "src/CMakeFiles/smthill.dir/memory/hierarchy.cc.o" "gcc" "src/CMakeFiles/smthill.dir/memory/hierarchy.cc.o.d"
  "/root/repo/src/phase/bbv.cc" "src/CMakeFiles/smthill.dir/phase/bbv.cc.o" "gcc" "src/CMakeFiles/smthill.dir/phase/bbv.cc.o.d"
  "/root/repo/src/phase/markov_predictor.cc" "src/CMakeFiles/smthill.dir/phase/markov_predictor.cc.o" "gcc" "src/CMakeFiles/smthill.dir/phase/markov_predictor.cc.o.d"
  "/root/repo/src/phase/phase_hill.cc" "src/CMakeFiles/smthill.dir/phase/phase_hill.cc.o" "gcc" "src/CMakeFiles/smthill.dir/phase/phase_hill.cc.o.d"
  "/root/repo/src/phase/phase_table.cc" "src/CMakeFiles/smthill.dir/phase/phase_table.cc.o" "gcc" "src/CMakeFiles/smthill.dir/phase/phase_table.cc.o.d"
  "/root/repo/src/pipeline/cpu.cc" "src/CMakeFiles/smthill.dir/pipeline/cpu.cc.o" "gcc" "src/CMakeFiles/smthill.dir/pipeline/cpu.cc.o.d"
  "/root/repo/src/pipeline/resources.cc" "src/CMakeFiles/smthill.dir/pipeline/resources.cc.o" "gcc" "src/CMakeFiles/smthill.dir/pipeline/resources.cc.o.d"
  "/root/repo/src/pipeline/smt_config.cc" "src/CMakeFiles/smthill.dir/pipeline/smt_config.cc.o" "gcc" "src/CMakeFiles/smthill.dir/pipeline/smt_config.cc.o.d"
  "/root/repo/src/pipeline/tracer.cc" "src/CMakeFiles/smthill.dir/pipeline/tracer.cc.o" "gcc" "src/CMakeFiles/smthill.dir/pipeline/tracer.cc.o.d"
  "/root/repo/src/policy/dcra.cc" "src/CMakeFiles/smthill.dir/policy/dcra.cc.o" "gcc" "src/CMakeFiles/smthill.dir/policy/dcra.cc.o.d"
  "/root/repo/src/policy/dg.cc" "src/CMakeFiles/smthill.dir/policy/dg.cc.o" "gcc" "src/CMakeFiles/smthill.dir/policy/dg.cc.o.d"
  "/root/repo/src/policy/flush.cc" "src/CMakeFiles/smthill.dir/policy/flush.cc.o" "gcc" "src/CMakeFiles/smthill.dir/policy/flush.cc.o.d"
  "/root/repo/src/policy/icount.cc" "src/CMakeFiles/smthill.dir/policy/icount.cc.o" "gcc" "src/CMakeFiles/smthill.dir/policy/icount.cc.o.d"
  "/root/repo/src/policy/policy.cc" "src/CMakeFiles/smthill.dir/policy/policy.cc.o" "gcc" "src/CMakeFiles/smthill.dir/policy/policy.cc.o.d"
  "/root/repo/src/policy/stall.cc" "src/CMakeFiles/smthill.dir/policy/stall.cc.o" "gcc" "src/CMakeFiles/smthill.dir/policy/stall.cc.o.d"
  "/root/repo/src/policy/stall_flush.cc" "src/CMakeFiles/smthill.dir/policy/stall_flush.cc.o" "gcc" "src/CMakeFiles/smthill.dir/policy/stall_flush.cc.o.d"
  "/root/repo/src/policy/static_partition.cc" "src/CMakeFiles/smthill.dir/policy/static_partition.cc.o" "gcc" "src/CMakeFiles/smthill.dir/policy/static_partition.cc.o.d"
  "/root/repo/src/trace/program_profile.cc" "src/CMakeFiles/smthill.dir/trace/program_profile.cc.o" "gcc" "src/CMakeFiles/smthill.dir/trace/program_profile.cc.o.d"
  "/root/repo/src/trace/spec_profiles.cc" "src/CMakeFiles/smthill.dir/trace/spec_profiles.cc.o" "gcc" "src/CMakeFiles/smthill.dir/trace/spec_profiles.cc.o.d"
  "/root/repo/src/trace/stream_generator.cc" "src/CMakeFiles/smthill.dir/trace/stream_generator.cc.o" "gcc" "src/CMakeFiles/smthill.dir/trace/stream_generator.cc.o.d"
  "/root/repo/src/workload/workloads.cc" "src/CMakeFiles/smthill.dir/workload/workloads.cc.o" "gcc" "src/CMakeFiles/smthill.dir/workload/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
