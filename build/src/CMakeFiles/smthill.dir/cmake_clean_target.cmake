file(REMOVE_RECURSE
  "libsmthill.a"
)
