# Empty compiler generated dependencies file for smthill.
# This may be replaced when dependencies are built.
