
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/smthill_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_cpu.cc" "tests/CMakeFiles/smthill_tests.dir/test_cpu.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_cpu.cc.o.d"
  "/root/repo/tests/test_cpu_partitioning.cc" "tests/CMakeFiles/smthill_tests.dir/test_cpu_partitioning.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_cpu_partitioning.cc.o.d"
  "/root/repo/tests/test_custom_machines.cc" "tests/CMakeFiles/smthill_tests.dir/test_custom_machines.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_custom_machines.cc.o.d"
  "/root/repo/tests/test_harness.cc" "tests/CMakeFiles/smthill_tests.dir/test_harness.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_harness.cc.o.d"
  "/root/repo/tests/test_hierarchy.cc" "tests/CMakeFiles/smthill_tests.dir/test_hierarchy.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_hierarchy.cc.o.d"
  "/root/repo/tests/test_hill_climbing.cc" "tests/CMakeFiles/smthill_tests.dir/test_hill_climbing.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_hill_climbing.cc.o.d"
  "/root/repo/tests/test_hill_width.cc" "tests/CMakeFiles/smthill_tests.dir/test_hill_width.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_hill_width.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/smthill_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_metrics.cc" "tests/CMakeFiles/smthill_tests.dir/test_metrics.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_metrics.cc.o.d"
  "/root/repo/tests/test_offline.cc" "tests/CMakeFiles/smthill_tests.dir/test_offline.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_offline.cc.o.d"
  "/root/repo/tests/test_options.cc" "tests/CMakeFiles/smthill_tests.dir/test_options.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_options.cc.o.d"
  "/root/repo/tests/test_partition_search.cc" "tests/CMakeFiles/smthill_tests.dir/test_partition_search.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_partition_search.cc.o.d"
  "/root/repo/tests/test_phase.cc" "tests/CMakeFiles/smthill_tests.dir/test_phase.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_phase.cc.o.d"
  "/root/repo/tests/test_policies.cc" "tests/CMakeFiles/smthill_tests.dir/test_policies.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_policies.cc.o.d"
  "/root/repo/tests/test_predictors.cc" "tests/CMakeFiles/smthill_tests.dir/test_predictors.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_predictors.cc.o.d"
  "/root/repo/tests/test_profiles.cc" "tests/CMakeFiles/smthill_tests.dir/test_profiles.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_profiles.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/smthill_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_rand_hill.cc" "tests/CMakeFiles/smthill_tests.dir/test_rand_hill.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_rand_hill.cc.o.d"
  "/root/repo/tests/test_related_policies.cc" "tests/CMakeFiles/smthill_tests.dir/test_related_policies.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_related_policies.cc.o.d"
  "/root/repo/tests/test_report_tracer.cc" "tests/CMakeFiles/smthill_tests.dir/test_report_tracer.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_report_tracer.cc.o.d"
  "/root/repo/tests/test_resources.cc" "tests/CMakeFiles/smthill_tests.dir/test_resources.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_resources.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/smthill_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/smthill_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_stream_generator.cc" "tests/CMakeFiles/smthill_tests.dir/test_stream_generator.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_stream_generator.cc.o.d"
  "/root/repo/tests/test_stress.cc" "tests/CMakeFiles/smthill_tests.dir/test_stress.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_stress.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/smthill_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/smthill_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smthill.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
