# Empty compiler generated dependencies file for smthill_tests.
# This may be replaced when dependencies are built.
