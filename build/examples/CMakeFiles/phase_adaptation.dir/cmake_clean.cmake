file(REMOVE_RECURSE
  "CMakeFiles/phase_adaptation.dir/phase_adaptation.cpp.o"
  "CMakeFiles/phase_adaptation.dir/phase_adaptation.cpp.o.d"
  "phase_adaptation"
  "phase_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
