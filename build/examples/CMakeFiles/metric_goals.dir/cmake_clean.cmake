file(REMOVE_RECURSE
  "CMakeFiles/metric_goals.dir/metric_goals.cpp.o"
  "CMakeFiles/metric_goals.dir/metric_goals.cpp.o.d"
  "metric_goals"
  "metric_goals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metric_goals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
