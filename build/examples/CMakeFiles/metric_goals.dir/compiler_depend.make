# Empty compiler generated dependencies file for metric_goals.
# This may be replaced when dependencies are built.
