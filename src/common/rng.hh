/**
 * @file
 * Deterministic, copyable pseudo-random number generation.
 *
 * Every stochastic element of the simulator (instruction streams,
 * memory address selection, RAND-HILL restarts) draws from an Rng
 * whose entire state is two 64-bit words. Copying an Rng copies the
 * stream position, which is what makes whole-machine checkpoints
 * (value copies of SmtCpu) replay identically.
 */

#ifndef SMTHILL_COMMON_RNG_HH
#define SMTHILL_COMMON_RNG_HH

#include <cstdint>

namespace smthill
{

/**
 * xoroshiro128++ generator with splitmix64 seeding. Value semantics;
 * 16 bytes of state.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return next 64 uniformly random bits. */
    std::uint64_t next();

    /** @return uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** @return uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** @return uniform double in [0, 1). */
    double nextDouble();

    /** @return true with probability p (clamped to [0,1]). */
    bool chance(double p);

    /**
     * Draw from a (truncated) geometric distribution with success
     * probability p; result is >= 1. Used for burst lengths.
     */
    int nextGeometric(double p, int max_value);

    /**
     * nextGeometric with the denominator log1p(-p) precomputed by the
     * caller (it is constant per distribution, and log1p is the
     * expensive part of every draw). A denominator of exactly 0.0 is
     * the degenerate p >= 1 case and returns 1 without consuming any
     * randomness — the same draws nextGeometric(p, ...) would make.
     */
    int nextGeometricLog(double log1p_neg_p, int max_value);

    bool operator==(const Rng &) const = default;

  private:
    std::uint64_t s0;
    std::uint64_t s1;
};

} // namespace smthill

#endif // SMTHILL_COMMON_RNG_HH
