/**
 * @file
 * Fundamental scalar types and enums shared across the simulator.
 */

#ifndef SMTHILL_COMMON_TYPES_HH
#define SMTHILL_COMMON_TYPES_HH

#include <cstdint>
#include <string>

namespace smthill
{

/** Simulated processor cycle count. */
using Cycle = std::uint64_t;

/** Per-thread dynamic instruction sequence number (starts at 0). */
using InstSeq = std::uint64_t;

/** Hardware context (thread) index within the SMT core. */
using ThreadId = std::uint32_t;

/** Synthetic program counter (byte address of an instruction). */
using Addr = std::uint64_t;

/** A cycle value that will never be reached; used as "not scheduled". */
inline constexpr Cycle kNeverCycle = ~Cycle{0};

/**
 * Functional classes of synthetic instructions. The class determines
 * which functional-unit pool an instruction issues to, its execution
 * latency, and which shared resources it occupies.
 */
enum class OpClass : std::uint8_t
{
    IntAlu,   ///< single-cycle integer op (add, logic, compare)
    IntMul,   ///< integer multiply/divide
    FpAlu,    ///< floating-point add/compare/convert
    FpMul,    ///< floating-point multiply/divide/sqrt
    Load,     ///< memory read (int or fp destination)
    Store,    ///< memory write
    Branch    ///< conditional or unconditional control transfer
};

/** Number of distinct OpClass values. */
inline constexpr int kNumOpClasses = 7;

/** @return a short printable mnemonic for an op class. */
constexpr const char *
opClassName(OpClass oc)
{
    switch (oc) {
      case OpClass::IntAlu: return "IntAlu";
      case OpClass::IntMul: return "IntMul";
      case OpClass::FpAlu:  return "FpAlu";
      case OpClass::FpMul:  return "FpMul";
      case OpClass::Load:   return "Load";
      case OpClass::Store:  return "Store";
      case OpClass::Branch: return "Branch";
    }
    return "?";
}

/** @return true if the op produces an integer register result. */
inline bool
isIntOp(OpClass oc)
{
    return oc == OpClass::IntAlu || oc == OpClass::IntMul ||
           oc == OpClass::Load || oc == OpClass::Branch;
}

/** @return true if the op produces a floating-point register result. */
inline bool
isFpOp(OpClass oc)
{
    return oc == OpClass::FpAlu || oc == OpClass::FpMul;
}

/** @return true if the op accesses data memory. */
inline bool
isMemOp(OpClass oc)
{
    return oc == OpClass::Load || oc == OpClass::Store;
}

} // namespace smthill

#endif // SMTHILL_COMMON_TYPES_HH
