#include "common/options.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/log.hh"

namespace smthill
{

namespace
{

std::string
trim(const std::string &s)
{
    std::size_t a = s.find_first_not_of(" \t\r\n");
    if (a == std::string::npos)
        return "";
    std::size_t b = s.find_last_not_of(" \t\r\n");
    return s.substr(a, b - a + 1);
}

} // namespace

void
OptionSet::add(const std::string &name, Kind kind, void *target,
               const std::string &help)
{
    if (options.count(name))
        fatal(msg("OptionSet: duplicate option '", name, "'"));
    options[name] = Option{kind, target, help};
}

void
OptionSet::addInt(const std::string &name, std::int64_t *target,
                  const std::string &help)
{
    add(name, Kind::Int64, target, help);
}

void
OptionSet::addUint(const std::string &name, std::uint64_t *target,
                   const std::string &help)
{
    add(name, Kind::Uint64, target, help);
}

void
OptionSet::addInt32(const std::string &name, int *target,
                    const std::string &help)
{
    add(name, Kind::Int32, target, help);
}

void
OptionSet::addDouble(const std::string &name, double *target,
                     const std::string &help)
{
    add(name, Kind::Double, target, help);
}

void
OptionSet::addBool(const std::string &name, bool *target,
                   const std::string &help)
{
    add(name, Kind::Bool, target, help);
}

void
OptionSet::addString(const std::string &name, std::string *target,
                     const std::string &help)
{
    add(name, Kind::String, target, help);
}

bool
OptionSet::has(const std::string &name) const
{
    return options.count(name) != 0;
}

bool
OptionSet::set(const std::string &name, const std::string &value,
               std::string &error)
{
    auto it = options.find(name);
    if (it == options.end()) {
        error = "unknown option '" + name + "'";
        return false;
    }
    const Option &opt = it->second;
    char *end = nullptr;
    switch (opt.kind) {
      case Kind::Int64: {
        long long v = std::strtoll(value.c_str(), &end, 0);
        if (end == value.c_str() || *end != '\0') {
            error = "bad integer for '" + name + "': " + value;
            return false;
        }
        *static_cast<std::int64_t *>(opt.target) = v;
        return true;
      }
      case Kind::Uint64: {
        unsigned long long v = std::strtoull(value.c_str(), &end, 0);
        if (end == value.c_str() || *end != '\0') {
            error = "bad unsigned integer for '" + name + "': " + value;
            return false;
        }
        *static_cast<std::uint64_t *>(opt.target) = v;
        return true;
      }
      case Kind::Int32: {
        long v = std::strtol(value.c_str(), &end, 0);
        if (end == value.c_str() || *end != '\0') {
            error = "bad integer for '" + name + "': " + value;
            return false;
        }
        *static_cast<int *>(opt.target) = static_cast<int>(v);
        return true;
      }
      case Kind::Double: {
        double v = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0') {
            error = "bad number for '" + name + "': " + value;
            return false;
        }
        *static_cast<double *>(opt.target) = v;
        return true;
      }
      case Kind::Bool: {
        if (value == "1" || value == "true" || value == "yes") {
            *static_cast<bool *>(opt.target) = true;
        } else if (value == "0" || value == "false" || value == "no") {
            *static_cast<bool *>(opt.target) = false;
        } else {
            error = "bad boolean for '" + name + "': " + value;
            return false;
        }
        return true;
      }
      case Kind::String:
        *static_cast<std::string *>(opt.target) = value;
        return true;
    }
    error = "internal option kind error";
    return false;
}

bool
OptionSet::loadFile(const std::string &path, std::string &error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open config file '" + path + "'";
        return false;
    }
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::string t = trim(line);
        if (t.empty() || t[0] == '#')
            continue;
        std::size_t eq = t.find('=');
        if (eq == std::string::npos) {
            error = path + ":" + std::to_string(lineno) +
                    ": expected 'key = value'";
            return false;
        }
        std::string key = trim(t.substr(0, eq));
        std::string value = trim(t.substr(eq + 1));
        if (!set(key, value, error)) {
            error = path + ":" + std::to_string(lineno) + ": " + error;
            return false;
        }
    }
    return true;
}

bool
OptionSet::parseArgs(const std::vector<std::string> &args,
                     std::vector<std::string> &positional,
                     std::string &error)
{
    for (const std::string &arg : args) {
        std::size_t eq = arg.find('=');
        if (eq == std::string::npos) {
            positional.push_back(arg);
            continue;
        }
        if (!set(trim(arg.substr(0, eq)), trim(arg.substr(eq + 1)),
                 error))
            return false;
    }
    return true;
}

void
OptionSet::printHelp() const
{
    for (const auto &[name, opt] : options)
        std::printf("  %-24s %s\n", name.c_str(), opt.help.c_str());
}

} // namespace smthill
