#include "common/profile.hh"

// The one sanctioned host-clock user in the tree: the no-wall-clock
// lint rule carves out exactly this file (see lint/lint.cc), the way
// common/log.cc is the one sanctioned `exit` caller. Host time read
// here is telemetry only and never reaches simulator state.
#include <chrono>

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>

#include "common/event_trace.hh"

namespace smthill::prof
{

namespace
{

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Per-name aggregate on one thread. */
struct Agg
{
    std::uint64_t count = 0;
    std::uint64_t total = 0;
    std::uint64_t self = 0;
    std::uint64_t max = 0;
};

/** Open span on a thread's stack. */
struct Frame
{
    const char *name;
    std::uint64_t start;
    std::uint64_t childNs;
};

/** One completed span instance (Perfetto host track). */
struct Instance
{
    const char *name;
    std::uint64_t start;
    std::uint64_t dur;
};

/**
 * Bounded per-thread timeline: the aggregate counters above never
 * drop data, but the instance timeline keeps only the first
 * kTimelineCap completions per thread so a long run cannot grow
 * memory without bound.
 */
constexpr std::size_t kTimelineCap = 64 * 1024;

struct ThreadData
{
    int index = 0;

    /** Owner-thread only; never touched by report(). */
    std::vector<Frame> stack;

    /** Guards agg/timeline against a concurrent report()/reset(). */
    std::mutex mutex;
    std::map<std::string, Agg> agg;
    std::vector<Instance> timeline;
    std::uint64_t timelineDropped = 0;
};

struct Registry
{
    std::mutex mutex;
    // Deque: ThreadData holds a mutex and must never relocate; slots
    // outlive their threads so report() after join still sees them.
    std::deque<ThreadData> threads;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

ThreadData &
localData()
{
    thread_local ThreadData *td = [] {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        ThreadData &d = r.threads.emplace_back();
        d.index = static_cast<int>(r.threads.size()) - 1;
        return &d;
    }();
    return *td;
}

bool
envProfilingEnabled()
{
    const char *v = std::getenv("SMTHILL_PROFILE");
    if (!v)
        return false;
    const std::string s(v);
    return s == "1" || s == "ON" || s == "on" || s == "true" ||
           s == "TRUE";
}

Json
spanToJson(const SpanStats &s)
{
    Json j = Json::object();
    j.set("name", Json(s.name));
    j.set("count", Json(s.count));
    j.set("total_ns", Json(s.totalNs));
    j.set("self_ns", Json(s.selfNs));
    j.set("max_ns", Json(s.maxNs));
    return j;
}

bool
spanFromJson(const Json &j, SpanStats &out, std::string &error)
{
    if (!j.isObject() || !j.contains("name") || !j.contains("count") ||
        !j.contains("total_ns") || !j.contains("self_ns") ||
        !j.contains("max_ns")) {
        error = "span entry is not a {name, count, total_ns, self_ns, "
                "max_ns} object";
        return false;
    }
    out.name = j.at("name").asString();
    out.count = static_cast<std::uint64_t>(j.at("count").asInt());
    out.totalNs = static_cast<std::uint64_t>(j.at("total_ns").asInt());
    out.selfNs = static_cast<std::uint64_t>(j.at("self_ns").asInt());
    out.maxNs = static_cast<std::uint64_t>(j.at("max_ns").asInt());
    return true;
}

} // namespace

namespace detail
{

std::atomic<bool> gProfilingEnabled{envProfilingEnabled()};

void
beginSpan(const char *name)
{
    ThreadData &td = localData();
    td.stack.push_back({name, nowNs(), 0});
}

void
endSpan()
{
    ThreadData &td = localData();
    if (td.stack.empty())
        return; // reset raced a live scope; drop the orphan end
    const Frame f = td.stack.back();
    td.stack.pop_back();
    const std::uint64_t end = nowNs();
    const std::uint64_t dur = end > f.start ? end - f.start : 0;
    const std::uint64_t self = dur > f.childNs ? dur - f.childNs : 0;
    if (!td.stack.empty())
        td.stack.back().childNs += dur;

    std::lock_guard<std::mutex> lock(td.mutex);
    Agg &a = td.agg[f.name];
    ++a.count;
    a.total += dur;
    a.self += self;
    a.max = std::max(a.max, dur);
    if (td.timeline.size() < kTimelineCap)
        td.timeline.push_back({f.name, f.start, dur});
    else
        ++td.timelineDropped;
}

} // namespace detail

bool
profilingEnabled()
{
    return detail::gProfilingEnabled.load(std::memory_order_relaxed);
}

void
setProfilingEnabled(bool on)
{
    detail::gProfilingEnabled.store(on, std::memory_order_relaxed);
}

void
resetProfile()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> rlock(r.mutex);
    for (ThreadData &td : r.threads) {
        std::lock_guard<std::mutex> lock(td.mutex);
        td.agg.clear();
        td.timeline.clear();
        td.timelineDropped = 0;
    }
}

ProfileReport
profileReport()
{
    ProfileReport rep;
    std::map<std::string, Agg> merged;
    std::uint64_t busy = 0;
    std::uint64_t idle = 0;

    Registry &r = registry();
    std::lock_guard<std::mutex> rlock(r.mutex);
    for (ThreadData &td : r.threads) {
        std::lock_guard<std::mutex> lock(td.mutex);
        if (td.agg.empty())
            continue;
        ThreadSpans ts;
        ts.thread = td.index;
        for (const auto &[name, a] : td.agg) {
            ts.spans.push_back({name, a.count, a.total, a.self, a.max});
            Agg &m = merged[name];
            m.count += a.count;
            m.total += a.total;
            m.self += a.self;
            m.max = std::max(m.max, a.max);
            if (name == kWorkerBusySpan)
                busy += a.total;
            else if (name == kWorkerIdleSpan)
                idle += a.total;
        }
        rep.threads.push_back(std::move(ts));
    }
    for (const auto &[name, m] : merged)
        rep.spans.push_back({name, m.count, m.total, m.self, m.max});
    if (busy + idle > 0) {
        rep.parallelEfficiency = static_cast<double>(busy) /
                                 static_cast<double>(busy + idle);
    }
    return rep;
}

Json
profileToJson(const ProfileReport &report)
{
    Json doc = Json::object();
    doc.set("schema", Json("smthill.profile.v1"));
    doc.set("parallel_efficiency", Json(report.parallelEfficiency));
    Json spans = Json::array();
    for (const SpanStats &s : report.spans)
        spans.push(spanToJson(s));
    doc.set("spans", std::move(spans));
    Json threads = Json::array();
    for (const ThreadSpans &t : report.threads) {
        Json tj = Json::object();
        tj.set("thread", Json(t.thread));
        Json tspans = Json::array();
        for (const SpanStats &s : t.spans)
            tspans.push(spanToJson(s));
        tj.set("spans", std::move(tspans));
        threads.push(std::move(tj));
    }
    doc.set("threads", std::move(threads));
    return doc;
}

Json
profileToJson()
{
    return profileToJson(profileReport());
}

bool
profileFromJson(const Json &doc, ProfileReport &out, std::string &error)
{
    out = ProfileReport{};
    error.clear();
    if (!doc.isObject() || !doc.contains("schema") ||
        doc.at("schema").asString() != "smthill.profile.v1") {
        error = "not a smthill.profile.v1 document";
        return false;
    }
    if (!doc.contains("parallel_efficiency") || !doc.contains("spans") ||
        !doc.contains("threads") || !doc.at("spans").isArray() ||
        !doc.at("threads").isArray()) {
        error = "missing parallel_efficiency/spans/threads";
        return false;
    }
    out.parallelEfficiency = doc.at("parallel_efficiency").asDouble();
    for (const Json &sj : doc.at("spans").items()) {
        SpanStats s;
        if (!spanFromJson(sj, s, error))
            return false;
        out.spans.push_back(std::move(s));
    }
    for (const Json &tj : doc.at("threads").items()) {
        if (!tj.isObject() || !tj.contains("thread") ||
            !tj.contains("spans") || !tj.at("spans").isArray()) {
            error = "thread entry is not a {thread, spans} object";
            return false;
        }
        ThreadSpans ts;
        ts.thread = static_cast<int>(tj.at("thread").asInt());
        for (const Json &sj : tj.at("spans").items()) {
            SpanStats s;
            if (!spanFromJson(sj, s, error))
                return false;
            ts.spans.push_back(std::move(s));
        }
        out.threads.push_back(std::move(ts));
    }
    return true;
}

void
appendHostSpans(EventTrace &trace, int pid)
{
    struct Slice
    {
        int thread;
        Instance inst;
    };
    std::vector<Slice> slices;
    std::vector<int> threadIds;
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> rlock(r.mutex);
        for (ThreadData &td : r.threads) {
            std::lock_guard<std::mutex> lock(td.mutex);
            if (td.timeline.empty())
                continue;
            threadIds.push_back(td.index);
            for (const Instance &inst : td.timeline)
                slices.push_back({td.index, inst});
        }
    }
    if (slices.empty())
        return;

    std::uint64_t base = slices.front().inst.start;
    for (const Slice &s : slices)
        base = std::min(base, s.inst.start);

    trace.processName(pid, "host profiler (steady-clock ns)");
    for (int tid : threadIds)
        trace.threadName(pid, tid, "host-thread-" + std::to_string(tid));
    for (const Slice &s : slices) {
        trace.complete(s.inst.start - base,
                       static_cast<std::int64_t>(s.inst.dur), pid,
                       s.thread, "host", s.inst.name);
    }
}

} // namespace smthill::prof
