/**
 * @file
 * Named-statistic registry: counters, gauges, and distributions that
 * any subsystem can register and update cheaply on a hot path, with a
 * machine-readable JSON export.
 *
 * Design constraints, in order:
 *  - hot-path updates are a single relaxed atomic op (counters,
 *    gauges) — no locks, no lookups; callers hold a reference to the
 *    stat object obtained once at setup;
 *  - references returned by the registry are stable for the life of
 *    the registry (storage is a deque of nodes, never reallocated);
 *  - concurrent registration from pool workers is safe (mutex only on
 *    the registration path);
 *  - zero-cost when unused: nothing updates stats unless a subsystem
 *    was handed one, and reads never block writers.
 *
 * A process-wide registry (globalStats()) serves the long-lived
 * subsystems — thread pool, warm-machine/solo-IPC caches — while
 * per-run structures (EpochTracer) own their own data.
 */

#ifndef SMTHILL_COMMON_STAT_REGISTRY_HH
#define SMTHILL_COMMON_STAT_REGISTRY_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hh"

namespace smthill
{

/** Monotonic event count (cache hits, tasks executed, evictions). */
class StatCounter
{
  public:
    void add(std::uint64_t n) { val.fetch_add(n, std::memory_order_relaxed); }
    void inc() { add(1); }
    std::uint64_t value() const
    {
        return val.load(std::memory_order_relaxed);
    }
    void reset() { val.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> val{0};
};

/** Instantaneous level (queue depth, estimate state); set/add. */
class StatGauge
{
  public:
    void set(double v) { val.store(v, std::memory_order_relaxed); }
    void add(double d)
    {
        // Relaxed CAS loop: gauges are low-frequency relative to
        // counters and tolerate no lost updates.
        double cur = val.load(std::memory_order_relaxed);
        while (!val.compare_exchange_weak(cur, cur + d,
                                          std::memory_order_relaxed)) {
        }
    }
    double value() const { return val.load(std::memory_order_relaxed); }
    void reset() { val.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> val{0.0};
};

/**
 * Sample stream summarized as count/mean/min/max/stddev plus
 * deterministic quantile estimates (p50/p95). Quantiles come from a
 * bounded sample reservoir decimated by doubling the keep-stride
 * whenever it fills — no randomness, so replays and clones agree
 * exactly. Below kSampleCap samples the quantiles are exact
 * (nearest-rank); beyond that they are estimates over an evenly
 * strided subset.
 */
class StatDistribution
{
  public:
    void add(double v);

    std::uint64_t count() const;
    double mean() const;
    double min() const;
    double max() const;
    double stddev() const;

    /** Nearest-rank quantile of the retained samples; 0 when empty. */
    double quantile(double q) const;
    double p50() const { return quantile(0.5); }
    double p95() const { return quantile(0.95); }

    void reset();

    static constexpr std::size_t kSampleCap = 2048;

  private:
    mutable std::mutex mutex;
    std::uint64_t n = 0;
    double total = 0.0;
    double totalSq = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    std::vector<double> samples;       ///< strided quantile reservoir
    std::uint64_t sampleStride = 1;    ///< record every stride-th add
    std::uint64_t sinceLastSample = 0;
};

/**
 * The registry. Stats are created on first lookup and live as long as
 * the registry; a second lookup of the same name returns the same
 * object, so independent subsystems may share a stat by name.
 */
class StatRegistry
{
  public:
    StatRegistry() = default;
    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /** Find-or-create; the reference stays valid forever. */
    StatCounter &counter(const std::string &name);
    StatGauge &gauge(const std::string &name);
    StatDistribution &distribution(const std::string &name);

    /**
     * Export every stat as one JSON object keyed by name:
     * counters as integers, gauges as doubles, distributions as
     * {count, mean, min, p50, p95, max, stddev} objects.
     */
    Json toJson() const;

    /** Registered names in registration order (tests, listings). */
    std::vector<std::string> names() const;

    // --- Typed enumeration (periodic snapshots) --------------------

    /** Distribution summary row for snapshot export. */
    struct DistSummary
    {
        std::string name;
        std::uint64_t count = 0;
        double mean = 0.0;
        double min = 0.0;
        double p50 = 0.0;
        double p95 = 0.0;
        double max = 0.0;
    };

    /** (name, value) of every counter, registration order. */
    std::vector<std::pair<std::string, std::uint64_t>>
    counterValues() const;

    /** (name, value) of every gauge, registration order. */
    std::vector<std::pair<std::string, double>> gaugeValues() const;

    /** Summary of every distribution, registration order. */
    std::vector<DistSummary> distributionValues() const;

    /** Reset counters/gauges to zero and drop distribution samples. */
    void resetValues();

  private:
    enum class Kind
    {
        Counter,
        Gauge,
        Distribution
    };

    struct Node
    {
        std::string name;
        Kind kind = Kind::Counter;
        StatCounter counter;
        StatGauge gauge;
        StatDistribution dist;
    };

    Node &lookup(const std::string &name, Kind kind);

    mutable std::mutex mutex;
    std::deque<Node> nodes;               ///< stable storage
    std::map<std::string, Node *> index;
};

/** The process-wide registry (thread pool, warm caches, CLI export). */
StatRegistry &globalStats();

} // namespace smthill

#endif // SMTHILL_COMMON_STAT_REGISTRY_HH
