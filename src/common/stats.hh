/**
 * @file
 * Small statistics helpers: running means, min/max trackers, and
 * simple fixed-bucket histograms used by the analysis benches.
 */

#ifndef SMTHILL_COMMON_STATS_HH
#define SMTHILL_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace smthill
{

/**
 * Accumulates a stream of doubles and reports count / mean / min /
 * max / (population) standard deviation.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double v);

    /** Merge another accumulator's samples into this one. */
    void merge(const RunningStat &other);

    /** Discard all samples. */
    void reset();

    std::uint64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const;
    double min() const;
    double max() const;
    double stddev() const;

  private:
    std::uint64_t n = 0;
    double total = 0.0;
    double totalSq = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Histogram over [lo, hi) with a fixed number of equal-width buckets;
 * out-of-range samples clamp into the end buckets.
 */
class Histogram
{
  public:
    /**
     * @param lo lower bound of the tracked range
     * @param hi upper bound of the tracked range (must exceed lo)
     * @param buckets number of buckets (must be >= 1)
     */
    Histogram(double lo, double hi, std::size_t buckets);

    /** Add one sample. */
    void add(double v);

    std::uint64_t bucketCount(std::size_t i) const { return counts.at(i); }
    std::size_t numBuckets() const { return counts.size(); }
    std::uint64_t totalCount() const { return total; }

    /** @return midpoint value of bucket i. */
    double bucketMid(std::size_t i) const;

    /** @return the p-quantile (p in [0,1]) estimated from buckets. */
    double quantile(double p) const;

  private:
    double lo;
    double hi;
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
};

/** @return arithmetic mean of a vector (0 when empty). */
double meanOf(const std::vector<double> &v);

/** @return geometric mean of a vector of positive values (0 if empty). */
double geomeanOf(const std::vector<double> &v);

} // namespace smthill

#endif // SMTHILL_COMMON_STATS_HH
