/**
 * @file
 * Fixed-size worker thread pool for trial-level parallelism.
 *
 * The simulator's expensive fan-outs — OFF-LINE exhaustive trial
 * epochs, RAND-HILL round trials, and workload x policy bench grids —
 * are embarrassingly parallel: every task is a pure function of a
 * value-copied machine checkpoint. The pool runs such index-addressed
 * task sets across a fixed set of workers while keeping results
 * ordered by index, so callers can reduce them in exactly the order
 * the serial code would have produced.
 *
 * Determinism contract: parallelFor(n, body) invokes body(i) exactly
 * once for every i in [0, n); the caller owns per-index output slots
 * and reduces them in index order afterwards, which makes results
 * bit-identical for any job count — including jobs == 1, which runs
 * every index inline on the calling thread with no workers involved
 * (the exact legacy serial execution).
 */

#ifndef SMTHILL_COMMON_THREAD_POOL_HH
#define SMTHILL_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stat_registry.hh"

namespace smthill
{

/**
 * Fixed-size thread pool. Value semantics are deliberately absent:
 * the pool is a runtime resource, not machine state, so it is never
 * part of a checkpoint.
 */
class ThreadPool
{
  public:
    /**
     * @param jobs total concurrency including the calling thread;
     *        clamped to >= 1. jobs == 1 spawns no workers and makes
     *        every parallelFor/submit run inline on the caller.
     */
    explicit ThreadPool(int jobs);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return configured concurrency (>= 1). */
    int jobs() const { return numJobs; }

    /**
     * Run body(i) for every i in [0, n), distributing indices across
     * the workers and the calling thread; blocks until all complete.
     * If any invocation throws, the exception with the lowest index
     * is rethrown after every in-flight task has finished (so the
     * surviving exception is deterministic regardless of schedule).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * parallelFor variant that also hands body the identity of the
     * executing lane: the calling thread is worker 0, pool threads
     * are workers 1..jobs()-1. A given worker id is never active on
     * two indices at once, so per-worker scratch (e.g. a MachineArena
     * machine) needs no synchronization. Same determinism and
     * exception contract as parallelFor.
     */
    void parallelForWorker(
        std::size_t n,
        const std::function<void(std::size_t, int)> &body);

    /**
     * Run one task asynchronously; @return a future for its result.
     * With jobs == 1 the task runs inline before submit returns.
     */
    template <typename F>
    auto
    submit(F &&task) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto packaged = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(task));
        std::future<R> fut = packaged->get_future();
        enqueue([packaged] { (*packaged)(); });
        return fut;
    }

    /**
     * Concurrency to use when the caller does not specify one:
     * std::thread::hardware_concurrency, clamped to >= 1.
     */
    static int defaultJobs();

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    int numJobs;
    std::vector<std::thread> workers;

    std::mutex queueMutex;
    std::condition_variable queueCv;
    std::deque<std::function<void()>> queue;
    bool shuttingDown = false;

    // Observability (globalStats(); see stat_registry.hh): executed
    // task count, the queue depth at each enqueue/dequeue edge, and
    // parallelFor indices (batched: one add(n) per sweep, so the hot
    // index-drain loop touches no stats at all).
    StatCounter &tasksStat;
    StatGauge &queueDepthStat;
    StatCounter &forIndicesStat;
};

} // namespace smthill

#endif // SMTHILL_COMMON_THREAD_POOL_HH
