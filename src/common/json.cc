#include "common/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/log.hh"

namespace smthill
{

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

const std::vector<Json> &
Json::items() const
{
    if (kind_ != Kind::Array)
        fatal("Json: items() on a non-array value");
    return arr;
}

Json &
Json::push(Json v)
{
    if (kind_ != Kind::Array)
        fatal("Json: push() on a non-array value");
    arr.push_back(std::move(v));
    return *this;
}

const Json &
Json::at(const std::string &key) const
{
    if (kind_ != Kind::Object)
        fatal(msg("Json: at('", key, "') on a non-object value"));
    for (const auto &[k, v] : obj)
        if (k == key)
            return v;
    fatal(msg("Json: missing key '", key, "'"));
}

bool
Json::contains(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return false;
    for (const auto &[k, v] : obj)
        if (k == key)
            return true;
    return false;
}

Json &
Json::set(const std::string &key, Json v)
{
    if (kind_ != Kind::Object)
        fatal("Json: set() on a non-object value");
    for (auto &[k, existing] : obj) {
        if (k == key) {
            existing = std::move(v);
            return *this;
        }
    }
    obj.emplace_back(key, std::move(v));
    return *this;
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    if (kind_ != Kind::Object)
        fatal("Json: members() on a non-object value");
    return obj;
}

std::size_t
Json::size() const
{
    switch (kind_) {
      case Kind::Array:
        return arr.size();
      case Kind::Object:
        return obj.size();
      case Kind::String:
        return strVal.size();
      default:
        return 0;
    }
}

bool
Json::operator==(const Json &other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::Null:
        return true;
      case Kind::Bool:
        return boolVal == other.boolVal;
      case Kind::Number:
        return numVal == other.numVal;
      case Kind::String:
        return strVal == other.strVal;
      case Kind::Array:
        return arr == other.arr;
      case Kind::Object:
        return obj == other.obj;
    }
    return false;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

namespace
{

/** Shortest decimal that round-trips the double exactly. */
std::string
numberToString(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no NaN/Inf; null is the lossless-ish out
    if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
        std::fabs(v) < 1e15) {
        return std::to_string(static_cast<std::int64_t>(v));
    }
    char buf[32];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    if (ec != std::errc{})
        return "0";
    return std::string(buf, ptr);
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent > 0) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent * d), ' ');
        }
    };
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += boolVal ? "true" : "false";
        break;
      case Kind::Number:
        out += numberToString(numVal);
        break;
      case Kind::String:
        out += '"';
        out += jsonEscape(strVal);
        out += '"';
        break;
      case Kind::Array: {
        out += '[';
        bool first = true;
        for (const Json &v : arr) {
            if (!first)
                out += ',';
            first = false;
            newline(depth + 1);
            v.dumpTo(out, indent, depth + 1);
        }
        if (!arr.empty())
            newline(depth);
        out += ']';
        break;
      }
      case Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &[k, v] : obj) {
            if (!first)
                out += ',';
            first = false;
            newline(depth + 1);
            out += '"';
            out += jsonEscape(k);
            out += "\":";
            if (indent > 0)
                out += ' ';
            v.dumpTo(out, indent, depth + 1);
        }
        if (!obj.empty())
            newline(depth);
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

// --------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------

namespace
{

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &what)
    {
        error = msg("JSON parse error at offset ", pos, ": ", what);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    bool
    literal(const char *word)
    {
        std::size_t len = std::string::traits_type::length(word);
        if (text.compare(pos, len, word) != 0)
            return fail(msg("expected '", word, "'"));
        pos += len;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (text[pos] != '"')
            return fail("expected '\"'");
        ++pos;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos];
            if (c == '\\') {
                if (pos + 1 >= text.size())
                    return fail("dangling escape");
                char e = text[++pos];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                      if (pos + 4 >= text.size())
                          return fail("truncated \\u escape");
                      unsigned code = 0;
                      for (int i = 0; i < 4; ++i) {
                          char h = text[pos + 1 + i];
                          code <<= 4;
                          if (h >= '0' && h <= '9')
                              code |= static_cast<unsigned>(h - '0');
                          else if (h >= 'a' && h <= 'f')
                              code |= static_cast<unsigned>(h - 'a' + 10);
                          else if (h >= 'A' && h <= 'F')
                              code |= static_cast<unsigned>(h - 'A' + 10);
                          else
                              return fail("bad \\u escape digit");
                      }
                      pos += 4;
                      // Encode as UTF-8 (surrogates unsupported;
                      // exports only emit control-char escapes).
                      if (code < 0x80) {
                          out += static_cast<char>(code);
                      } else if (code < 0x800) {
                          out += static_cast<char>(0xC0 | (code >> 6));
                          out += static_cast<char>(0x80 | (code & 0x3F));
                      } else {
                          out += static_cast<char>(0xE0 | (code >> 12));
                          out += static_cast<char>(0x80 |
                                                   ((code >> 6) & 0x3F));
                          out += static_cast<char>(0x80 | (code & 0x3F));
                      }
                      break;
                  }
                  default:
                      return fail("unknown escape");
                }
                ++pos;
            } else {
                out += c;
                ++pos;
            }
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos; // closing quote
        return true;
    }

    bool
    parseValue(Json &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == 'n') {
            if (!literal("null"))
                return false;
            out = Json();
            return true;
        }
        if (c == 't') {
            if (!literal("true"))
                return false;
            out = Json(true);
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return false;
            out = Json(false);
            return true;
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json(std::move(s));
            return true;
        }
        if (c == '[') {
            ++pos;
            out = Json::array();
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            for (;;) {
                Json v;
                if (!parseValue(v))
                    return false;
                out.push(std::move(v));
                skipWs();
                if (pos >= text.size())
                    return fail("unterminated array");
                if (text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (text[pos] == ']') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '{') {
            ++pos;
            out = Json::object();
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (pos >= text.size() || !parseString(key))
                    return fail("expected object key");
                skipWs();
                if (pos >= text.size() || text[pos] != ':')
                    return fail("expected ':'");
                ++pos;
                Json v;
                if (!parseValue(v))
                    return false;
                out.set(key, std::move(v));
                skipWs();
                if (pos >= text.size())
                    return fail("unterminated object");
                if (text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (text[pos] == '}') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        // Number.
        {
            const char *begin = text.data() + pos;
            const char *end = text.data() + text.size();
            double v = 0.0;
            auto [ptr, ec] = std::from_chars(begin, end, v);
            if (ec != std::errc{} || ptr == begin)
                return fail("expected a value");
            pos += static_cast<std::size_t>(ptr - begin);
            out = Json(v);
            return true;
        }
    }
};

} // namespace

bool
Json::parse(const std::string &text, Json &out, std::string &error)
{
    Parser p{text, 0, {}};
    if (!p.parseValue(out)) {
        error = p.error;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        error = msg("JSON parse error: trailing data at offset ", p.pos);
        return false;
    }
    return true;
}

} // namespace smthill
