#include "common/stat_registry.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace smthill
{

void
StatDistribution::add(double v)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (n == 0) {
        lo = v;
        hi = v;
    } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    ++n;
    total += v;
    totalSq += v * v;

    // Strided reservoir for the quantile estimates: record every
    // stride-th sample; when the reservoir fills, keep every other
    // retained sample and double the stride. Fully deterministic, so
    // two identical sample streams yield identical quantiles.
    ++sinceLastSample;
    if (sinceLastSample >= sampleStride) {
        sinceLastSample = 0;
        if (samples.size() >= kSampleCap) {
            for (std::size_t i = 0; 2 * i < samples.size(); ++i)
                samples[i] = samples[2 * i];
            samples.resize((samples.size() + 1) / 2);
            sampleStride *= 2;
        }
        samples.push_back(v);
    }
}

double
StatDistribution::quantile(double q) const
{
    std::lock_guard<std::mutex> lock(mutex);
    if (samples.empty())
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    if (idx >= sorted.size())
        idx = sorted.size() - 1;
    return sorted[idx];
}

std::uint64_t
StatDistribution::count() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return n;
}

double
StatDistribution::mean() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return n == 0 ? 0.0 : total / static_cast<double>(n);
}

double
StatDistribution::min() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return n == 0 ? 0.0 : lo;
}

double
StatDistribution::max() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return n == 0 ? 0.0 : hi;
}

double
StatDistribution::stddev() const
{
    std::lock_guard<std::mutex> lock(mutex);
    if (n == 0)
        return 0.0;
    double m = total / static_cast<double>(n);
    double var = totalSq / static_cast<double>(n) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
StatDistribution::reset()
{
    std::lock_guard<std::mutex> lock(mutex);
    n = 0;
    total = 0.0;
    totalSq = 0.0;
    lo = 0.0;
    hi = 0.0;
    samples.clear();
    sampleStride = 1;
    sinceLastSample = 0;
}

StatRegistry::Node &
StatRegistry::lookup(const std::string &name, Kind kind)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = index.find(name);
    if (it != index.end()) {
        if (it->second->kind != kind)
            fatal(msg("StatRegistry: '", name,
                      "' already registered with a different kind"));
        return *it->second;
    }
    // Nodes hold atomics and a mutex (non-movable), so they are
    // constructed in place; deque storage never relocates them.
    Node &node = nodes.emplace_back();
    node.name = name;
    node.kind = kind;
    index.emplace(name, &node);
    return node;
}

StatCounter &
StatRegistry::counter(const std::string &name)
{
    return lookup(name, Kind::Counter).counter;
}

StatGauge &
StatRegistry::gauge(const std::string &name)
{
    return lookup(name, Kind::Gauge).gauge;
}

StatDistribution &
StatRegistry::distribution(const std::string &name)
{
    return lookup(name, Kind::Distribution).dist;
}

Json
StatRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex);
    Json out = Json::object();
    for (const Node &node : nodes) {
        switch (node.kind) {
          case Kind::Counter:
            out.set(node.name, Json(node.counter.value()));
            break;
          case Kind::Gauge:
            out.set(node.name, Json(node.gauge.value()));
            break;
          case Kind::Distribution: {
            Json d = Json::object();
            d.set("count", Json(node.dist.count()));
            d.set("mean", Json(node.dist.mean()));
            d.set("min", Json(node.dist.min()));
            d.set("p50", Json(node.dist.p50()));
            d.set("p95", Json(node.dist.p95()));
            d.set("max", Json(node.dist.max()));
            d.set("stddev", Json(node.dist.stddev()));
            out.set(node.name, std::move(d));
            break;
          }
        }
    }
    return out;
}

std::vector<std::pair<std::string, std::uint64_t>>
StatRegistry::counterValues() const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (const Node &node : nodes) {
        if (node.kind == Kind::Counter)
            out.emplace_back(node.name, node.counter.value());
    }
    return out;
}

std::vector<std::pair<std::string, double>>
StatRegistry::gaugeValues() const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::vector<std::pair<std::string, double>> out;
    for (const Node &node : nodes) {
        if (node.kind == Kind::Gauge)
            out.emplace_back(node.name, node.gauge.value());
    }
    return out;
}

std::vector<StatRegistry::DistSummary>
StatRegistry::distributionValues() const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::vector<DistSummary> out;
    for (const Node &node : nodes) {
        if (node.kind != Kind::Distribution)
            continue;
        DistSummary s;
        s.name = node.name;
        s.count = node.dist.count();
        s.mean = node.dist.mean();
        s.min = node.dist.min();
        s.p50 = node.dist.p50();
        s.p95 = node.dist.p95();
        s.max = node.dist.max();
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<std::string>
StatRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::vector<std::string> out;
    out.reserve(nodes.size());
    for (const Node &node : nodes)
        out.push_back(node.name);
    return out;
}

void
StatRegistry::resetValues()
{
    std::lock_guard<std::mutex> lock(mutex);
    for (Node &node : nodes) {
        node.counter.reset();
        node.gauge.reset();
        node.dist.reset();
    }
}

StatRegistry &
globalStats()
{
    static StatRegistry registry;
    return registry;
}

} // namespace smthill
