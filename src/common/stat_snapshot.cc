#include "common/stat_snapshot.hh"

#include <ostream>
#include <sstream>

namespace smthill
{

StatSnapshotter::StatSnapshotter(StatRegistry &reg) : registry(reg) {}

void
StatSnapshotter::streamTo(std::ostream *s)
{
    std::lock_guard<std::mutex> lock(mutex);
    sink = s;
    if (sink)
        *sink << headerLine() << '\n';
}

Json
StatSnapshotter::sample(std::uint64_t epoch, std::uint64_t cycle)
{
    std::lock_guard<std::mutex> lock(mutex);
    Json row = Json::object();
    row.set("seq", Json(seq++));
    row.set("epoch", Json(epoch));
    row.set("cycle", Json(cycle));

    // Counters: only the ones that moved since the previous row, as
    // deltas. A counter that shrank (resetValues between samples)
    // re-baselines at its current value.
    Json counters = Json::object();
    for (const auto &[name, value] : registry.counterValues()) {
        auto it = lastCounters.find(name);
        const std::uint64_t prev =
            it == lastCounters.end() ? 0 : it->second;
        const std::uint64_t delta = value >= prev ? value - prev : value;
        if (delta != 0)
            counters.set(name, Json(delta));
        lastCounters[name] = value;
    }
    row.set("counters", std::move(counters));

    // Gauges are levels, not rates: report current values as-is.
    Json gauges = Json::object();
    for (const auto &[name, value] : registry.gaugeValues())
        gauges.set(name, Json(value));
    row.set("gauges", std::move(gauges));

    // Distributions: cumulative summary with the quantile estimates.
    Json dists = Json::object();
    for (const StatRegistry::DistSummary &d :
         registry.distributionValues()) {
        if (d.count == 0)
            continue;
        Json dj = Json::object();
        dj.set("count", Json(d.count));
        dj.set("mean", Json(d.mean));
        dj.set("min", Json(d.min));
        dj.set("p50", Json(d.p50));
        dj.set("p95", Json(d.p95));
        dj.set("max", Json(d.max));
        dists.set(d.name, std::move(dj));
    }
    row.set("dists", std::move(dists));

    rowsStore.push_back(row);
    if (sink)
        *sink << row.dump() << '\n';
    return row;
}

std::vector<Json>
StatSnapshotter::rows() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return rowsStore;
}

std::string
StatSnapshotter::toJsonl() const
{
    return rowsToJsonl(rows());
}

std::string
StatSnapshotter::headerLine()
{
    Json header = Json::object();
    header.set("schema", Json("smthill.snapshots.v1"));
    return header.dump();
}

std::string
StatSnapshotter::rowsToJsonl(const std::vector<Json> &rows)
{
    std::ostringstream out;
    out << headerLine() << '\n';
    for (const Json &row : rows)
        out << row.dump() << '\n';
    return out.str();
}

bool
StatSnapshotter::fromJsonlText(const std::string &text,
                               std::vector<Json> &rows_out,
                               std::string &error)
{
    rows_out.clear();
    error.clear();
    std::istringstream in(text);
    std::string line;
    bool sawHeader = false;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        Json j;
        std::string parseError;
        if (!Json::parse(line, j, parseError)) {
            error = "line " + std::to_string(lineNo) + ": " + parseError;
            return false;
        }
        if (!sawHeader) {
            if (!j.isObject() || !j.contains("schema") ||
                !j.at("schema").isString() ||
                j.at("schema").asString() != "smthill.snapshots.v1") {
                error = "line 1 is not a smthill.snapshots.v1 header";
                return false;
            }
            sawHeader = true;
            continue;
        }
        if (!j.isObject() || !j.contains("seq") ||
            !j.contains("epoch") || !j.contains("cycle") ||
            !j.contains("counters") || !j.contains("gauges") ||
            !j.contains("dists")) {
            error = "line " + std::to_string(lineNo) +
                    ": row is missing "
                    "seq/epoch/cycle/counters/gauges/dists";
            return false;
        }
        rows_out.push_back(std::move(j));
    }
    if (!sawHeader) {
        error = "empty snapshot stream (no header line)";
        return false;
    }
    return true;
}

} // namespace smthill
