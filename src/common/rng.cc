#include "common/rng.hh"

#include <cmath>

namespace smthill
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t v, int k)
{
    return (v << k) | (v >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    s0 = splitmix64(x);
    s1 = splitmix64(x);
    if (s0 == 0 && s1 == 0)
        s1 = 1;
}

std::uint64_t
Rng::next()
{
    std::uint64_t a = s0;
    std::uint64_t b = s1;
    std::uint64_t result = rotl(a + b, 17) + a;
    b ^= a;
    s0 = rotl(a, 49) ^ b ^ (b << 21);
    s1 = rotl(b, 28);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    // Lemire-style rejection-free reduction is fine here; slight bias
    // is irrelevant for workload synthesis.
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(next()) * bound) >> 64);
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    if (hi <= lo)
        return lo;
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

int
Rng::nextGeometric(double p, int max_value)
{
    if (p >= 1.0 || max_value <= 1)
        return 1;
    if (p <= 0.0)
        return max_value;
    return nextGeometricLog(std::log1p(-p), max_value);
}

int
Rng::nextGeometricLog(double log1p_neg_p, int max_value)
{
    if (log1p_neg_p == 0.0 || max_value <= 1)
        return 1; // degenerate p >= 1: no draw, same as nextGeometric
    double u = nextDouble();
    // Inverse-CDF of geometric distribution on {1, 2, ...}.
    int v = 1 + static_cast<int>(std::log1p(-u) / log1p_neg_p);
    if (v < 1)
        v = 1;
    if (v > max_value)
        v = max_value;
    return v;
}

} // namespace smthill
