#include "common/thread_pool.hh"

#include <atomic>
#include <exception>
#include <limits>

#include "common/profile.hh"

namespace smthill
{

ThreadPool::ThreadPool(int jobs)
    : numJobs(jobs < 1 ? 1 : jobs),
      tasksStat(globalStats().counter("smthill.thread_pool.tasks")),
      queueDepthStat(globalStats().gauge("smthill.thread_pool.queue_depth")),
      forIndicesStat(globalStats().counter("smthill.thread_pool.for_indices"))
{
    workers.reserve(static_cast<std::size_t>(numJobs - 1));
    for (int i = 0; i < numJobs - 1; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(queueMutex);
        shuttingDown = true;
    }
    queueCv.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    if (workers.empty()) {
        tasksStat.inc();
        task();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(queueMutex);
        // Queue growth is amortized and bounded by outstanding tasks
        // (a handful per fan-out); a ring would buy nothing here.
        queue.push_back(std::move(task)); // smthill-lint: allow(hot-path-allocation)
        queueDepthStat.set(static_cast<double>(queue.size()));
    }
    queueCv.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            // Idle span: time this worker spends parked on the queue.
            // Together with the busy span below it yields a measured
            // parallel_efficiency (see prof::ProfileReport).
            SMTHILL_PROF_SCOPE(prof::kWorkerIdleSpan);
            std::unique_lock<std::mutex> lock(queueMutex);
            queueCv.wait(lock,
                         [this] { return shuttingDown || !queue.empty(); });
            if (queue.empty())
                return; // shutting down and drained
            task = std::move(queue.front());
            queue.pop_front();
            queueDepthStat.set(static_cast<double>(queue.size()));
        }
        tasksStat.inc();
        {
            SMTHILL_PROF_SCOPE(prof::kWorkerBusySpan);
            task();
        }
    }
}

namespace
{

/** Shared progress of one parallelFor call. */
struct ForState
{
    std::atomic<std::size_t> next{0};
    std::size_t n = 0;

    std::mutex doneMutex;
    std::condition_variable doneCv;
    int helpersLeft = 0;

    /** Lowest-index exception, if any task threw. */
    std::exception_ptr error;
    std::size_t errorIndex = std::numeric_limits<std::size_t>::max();

    void
    drain(const std::function<void(std::size_t)> &body)
    {
        for (std::size_t i = next.fetch_add(1); i < n;
             i = next.fetch_add(1)) {
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(doneMutex);
                if (i < errorIndex) {
                    errorIndex = i;
                    error = std::current_exception();
                }
            }
        }
    }
};

} // namespace

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    parallelForWorker(n,
                      [&body](std::size_t i, int) { body(i); });
}

void
ThreadPool::parallelForWorker(
    std::size_t n, const std::function<void(std::size_t, int)> &body)
{
    if (n == 0)
        return;
    forIndicesStat.add(n);
    if (workers.empty() || n == 1) {
        // Exact serial execution: same thread, same order, and
        // exceptions propagate directly from the throwing index.
        for (std::size_t i = 0; i < n; ++i)
            body(i, 0);
        return;
    }

    // One control block per fan-out call, not per index — the shared
    // state must outlive both the helpers and the caller's frame.
    auto state = std::make_shared<ForState>(); // smthill-lint: allow(hot-path-allocation)
    state->n = n;

    // One helper task per worker (capped by n - the caller drains
    // too); each helper pulls indices from the shared dispenser, so
    // load-imbalanced trials never idle a worker.
    std::size_t helpers = workers.size();
    if (helpers > n - 1)
        helpers = n - 1;
    state->helpersLeft = static_cast<int>(helpers);

    for (std::size_t h = 0; h < helpers; ++h) {
        // Helper h runs as worker id h + 1 (the caller is worker 0).
        const int worker = static_cast<int>(h) + 1;
        enqueue([state, &body, worker] {
            state->drain([&body, worker](std::size_t i) {
                body(i, worker);
            });
            std::lock_guard<std::mutex> lock(state->doneMutex);
            if (--state->helpersLeft == 0)
                state->doneCv.notify_all();
        });
    }

    state->drain([&body](std::size_t i) { body(i, 0); });

    // Take the exception out of the shared state before rethrowing:
    // the last reference to the exception object must be released
    // here, on the caller, not by whichever worker happens to drop
    // its ForState reference last.
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lock(state->doneMutex);
        state->doneCv.wait(lock,
                           [&] { return state->helpersLeft == 0; });
        err = std::move(state->error);
    }
    if (err)
        std::rethrow_exception(err);
}

int
ThreadPool::defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw < 1 ? 1 : static_cast<int>(hw);
}

} // namespace smthill
