#include "common/event_trace.hh"

#include <ostream>
#include <sstream>
#include <utility>

#include "common/stat_registry.hh"

namespace smthill
{

namespace
{

/** Process-wide lifetime accounting, mirrored from every trace. */
StatCounter &
recordedStat()
{
    static StatCounter &c =
        globalStats().counter("smthill.event_trace.recorded");
    return c;
}

StatCounter &
droppedStat()
{
    static StatCounter &c =
        globalStats().counter("smthill.event_trace.dropped");
    return c;
}

constexpr const char *kSchema = "smthill.events.v1";
constexpr const char *kClock = "sim-cycles";

Json
jsonlHeader()
{
    Json h = Json::object();
    h.set("schema", kSchema);
    h.set("clock", kClock);
    return h;
}

} // namespace

std::string
eventSummary(const SimEvent &event)
{
    std::ostringstream os;
    os << "ts=" << event.ts << " ph=" << event.ph << " pid=" << event.pid
       << " tid=" << event.tid << " " << event.cat << "/" << event.name;
    if (event.dur >= 0)
        os << " dur=" << event.dur;
    if (!event.args.isNull())
        os << " args=" << event.args.dump();
    return os.str();
}

EventDiff
diffEvents(const std::vector<SimEvent> &a, const std::vector<SimEvent> &b)
{
    EventDiff d;
    std::size_t common = a.size() < b.size() ? a.size() : b.size();
    for (std::size_t i = 0; i < common; ++i) {
        if (a[i] == b[i])
            continue;
        d.diverged = true;
        d.index = i;
        d.description = "event " + std::to_string(i) + " differs:\n  a: " +
                        eventSummary(a[i]) + "\n  b: " + eventSummary(b[i]);
        return d;
    }
    if (a.size() != b.size()) {
        d.diverged = true;
        d.index = common;
        const auto &longer = a.size() > b.size() ? a : b;
        d.description =
            "stream lengths differ (a=" + std::to_string(a.size()) +
            ", b=" + std::to_string(b.size()) + "); first extra in " +
            (a.size() > b.size() ? "a" : "b") + ": " +
            eventSummary(longer[common]);
    }
    return d;
}

EventTrace::EventTrace(std::size_t capacity)
    : cap(capacity > 0 ? capacity : 1)
{
}

void
EventTrace::record(SimEvent event)
{
    ++recordedCount;
    recordedStat().inc();
    if (sink)
        *sink << eventToJson(event).dump() << '\n';
    if (ring.size() < cap) {
        ring.push_back(std::move(event));
        count = ring.size();
        head = count % cap;
        return;
    }
    // Full ring: the slot at head holds the oldest event.
    ++droppedCount;
    droppedStat().inc();
    ring[head] = std::move(event);
    head = (head + 1) % cap;
}

void
EventTrace::instant(Cycle ts, int pid, int tid, std::string cat,
                    std::string name, Json args)
{
    SimEvent e;
    e.ts = ts;
    e.ph = 'i';
    e.pid = pid;
    e.tid = tid;
    e.cat = std::move(cat);
    e.name = std::move(name);
    e.args = std::move(args);
    record(std::move(e));
}

void
EventTrace::complete(Cycle ts, std::int64_t dur, int pid, int tid,
                     std::string cat, std::string name, Json args)
{
    SimEvent e;
    e.ts = ts;
    e.dur = dur >= 0 ? dur : 0;
    e.ph = 'X';
    e.pid = pid;
    e.tid = tid;
    e.cat = std::move(cat);
    e.name = std::move(name);
    e.args = std::move(args);
    record(std::move(e));
}

void
EventTrace::counter(Cycle ts, int pid, int tid, std::string name,
                    double value)
{
    SimEvent e;
    e.ts = ts;
    e.ph = 'C';
    e.pid = pid;
    e.tid = tid;
    e.cat = "counter";
    e.name = std::move(name);
    e.args = Json::object();
    e.args.set("value", value);
    record(std::move(e));
}

void
EventTrace::processName(int pid, const std::string &name)
{
    SimEvent e;
    e.ph = 'M';
    e.pid = pid;
    e.cat = "__metadata";
    e.name = "process_name";
    e.args = Json::object();
    e.args.set("name", name);
    record(std::move(e));
}

void
EventTrace::threadName(int pid, int tid, const std::string &name)
{
    SimEvent e;
    e.ph = 'M';
    e.pid = pid;
    e.tid = tid;
    e.cat = "__metadata";
    e.name = "thread_name";
    e.args = Json::object();
    e.args.set("name", name);
    record(std::move(e));
}

std::vector<SimEvent>
EventTrace::events() const
{
    std::vector<SimEvent> out;
    out.reserve(count);
    std::size_t start = count == cap ? head : 0;
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(ring[(start + i) % cap]);
    return out;
}

void
EventTrace::clear()
{
    ring.clear();
    head = 0;
    count = 0;
}

void
EventTrace::streamTo(std::ostream *s)
{
    sink = s;
    if (sink)
        *sink << jsonlHeader().dump() << '\n';
}

Json
EventTrace::eventToJson(const SimEvent &event)
{
    Json j = Json::object();
    j.set("name", event.name);
    j.set("cat", event.cat);
    j.set("ph", std::string(1, event.ph));
    j.set("ts", event.ts);
    if (event.dur >= 0)
        j.set("dur", event.dur);
    j.set("pid", event.pid);
    j.set("tid", event.tid);
    if (!event.args.isNull())
        j.set("args", event.args);
    return j;
}

bool
EventTrace::eventFromJson(const Json &j, SimEvent &out, std::string &error)
{
    if (!j.isObject()) {
        error = "event is not an object";
        return false;
    }
    for (const char *key : {"name", "cat", "ph", "ts", "pid", "tid"}) {
        if (!j.contains(key)) {
            error = std::string("event missing '") + key + "'";
            return false;
        }
    }
    const Json &ph = j.at("ph");
    if (!ph.isString() || ph.asString().size() != 1) {
        error = "event 'ph' must be a one-character string";
        return false;
    }
    out = SimEvent{};
    out.name = j.at("name").asString();
    out.cat = j.at("cat").asString();
    out.ph = ph.asString()[0];
    out.ts = static_cast<Cycle>(j.at("ts").asInt());
    out.pid = static_cast<std::int32_t>(j.at("pid").asInt());
    out.tid = static_cast<std::int32_t>(j.at("tid").asInt());
    if (j.contains("dur"))
        out.dur = j.at("dur").asInt();
    if (j.contains("args"))
        out.args = j.at("args");
    return true;
}

Json
EventTrace::toPerfettoJson() const
{
    Json other = Json::object();
    other.set("schema", kSchema);
    other.set("clock", kClock);
    other.set("dropped", droppedCount);

    Json evs = Json::array();
    std::size_t start = count == cap ? head : 0;
    for (std::size_t i = 0; i < count; ++i)
        evs.push(eventToJson(ring[(start + i) % cap]));

    Json doc = Json::object();
    doc.set("displayTimeUnit", "ns");
    doc.set("otherData", std::move(other));
    doc.set("traceEvents", std::move(evs));
    return doc;
}

std::string
EventTrace::toJsonl() const
{
    std::string out = jsonlHeader().dump() + "\n";
    std::size_t start = count == cap ? head : 0;
    for (std::size_t i = 0; i < count; ++i)
        out += eventToJson(ring[(start + i) % cap]).dump() + "\n";
    return out;
}

bool
EventTrace::fromPerfettoJson(const Json &doc, std::vector<SimEvent> &out,
                             std::string &error, TraceMeta *meta)
{
    out.clear();
    if (!doc.isObject() || !doc.contains("traceEvents")) {
        error = "not a trace document (no traceEvents)";
        return false;
    }
    TraceMeta m;
    if (doc.contains("displayTimeUnit"))
        m.displayTimeUnit = doc.at("displayTimeUnit").asString();
    if (doc.contains("otherData")) {
        const Json &other = doc.at("otherData");
        if (other.contains("schema") &&
            other.at("schema").asString() != kSchema) {
            error = "unsupported trace schema '" +
                    other.at("schema").asString() + "'";
            return false;
        }
        if (other.contains("clock")) {
            m.clock = other.at("clock").asString();
            // Timestamps are raw cycle counts; mixing clock domains
            // would mis-align every diff without any other symptom.
            if (m.clock != kClock) {
                error = "unsupported trace clock '" + m.clock + "'";
                return false;
            }
        }
        if (other.contains("dropped"))
            m.dropped = other.at("dropped").asInt();
    }
    if (meta)
        *meta = m;
    const Json &evs = doc.at("traceEvents");
    if (!evs.isArray()) {
        error = "traceEvents is not an array";
        return false;
    }
    for (const Json &j : evs.items()) {
        SimEvent e;
        if (!eventFromJson(j, e, error))
            return false;
        out.push_back(std::move(e));
    }
    return true;
}

bool
EventTrace::fromJsonlText(const std::string &text,
                          std::vector<SimEvent> &out, std::string &error)
{
    out.clear();
    std::istringstream is(text);
    std::string line;
    std::size_t lineNo = 0;
    bool sawHeader = false;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        Json j;
        if (!Json::parse(line, j, error)) {
            error = "line " + std::to_string(lineNo) + ": " + error;
            return false;
        }
        if (!sawHeader && j.isObject() && j.contains("schema")) {
            sawHeader = true;
            if (j.at("schema").asString() != kSchema) {
                error = "unsupported trace schema '" +
                        j.at("schema").asString() + "'";
                return false;
            }
            continue;
        }
        SimEvent e;
        if (!eventFromJson(j, e, error)) {
            error = "line " + std::to_string(lineNo) + ": " + error;
            return false;
        }
        out.push_back(std::move(e));
    }
    return true;
}

bool
EventTrace::loadEventTraceText(const std::string &text,
                               std::vector<SimEvent> &out,
                               std::string &error)
{
    // A Perfetto export is one JSON document; a JSONL stream is one
    // object per line. Try the document form first — a JSONL file
    // with more than one line fails whole-text parsing, so the two
    // never alias.
    Json doc;
    std::string docError;
    if (Json::parse(text, doc, docError) && doc.isObject() &&
        doc.contains("traceEvents")) {
        return fromPerfettoJson(doc, out, error);
    }
    return fromJsonlText(text, out, error);
}

} // namespace smthill
