#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace smthill
{

void
RunningStat::add(double v)
{
    if (n == 0) {
        lo = v;
        hi = v;
    } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    ++n;
    total += v;
    totalSq += v * v;
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
    n += other.n;
    total += other.total;
    totalSq += other.totalSq;
}

void
RunningStat::reset()
{
    *this = RunningStat{};
}

double
RunningStat::mean() const
{
    return n == 0 ? 0.0 : total / static_cast<double>(n);
}

double
RunningStat::min() const
{
    return n == 0 ? 0.0 : lo;
}

double
RunningStat::max() const
{
    return n == 0 ? 0.0 : hi;
}

double
RunningStat::stddev() const
{
    if (n == 0)
        return 0.0;
    double m = mean();
    double var = totalSq / static_cast<double>(n) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

Histogram::Histogram(double lo_bound, double hi_bound,
                     std::size_t buckets)
    : lo(lo_bound), hi(hi_bound), counts(buckets, 0)
{
    if (buckets < 1 || hi <= lo)
        fatal("Histogram: invalid range or bucket count");
}

void
Histogram::add(double v)
{
    double frac = (v - lo) / (hi - lo);
    auto idx = static_cast<std::int64_t>(
        frac * static_cast<double>(counts.size()));
    idx = std::clamp<std::int64_t>(
        idx, 0, static_cast<std::int64_t>(counts.size()) - 1);
    ++counts[static_cast<std::size_t>(idx)];
    ++total;
}

double
Histogram::bucketMid(std::size_t i) const
{
    double width = (hi - lo) / static_cast<double>(counts.size());
    return lo + (static_cast<double>(i) + 0.5) * width;
}

double
Histogram::quantile(double p) const
{
    if (total == 0)
        return lo;
    p = std::clamp(p, 0.0, 1.0);
    auto target = static_cast<std::uint64_t>(
        p * static_cast<double>(total));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        seen += counts[i];
        if (seen > target)
            return bucketMid(i);
    }
    return bucketMid(counts.size() - 1);
}

double
meanOf(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

double
geomeanOf(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v) {
        if (x <= 0.0)
            return 0.0;
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(v.size()));
}

} // namespace smthill
