/**
 * @file
 * Error and status reporting in the gem5 tradition: panic() for
 * simulator bugs, fatal() for user errors, warn()/inform() for
 * non-fatal status messages.
 */

#ifndef SMTHILL_COMMON_LOG_HH
#define SMTHILL_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace smthill
{

/**
 * Abort the process; call for conditions that indicate a bug in the
 * simulator itself (never the user's fault).
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Exit with an error code; call for conditions caused by invalid user
 * input or configuration.
 */
[[noreturn]] void fatal(const std::string &msg);

/** Print a warning to stderr; simulation continues. */
void warn(const std::string &msg);

/** Print an informational message to stderr; simulation continues. */
void inform(const std::string &msg);

/** Suppress warn()/inform() output (used by quiet benches/tests). */
void setQuiet(bool quiet);

namespace detail
{

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    formatInto(os, rest...);
}

} // namespace detail

/** Build a message string by streaming all arguments. */
template <typename... Args>
std::string
msg(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    return os.str();
}

} // namespace smthill

#endif // SMTHILL_COMMON_LOG_HH
