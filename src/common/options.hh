/**
 * @file
 * Key=value option handling for the CLI driver and config files.
 *
 * An OptionSet is a registry of named, typed knobs bound to caller
 * variables. Values can come from `key=value` command-line tokens or
 * from a config file (one `key = value` per line, `#` comments),
 * which is how the machine/experiment parameters are overridden
 * without recompiling.
 */

#ifndef SMTHILL_COMMON_OPTIONS_HH
#define SMTHILL_COMMON_OPTIONS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace smthill
{

/** Typed option registry with file/CLI parsing. */
class OptionSet
{
  public:
    /** Bind an integer-valued option to @p target. */
    void addInt(const std::string &name, std::int64_t *target,
                const std::string &help);

    /** Bind an unsigned 64-bit option to @p target. */
    void addUint(const std::string &name, std::uint64_t *target,
                 const std::string &help);

    /** Bind a plain int option to @p target. */
    void addInt32(const std::string &name, int *target,
                  const std::string &help);

    /** Bind a double-valued option to @p target. */
    void addDouble(const std::string &name, double *target,
                   const std::string &help);

    /** Bind a boolean option (accepts 0/1/true/false) to @p target. */
    void addBool(const std::string &name, bool *target,
                 const std::string &help);

    /** Bind a string option to @p target. */
    void addString(const std::string &name, std::string *target,
                   const std::string &help);

    /**
     * Apply `name=value`. @return false (with a message in @p error)
     * for unknown names or unparsable values.
     */
    bool set(const std::string &name, const std::string &value,
             std::string &error);

    /**
     * Parse a config file of `key = value` lines. Blank lines and
     * lines starting with '#' are ignored.
     * @return false with @p error set on the first problem
     */
    bool loadFile(const std::string &path, std::string &error);

    /**
     * Consume `key=value` tokens from a CLI argument list; tokens
     * without '=' are left for the caller in @p positional.
     * @return false with @p error set on the first problem
     */
    bool parseArgs(const std::vector<std::string> &args,
                   std::vector<std::string> &positional,
                   std::string &error);

    /** Print all registered options and their help strings. */
    void printHelp() const;

    /** @return true if an option named @p name exists. */
    bool has(const std::string &name) const;

  private:
    enum class Kind
    {
        Int64,
        Uint64,
        Int32,
        Double,
        Bool,
        String
    };

    struct Option
    {
        Kind kind;
        void *target;
        std::string help;
    };

    void add(const std::string &name, Kind kind, void *target,
             const std::string &help);

    std::map<std::string, Option> options;
};

} // namespace smthill

#endif // SMTHILL_COMMON_OPTIONS_HH
