/**
 * @file
 * Host-side hierarchical profiler (`smthill.profile.v1`): scoped
 * timers on a monotonic clock that answer "where do the real seconds
 * go" — the host-time complement of the sim-time observability stack
 * (epoch traces, `smthill.events.v1`, stat registry).
 *
 * Clock-domain contract, in order of importance:
 *  - host time NEVER flows into simulator state. No simulator
 *    component reads a span, a duration, or the clock; the profiler
 *    is write-only from the simulator's point of view, so sim outputs
 *    are bit-identical with profiling on or off, at any jobs count.
 *  - the clock itself lives only in profile.cc, behind the sanctioned
 *    `no-wall-clock` lint carve-out (the same shape as `exit` in
 *    common/log.cc). Everything in this header is clock-free.
 *  - disabled (the default) means no clock reads and no data: a scope
 *    costs one relaxed load and a predictable branch. Defining
 *    SMTHILL_PROFILER_DISABLED compiles scopes out entirely.
 *
 * Enabling: set the SMTHILL_PROFILE environment variable to ON/1
 * before launch, or call setProfilingEnabled(true) (tests, CLI).
 *
 * Collection model: each thread appends to its own span stack and
 * per-name aggregates (count/total/self/max, plus a bounded timeline
 * of completed span instances); report() merges the per-thread data.
 * Self time is total minus time spent in child spans, so a hierarchy
 * like offline.step_epoch > offline.trial_epoch > cpu.run attributes
 * every nanosecond exactly once.
 */

#ifndef SMTHILL_COMMON_PROFILE_HH
#define SMTHILL_COMMON_PROFILE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"

namespace smthill
{

class EventTrace;

namespace prof
{

/** Aggregated statistics of one span name (one thread or merged). */
struct SpanStats
{
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0; ///< wall duration summed over instances
    std::uint64_t selfNs = 0;  ///< totalNs minus time in child spans
    std::uint64_t maxNs = 0;   ///< longest single instance

    bool operator==(const SpanStats &) const = default;
};

/** Spans collected by one thread (index in first-use order). */
struct ThreadSpans
{
    int thread = 0;
    std::vector<SpanStats> spans; ///< name-sorted

    bool operator==(const ThreadSpans &) const = default;
};

/** Merged profiling report (the `smthill.profile.v1` document). */
struct ProfileReport
{
    std::vector<SpanStats> spans;     ///< merged across threads
    std::vector<ThreadSpans> threads; ///< per-thread breakdown

    /**
     * Measured pool-worker utilization: busy / (busy + idle) over the
     * kWorkerBusySpan/kWorkerIdleSpan totals of all pool workers, or
     * -1 when no pool worker recorded anything. Unlike the derived
     * `parallel_efficiency` in bench_sim_speed (real-time ratio of a
     * jobs=1 run), this is measured directly from worker timelines.
     */
    double parallelEfficiency = -1.0;

    bool operator==(const ProfileReport &) const = default;
};

/** Span names the thread pool records for every worker. */
inline constexpr const char *kWorkerBusySpan = "pool.worker.busy";
inline constexpr const char *kWorkerIdleSpan = "pool.worker.idle";

/** Perfetto process id for the injected host-clock track. */
inline constexpr int kHostProfilePid = 2000;

/** @return whether scopes currently collect (env or setter). */
bool profilingEnabled();

/** Toggle collection at runtime (tests, CLI `profile=1`). */
void setProfilingEnabled(bool on);

/** Drop all collected spans and timelines on every thread. */
void resetProfile();

/** Merge every thread's aggregates into one report. */
ProfileReport profileReport();

/** Serialize @p report as a `smthill.profile.v1` document. */
Json profileToJson(const ProfileReport &report);

/** Convenience: profileToJson(profileReport()). */
Json profileToJson();

/** @return false with @p error set unless @p doc is a valid v1 doc. */
bool profileFromJson(const Json &doc, ProfileReport &out,
                     std::string &error);

/**
 * Inject the collected span timeline into @p trace as complete
 * events under process @p pid: a second, host-nanosecond clock track
 * rendered alongside the sim-cycle tracks. Timestamps are rebased so
 * the earliest span starts at 0; the two clock domains share a
 * viewer, not a clock.
 */
void appendHostSpans(EventTrace &trace, int pid = kHostProfilePid);

namespace detail
{

extern std::atomic<bool> gProfilingEnabled;

/** Push a frame for @p name on the calling thread (reads the clock). */
void beginSpan(const char *name);

/** Pop the top frame and fold it into the thread's aggregates. */
void endSpan();

} // namespace detail

/**
 * RAII span. Construct via SMTHILL_PROF_SCOPE: the enabled check is
 * latched at entry, so a scope that began collecting always completes
 * even if profiling is toggled off mid-span.
 */
class Scope
{
  public:
    explicit Scope(const char *name)
    {
        if (detail::gProfilingEnabled.load(std::memory_order_relaxed)) {
            active = true;
            detail::beginSpan(name);
        }
    }
    ~Scope()
    {
        if (active)
            detail::endSpan();
    }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    bool active = false;
};

} // namespace prof
} // namespace smthill

#define SMTHILL_PROF_CONCAT2(a, b) a##b
#define SMTHILL_PROF_CONCAT(a, b) SMTHILL_PROF_CONCAT2(a, b)

#ifdef SMTHILL_PROFILER_DISABLED
#define SMTHILL_PROF_SCOPE(name) static_cast<void>(0)
#else
/** Time the enclosing block as one instance of span @p name. */
#define SMTHILL_PROF_SCOPE(name)                                     \
    ::smthill::prof::Scope SMTHILL_PROF_CONCAT(smthill_prof_scope_,  \
                                               __LINE__)(name)
#endif

#endif // SMTHILL_COMMON_PROFILE_HH
