/**
 * @file
 * Cycle-level event tracing (`smthill.events.v1`): a bounded
 * ring-buffer recorder for simulator events — epochs, rounds, trial
 * samples, anchor moves, flushes, stalls, phase transitions, and
 * per-thread resource-share counter tracks — timestamped in simulated
 * cycles (never wall clock, so traces are deterministic and the
 * no-wall-clock lint rule holds by construction).
 *
 * Two sinks:
 *  - Chrome trace-event / Perfetto JSON (toPerfettoJson): events carry
 *    `ph`/`ts`/`dur`/`pid`/`tid` in the trace-event dialect, so a
 *    trace loads directly into ui.perfetto.dev with one process per
 *    workload/technique and one track per hardware thread;
 *  - streaming JSONL (streamTo): one header line then one event
 *    object per line, written as events are recorded, for unbounded
 *    runs that would overflow any ring.
 *
 * The ring keeps the newest `capacity` events; overwritten events are
 * counted (dropped()) and mirrored into globalStats() as
 * `smthill.event_trace.dropped`. Cost when no tracer is attached is
 * zero: every instrumentation site checks its EventTrace pointer
 * before building an event.
 */

#ifndef SMTHILL_COMMON_EVENT_TRACE_HH
#define SMTHILL_COMMON_EVENT_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"

namespace smthill
{

/**
 * Track id used for machine/policy control-plane events that belong
 * to no hardware thread (epoch slices, stalls, anchor moves). Kept
 * clear of any plausible hardware-thread index so Perfetto renders a
 * separate "control" track.
 */
inline constexpr int kControlTid = 1000;

/** One trace event in the Chrome trace-event dialect. */
struct SimEvent
{
    Cycle ts = 0;            ///< simulated cycle of the event (start)
    std::int64_t dur = -1;   ///< cycles covered; >= 0 only for 'X'
    char ph = 'i';           ///< B/E/X/i/C/M (trace-event phase)
    std::int32_t pid = 0;    ///< workload / technique id
    std::int32_t tid = 0;    ///< hardware thread, or kControlTid
    std::string cat;         ///< taxonomy: epoch/hill/phase/machine/...
    std::string name;
    Json args;               ///< decision-audit payload (object) or null

    bool operator==(const SimEvent &) const = default;
};

/** One-line human-readable rendering (diff reports, logs). */
std::string eventSummary(const SimEvent &event);

/** First-divergence result of comparing two event streams. */
struct EventDiff
{
    bool diverged = false;
    std::size_t index = 0;    ///< first differing position
    std::string description;  ///< what differs (empty when equal)
};

/**
 * Compare two event streams and report the first divergent event
 * (field-wise), or a length mismatch past the common prefix.
 */
EventDiff diffEvents(const std::vector<SimEvent> &a,
                     const std::vector<SimEvent> &b);

/** Bounded ring-buffer event recorder with Perfetto/JSONL export. */
class EventTrace
{
  public:
    static constexpr std::size_t kDefaultCapacity = 64 * 1024;

    explicit EventTrace(std::size_t capacity = kDefaultCapacity);

    /** Record one event (ring append; oldest dropped when full). */
    void record(SimEvent event);

    // --- Emission helpers (thin sugar over record()) ---------------

    /** Point event ('i'). */
    void instant(Cycle ts, int pid, int tid, std::string cat,
                 std::string name, Json args = Json());

    /** Complete slice ('X') covering [ts, ts + dur). */
    void complete(Cycle ts, std::int64_t dur, int pid, int tid,
                  std::string cat, std::string name, Json args = Json());

    /** Counter sample ('C'): one point on the (pid, name) track. */
    void counter(Cycle ts, int pid, int tid, std::string name,
                 double value);

    /** Metadata ('M'): label process @p pid in trace viewers. */
    void processName(int pid, const std::string &name);

    /** Metadata ('M'): label thread (@p pid, @p tid). */
    void threadName(int pid, int tid, const std::string &name);

    // --- Inspection ------------------------------------------------

    /** Retained events, oldest first. */
    std::vector<SimEvent> events() const;

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }
    std::size_t capacity() const { return cap; }

    /** Total events offered over the trace's lifetime. */
    std::uint64_t recorded() const { return recordedCount; }

    /** Events overwritten by ring wrap-around. */
    std::uint64_t dropped() const { return droppedCount; }

    /** Drop retained events (lifetime counters keep accumulating). */
    void clear();

    // --- Sinks -----------------------------------------------------

    /**
     * Attach a streaming JSONL sink (nullptr detaches): a
     * `smthill.events.v1` header line immediately, then one event
     * object per line as each record() lands — events survive even
     * after the ring overwrites them. The stream is owned by the
     * caller and must outlive the attachment.
     */
    void streamTo(std::ostream *sink);

    /**
     * Export the retained events as a Chrome trace-event / Perfetto
     * JSON document: {"displayTimeUnit", "otherData": {"schema":
     * "smthill.events.v1", "clock": "sim-cycles", "dropped"},
     * "traceEvents": [...]}.
     */
    Json toPerfettoJson() const;

    /** Retained events as JSONL text (header line + one per line). */
    std::string toJsonl() const;

    // --- Import (round-trip tests, trace_report) -------------------

    /** One event as a trace-event JSON object. */
    static Json eventToJson(const SimEvent &event);

    /** @return false with @p error set if @p j is not an event. */
    static bool eventFromJson(const Json &j, SimEvent &out,
                              std::string &error);

    /** Document-level metadata recovered alongside the events. */
    struct TraceMeta
    {
        std::string clock;           ///< otherData.clock
        std::string displayTimeUnit; ///< viewer hint ("ns")
        std::int64_t dropped = 0;    ///< events lost to ring overwrite
    };

    /**
     * Rebuild events from a toPerfettoJson() document. Rejects a
     * mismatched schema or clock domain (cycle timestamps from a
     * foreign clock would silently mis-align in diffs). @p meta, when
     * non-null, receives the document metadata.
     */
    static bool fromPerfettoJson(const Json &doc,
                                 std::vector<SimEvent> &out,
                                 std::string &error,
                                 TraceMeta *meta = nullptr);

    /** Rebuild events from JSONL text (as written by the sink). */
    static bool fromJsonlText(const std::string &text,
                              std::vector<SimEvent> &out,
                              std::string &error);

    /**
     * Load a trace from file content, auto-detecting the format:
     * a Perfetto JSON document or a JSONL stream.
     */
    static bool loadEventTraceText(const std::string &text,
                                   std::vector<SimEvent> &out,
                                   std::string &error);

  private:
    std::vector<SimEvent> ring;
    std::size_t cap;
    std::size_t head = 0;   ///< next write position
    std::size_t count = 0;  ///< retained events
    std::uint64_t recordedCount = 0;
    std::uint64_t droppedCount = 0;
    std::ostream *sink = nullptr;
};

/**
 * Attachment handle for machines: deliberately NOT checkpointed.
 * Copying (or copy-assigning) the owner drops the link, so machine
 * checkpoints — offline trial sweeps, synchronized-comparison clones,
 * fuzz copies — never interleave events into the committing run's
 * stream, and event streams stay bit-identical at any `jobs` count.
 */
struct EventTraceRef
{
    EventTrace *trace = nullptr;
    int pid = 0;

    EventTraceRef() = default;
    EventTraceRef(const EventTraceRef &) {}
    EventTraceRef &
    operator=(const EventTraceRef &other)
    {
        if (this != &other) {
            trace = nullptr;
            pid = 0;
        }
        return *this;
    }
};

} // namespace smthill

#endif // SMTHILL_COMMON_EVENT_TRACE_HH
