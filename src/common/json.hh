/**
 * @file
 * Minimal JSON value type with a writer and a parser.
 *
 * The observability layer exports machine-readable artifacts — stat
 * registry dumps, derived reports, per-epoch hill-climbing traces —
 * and the test suite round-trips them (export -> parse -> compare),
 * so both directions live here. The dialect is strict JSON except
 * that the writer emits non-finite doubles as null (JSON has no
 * representation for them) and the parser accepts no extensions.
 */

#ifndef SMTHILL_COMMON_JSON_HH
#define SMTHILL_COMMON_JSON_HH

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace smthill
{

/** One JSON value: null, bool, number, string, array, or object. */
class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool v) : kind_(Kind::Bool), boolVal(v) {}
    Json(double v) : kind_(Kind::Number), numVal(v) {}
    Json(int v) : kind_(Kind::Number), numVal(v) {}
    Json(std::int64_t v)
        : kind_(Kind::Number), numVal(static_cast<double>(v))
    {
    }
    Json(std::uint64_t v)
        : kind_(Kind::Number), numVal(static_cast<double>(v))
    {
    }
    Json(const char *v) : kind_(Kind::String), strVal(v) {}
    Json(std::string v) : kind_(Kind::String), strVal(std::move(v)) {}

    /** @return an empty array value. */
    static Json array();

    /** @return an empty object value. */
    static Json object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return boolVal; }
    double asDouble() const { return numVal; }
    std::int64_t asInt() const { return static_cast<std::int64_t>(numVal); }
    const std::string &asString() const { return strVal; }

    /** Array access; fatal if not an array. */
    const std::vector<Json> &items() const;

    /** Append to an array value (fatal if not an array). */
    Json &push(Json v);

    /** Object member access; fatal if absent or not an object. */
    const Json &at(const std::string &key) const;

    /** @return true if this is an object containing @p key. */
    bool contains(const std::string &key) const;

    /** Set an object member (fatal if not an object). */
    Json &set(const std::string &key, Json v);

    /** Object members in insertion order. */
    const std::vector<std::pair<std::string, Json>> &members() const;

    std::size_t size() const;

    /** Serialize; @p indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    /**
     * Parse strict JSON from @p text.
     * @param error receives a message with offset on failure
     * @return the parsed value, or nullopt-like Null with error set
     */
    static bool parse(const std::string &text, Json &out,
                      std::string &error);

    bool operator==(const Json &other) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool boolVal = false;
    double numVal = 0.0;
    std::string strVal;
    std::vector<Json> arr;
    /** Insertion-ordered object members (stable export layout). */
    std::vector<std::pair<std::string, Json>> obj;
};

/** Escape @p s for embedding in a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

} // namespace smthill

#endif // SMTHILL_COMMON_JSON_HH
