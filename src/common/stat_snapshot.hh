/**
 * @file
 * Periodic StatRegistry sampler (`smthill.snapshots.v1`): turns the
 * registry's end-of-run blob into a time series. Each sample() emits
 * one delta row — counters as increments since the previous row (only
 * the ones that moved), gauges as current levels, distributions as
 * cumulative {count, mean, min, p50, p95, max} summaries — through a
 * streaming JSONL sink, the same idiom as EventTrace::streamTo: one
 * header line on attach, then one row object per line as samples
 * land, so even a killed run leaves a usable series behind.
 *
 * Cadence is the caller's: the CLI and runPolicyOn sample per policy
 * epoch; the grid benches sample per completed cell. sample() is
 * thread-safe (grid cells finish on pool workers), but row order then
 * follows host scheduling — snapshots are host-side telemetry, never
 * simulator state, so the determinism contract is untouched.
 */

#ifndef SMTHILL_COMMON_STAT_SNAPSHOT_HH
#define SMTHILL_COMMON_STAT_SNAPSHOT_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/stat_registry.hh"

namespace smthill
{

/** Delta-row sampler over one registry (usually globalStats()). */
class StatSnapshotter
{
  public:
    explicit StatSnapshotter(StatRegistry &registry);

    /**
     * Attach a streaming JSONL sink (nullptr detaches): the
     * `smthill.snapshots.v1` header line immediately, then one row
     * per sample(). The stream is owned by the caller and must
     * outlive the attachment.
     */
    void streamTo(std::ostream *sink);

    /**
     * Record one delta row stamped with the caller's progress marks
     * (@p epoch: policy epoch or grid cell; @p cycle: simulated cycle
     * at the sample, 0 when the cadence has no single machine).
     * @return the row that was appended/streamed.
     */
    Json sample(std::uint64_t epoch, std::uint64_t cycle);

    /** Rows recorded so far, oldest first. */
    std::vector<Json> rows() const;

    /** Full series as JSONL text (header line + one row per line). */
    std::string toJsonl() const;

    /** The `smthill.snapshots.v1` header line (no newline). */
    static std::string headerLine();

    /** Re-serialize parsed rows into the exact toJsonl() text. */
    static std::string rowsToJsonl(const std::vector<Json> &rows);

    /** @return false with @p error set unless @p text is a series. */
    static bool fromJsonlText(const std::string &text,
                              std::vector<Json> &rows_out,
                              std::string &error);

  private:
    StatRegistry &registry;
    mutable std::mutex mutex;
    std::map<std::string, std::uint64_t> lastCounters;
    std::vector<Json> rowsStore;
    std::ostream *sink = nullptr;
    std::uint64_t seq = 0;
};

} // namespace smthill

#endif // SMTHILL_COMMON_STAT_SNAPSHOT_HH
