/**
 * @file
 * The synthetic dynamic instruction record produced by the workload
 * generators and consumed by the SMT pipeline.
 */

#ifndef SMTHILL_TRACE_INSTRUCTION_HH
#define SMTHILL_TRACE_INSTRUCTION_HH

#include <cstdint>

#include "common/types.hh"

namespace smthill
{

/**
 * One dynamic instruction. Register dependences are expressed as
 * distances back in the same thread's dynamic instruction stream
 * (srcDist[i] == d means "source i is produced by the instruction d
 * positions earlier"); a distance of 0 means the operand is ready.
 * This representation is what trace-driven simulators derive from
 * real register traces, and it is sufficient to model ILP, dependence
 * chains, and memory-level parallelism.
 */
struct SynthInst
{
    Addr pc = 0;              ///< instruction address
    Addr effAddr = 0;         ///< effective address (Load/Store only)
    Addr target = 0;          ///< branch target (Branch only)
    std::uint32_t blockId = 0; ///< static basic-block id (for BBVs)
    std::int32_t srcDist[2] = {0, 0}; ///< producer distances (0 = none)
    OpClass op = OpClass::IntAlu;
    bool taken = false;       ///< actual branch outcome (Branch only)

    bool isLoad() const { return op == OpClass::Load; }
    bool isStore() const { return op == OpClass::Store; }
    bool isBranch() const { return op == OpClass::Branch; }
};

} // namespace smthill

#endif // SMTHILL_TRACE_INSTRUCTION_HH
