#include "trace/program_profile.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "common/rng.hh"

namespace smthill
{

Addr
ProgramProfile::blockPc(std::uint32_t block_id) const
{
    // Lay blocks out contiguously, 4 bytes per instruction, one
    // branch slot at the end of each block.
    Addr pc = codeBase;
    for (std::uint32_t i = 0; i < block_id; ++i)
        pc += (blocks[i].length + 1) * 4;
    return pc;
}

std::uint64_t
ProgramProfile::codeBytes() const
{
    std::uint64_t bytes = 0;
    for (const auto &b : blocks)
        bytes += (b.length + 1) * 4;
    return bytes;
}

void
ProgramProfile::validate() const
{
    if (blocks.empty())
        fatal(msg("profile ", name, ": no basic blocks"));
    if (phases.empty())
        fatal(msg("profile ", name, ": no phases"));
    for (const auto &b : blocks) {
        if (b.takenTarget >= blocks.size() || b.fallTarget >= blocks.size())
            fatal(msg("profile ", name, ": block successor out of range"));
        if (b.length == 0)
            fatal(msg("profile ", name, ": zero-length block"));
        double mix_sum = b.mix.intAlu + b.mix.intMul + b.mix.fpAlu +
                         b.mix.fpMul + b.mix.load + b.mix.store;
        if (mix_sum <= 0.0)
            fatal(msg("profile ", name, ": empty op mix"));
    }
    for (const auto &p : phases) {
        if (p.lengthInsts == 0)
            fatal(msg("profile ", name, ": zero-length phase"));
        if (p.pLoadWarm + p.pLoadCold > 1.0 + 1e-9)
            fatal(msg("profile ", name, ": load region probs exceed 1"));
    }
}

namespace
{

/** Build the op mix for a block from the profile-level fractions. */
OpMix
makeMix(const ProfileParams &pp, Rng &rng)
{
    OpMix mix;
    // Perturb per-block so blocks are not identical.
    auto jitter = [&rng](double v, double amt) {
        double f = 1.0 + amt * (rng.nextDouble() - 0.5);
        return std::max(0.0, v * f);
    };
    double load = jitter(pp.loadFrac, 0.5);
    double store = jitter(pp.storeFrac, 0.5);
    double alu = std::max(0.05, 1.0 - load - store);
    double fp = alu * pp.fpFrac;
    double intw = alu - fp;
    mix.load = load;
    mix.store = store;
    mix.fpMul = fp * pp.mulFrac * 4.0;
    mix.fpAlu = std::max(0.0, fp - mix.fpMul);
    mix.intMul = intw * pp.mulFrac;
    mix.intAlu = std::max(0.0, intw - mix.intMul);
    return mix;
}

} // namespace

ProgramProfile
buildProfile(const ProfileParams &pp)
{
    ProgramProfile prof;
    prof.name = pp.name;
    prof.isFp = pp.isFp;
    prof.isMem = pp.isMem;
    prof.seed = pp.seed;
    prof.hotBytes = pp.hotBytes;
    prof.warmBytes = pp.warmBytes;
    prof.branchDependsOnLoad = pp.branchDependsOnLoad;

    // Deterministic construction RNG, independent of the runtime
    // stream RNG, so profile structure never changes across runs.
    Rng rng(pp.seed * 0x517c'c1b7'2722'0a95ULL + 17);

    const int nblocks = std::max(2, pp.numBlocks);
    prof.blocks.reserve(nblocks);
    for (int i = 0; i < nblocks; ++i) {
        BlockSpec b;
        int len = static_cast<int>(rng.nextRange(
            std::max(2, pp.avgBlockLen / 2), pp.avgBlockLen * 3 / 2 + 1));
        b.length = static_cast<std::uint32_t>(len);
        b.mix = makeMix(pp, rng);

        // Concentrate memory behavior in a minority of "miss-heavy"
        // blocks (mean bias ~1 across blocks) so misses arrive with
        // loop structure rather than as white noise.
        b.memBias = rng.chance(0.30) ? 2.6 : 0.31;

        // Branch site behavior: most blocks are loops or biased
        // branches (predictable); a configurable fraction is random.
        double r = rng.nextDouble();
        if (r < pp.randomBranchFrac) {
            b.branch = BranchKind::Random;
            b.takenProb = 0.35 + 0.3 * rng.nextDouble();
        } else if (r < pp.randomBranchFrac + 0.45) {
            b.branch = BranchKind::Loop;
            b.tripCount = static_cast<std::uint32_t>(
                rng.nextRange(4, 64));
        } else {
            b.branch = BranchKind::Biased;
            b.takenProb = rng.chance(0.5) ? 0.92 + 0.07 * rng.nextDouble()
                                          : 0.08 * rng.nextDouble();
        }

        // CFG shape: loops jump back to themselves; other branches
        // send control a short hop forward (wrapping), giving a mix
        // of nested-loop-like and straight-line traversal.
        auto wrap = [nblocks](int v) {
            return static_cast<std::uint32_t>(((v % nblocks) + nblocks) %
                                              nblocks);
        };
        if (b.branch == BranchKind::Loop) {
            b.takenTarget = wrap(i);         // loop back to own head
            b.fallTarget = wrap(i + 1);
        } else {
            b.takenTarget = wrap(i + static_cast<int>(rng.nextRange(2, 6)));
            b.fallTarget = wrap(i + 1);
        }
        prof.blocks.push_back(b);
    }

    // Phase schedule. Phase lengths are in dynamic instructions; the
    // paper's epoch is 64K cycles, and our cores commit ~0.5-2 IPC per
    // thread, so ~64K-128K instructions correspond to one or two
    // epochs.
    PhaseSpec base;
    base.pLoadWarm = pp.pLoadWarm;
    base.pLoadCold = pp.pLoadCold;
    base.serialFrac = pp.serialFrac;
    base.meanDepDist = pp.meanDepDist;
    base.burstProb = pp.burstProb;
    base.burstMax = pp.burstMax;

    if (pp.freqClass == 0) {
        base.lengthInsts = 1ULL << 62;
        prof.phases.push_back(base);
    } else {
        // Alternate between the base behavior and a perturbed phase:
        // the perturbed phase shifts the memory intensity and the
        // dependence structure, changing the thread's resource needs.
        PhaseSpec alt = base;
        double s = std::clamp(pp.phaseSwing, 0.0, 1.0);
        alt.pLoadCold = std::clamp(
            base.pLoadCold * (1.0 - 0.8 * s) + 0.04 * s, 0.0, 0.9);
        alt.pLoadWarm = std::clamp(
            base.pLoadWarm + 0.10 * s, 0.0, 0.9 - alt.pLoadCold);
        alt.serialFrac = std::clamp(base.serialFrac + 0.35 * s, 0.0, 0.95);
        alt.meanDepDist = std::max(
            2, static_cast<int>(base.meanDepDist * (1.0 - 0.6 * s)));
        alt.burstProb = base.burstProb * (1.0 - s);

        // Convert epoch counts to instructions via the benchmark's
        // rough solo IPC: "High" variation changes phase every epoch
        // or two, "Low" after several epochs (Table 2 "Freq").
        double epoch_insts = 65536.0 * std::max(0.02, pp.ipcEstimate);
        double epochs_per_phase = pp.freqClass == 2 ? 1.4 : 6.0;
        auto period = static_cast<std::uint64_t>(
            std::max(1000.0, epoch_insts * epochs_per_phase));
        base.lengthInsts = period;
        alt.lengthInsts = period * 2 / 3;
        prof.phases.push_back(base);
        prof.phases.push_back(alt);
    }

    prof.validate();
    return prof;
}

} // namespace smthill
