/**
 * @file
 * Registry of the 22 SPEC CPU2000-like synthetic benchmark models
 * used to build the paper's multiprogrammed workloads (Table 2).
 *
 * Each model is a ProfileParams record calibrated so the benchmark's
 * type (Int/FP), category (ILP/MEM), relative resource requirement
 * ("Rsc": integer rename registers needed for 95% of solo IPC), and
 * time-variation class ("Freq") match Table 2 qualitatively. The
 * actual Rsc values this repo measures are reported by
 * bench_tab02_appchar and recorded in EXPERIMENTS.md.
 */

#ifndef SMTHILL_TRACE_SPEC_PROFILES_HH
#define SMTHILL_TRACE_SPEC_PROFILES_HH

#include <string>
#include <vector>

#include "trace/program_profile.hh"

namespace smthill
{

/** Table 2 metadata published in the paper, kept for comparisons. */
struct SpecInfo
{
    std::string name;
    int paperRsc;    ///< Table 2 "Rsc" column
    int freqClass;   ///< 0 = No, 1 = Low, 2 = High ("Freq" column)
    bool isFp;       ///< Table 2 "Type": FP vs Int
    bool isMem;      ///< Table 2 category: MEM vs ILP
};

/** @return names of all 22 modeled benchmarks, in Table 2 order. */
const std::vector<std::string> &specBenchmarkNames();

/** @return published Table 2 metadata for a benchmark. */
const SpecInfo &specInfo(const std::string &name);

/** @return the generator parameters modeling a benchmark. */
const ProfileParams &specParams(const std::string &name);

/** @return a fully built profile for a benchmark. */
ProgramProfile specProfile(const std::string &name);

/** @return true if @p name is a modeled benchmark. */
bool isSpecBenchmark(const std::string &name);

} // namespace smthill

#endif // SMTHILL_TRACE_SPEC_PROFILES_HH
