/**
 * @file
 * Parameterized description of a synthetic benchmark program.
 *
 * A ProgramProfile stands in for a SPEC CPU2000 binary (which is not
 * available in this environment): it describes a synthetic control
 * flow graph of basic blocks, an instruction mix, a register
 * dependence model, a three-region memory behavior (hot/warm/cold,
 * sized against the DL1 and UL2 capacities), memory-level-parallelism
 * bursts, and a phase schedule that modulates the memory and
 * dependence behavior over time. See DESIGN.md section 2 for why this
 * substitution preserves the phenomena the paper studies.
 */

#ifndef SMTHILL_TRACE_PROGRAM_PROFILE_HH
#define SMTHILL_TRACE_PROGRAM_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace smthill
{

/** How a static branch site behaves dynamically. */
enum class BranchKind : std::uint8_t
{
    Loop,    ///< taken (tripCount-1) times, then falls through
    Biased,  ///< taken with a fixed, high or low, probability
    Random   ///< taken with probability near 0.5 (hard to predict)
};

/** Fractions of non-branch op classes within a basic block. */
struct OpMix
{
    double intAlu = 0.55;
    double intMul = 0.03;
    double fpAlu = 0.0;
    double fpMul = 0.0;
    double load = 0.30;
    double store = 0.12;
};

/** One static basic block of the synthetic CFG. */
struct BlockSpec
{
    std::uint32_t length = 8;      ///< non-branch instructions
    OpMix mix;                     ///< op-class mix inside the block
    BranchKind branch = BranchKind::Loop;
    double takenProb = 0.9;        ///< Biased/Random: P(taken)
    std::uint32_t tripCount = 16;  ///< Loop: iterations per entry
    std::uint32_t takenTarget = 0; ///< successor block when taken
    std::uint32_t fallTarget = 0;  ///< successor block when not taken

    /**
     * Multiplier on the phase's cold/warm load probabilities for
     * loads in this block. Real programs miss in specific loops, not
     * uniformly: a minority of blocks carry most of the misses
     * (bias > 1), the rest are nearly clean (bias < 1). The profile
     * builder keeps the mean bias at ~1 so phase-level miss rates
     * are preserved.
     */
    double memBias = 1.0;
};

/**
 * Time-varying behavior: the generator cycles through phases, each
 * lasting lengthInsts dynamic instructions and overriding the memory
 * and dependence parameters.
 */
struct PhaseSpec
{
    std::uint64_t lengthInsts = 1'000'000'000;
    double pLoadWarm = 0.0;   ///< P(load hits only in UL2)
    double pLoadCold = 0.0;   ///< P(load misses to memory)
    double serialFrac = 0.3;  ///< P(dep on the immediately prior inst)
    int meanDepDist = 12;     ///< mean producer distance otherwise
    double burstProb = 0.0;   ///< P(cold miss opens an MLP burst)
    int burstMax = 1;         ///< max independent misses per burst
};

/** Full description of one synthetic benchmark. */
struct ProgramProfile
{
    std::string name;
    bool isFp = false;           ///< Table 2 "Type" column (Int/FP)
    bool isMem = false;          ///< Table 2 ILP vs MEM category
    std::uint64_t seed = 1;      ///< base RNG seed

    std::vector<BlockSpec> blocks;
    std::vector<PhaseSpec> phases;

    std::uint64_t hotBytes = 16 * 1024;    ///< DL1-resident region
    std::uint64_t warmBytes = 384 * 1024;  ///< UL2-resident region
    double branchDependsOnLoad = 0.1; ///< P(branch source is a load)

    Addr codeBase = 0x0040'0000;  ///< first block's address
    Addr dataBase = 0x1000'0000;  ///< hot region base address

    /** @return address of the first instruction of a block. */
    Addr blockPc(std::uint32_t block_id) const;

    /** @return total static code footprint in bytes. */
    std::uint64_t codeBytes() const;

    /** Abort if the profile is structurally inconsistent. */
    void validate() const;
};

/**
 * High-level knobs from which buildProfile() procedurally constructs
 * a full ProgramProfile (blocks and phase schedule). Keeping the
 * description at this level makes the 22 benchmark models short,
 * auditable, and easy to calibrate.
 */
struct ProfileParams
{
    std::string name;
    std::uint64_t seed = 1;
    bool isFp = false;
    bool isMem = false;

    int numBlocks = 48;         ///< static CFG size (I-footprint)
    int avgBlockLen = 10;       ///< mean instructions per block
    double fpFrac = 0.0;        ///< fraction of ALU work that is FP
    double loadFrac = 0.28;     ///< fraction of instructions = loads
    double storeFrac = 0.10;    ///< fraction of instructions = stores
    double mulFrac = 0.04;      ///< fraction of ALU work on mul/div

    double randomBranchFrac = 0.08; ///< hard-to-predict branch sites
    double branchDependsOnLoad = 0.1;

    double serialFrac = 0.30;   ///< dependence-chain density
    int meanDepDist = 12;       ///< average ILP distance

    double pLoadWarm = 0.02;    ///< baseline L2-region load fraction
    double pLoadCold = 0.0;     ///< baseline memory-miss fraction
    double burstProb = 0.0;     ///< MLP burstiness
    int burstMax = 1;

    std::uint64_t hotBytes = 16 * 1024;
    std::uint64_t warmBytes = 384 * 1024;

    /**
     * Phase schedule class, matching Table 2's "Freq" column:
     * 0 = no appreciable variation, 1 = low-frequency variation
     * (a change after several 64K-cycle epochs), 2 = high-frequency
     * variation (a change every epoch or two).
     */
    int freqClass = 0;

    /**
     * Strength of phase modulation: how strongly the alternate phase
     * perturbs memory/dependence behavior (0 = none, 1 = strong).
     */
    double phaseSwing = 0.5;

    /**
     * Rough stand-alone IPC of the benchmark; used only to convert
     * phase durations from epochs (cycles) into instruction counts,
     * so low-IPC programs still change phase every few epochs.
     */
    double ipcEstimate = 1.0;
};

/** Construct a complete ProgramProfile from high-level parameters. */
ProgramProfile buildProfile(const ProfileParams &params);

} // namespace smthill

#endif // SMTHILL_TRACE_PROGRAM_PROFILE_HH
