#include "trace/spec_profiles.hh"

#include <map>

#include "common/log.hh"

namespace smthill
{

namespace
{

/**
 * One row of the model table. The calibration levers are:
 *  - serialFrac / meanDepDist: dependence structure, i.e., how much
 *    window (rename registers / ROB) the thread can convert into ILP.
 *    Long distances + low serial fraction -> high Rsc.
 *  - pLoadCold / burstProb / burstMax: memory intensity and
 *    memory-level parallelism. High burst MLP -> high Rsc (window
 *    holds many overlapped misses), serial cold misses -> low IPC
 *    with modest Rsc (mcf-style pointer chasing).
 *  - randomBranchFrac / branchDependsOnLoad: branch predictability;
 *    poorly predicted branches cap usable window (compute-intensive
 *    low-ILP threads, Section 3.3.2).
 *  - numBlocks * avgBlockLen: static code footprint (IL1 behavior).
 *  - freqClass / phaseSwing: Table 2 "Freq" column.
 */
struct ModelRow
{
    const char *name;
    int paperRsc;
    int freq;       // 0 No, 1 Low, 2 High
    bool fp;
    bool mem;
    int blocks;
    int blockLen;
    double serial;
    int depDist;
    double pCold;
    double pWarm;
    double burstP;
    int burstMax;
    double randBr;
    double brLoadDep;
    double swing;
    double ipcEst;
};

const ModelRow kModelTable[] = {
    //  name      Rsc fq  fp    mem   blk len serial dep  pCold pWarm brstP bMax randBr brLd  swing ipc
    {"bzip2",      72, 0, false, false,  64, 10, 0.35,  7, 0.000, 0.004, 0.0,  1, 0.05, 0.05, 0.0, 1.6},
    {"perlbmk",    59, 0, false, false,  96, 9,  0.42,  6, 0.000, 0.003, 0.0,  1, 0.06, 0.05, 0.0, 1.4},
    {"eon",        82, 0, false, false,  80, 11, 0.32,  9, 0.000, 0.002, 0.0,  1, 0.04, 0.04, 0.0, 1.8},
    {"vortex",    102, 2, false, false, 160, 10, 0.26, 13, 0.000, 0.008, 0.0,  1, 0.05, 0.06, 0.5, 1.9},
    {"gzip",       83, 2, false, false,  56, 10, 0.34,  9, 0.000, 0.005, 0.0,  1, 0.07, 0.05, 0.5, 1.6},
    {"parser",     90, 2, false, false, 112, 9,  0.32, 10, 0.004, 0.010, 0.0,  1, 0.09, 0.08, 0.5, 1.4},
    {"gap",       208, 0, false, false,  72, 12, 0.08, 44, 0.000, 0.004, 0.0,  1, 0.03, 0.03, 0.0, 2.4},
    {"crafty",    125, 2, false, false, 224, 10, 0.22, 17, 0.000, 0.005, 0.0,  1, 0.10, 0.06, 0.5, 1.6},
    {"gcc",       112, 2, false, false, 512, 11, 0.25, 14, 0.002, 0.010, 0.0,  1, 0.08, 0.06, 0.5, 1.4},
    {"apsi",      127, 0, true,  false,  96, 12, 0.20, 18, 0.000, 0.008, 0.0,  1, 0.02, 0.03, 0.0, 2.0},
    {"fma3d",      72, 0, true,  false,  88, 11, 0.35,  8, 0.000, 0.004, 0.0,  1, 0.02, 0.03, 0.0, 1.6},
    {"wupwise",   161, 0, true,  false,  64, 13, 0.12, 28, 0.000, 0.004, 0.0,  1, 0.01, 0.02, 0.0, 2.4},
    {"mesa",      110, 0, true,  false, 112, 11, 0.24, 15, 0.000, 0.004, 0.0,  1, 0.03, 0.03, 0.0, 1.9},
    {"equake",    100, 0, true,  true,   72, 11, 0.30, 12, 0.035, 0.060, 0.25, 3, 0.03, 0.08, 0.0, 0.6},
    {"vpr",       180, 2, false, true,   96, 10, 0.18, 22, 0.025, 0.060, 0.45, 4, 0.08, 0.10, 0.6, 0.6},
    {"mcf",        97, 1, false, true,   64, 9,  0.62,  8, 0.110, 0.080, 0.05, 2, 0.07, 0.22, 0.7, 0.1},
    {"twolf",     184, 2, false, true,   96, 10, 0.16, 24, 0.030, 0.070, 0.45, 4, 0.08, 0.10, 0.6, 0.5},
    {"art",       176, 0, true,  true,   56, 11, 0.08, 26, 0.095, 0.050, 0.70, 8, 0.04, 0.10, 0.0, 0.4},
    {"lucas",      64, 0, true,  true,   48, 12, 0.50,  6, 0.050, 0.050, 0.05, 2, 0.02, 0.06, 0.0, 0.4},
    {"ammp",      173, 2, true,  true,   88, 11, 0.14, 22, 0.045, 0.060, 0.55, 6, 0.03, 0.08, 0.6, 0.5},
    {"swim",      213, 0, true,  true,   48, 13, 0.05, 34, 0.110, 0.040, 0.80, 10, 0.01, 0.04, 0.0, 0.5},
    {"applu",     112, 0, true,  true,   64, 12, 0.24, 15, 0.070, 0.050, 0.40, 4, 0.02, 0.05, 0.0, 0.7},
};

struct Registry
{
    std::vector<std::string> names;
    std::map<std::string, SpecInfo> info;
    std::map<std::string, ProfileParams> params;

    Registry()
    {
        std::uint64_t seed = 101;
        for (const ModelRow &row : kModelTable) {
            names.push_back(row.name);
            info[row.name] = SpecInfo{row.name, row.paperRsc, row.freq,
                                      row.fp, row.mem};

            ProfileParams pp;
            pp.name = row.name;
            pp.seed = seed;
            seed += 7919;
            pp.isFp = row.fp;
            pp.isMem = row.mem;
            pp.numBlocks = row.blocks;
            pp.avgBlockLen = row.blockLen;
            pp.fpFrac = row.fp ? 0.45 : 0.0;
            pp.loadFrac = row.mem ? 0.30 : 0.26;
            pp.storeFrac = 0.10;
            pp.mulFrac = row.fp ? 0.06 : 0.04;
            pp.randomBranchFrac = row.randBr;
            pp.branchDependsOnLoad = row.brLoadDep;
            pp.serialFrac = row.serial;
            pp.meanDepDist = row.depDist;
            pp.pLoadWarm = row.pWarm;
            pp.pLoadCold = row.pCold;
            pp.burstProb = row.burstP;
            pp.burstMax = row.burstMax;
            pp.hotBytes = row.mem ? 24 * 1024 : 16 * 1024;
            pp.warmBytes = 384 * 1024;
            pp.freqClass = row.freq;
            pp.phaseSwing = row.swing;
            pp.ipcEstimate = row.ipcEst;
            params[row.name] = pp;
        }
    }
};

const Registry &
registry()
{
    static const Registry reg;
    return reg;
}

} // namespace

const std::vector<std::string> &
specBenchmarkNames()
{
    return registry().names;
}

const SpecInfo &
specInfo(const std::string &name)
{
    auto it = registry().info.find(name);
    if (it == registry().info.end())
        fatal(msg("unknown benchmark: ", name));
    return it->second;
}

const ProfileParams &
specParams(const std::string &name)
{
    auto it = registry().params.find(name);
    if (it == registry().params.end())
        fatal(msg("unknown benchmark: ", name));
    return it->second;
}

ProgramProfile
specProfile(const std::string &name)
{
    return buildProfile(specParams(name));
}

bool
isSpecBenchmark(const std::string &name)
{
    return registry().info.count(name) != 0;
}

} // namespace smthill
