/**
 * @file
 * Deterministic synthetic instruction stream generator.
 *
 * A StreamGenerator walks a ProgramProfile's CFG and emits SynthInst
 * records one at a time. All of its *mutable* state is held by value,
 * so a copy of a generator resumes the stream at exactly the same
 * point — this is what lets the SMT core checkpoint whole machines for
 * OFF-LINE exhaustive learning and RAND-HILL.
 *
 * The profile and everything derived from it (block PCs, op-mix
 * normalizers, per-phase dependence-distance log-denominators, the
 * per-phase x per-block miss periods) are immutable after
 * construction, so they live behind a shared_ptr: checkpointing a
 * machine bumps a refcount instead of copying kilobytes of constant
 * tables, and trial machines on pool workers read them concurrently
 * without synchronization.
 */

#ifndef SMTHILL_TRACE_STREAM_GENERATOR_HH
#define SMTHILL_TRACE_STREAM_GENERATOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "trace/instruction.hh"
#include "trace/program_profile.hh"

namespace smthill
{

/** Generates the dynamic instruction stream of one thread. */
class StreamGenerator
{
  public:
    /**
     * @param profile the benchmark description (moved into shared,
     *        immutable storage)
     * @param stream_seed extra seed entropy (e.g., the thread id) so
     *        two instances of the same benchmark do not emit
     *        identical streams
     */
    explicit StreamGenerator(ProgramProfile profile,
                             std::uint64_t stream_seed = 0);

    /** Emit the next dynamic instruction. */
    SynthInst next();

    /** @return number of instructions emitted so far. */
    std::uint64_t emittedCount() const { return emitted; }

    /** @return the profile driving this stream. */
    const ProgramProfile &profile() const { return shared->prof; }

    /** @return index of the currently active phase. */
    std::size_t currentPhase() const { return phaseIdx; }

  private:
    /**
     * Immutable per-profile tables, precomputed once and shared by
     * every copy of the generator. Each entry caches a value the old
     * code recomputed per emitted instruction with the exact same
     * expression, so the emitted stream is bit-identical.
     */
    struct SharedTables
    {
        ProgramProfile prof;
        std::vector<Addr> blockPcs;    ///< precomputed block start PCs
        std::vector<double> mixTotal;  ///< per-block op-mix sum
        /** per-phase log1p(-1/meanDepDist); 0.0 = degenerate p>=1. */
        std::vector<double> depLogDenom;
        /** per-phase x per-block cold-miss period; 0 = never cold. */
        std::vector<std::uint32_t> coldPeriod;
        /** per-phase x per-block warm-miss period; 0 = never warm. */
        std::vector<std::uint32_t> warmPeriod;
        /** per-phase x per-block store warm-region probability. */
        std::vector<double> storePWarm;

        explicit SharedTables(ProgramProfile p);
    };

    /** Advance the phase schedule by one emitted instruction. */
    void tickPhase();

    /** Pick an op class from the current block's mix. */
    OpClass pickOp(const BlockSpec &block);

    /** Fill in source dependence distances for a new instruction. */
    void assignDeps(SynthInst &inst, bool force_independent);

    /** Pick a data address for a load. */
    Addr pickLoadAddr(bool &is_burst_miss);

    /** Pick a data address for a store. */
    Addr pickStoreAddr();

    /** Advance the strided warm-region pointer and return it. */
    Addr nextWarmAddr();

    /** @return index into the per-phase x per-block tables. */
    std::size_t
    phaseBlockIdx(std::uint32_t block) const
    {
        return phaseIdx * shared->prof.blocks.size() + block;
    }

    std::shared_ptr<const SharedTables> shared;
    std::vector<std::uint32_t> loopTrip; ///< per-block live trip count
    std::vector<std::uint32_t> coldTick; ///< per-block cold-miss phase
    std::vector<std::uint32_t> warmTick; ///< per-block warm-miss phase

    Rng rng;
    std::uint64_t emitted = 0;

    std::uint32_t curBlock = 0;
    std::uint32_t posInBlock = 0;

    std::size_t phaseIdx = 0;
    std::uint64_t phaseRemaining = 0;

    Addr coldPtr = 0;             ///< streaming pointer (cold region)
    Addr warmPtr = 0;             ///< strided pointer (warm region)
    int burstRemaining = 0;       ///< cold-miss MLP burst in progress
    std::uint32_t sinceLastLoad = 0; ///< distance to last emitted load
};

} // namespace smthill

#endif // SMTHILL_TRACE_STREAM_GENERATOR_HH
