#include "trace/stream_generator.hh"

#include <algorithm>
#include <cmath>

namespace smthill
{

namespace
{

/** Cold region starts far above hot and warm so regions never alias. */
constexpr Addr kColdRegionBase = 0x4000'0000;
constexpr Addr kColdRegionSpan = 0x2000'0000;
constexpr int kMaxDepDist = 512;

/**
 * The period (in qualifying accesses) between deterministic misses
 * with probability @p p, exactly as the per-instruction code used to
 * compute it; 0 encodes "never" (p <= 0).
 */
std::uint32_t
missPeriod(double p)
{
    if (p <= 0.0)
        return 0;
    auto period = static_cast<std::uint32_t>(1.0 / p + 0.5);
    return std::max(1u, period);
}

} // namespace

StreamGenerator::SharedTables::SharedTables(ProgramProfile p)
    : prof(std::move(p))
{
    prof.validate();
    const std::size_t nblocks = prof.blocks.size();
    const std::size_t nphases = prof.phases.size();

    blockPcs.reserve(nblocks);
    for (std::uint32_t i = 0; i < nblocks; ++i)
        blockPcs.push_back(prof.blockPc(i));

    mixTotal.reserve(nblocks);
    for (const BlockSpec &b : prof.blocks) {
        const OpMix &m = b.mix;
        mixTotal.push_back(m.intAlu + m.intMul + m.fpAlu + m.fpMul +
                           m.load + m.store);
    }

    depLogDenom.reserve(nphases);
    for (const PhaseSpec &ph : prof.phases) {
        double prob = 1.0 / std::max(1, ph.meanDepDist);
        // 0.0 marks the degenerate p >= 1 distribution (always 1).
        depLogDenom.push_back(prob >= 1.0 ? 0.0 : std::log1p(-prob));
    }

    coldPeriod.reserve(nphases * nblocks);
    warmPeriod.reserve(nphases * nblocks);
    storePWarm.reserve(nphases * nblocks);
    for (const PhaseSpec &ph : prof.phases) {
        for (const BlockSpec &b : prof.blocks) {
            const double bias = b.memBias;
            coldPeriod.push_back(
                missPeriod(std::min(0.95, ph.pLoadCold * bias)));
            warmPeriod.push_back(
                missPeriod(std::min(0.90, ph.pLoadWarm * bias)));
            storePWarm.push_back(
                std::min(0.5, (ph.pLoadWarm + ph.pLoadCold) * bias));
        }
    }
}

StreamGenerator::StreamGenerator(ProgramProfile profile,
                                 std::uint64_t stream_seed)
    : shared(std::make_shared<const SharedTables>(std::move(profile))),
      rng(shared->prof.seed * 0x2545'f491'4f6c'dd1dULL +
          stream_seed * 977 + 3)
{
    const ProgramProfile &prof = shared->prof;
    loopTrip.assign(prof.blocks.size(), 0);
    coldTick.assign(prof.blocks.size(), 0);
    warmTick.assign(prof.blocks.size(), 0);
    // Desynchronize the per-block miss phases so blocks don't all
    // miss on the same iteration.
    for (std::size_t i = 0; i < prof.blocks.size(); ++i) {
        coldTick[i] = static_cast<std::uint32_t>(rng.nextBelow(64));
        warmTick[i] = static_cast<std::uint32_t>(rng.nextBelow(64));
    }
    phaseIdx = 0;
    phaseRemaining = prof.phases[0].lengthInsts;
    coldPtr = kColdRegionBase + (rng.next() % kColdRegionSpan & ~Addr{63});
    warmPtr = rng.nextBelow(std::max<std::uint64_t>(prof.warmBytes, 64)) &
              ~Addr{63};
}

Addr
StreamGenerator::nextWarmAddr()
{
    const ProgramProfile &prof = shared->prof;
    // Stride through the warm region a cache line at a time, like a
    // loop sweeping an L2-resident array: one pass during warm-up
    // makes the whole region L2-resident, after which every access is
    // a deterministic DL1-miss/L2-hit.
    warmPtr += 64;
    if (warmPtr >= prof.warmBytes)
        warmPtr = 0;
    return prof.dataBase + prof.hotBytes + warmPtr;
}

void
StreamGenerator::tickPhase()
{
    ++emitted;
    ++sinceLastLoad;
    if (--phaseRemaining == 0) {
        const ProgramProfile &prof = shared->prof;
        phaseIdx = (phaseIdx + 1) % prof.phases.size();
        phaseRemaining = prof.phases[phaseIdx].lengthInsts;
        burstRemaining = 0;
    }
}

OpClass
StreamGenerator::pickOp(const BlockSpec &block)
{
    const OpMix &m = block.mix;
    double r = rng.nextDouble() * shared->mixTotal[curBlock];
    if ((r -= m.load) < 0)
        return OpClass::Load;
    if ((r -= m.store) < 0)
        return OpClass::Store;
    if ((r -= m.intAlu) < 0)
        return OpClass::IntAlu;
    if ((r -= m.intMul) < 0)
        return OpClass::IntMul;
    if ((r -= m.fpAlu) < 0)
        return OpClass::FpAlu;
    return OpClass::FpMul;
}

void
StreamGenerator::assignDeps(SynthInst &inst, bool force_independent)
{
    const PhaseSpec &ph = shared->prof.phases[phaseIdx];
    if (force_independent) {
        // Clustered cache misses must be mutually independent so the
        // machine can overlap them; their address operands are ready.
        inst.srcDist[0] = 0;
        inst.srcDist[1] = 0;
        return;
    }
    const double dep_log_denom = shared->depLogDenom[phaseIdx];
    auto draw = [&]() -> std::int32_t {
        if (rng.chance(ph.serialFrac))
            return 1;
        int d = rng.nextGeometricLog(dep_log_denom, kMaxDepDist);
        return static_cast<std::int32_t>(d);
    };
    std::int32_t d0 = draw();
    inst.srcDist[0] = std::min<std::int32_t>(
        d0, static_cast<std::int32_t>(
                std::min<std::uint64_t>(emitted, kMaxDepDist)));
    if (rng.chance(0.35)) {
        std::int32_t d1 = draw();
        inst.srcDist[1] = std::min<std::int32_t>(
            d1, static_cast<std::int32_t>(
                    std::min<std::uint64_t>(emitted, kMaxDepDist)));
    }
}

Addr
StreamGenerator::pickLoadAddr(bool &is_burst_miss)
{
    const ProgramProfile &prof = shared->prof;
    const PhaseSpec &ph = prof.phases[phaseIdx];
    is_burst_miss = false;

    // Misses arrive *periodically* per block, the way strided loops
    // cross cache-line boundaries every Nth access — not as Bernoulli
    // noise. This keeps per-epoch miss rates stable, which is what
    // makes epoch-to-epoch performance feedback learnable
    // (Section 3.3.1's hill shape). The periods are constant per
    // (phase, block) and precomputed in SharedTables.
    const std::size_t pb = phaseBlockIdx(curBlock);
    bool cold = false;
    if (burstRemaining > 0) {
        cold = true;
        --burstRemaining;
        is_burst_miss = true;
    } else {
        const std::uint32_t cold_period = shared->coldPeriod[pb];
        if (cold_period != 0) {
            if (++coldTick[curBlock] >= cold_period) {
                coldTick[curBlock] = 0;
                cold = true;
                if (ph.burstMax > 1 && rng.chance(ph.burstProb)) {
                    burstRemaining = static_cast<int>(
                        rng.nextRange(1, ph.burstMax - 1));
                    is_burst_miss = true;
                }
            }
        }
        if (!cold) {
            const std::uint32_t warm_period = shared->warmPeriod[pb];
            if (warm_period != 0 &&
                ++warmTick[curBlock] >= warm_period) {
                warmTick[curBlock] = 0;
                return nextWarmAddr();
            }
        }
    }

    if (cold) {
        // Stream through a huge region a full cache line at a time so
        // every cold access is a compulsory miss in DL1 and UL2.
        coldPtr += 64;
        if (coldPtr >= kColdRegionBase + kColdRegionSpan)
            coldPtr = kColdRegionBase;
        return coldPtr;
    }

    Addr off =
        rng.nextBelow(std::max<std::uint64_t>(prof.hotBytes, 64)) & ~Addr{7};
    return prof.dataBase + off;
}

Addr
StreamGenerator::pickStoreAddr()
{
    const ProgramProfile &prof = shared->prof;
    // Stores mostly hit the hot region (stack/locals); their
    // propensity to touch the warm region mirrors the loads', so
    // cache-quiet (ILP) programs stay quiet on the store side too.
    if (rng.chance(shared->storePWarm[phaseBlockIdx(curBlock)]))
        return nextWarmAddr();
    Addr off =
        rng.nextBelow(std::max<std::uint64_t>(prof.hotBytes, 64)) & ~Addr{7};
    return prof.dataBase + off;
}

SynthInst
StreamGenerator::next()
{
    const ProgramProfile &prof = shared->prof;
    const BlockSpec &block = prof.blocks[curBlock];
    SynthInst inst;
    inst.blockId = curBlock;
    inst.pc = shared->blockPcs[curBlock] + Addr{posInBlock} * 4;

    if (posInBlock < block.length) {
        inst.op = pickOp(block);
        if (inst.op == OpClass::Load) {
            bool burst = false;
            inst.effAddr = pickLoadAddr(burst);
            assignDeps(inst, burst);
            sinceLastLoad = 0;
        } else if (inst.op == OpClass::Store) {
            inst.effAddr = pickStoreAddr();
            assignDeps(inst, false);
        } else {
            assignDeps(inst, false);
        }
        ++posInBlock;
        tickPhase();
        return inst;
    }

    // Block-terminating branch.
    inst.op = OpClass::Branch;
    std::uint32_t next_block;
    switch (block.branch) {
      case BranchKind::Loop:
        if (++loopTrip[curBlock] < block.tripCount) {
            inst.taken = true;
            next_block = block.takenTarget;
        } else {
            loopTrip[curBlock] = 0;
            inst.taken = false;
            next_block = block.fallTarget;
        }
        break;
      case BranchKind::Biased:
      case BranchKind::Random:
        inst.taken = rng.chance(block.takenProb);
        next_block = inst.taken ? block.takenTarget : block.fallTarget;
        break;
      default:
        next_block = block.fallTarget;
        break;
    }
    inst.target = shared->blockPcs[next_block];

    // A branch often tests a recently computed value; with some
    // probability that value is the most recent load, which makes the
    // branch resolve late when the load misses (expensive mispredict).
    if (sinceLastLoad > 0 && sinceLastLoad < kMaxDepDist &&
        rng.chance(prof.branchDependsOnLoad)) {
        inst.srcDist[0] = static_cast<std::int32_t>(sinceLastLoad);
    } else {
        inst.srcDist[0] = static_cast<std::int32_t>(
            std::min<std::uint64_t>(emitted, rng.nextRange(1, 4)));
    }

    curBlock = next_block;
    posInBlock = 0;
    tickPhase();
    return inst;
}

} // namespace smthill
