#include "core/machine_arena.hh"

#include "common/log.hh"

namespace smthill
{

MachineArena::MachineArena(int workers)
    : machines(static_cast<std::size_t>(workers < 1 ? 1 : workers))
{
}

SmtCpu &
MachineArena::acquire(int worker, const SmtCpu &checkpoint)
{
    if (worker < 0 || worker >= workers())
        fatal(msg("MachineArena: worker ", worker, " out of range [0, ",
                  workers(), ")"));
    std::unique_ptr<SmtCpu> &m = machines[static_cast<std::size_t>(worker)];
    if (!m) {
        // First trial on this worker: clone (the event-trace link is
        // already dropped by copy), then detach observation exactly
        // as restoreFrom would — trials never observe.
        // First-touch warm-up: one clone per worker for the arena's
        // lifetime; every later trial reuses it via restoreFrom.
        m = std::make_unique<SmtCpu>(checkpoint); // smthill-lint: allow(hot-path-allocation)
        m->setTracer(nullptr);
        m->setBranchObserver(nullptr, nullptr);
        m->setLoadObserver(nullptr, nullptr);
        return *m;
    }
    m->restoreFrom(checkpoint);
    return *m;
}

} // namespace smthill
