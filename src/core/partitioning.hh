/**
 * @file
 * Helpers over the resource-partition search space: exhaustive
 * enumeration for the 2-thread limit study (Section 3.2 samples
 * every other partitioning of the 256 integer rename registers,
 * giving 127 trials), and the hill-climbing trial/anchor moves of
 * Figure 8.
 */

#ifndef SMTHILL_CORE_PARTITIONING_HH
#define SMTHILL_CORE_PARTITIONING_HH

#include <vector>

#include "pipeline/resources.hh"

namespace smthill
{

/**
 * Enumerate 2-thread partitionings of @p total unit resources with
 * shares stepping by @p stride; both shares are kept >= stride.
 * stride == 2 reproduces the paper's 127 trials for 256 registers.
 */
std::vector<Partition> enumeratePartitions2(int total, int stride);

/**
 * Figure 8 lines 17-21: the trial partition that shifts Delta units
 * to @p favored from every other thread. Shares are clamped so no
 * thread drops below @p min_share and the total is preserved.
 */
Partition trialPartition(const Partition &anchor, int favored, int delta,
                         int min_share);

/**
 * Figure 8 lines 10-14: move the anchor along the positive gradient,
 * in favor of @p gradient_thread. Same clamping as trialPartition.
 */
Partition moveAnchor(const Partition &anchor, int gradient_thread,
                     int delta, int min_share);

} // namespace smthill

#endif // SMTHILL_CORE_PARTITIONING_HH
