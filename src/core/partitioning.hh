/**
 * @file
 * Helpers over the resource-partition search space: exhaustive
 * enumeration for the 2-thread limit study (Section 3.2 samples
 * every other partitioning of the 256 integer rename registers,
 * giving 127 trials), and the hill-climbing trial/anchor moves of
 * Figure 8.
 */

#ifndef SMTHILL_CORE_PARTITIONING_HH
#define SMTHILL_CORE_PARTITIONING_HH

#include <array>
#include <vector>

#include "pipeline/resources.hh"

namespace smthill
{

/**
 * Enumerate 2-thread partitionings of @p total unit resources with
 * shares stepping by @p stride; both shares are kept >= stride.
 * stride == 2 reproduces the paper's 127 trials for 256 registers.
 */
std::vector<Partition> enumeratePartitions2(int total, int stride);

/**
 * Figure 8 lines 17-21: the trial partition that shifts Delta units
 * to @p favored from every other thread. Shares are clamped so no
 * thread drops below @p min_share and the total is preserved.
 */
Partition trialPartition(const Partition &anchor, int favored, int delta,
                         int min_share);

/**
 * Figure 8 lines 10-14: move the anchor along the positive gradient,
 * in favor of @p gradient_thread. Same clamping as trialPartition.
 */
Partition moveAnchor(const Partition &anchor, int gradient_thread,
                     int delta, int min_share);

// --- Open-system churn (time-varying active thread sets) ------------
//
// Under job arrival/departure only a subset of the hardware contexts
// is occupied. The convention across the learners: inactive contexts
// hold share 0, and trial/anchor moves (above) never donate from a
// zero share, so the plain Figure 8 algebra works unchanged over the
// active set.

/**
 * Rebalance @p anchor after contexts left the active set: every
 * inactive share drops to 0 and the freed units are redistributed
 * across the active threads (equal cuts, remainder to the
 * lowest-indexed). Active shares are then raised to the feasible
 * floor min(min_share, total / numActive) — the PR-3 clampMin rule
 * restricted to the active set — so no survivor is left starved by a
 * departure. The total is preserved. With no active threads the
 * result is all-zero (callers disable partitioning instead of
 * installing it).
 */
Partition redistributeDetached(const Partition &anchor,
                               const std::array<bool, kMaxThreads> &active,
                               int min_share);

/**
 * Admit @p newcomer (must be active) into @p anchor: its share is
 * rebuilt from 0 up to the equal cut total / numActive, taking one
 * unit at a time from the richest other active thread, never pushing
 * a donor below the newcomer's own level. Incumbent learned shares
 * keep their relative order; the total is preserved — including a
 * zero total: an anchor drained by an all-departure holds no shares
 * to admit from, so the caller must re-seed it (give the newcomer
 * the machine total) before admitting into it.
 */
Partition admitAttached(const Partition &anchor,
                        const std::array<bool, kMaxThreads> &active,
                        int newcomer, int min_share);

} // namespace smthill

#endif // SMTHILL_CORE_PARTITIONING_HH
