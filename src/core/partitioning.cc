#include "core/partitioning.hh"

#include <algorithm>

#include "common/log.hh"

namespace smthill
{

std::vector<Partition> enumeratePartitions2(int total, int stride)
{
    if (stride < 1 || total < 2 * stride)
        fatal("enumeratePartitions2: bad stride/total");
    std::vector<Partition> out;
    for (int a = stride; a <= total - stride; a += stride) {
        Partition p;
        p.numThreads = 2;
        p.share[0] = a;
        p.share[1] = total - a;
        out.push_back(p);
    }
    return out;
}

namespace
{

/** Shift delta units from every thread but @p favored to it. */
Partition
shiftToward(const Partition &anchor, int favored, int delta,
            int min_share)
{
    Partition p = anchor;
    int nt = p.numThreads;
    // An out-of-range favored thread would silently inflate the
    // total: every in-range thread donates, and the gained units
    // land in a share slot no thread owns (or out of bounds).
    if (favored < 0 || favored >= nt)
        fatal(msg("partition shift favors thread ", favored, " of ",
                  nt));
    if (delta < 0)
        fatal(msg("partition shift with negative delta ", delta));
    int gained = 0;
    for (int i = 0; i < nt; ++i) {
        if (i == favored)
            continue;
        // Never push a donor below the floor; give what it can.
        int give = std::min(delta, std::max(0, p.share[i] - min_share));
        p.share[i] -= give;
        gained += give;
    }
    p.share[favored] += gained;
    return p;
}

} // namespace

Partition
trialPartition(const Partition &anchor, int favored, int delta,
               int min_share)
{
    return shiftToward(anchor, favored, delta, min_share);
}

Partition
moveAnchor(const Partition &anchor, int gradient_thread, int delta,
           int min_share)
{
    return shiftToward(anchor, gradient_thread, delta, min_share);
}

} // namespace smthill
