#include "core/partitioning.hh"

#include <algorithm>

#include "common/log.hh"

namespace smthill
{

std::vector<Partition> enumeratePartitions2(int total, int stride)
{
    if (stride < 1 || total < 2 * stride)
        fatal("enumeratePartitions2: bad stride/total");
    std::vector<Partition> out;
    for (int a = stride; a <= total - stride; a += stride) {
        Partition p;
        p.numThreads = 2;
        p.share[0] = a;
        p.share[1] = total - a;
        // Builds the (small, total/stride-sized) trial list handed to
        // a whole epoch of sampling — setup cost, not per-cycle work.
        out.push_back(p); // smthill-lint: allow(hot-path-allocation)
    }
    return out;
}

namespace
{

/** Shift delta units from every thread but @p favored to it. */
Partition
shiftToward(const Partition &anchor, int favored, int delta,
            int min_share)
{
    Partition p = anchor;
    int nt = p.numThreads;
    // An out-of-range favored thread would silently inflate the
    // total: every in-range thread donates, and the gained units
    // land in a share slot no thread owns (or out of bounds).
    if (favored < 0 || favored >= nt)
        fatal(msg("partition shift favors thread ", favored, " of ",
                  nt));
    if (delta < 0)
        fatal(msg("partition shift with negative delta ", delta));
    int gained = 0;
    for (int i = 0; i < nt; ++i) {
        if (i == favored)
            continue;
        // Never push a donor below the floor; give what it can.
        int give = std::min(delta, std::max(0, p.share[i] - min_share));
        p.share[i] -= give;
        gained += give;
    }
    p.share[favored] += gained;
    return p;
}

/**
 * Feasible-floor pass over the active set only: same degradation
 * rule as Partition::clampMin, but total / numActive instead of
 * total / numThreads, and inactive zeros are neither raised nor
 * donors.
 */
void
clampMinActive(Partition &p, const std::array<bool, kMaxThreads> &active,
               int num_active, int total, int min_share)
{
    int nt = p.numThreads;
    int floor_share = std::min(min_share, total / num_active);
    for (int i = 0; i < nt; ++i) {
        if (!active[i])
            continue;
        while (p.share[i] < floor_share) {
            int richest = -1;
            for (int j = 0; j < nt; ++j)
                if (active[j] && (richest < 0 ||
                                  p.share[j] > p.share[richest]))
                    richest = j;
            if (p.share[richest] <= floor_share)
                return; // unreachable once the floor is feasible
            ++p.share[i];
            --p.share[richest];
        }
    }
}

} // namespace

Partition
trialPartition(const Partition &anchor, int favored, int delta,
               int min_share)
{
    return shiftToward(anchor, favored, delta, min_share);
}

Partition
moveAnchor(const Partition &anchor, int gradient_thread, int delta,
           int min_share)
{
    return shiftToward(anchor, gradient_thread, delta, min_share);
}

Partition
redistributeDetached(const Partition &anchor,
                     const std::array<bool, kMaxThreads> &active,
                     int min_share)
{
    Partition p = anchor;
    int nt = p.numThreads;
    int total = p.total();
    int freed = 0;
    int num_active = 0;
    for (int i = 0; i < nt; ++i) {
        if (active[i]) {
            ++num_active;
        } else {
            freed += p.share[i];
            p.share[i] = 0;
        }
    }
    if (num_active == 0)
        return p;

    int cut = freed / num_active;
    int extra = freed % num_active;
    for (int i = 0; i < nt; ++i) {
        if (!active[i])
            continue;
        p.share[i] += cut + (extra > 0 ? 1 : 0);
        if (extra > 0)
            --extra;
    }
    clampMinActive(p, active, num_active, total, min_share);
    return p;
}

Partition
admitAttached(const Partition &anchor,
              const std::array<bool, kMaxThreads> &active, int newcomer,
              int min_share)
{
    Partition p = anchor;
    int nt = p.numThreads;
    if (newcomer < 0 || newcomer >= nt || !active[newcomer])
        fatal(msg("admitAttached: newcomer ", newcomer,
                  " not an active thread of ", nt));
    int num_active = 0;
    for (int i = 0; i < nt; ++i)
        num_active += active[i] ? 1 : 0;

    int total = p.total();
    int target = total / num_active;
    while (p.share[newcomer] < target) {
        int richest = -1;
        for (int j = 0; j < nt; ++j) {
            if (j == newcomer || !active[j])
                continue;
            if (richest < 0 || p.share[j] > p.share[richest])
                richest = j;
        }
        if (richest < 0 || p.share[richest] <= p.share[newcomer] + 1)
            break; // donors leveled off with the newcomer
        --p.share[richest];
        ++p.share[newcomer];
    }
    clampMinActive(p, active, num_active, total, min_share);
    return p;
}

} // namespace smthill
