/**
 * @file
 * RAND-HILL (Section 4.3): the checkpoint-based multi-start
 * hill-climbing learner used as the ideal reference for 4-thread
 * workloads, where exhaustive search is intractable. Each epoch is
 * searched by repeated hill-climbing passes that restart from random
 * anchor partitions whenever a peak is reached; the search budget is
 * 128 trial epochs (outer-loop iterations) per committed epoch.
 */

#ifndef SMTHILL_CORE_RAND_HILL_HH
#define SMTHILL_CORE_RAND_HILL_HH

#include <memory>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "core/offline_exhaustive.hh"

namespace smthill
{

/** RAND-HILL configuration. */
struct RandHillConfig
{
    Cycle epochSize = 64 * 1024;
    int iterations = 128;  ///< trial epochs per committed epoch
    int delta = 4;
    int minShare = 4;
    PerfMetric metric = PerfMetric::WeightedIpc;
    std::array<double, kMaxThreads> singleIpc{};
    std::uint64_t seed = 12345;
    /**
     * Worker threads for each round's trial epochs; results are
     * bit-identical for every value (jobs == 1 is the exact serial
     * path). The climb itself stays sequential — each anchor move
     * and every restart draw depends on the previous round — so the
     * parallel grain is the round's numThreads independent trials.
     */
    int jobs = 1;
};

/** The RAND-HILL ideal learner. */
class RandHill
{
  public:
    explicit RandHill(RandHillConfig config = RandHillConfig{});

    /**
     * Search the current epoch's partition space by multi-start hill
     * climbing, then advance @p cpu through the epoch under the best
     * partitioning found.
     */
    OfflineEpoch stepEpoch(SmtCpu &cpu);

    /** Run @p num_epochs epochs, advancing @p cpu along the way. */
    OfflineResult run(SmtCpu &cpu, int num_epochs);

    const RandHillConfig &config() const { return cfg; }

  private:
    /** @return a random partition with every share >= minShare. */
    Partition randomPartition(int threads, int total);

    RandHillConfig cfg;
    Rng rng;
    /** Round-trial pool, shared by copies of the learner. */
    std::shared_ptr<ThreadPool> pool;
    /** Warm per-worker trial machines (see OfflineExhaustive). */
    std::shared_ptr<MachineArena> arena;
};

} // namespace smthill

#endif // SMTHILL_CORE_RAND_HILL_HH
