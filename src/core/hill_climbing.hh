/**
 * @file
 * The paper's contribution: on-line hill-climbing SMT resource
 * distribution (Section 4, Figure 8).
 *
 * Execution is divided into epochs (64K cycles). Learning proceeds in
 * rounds of T epochs: in epoch k of a round, the trial partition
 * shifts Delta unit resources to thread k from every other thread,
 * relative to the current anchor partition. At the end of a round the
 * anchor moves along the positive gradient — in favor of the thread
 * whose trial epoch performed best. The performance feedback metric
 * is configurable (average IPC, weighted IPC, or harmonic mean of
 * weighted IPC); the weighted metrics learn each thread's stand-alone
 * IPC on-line by periodically running the thread solo for one epoch
 * (Section 4.2). Every epoch boundary charges the software cost of
 * running the algorithm by stalling the machine (200 cycles).
 */

#ifndef SMTHILL_CORE_HILL_CLIMBING_HH
#define SMTHILL_CORE_HILL_CLIMBING_HH

#include <array>
#include <cstdint>

#include "core/metrics.hh"
#include "core/partitioning.hh"
#include "policy/policy.hh"

namespace smthill
{

/** Tunables of the hill-climbing learner (defaults = the paper's). */
struct HillConfig
{
    Cycle epochSize = 64 * 1024;  ///< cycles per epoch
    int delta = 4;                ///< registers shifted per sample
    PerfMetric metric = PerfMetric::WeightedIpc;
    Cycle softwareCost = 200;     ///< machine stall per epoch boundary
    int minShare = 4;             ///< floor on any thread's share

    /**
     * Epochs between SingleIPC samples; each thread is sampled once
     * every samplePeriod * T epochs (Section 4.2 uses 40).
     */
    int samplePeriod = 40;

    /** Disable solo sampling (only sane for the AvgIpc metric). */
    bool sampleSingleIpc = true;
};

/** The HILL resource-distribution policy. */
class HillClimbing : public ResourcePolicy
{
  public:
    explicit HillClimbing(HillConfig config = HillConfig{});

    std::string name() const override;
    void attach(SmtCpu &cpu) override;
    void epoch(SmtCpu &cpu, std::uint64_t epoch_id) override;
    std::unique_ptr<ResourcePolicy> clone() const override;

    const HillConfig &config() const { return cfg; }

    /** @return the current best-known partition (the anchor). */
    const Partition &anchor() const { return anchorPartition; }

    /** @return current stand-alone IPC estimates. */
    const std::array<double, kMaxThreads> &singleIpc() const
    {
        return singleIpcEst;
    }

    /** @return true while a solo-sampling epoch is in flight. */
    bool samplingActive() const { return samplingThread >= 0; }

  protected:
    /**
     * Hook for extensions (Section 5 phase-based learning), invoked
     * after the normal hill step has chosen the next anchor; the
     * returned partition replaces it.
     */
    virtual Partition overrideAnchor(SmtCpu &, Partition next)
    {
        return next;
    }

    /** Measure per-thread IPCs of the epoch that just ended. */
    IpcSample measureEpoch(const SmtCpu &cpu);

    /** Install the trial partition for the upcoming epoch. */
    void installTrial(SmtCpu &cpu);

    HillConfig cfg;
    Partition anchorPartition;
    std::array<double, kMaxThreads> roundPerf{};
    std::array<double, kMaxThreads> singleIpcEst{};
    std::array<std::uint64_t, kMaxThreads> lastCommitted{};
    std::uint64_t algEpoch = 0;   ///< epochs consumed by learning
    int epochsSinceSample = 0;
    int sampleRotation = 0;       ///< next thread to sample
    int samplingThread = -1;      ///< thread running solo, or -1
};

} // namespace smthill

#endif // SMTHILL_CORE_HILL_CLIMBING_HH
