/**
 * @file
 * The paper's contribution: on-line hill-climbing SMT resource
 * distribution (Section 4, Figure 8).
 *
 * Execution is divided into epochs (64K cycles). Learning proceeds in
 * rounds of T epochs: in epoch k of a round, the trial partition
 * shifts Delta unit resources to thread k from every other thread,
 * relative to the current anchor partition. At the end of a round the
 * anchor moves along the positive gradient — in favor of the thread
 * whose trial epoch performed best. The performance feedback metric
 * is configurable (average IPC, weighted IPC, or harmonic mean of
 * weighted IPC); the weighted metrics learn each thread's stand-alone
 * IPC on-line by periodically running the thread solo for one epoch
 * (Section 4.2); right after attach, every thread is sampled solo
 * once (the bootstrap) so the weighted metrics never run on empty
 * estimates. Every epoch boundary charges the software cost of
 * running the algorithm by stalling the machine (200 cycles), and
 * per-epoch IPCs are measured over the cycles the machine actually
 * executed, not the nominal epoch size.
 */

#ifndef SMTHILL_CORE_HILL_CLIMBING_HH
#define SMTHILL_CORE_HILL_CLIMBING_HH

#include <array>
#include <cstdint>

#include "core/epoch_trace.hh"
#include "core/metrics.hh"
#include "core/partitioning.hh"
#include "policy/policy.hh"

namespace smthill
{

/** Tunables of the hill-climbing learner (defaults = the paper's). */
struct HillConfig
{
    Cycle epochSize = 64 * 1024;  ///< cycles per epoch
    int delta = 4;                ///< registers shifted per sample
    PerfMetric metric = PerfMetric::WeightedIpc;
    Cycle softwareCost = 200;     ///< machine stall per epoch boundary
    int minShare = 4;             ///< floor on any thread's share

    /**
     * Epochs between SingleIPC samples; each thread is sampled once
     * every samplePeriod * T epochs (Section 4.2 uses 40).
     */
    int samplePeriod = 40;

    /** Disable solo sampling (only sane for the AvgIpc metric). */
    bool sampleSingleIpc = true;
};

/** The HILL resource-distribution policy. */
class HillClimbing : public ResourcePolicy
{
  public:
    explicit HillClimbing(HillConfig config = HillConfig{});

    std::string name() const override;
    void attach(SmtCpu &cpu) override;
    void epoch(SmtCpu &cpu, std::uint64_t epoch_id) override;
    void threadAttached(SmtCpu &cpu, ThreadId tid) override;
    void threadDetached(SmtCpu &cpu, ThreadId tid) override;
    std::unique_ptr<ResourcePolicy> clone() const override;

    const HillConfig &config() const { return cfg; }

    /** @return the current best-known partition (the anchor). */
    const Partition &anchor() const { return anchorPartition; }

    /** @return current stand-alone IPC estimates. */
    const std::array<double, kMaxThreads> &singleIpc() const
    {
        return singleIpcEst;
    }

    /** @return true while a solo-sampling epoch is in flight. */
    bool samplingActive() const { return samplingThread >= 0; }

    /**
     * @return true while the initial SingleIPC bootstrap (one solo
     * epoch per thread, right after attach) is still running. Until
     * it completes no learning epoch has executed, so the weighted
     * metrics never see the degenerate all-zero estimate state.
     */
    bool bootstrapping() const { return bootstrapPending > 0; }

    /** @return true once every thread has a stand-alone IPC sample. */
    bool estimatesReady() const;

    /** @return true while context @p tid holds a job (open system). */
    bool threadActive(int tid) const { return activeMask[tid]; }

    /**
     * @return true while context @p tid waits for a solo re-bootstrap
     * sample (queued at threadAttached so a reused context never
     * learns on the previous occupant's stand-alone IPC).
     */
    bool soloResamplePending(int tid) const { return needsSolo[tid]; }

  protected:
    /**
     * Hook for extensions (Section 5 phase-based learning), invoked
     * after the normal hill step has chosen the next anchor; the
     * returned partition replaces it.
     */
    virtual Partition overrideAnchor(SmtCpu &, Partition next)
    {
        return next;
    }

    /**
     * Measure per-thread IPCs of the epoch that just ended, over the
     * cycles the machine actually executed since measurement resumed
     * (excluding the software-cost stall charged at the previous
     * boundary), not the nominal epoch size.
     */
    IpcSample measureEpoch(const SmtCpu &cpu);

    /** Install the trial partition for the upcoming epoch. */
    void installTrial(SmtCpu &cpu);

    /** Put @p tid solo on the machine for one sampling epoch. */
    void beginSample(SmtCpu &cpu, int tid);

    /** Charge the software cost and restart the measurement window. */
    void chargeBoundary(SmtCpu &cpu);

    /** @return true if the metric needs stand-alone IPC estimates. */
    bool needsSingleIpc() const
    {
        return cfg.metric != PerfMetric::AvgIpc;
    }

    /** @return number of active (job-holding) contexts. */
    int numActive(int nt) const;

    /** @return thread id of the @p k-th active context. */
    int activeAt(int k) const;

    /** @return lowest-index active context awaiting a solo sample. */
    int nextNeedsSolo() const;

    /** @return first active context at or cyclically after @p start. */
    int nextActiveFrom(int start, int nt) const;

    /**
     * Metric over the active subset only; in a closed system (no
     * churn ever observed) this is plain evalMetric, bit for bit.
     */
    double evalActiveMetric(const IpcSample &sample) const;

    /** Record this boundary's state into the attached tracer. */
    void traceEpoch(const SmtCpu &cpu, std::uint64_t epoch_id,
                    const IpcSample &sample, const Partition &trial,
                    bool was_partitioned, double metric_value,
                    int sampled_thread, int gradient_thread,
                    bool anchor_moved);

    HillConfig cfg;
    Partition anchorPartition;
    std::array<double, kMaxThreads> roundPerf{};
    std::array<double, kMaxThreads> singleIpcEst{};
    std::array<std::uint64_t, kMaxThreads> lastCommitted{};
    std::uint64_t algEpoch = 0;   ///< epochs consumed by learning
    Cycle lastEpochStart = 0;     ///< cycle measurement resumed at
    Cycle roundStart = 0;         ///< cycle the current round began at
    Cycle lastElapsed = 0;        ///< cycles covered by the last sample
    int epochsSinceSample = 0;
    int sampleRotation = 0;       ///< next thread to sample
    int samplingThread = -1;      ///< thread running solo, or -1
    int bootstrapPending = 0;     ///< attach-time solo samples left

    // --- Open-system churn state (time-varying active set). All of
    // --- it is inert in a closed system: activeMask is all-true,
    // --- openSystemMode stays false, and every churn branch below
    // --- reduces to the legacy behavior bit for bit.
    std::array<bool, kMaxThreads> activeMask{};  ///< contexts w/ jobs
    std::array<bool, kMaxThreads> needsSolo{};   ///< re-bootstrap due
    /** Start cycle of each context's current residency stint. */
    std::array<Cycle, kMaxThreads> residentFrom{};
    /** Resident cycles of finished stints inside this window. */
    std::array<Cycle, kMaxThreads> residentAccum{};
    int roundPos = 0;        ///< active-set index of installed trial
    bool roundDirty = false; ///< churn invalidated the running epoch
    bool openSystemMode = false; ///< any churn (or partial attach) seen
};

} // namespace smthill

#endif // SMTHILL_CORE_HILL_CLIMBING_HH
