#include "core/hill_climbing.hh"

#include <algorithm>

#include "common/log.hh"

namespace smthill
{

namespace
{

Json
shareJson(const Partition &p)
{
    Json arr = Json::array();
    for (int i = 0; i < p.numThreads; ++i)
        arr.push(Json(p.share[i]));
    return arr;
}

Json
ipcJson(const IpcSample &s)
{
    Json arr = Json::array();
    for (int i = 0; i < s.numThreads; ++i)
        arr.push(Json(s.ipc[i]));
    return arr;
}

} // namespace

HillClimbing::HillClimbing(HillConfig config) : cfg(config)
{
    if (cfg.delta < 1)
        fatal("HillClimbing: delta must be >= 1");
    if (cfg.epochSize < 1)
        fatal("HillClimbing: epoch size must be >= 1");
    singleIpcEst.fill(0.0);
}

std::string
HillClimbing::name() const
{
    switch (cfg.metric) {
      case PerfMetric::AvgIpc:
        return "HILL-IPC";
      case PerfMetric::WeightedIpc:
        return "HILL-WIPC";
      case PerfMetric::HarmonicWeightedIpc:
        return "HILL-HWIPC";
    }
    return "HILL";
}

void
HillClimbing::attach(SmtCpu &cpu)
{
    int nt = cpu.numThreads();
    // In the very first round the anchor defaults to an equal
    // partition for every thread (Figure 8, footnote).
    anchorPartition = Partition::equal(nt, cpu.config().intRegs);
    roundPerf.fill(0.0);
    singleIpcEst.fill(0.0);
    lastCommitted = cpu.stats().committed;
    lastEpochStart = cpu.now();
    roundStart = cpu.now();
    lastElapsed = 0;
    algEpoch = 0;
    epochsSinceSample = 0;
    sampleRotation = 0;
    samplingThread = -1;
    bootstrapPending = 0;
    roundPos = 0;
    roundDirty = false;
    needsSolo.fill(false);
    residentAccum.fill(0);
    residentFrom.fill(cpu.now());
    int na = 0;
    for (int i = 0; i < nt; ++i) {
        activeMask[i] = cpu.threadEnabled(static_cast<ThreadId>(i));
        na += activeMask[i] ? 1 : 0;
    }
    openSystemMode = na < nt;
    for (int i = 0; i < nt; ++i)
        cpu.setFetchLocked(static_cast<ThreadId>(i), false);

    if (openSystemMode) {
        // Attached over a partially occupied (or empty) machine: the
        // anchor covers only the active set, and solo bootstrapping is
        // driven per-context through needsSolo as jobs arrive rather
        // than by the closed-system chain below.
        anchorPartition =
            redistributeDetached(anchorPartition, activeMask, cfg.minShare);
        if (cfg.sampleSingleIpc && needsSingleIpc())
            for (int i = 0; i < nt; ++i)
                needsSolo[i] = activeMask[i];
        int pending = na > 1 ? nextNeedsSolo() : -1;
        if (pending >= 0)
            beginSample(cpu, pending);
        else if (na > 1)
            installTrial(cpu);
        else
            cpu.clearPartition();
        return;
    }

    // Bootstrap the stand-alone IPC estimates (Section 4.2): before
    // any estimate exists, WIPC/HWIPC degenerate into raw-IPC
    // learning (evalMetric's solo() fallback), so the first epochs
    // sample every thread solo once. Learning epochs begin only
    // after the last bootstrap sample lands.
    if (cfg.sampleSingleIpc && needsSingleIpc() && nt > 1) {
        bootstrapPending = nt;
        beginSample(cpu, 0);
        sampleRotation = 1 % nt;
    } else {
        installTrial(cpu);
    }
}

int
HillClimbing::numActive(int nt) const
{
    int na = 0;
    for (int i = 0; i < nt; ++i)
        na += activeMask[i] ? 1 : 0;
    return na;
}

int
HillClimbing::activeAt(int k) const
{
    for (int i = 0; i < anchorPartition.numThreads; ++i) {
        if (!activeMask[i])
            continue;
        if (k-- == 0)
            return i;
    }
    fatal(msg("activeAt: no active thread at index ", k));
    return -1;
}

int
HillClimbing::nextNeedsSolo() const
{
    for (int i = 0; i < anchorPartition.numThreads; ++i)
        if (activeMask[i] && needsSolo[i])
            return i;
    return -1;
}

int
HillClimbing::nextActiveFrom(int start, int nt) const
{
    for (int k = 0; k < nt; ++k) {
        int i = (start + k) % nt;
        if (activeMask[i])
            return i;
    }
    return start;
}

double
HillClimbing::evalActiveMetric(const IpcSample &sample) const
{
    if (!openSystemMode)
        return evalMetric(cfg.metric, sample, singleIpcEst);
    return evalMetricMasked(cfg.metric, sample, singleIpcEst, activeMask);
}

void
HillClimbing::threadAttached(SmtCpu &cpu, ThreadId tid)
{
    int nt = cpu.numThreads();
    openSystemMode = true;
    activeMask[tid] = true;
    residentAccum[tid] = 0;
    residentFrom[tid] = cpu.now();
    lastCommitted[tid] = cpu.stats().committed[tid];
    // A reused context must not learn on the previous occupant's
    // stand-alone IPC: zero the estimate and queue a solo
    // re-bootstrap sample for the new job.
    singleIpcEst[tid] = 0.0;
    roundPerf[tid] = 0.0;
    needsSolo[tid] = cfg.sampleSingleIpc && needsSingleIpc();
    // When the last job departed, redistributeDetached freed every
    // share into the void (no survivor to receive them) and the
    // anchor's total dropped to zero. admitAttached conserves the
    // total it is given, so without re-seeding the first arrival
    // after a drain would inherit — and once a second job lands,
    // install — an all-zero partition that starves every context.
    if (anchorPartition.total() == 0)
        anchorPartition.share[tid] = cpu.config().intRegs;
    anchorPartition =
        admitAttached(anchorPartition, activeMask, tid, cfg.minShare);
    // The round in flight compared trials over the old active set;
    // start over.
    roundPos = 0;
    roundDirty = true;
    roundStart = cpu.now();

    if (samplingThread >= 0 && samplingThread != static_cast<int>(tid)) {
        // A solo sample is in flight: the newcomer waits disabled
        // until it ends so the sample stays clean.
        cpu.setThreadEnabled(tid, false);
    } else if (numActive(nt) >= 2) {
        cpu.setPartition(anchorPartition);
    } else {
        cpu.clearPartition();
    }
    if (EventTrace *evt = eventTraceRef.trace) {
        Json args = Json::object();
        args.set("thread", static_cast<int>(tid));
        args.set("anchor", shareJson(anchorPartition));
        evt->instant(cpu.now(), eventTraceRef.pid, kControlTid, "hill",
                     "churn.attach", std::move(args));
    }
}

void
HillClimbing::threadDetached(SmtCpu &cpu, ThreadId tid)
{
    int nt = cpu.numThreads();
    openSystemMode = true;
    if (activeMask[tid]) {
        Cycle from = std::max(residentFrom[tid], lastEpochStart);
        residentAccum[tid] += cpu.now() > from ? cpu.now() - from : 0;
    }
    activeMask[tid] = false;
    needsSolo[tid] = false;
    anchorPartition =
        redistributeDetached(anchorPartition, activeMask, cfg.minShare);
    roundPos = 0;
    roundDirty = true;
    roundStart = cpu.now();

    if (samplingThread == static_cast<int>(tid)) {
        // The thread running solo departed mid-sample: abandon it.
        samplingThread = -1;
        if (bootstrapPending > 0) {
            // Closed-system bootstrap chain interrupted by churn;
            // fall back to per-context re-bootstrap for whichever
            // active threads still lack an estimate.
            bootstrapPending = 0;
            if (cfg.sampleSingleIpc && needsSingleIpc())
                for (int i = 0; i < nt; ++i)
                    if (activeMask[i] && singleIpcEst[i] <= 0.0)
                        needsSolo[i] = true;
        }
        for (int i = 0; i < nt; ++i)
            cpu.setThreadEnabled(static_cast<ThreadId>(i), activeMask[i]);
    }
    if (samplingThread < 0) {
        // Re-feasibility on detach: the freed shares are already
        // redistributed into the anchor; install it now rather than
        // letting the survivors run capped until the next boundary.
        if (numActive(nt) >= 2)
            cpu.setPartition(anchorPartition);
        else
            cpu.clearPartition();
    }
    if (EventTrace *evt = eventTraceRef.trace) {
        Json args = Json::object();
        args.set("thread", static_cast<int>(tid));
        args.set("anchor", shareJson(anchorPartition));
        evt->instant(cpu.now(), eventTraceRef.pid, kControlTid, "hill",
                     "churn.detach", std::move(args));
    }
}

IpcSample
HillClimbing::measureEpoch(const SmtCpu &cpu)
{
    // The software-cost stall at the previous boundary froze the
    // machine for the first cycles of this epoch, and callers may
    // drive boundaries at a cadence other than cfg.epochSize; both
    // would bias trial comparisons if IPC were computed over the
    // nominal epoch size, so divide by the cycles the measurement
    // window actually covered.
    IpcSample s;
    s.numThreads = cpu.numThreads();
    Cycle now = cpu.now();
    lastElapsed = now > lastEpochStart ? now - lastEpochStart : 1;
    const auto &committed = cpu.stats().committed;
    for (int i = 0; i < s.numThreads; ++i) {
        Cycle resident = lastElapsed;
        if (openSystemMode) {
            // Partial residency (the job attached or departed inside
            // this window) must not be charged as full residency: the
            // divisor is the cycles the context actually held a job.
            resident = residentAccum[i];
            if (activeMask[i]) {
                Cycle from = std::max(residentFrom[i], lastEpochStart);
                resident += now > from ? now - from : 0;
            }
            resident = std::min(resident, lastElapsed);
            if (resident == 0) {
                s.ipc[i] = 0.0;
                continue;
            }
        }
        s.ipc[i] = static_cast<double>(committed[i] - lastCommitted[i]) /
                   static_cast<double>(resident);
    }
    return s;
}

void
HillClimbing::beginSample(SmtCpu &cpu, int tid)
{
    samplingThread = tid;
    int nt = cpu.numThreads();
    for (int i = 0; i < nt; ++i)
        cpu.setThreadEnabled(static_cast<ThreadId>(i), i == tid);
    // The solo thread gets the whole machine during the sample.
    cpu.clearPartition();
    if (EventTrace *evt = eventTraceRef.trace) {
        Json args = Json::object();
        args.set("thread", tid);
        args.set("bootstrap", bootstrapPending > 0);
        evt->instant(cpu.now(), eventTraceRef.pid, kControlTid, "hill",
                     "sample.begin", std::move(args));
    }
}

void
HillClimbing::chargeBoundary(SmtCpu &cpu)
{
    // Charge the software implementation cost (Section 4.2) and note
    // where the next measurement window really starts: commits resume
    // only once the stall drains.
    cpu.stallUntil(cpu.now() + cfg.softwareCost);
    lastCommitted = cpu.stats().committed;
    lastEpochStart = cpu.now() + cfg.softwareCost;
    if (openSystemMode) {
        residentAccum.fill(0);
        for (int i = 0; i < cpu.numThreads(); ++i)
            residentFrom[i] = lastEpochStart;
    }
}

bool
HillClimbing::estimatesReady() const
{
    // Meaningful only for metrics that use the estimates.
    for (int i = 0; i < anchorPartition.numThreads; ++i)
        if (singleIpcEst[i] <= 0.0)
            return false;
    return anchorPartition.numThreads > 0;
}

void
HillClimbing::installTrial(SmtCpu &cpu)
{
    int nt = cpu.numThreads();
    int favored;
    if (openSystemMode) {
        int na = numActive(nt);
        if (na < 2) {
            // Nothing to partition: 0 or 1 jobs resident.
            cpu.clearPartition();
            return;
        }
        favored = activeAt(roundPos % na);
    } else {
        // Closed system: roundPos tracks algEpoch % nt exactly; keep
        // the Figure 8 indexing verbatim.
        favored = static_cast<int>(algEpoch % nt);
    }
    Partition trial =
        trialPartition(anchorPartition, favored, cfg.delta, cfg.minShare);
    cpu.setPartition(trial);
    if (EventTrace *evt = eventTraceRef.trace) {
        Json args = Json::object();
        args.set("alg_epoch", algEpoch);
        args.set("favored", favored);
        args.set("trial", shareJson(trial));
        evt->instant(cpu.now(), eventTraceRef.pid, kControlTid, "hill",
                     "trial.install", std::move(args));
    }
}

void
HillClimbing::traceEpoch(const SmtCpu &cpu, std::uint64_t epoch_id,
                         const IpcSample &sample, const Partition &trial,
                         bool was_partitioned, double metric_value,
                         int sampled_thread, int gradient_thread,
                         bool anchor_moved)
{
    if (!epochTracerPtr)
        return;
    EpochTraceRecord rec;
    rec.epochId = epoch_id;
    rec.cycle = cpu.now();
    rec.elapsedCycles = lastElapsed;
    rec.numThreads = sample.numThreads;
    for (int i = 0; i < sample.numThreads; ++i)
        rec.ipc[i] = sample.ipc[i];
    rec.metricValue = metric_value;
    rec.partitioned = was_partitioned;
    // Only a partitioned epoch has a meaningful trial; recording the
    // stale partition of an unpartitioned (solo-sampling) epoch made
    // in-memory records differ from their JSON export, which encodes
    // the trial of such epochs as null.
    rec.trial = was_partitioned ? trial : Partition{};
    rec.anchor = anchorPartition;
    rec.roundPerf = roundPerf;
    rec.singleIpcEst = singleIpcEst;
    rec.gradientThread = gradient_thread;
    rec.samplingThread = sampled_thread;
    rec.anchorMoved = anchor_moved;
    rec.softwareCost = cfg.softwareCost;
    epochTracerPtr->record(std::move(rec));
}

void
HillClimbing::epoch(SmtCpu &cpu, std::uint64_t epoch_id)
{
    int nt = cpu.numThreads();
    int na = numActive(nt);
    // Consume the churn flag: it covers the epoch that just ended.
    bool dirty = roundDirty;
    roundDirty = false;
    IpcSample sample = measureEpoch(cpu);
    // The partition the finished epoch actually ran under.
    Partition ran = cpu.partition();
    bool ran_partitioned = cpu.partitioningEnabled();

    EventTrace *evt = eventTraceRef.trace;
    int evtPid = eventTraceRef.pid;
    if (evt) {
        // The epoch that just finished, as one slice on the control
        // track covering the cycles the measurement actually saw.
        Json args = Json::object();
        args.set("epoch", epoch_id);
        args.set("kind", samplingThread >= 0 ? "sample" : "learn");
        args.set("ipc", ipcJson(sample));
        evt->complete(lastEpochStart,
                      static_cast<std::int64_t>(lastElapsed), evtPid,
                      kControlTid, "epoch", "epoch", std::move(args));
    }

    if (samplingThread >= 0) {
        // The epoch that just ended ran samplingThread solo; its IPC
        // is the thread's stand-alone IPC estimate. Resume normal
        // multithreaded execution without consuming a learning epoch.
        int sampled = samplingThread;
        singleIpcEst[sampled] = sample.ipc[sampled];
        needsSolo[sampled] = false;
        if (evt) {
            Json args = Json::object();
            args.set("thread", sampled);
            args.set("ipc", sample.ipc[sampled]);
            evt->instant(cpu.now(), evtPid, kControlTid, "hill",
                         "single_ipc.update", std::move(args));
        }
        if (bootstrapPending > 0)
            --bootstrapPending;
        if (bootstrapPending > 0) {
            // Attach-time bootstrap: chain straight into the next
            // thread's solo epoch until every estimate is populated.
            int next = sampleRotation;
            sampleRotation = (sampleRotation + 1) % nt;
            beginSample(cpu, next);
        } else {
            samplingThread = -1;
            for (int i = 0; i < nt; ++i)
                cpu.setThreadEnabled(static_cast<ThreadId>(i),
                                     !openSystemMode || activeMask[i]);
            int pending = na > 1 ? nextNeedsSolo() : -1;
            if (pending >= 0) {
                // Churn queued more re-bootstrap samples; chain them
                // like the attach-time bootstrap.
                beginSample(cpu, pending);
            } else {
                installTrial(cpu);
            }
        }
        traceEpoch(cpu, epoch_id, sample, ran, ran_partitioned,
                   sample.ipc[sampled], sampled, -1, false);
        chargeBoundary(cpu);
        return;
    }

    if (openSystemMode && na <= 1) {
        // Nothing to learn with 0 or 1 jobs resident — but a full,
        // churn-free solo stretch doubles as a free SingleIPC sample
        // for the lone job.
        double perf = evalActiveMetric(sample);
        int sampled = -1;
        if (na == 1) {
            int lone = activeAt(0);
            if (needsSolo[lone] && !dirty && !cpu.partitioningEnabled()) {
                singleIpcEst[lone] = sample.ipc[lone];
                needsSolo[lone] = false;
                sampled = lone;
                if (evt) {
                    Json args = Json::object();
                    args.set("thread", lone);
                    args.set("ipc", sample.ipc[lone]);
                    evt->instant(cpu.now(), evtPid, kControlTid, "hill",
                                 "single_ipc.update", std::move(args));
                }
            }
        }
        ++algEpoch;
        traceEpoch(cpu, epoch_id, sample, ran, ran_partitioned, perf,
                   sampled, -1, false);
        chargeBoundary(cpu);
        return;
    }

    // Figure 8 line 7: record the performance of the previous epoch.
    double perf = evalActiveMetric(sample);
    int gradient_thread = -1;
    bool anchor_moved = false;
    if (dirty) {
        // The finished epoch ran (at least partly) under a pre-churn
        // partition over a different active set; its measurement is
        // not comparable within the restarted round. Drop it and let
        // the new round begin with the trial installed below.
    } else {
        roundPerf[activeAt(roundPos)] = perf;

        // Figure 8 lines 8-15: at the end of a round, move the anchor
        // in favor of the best-performing trial (the positive
        // gradient).
        if (roundPos == na - 1) {
            gradient_thread = activeAt(0);
            for (int i = gradient_thread + 1; i < nt; ++i)
                if (activeMask[i] &&
                    roundPerf[i] > roundPerf[gradient_thread])
                    gradient_thread = i;
            anchor_moved = true;
        }
        roundPos = (roundPos + 1) % na;
    }
    if (anchor_moved) {
        Partition before = anchorPartition;
        Partition next = moveAnchor(anchorPartition, gradient_thread,
                                    cfg.delta, cfg.minShare);
        anchorPartition = overrideAnchor(cpu, next);
        if (evt) {
            // Decision audit: everything the gradient step looked at
            // and everything it decided, in one event.
            Json rp = Json::array();
            for (int i = 0; i < nt; ++i)
                rp.push(Json(roundPerf[i]));
            Json args = Json::object();
            args.set("alg_epoch", algEpoch);
            args.set("round_perf", std::move(rp));
            args.set("gradient", gradient_thread);
            args.set("delta", cfg.delta);
            args.set("anchor_before", shareJson(before));
            args.set("anchor_step", shareJson(next));
            args.set("anchor_after", shareJson(anchorPartition));
            evt->instant(cpu.now(), evtPid, kControlTid, "hill",
                         "anchor.move", std::move(args));
            evt->complete(roundStart,
                          static_cast<std::int64_t>(cpu.now() -
                                                    roundStart),
                          evtPid, kControlTid, "hill", "round");
        }
        roundStart = cpu.now();
    }

    ++algEpoch;

    // SingleIPC sampling (Section 4.2): every samplePeriod epochs,
    // run one thread solo for the next epoch. Only the weighted
    // metrics need stand-alone IPCs. Churn-queued re-bootstrap
    // samples (needsSolo) take priority over the periodic rotation.
    int pending = (cfg.sampleSingleIpc && needsSingleIpc() && na > 1)
                      ? nextNeedsSolo()
                      : -1;
    if (pending >= 0) {
        beginSample(cpu, pending);
    } else if (cfg.sampleSingleIpc && needsSingleIpc() && na > 1 &&
               ++epochsSinceSample >= cfg.samplePeriod) {
        epochsSinceSample = 0;
        int next = nextActiveFrom(sampleRotation, nt);
        sampleRotation = (next + 1) % nt;
        beginSample(cpu, next);
    } else {
        // Figure 8 lines 16-21: install the next trial partition.
        installTrial(cpu);
    }

    traceEpoch(cpu, epoch_id, sample, ran, ran_partitioned, perf, -1,
               gradient_thread, anchor_moved);
    chargeBoundary(cpu);
}

std::unique_ptr<ResourcePolicy>
HillClimbing::clone() const
{
    return std::make_unique<HillClimbing>(*this);
}

} // namespace smthill
