#include "core/hill_climbing.hh"

#include <algorithm>

#include "common/log.hh"

namespace smthill
{

HillClimbing::HillClimbing(HillConfig config) : cfg(config)
{
    if (cfg.delta < 1)
        fatal("HillClimbing: delta must be >= 1");
    if (cfg.epochSize < 1)
        fatal("HillClimbing: epoch size must be >= 1");
    singleIpcEst.fill(0.0);
}

std::string
HillClimbing::name() const
{
    switch (cfg.metric) {
      case PerfMetric::AvgIpc:
        return "HILL-IPC";
      case PerfMetric::WeightedIpc:
        return "HILL-WIPC";
      case PerfMetric::HarmonicWeightedIpc:
        return "HILL-HWIPC";
    }
    return "HILL";
}

void
HillClimbing::attach(SmtCpu &cpu)
{
    int nt = cpu.numThreads();
    // In the very first round the anchor defaults to an equal
    // partition for every thread (Figure 8, footnote).
    anchorPartition = Partition::equal(nt, cpu.config().intRegs);
    roundPerf.fill(0.0);
    lastCommitted = cpu.stats().committed;
    algEpoch = 0;
    epochsSinceSample = 0;
    sampleRotation = 0;
    samplingThread = -1;
    for (int i = 0; i < nt; ++i)
        cpu.setFetchLocked(static_cast<ThreadId>(i), false);
    installTrial(cpu);
}

IpcSample
HillClimbing::measureEpoch(const SmtCpu &cpu)
{
    IpcSample s;
    s.numThreads = cpu.numThreads();
    const auto &committed = cpu.stats().committed;
    for (int i = 0; i < s.numThreads; ++i) {
        s.ipc[i] = static_cast<double>(committed[i] - lastCommitted[i]) /
                   static_cast<double>(cfg.epochSize);
    }
    return s;
}

void
HillClimbing::installTrial(SmtCpu &cpu)
{
    int nt = cpu.numThreads();
    int favored = static_cast<int>(algEpoch % nt);
    Partition trial =
        trialPartition(anchorPartition, favored, cfg.delta, cfg.minShare);
    cpu.setPartition(trial);
}

void
HillClimbing::epoch(SmtCpu &cpu, std::uint64_t)
{
    int nt = cpu.numThreads();
    IpcSample sample = measureEpoch(cpu);
    lastCommitted = cpu.stats().committed;

    if (samplingThread >= 0) {
        // The epoch that just ended ran samplingThread solo; its IPC
        // is the thread's stand-alone IPC estimate. Resume normal
        // multithreaded execution without consuming a learning epoch.
        singleIpcEst[samplingThread] = sample.ipc[samplingThread];
        for (int i = 0; i < nt; ++i)
            cpu.setThreadEnabled(static_cast<ThreadId>(i), true);
        samplingThread = -1;
        installTrial(cpu);
        cpu.stallUntil(cpu.now() + cfg.softwareCost);
        return;
    }

    // Figure 8 line 7: record the performance of the previous epoch.
    roundPerf[algEpoch % nt] = evalMetric(cfg.metric, sample, singleIpcEst);

    // Figure 8 lines 8-15: at the end of a round, move the anchor in
    // favor of the best-performing trial (the positive gradient).
    if (algEpoch % nt == static_cast<std::uint64_t>(nt - 1)) {
        int gradient_thread = 0;
        for (int i = 1; i < nt; ++i)
            if (roundPerf[i] > roundPerf[gradient_thread])
                gradient_thread = i;
        Partition next = moveAnchor(anchorPartition, gradient_thread,
                                    cfg.delta, cfg.minShare);
        anchorPartition = overrideAnchor(cpu, next);
    }

    ++algEpoch;

    // SingleIPC sampling (Section 4.2): every samplePeriod epochs,
    // run one thread solo for the next epoch. Only the weighted
    // metrics need stand-alone IPCs.
    bool needs_single = cfg.metric != PerfMetric::AvgIpc;
    if (cfg.sampleSingleIpc && needs_single && nt > 1 &&
        ++epochsSinceSample >= cfg.samplePeriod) {
        epochsSinceSample = 0;
        samplingThread = sampleRotation;
        sampleRotation = (sampleRotation + 1) % nt;
        for (int i = 0; i < nt; ++i)
            cpu.setThreadEnabled(static_cast<ThreadId>(i),
                                 i == samplingThread);
        // The solo thread gets the whole machine during the sample.
        cpu.clearPartition();
    } else {
        // Figure 8 lines 16-21: install the next trial partition.
        installTrial(cpu);
    }

    // Charge the software implementation cost (Section 4.2).
    cpu.stallUntil(cpu.now() + cfg.softwareCost);
}

std::unique_ptr<ResourcePolicy>
HillClimbing::clone() const
{
    return std::make_unique<HillClimbing>(*this);
}

} // namespace smthill
