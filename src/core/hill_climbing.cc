#include "core/hill_climbing.hh"

#include <algorithm>

#include "common/log.hh"

namespace smthill
{

namespace
{

Json
shareJson(const Partition &p)
{
    Json arr = Json::array();
    for (int i = 0; i < p.numThreads; ++i)
        arr.push(Json(p.share[i]));
    return arr;
}

Json
ipcJson(const IpcSample &s)
{
    Json arr = Json::array();
    for (int i = 0; i < s.numThreads; ++i)
        arr.push(Json(s.ipc[i]));
    return arr;
}

} // namespace

HillClimbing::HillClimbing(HillConfig config) : cfg(config)
{
    if (cfg.delta < 1)
        fatal("HillClimbing: delta must be >= 1");
    if (cfg.epochSize < 1)
        fatal("HillClimbing: epoch size must be >= 1");
    singleIpcEst.fill(0.0);
}

std::string
HillClimbing::name() const
{
    switch (cfg.metric) {
      case PerfMetric::AvgIpc:
        return "HILL-IPC";
      case PerfMetric::WeightedIpc:
        return "HILL-WIPC";
      case PerfMetric::HarmonicWeightedIpc:
        return "HILL-HWIPC";
    }
    return "HILL";
}

void
HillClimbing::attach(SmtCpu &cpu)
{
    int nt = cpu.numThreads();
    // In the very first round the anchor defaults to an equal
    // partition for every thread (Figure 8, footnote).
    anchorPartition = Partition::equal(nt, cpu.config().intRegs);
    roundPerf.fill(0.0);
    singleIpcEst.fill(0.0);
    lastCommitted = cpu.stats().committed;
    lastEpochStart = cpu.now();
    roundStart = cpu.now();
    lastElapsed = 0;
    algEpoch = 0;
    epochsSinceSample = 0;
    sampleRotation = 0;
    samplingThread = -1;
    bootstrapPending = 0;
    for (int i = 0; i < nt; ++i)
        cpu.setFetchLocked(static_cast<ThreadId>(i), false);

    // Bootstrap the stand-alone IPC estimates (Section 4.2): before
    // any estimate exists, WIPC/HWIPC degenerate into raw-IPC
    // learning (evalMetric's solo() fallback), so the first epochs
    // sample every thread solo once. Learning epochs begin only
    // after the last bootstrap sample lands.
    if (cfg.sampleSingleIpc && needsSingleIpc() && nt > 1) {
        bootstrapPending = nt;
        beginSample(cpu, 0);
        sampleRotation = 1 % nt;
    } else {
        installTrial(cpu);
    }
}

IpcSample
HillClimbing::measureEpoch(const SmtCpu &cpu)
{
    // The software-cost stall at the previous boundary froze the
    // machine for the first cycles of this epoch, and callers may
    // drive boundaries at a cadence other than cfg.epochSize; both
    // would bias trial comparisons if IPC were computed over the
    // nominal epoch size, so divide by the cycles the measurement
    // window actually covered.
    IpcSample s;
    s.numThreads = cpu.numThreads();
    Cycle now = cpu.now();
    lastElapsed = now > lastEpochStart ? now - lastEpochStart : 1;
    const auto &committed = cpu.stats().committed;
    for (int i = 0; i < s.numThreads; ++i) {
        s.ipc[i] = static_cast<double>(committed[i] - lastCommitted[i]) /
                   static_cast<double>(lastElapsed);
    }
    return s;
}

void
HillClimbing::beginSample(SmtCpu &cpu, int tid)
{
    samplingThread = tid;
    int nt = cpu.numThreads();
    for (int i = 0; i < nt; ++i)
        cpu.setThreadEnabled(static_cast<ThreadId>(i), i == tid);
    // The solo thread gets the whole machine during the sample.
    cpu.clearPartition();
    if (EventTrace *evt = eventTraceRef.trace) {
        Json args = Json::object();
        args.set("thread", tid);
        args.set("bootstrap", bootstrapPending > 0);
        evt->instant(cpu.now(), eventTraceRef.pid, kControlTid, "hill",
                     "sample.begin", std::move(args));
    }
}

void
HillClimbing::chargeBoundary(SmtCpu &cpu)
{
    // Charge the software implementation cost (Section 4.2) and note
    // where the next measurement window really starts: commits resume
    // only once the stall drains.
    cpu.stallUntil(cpu.now() + cfg.softwareCost);
    lastCommitted = cpu.stats().committed;
    lastEpochStart = cpu.now() + cfg.softwareCost;
}

bool
HillClimbing::estimatesReady() const
{
    // Meaningful only for metrics that use the estimates.
    for (int i = 0; i < anchorPartition.numThreads; ++i)
        if (singleIpcEst[i] <= 0.0)
            return false;
    return anchorPartition.numThreads > 0;
}

void
HillClimbing::installTrial(SmtCpu &cpu)
{
    int nt = cpu.numThreads();
    int favored = static_cast<int>(algEpoch % nt);
    Partition trial =
        trialPartition(anchorPartition, favored, cfg.delta, cfg.minShare);
    cpu.setPartition(trial);
    if (EventTrace *evt = eventTraceRef.trace) {
        Json args = Json::object();
        args.set("alg_epoch", algEpoch);
        args.set("favored", favored);
        args.set("trial", shareJson(trial));
        evt->instant(cpu.now(), eventTraceRef.pid, kControlTid, "hill",
                     "trial.install", std::move(args));
    }
}

void
HillClimbing::traceEpoch(const SmtCpu &cpu, std::uint64_t epoch_id,
                         const IpcSample &sample, const Partition &trial,
                         bool was_partitioned, double metric_value,
                         int sampled_thread, int gradient_thread,
                         bool anchor_moved)
{
    if (!epochTracerPtr)
        return;
    EpochTraceRecord rec;
    rec.epochId = epoch_id;
    rec.cycle = cpu.now();
    rec.elapsedCycles = lastElapsed;
    rec.numThreads = sample.numThreads;
    for (int i = 0; i < sample.numThreads; ++i)
        rec.ipc[i] = sample.ipc[i];
    rec.metricValue = metric_value;
    rec.partitioned = was_partitioned;
    // Only a partitioned epoch has a meaningful trial; recording the
    // stale partition of an unpartitioned (solo-sampling) epoch made
    // in-memory records differ from their JSON export, which encodes
    // the trial of such epochs as null.
    rec.trial = was_partitioned ? trial : Partition{};
    rec.anchor = anchorPartition;
    rec.roundPerf = roundPerf;
    rec.singleIpcEst = singleIpcEst;
    rec.gradientThread = gradient_thread;
    rec.samplingThread = sampled_thread;
    rec.anchorMoved = anchor_moved;
    rec.softwareCost = cfg.softwareCost;
    epochTracerPtr->record(std::move(rec));
}

void
HillClimbing::epoch(SmtCpu &cpu, std::uint64_t epoch_id)
{
    int nt = cpu.numThreads();
    IpcSample sample = measureEpoch(cpu);
    // The partition the finished epoch actually ran under.
    Partition ran = cpu.partition();
    bool ran_partitioned = cpu.partitioningEnabled();

    EventTrace *evt = eventTraceRef.trace;
    int evtPid = eventTraceRef.pid;
    if (evt) {
        // The epoch that just finished, as one slice on the control
        // track covering the cycles the measurement actually saw.
        Json args = Json::object();
        args.set("epoch", epoch_id);
        args.set("kind", samplingThread >= 0 ? "sample" : "learn");
        args.set("ipc", ipcJson(sample));
        evt->complete(lastEpochStart,
                      static_cast<std::int64_t>(lastElapsed), evtPid,
                      kControlTid, "epoch", "epoch", std::move(args));
    }

    if (samplingThread >= 0) {
        // The epoch that just ended ran samplingThread solo; its IPC
        // is the thread's stand-alone IPC estimate. Resume normal
        // multithreaded execution without consuming a learning epoch.
        int sampled = samplingThread;
        singleIpcEst[sampled] = sample.ipc[sampled];
        if (evt) {
            Json args = Json::object();
            args.set("thread", sampled);
            args.set("ipc", sample.ipc[sampled]);
            evt->instant(cpu.now(), evtPid, kControlTid, "hill",
                         "single_ipc.update", std::move(args));
        }
        if (bootstrapPending > 0)
            --bootstrapPending;
        if (bootstrapPending > 0) {
            // Attach-time bootstrap: chain straight into the next
            // thread's solo epoch until every estimate is populated.
            int next = sampleRotation;
            sampleRotation = (sampleRotation + 1) % nt;
            beginSample(cpu, next);
        } else {
            samplingThread = -1;
            for (int i = 0; i < nt; ++i)
                cpu.setThreadEnabled(static_cast<ThreadId>(i), true);
            installTrial(cpu);
        }
        traceEpoch(cpu, epoch_id, sample, ran, ran_partitioned,
                   sample.ipc[sampled], sampled, -1, false);
        chargeBoundary(cpu);
        return;
    }

    // Figure 8 line 7: record the performance of the previous epoch.
    double perf = evalMetric(cfg.metric, sample, singleIpcEst);
    roundPerf[algEpoch % nt] = perf;

    // Figure 8 lines 8-15: at the end of a round, move the anchor in
    // favor of the best-performing trial (the positive gradient).
    int gradient_thread = -1;
    bool anchor_moved = false;
    if (algEpoch % nt == static_cast<std::uint64_t>(nt - 1)) {
        gradient_thread = 0;
        for (int i = 1; i < nt; ++i)
            if (roundPerf[i] > roundPerf[gradient_thread])
                gradient_thread = i;
        Partition before = anchorPartition;
        Partition next = moveAnchor(anchorPartition, gradient_thread,
                                    cfg.delta, cfg.minShare);
        anchorPartition = overrideAnchor(cpu, next);
        anchor_moved = true;
        if (evt) {
            // Decision audit: everything the gradient step looked at
            // and everything it decided, in one event.
            Json rp = Json::array();
            for (int i = 0; i < nt; ++i)
                rp.push(Json(roundPerf[i]));
            Json args = Json::object();
            args.set("alg_epoch", algEpoch);
            args.set("round_perf", std::move(rp));
            args.set("gradient", gradient_thread);
            args.set("delta", cfg.delta);
            args.set("anchor_before", shareJson(before));
            args.set("anchor_step", shareJson(next));
            args.set("anchor_after", shareJson(anchorPartition));
            evt->instant(cpu.now(), evtPid, kControlTid, "hill",
                         "anchor.move", std::move(args));
            evt->complete(roundStart,
                          static_cast<std::int64_t>(cpu.now() -
                                                    roundStart),
                          evtPid, kControlTid, "hill", "round");
        }
        roundStart = cpu.now();
    }

    ++algEpoch;

    // SingleIPC sampling (Section 4.2): every samplePeriod epochs,
    // run one thread solo for the next epoch. Only the weighted
    // metrics need stand-alone IPCs.
    if (cfg.sampleSingleIpc && needsSingleIpc() && nt > 1 &&
        ++epochsSinceSample >= cfg.samplePeriod) {
        epochsSinceSample = 0;
        int next = sampleRotation;
        sampleRotation = (sampleRotation + 1) % nt;
        beginSample(cpu, next);
    } else {
        // Figure 8 lines 16-21: install the next trial partition.
        installTrial(cpu);
    }

    traceEpoch(cpu, epoch_id, sample, ran, ran_partitioned, perf, -1,
               gradient_thread, anchor_moved);
    chargeBoundary(cpu);
}

std::unique_ptr<ResourcePolicy>
HillClimbing::clone() const
{
    return std::make_unique<HillClimbing>(*this);
}

} // namespace smthill
