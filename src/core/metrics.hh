/**
 * @file
 * The three SMT performance metrics of Section 3.1.1:
 * average IPC (throughput), average weighted IPC (execution-time
 * reduction), and harmonic mean of weighted IPC (throughput +
 * fairness). The weighted metrics normalize each thread's IPC by its
 * stand-alone (solo) IPC.
 */

#ifndef SMTHILL_CORE_METRICS_HH
#define SMTHILL_CORE_METRICS_HH

#include <array>
#include <string>

#include "memory/hierarchy.hh" // kMaxThreads

namespace smthill
{

/** Which performance goal a learner optimizes / an evaluation uses. */
enum class PerfMetric
{
    AvgIpc,             ///< Equation 1: sum of per-thread IPCs
    WeightedIpc,        ///< Equation 2: mean of IPC_i / SingleIPC_i
    HarmonicWeightedIpc ///< Equation 3: T / sum(SingleIPC_i / IPC_i)
};

/** @return a printable name ("IPC", "WIPC", "HWIPC"). */
const char *metricName(PerfMetric metric);

/** Per-thread IPCs measured over one interval. */
struct IpcSample
{
    std::array<double, kMaxThreads> ipc{};
    int numThreads = 0;
};

/**
 * Evaluate @p metric for @p sample.
 * @param single_ipc per-thread stand-alone IPCs; entries <= 0 are
 *        treated as 1.0 (i.e., unnormalized) so learners can operate
 *        before their first SingleIPC sample arrives
 */
double evalMetric(PerfMetric metric, const IpcSample &sample,
                  const std::array<double, kMaxThreads> &single_ipc);

/** Convenience: evaluate with all SingleIPCs = 1. */
double evalMetric(PerfMetric metric, const IpcSample &sample);

/**
 * Evaluate @p metric over the active subset of @p sample only
 * (open-system churn: idle hardware contexts hold no job). Inactive
 * entries are dropped before evaluation rather than contributing
 * zeros — a zero-IPC idle context would zero the harmonic mean and
 * dilute the weighted mean, which is exactly the bug this exists to
 * avoid. Equivalent to evalMetric on the compacted sample.
 */
double evalMetricMasked(PerfMetric metric, const IpcSample &sample,
                        const std::array<double, kMaxThreads> &single_ipc,
                        const std::array<bool, kMaxThreads> &active);

} // namespace smthill

#endif // SMTHILL_CORE_METRICS_HH
