/**
 * @file
 * OFF-LINE exhaustive learning (Section 3.1): the ideal learner used
 * for the limit study. At each epoch boundary the whole machine is
 * checkpointed; every enumerated partitioning of the integer rename
 * registers is tried for one epoch from the checkpoint; the best
 * trial's partitioning is then used to advance the machine, and only
 * that epoch is charged to execution time.
 *
 * Restricted to 2 hardware contexts, like the paper (the exhaustive
 * trial count is exponential in the thread count).
 */

#ifndef SMTHILL_CORE_OFFLINE_EXHAUSTIVE_HH
#define SMTHILL_CORE_OFFLINE_EXHAUSTIVE_HH

#include <array>
#include <memory>
#include <vector>

#include "common/thread_pool.hh"
#include "core/machine_arena.hh"
#include "core/metrics.hh"
#include "core/partitioning.hh"
#include "pipeline/cpu.hh"

namespace smthill
{

/**
 * Run one epoch from a copy of @p checkpoint under a fixed
 * @p partition, with no per-cycle policy actions.
 * @param[out] advanced if non-null, receives the machine state at
 *             the end of the epoch (for committing to this trial)
 * @return per-thread IPCs over the epoch
 */
IpcSample runFixedPartitionEpoch(const SmtCpu &checkpoint,
                                 const Partition &partition,
                                 Cycle epoch_size,
                                 SmtCpu *advanced = nullptr);

/**
 * Measure one epoch on an already-restored trial machine (typically a
 * MachineArena machine just restored to the checkpoint): install the
 * partition, run @p epoch_size cycles, and return per-thread IPCs.
 * The machine is left in its end-of-epoch state; callers restore it
 * again before the next trial. Bit-identical to the value-copy path
 * of runFixedPartitionEpoch.
 */
IpcSample runTrialEpoch(SmtCpu &trial, const Partition &partition,
                        Cycle epoch_size);

/** OFF-LINE configuration. */
struct OfflineConfig
{
    Cycle epochSize = 64 * 1024;
    int stride = 2;  ///< enumeration step (2 = the paper's 127 trials)
    PerfMetric metric = PerfMetric::WeightedIpc;
    /** Stand-alone IPCs (known a priori in the off-line setting). */
    std::array<double, kMaxThreads> singleIpc{};
    bool keepCurves = false; ///< retain metric-vs-partition curves
    /**
     * Worker threads for the trial sweep; results are bit-identical
     * for every value (jobs == 1 is the exact serial path).
     */
    int jobs = 1;
};

/** Record of one committed epoch. */
struct OfflineEpoch
{
    Partition best;        ///< chosen (best) partitioning
    IpcSample ipc;         ///< per-thread IPCs of the committed epoch
    double metricValue = 0.0;
    /** share of thread 0 for each trial (when keepCurves). */
    std::vector<int> curveShares;
    /** metric of each trial (when keepCurves). */
    std::vector<double> curve;
};

/** Result of an OFF-LINE run. */
struct OfflineResult
{
    std::vector<OfflineEpoch> epochs;

    /** @return mean metric value across committed epochs. */
    double meanMetric() const;
};

/** The OFF-LINE exhaustive learner. */
class OfflineExhaustive
{
  public:
    explicit OfflineExhaustive(OfflineConfig config = OfflineConfig{});

    /**
     * Checkpoint @p cpu, exhaustively evaluate one epoch, then
     * advance @p cpu through that epoch under the best partitioning.
     */
    OfflineEpoch stepEpoch(SmtCpu &cpu) const;

    /** Run @p num_epochs epochs, advancing @p cpu along the way. */
    OfflineResult run(SmtCpu &cpu, int num_epochs) const;

    const OfflineConfig &config() const { return cfg; }

  private:
    OfflineConfig cfg;
    /** Trial-sweep pool, shared by copies of the learner. */
    std::shared_ptr<ThreadPool> pool;
    /**
     * Warm per-worker trial machines, shared by copies of the learner
     * like the pool. A learner (including its copies) must not run
     * stepEpoch concurrently from multiple threads — the arena's
     * per-worker exclusivity holds within one sweep at a time.
     */
    std::shared_ptr<MachineArena> arena;
};

} // namespace smthill

#endif // SMTHILL_CORE_OFFLINE_EXHAUSTIVE_HH
