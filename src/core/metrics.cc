#include "core/metrics.hh"

namespace smthill
{

const char *
metricName(PerfMetric metric)
{
    switch (metric) {
      case PerfMetric::AvgIpc:
        return "IPC";
      case PerfMetric::WeightedIpc:
        return "WIPC";
      case PerfMetric::HarmonicWeightedIpc:
        return "HWIPC";
    }
    return "?";
}

double
evalMetric(PerfMetric metric, const IpcSample &sample,
           const std::array<double, kMaxThreads> &single_ipc)
{
    int nt = sample.numThreads;
    if (nt <= 0)
        return 0.0;

    auto solo = [&](int i) {
        double s = single_ipc[i];
        return s > 0.0 ? s : 1.0;
    };

    switch (metric) {
      case PerfMetric::AvgIpc: {
        double sum = 0.0;
        for (int i = 0; i < nt; ++i)
            sum += sample.ipc[i];
        return sum;
      }
      case PerfMetric::WeightedIpc: {
        double sum = 0.0;
        for (int i = 0; i < nt; ++i)
            sum += sample.ipc[i] / solo(i);
        return sum / nt;
      }
      case PerfMetric::HarmonicWeightedIpc: {
        double denom = 0.0;
        for (int i = 0; i < nt; ++i) {
            double ipc = sample.ipc[i];
            if (ipc <= 0.0)
                return 0.0; // a starved thread zeroes the harmonic mean
            denom += solo(i) / ipc;
        }
        return static_cast<double>(nt) / denom;
      }
    }
    return 0.0;
}

double
evalMetric(PerfMetric metric, const IpcSample &sample)
{
    std::array<double, kMaxThreads> ones;
    ones.fill(1.0);
    return evalMetric(metric, sample, ones);
}

double
evalMetricMasked(PerfMetric metric, const IpcSample &sample,
                 const std::array<double, kMaxThreads> &single_ipc,
                 const std::array<bool, kMaxThreads> &active)
{
    IpcSample compact;
    std::array<double, kMaxThreads> solo{};
    int j = 0;
    for (int i = 0; i < sample.numThreads; ++i) {
        if (!active[i])
            continue;
        compact.ipc[j] = sample.ipc[i];
        solo[j] = single_ipc[i];
        ++j;
    }
    compact.numThreads = j;
    return evalMetric(metric, compact, solo);
}

} // namespace smthill
