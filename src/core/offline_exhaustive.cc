#include "core/offline_exhaustive.hh"

#include "common/log.hh"
#include "common/profile.hh"

namespace smthill
{

IpcSample
runTrialEpoch(SmtCpu &trial, const Partition &partition, Cycle epoch_size)
{
    SMTHILL_PROF_SCOPE("offline.trial_epoch");
    trial.setPartition(partition);
    auto before = trial.stats().committed;
    trial.run(epoch_size);

    IpcSample s;
    s.numThreads = trial.numThreads();
    for (int i = 0; i < s.numThreads; ++i) {
        s.ipc[i] =
            static_cast<double>(trial.stats().committed[i] - before[i]) /
            static_cast<double>(epoch_size);
    }
    return s;
}

IpcSample
runFixedPartitionEpoch(const SmtCpu &checkpoint, const Partition &partition,
                       Cycle epoch_size, SmtCpu *advanced)
{
    // One copy per committed epoch (not per trial); the committing
    // run keeps the checkpoint's observer attachments, which a
    // MachineArena restore deliberately drops.
    SmtCpu trial = checkpoint; // smthill-lint: allow(cpu-copy-hot-path)
    if (!advanced) {
        // Machine copies share the checkpoint's tracer/observer
        // pointers, which are not thread-safe; pure trial epochs may
        // run concurrently, so they run unobserved. The committing
        // run (advanced != nullptr) is always serial and keeps them,
        // so the machine handed back retains its attachments.
        trial.setTracer(nullptr);
        trial.setBranchObserver(nullptr, nullptr);
        trial.setLoadObserver(nullptr, nullptr);
    }
    IpcSample s = runTrialEpoch(trial, partition, epoch_size);
    if (advanced)
        *advanced = std::move(trial);
    return s;
}

double
OfflineResult::meanMetric() const
{
    if (epochs.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &e : epochs)
        sum += e.metricValue;
    return sum / static_cast<double>(epochs.size());
}

OfflineExhaustive::OfflineExhaustive(OfflineConfig config)
    : cfg(config),
      pool(std::make_shared<ThreadPool>(cfg.jobs < 1 ? 1 : cfg.jobs)),
      arena(std::make_shared<MachineArena>(pool->jobs()))
{
    if (cfg.stride < 1)
        fatal("OfflineExhaustive: stride must be >= 1");
}

OfflineEpoch
OfflineExhaustive::stepEpoch(SmtCpu &cpu) const
{
    SMTHILL_PROF_SCOPE("offline.step_epoch");
    if (cpu.numThreads() != 2)
        fatal("OfflineExhaustive: exhaustive search supports exactly "
              "2 hardware contexts (use RandHill for more)");

    // One checkpoint capture per epoch; trials restore from it via
    // the arena below.
    const SmtCpu checkpoint = cpu; // smthill-lint: allow(cpu-copy-hot-path)
    const int total = cpu.config().intRegs;

    // Every trial is an independent function of the checkpoint, so
    // the sweep fans out across the pool. Results land in per-trial
    // slots and are reduced below in enumeration order, making the
    // chosen partition (first strict maximum, i.e. lowest share[0]
    // among exact ties) bit-identical to the serial jobs=1 path.
    const std::vector<Partition> trials =
        enumeratePartitions2(total, cfg.stride);
    std::vector<IpcSample> samples(trials.size());
    std::vector<double> metrics(trials.size());
    pool->parallelForWorker(trials.size(), [&](std::size_t i, int worker) {
        // Restore the worker's warm machine instead of copy-
        // constructing a fresh SmtCpu per trial.
        SmtCpu &trial = arena->acquire(worker, checkpoint);
        samples[i] = runTrialEpoch(trial, trials[i], cfg.epochSize);
        metrics[i] = evalMetric(cfg.metric, samples[i], cfg.singleIpc);
    });

    OfflineEpoch rec;
    double best_metric = -1.0;
    Partition best;
    IpcSample best_ipc;

    for (std::size_t i = 0; i < trials.size(); ++i) {
        if (cfg.keepCurves) {
            // Diagnostic curves are opt-in (keepCurves) and amortized
            // at one sample per trial; sweeps leave this off.
            rec.curveShares.push_back(trials[i].share[0]); // smthill-lint: allow(hot-path-allocation)
            rec.curve.push_back(metrics[i]); // smthill-lint: allow(hot-path-allocation)
        }
        if (metrics[i] > best_metric) {
            best_metric = metrics[i];
            best = trials[i];
            best_ipc = samples[i];
        }
    }

    // Commit: advance the real machine through the best trial. Only
    // this epoch is charged to execution time.
    rec.ipc = runFixedPartitionEpoch(checkpoint, best, cfg.epochSize, &cpu);
    rec.best = best;
    rec.metricValue = best_metric;
    return rec;
}

OfflineResult
OfflineExhaustive::run(SmtCpu &cpu, int num_epochs) const
{
    OfflineResult res;
    // The preallocation itself: one reserve up front, then every
    // per-epoch push_back lands in already-committed storage.
    res.epochs.reserve(num_epochs); // smthill-lint: allow(hot-path-allocation)
    for (int e = 0; e < num_epochs; ++e)
        res.epochs.push_back(stepEpoch(cpu)); // smthill-lint: allow(hot-path-allocation)
    return res;
}

} // namespace smthill
