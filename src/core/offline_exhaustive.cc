#include "core/offline_exhaustive.hh"

#include "common/log.hh"

namespace smthill
{

IpcSample
runFixedPartitionEpoch(const SmtCpu &checkpoint, const Partition &partition,
                       Cycle epoch_size, SmtCpu *advanced)
{
    SmtCpu trial = checkpoint;
    trial.setPartition(partition);
    auto before = trial.stats().committed;
    trial.run(epoch_size);

    IpcSample s;
    s.numThreads = trial.numThreads();
    for (int i = 0; i < s.numThreads; ++i) {
        s.ipc[i] =
            static_cast<double>(trial.stats().committed[i] - before[i]) /
            static_cast<double>(epoch_size);
    }
    if (advanced)
        *advanced = std::move(trial);
    return s;
}

double
OfflineResult::meanMetric() const
{
    if (epochs.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &e : epochs)
        sum += e.metricValue;
    return sum / static_cast<double>(epochs.size());
}

OfflineExhaustive::OfflineExhaustive(OfflineConfig config) : cfg(config)
{
    if (cfg.stride < 1)
        fatal("OfflineExhaustive: stride must be >= 1");
}

OfflineEpoch
OfflineExhaustive::stepEpoch(SmtCpu &cpu) const
{
    if (cpu.numThreads() != 2)
        fatal("OfflineExhaustive: exhaustive search supports exactly "
              "2 hardware contexts (use RandHill for more)");

    const SmtCpu checkpoint = cpu;
    const int total = cpu.config().intRegs;

    OfflineEpoch rec;
    double best_metric = -1.0;
    Partition best;
    IpcSample best_ipc;

    for (const Partition &p : enumeratePartitions2(total, cfg.stride)) {
        IpcSample s = runFixedPartitionEpoch(checkpoint, p, cfg.epochSize);
        double m = evalMetric(cfg.metric, s, cfg.singleIpc);
        if (cfg.keepCurves) {
            rec.curveShares.push_back(p.share[0]);
            rec.curve.push_back(m);
        }
        if (m > best_metric) {
            best_metric = m;
            best = p;
            best_ipc = s;
        }
    }

    // Commit: advance the real machine through the best trial. Only
    // this epoch is charged to execution time.
    rec.ipc = runFixedPartitionEpoch(checkpoint, best, cfg.epochSize, &cpu);
    rec.best = best;
    rec.metricValue = best_metric;
    return rec;
}

OfflineResult
OfflineExhaustive::run(SmtCpu &cpu, int num_epochs) const
{
    OfflineResult res;
    res.epochs.reserve(num_epochs);
    for (int e = 0; e < num_epochs; ++e)
        res.epochs.push_back(stepEpoch(cpu));
    return res;
}

} // namespace smthill
