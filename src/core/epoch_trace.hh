/**
 * @file
 * Per-epoch observability for the learning policies: an EpochTracer
 * collects one EpochTraceRecord per epoch boundary — measured
 * per-thread IPCs over the *actual* elapsed cycles, the trial and
 * anchor partitions, per-trial metric values of the current round,
 * the chosen gradient thread, SingleIPC estimate state, and the
 * software cost charged — so Figure 5/12-style time-varying traces
 * fall out of any run as machine-readable JSON or CSV instead of
 * stdout scraping.
 *
 * Schema (`smthill.epoch-trace.v1`): a top-level object
 *   { "schema": "smthill.epoch-trace.v1",
 *     "metric": "WIPC" | "IPC" | "HWIPC",
 *     "num_threads": N,
 *     "epochs": [ { "epoch": id, "cycle": c, "elapsed_cycles": e,
 *       "ipc": [..N], "metric_value": m, "trial": [..N] | null,
 *       "anchor": [..N], "round_perf": [..N],
 *       "single_ipc_est": [..N], "gradient_thread": g | -1,
 *       "sampling_thread": s | -1, "anchor_moved": bool,
 *       "software_cost": cycles }, ... ] }
 * The CSV export flattens the same fields, one row per epoch.
 */

#ifndef SMTHILL_CORE_EPOCH_TRACE_HH
#define SMTHILL_CORE_EPOCH_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "core/metrics.hh"
#include "pipeline/resources.hh"

namespace smthill
{

/** Everything observable about one epoch of a learning run. */
struct EpochTraceRecord
{
    std::uint64_t epochId = 0;    ///< runner epoch index
    Cycle cycle = 0;              ///< machine cycle at the boundary
    Cycle elapsedCycles = 0;      ///< cycles actually measured
    int numThreads = 0;
    std::array<double, kMaxThreads> ipc{};    ///< per-thread epoch IPC
    double metricValue = 0.0;     ///< feedback metric of the epoch
    bool partitioned = false;     ///< trial partition was enforced
    Partition trial;              ///< partition during the epoch
    Partition anchor;             ///< anchor after this epoch's update
    std::array<double, kMaxThreads> roundPerf{};
    std::array<double, kMaxThreads> singleIpcEst{};
    int gradientThread = -1;      ///< chosen on round-end epochs
    int samplingThread = -1;      ///< thread that ran solo, or -1
    bool anchorMoved = false;     ///< a round ended at this boundary
    Cycle softwareCost = 0;       ///< stall charged at the boundary

    /** Field-wise equality (round-trip tests). */
    bool operator==(const EpochTraceRecord &) const = default;
};

/** Accumulates records and exports them as JSON or CSV. */
class EpochTracer
{
  public:
    /** Append one epoch's record. */
    void record(EpochTraceRecord rec) { recs.push_back(std::move(rec)); }

    const std::vector<EpochTraceRecord> &records() const { return recs; }
    std::size_t size() const { return recs.size(); }
    bool empty() const { return recs.empty(); }
    void clear() { recs.clear(); }

    /** @param metric the feedback metric label for the header */
    Json toJson(PerfMetric metric) const;

    /** Flat CSV: header line + one row per epoch. */
    std::string toCsv() const;

    /**
     * Rebuild records from a toJson() export (round-trip tests and
     * external consumers re-deriving figure series).
     * @return false with @p error set if @p j is not a v1 trace
     */
    static bool fromJson(const Json &j,
                         std::vector<EpochTraceRecord> &out,
                         std::string &error);

  private:
    std::vector<EpochTraceRecord> recs;
};

} // namespace smthill

#endif // SMTHILL_CORE_EPOCH_TRACE_HH
