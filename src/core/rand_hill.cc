#include "core/rand_hill.hh"

#include <algorithm>

#include "common/log.hh"

namespace smthill
{

RandHill::RandHill(RandHillConfig config) : cfg(config), rng(cfg.seed)
{
    if (cfg.iterations < 1)
        fatal("RandHill: need at least one iteration");
    if (cfg.delta < 1)
        fatal("RandHill: delta must be >= 1");
}

Partition
RandHill::randomPartition(int threads, int total)
{
    // Draw raw weights, then scale onto the simplex with a floor.
    std::array<double, kMaxThreads> w{};
    double sum = 0.0;
    for (int i = 0; i < threads; ++i) {
        w[i] = 0.05 + rng.nextDouble();
        sum += w[i];
    }
    Partition p;
    p.numThreads = threads;
    int assigned = 0;
    for (int i = 0; i < threads; ++i) {
        int share = std::max(
            cfg.minShare, static_cast<int>(w[i] / sum * total));
        p.share[i] = share;
        assigned += share;
    }
    // Repair the total by adjusting the largest share.
    int richest = 0;
    for (int i = 1; i < threads; ++i)
        if (p.share[i] > p.share[richest])
            richest = i;
    p.share[richest] += total - assigned;
    if (p.share[richest] < cfg.minShare)
        return Partition::equal(threads, total);
    return p;
}

OfflineEpoch
RandHill::stepEpoch(SmtCpu &cpu)
{
    const SmtCpu checkpoint = cpu;
    const int nt = cpu.numThreads();
    const int total = cpu.config().intRegs;

    Partition anchor = Partition::equal(nt, total);
    std::array<double, kMaxThreads> round_perf{};
    double pass_best = -1.0;

    double global_best_metric = -1.0;
    Partition global_best = anchor;
    IpcSample global_best_ipc;

    for (int iter = 0; iter < cfg.iterations; ++iter) {
        int favored = iter % nt;
        Partition trial =
            trialPartition(anchor, favored, cfg.delta, cfg.minShare);
        IpcSample s =
            runFixedPartitionEpoch(checkpoint, trial, cfg.epochSize);
        double m = evalMetric(cfg.metric, s, cfg.singleIpc);
        round_perf[favored] = m;

        if (m > global_best_metric) {
            global_best_metric = m;
            global_best = trial;
            global_best_ipc = s;
        }

        if (favored == nt - 1) {
            // End of a round: climb, or restart if we are at a peak.
            int g = 0;
            for (int i = 1; i < nt; ++i)
                if (round_perf[i] > round_perf[g])
                    g = i;
            if (round_perf[g] <= pass_best) {
                // No improvement: a (possibly local) peak; restart
                // from a random point in the distribution space.
                anchor = randomPartition(nt, total);
                pass_best = -1.0;
            } else {
                pass_best = round_perf[g];
                anchor =
                    moveAnchor(anchor, g, cfg.delta, cfg.minShare);
            }
        }
    }

    OfflineEpoch rec;
    rec.ipc = runFixedPartitionEpoch(checkpoint, global_best,
                                     cfg.epochSize, &cpu);
    rec.best = global_best;
    rec.metricValue = global_best_metric;
    return rec;
}

OfflineResult
RandHill::run(SmtCpu &cpu, int num_epochs)
{
    OfflineResult res;
    res.epochs.reserve(num_epochs);
    for (int e = 0; e < num_epochs; ++e)
        res.epochs.push_back(stepEpoch(cpu));
    return res;
}

} // namespace smthill
