#include "core/rand_hill.hh"

#include <algorithm>

#include "common/log.hh"

namespace smthill
{

RandHill::RandHill(RandHillConfig config)
    : cfg(config), rng(cfg.seed),
      pool(std::make_shared<ThreadPool>(cfg.jobs < 1 ? 1 : cfg.jobs)),
      arena(std::make_shared<MachineArena>(pool->jobs()))
{
    if (cfg.iterations < 1)
        fatal("RandHill: need at least one iteration");
    if (cfg.delta < 1)
        fatal("RandHill: delta must be >= 1");
}

Partition
RandHill::randomPartition(int threads, int total)
{
    // Draw raw weights, then scale onto the simplex with a floor.
    std::array<double, kMaxThreads> w{};
    double sum = 0.0;
    for (int i = 0; i < threads; ++i) {
        w[i] = 0.05 + rng.nextDouble();
        sum += w[i];
    }
    Partition p;
    p.numThreads = threads;
    int assigned = 0;
    for (int i = 0; i < threads; ++i) {
        int share = std::max(
            cfg.minShare, static_cast<int>(w[i] / sum * total));
        p.share[i] = share;
        assigned += share;
    }
    // Repair the total by adjusting the largest share.
    int richest = 0;
    for (int i = 1; i < threads; ++i)
        if (p.share[i] > p.share[richest])
            richest = i;
    p.share[richest] += total - assigned;
    if (p.share[richest] < cfg.minShare)
        return Partition::equal(threads, total);
    return p;
}

OfflineEpoch
RandHill::stepEpoch(SmtCpu &cpu)
{
    // One checkpoint capture per epoch; trials restore from it via
    // the arena below.
    const SmtCpu checkpoint = cpu; // smthill-lint: allow(cpu-copy-hot-path)
    const int nt = cpu.numThreads();
    const int total = cpu.config().intRegs;

    Partition anchor = Partition::equal(nt, total);
    std::array<double, kMaxThreads> round_perf{};
    double pass_best = -1.0;

    double global_best_metric = -1.0;
    Partition global_best = anchor;
    IpcSample global_best_ipc;

    // The climb proceeds round by round: each round's nt trials all
    // derive from the same anchor and checkpoint (no RNG involved),
    // so they fan out across the pool; the reduction, the anchor
    // move, and any restart draw then happen serially in iteration
    // order, which keeps every result — including the restart RNG
    // sequence — bit-identical to the jobs=1 serial path.
    for (int round_start = 0; round_start < cfg.iterations;
         round_start += nt) {
        const int len = std::min(nt, cfg.iterations - round_start);

        std::array<Partition, kMaxThreads> trials;
        std::array<IpcSample, kMaxThreads> samples;
        std::array<double, kMaxThreads> metrics{};
        for (int k = 0; k < len; ++k)
            trials[k] =
                trialPartition(anchor, k, cfg.delta, cfg.minShare);
        pool->parallelForWorker(
            static_cast<std::size_t>(len), [&](std::size_t k, int worker) {
                SmtCpu &trial = arena->acquire(worker, checkpoint);
                samples[k] =
                    runTrialEpoch(trial, trials[k], cfg.epochSize);
                metrics[k] =
                    evalMetric(cfg.metric, samples[k], cfg.singleIpc);
            });

        for (int k = 0; k < len; ++k) {
            round_perf[k] = metrics[k];
            if (metrics[k] > global_best_metric) {
                global_best_metric = metrics[k];
                global_best = trials[k];
                global_best_ipc = samples[k];
            }
        }

        if (len == nt) {
            // End of a full round: climb, or restart at a peak.
            int g = 0;
            for (int i = 1; i < nt; ++i)
                if (round_perf[i] > round_perf[g])
                    g = i;
            if (round_perf[g] <= pass_best) {
                // No improvement: a (possibly local) peak; restart
                // from a random point in the distribution space.
                anchor = randomPartition(nt, total);
                pass_best = -1.0;
            } else {
                pass_best = round_perf[g];
                anchor =
                    moveAnchor(anchor, g, cfg.delta, cfg.minShare);
            }
        }
    }

    OfflineEpoch rec;
    rec.ipc = runFixedPartitionEpoch(checkpoint, global_best,
                                     cfg.epochSize, &cpu);
    rec.best = global_best;
    rec.metricValue = global_best_metric;
    return rec;
}

OfflineResult
RandHill::run(SmtCpu &cpu, int num_epochs)
{
    OfflineResult res;
    res.epochs.reserve(num_epochs);
    for (int e = 0; e < num_epochs; ++e)
        res.epochs.push_back(stepEpoch(cpu));
    return res;
}

} // namespace smthill
