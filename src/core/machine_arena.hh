/**
 * @file
 * Per-worker warm-machine arena for trial fan-outs.
 *
 * The OFF-LINE exhaustive sweep and RAND-HILL both evaluate many
 * one-epoch trials from the same checkpoint. Copy-constructing an
 * SmtCpu per trial pays a full set of allocations (instruction rings,
 * per-slot dependence vectors, cache arrays) on top of the state
 * copy; the arena instead keeps one preallocated machine per pool
 * worker and restores it with SmtCpu::restoreFrom, which reuses the
 * warm machine's storage. Each worker index owns exactly one machine,
 * so concurrent trials on different workers never share mutable
 * state — the checkpoint itself is only ever read.
 */

#ifndef SMTHILL_CORE_MACHINE_ARENA_HH
#define SMTHILL_CORE_MACHINE_ARENA_HH

#include <memory>
#include <vector>

#include "pipeline/cpu.hh"

namespace smthill
{

/** One preallocated trial machine per pool worker. */
class MachineArena
{
  public:
    /** @param workers worker slots (ThreadPool::jobs of the pool). */
    explicit MachineArena(int workers);

    MachineArena(const MachineArena &) = delete;
    MachineArena &operator=(const MachineArena &) = delete;

    /**
     * @return worker @p worker's machine, restored to @p checkpoint.
     * The first use on a worker clones the checkpoint (allocating);
     * every later use restores into the warm machine. The returned
     * machine is unobserved (restoreFrom drops tracer/observers) and
     * remains valid until the next acquire on the same worker.
     */
    SmtCpu &acquire(int worker, const SmtCpu &checkpoint);

    /** @return configured worker slots. */
    int workers() const { return static_cast<int>(machines.size()); }

  private:
    std::vector<std::unique_ptr<SmtCpu>> machines;
};

} // namespace smthill

#endif // SMTHILL_CORE_MACHINE_ARENA_HH
