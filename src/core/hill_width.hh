/**
 * @file
 * Hill-width analysis (Section 3.3.1, Figures 6 and 7): given a
 * metric-vs-partitioning curve from an OFF-LINE epoch, hill-width_N
 * is the width (in unit resources) of the contiguous region around
 * the maximal peak whose performance stays at or above N times the
 * peak. Small widths at high N mean a sharp peak — a workload whose
 * performance is sensitive to the exact partitioning.
 */

#ifndef SMTHILL_CORE_HILL_WIDTH_HH
#define SMTHILL_CORE_HILL_WIDTH_HH

#include <vector>

namespace smthill
{

/**
 * Compute hill-width_N for one curve.
 * @param shares trial partition shares (thread 0), ascending
 * @param curve metric value per trial (same length as shares)
 * @param level N in [0, 1]
 * @return width in unit resources (0 for empty input)
 */
double hillWidth(const std::vector<int> &shares,
                 const std::vector<double> &curve, double level);

/** Hill-width at the standard levels the paper reports. */
struct HillWidthProfile
{
    double w99 = 0.0;
    double w98 = 0.0;
    double w97 = 0.0;
    double w95 = 0.0;
    double w90 = 0.0;
};

/** Compute all standard hill-width levels for one curve. */
HillWidthProfile hillWidthProfile(const std::vector<int> &shares,
                                  const std::vector<double> &curve);

} // namespace smthill

#endif // SMTHILL_CORE_HILL_WIDTH_HH
