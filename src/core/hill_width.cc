#include "core/hill_width.hh"

#include <algorithm>

#include "common/log.hh"

namespace smthill
{

double
hillWidth(const std::vector<int> &shares, const std::vector<double> &curve,
          double level)
{
    if (shares.size() != curve.size())
        fatal("hillWidth: shares/curve length mismatch");
    if (curve.empty())
        return 0.0;

    std::size_t peak = 0;
    for (std::size_t i = 1; i < curve.size(); ++i)
        if (curve[i] > curve[peak])
            peak = i;
    double threshold = curve[peak] * level;

    std::size_t lo = peak;
    while (lo > 0 && curve[lo - 1] >= threshold)
        --lo;
    std::size_t hi = peak;
    while (hi + 1 < curve.size() && curve[hi + 1] >= threshold)
        ++hi;

    if (lo == hi) {
        // Single point above threshold: width is one enumeration
        // step (or 1 unit for a single-sample curve).
        if (curve.size() > 1) {
            std::size_t next = std::min(peak + 1, curve.size() - 1);
            std::size_t prev = peak > 0 ? peak - 1 : 0;
            return static_cast<double>(
                std::max(1, (shares[next] - shares[prev]) / 2));
        }
        return 1.0;
    }
    return static_cast<double>(shares[hi] - shares[lo]);
}

HillWidthProfile
hillWidthProfile(const std::vector<int> &shares,
                 const std::vector<double> &curve)
{
    HillWidthProfile p;
    p.w99 = hillWidth(shares, curve, 0.99);
    p.w98 = hillWidth(shares, curve, 0.98);
    p.w97 = hillWidth(shares, curve, 0.97);
    p.w95 = hillWidth(shares, curve, 0.95);
    p.w90 = hillWidth(shares, curve, 0.90);
    return p;
}

} // namespace smthill
