#include "core/epoch_trace.hh"

#include <cinttypes>
#include <cstdio>

namespace smthill
{

namespace
{

Json
doubleArray(const std::array<double, kMaxThreads> &a, int nt)
{
    Json arr = Json::array();
    for (int i = 0; i < nt; ++i)
        arr.push(Json(a[i]));
    return arr;
}

Json
shareArray(const Partition &p)
{
    Json arr = Json::array();
    for (int i = 0; i < p.numThreads; ++i)
        arr.push(Json(p.share[i]));
    return arr;
}

void
parseDoubleArray(const Json &j, std::array<double, kMaxThreads> &out)
{
    int i = 0;
    for (const Json &v : j.items()) {
        if (i >= kMaxThreads)
            break;
        out[i++] = v.asDouble();
    }
}

Partition
parseShareArray(const Json &j)
{
    Partition p;
    for (const Json &v : j.items()) {
        if (p.numThreads >= kMaxThreads)
            break;
        p.share[p.numThreads++] = static_cast<int>(v.asInt());
    }
    return p;
}

} // namespace

Json
EpochTracer::toJson(PerfMetric metric) const
{
    Json root = Json::object();
    root.set("schema", Json("smthill.epoch-trace.v1"));
    root.set("metric", Json(metricName(metric)));
    root.set("num_threads",
             Json(recs.empty() ? 0 : recs.front().numThreads));
    Json epochs = Json::array();
    for (const EpochTraceRecord &r : recs) {
        Json e = Json::object();
        e.set("epoch", Json(r.epochId));
        e.set("cycle", Json(r.cycle));
        e.set("elapsed_cycles", Json(r.elapsedCycles));
        e.set("ipc", doubleArray(r.ipc, r.numThreads));
        e.set("metric_value", Json(r.metricValue));
        e.set("trial", r.partitioned ? shareArray(r.trial) : Json());
        e.set("anchor", shareArray(r.anchor));
        e.set("round_perf", doubleArray(r.roundPerf, r.numThreads));
        e.set("single_ipc_est",
              doubleArray(r.singleIpcEst, r.numThreads));
        e.set("gradient_thread", Json(r.gradientThread));
        e.set("sampling_thread", Json(r.samplingThread));
        e.set("anchor_moved", Json(r.anchorMoved));
        e.set("software_cost", Json(r.softwareCost));
        epochs.push(std::move(e));
    }
    root.set("epochs", std::move(epochs));
    return root;
}

std::string
EpochTracer::toCsv() const
{
    int nt = recs.empty() ? 0 : recs.front().numThreads;
    std::string out = "epoch,cycle,elapsed_cycles,metric_value,"
                      "gradient_thread,sampling_thread,anchor_moved,"
                      "software_cost";
    auto perThread = [&](const char *stem) {
        for (int i = 0; i < nt; ++i) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), ",%s_%d", stem, i);
            out += buf;
        }
    };
    perThread("ipc");
    perThread("trial");
    perThread("anchor");
    perThread("round_perf");
    perThread("single_ipc_est");
    out += '\n';

    char buf[64];
    for (const EpochTraceRecord &r : recs) {
        std::snprintf(buf, sizeof(buf),
                      "%" PRIu64 ",%" PRIu64 ",%" PRIu64, r.epochId,
                      r.cycle, r.elapsedCycles);
        out += buf;
        std::snprintf(buf, sizeof(buf), ",%.6f,%d,%d,%d,%" PRIu64,
                      r.metricValue, r.gradientThread, r.samplingThread,
                      r.anchorMoved ? 1 : 0, r.softwareCost);
        out += buf;
        for (int i = 0; i < nt; ++i) {
            std::snprintf(buf, sizeof(buf), ",%.6f", r.ipc[i]);
            out += buf;
        }
        for (int i = 0; i < nt; ++i) {
            std::snprintf(buf, sizeof(buf), ",%d",
                          r.partitioned ? r.trial.share[i] : -1);
            out += buf;
        }
        for (int i = 0; i < nt; ++i) {
            std::snprintf(buf, sizeof(buf), ",%d", r.anchor.share[i]);
            out += buf;
        }
        for (int i = 0; i < nt; ++i) {
            std::snprintf(buf, sizeof(buf), ",%.6f", r.roundPerf[i]);
            out += buf;
        }
        for (int i = 0; i < nt; ++i) {
            std::snprintf(buf, sizeof(buf), ",%.6f", r.singleIpcEst[i]);
            out += buf;
        }
        out += '\n';
    }
    return out;
}

bool
EpochTracer::fromJson(const Json &j, std::vector<EpochTraceRecord> &out,
                      std::string &error)
{
    out.clear();
    if (!j.isObject() || !j.contains("schema") ||
        j.at("schema").asString() != "smthill.epoch-trace.v1") {
        error = "not a smthill.epoch-trace.v1 document";
        return false;
    }
    for (const Json &e : j.at("epochs").items()) {
        EpochTraceRecord r;
        r.epochId = static_cast<std::uint64_t>(e.at("epoch").asInt());
        r.cycle = static_cast<Cycle>(e.at("cycle").asInt());
        r.elapsedCycles =
            static_cast<Cycle>(e.at("elapsed_cycles").asInt());
        r.numThreads = static_cast<int>(e.at("ipc").size());
        parseDoubleArray(e.at("ipc"), r.ipc);
        r.metricValue = e.at("metric_value").asDouble();
        if (!e.at("trial").isNull()) {
            r.partitioned = true;
            r.trial = parseShareArray(e.at("trial"));
        }
        r.anchor = parseShareArray(e.at("anchor"));
        parseDoubleArray(e.at("round_perf"), r.roundPerf);
        parseDoubleArray(e.at("single_ipc_est"), r.singleIpcEst);
        r.gradientThread =
            static_cast<int>(e.at("gradient_thread").asInt());
        r.samplingThread =
            static_cast<int>(e.at("sampling_thread").asInt());
        r.anchorMoved = e.at("anchor_moved").asBool();
        r.softwareCost =
            static_cast<Cycle>(e.at("software_cost").asInt());
        out.push_back(std::move(r));
    }
    return true;
}

} // namespace smthill
