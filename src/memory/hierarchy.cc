#include "memory/hierarchy.hh"

#include "common/log.hh"

namespace smthill
{

MemoryHierarchy::MemoryHierarchy(const MemoryConfig &config)
    : cfg(config),
      il1Cache(cfg.il1),
      dl1Cache(cfg.dl1),
      ul2Cache(cfg.ul2)
{
}

MemAccessResult
MemoryHierarchy::instAccess(ThreadId tid, Addr pc)
{
    if (tid >= kMaxThreads)
        panic("instAccess: thread id out of range");
    MemAccessResult res;
    if (il1Cache.access(pc, false).hit) {
        res.latency = cfg.l1Latency;
        res.level = MemLevel::L1;
        return res;
    }
    if (ul2Cache.access(pc, false).hit) {
        res.latency = cfg.l1Latency + cfg.l2Latency;
        res.level = MemLevel::L2;
        return res;
    }
    ++l2MissCount[tid];
    res.latency = cfg.l1Latency + cfg.l2Latency + memLatency();
    res.level = MemLevel::Memory;
    return res;
}

MemAccessResult
MemoryHierarchy::dataAccess(ThreadId tid, Addr addr, bool is_write)
{
    if (tid >= kMaxThreads)
        panic("dataAccess: thread id out of range");
    MemAccessResult res;
    if (dl1Cache.access(addr, is_write).hit) {
        res.latency = cfg.l1Latency;
        res.level = MemLevel::L1;
        return res;
    }
    ++dl1MissCount[tid];
    if (ul2Cache.access(addr, false).hit) {
        res.latency = cfg.l1Latency + cfg.l2Latency;
        res.level = MemLevel::L2;
        return res;
    }
    ++l2MissCount[tid];
    res.latency = cfg.l1Latency + cfg.l2Latency + memLatency();
    res.level = MemLevel::Memory;
    return res;
}

} // namespace smthill
