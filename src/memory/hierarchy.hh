/**
 * @file
 * The three-level memory system of Table 1: per-core IL1 and DL1,
 * a unified L2, and a fixed-latency DRAM model (300-cycle first
 * chunk, 6-cycle inter-chunk). Accesses return the latency to the
 * critical word and the level that serviced them.
 */

#ifndef SMTHILL_MEMORY_HIERARCHY_HH
#define SMTHILL_MEMORY_HIERARCHY_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "memory/cache.hh"

namespace smthill
{

/** Which level serviced an access. */
enum class MemLevel : std::uint8_t { L1, L2, Memory };

/** Latency and geometry parameters (defaults = Table 1). */
struct MemoryConfig
{
    CacheConfig il1{"il1", 64 * 1024, 64, 2};
    CacheConfig dl1{"dl1", 64 * 1024, 64, 2};
    CacheConfig ul2{"ul2", 1024 * 1024, 64, 4};
    Cycle l1Latency = 1;
    Cycle l2Latency = 20;
    Cycle memFirstChunk = 300;
    Cycle memInterChunk = 6;
    std::uint32_t chunkBytes = 8;

    auto operator<=>(const MemoryConfig &) const = default;
};

/** Outcome of a data or instruction access. */
struct MemAccessResult
{
    Cycle latency = 1;
    MemLevel level = MemLevel::L1;
};

/** Maximum thread count the per-thread statistics arrays support. */
inline constexpr int kMaxThreads = 8;

/**
 * The full hierarchy. Value semantics: copying a MemoryHierarchy
 * snapshots tag state and statistics, so machine checkpoints restore
 * cache contents exactly.
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const MemoryConfig &config = MemoryConfig{});

    /**
     * Instruction fetch access for one cache line.
     * @param tid requesting thread (statistics)
     * @param pc fetch address
     */
    MemAccessResult instAccess(ThreadId tid, Addr pc);

    /**
     * Data access (load or store).
     * @param tid requesting thread (statistics)
     * @param addr effective address
     * @param is_write store vs load
     */
    MemAccessResult dataAccess(ThreadId tid, Addr addr, bool is_write);

    const MemoryConfig &config() const { return cfg; }
    const Cache &il1() const { return il1Cache; }
    const Cache &dl1() const { return dl1Cache; }
    const Cache &ul2() const { return ul2Cache; }

    /** DL1 misses by @p tid since construction (DCRA's monitor). */
    std::uint64_t dl1Misses(ThreadId tid) const
    {
        return dl1MissCount.at(tid);
    }

    /** L2 misses (to memory) by @p tid since construction. */
    std::uint64_t l2Misses(ThreadId tid) const
    {
        return l2MissCount.at(tid);
    }

  private:
    /** Latency of a full line fill from DRAM (critical word first). */
    Cycle memLatency() const { return cfg.memFirstChunk; }

    MemoryConfig cfg;
    Cache il1Cache;
    Cache dl1Cache;
    Cache ul2Cache;
    std::array<std::uint64_t, kMaxThreads> dl1MissCount{};
    std::array<std::uint64_t, kMaxThreads> l2MissCount{};
};

} // namespace smthill

#endif // SMTHILL_MEMORY_HIERARCHY_HH
