/**
 * @file
 * Set-associative cache tag array with true-LRU replacement and
 * write-back/write-allocate semantics. Only tags and dirty bits are
 * modeled (no data), which is all a timing simulator needs; the whole
 * array is a value type so it is captured by machine checkpoints.
 */

#ifndef SMTHILL_MEMORY_CACHE_HH
#define SMTHILL_MEMORY_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace smthill
{

/** Geometry and identity of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 64 * 1024;
    std::uint32_t lineBytes = 64;
    std::uint32_t ways = 2;

    auto operator<=>(const CacheConfig &) const = default;
};

/** Result of a cache access. */
struct CacheAccessResult
{
    bool hit = false;
    bool writebackVictim = false; ///< a dirty line was evicted
};

/** A single cache level (tags + LRU + dirty bits). */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Access the line containing @p addr; allocates on miss.
     * @param addr byte address
     * @param is_write marks the line dirty on a write
     * @return hit/miss and whether a dirty victim was evicted
     */
    CacheAccessResult access(Addr addr, bool is_write);

    /** @return true if the line containing @p addr is resident. */
    bool probe(Addr addr) const;

    /** Invalidate everything (tests / reset). */
    void flushAll();

    const CacheConfig &config() const { return cfg; }
    std::uint64_t numSets() const { return sets; }

    std::uint64_t hits() const { return hitCount; }
    std::uint64_t misses() const { return missCount; }
    std::uint64_t writebacks() const { return writebackCount; }

  private:
    struct Line
    {
        Addr tag = 0;
        std::uint64_t lru = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::uint64_t setOf(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheConfig cfg;
    std::uint64_t sets;
    std::uint32_t lineShift;
    std::vector<Line> lines; ///< sets * ways, row-major
    std::uint64_t lruClock = 0;

    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
    std::uint64_t writebackCount = 0;
};

} // namespace smthill

#endif // SMTHILL_MEMORY_CACHE_HH
