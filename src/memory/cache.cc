#include "memory/cache.hh"

#include "common/log.hh"

namespace smthill
{

namespace
{

std::uint32_t
log2Exact(std::uint64_t v, const char *what)
{
    if (v == 0 || (v & (v - 1)) != 0)
        fatal(msg("cache: ", what, " must be a power of two"));
    std::uint32_t s = 0;
    while ((std::uint64_t{1} << s) < v)
        ++s;
    return s;
}

} // namespace

Cache::Cache(const CacheConfig &config) : cfg(config)
{
    if (cfg.ways == 0)
        fatal("cache: ways must be positive");
    std::uint64_t total_lines = cfg.sizeBytes / cfg.lineBytes;
    if (total_lines == 0 || total_lines % cfg.ways != 0)
        fatal(msg("cache ", cfg.name, ": size/line/ways mismatch"));
    sets = total_lines / cfg.ways;
    log2Exact(sets, "set count");
    lineShift = log2Exact(cfg.lineBytes, "line size");
    lines.assign(sets * cfg.ways, Line{});
}

std::uint64_t
Cache::setOf(Addr addr) const
{
    return (addr >> lineShift) & (sets - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> lineShift;
}

CacheAccessResult
Cache::access(Addr addr, bool is_write)
{
    CacheAccessResult res;
    std::uint64_t base = setOf(addr) * cfg.ways;
    Addr tag = tagOf(addr);

    std::uint64_t victim = base;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::uint32_t w = 0; w < cfg.ways; ++w) {
        Line &line = lines[base + w];
        if (line.valid && line.tag == tag) {
            line.lru = ++lruClock;
            line.dirty = line.dirty || is_write;
            ++hitCount;
            res.hit = true;
            return res;
        }
        if (!line.valid) {
            victim = base + w;
            oldest = 0;
        } else if (line.lru < oldest) {
            victim = base + w;
            oldest = line.lru;
        }
    }

    ++missCount;
    Line &v = lines[victim];
    if (v.valid && v.dirty) {
        ++writebackCount;
        res.writebackVictim = true;
    }
    v.valid = true;
    v.tag = tag;
    v.dirty = is_write;
    v.lru = ++lruClock;
    return res;
}

bool
Cache::probe(Addr addr) const
{
    std::uint64_t base = setOf(addr) * cfg.ways;
    Addr tag = tagOf(addr);
    for (std::uint32_t w = 0; w < cfg.ways; ++w) {
        const Line &line = lines[base + w];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

void
Cache::flushAll()
{
    for (Line &line : lines)
        line = Line{};
}

} // namespace smthill
