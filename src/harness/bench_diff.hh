/**
 * @file
 * Bench-export regression diff: compares two machine-readable bench
 * documents (`smthill.bench.*.v1` or `smthill.profile.v1`) metric by
 * metric so `bench/BENCH_*.json` baselines become a tracked perf
 * trajectory instead of a write-only artifact.
 *
 * The comparison is schema-generic: both documents must carry the
 * same "schema" string; entries are the objects of every top-level
 * array member (benchmarks, rows, cells, spans...), keyed by the
 * entry's string-valued fields, and every shared numeric field is
 * compared. Direction and noise tolerance come from the metric name
 * (metricDirection/metricNoisePct): throughput-like metrics regress
 * when they drop, latency-like metrics when they rise, and anything
 * unrecognized is reported but never gates — counts, seeds, and
 * iteration totals are expected to move.
 */

#ifndef SMTHILL_HARNESS_BENCH_DIFF_HH
#define SMTHILL_HARNESS_BENCH_DIFF_HH

#include <string>
#include <vector>

#include "common/json.hh"

namespace smthill
{

/** One compared metric of one entry. */
struct MetricDelta
{
    std::string entry;     ///< e.g. "benchmarks/BM_CoreCycles/smt2_mem"
    std::string metric;    ///< field name, e.g. "kcycles_per_sec"
    double baseline = 0.0;
    double candidate = 0.0;
    double deltaPct = 0.0;     ///< (candidate - baseline) / |baseline|
    int direction = 0;         ///< +1 higher-better, -1 lower, 0 info
    double noisePct = 0.0;     ///< tolerance applied (0 when info)
    bool regression = false;
};

/** Outcome of diffing two documents. */
struct BenchDiffResult
{
    std::string schema;
    std::vector<MetricDelta> deltas;  ///< entry order of the baseline
    std::vector<std::string> notes;   ///< unmatched entries/fields
    bool regressed = false;
    int gatedMetrics = 0;             ///< deltas with a direction
};

/** @return +1 higher-is-better, -1 lower-is-better, 0 informational. */
int metricDirection(const std::string &metric);

/** @return per-metric noise tolerance in percent (0 when info). */
double metricNoisePct(const std::string &metric);

/**
 * Diff @p baseline against @p candidate. @p noise_override_pct > 0
 * replaces every gated metric's default tolerance. @return false with
 * @p error set when the documents are not comparable (missing or
 * mismatched "schema", not objects).
 */
bool diffBenchDocs(const Json &baseline, const Json &candidate,
                   double noise_override_pct, BenchDiffResult &out,
                   std::string &error);

/** Human-readable table of @p result (one line per metric + verdict). */
std::string renderBenchDiff(const BenchDiffResult &result);

} // namespace smthill

#endif // SMTHILL_HARNESS_BENCH_DIFF_HH
