#include "harness/report.hh"

#include <cstdio>

#include "harness/table.hh"

namespace smthill
{

MachineSnapshot
MachineSnapshot::capture(const SmtCpu &cpu)
{
    MachineSnapshot s;
    s.cycle = cpu.now();
    s.numThreads = cpu.numThreads();
    s.stats = cpu.stats();
    for (int i = 0; i < cpu.numThreads(); ++i) {
        auto tid = static_cast<ThreadId>(i);
        s.dl1Misses[i] = cpu.memory().dl1Misses(tid);
        s.l2Misses[i] = cpu.memory().l2Misses(tid);
    }
    return s;
}

MachineReport
buildReport(const MachineSnapshot &before, const MachineSnapshot &after,
            const std::vector<std::string> &labels)
{
    MachineReport rep;
    rep.cycles = after.cycle - before.cycle;
    if (rep.cycles == 0)
        return rep;
    rep.stalledCycles =
        after.stats.stalledCycles - before.stats.stalledCycles;

    // The snapshot fills cache-miss counters only for the machine's
    // contexts, so the report iterates the same range instead of
    // kMaxThreads (snapshots predating the numThreads field fall
    // back to the old full-width scan over all-zero tails).
    int nt = after.numThreads > 0 ? after.numThreads : kMaxThreads;

    std::uint64_t fetched_total = 0;
    for (int i = 0; i < nt; ++i)
        fetched_total += after.stats.fetched[i] - before.stats.fetched[i];

    std::uint64_t committed_total = 0;
    for (int i = 0; i < nt; ++i) {
        std::uint64_t committed =
            after.stats.committed[i] - before.stats.committed[i];
        std::uint64_t fetched =
            after.stats.fetched[i] - before.stats.fetched[i];
        std::uint64_t flushed =
            after.stats.flushed[i] - before.stats.flushed[i];
        if (committed == 0 && fetched == 0 && flushed == 0)
            continue;

        ThreadReport tr;
        tr.label = static_cast<std::size_t>(i) < labels.size()
                       ? labels[i]
                       : "thread" + std::to_string(i);
        tr.committed = committed;
        committed_total += committed;
        tr.ipc = static_cast<double>(committed) /
                 static_cast<double>(rep.cycles);
        tr.fetchShare = fetched_total
                            ? static_cast<double>(fetched) /
                                  static_cast<double>(fetched_total)
                            : 0.0;
        std::uint64_t branches =
            after.stats.branches[i] - before.stats.branches[i];
        std::uint64_t mispred =
            after.stats.mispredicts[i] - before.stats.mispredicts[i];
        tr.mispredictRate =
            branches ? static_cast<double>(mispred) /
                           static_cast<double>(branches)
                     : 0.0;
        // The raw flush count is reported unconditionally: a thread
        // that was squashed out of every commit (committed == 0)
        // still shows its flush traffic instead of a silent 0.0 rate.
        tr.flushed = flushed;
        if (committed > 0) {
            double kilo_inst = static_cast<double>(committed) / 1000.0;
            tr.dl1Mpki = static_cast<double>(after.dl1Misses[i] -
                                             before.dl1Misses[i]) /
                         kilo_inst;
            tr.l2Mpki = static_cast<double>(after.l2Misses[i] -
                                            before.l2Misses[i]) /
                        kilo_inst;
            tr.flushedPerCommit =
                static_cast<double>(flushed) /
                static_cast<double>(committed);
        }
        tr.lockedFrac =
            static_cast<double>(after.stats.partitionLockCycles[i] -
                                before.stats.partitionLockCycles[i]) /
            static_cast<double>(rep.cycles);
        rep.threads.push_back(std::move(tr));
    }
    rep.totalIpc = static_cast<double>(committed_total) /
                   static_cast<double>(rep.cycles);
    return rep;
}

MachineReport
runAndReport(SmtCpu &cpu, Cycle cycles,
             const std::vector<std::string> &labels)
{
    MachineSnapshot before = MachineSnapshot::capture(cpu);
    cpu.run(cycles);
    MachineSnapshot after = MachineSnapshot::capture(cpu);
    return buildReport(before, after, labels);
}

MachineReport
buildJobReport(const OpenSystemResult &result)
{
    MachineReport rep;
    rep.cycles = result.cycles;
    if (rep.cycles == 0)
        return rep;

    std::uint64_t fetched_total = 0;
    for (const JobRecord &job : result.jobs)
        fetched_total += job.atDepart.fetched - job.atAttach.fetched;

    for (const JobRecord &job : result.jobs) {
        Cycle resident = job.residency();
        if (resident == 0)
            continue;

        std::uint64_t committed = job.committed();
        std::uint64_t fetched =
            job.atDepart.fetched - job.atAttach.fetched;
        std::uint64_t flushed =
            job.atDepart.flushed - job.atAttach.flushed;
        std::uint64_t branches =
            job.atDepart.branches - job.atAttach.branches;
        std::uint64_t mispred =
            job.atDepart.mispredicts - job.atAttach.mispredicts;

        ThreadReport tr;
        tr.label = "job" + std::to_string(job.jobId) + ":" +
                   job.benchmark;
        tr.committed = committed;
        tr.flushed = flushed;
        // Rates are over the job's own residency window, not the
        // whole run: the job wasn't on the machine outside it.
        tr.ipc = static_cast<double>(committed) /
                 static_cast<double>(resident);
        tr.fetchShare = fetched_total
                            ? static_cast<double>(fetched) /
                                  static_cast<double>(fetched_total)
                            : 0.0;
        tr.mispredictRate =
            branches ? static_cast<double>(mispred) /
                           static_cast<double>(branches)
                     : 0.0;
        if (committed > 0) {
            double kilo_inst = static_cast<double>(committed) / 1000.0;
            tr.dl1Mpki =
                static_cast<double>(job.atDepart.dl1Misses -
                                    job.atAttach.dl1Misses) /
                kilo_inst;
            tr.l2Mpki = static_cast<double>(job.atDepart.l2Misses -
                                            job.atAttach.l2Misses) /
                        kilo_inst;
            tr.flushedPerCommit = static_cast<double>(flushed) /
                                  static_cast<double>(committed);
        }
        tr.lockedFrac =
            static_cast<double>(job.atDepart.partitionLockCycles -
                                job.atAttach.partitionLockCycles) /
            static_cast<double>(resident);
        rep.threads.push_back(std::move(tr));
    }
    rep.totalIpc = static_cast<double>(result.committedTotal) /
                   static_cast<double>(rep.cycles);
    return rep;
}

Json
MachineReport::toJson() const
{
    Json root = Json::object();
    root.set("schema", Json("smthill.report.v1"));
    root.set("cycles", Json(cycles));
    root.set("total_ipc", Json(totalIpc));
    root.set("stalled_cycles", Json(stalledCycles));
    Json arr = Json::array();
    for (const ThreadReport &tr : threads) {
        Json t = Json::object();
        t.set("label", Json(tr.label));
        t.set("ipc", Json(tr.ipc));
        t.set("fetch_share", Json(tr.fetchShare));
        t.set("mispredict_rate", Json(tr.mispredictRate));
        t.set("dl1_mpki", Json(tr.dl1Mpki));
        t.set("l2_mpki", Json(tr.l2Mpki));
        t.set("flushed_per_commit", Json(tr.flushedPerCommit));
        t.set("locked_frac", Json(tr.lockedFrac));
        t.set("committed", Json(tr.committed));
        t.set("flushed", Json(tr.flushed));
        arr.push(std::move(t));
    }
    root.set("threads", std::move(arr));
    return root;
}

bool
machineReportFromJson(const Json &j, MachineReport &out, std::string &error)
{
    out = MachineReport{};
    if (!j.isObject() || !j.contains("schema") ||
        j.at("schema").asString() != "smthill.report.v1") {
        error = "not a smthill.report.v1 document";
        return false;
    }
    out.cycles = static_cast<Cycle>(j.at("cycles").asInt());
    out.totalIpc = j.at("total_ipc").asDouble();
    out.stalledCycles =
        static_cast<std::uint64_t>(j.at("stalled_cycles").asInt());
    for (const Json &t : j.at("threads").items()) {
        ThreadReport tr;
        tr.label = t.at("label").asString();
        tr.ipc = t.at("ipc").asDouble();
        tr.fetchShare = t.at("fetch_share").asDouble();
        tr.mispredictRate = t.at("mispredict_rate").asDouble();
        tr.dl1Mpki = t.at("dl1_mpki").asDouble();
        tr.l2Mpki = t.at("l2_mpki").asDouble();
        tr.flushedPerCommit = t.at("flushed_per_commit").asDouble();
        tr.lockedFrac = t.at("locked_frac").asDouble();
        tr.committed =
            static_cast<std::uint64_t>(t.at("committed").asInt());
        tr.flushed =
            static_cast<std::uint64_t>(t.at("flushed").asInt());
        out.threads.push_back(std::move(tr));
    }
    return true;
}

void
MachineReport::print() const
{
    std::printf("interval: %llu cycles, total IPC %.3f\n",
                static_cast<unsigned long long>(cycles), totalIpc);
    Table t({"thread", "ipc", "fetch%", "misp%", "dl1mpki", "l2mpki",
             "flush/ci", "locked%"});
    for (const ThreadReport &tr : threads) {
        t.beginRow();
        t.cell(tr.label);
        t.cell(tr.ipc);
        t.cell(100.0 * tr.fetchShare, 1);
        t.cell(100.0 * tr.mispredictRate, 2);
        t.cell(tr.dl1Mpki, 1);
        t.cell(tr.l2Mpki, 1);
        t.cell(tr.flushedPerCommit, 3);
        t.cell(100.0 * tr.lockedFrac, 1);
    }
    t.print();
}

} // namespace smthill
