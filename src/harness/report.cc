#include "harness/report.hh"

#include <cstdio>

#include "harness/table.hh"

namespace smthill
{

MachineSnapshot
MachineSnapshot::capture(const SmtCpu &cpu)
{
    MachineSnapshot s;
    s.cycle = cpu.now();
    s.stats = cpu.stats();
    for (int i = 0; i < cpu.numThreads(); ++i) {
        auto tid = static_cast<ThreadId>(i);
        s.dl1Misses[i] = cpu.memory().dl1Misses(tid);
        s.l2Misses[i] = cpu.memory().l2Misses(tid);
    }
    return s;
}

MachineReport
buildReport(const MachineSnapshot &before, const MachineSnapshot &after,
            const std::vector<std::string> &labels)
{
    MachineReport rep;
    rep.cycles = after.cycle - before.cycle;
    if (rep.cycles == 0)
        return rep;

    std::uint64_t fetched_total = 0;
    for (int i = 0; i < kMaxThreads; ++i)
        fetched_total += after.stats.fetched[i] - before.stats.fetched[i];

    std::uint64_t committed_total = 0;
    for (int i = 0; i < kMaxThreads; ++i) {
        std::uint64_t committed =
            after.stats.committed[i] - before.stats.committed[i];
        std::uint64_t fetched =
            after.stats.fetched[i] - before.stats.fetched[i];
        if (committed == 0 && fetched == 0)
            continue;

        ThreadReport tr;
        tr.label = static_cast<std::size_t>(i) < labels.size()
                       ? labels[i]
                       : "thread" + std::to_string(i);
        tr.committed = committed;
        committed_total += committed;
        tr.ipc = static_cast<double>(committed) /
                 static_cast<double>(rep.cycles);
        tr.fetchShare = fetched_total
                            ? static_cast<double>(fetched) /
                                  static_cast<double>(fetched_total)
                            : 0.0;
        std::uint64_t branches =
            after.stats.branches[i] - before.stats.branches[i];
        std::uint64_t mispred =
            after.stats.mispredicts[i] - before.stats.mispredicts[i];
        tr.mispredictRate =
            branches ? static_cast<double>(mispred) /
                           static_cast<double>(branches)
                     : 0.0;
        double kilo_inst = static_cast<double>(committed) / 1000.0;
        if (kilo_inst > 0) {
            tr.dl1Mpki = static_cast<double>(after.dl1Misses[i] -
                                             before.dl1Misses[i]) /
                         kilo_inst;
            tr.l2Mpki = static_cast<double>(after.l2Misses[i] -
                                            before.l2Misses[i]) /
                        kilo_inst;
            tr.flushedPerCommit =
                static_cast<double>(after.stats.flushed[i] -
                                    before.stats.flushed[i]) /
                static_cast<double>(committed);
        }
        tr.lockedFrac =
            static_cast<double>(after.stats.partitionLockCycles[i] -
                                before.stats.partitionLockCycles[i]) /
            static_cast<double>(rep.cycles);
        rep.threads.push_back(std::move(tr));
    }
    rep.totalIpc = static_cast<double>(committed_total) /
                   static_cast<double>(rep.cycles);
    return rep;
}

MachineReport
runAndReport(SmtCpu &cpu, Cycle cycles,
             const std::vector<std::string> &labels)
{
    MachineSnapshot before = MachineSnapshot::capture(cpu);
    cpu.run(cycles);
    MachineSnapshot after = MachineSnapshot::capture(cpu);
    return buildReport(before, after, labels);
}

void
MachineReport::print() const
{
    std::printf("interval: %llu cycles, total IPC %.3f\n",
                static_cast<unsigned long long>(cycles), totalIpc);
    Table t({"thread", "ipc", "fetch%", "misp%", "dl1mpki", "l2mpki",
             "flush/ci", "locked%"});
    for (const ThreadReport &tr : threads) {
        t.beginRow();
        t.cell(tr.label);
        t.cell(tr.ipc);
        t.cell(100.0 * tr.fetchShare, 1);
        t.cell(100.0 * tr.mispredictRate, 2);
        t.cell(tr.dl1Mpki, 1);
        t.cell(tr.l2Mpki, 1);
        t.cell(tr.flushedPerCommit, 3);
        t.cell(100.0 * tr.lockedFrac, 1);
    }
    t.print();
}

} // namespace smthill
