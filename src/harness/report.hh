/**
 * @file
 * Derived statistics reports: turns raw machine counters into the
 * per-thread and whole-machine rates an architect actually reads —
 * IPC, misprediction rate, cache MPKI, flush overhead, fetch shares,
 * partition-lock time — over a measurement interval bracketed by two
 * machine snapshots.
 */

#ifndef SMTHILL_HARNESS_REPORT_HH
#define SMTHILL_HARNESS_REPORT_HH

#include <array>
#include <string>
#include <vector>

#include "common/json.hh"
#include "pipeline/cpu.hh"
#include "workload/open_system.hh"

namespace smthill
{

/** Raw counters captured at one instant. */
struct MachineSnapshot
{
    Cycle cycle = 0;
    int numThreads = 0; ///< hardware contexts of the captured machine
    CpuStats stats;
    std::array<std::uint64_t, kMaxThreads> dl1Misses{};
    std::array<std::uint64_t, kMaxThreads> l2Misses{};

    /** Capture the current counters of @p cpu. */
    static MachineSnapshot capture(const SmtCpu &cpu);
};

/** Derived per-thread rates over an interval. */
struct ThreadReport
{
    std::string label;
    double ipc = 0.0;
    double fetchShare = 0.0;      ///< of all fetched instructions
    double mispredictRate = 0.0;  ///< mispredicts / branches
    double dl1Mpki = 0.0;         ///< DL1 misses / kilo-instruction
    double l2Mpki = 0.0;          ///< L2 misses / kilo-instruction
    double flushedPerCommit = 0.0; ///< squashed / committed
    double lockedFrac = 0.0;      ///< partition-locked fetch cycles
    std::uint64_t committed = 0;
    std::uint64_t flushed = 0;    ///< squashed, even when committed==0

    bool operator==(const ThreadReport &) const = default;
};

/** Whole-machine derived report. */
struct MachineReport
{
    Cycle cycles = 0;
    double totalIpc = 0.0;
    std::uint64_t stalledCycles = 0; ///< software-cost stall cycles
    std::vector<ThreadReport> threads;

    /** Pretty-print to stdout. */
    void print() const;

    /**
     * Machine-readable export (`smthill.report.v1`): every field of
     * the report, one object per thread. Round-trips exactly through
     * machineReportFromJson.
     */
    Json toJson() const;

    bool operator==(const MachineReport &) const = default;
};

/**
 * Rebuild a report from a toJson() export.
 * @return false with @p error set if @p j is not a v1 report
 */
bool machineReportFromJson(const Json &j, MachineReport &out,
                           std::string &error);

/**
 * Build a report over the interval [@p before, @p after].
 * @param labels optional per-thread names (benchmark names)
 */
MachineReport buildReport(const MachineSnapshot &before,
                          const MachineSnapshot &after,
                          const std::vector<std::string> &labels = {});

/** Convenience: snapshot, run @p cycles, report. */
MachineReport runAndReport(SmtCpu &cpu, Cycle cycles,
                           const std::vector<std::string> &labels = {});

/**
 * Build a report with one row per *job* from an open-system run.
 * Hardware contexts are reused across job lifetimes and their
 * cumulative counters keep counting, so a per-context report would
 * merge every job that ever ran on a context into one row; this
 * adapter instead differences each job's own attach/depart snapshots,
 * giving lifetime-correct rows (per-job IPC over the job's residency,
 * its own branches/misses/flushes — not its predecessors').
 * Unplaced jobs (zero residency) are skipped.
 */
MachineReport buildJobReport(const OpenSystemResult &result);

} // namespace smthill

#endif // SMTHILL_HARNESS_REPORT_HH
