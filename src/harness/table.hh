/**
 * @file
 * Column-aligned text tables and CSV output for the benches, which
 * regenerate the paper's figures and tables as printed rows/series.
 */

#ifndef SMTHILL_HARNESS_TABLE_HH
#define SMTHILL_HARNESS_TABLE_HH

#include <string>
#include <vector>

namespace smthill
{

/** Builds and prints a simple aligned table. */
class Table
{
  public:
    /** @param headers column titles (fixes the column count) */
    explicit Table(std::vector<std::string> headers);

    /** Start a new row; fatal if the previous row is incomplete. */
    void beginRow();

    /** Append a string cell to the current row. */
    void cell(const std::string &value);

    /** Append a numeric cell with @p precision decimal places. */
    void cell(double value, int precision = 3);

    /** Append an integer cell. */
    void cell(std::int64_t value);

    /** Print the table to stdout. */
    void print() const;

    /** Write the table as CSV to stdout. */
    void printCsv() const;

    std::size_t numRows() const { return rows.size(); }

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with fixed precision. */
std::string fmt(double value, int precision = 3);

/** Print a section banner for bench output. */
void banner(const std::string &title);

} // namespace smthill

#endif // SMTHILL_HARNESS_TABLE_HH
