/**
 * @file
 * Synchronized time-varying comparisons (Sections 3.3 and 4.4.1):
 * all techniques are evaluated epoch by epoch from the *same*
 * machine checkpoints, so per-epoch performance numbers are directly
 * comparable (Figure 5), and hill-climbing's trajectory can be
 * overlaid on OFF-LINE's exhaustive per-epoch curves (Figure 12).
 */

#ifndef SMTHILL_HARNESS_SYNC_RUNNER_HH
#define SMTHILL_HARNESS_SYNC_RUNNER_HH

#include <string>
#include <vector>

#include "core/hill_climbing.hh"
#include "core/offline_exhaustive.hh"
#include "harness/runner.hh"

namespace smthill
{

/** One technique's per-epoch metric series. */
struct SyncSeries
{
    std::string name;
    std::vector<double> metric;
};

/** Result of a synchronized comparison against OFF-LINE. */
struct SyncResult
{
    SyncSeries offline;             ///< the reference (best) series
    std::vector<SyncSeries> others; ///< one per compared policy

    /** Fraction of epochs where OFF-LINE >= the named series. */
    double offlineWinRate(std::size_t other_index) const;
};

/**
 * Figure 5: advance the machine along OFF-LINE's best path; at every
 * epoch boundary, run each policy for one epoch from the same
 * checkpoint and record its metric.
 *
 * @param trace optional cycle-level event trace: the OFF-LINE path
 *        records as trace-event process 0 and each compared policy
 *        as process 1 + its index, so the synchronized timelines
 *        render side by side in Perfetto. Process/thread metadata
 *        names are emitted on first use.
 */
SyncResult syncCompareOffline(SmtCpu cpu, const OfflineExhaustive &offline,
                              const std::vector<ResourcePolicy *> &policies,
                              int epochs, EventTrace *trace = nullptr);

/** One epoch of the Figure 12 trace. */
struct HillTraceEpoch
{
    int hillShare0 = 0;     ///< thread-0 share hill-climbing used
    int offlineShare0 = 0;  ///< thread-0 share OFF-LINE found best
    double hillMetric = 0.0;
    double offlineMetric = 0.0;
    std::vector<int> curveShares;  ///< per-trial thread-0 shares
    std::vector<double> curve;     ///< per-trial metric values
};

/**
 * Figure 12: run hill-climbing normally; at every epoch boundary,
 * exhaustively evaluate the epoch from the checkpoint (without
 * advancing along it) to obtain the performance hill and the best
 * partitioning, then let hill-climbing take its real step.
 * Two-thread machines only.
 */
std::vector<HillTraceEpoch> traceHillVsOffline(
    SmtCpu cpu, HillClimbing &hill, const OfflineConfig &offline_config,
    int epochs);

} // namespace smthill

#endif // SMTHILL_HARNESS_SYNC_RUNNER_HH
