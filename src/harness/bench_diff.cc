#include "harness/bench_diff.hh"

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

namespace smthill
{

namespace
{

bool
endsWithStr(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

bool
startsWithStr(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

/** One comparable entry: a named bag of numeric metrics. */
struct FlatEntry
{
    std::string key;
    std::vector<std::pair<std::string, double>> metrics;
};

/** Join the string-valued members of @p obj as a stable entry key. */
std::string
entryKey(const std::string &prefix, const Json &obj, std::size_t index)
{
    std::string key = prefix;
    bool named = false;
    for (const auto &[field, value] : obj.members()) {
        if (value.isString()) {
            key += "/" + value.asString();
            named = true;
        }
    }
    if (!named)
        key += "/" + std::to_string(index);
    return key;
}

void
pushNumericMembers(const Json &obj, FlatEntry &entry)
{
    for (const auto &[field, value] : obj.members()) {
        if (value.isNumber())
            entry.metrics.emplace_back(field, value.asDouble());
    }
}

/**
 * Flatten a bench/profile document: top-level numbers form one
 * "(top)" entry, each object of a top-level array becomes an entry
 * keyed by its string fields, and each top-level object contributes
 * its numeric members as an entry (e.g. the counters blob). Nested
 * structure beyond that is ignored — the gate compares headline
 * metrics, not whole documents.
 */
void
flattenDoc(const Json &doc, std::vector<FlatEntry> &out)
{
    FlatEntry top;
    top.key = "(top)";
    pushNumericMembers(doc, top);
    if (!top.metrics.empty())
        out.push_back(std::move(top));

    for (const auto &[field, value] : doc.members()) {
        if (value.isArray()) {
            std::size_t index = 0;
            for (const Json &item : value.items()) {
                if (!item.isObject()) {
                    ++index;
                    continue;
                }
                FlatEntry e;
                e.key = entryKey(field, item, index);
                pushNumericMembers(item, e);
                if (!e.metrics.empty())
                    out.push_back(std::move(e));
                ++index;
            }
        } else if (value.isObject()) {
            FlatEntry e;
            e.key = field;
            pushNumericMembers(value, e);
            if (!e.metrics.empty())
                out.push_back(std::move(e));
        }
    }
}

} // namespace

int
metricDirection(const std::string &metric)
{
    if (metric.find("per_sec") != std::string::npos ||
        metric == "throughput" || metric == "ipc" ||
        metric == "fairness" || metric == "parallel_efficiency" ||
        endsWithStr(metric, "_ipc"))
        return 1;
    if (metric.find("ns_per_iter") != std::string::npos ||
        startsWithStr(metric, "latency_") ||
        endsWithStr(metric, "_mpki") || endsWithStr(metric, "_ns"))
        return -1;
    return 0;
}

double
metricNoisePct(const std::string &metric)
{
    switch (metricDirection(metric)) {
      case 0:
        return 0.0;
      case 1:
        // Throughput-like. Timing-derived rates get the full machine
        // noise margin; sim-derived ratios are deterministic but may
        // shift slightly across compilers, so a small band stays.
        if (metric == "parallel_efficiency")
            return 20.0;
        if (metric.find("per_sec") != std::string::npos)
            return 10.0;
        return 5.0;
      default:
        // Latency-like. Host-clock span totals (profile exports) are
        // far noisier than per-iteration bench timings or simulated
        // latencies.
        if (endsWithStr(metric, "_ns"))
            return 50.0;
        if (metric.find("ns_per_iter") != std::string::npos)
            return 10.0;
        return 5.0;
    }
}

bool
diffBenchDocs(const Json &baseline, const Json &candidate,
              double noise_override_pct, BenchDiffResult &out,
              std::string &error)
{
    out = BenchDiffResult{};
    error.clear();
    if (!baseline.isObject() || !baseline.contains("schema") ||
        !baseline.at("schema").isString()) {
        error = "baseline document has no \"schema\" string";
        return false;
    }
    if (!candidate.isObject() || !candidate.contains("schema") ||
        !candidate.at("schema").isString()) {
        error = "candidate document has no \"schema\" string";
        return false;
    }
    out.schema = baseline.at("schema").asString();
    if (candidate.at("schema").asString() != out.schema) {
        error = "schema mismatch: baseline " + out.schema +
                " vs candidate " + candidate.at("schema").asString();
        return false;
    }

    std::vector<FlatEntry> baseEntries;
    std::vector<FlatEntry> candEntries;
    flattenDoc(baseline, baseEntries);
    flattenDoc(candidate, candEntries);
    std::map<std::string, std::map<std::string, double>> candIndex;
    for (const FlatEntry &e : candEntries) {
        auto &metrics = candIndex[e.key];
        for (const auto &[metric, value] : e.metrics)
            metrics[metric] = value;
    }

    for (const FlatEntry &e : baseEntries) {
        auto ci = candIndex.find(e.key);
        if (ci == candIndex.end()) {
            out.notes.push_back("entry \"" + e.key +
                                "\" missing from candidate");
            continue;
        }
        for (const auto &[metric, baseValue] : e.metrics) {
            auto mi = ci->second.find(metric);
            if (mi == ci->second.end()) {
                out.notes.push_back("metric \"" + e.key + "." + metric +
                                    "\" missing from candidate");
                continue;
            }
            MetricDelta d;
            d.entry = e.key;
            d.metric = metric;
            d.baseline = baseValue;
            d.candidate = mi->second;
            d.direction = metricDirection(metric);
            if (baseValue != 0.0) {
                d.deltaPct = 100.0 * (d.candidate - d.baseline) /
                             std::fabs(d.baseline);
            } else {
                d.deltaPct = d.candidate == 0.0 ? 0.0 : 100.0;
                d.direction = 0; // no meaningful relative change
            }
            if (d.direction != 0) {
                d.noisePct = noise_override_pct > 0.0
                                 ? noise_override_pct
                                 : metricNoisePct(metric);
                ++out.gatedMetrics;
                d.regression =
                    (d.direction > 0 && d.deltaPct < -d.noisePct) ||
                    (d.direction < 0 && d.deltaPct > d.noisePct);
                if (d.regression)
                    out.regressed = true;
            }
            out.deltas.push_back(std::move(d));
        }
    }
    for (const FlatEntry &e : candEntries) {
        bool known = false;
        for (const FlatEntry &b : baseEntries)
            known = known || b.key == e.key;
        if (!known)
            out.notes.push_back("entry \"" + e.key +
                                "\" new in candidate");
    }
    return true;
}

std::string
renderBenchDiff(const BenchDiffResult &result)
{
    std::ostringstream os;
    os << "bench-diff [" << result.schema << "]\n";
    char line[256];
    int infoSkipped = 0;
    for (const MetricDelta &d : result.deltas) {
        if (d.direction == 0) {
            ++infoSkipped;
            continue;
        }
        const char *verdict = d.regression
                                  ? "REGRESSION"
                                  : (d.deltaPct * d.direction >
                                             d.noisePct
                                         ? "improved"
                                         : "ok");
        std::snprintf(line, sizeof(line),
                      "  %-44s %-18s %14.4f %14.4f %+8.2f%% (tol "
                      "%.0f%%) %s\n",
                      d.entry.c_str(), d.metric.c_str(), d.baseline,
                      d.candidate, d.deltaPct, d.noisePct, verdict);
        os << line;
    }
    for (const std::string &note : result.notes)
        os << "  note: " << note << "\n";
    os << "  " << result.gatedMetrics << " gated metric(s), "
       << infoSkipped << " informational skipped, "
       << (result.regressed ? "REGRESSION detected" : "no regression")
       << "\n";
    return os.str();
}

} // namespace smthill
