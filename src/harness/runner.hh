/**
 * @file
 * Experiment runner: builds machines for workloads, drives a policy
 * epoch by epoch, gathers per-epoch and end-to-end performance, and
 * measures/caches stand-alone (solo) IPCs for the weighted metrics.
 */

#ifndef SMTHILL_HARNESS_RUNNER_HH
#define SMTHILL_HARNESS_RUNNER_HH

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "core/metrics.hh"
#include "harness/report.hh"
#include "pipeline/cpu.hh"
#include "policy/policy.hh"
#include "workload/workloads.hh"

namespace smthill
{

/** Shared experiment parameters. */
struct RunConfig
{
    Cycle epochSize = 64 * 1024;
    int epochs = 16;
    std::uint64_t seedSalt = 0;

    /**
     * Cycles run (unpartitioned, ICOUNT) before measurement begins,
     * so caches and predictors reach steady state. Plays the role of
     * the paper's SimPoint fast-forwarding. Low-IPC memory-bound
     * benchmarks need ~2M cycles before their L2-resident region is
     * warm; shorter warmups systematically understate solo IPCs and
     * inflate the weighted metrics.
     */
    Cycle warmupCycles = 2 * 1024 * 1024;

    /**
     * Concurrency for parallel sweeps (runGrid and the benches/CLI
     * built on it). jobs == 1 restores exact serial execution on the
     * calling thread; results are bit-identical either way because
     * every cell is an independent function of value-copied machine
     * state, reduced in index order.
     */
    int jobs = ThreadPool::defaultJobs();

    SmtConfig machine; ///< numThreads is overridden per workload
};

/** Per-epoch observation from a policy run. */
struct EpochRecord
{
    IpcSample ipc;
    Partition partition;     ///< partition during the epoch (if any)
    bool partitioned = false;
};

/** Result of running one policy on one workload. */
struct RunResult
{
    std::vector<EpochRecord> epochs;
    IpcSample overallIpc;    ///< committed / cycles over the full run
    CpuStats stats;
    MachineSnapshot startSnapshot; ///< at measurement start
    MachineSnapshot finalSnapshot; ///< at measurement end

    /** Derived per-thread rates over the measured interval. */
    MachineReport report(const std::vector<std::string> &labels = {}) const
    {
        return buildReport(startSnapshot, finalSnapshot, labels);
    }

    /** Evaluate an end-performance metric over the whole run. */
    double metric(PerfMetric m,
                  const std::array<double, kMaxThreads> &single_ipc) const
    {
        return evalMetric(m, overallIpc, single_ipc);
    }
};

/** Build a machine for @p workload using @p config's parameters. */
SmtCpu makeCpu(const Workload &workload, const RunConfig &config);

/**
 * Run @p policy on a fresh machine for @p workload.
 * The policy is attached, cycled every cycle, and given an epoch()
 * callback at every epoch boundary.
 */
RunResult runPolicy(const Workload &workload, ResourcePolicy &policy,
                    const RunConfig &config);

/**
 * Per-epoch observer for runPolicyOn: called after each epoch's
 * policy.epoch() hook with the epoch index and the machine. Host-side
 * telemetry only (stat snapshots, progress); the run ignores anything
 * the callback does, so results are identical with or without one.
 */
using EpochObserver = std::function<void(int epoch, const SmtCpu &cpu)>;

/** Same, but starting from an existing machine state (moved in). */
RunResult runPolicyOn(SmtCpu cpu, ResourcePolicy &policy, int epochs,
                      Cycle epoch_size,
                      const EpochObserver &on_epoch = {});

/**
 * Advance @p cpu by exactly one epoch under @p policy (cycle hooks
 * only; no epoch() callback). @return per-thread IPCs of the epoch.
 */
IpcSample runOneEpoch(SmtCpu &cpu, ResourcePolicy &policy,
                      Cycle epoch_size);

/**
 * Stand-alone IPC of @p benchmark on a single-context version of the
 * machine, measured over @p cycles and cached process-wide.
 */
double soloIpc(const std::string &benchmark, const RunConfig &config,
               Cycle cycles);

/** Solo IPCs for every thread of a workload (cached). */
std::array<double, kMaxThreads> soloIpcs(const Workload &workload,
                                         const RunConfig &config,
                                         Cycle cycles);

/**
 * Parallel sweep entry point for bench grids and the CLI: run
 * @p cell(i) for every i in [0, cells) across @p jobs threads
 * (jobs <= 1 runs serially on the calling thread). Cells must be
 * independent: each writes only its own per-index output slot, which
 * the caller then reduces/prints in index order. Everything reachable
 * from a cell (makeCpu/soloIpc caches, workload tables, profiles) is
 * thread-safe; policies and machines must be created inside the cell.
 */
void runGrid(std::size_t cells, int jobs,
             const std::function<void(std::size_t)> &cell);

/**
 * runGrid variant that also hands the cell its executing lane id
 * (calling thread 0, pool threads 1..jobs-1; see
 * ThreadPool::parallelForWorker). A worker id is never active on two
 * cells at once, so cells can use per-worker scratch — notably a
 * MachineArena machine restored from a shared checkpoint — without
 * synchronization and without changing results versus runGrid.
 */
void runGridWorker(std::size_t cells, int jobs,
                   const std::function<void(std::size_t, int)> &cell);

/** Read an integer knob from the environment (benches scaling). */
std::uint64_t envScale(const char *name, std::uint64_t def);

/** Standard bench RunConfig honoring SMTHILL_EPOCHS/EPOCH_SIZE/SEED. */
RunConfig benchRunConfig(int default_epochs);

} // namespace smthill

#endif // SMTHILL_HARNESS_RUNNER_HH
