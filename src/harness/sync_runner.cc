#include "harness/sync_runner.hh"

#include <algorithm>

#include "common/log.hh"

namespace smthill
{

double
SyncResult::offlineWinRate(std::size_t other_index) const
{
    const SyncSeries &s = others.at(other_index);
    if (offline.metric.empty())
        return 0.0;
    std::size_t n = std::min(offline.metric.size(), s.metric.size());
    std::size_t wins = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (offline.metric[i] >= s.metric[i])
            ++wins;
    return static_cast<double>(wins) / static_cast<double>(n);
}

SyncResult
syncCompareOffline(SmtCpu cpu, const OfflineExhaustive &offline,
                   const std::vector<ResourcePolicy *> &policies,
                   int epochs)
{
    SyncResult res;
    res.offline.name = "OFF-LINE";
    for (ResourcePolicy *p : policies)
        res.others.push_back(SyncSeries{p->name(), {}});

    const OfflineConfig &oc = offline.config();

    for (int e = 0; e < epochs; ++e) {
        const SmtCpu checkpoint = cpu;

        // Each policy runs one epoch from the shared checkpoint with
        // a fresh clone (its steady state re-forms within cycles).
        for (std::size_t pi = 0; pi < policies.size(); ++pi) {
            SmtCpu trial = checkpoint;
            auto policy = policies[pi]->clone();
            policy->attach(trial);
            IpcSample s = runOneEpoch(trial, *policy, oc.epochSize);
            res.others[pi].metric.push_back(
                evalMetric(oc.metric, s, oc.singleIpc));
        }

        // Advance the real machine along OFF-LINE's best path.
        OfflineEpoch rec = offline.stepEpoch(cpu);
        res.offline.metric.push_back(rec.metricValue);
    }
    return res;
}

std::vector<HillTraceEpoch>
traceHillVsOffline(SmtCpu cpu, HillClimbing &hill,
                   const OfflineConfig &offline_config, int epochs)
{
    if (cpu.numThreads() != 2)
        fatal("traceHillVsOffline: 2-thread machines only");

    OfflineConfig oc = offline_config;
    oc.keepCurves = true;
    oc.epochSize = hill.config().epochSize;
    OfflineExhaustive offline(oc);

    std::vector<HillTraceEpoch> out;
    out.reserve(epochs);

    hill.attach(cpu);
    for (int e = 0; e < epochs; ++e) {
        // Exhaustively map the epoch from the checkpoint, without
        // letting it advance the real machine.
        SmtCpu probe = cpu;
        OfflineEpoch best = offline.stepEpoch(probe);

        HillTraceEpoch rec;
        rec.offlineShare0 = best.best.share[0];
        rec.offlineMetric = best.metricValue;
        rec.curveShares = std::move(best.curveShares);
        rec.curve = std::move(best.curve);
        rec.hillShare0 =
            cpu.partitioningEnabled() ? cpu.partition().share[0] : -1;

        // Hill-climbing takes its real epoch.
        IpcSample s = runOneEpoch(cpu, hill, oc.epochSize);
        rec.hillMetric = evalMetric(oc.metric, s, oc.singleIpc);
        hill.epoch(cpu, static_cast<std::uint64_t>(e));

        out.push_back(std::move(rec));
    }
    return out;
}

} // namespace smthill
