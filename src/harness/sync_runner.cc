#include "harness/sync_runner.hh"

#include <algorithm>

#include "common/log.hh"

namespace smthill
{

double
SyncResult::offlineWinRate(std::size_t other_index) const
{
    const SyncSeries &s = others.at(other_index);
    if (offline.metric.empty())
        return 0.0;
    std::size_t n = std::min(offline.metric.size(), s.metric.size());
    std::size_t wins = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (offline.metric[i] >= s.metric[i])
            ++wins;
    return static_cast<double>(wins) / static_cast<double>(n);
}

SyncResult
syncCompareOffline(SmtCpu cpu, const OfflineExhaustive &offline,
                   const std::vector<ResourcePolicy *> &policies,
                   int epochs, EventTrace *trace)
{
    SyncResult res;
    res.offline.name = "OFF-LINE";
    for (ResourcePolicy *p : policies)
        res.others.push_back(SyncSeries{p->name(), {}});

    const OfflineConfig &oc = offline.config();

    if (trace) {
        trace->processName(0, "OFF-LINE");
        for (std::size_t pi = 0; pi < policies.size(); ++pi)
            trace->processName(1 + static_cast<int>(pi),
                               policies[pi]->name());
    }

    for (int e = 0; e < epochs; ++e) {
        // One checkpoint capture per epoch, not per trial.
        const SmtCpu checkpoint = cpu; // smthill-lint: allow(cpu-copy-hot-path)

        // Each policy runs one epoch from the shared checkpoint with
        // a fresh clone (its steady state re-forms within cycles).
        // A handful of copies per epoch, each needing its own
        // event-trace wiring, so the arena buys nothing here.
        for (std::size_t pi = 0; pi < policies.size(); ++pi) {
            SmtCpu trial = checkpoint; // smthill-lint: allow(cpu-copy-hot-path)
            auto policy = policies[pi]->clone();
            // Clones drop any event-trace link (EventTraceRef), so
            // the per-epoch throwaway machines must be wired
            // explicitly; each policy files under its own process.
            if (trace) {
                int pid = 1 + static_cast<int>(pi);
                policy->setEventTrace(trace, pid);
                trial.setEventTrace(trace, pid);
            }
            policy->attach(trial);
            IpcSample s = runOneEpoch(trial, *policy, oc.epochSize);
            res.others[pi].metric.push_back(
                evalMetric(oc.metric, s, oc.singleIpc));
        }

        // Advance the real machine along OFF-LINE's best path. The
        // step replaces the machine with a committed trial copy, so
        // the trace link must be restored every epoch.
        if (trace)
            cpu.setEventTrace(trace, 0);
        OfflineEpoch rec = offline.stepEpoch(cpu);
        res.offline.metric.push_back(rec.metricValue);
        if (trace) {
            Json args = Json::object();
            args.set("epoch", e);
            args.set("metric", rec.metricValue);
            Json shares = Json::array();
            for (int i = 0; i < rec.best.numThreads; ++i)
                shares.push(Json(rec.best.share[i]));
            args.set("best", std::move(shares));
            trace->instant(cpu.now(), 0, kControlTid, "offline",
                           "best.partition", std::move(args));
        }
    }
    return res;
}

std::vector<HillTraceEpoch>
traceHillVsOffline(SmtCpu cpu, HillClimbing &hill,
                   const OfflineConfig &offline_config, int epochs)
{
    if (cpu.numThreads() != 2)
        fatal("traceHillVsOffline: 2-thread machines only");

    OfflineConfig oc = offline_config;
    oc.keepCurves = true;
    oc.epochSize = hill.config().epochSize;
    OfflineExhaustive offline(oc);

    std::vector<HillTraceEpoch> out;
    out.reserve(epochs);

    // The machine arrived by value; mirror the hill policy's event
    // trace (if any) onto it. Probe copies drop the link, so the
    // exhaustive per-epoch mapping never pollutes the stream.
    if (hill.eventTrace())
        cpu.setEventTrace(hill.eventTrace(), hill.eventTracePid());
    hill.attach(cpu);
    for (int e = 0; e < epochs; ++e) {
        // Exhaustively map the epoch from the checkpoint, without
        // letting it advance the real machine (one copy per epoch).
        SmtCpu probe = cpu; // smthill-lint: allow(cpu-copy-hot-path)
        OfflineEpoch best = offline.stepEpoch(probe);

        HillTraceEpoch rec;
        rec.offlineShare0 = best.best.share[0];
        rec.offlineMetric = best.metricValue;
        rec.curveShares = std::move(best.curveShares);
        rec.curve = std::move(best.curve);
        rec.hillShare0 =
            cpu.partitioningEnabled() ? cpu.partition().share[0] : -1;

        // Hill-climbing takes its real epoch.
        IpcSample s = runOneEpoch(cpu, hill, oc.epochSize);
        rec.hillMetric = evalMetric(oc.metric, s, oc.singleIpc);
        hill.epoch(cpu, static_cast<std::uint64_t>(e));

        out.push_back(std::move(rec));
    }
    return out;
}

} // namespace smthill
