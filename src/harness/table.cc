#include "harness/table.hh"

#include <cstdint>
#include <cstdio>
#include <sstream>

#include "common/log.hh"

namespace smthill
{

Table::Table(std::vector<std::string> column_headers)
    : headers(std::move(column_headers))
{
    if (headers.empty())
        fatal("Table: need at least one column");
}

void
Table::beginRow()
{
    if (!rows.empty() && rows.back().size() != headers.size())
        fatal(msg("Table: row has ", rows.back().size(), " cells, want ",
                  headers.size()));
    rows.emplace_back();
    rows.back().reserve(headers.size());
}

void
Table::cell(const std::string &value)
{
    if (rows.empty() || rows.back().size() >= headers.size())
        fatal("Table: cell outside a row");
    rows.back().push_back(value);
}

void
Table::cell(double value, int precision)
{
    cell(fmt(value, precision));
}

void
Table::cell(std::int64_t value)
{
    cell(std::to_string(value));
}

void
Table::print() const
{
    std::vector<std::size_t> width(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        width[c] = headers[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < headers.size(); ++c) {
            const std::string &v = c < row.size() ? row[c] : std::string();
            std::printf("%-*s%s", static_cast<int>(width[c]), v.c_str(),
                        c + 1 < headers.size() ? "  " : "");
        }
        std::printf("\n");
    };

    print_row(headers);
    std::size_t total = 0;
    for (std::size_t c = 0; c < headers.size(); ++c)
        total += width[c] + (c + 1 < headers.size() ? 2 : 0);
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : rows)
        print_row(row);
}

void
Table::printCsv() const
{
    auto print_row = [](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            std::printf("%s%s", row[c].c_str(),
                        c + 1 < row.size() ? "," : "");
        std::printf("\n");
    };
    print_row(headers);
    for (const auto &row : rows)
        print_row(row);
}

std::string
fmt(double value, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << value;
    return os.str();
}

void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

} // namespace smthill
