#include "harness/runner.hh"

#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "common/log.hh"
#include "common/profile.hh"
#include "common/stat_registry.hh"
#include "trace/spec_profiles.hh"

namespace smthill
{

namespace
{

/**
 * Warm-machine cache key: every field that shapes the warmed state.
 * Keying on the whole SmtConfig (not a hand-picked subset) means no
 * future machine knob can silently alias two different machines.
 */
struct MachineKey
{
    std::string workload;
    std::uint64_t seedSalt;
    Cycle warmupCycles;
    SmtConfig machine;

    auto operator<=>(const MachineKey &) const = default;
};

/**
 * Cache slot whose value is built exactly once, outside the cache
 * lock, so concurrent grid cells warming *different* machines never
 * serialize behind each other.
 */
template <typename V>
struct OnceSlot
{
    std::once_flag once;
    std::optional<V> value;
};

/**
 * Mutex-guarded, size-bounded, build-once cache. Eviction is FIFO by
 * insertion; an evicted slot still being warmed stays alive through
 * its shared_ptr, so readers are never invalidated.
 */
template <typename K, typename V>
class WarmCache
{
  public:
    /**
     * @param name stat prefix; hit/miss/eviction counters register as
     *        "<name>.hits" etc. in globalStats()
     */
    WarmCache(std::size_t max_entries, const std::string &name)
        : maxEntries(max_entries),
          hitsStat(globalStats().counter(name + ".hits")),
          missesStat(globalStats().counter(name + ".misses")),
          evictionsStat(globalStats().counter(name + ".evictions"))
    {
    }

    template <typename Build>
    V
    get(const K &key, Build &&build)
    {
        std::shared_ptr<OnceSlot<V>> slot;
        {
            std::lock_guard<std::mutex> lock(mutex);
            auto it = entries.find(key);
            if (it == entries.end()) {
                while (entries.size() >= maxEntries && !order.empty()) {
                    entries.erase(order.front());
                    order.pop_front();
                    evictionsStat.inc();
                }
                slot = std::make_shared<OnceSlot<V>>();
                entries.emplace(key, slot);
                order.push_back(key);
                missesStat.inc();
            } else {
                slot = it->second;
                hitsStat.inc();
            }
        }
        std::call_once(slot->once,
                       [&] { slot->value.emplace(build()); });
        return *slot->value;
    }

  private:
    std::size_t maxEntries;
    std::mutex mutex;
    std::map<K, std::shared_ptr<OnceSlot<V>>> entries;
    std::deque<K> order;
    StatCounter &hitsStat;
    StatCounter &missesStat;
    StatCounter &evictionsStat;
};

} // namespace

SmtCpu
makeCpu(const Workload &workload, const RunConfig &config)
{
    // Warming a machine costs millions of cycles; benches build the
    // same warm machine for every policy, so cache it by value and
    // hand out copies. Bounded: a long-lived process sweeping many
    // machine configurations must not hold every warm machine alive.
    static WarmCache<MachineKey, SmtCpu> cache(
        64, "smthill.warm_cache.machine");
    MachineKey key{workload.name, config.seedSalt, config.warmupCycles,
                   config.machine};
    return cache.get(key, [&] {
        SMTHILL_PROF_SCOPE("harness.warm_build");
        SmtConfig machine = config.machine;
        machine.numThreads = workload.numThreads();
        SmtCpu cpu(machine, workload.makeGenerators(config.seedSalt));
        cpu.run(config.warmupCycles);
        return cpu;
    });
}

IpcSample
runOneEpoch(SmtCpu &cpu, ResourcePolicy &policy, Cycle epoch_size)
{
    SMTHILL_PROF_SCOPE("runner.epoch");
    auto before = cpu.stats().committed;
    for (Cycle c = 0; c < epoch_size; ++c) {
        policy.cycle(cpu);
        cpu.step();
    }
    IpcSample s;
    s.numThreads = cpu.numThreads();
    for (int i = 0; i < s.numThreads; ++i) {
        s.ipc[i] =
            static_cast<double>(cpu.stats().committed[i] - before[i]) /
            static_cast<double>(epoch_size);
    }
    return s;
}

RunResult
runPolicyOn(SmtCpu cpu, ResourcePolicy &policy, int epochs,
            Cycle epoch_size, const EpochObserver &on_epoch)
{
    SMTHILL_PROF_SCOPE("runner.policy_run");
    RunResult res;
    res.epochs.reserve(epochs);
    // The machine arrived by value, so any event-trace link its
    // source carried was dropped in the copy; mirror the policy's
    // link onto the machine this run will actually execute on.
    if (policy.eventTrace())
        cpu.setEventTrace(policy.eventTrace(), policy.eventTracePid());
    policy.attach(cpu);

    res.startSnapshot = MachineSnapshot::capture(cpu);
    auto start_committed = cpu.stats().committed;
    Cycle start_cycle = cpu.now();

    for (int e = 0; e < epochs; ++e) {
        EpochRecord rec;
        rec.partitioned = cpu.partitioningEnabled();
        if (rec.partitioned)
            rec.partition = cpu.partition();
        rec.ipc = runOneEpoch(cpu, policy, epoch_size);
        res.epochs.push_back(rec);
        policy.epoch(cpu, static_cast<std::uint64_t>(e));
        if (on_epoch)
            on_epoch(e, cpu);
    }

    Cycle elapsed = cpu.now() - start_cycle;
    res.overallIpc.numThreads = cpu.numThreads();
    for (int i = 0; i < cpu.numThreads(); ++i) {
        res.overallIpc.ipc[i] =
            static_cast<double>(cpu.stats().committed[i] -
                                start_committed[i]) /
            static_cast<double>(elapsed);
    }
    res.stats = cpu.stats();
    res.finalSnapshot = MachineSnapshot::capture(cpu);
    return res;
}

RunResult
runPolicy(const Workload &workload, ResourcePolicy &policy,
          const RunConfig &config)
{
    return runPolicyOn(makeCpu(workload, config), policy, config.epochs,
                       config.epochSize);
}

double
soloIpc(const std::string &benchmark, const RunConfig &config,
        Cycle cycles)
{
    // Process-wide cache: solo IPCs are reused across dozens of
    // workloads and policies within one bench binary. Keyed on the
    // whole machine configuration (the old string key ignored machine
    // overrides, so ablation sweeps could read stale values).
    struct SoloKey
    {
        std::string benchmark;
        Cycle cycles;
        std::uint64_t seedSalt;
        Cycle warmupCycles;
        SmtConfig machine;

        auto operator<=>(const SoloKey &) const = default;
    };
    static WarmCache<SoloKey, double> cache(
        1024, "smthill.warm_cache.solo_ipc");
    SoloKey key{benchmark, cycles, config.seedSalt, config.warmupCycles,
                config.machine};
    key.machine.numThreads = 1; // solo runs always use one context
    return cache.get(key, [&] {
        SMTHILL_PROF_SCOPE("harness.solo_build");
        SmtConfig machine = config.machine;
        machine.numThreads = 1;
        std::vector<StreamGenerator> gens;
        gens.emplace_back(specProfile(benchmark), config.seedSalt * 131);
        SmtCpu cpu(machine, std::move(gens));
        cpu.run(config.warmupCycles);
        std::uint64_t before = cpu.stats().committed[0];
        cpu.run(cycles);
        return static_cast<double>(cpu.stats().committed[0] - before) /
               static_cast<double>(cycles);
    });
}

std::array<double, kMaxThreads>
soloIpcs(const Workload &workload, const RunConfig &config, Cycle cycles)
{
    std::array<double, kMaxThreads> out{};
    for (int i = 0; i < workload.numThreads(); ++i)
        out[i] = soloIpc(workload.benchmarks[i], config, cycles);
    return out;
}

void
runGrid(std::size_t cells, int jobs,
        const std::function<void(std::size_t)> &cell)
{
    ThreadPool pool(jobs);
    pool.parallelFor(cells, cell);
}

void
runGridWorker(std::size_t cells, int jobs,
              const std::function<void(std::size_t, int)> &cell)
{
    ThreadPool pool(jobs);
    pool.parallelForWorker(cells, cell);
}

std::uint64_t
envScale(const char *name, std::uint64_t def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v) {
        warn(msg("ignoring unparsable ", name, "='", v, "'"));
        return def;
    }
    return parsed;
}

RunConfig
benchRunConfig(int default_epochs)
{
    RunConfig rc;
    rc.epochs = static_cast<int>(
        envScale("SMTHILL_EPOCHS", static_cast<std::uint64_t>(
                                       default_epochs)));
    rc.epochSize = envScale("SMTHILL_EPOCH_SIZE", rc.epochSize);
    rc.seedSalt = envScale("SMTHILL_SEED", 0);
    rc.warmupCycles = envScale("SMTHILL_WARMUP", rc.warmupCycles);
    rc.jobs = static_cast<int>(
        envScale("SMTHILL_JOBS", static_cast<std::uint64_t>(rc.jobs)));
    return rc;
}

} // namespace smthill
