#include "harness/runner.hh"

#include <cstdlib>
#include <map>

#include "common/log.hh"
#include "trace/spec_profiles.hh"

namespace smthill
{

namespace
{

/** Key the warm-machine cache on everything that shapes the state. */
std::string
machineKey(const Workload &workload, const RunConfig &config)
{
    const SmtConfig &m = config.machine;
    std::string key = workload.name;
    for (auto v : {static_cast<std::uint64_t>(config.seedSalt),
                   static_cast<std::uint64_t>(config.warmupCycles),
                   static_cast<std::uint64_t>(m.intRegs),
                   static_cast<std::uint64_t>(m.robSize),
                   static_cast<std::uint64_t>(m.intIqSize),
                   static_cast<std::uint64_t>(m.lsqSize),
                   static_cast<std::uint64_t>(m.fetchWidth),
                   static_cast<std::uint64_t>(m.issueWidth),
                   static_cast<std::uint64_t>(m.mem.ul2.sizeBytes),
                   static_cast<std::uint64_t>(m.mem.memFirstChunk),
                   static_cast<std::uint64_t>(m.memPorts),
                   static_cast<std::uint64_t>(m.intAddUnits),
                   static_cast<std::uint64_t>(m.fpRegs),
                   static_cast<std::uint64_t>(m.mem.dl1.sizeBytes),
                   static_cast<std::uint64_t>(m.mispredictRedirect)})
        key += "/" + std::to_string(v);
    return key;
}

} // namespace

SmtCpu
makeCpu(const Workload &workload, const RunConfig &config)
{
    // Warming a machine costs millions of cycles; benches build the
    // same warm machine for every policy, so cache it by value and
    // hand out copies.
    static std::map<std::string, SmtCpu> cache;
    std::string key = machineKey(workload, config);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;

    SmtConfig machine = config.machine;
    machine.numThreads = workload.numThreads();
    SmtCpu cpu(machine, workload.makeGenerators(config.seedSalt));
    cpu.run(config.warmupCycles);
    cache.emplace(key, cpu);
    return cpu;
}

IpcSample
runOneEpoch(SmtCpu &cpu, ResourcePolicy &policy, Cycle epoch_size)
{
    auto before = cpu.stats().committed;
    for (Cycle c = 0; c < epoch_size; ++c) {
        policy.cycle(cpu);
        cpu.step();
    }
    IpcSample s;
    s.numThreads = cpu.numThreads();
    for (int i = 0; i < s.numThreads; ++i) {
        s.ipc[i] =
            static_cast<double>(cpu.stats().committed[i] - before[i]) /
            static_cast<double>(epoch_size);
    }
    return s;
}

RunResult
runPolicyOn(SmtCpu cpu, ResourcePolicy &policy, int epochs,
            Cycle epoch_size)
{
    RunResult res;
    res.epochs.reserve(epochs);
    policy.attach(cpu);

    res.startSnapshot = MachineSnapshot::capture(cpu);
    auto start_committed = cpu.stats().committed;
    Cycle start_cycle = cpu.now();

    for (int e = 0; e < epochs; ++e) {
        EpochRecord rec;
        rec.partitioned = cpu.partitioningEnabled();
        if (rec.partitioned)
            rec.partition = cpu.partition();
        rec.ipc = runOneEpoch(cpu, policy, epoch_size);
        res.epochs.push_back(rec);
        policy.epoch(cpu, static_cast<std::uint64_t>(e));
    }

    Cycle elapsed = cpu.now() - start_cycle;
    res.overallIpc.numThreads = cpu.numThreads();
    for (int i = 0; i < cpu.numThreads(); ++i) {
        res.overallIpc.ipc[i] =
            static_cast<double>(cpu.stats().committed[i] -
                                start_committed[i]) /
            static_cast<double>(elapsed);
    }
    res.stats = cpu.stats();
    res.finalSnapshot = MachineSnapshot::capture(cpu);
    return res;
}

RunResult
runPolicy(const Workload &workload, ResourcePolicy &policy,
          const RunConfig &config)
{
    return runPolicyOn(makeCpu(workload, config), policy, config.epochs,
                       config.epochSize);
}

double
soloIpc(const std::string &benchmark, const RunConfig &config,
        Cycle cycles)
{
    // Process-wide cache: solo IPCs are reused across dozens of
    // workloads and policies within one bench binary.
    static std::map<std::string, double> cache;
    std::string key = benchmark + "@" + std::to_string(cycles) + "/" +
                      std::to_string(config.seedSalt) + "w" +
                      std::to_string(config.warmupCycles);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;

    SmtConfig machine = config.machine;
    machine.numThreads = 1;
    std::vector<StreamGenerator> gens;
    gens.emplace_back(specProfile(benchmark), config.seedSalt * 131);
    SmtCpu cpu(machine, std::move(gens));
    cpu.run(config.warmupCycles);
    std::uint64_t before = cpu.stats().committed[0];
    cpu.run(cycles);
    double ipc = static_cast<double>(cpu.stats().committed[0] - before) /
                 static_cast<double>(cycles);
    cache[key] = ipc;
    return ipc;
}

std::array<double, kMaxThreads>
soloIpcs(const Workload &workload, const RunConfig &config, Cycle cycles)
{
    std::array<double, kMaxThreads> out{};
    for (int i = 0; i < workload.numThreads(); ++i)
        out[i] = soloIpc(workload.benchmarks[i], config, cycles);
    return out;
}

std::uint64_t
envScale(const char *name, std::uint64_t def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v) {
        warn(msg("ignoring unparsable ", name, "='", v, "'"));
        return def;
    }
    return parsed;
}

RunConfig
benchRunConfig(int default_epochs)
{
    RunConfig rc;
    rc.epochs = static_cast<int>(
        envScale("SMTHILL_EPOCHS", static_cast<std::uint64_t>(
                                       default_epochs)));
    rc.epochSize = envScale("SMTHILL_EPOCH_SIZE", rc.epochSize);
    rc.seedSalt = envScale("SMTHILL_SEED", 0);
    rc.warmupCycles = envScale("SMTHILL_WARMUP", rc.warmupCycles);
    return rc;
}

} // namespace smthill
