#include "policy/icount.hh"

namespace smthill
{

void
IcountPolicy::attach(SmtCpu &cpu)
{
    cpu.clearPartition();
    for (int i = 0; i < cpu.numThreads(); ++i)
        cpu.setFetchLocked(static_cast<ThreadId>(i), false);
}

std::unique_ptr<ResourcePolicy>
IcountPolicy::clone() const
{
    return std::make_unique<IcountPolicy>(*this);
}

} // namespace smthill
