#include "policy/dg.hh"

#include <algorithm>

#include "common/log.hh"

namespace smthill
{

// --------------------------------------------------------------------
// DG
// --------------------------------------------------------------------

DgPolicy::DgPolicy(int miss_threshold) : missThreshold(miss_threshold)
{
    if (miss_threshold < 1)
        fatal("DgPolicy: threshold must be >= 1");
}

void
DgPolicy::attach(SmtCpu &cpu)
{
    cpu.clearPartition();
    locked.fill(false);
    for (int i = 0; i < cpu.numThreads(); ++i)
        cpu.setFetchLocked(static_cast<ThreadId>(i), false);
}

void
DgPolicy::cycle(SmtCpu &cpu)
{
    for (int i = 0; i < cpu.numThreads(); ++i) {
        auto tid = static_cast<ThreadId>(i);
        bool gate = cpu.dl1MissesInFlight(tid) >= missThreshold;
        if (gate != locked[i]) {
            locked[i] = gate;
            cpu.setFetchLocked(tid, gate);
        }
    }
}

std::unique_ptr<ResourcePolicy>
DgPolicy::clone() const
{
    return std::make_unique<DgPolicy>(*this);
}

// --------------------------------------------------------------------
// PDG
// --------------------------------------------------------------------

PdgPolicy::PdgPolicy(std::size_t table_entries)
    : mask(table_entries - 1),
      tables(static_cast<std::size_t>(kMaxThreads) * table_entries, 1)
{
    if (table_entries == 0 || (table_entries & (table_entries - 1)) != 0)
        fatal("PdgPolicy: table entries must be a power of two");
}

void
PdgPolicy::train(ThreadId tid, Addr pc, bool missed)
{
    std::uint8_t &ctr =
        tables[static_cast<std::size_t>(tid) * (mask + 1) +
               ((pc >> 2) & mask)];
    if (missed) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

bool
PdgPolicy::predictsMiss(ThreadId tid, Addr pc) const
{
    return tables[static_cast<std::size_t>(tid) * (mask + 1) +
                  ((pc >> 2) & mask)] >= 2;
}

void
PdgPolicy::onLoadEvent(const LoadEvent &ev)
{
    if (ev.completed) {
        train(ev.tid, ev.pc, ev.missedDl1);
        auto &pend = pendingPredicted[ev.tid];
        std::erase_if(pend, [&ev](const PendingLoad &p) {
            return p.seq == ev.seq;
        });
    } else if (predictsMiss(ev.tid, ev.pc)) {
        // Gate from dispatch, before the miss is even observed —
        // PDG's advantage over DG.
        pendingPredicted[ev.tid].push_back(PendingLoad{ev.seq, 0});
    }
}

void
PdgPolicy::attach(SmtCpu &cpu)
{
    cpu.clearPartition();
    locked.fill(false);
    for (auto &pend : pendingPredicted)
        pend.clear();
    for (int i = 0; i < cpu.numThreads(); ++i)
        cpu.setFetchLocked(static_cast<ThreadId>(i), false);
    cpu.setLoadObserver(
        [](void *ctx, const LoadEvent &ev) {
            static_cast<PdgPolicy *>(ctx)->onLoadEvent(ev);
        },
        this);
}

void
PdgPolicy::cycle(SmtCpu &cpu)
{
    Cycle now = cpu.now();
    for (int i = 0; i < cpu.numThreads(); ++i) {
        auto tid = static_cast<ThreadId>(i);
        auto &pend = pendingPredicted[tid];
        // Stamp entries added by the observer since the last cycle,
        // and expire stale ones (their loads were squashed and will
        // never complete).
        for (PendingLoad &p : pend)
            if (p.stampedAt == 0)
                p.stampedAt = now;
        std::erase_if(pend, [now](const PendingLoad &p) {
            return p.stampedAt != 0 && now - p.stampedAt > 2000;
        });

        bool gate = !pend.empty() ||
                    cpu.dl1MissesInFlight(tid) > 0;
        if (gate != locked[i]) {
            locked[i] = gate;
            cpu.setFetchLocked(tid, gate);
        }
    }
}

std::unique_ptr<ResourcePolicy>
PdgPolicy::clone() const
{
    return std::make_unique<PdgPolicy>(*this);
}

} // namespace smthill
