/**
 * @file
 * FLUSH (Tullsen & Brown, MICRO 2001): when a thread's load is
 * discovered to be headed to main memory, squash all of the thread's
 * instructions younger than the load and fetch-lock the thread until
 * the load returns. This frees the shared resources the stalled
 * thread would otherwise clog, at the price of re-fetching the
 * squashed instructions.
 */

#ifndef SMTHILL_POLICY_FLUSH_HH
#define SMTHILL_POLICY_FLUSH_HH

#include <array>

#include "policy/policy.hh"

namespace smthill
{

/** The FLUSH long-latency-load policy. */
class FlushPolicy : public ResourcePolicy
{
  public:
    /**
     * @param trigger_cycles how long a DL1 miss must be outstanding
     *        before it is treated as a memory-bound load; the default
     *        matches the L2 hit latency (an access still outstanding
     *        past it must have missed the L2)
     */
    explicit FlushPolicy(Cycle trigger_cycles = 20);

    std::string name() const override { return "FLUSH"; }
    void attach(SmtCpu &cpu) override;
    void cycle(SmtCpu &cpu) override;
    std::unique_ptr<ResourcePolicy> clone() const override;

    /** Total instructions this policy has flushed (wasted fetch). */
    std::uint64_t flushedInsts() const { return totalFlushed; }

  private:
    Cycle triggerCycles;
    std::array<bool, kMaxThreads> locked{};
    std::uint64_t totalFlushed = 0;
};

} // namespace smthill

#endif // SMTHILL_POLICY_FLUSH_HH
