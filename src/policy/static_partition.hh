/**
 * @file
 * Static partitioning (Raasch & Reinhardt, PACT 2003 family): the
 * partitioned resources are split in fixed shares that never change.
 * The paper positions learning-based distribution between DCRA
 * (update every cycle) and static partitioning (never update).
 */

#ifndef SMTHILL_POLICY_STATIC_PARTITION_HH
#define SMTHILL_POLICY_STATIC_PARTITION_HH

#include "pipeline/resources.hh"
#include "policy/policy.hh"

namespace smthill
{

/** Fixed-share partitioning; equal shares by default. */
class StaticPartitionPolicy : public ResourcePolicy
{
  public:
    /** Equal split across all threads. */
    StaticPartitionPolicy() = default;

    /** Fixed custom shares. */
    explicit StaticPartitionPolicy(Partition shares);

    std::string name() const override { return "STATIC"; }
    void attach(SmtCpu &cpu) override;
    std::unique_ptr<ResourcePolicy> clone() const override;

  private:
    Partition fixed;
    bool haveCustom = false;
};

} // namespace smthill

#endif // SMTHILL_POLICY_STATIC_PARTITION_HH
