#include "policy/stall.hh"

namespace smthill
{

StallPolicy::StallPolicy(Cycle stall_threshold)
    : threshold(stall_threshold)
{
}

void
StallPolicy::attach(SmtCpu &cpu)
{
    cpu.clearPartition();
    locked.fill(false);
    for (int i = 0; i < cpu.numThreads(); ++i)
        cpu.setFetchLocked(static_cast<ThreadId>(i), false);
}

void
StallPolicy::cycle(SmtCpu &cpu)
{
    Cycle now = cpu.now();
    for (int i = 0; i < cpu.numThreads(); ++i) {
        auto tid = static_cast<ThreadId>(i);
        bool long_load = false;
        for (const OutstandingMiss &m : cpu.outstandingMisses(tid)) {
            if (now - m.issuedAt >= threshold) {
                long_load = true;
                break;
            }
        }
        if (long_load != locked[i]) {
            locked[i] = long_load;
            cpu.setFetchLocked(tid, long_load);
        }
    }
}

std::unique_ptr<ResourcePolicy>
StallPolicy::clone() const
{
    return std::make_unique<StallPolicy>(*this);
}

} // namespace smthill
