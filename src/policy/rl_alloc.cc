#include "policy/rl_alloc.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/stat_registry.hh"

namespace smthill
{

namespace
{

Json
shareJson(const Partition &p)
{
    Json arr = Json::array();
    for (int i = 0; i < p.numThreads; ++i)
        arr.push(Json(p.share[i]));
    return arr;
}

Json
ipcJson(const IpcSample &s)
{
    Json arr = Json::array();
    for (int i = 0; i < s.numThreads; ++i)
        arr.push(Json(s.ipc[i]));
    return arr;
}

StatCounter &
rlEpochs()
{
    static StatCounter &c = globalStats().counter("smthill.rl.epochs");
    return c;
}

StatCounter &
rlExplores()
{
    static StatCounter &c = globalStats().counter("smthill.rl.explores");
    return c;
}

StatCounter &
rlMoves()
{
    static StatCounter &c =
        globalStats().counter("smthill.rl.anchor_moves");
    return c;
}

HillConfig
hillBase(const RlConfig &r)
{
    HillConfig h;
    h.epochSize = r.epochSize;
    h.delta = r.delta;
    h.metric = r.metric;
    h.softwareCost = r.softwareCost;
    h.minShare = r.minShare;
    // The RL learner never solo-samples: weighted metrics run
    // unnormalized via the evalMetric fallback.
    h.sampleSingleIpc = false;
    return h;
}

} // namespace

RlAllocator::RlAllocator(RlConfig config)
    : HillClimbing(hillBase(config)), rcfg(config), rng(config.seed)
{
    if (rcfg.alpha <= 0.0 || rcfg.alpha > 1.0)
        fatal("RlAllocator: alpha must be in (0, 1]");
    if (rcfg.discount < 0.0 || rcfg.discount >= 1.0)
        fatal("RlAllocator: discount must be in [0, 1)");
    if (rcfg.epsilon < 0.0 || rcfg.epsilon > 1.0)
        fatal("RlAllocator: epsilon must be in [0, 1]");
}

std::string
RlAllocator::name() const
{
    return "RL-Q";
}

int
RlAllocator::stateOf() const
{
    int state = -1;
    for (int i = 0; i < anchorPartition.numThreads; ++i) {
        if (!activeMask[i])
            continue;
        if (state < 0 ||
            anchorPartition.share[i] > anchorPartition.share[state])
            state = i;
    }
    return state;
}

double
RlAllocator::bestValue(int state, int nt) const
{
    double best = qTable[state][kStay];
    for (int a = 0; a < nt; ++a)
        if (activeMask[a] && qTable[state][a] > best)
            best = qTable[state][a];
    return best;
}

int
RlAllocator::selectAction(int state, int nt)
{
    // Clones copy the Rng stream position, so the draw sequence —
    // one chance() per decision, plus one nextBelow() on explore —
    // replays bit-identically.
    if (rng.chance(rcfg.epsilon)) {
        ++exploreCount;
        rlExplores().inc();
        int na = numActive(nt);
        std::uint64_t pick = rng.nextBelow(
            static_cast<std::uint64_t>(na) + 1);
        if (pick == static_cast<std::uint64_t>(na))
            return kStay;
        return activeAt(static_cast<int>(pick));
    }
    // Greedy: strictly-greater scan, kStay first, so ties break
    // deterministically (stay, then lowest active index).
    int best = kStay;
    double bestQ = qTable[state][kStay];
    for (int a = 0; a < nt; ++a) {
        if (activeMask[a] && qTable[state][a] > bestQ) {
            bestQ = qTable[state][a];
            best = a;
        }
    }
    return best;
}

void
RlAllocator::attach(SmtCpu &cpu)
{
    int nt = cpu.numThreads();
    anchorPartition = Partition::equal(nt, cpu.config().intRegs);
    roundPerf.fill(0.0);
    singleIpcEst = rcfg.singleIpc;
    lastCommitted = cpu.stats().committed;
    lastEpochStart = cpu.now();
    roundStart = cpu.now();
    lastElapsed = 0;
    algEpoch = 0;
    epochsSinceSample = 0;
    sampleRotation = 0;
    samplingThread = -1;
    bootstrapPending = 0;
    roundPos = 0;
    roundDirty = false;
    needsSolo.fill(false);
    residentAccum.fill(0);
    residentFrom.fill(cpu.now());
    int na = 0;
    for (int i = 0; i < nt; ++i) {
        activeMask[i] = cpu.threadEnabled(static_cast<ThreadId>(i));
        na += activeMask[i] ? 1 : 0;
    }
    openSystemMode = na < nt;
    for (int i = 0; i < nt; ++i)
        cpu.setFetchLocked(static_cast<ThreadId>(i), false);
    if (openSystemMode)
        anchorPartition = redistributeDetached(anchorPartition,
                                               activeMask, cfg.minShare);
    rng = Rng(rcfg.seed);
    for (auto &row : qTable)
        row.fill(0.0);
    lastState = -1;
    lastAction = -1;
    exploreCount = 0;
    moveCount = 0;
    // The first epoch runs under the plain anchor; learning starts at
    // the first boundary once a reward exists to update from.
    if (na >= 2)
        cpu.setPartition(anchorPartition);
    else
        cpu.clearPartition();
}

void
RlAllocator::epoch(SmtCpu &cpu, std::uint64_t epoch_id)
{
    int nt = cpu.numThreads();
    int na = numActive(nt);
    // Consume the churn flag: it covers the epoch that just ended.
    bool dirty = roundDirty;
    roundDirty = false;
    IpcSample sample = measureEpoch(cpu);
    Partition ran = cpu.partition();
    bool ran_partitioned = cpu.partitioningEnabled();
    double reward = evalActiveMetric(sample);

    EventTrace *evt = eventTraceRef.trace;
    int evtPid = eventTraceRef.pid;
    if (evt) {
        Json args = Json::object();
        args.set("epoch", epoch_id);
        args.set("kind", "learn");
        args.set("ipc", ipcJson(sample));
        evt->complete(lastEpochStart,
                      static_cast<std::int64_t>(lastElapsed), evtPid,
                      kControlTid, "epoch", "epoch", std::move(args));
    }

    int state = na >= 1 ? stateOf() : -1;
    // Q-update from the transition that just completed. A
    // churn-dirtied epoch ran under a different active set; its
    // reward is not attributable to (lastState, lastAction).
    if (!dirty && lastState >= 0 && lastAction >= 0 && state >= 0) {
        double target =
            reward + rcfg.discount * bestValue(state, nt);
        qTable[lastState][lastAction] +=
            rcfg.alpha * (target - qTable[lastState][lastAction]);
    }

    bool moved = false;
    int gradient = -1;
    if (na >= 2 && state >= 0) {
        int action = selectAction(state, nt);
        if (action != kStay) {
            Partition before = anchorPartition;
            Partition next = moveAnchor(anchorPartition, action,
                                        cfg.delta, cfg.minShare);
            anchorPartition = overrideAnchor(cpu, next);
            moved = !(anchorPartition == before);
            gradient = action;
            if (moved) {
                ++moveCount;
                rlMoves().inc();
                if (evt) {
                    Json args = Json::object();
                    args.set("alg_epoch", algEpoch);
                    args.set("state", state);
                    args.set("action", action);
                    args.set("reward", reward);
                    args.set("q", qTable[state][action]);
                    args.set("anchor_before", shareJson(before));
                    args.set("anchor_step", shareJson(next));
                    args.set("anchor_after",
                             shareJson(anchorPartition));
                    evt->instant(cpu.now(), evtPid, kControlTid, "rl",
                                 "anchor.move", std::move(args));
                }
            }
        }
        cpu.setPartition(anchorPartition);
        lastState = state;
        lastAction = action;
    } else {
        // Nothing to learn with 0 or 1 jobs resident.
        lastState = -1;
        lastAction = -1;
    }
    ++algEpoch;
    rlEpochs().inc();
    traceEpoch(cpu, epoch_id, sample, ran, ran_partitioned, reward, -1,
               gradient, moved);
    chargeBoundary(cpu);
}

void
RlAllocator::threadAttached(SmtCpu &cpu, ThreadId tid)
{
    int nt = cpu.numThreads();
    openSystemMode = true;
    activeMask[tid] = true;
    residentAccum[tid] = 0;
    residentFrom[tid] = cpu.now();
    lastCommitted[tid] = cpu.stats().committed[tid];
    singleIpcEst[tid] = rcfg.singleIpc[tid];
    // Drained-anchor re-seed: after an all-departure the anchor holds
    // no shares, and admitAttached conserves the total it is given.
    if (anchorPartition.total() == 0)
        anchorPartition.share[tid] = cpu.config().intRegs;
    anchorPartition =
        admitAttached(anchorPartition, activeMask, tid, cfg.minShare);
    roundDirty = true;
    lastState = -1;
    lastAction = -1;
    // A fresh job in a reused context invalidates what was learned
    // about that context: zero its state row and the move-toward-it
    // action column.
    qTable[tid].fill(0.0);
    for (auto &row : qTable)
        row[tid] = 0.0;
    if (numActive(nt) >= 2)
        cpu.setPartition(anchorPartition);
    else
        cpu.clearPartition();
    if (EventTrace *evt = eventTraceRef.trace) {
        Json args = Json::object();
        args.set("thread", static_cast<int>(tid));
        args.set("anchor", shareJson(anchorPartition));
        evt->instant(cpu.now(), eventTraceRef.pid, kControlTid, "rl",
                     "churn.attach", std::move(args));
    }
}

void
RlAllocator::threadDetached(SmtCpu &cpu, ThreadId tid)
{
    int nt = cpu.numThreads();
    openSystemMode = true;
    if (activeMask[tid]) {
        Cycle from = std::max(residentFrom[tid], lastEpochStart);
        residentAccum[tid] += cpu.now() > from ? cpu.now() - from : 0;
    }
    activeMask[tid] = false;
    anchorPartition =
        redistributeDetached(anchorPartition, activeMask, cfg.minShare);
    roundDirty = true;
    lastState = -1;
    lastAction = -1;
    if (numActive(nt) >= 2)
        cpu.setPartition(anchorPartition);
    else
        cpu.clearPartition();
    if (EventTrace *evt = eventTraceRef.trace) {
        Json args = Json::object();
        args.set("thread", static_cast<int>(tid));
        args.set("anchor", shareJson(anchorPartition));
        evt->instant(cpu.now(), eventTraceRef.pid, kControlTid, "rl",
                     "churn.detach", std::move(args));
    }
}

std::unique_ptr<ResourcePolicy>
RlAllocator::clone() const
{
    return std::make_unique<RlAllocator>(*this);
}

} // namespace smthill
