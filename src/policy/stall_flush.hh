/**
 * @file
 * STALL-FLUSH hybrid (Tullsen & Brown, MICRO 2001), Section 2: a
 * memory-bound thread is first only fetch-locked (STALL), avoiding
 * FLUSH's wasted fetch bandwidth; it is flushed only if the shared
 * resources actually approach exhaustion while the load is pending —
 * "resorting to flushing only when resources are exhausted".
 */

#ifndef SMTHILL_POLICY_STALL_FLUSH_HH
#define SMTHILL_POLICY_STALL_FLUSH_HH

#include <array>

#include "policy/policy.hh"

namespace smthill
{

/** The STALL-FLUSH hybrid policy. */
class StallFlushPolicy : public ResourcePolicy
{
  public:
    /**
     * @param trigger_cycles outstanding cycles that mark a load as
     *        memory-bound (defaults to the L2 hit latency)
     * @param pressure_frac fraction of a shared structure that must
     *        be occupied before flushing is allowed
     */
    explicit StallFlushPolicy(Cycle trigger_cycles = 20,
                              double pressure_frac = 0.9);

    std::string name() const override { return "STALL-FLUSH"; }
    void attach(SmtCpu &cpu) override;
    void cycle(SmtCpu &cpu) override;
    std::unique_ptr<ResourcePolicy> clone() const override;

    /** Instructions flushed so far (should be far below FLUSH's). */
    std::uint64_t flushedInsts() const { return totalFlushed; }

  private:
    /** @return true when shared structures are nearly exhausted. */
    bool underPressure(const SmtCpu &cpu) const;

    Cycle triggerCycles;
    double pressureFrac;
    std::array<bool, kMaxThreads> locked{};
    std::array<bool, kMaxThreads> flushedThisStall{};
    std::uint64_t totalFlushed = 0;
};

} // namespace smthill

#endif // SMTHILL_POLICY_STALL_FLUSH_HH
