#include "policy/flush.hh"

namespace smthill
{

FlushPolicy::FlushPolicy(Cycle trigger_cycles)
    : triggerCycles(trigger_cycles)
{
}

void
FlushPolicy::attach(SmtCpu &cpu)
{
    cpu.clearPartition();
    locked.fill(false);
    for (int i = 0; i < cpu.numThreads(); ++i)
        cpu.setFetchLocked(static_cast<ThreadId>(i), false);
}

void
FlushPolicy::cycle(SmtCpu &cpu)
{
    Cycle now = cpu.now();
    for (int i = 0; i < cpu.numThreads(); ++i) {
        auto tid = static_cast<ThreadId>(i);
        const auto &misses = cpu.outstandingMisses(tid);

        // Does the thread have a memory-bound load right now?
        bool has_mem_miss = false;
        InstSeq oldest_seq = 0;
        for (const OutstandingMiss &m : misses) {
            bool mem_bound =
                m.toMemory && now - m.issuedAt >= triggerCycles;
            if (mem_bound && (!has_mem_miss || m.seq < oldest_seq)) {
                has_mem_miss = true;
                oldest_seq = m.seq;
            }
        }

        if (locked[i]) {
            // Unlock once every memory-bound load has returned.
            bool any_mem = false;
            for (const OutstandingMiss &m : misses)
                any_mem = any_mem || m.toMemory;
            if (!any_mem) {
                locked[i] = false;
                cpu.setFetchLocked(tid, false);
            }
            continue;
        }

        if (has_mem_miss) {
            totalFlushed += static_cast<std::uint64_t>(
                cpu.flushThreadAfter(tid, oldest_seq));
            locked[i] = true;
            cpu.setFetchLocked(tid, true);
        }
    }
}

std::unique_ptr<ResourcePolicy>
FlushPolicy::clone() const
{
    return std::make_unique<FlushPolicy>(*this);
}

} // namespace smthill
