/**
 * @file
 * Reinforcement-learning resource distribution (ROADMAP "learner
 * diversity", after Chasparis et al.'s RL-based dynamic pinning): a
 * tabular Q-learner over anchor moves. The state is which active
 * context currently holds the largest anchor share (lowest index on
 * ties); the actions are "move the anchor toward active context k"
 * (the Figure 8 moveAnchor step) or "stay". The reward is the
 * epoch's performance metric, selectable among the paper's three
 * (src/core/metrics.*). Action selection is epsilon-greedy with the
 * exploration draw taken from a seeded common/rng stream, so clones
 * replay bit-identically.
 *
 * Like the bandit, the RL learner shares HillClimbing's epoch
 * measurement, software-cost charging, and open-system residency
 * accounting, and never runs solo-sampling epochs: weighted rewards
 * normalize by config.singleIpc when the caller supplies solo
 * estimates, else run unnormalized via the evalMetric fallback.
 */

#ifndef SMTHILL_POLICY_RL_ALLOC_HH
#define SMTHILL_POLICY_RL_ALLOC_HH

#include <array>
#include <cstdint>

#include "common/rng.hh"
#include "core/hill_climbing.hh"

namespace smthill
{

/** Tunables of the Q-learning allocator. */
struct RlConfig
{
    Cycle epochSize = 64 * 1024; ///< cycles per epoch
    int delta = 8;               ///< registers shifted per move
    PerfMetric metric = PerfMetric::AvgIpc;
    Cycle softwareCost = 200;    ///< machine stall per boundary
    int minShare = 4;            ///< floor on any thread's share
    double alpha = 0.2;          ///< learning rate
    double discount = 0.5;       ///< future-reward discount
    double epsilon = 0.1;        ///< exploration probability
    std::uint64_t seed = 1;      ///< exploration-draw stream

    /**
     * Solo IPC estimates normalizing the weighted reward metrics
     * (zero entries fall back to evalMetric's solo = 1.0). The RL
     * learner never solo-samples, so these come from the caller.
     */
    std::array<double, kMaxThreads> singleIpc{};
};

/** The RL resource-distribution policy (epsilon-greedy Q-learning). */
class RlAllocator : public HillClimbing
{
  public:
    /** Action index meaning "keep the anchor where it is". */
    static constexpr int kStay = kMaxThreads;

    explicit RlAllocator(RlConfig config = RlConfig{});
    RlAllocator(const RlAllocator &) = default;
    RlAllocator &operator=(const RlAllocator &) = delete;

    std::string name() const override;
    void attach(SmtCpu &cpu) override;
    void epoch(SmtCpu &cpu, std::uint64_t epoch_id) override;
    void threadAttached(SmtCpu &cpu, ThreadId tid) override;
    void threadDetached(SmtCpu &cpu, ThreadId tid) override;
    std::unique_ptr<ResourcePolicy> clone() const override;

    const RlConfig &rlConfig() const { return rcfg; }

    /** @return learned value of (@p state, @p action). */
    double qValue(int state, int action) const
    {
        return qTable[state][action];
    }

    /** @return epsilon-draw explorations taken so far. */
    std::uint64_t explorations() const { return exploreCount; }

    /** @return actions that actually moved the anchor. */
    std::uint64_t anchorMoves() const { return moveCount; }

  private:
    /** @return the active context holding the largest anchor share. */
    int stateOf() const;

    /** @return max Q over the valid actions in @p state. */
    double bestValue(int state, int nt) const;

    /** @return epsilon-greedy action for @p state (consumes rng). */
    int selectAction(int state, int nt);

    RlConfig rcfg;
    Rng rng;
    /** Q[state][action]; action kStay is the last column. */
    std::array<std::array<double, kMaxThreads + 1>, kMaxThreads>
        qTable{};
    int lastState = -1;
    int lastAction = -1;
    std::uint64_t exploreCount = 0;
    std::uint64_t moveCount = 0;
};

} // namespace smthill

#endif // SMTHILL_POLICY_RL_ALLOC_HH
