/**
 * @file
 * ICOUNT (Tullsen et al., ISCA 1996) as a standalone policy: fetch
 * priority by fewest front-end instructions with full resource
 * sharing. The priority logic itself lives in the core's fetch stage;
 * this policy simply runs the machine unpartitioned and unlocked.
 */

#ifndef SMTHILL_POLICY_ICOUNT_HH
#define SMTHILL_POLICY_ICOUNT_HH

#include "policy/policy.hh"

namespace smthill
{

/** The ICOUNT baseline. */
class IcountPolicy : public ResourcePolicy
{
  public:
    std::string name() const override { return "ICOUNT"; }
    void attach(SmtCpu &cpu) override;
    std::unique_ptr<ResourcePolicy> clone() const override;
};

} // namespace smthill

#endif // SMTHILL_POLICY_ICOUNT_HH
