/**
 * @file
 * DG and PDG (El-Moursy & Albonesi, HPCA 2003), from the paper's
 * related-work taxonomy (Section 2): front-end policies that
 * fetch-lock threads around data-cache misses.
 *
 *  - DG ("data gating") fetch-locks a thread when its number of
 *    in-flight data-cache misses exceeds a threshold.
 *  - PDG ("predictive data gating") uses a PC-indexed cache-miss
 *    predictor to gate fetch as soon as a predicted-miss load enters
 *    the pipeline, rather than waiting for the miss to be observed.
 */

#ifndef SMTHILL_POLICY_DG_HH
#define SMTHILL_POLICY_DG_HH

#include <array>
#include <vector>

#include "policy/policy.hh"

namespace smthill
{

/** DG: fetch-gate on outstanding-miss count. */
class DgPolicy : public ResourcePolicy
{
  public:
    /** @param miss_threshold in-flight misses that trigger the gate */
    explicit DgPolicy(int miss_threshold = 1);

    std::string name() const override { return "DG"; }
    void attach(SmtCpu &cpu) override;
    void cycle(SmtCpu &cpu) override;
    std::unique_ptr<ResourcePolicy> clone() const override;

  private:
    int missThreshold;
    std::array<bool, kMaxThreads> locked{};
};

/**
 * PDG: DG plus a per-thread, PC-indexed 2-bit miss predictor trained
 * on observed DL1 misses; a thread is gated while it has an
 * in-flight load whose PC predicts a miss.
 */
class PdgPolicy : public ResourcePolicy
{
  public:
    /**
     * @param table_entries miss-predictor entries per thread (power
     *        of two)
     */
    explicit PdgPolicy(std::size_t table_entries = 4096);

    std::string name() const override { return "PDG"; }
    void attach(SmtCpu &cpu) override;
    void cycle(SmtCpu &cpu) override;
    std::unique_ptr<ResourcePolicy> clone() const override;

    /** Train the predictor for a load at @p pc that hit or missed. */
    void train(ThreadId tid, Addr pc, bool missed);

    /** @return true if the predictor expects a miss at @p pc. */
    bool predictsMiss(ThreadId tid, Addr pc) const;

    /** Load dispatch/completion callback (wired by attach()). */
    void onLoadEvent(const LoadEvent &event);

  private:
    /** A dispatched load the predictor expects to miss. */
    struct PendingLoad
    {
        InstSeq seq;
        Cycle stampedAt; ///< 0 until seen by cycle(); for expiry
    };

    std::size_t mask;
    std::vector<std::uint8_t> tables; ///< kMaxThreads * entries
    std::array<bool, kMaxThreads> locked{};
    std::array<std::vector<PendingLoad>, kMaxThreads> pendingPredicted;
};

} // namespace smthill

#endif // SMTHILL_POLICY_DG_HH
