#include "policy/static_partition.hh"

namespace smthill
{

StaticPartitionPolicy::StaticPartitionPolicy(Partition shares)
    : fixed(shares), haveCustom(true)
{
}

void
StaticPartitionPolicy::attach(SmtCpu &cpu)
{
    for (int i = 0; i < cpu.numThreads(); ++i)
        cpu.setFetchLocked(static_cast<ThreadId>(i), false);
    if (haveCustom)
        cpu.setPartition(fixed);
    else
        cpu.setPartition(Partition::equal(cpu.numThreads(),
                                          cpu.config().intRegs));
}

std::unique_ptr<ResourcePolicy>
StaticPartitionPolicy::clone() const
{
    return std::make_unique<StaticPartitionPolicy>(*this);
}

} // namespace smthill
