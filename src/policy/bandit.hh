/**
 * @file
 * Multi-armed bandit resource distribution (ROADMAP "learner
 * diversity", after Glassner & Crammer's bandit cache allocation):
 * each epoch pulls one arm of a quantized partition lattice and the
 * epoch's performance metric is the arm's reward. Two classic index
 * policies are provided — UCB1 (deterministic optimism) and EXP3
 * (adversarial, samples arms from a weight distribution seeded from
 * common/rng) — behind the same ResourcePolicy surface as the
 * hill-climber, sharing its epoch measurement, software-cost
 * charging, and open-system residency accounting via the HillClimbing
 * base. The lattice, not the gradient, does the exploring: with two
 * active threads the arms are exactly enumeratePartitions2(total,
 * stride); with more, an equal-split arm plus trialPartition spokes
 * around it.
 *
 * Unlike HILL, the bandit never runs solo-sampling epochs: weighted
 * rewards (WIPC/HWIPC) normalize by config.singleIpc when the caller
 * supplies solo estimates (harness soloIpcs), and otherwise fall back
 * to the evalMetric single-IPC <= 0 convention (solo = 1.0, i.e.
 * unnormalized) — rewards stay comparable across arms either way,
 * which is all a bandit needs.
 */

#ifndef SMTHILL_POLICY_BANDIT_HH
#define SMTHILL_POLICY_BANDIT_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "core/hill_climbing.hh"

namespace smthill
{

/** Which bandit index rule picks the next arm. */
enum class BanditAlgo
{
    Ucb1, ///< deterministic: mean + c * sqrt(ln t / n)
    Exp3  ///< stochastic: exponential weights, seeded draws
};

/** Tunables of the bandit allocator. */
struct BanditConfig
{
    Cycle epochSize = 64 * 1024; ///< cycles per epoch
    int stride = 16;             ///< lattice quantization step
    PerfMetric metric = PerfMetric::AvgIpc;
    Cycle softwareCost = 200;    ///< machine stall per boundary
    int minShare = 4;            ///< floor on any thread's share
    BanditAlgo algo = BanditAlgo::Ucb1;
    double exploreCoeff = 1.0;   ///< UCB1 exploration coefficient c
    double gamma = 0.1;          ///< EXP3 exploration rate
    std::uint64_t seed = 1;      ///< EXP3 arm-draw stream

    /**
     * Solo IPC estimates normalizing the weighted reward metrics
     * (zero entries fall back to evalMetric's solo = 1.0). The bandit
     * never solo-samples, so these come from the caller.
     */
    std::array<double, kMaxThreads> singleIpc{};
};

/** The BANDIT resource-distribution policy (UCB1 or EXP3). */
class BanditAllocator : public HillClimbing
{
  public:
    explicit BanditAllocator(BanditConfig config = BanditConfig{});
    BanditAllocator(const BanditAllocator &) = default;
    BanditAllocator &operator=(const BanditAllocator &) = delete;

    std::string name() const override;
    void attach(SmtCpu &cpu) override;
    void epoch(SmtCpu &cpu, std::uint64_t epoch_id) override;
    void threadAttached(SmtCpu &cpu, ThreadId tid) override;
    void threadDetached(SmtCpu &cpu, ThreadId tid) override;
    std::unique_ptr<ResourcePolicy> clone() const override;

    const BanditConfig &banditConfig() const { return bcfg; }

    /** @return the current arm lattice (rebuilt on churn). */
    const std::vector<Partition> &arms() const { return armSet; }

    /** @return the arm installed for the running epoch, or -1. */
    int currentArm() const { return armInFlight; }

    /** @return pulls of @p arm since the last lattice (re)build. */
    std::uint64_t armPlays(int arm) const { return playCount[arm]; }

    /** @return running mean reward of @p arm (UCB1 statistic). */
    double armMean(int arm) const { return meanReward[arm]; }

    /** @return exponential weight of @p arm (EXP3 statistic). */
    double armWeight(int arm) const { return weight[arm]; }

    /** @return total pulls since the last lattice (re)build. */
    std::uint64_t pulls() const { return totalPlays; }

  private:
    /**
     * Rebuild the arm lattice for the current active set and zero
     * every arm statistic. Called at attach and on churn: an arm is a
     * concrete share assignment to specific contexts, so a changed
     * active set changes what every arm means — carrying rewards
     * across would credit the wrong partitions.
     */
    void rebuildArms(const SmtCpu &cpu);

    /** @return next arm per the configured index rule. */
    int selectArm();

    /** Fold @p reward into @p arm's UCB1/EXP3 statistics. */
    void applyReward(int arm, double reward);

    /** Select, install, and audit the arm for the next epoch. */
    void pullArm(SmtCpu &cpu, int previous_arm, double reward);

    BanditConfig bcfg;
    Rng rng;
    std::vector<Partition> armSet;
    std::vector<std::uint64_t> playCount;
    std::vector<double> meanReward; ///< UCB1 running means
    std::vector<double> weight;     ///< EXP3 exponential weights
    std::vector<double> lastProb;   ///< EXP3 probs at last draw
    double rewardScale = 0.0; ///< running max reward (EXP3 normalizer)
    std::uint64_t totalPlays = 0;
    int armInFlight = -1;
};

} // namespace smthill

#endif // SMTHILL_POLICY_BANDIT_HH
