#include "policy/policy.hh"

namespace smthill
{

void
ResourcePolicy::attach(SmtCpu &)
{
}

void
ResourcePolicy::cycle(SmtCpu &)
{
}

void
ResourcePolicy::epoch(SmtCpu &, std::uint64_t)
{
}

void
ResourcePolicy::threadAttached(SmtCpu &, ThreadId)
{
}

void
ResourcePolicy::threadDetached(SmtCpu &, ThreadId)
{
}

} // namespace smthill
