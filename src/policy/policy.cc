#include "policy/policy.hh"

namespace smthill
{

void
ResourcePolicy::attach(SmtCpu &)
{
}

void
ResourcePolicy::cycle(SmtCpu &)
{
}

void
ResourcePolicy::epoch(SmtCpu &, std::uint64_t)
{
}

} // namespace smthill
