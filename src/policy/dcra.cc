#include "policy/dcra.hh"

#include "common/log.hh"

namespace smthill
{

DcraPolicy::DcraPolicy(int sharing_factor) : sharingFactor(sharing_factor)
{
    if (sharing_factor < 1)
        fatal("DcraPolicy: sharing factor must be >= 1");
}

void
DcraPolicy::attach(SmtCpu &cpu)
{
    lastSlowMask = ~std::uint32_t{0};
    lastActiveMask = ~std::uint32_t{0};
    for (int i = 0; i < cpu.numThreads(); ++i)
        cpu.setFetchLocked(static_cast<ThreadId>(i), false);
    recompute(cpu);
}

void
DcraPolicy::cycle(SmtCpu &cpu)
{
    recompute(cpu);
}

void
DcraPolicy::recompute(SmtCpu &cpu)
{
    int nt = cpu.numThreads();

    // Disabled contexts (open-system idle slots, jobs departed) are
    // excluded from the share computation entirely: they hold share 0
    // and are neither fast nor slow. In a closed system every context
    // is enabled and this degenerates to the original formula.
    std::uint32_t slow_mask = 0;
    std::uint32_t active_mask = 0;
    int num_slow = 0;
    int num_active = 0;
    for (int i = 0; i < nt; ++i) {
        if (!cpu.threadEnabled(static_cast<ThreadId>(i)))
            continue;
        active_mask |= std::uint32_t{1} << i;
        ++num_active;
        if (cpu.dl1MissesInFlight(static_cast<ThreadId>(i)) > 0) {
            slow_mask |= std::uint32_t{1} << i;
            ++num_slow;
        }
    }
    if (slow_mask == lastSlowMask && active_mask == lastActiveMask)
        return; // classification unchanged; limits still valid
    lastSlowMask = slow_mask;
    lastActiveMask = active_mask;

    if (num_active == 0) {
        cpu.clearPartition();
        return;
    }

    // One fast thread gets x units, a slow one gets C*x, with
    // F*x + S*C*x = total.
    int total = cpu.config().intRegs;
    int num_fast = num_active - num_slow;
    int denom = num_fast + sharingFactor * num_slow;

    Partition p;
    p.numThreads = nt;
    int assigned = 0;
    for (int i = 0; i < nt; ++i) {
        if (!((active_mask >> i) & 1)) {
            p.share[i] = 0;
            continue;
        }
        bool slow = (slow_mask >> i) & 1;
        int share = total * (slow ? sharingFactor : 1) / denom;
        p.share[i] = share;
        assigned += share;
    }
    // Distribute rounding leftovers to slow threads first.
    int leftover = total - assigned;
    for (int i = 0; i < nt && leftover > 0; ++i) {
        if ((slow_mask >> i) & 1) {
            ++p.share[i];
            --leftover;
        }
    }
    for (int i = 0; i < nt && leftover > 0; ++i) {
        if ((active_mask >> i) & 1) {
            ++p.share[i];
            --leftover;
        }
    }

    cpu.setPartition(p);
}

std::unique_ptr<ResourcePolicy>
DcraPolicy::clone() const
{
    return std::make_unique<DcraPolicy>(*this);
}

} // namespace smthill
