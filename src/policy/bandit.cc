#include "policy/bandit.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "common/stat_registry.hh"

namespace smthill
{

namespace
{

Json
shareJson(const Partition &p)
{
    Json arr = Json::array();
    for (int i = 0; i < p.numThreads; ++i)
        arr.push(Json(p.share[i]));
    return arr;
}

Json
ipcJson(const IpcSample &s)
{
    Json arr = Json::array();
    for (int i = 0; i < s.numThreads; ++i)
        arr.push(Json(s.ipc[i]));
    return arr;
}

StatCounter &
banditEpochs()
{
    static StatCounter &c = globalStats().counter("smthill.bandit.epochs");
    return c;
}

StatCounter &
banditSwitches()
{
    static StatCounter &c =
        globalStats().counter("smthill.bandit.switches");
    return c;
}

StatCounter &
banditRebuilds()
{
    static StatCounter &c =
        globalStats().counter("smthill.bandit.rebuilds");
    return c;
}

HillConfig
hillBase(const BanditConfig &b)
{
    HillConfig h;
    h.epochSize = b.epochSize;
    h.delta = std::max(1, b.stride);
    h.metric = b.metric;
    h.softwareCost = b.softwareCost;
    h.minShare = b.minShare;
    // The bandit never solo-samples: the base's sampling machinery
    // stays inert and weighted rewards normalize by config.singleIpc
    // (or run unnormalized where the caller left it zero).
    h.sampleSingleIpc = false;
    return h;
}

} // namespace

BanditAllocator::BanditAllocator(BanditConfig config)
    : HillClimbing(hillBase(config)), bcfg(config), rng(config.seed)
{
    if (bcfg.stride < 1)
        fatal("BanditAllocator: stride must be >= 1");
    if (bcfg.gamma <= 0.0 || bcfg.gamma > 1.0)
        fatal("BanditAllocator: gamma must be in (0, 1]");
}

std::string
BanditAllocator::name() const
{
    return bcfg.algo == BanditAlgo::Ucb1 ? "BANDIT-UCB" : "BANDIT-EXP3";
}

void
BanditAllocator::rebuildArms(const SmtCpu &cpu)
{
    int nt = cpu.numThreads();
    int na = numActive(nt);
    int total = cpu.config().intRegs;
    armSet.clear();
    if (na == 2) {
        // The exact 2-thread lattice of the paper's limit study
        // (Section 3.2), mapped onto whichever contexts hold jobs.
        int lo = activeAt(0);
        int hi = activeAt(1);
        for (const Partition &p2 : enumeratePartitions2(total,
                                                        bcfg.stride)) {
            Partition p;
            p.numThreads = nt;
            p.share[lo] = p2.share[0];
            p.share[hi] = p2.share[1];
            armSet.push_back(p);
        }
    } else if (na > 2) {
        // Higher thread counts: the full lattice is cubic or worse,
        // so the arms are an equal split plus trialPartition spokes
        // at 1x/2x/4x stride around it — bounded at 1 + 3 * na.
        Partition equalBase = redistributeDetached(
            Partition::equal(nt, total), activeMask, bcfg.minShare);
        armSet.push_back(equalBase);
        for (int k = 0; k < na; ++k) {
            int tid = activeAt(k);
            for (int m : {1, 2, 4}) {
                Partition arm = trialPartition(equalBase, tid,
                                               bcfg.stride * m,
                                               bcfg.minShare);
                if (std::find(armSet.begin(), armSet.end(), arm) ==
                    armSet.end())
                    armSet.push_back(arm);
            }
        }
    }
    playCount.assign(armSet.size(), 0);
    meanReward.assign(armSet.size(), 0.0);
    weight.assign(armSet.size(), 1.0);
    lastProb.assign(armSet.size(), 0.0);
    rewardScale = 0.0;
    totalPlays = 0;
    armInFlight = -1;
    banditRebuilds().inc();
}

int
BanditAllocator::selectArm()
{
    int k = static_cast<int>(armSet.size());
    if (bcfg.algo == BanditAlgo::Ucb1) {
        // Unplayed arms first, in index order; then the UCB index
        // with a strictly-greater scan so ties break to the lowest
        // index — both deterministic by construction.
        for (int i = 0; i < k; ++i)
            if (playCount[i] == 0)
                return i;
        int best = 0;
        double bestIdx = -1.0;
        double logT = std::log(static_cast<double>(totalPlays));
        for (int i = 0; i < k; ++i) {
            double idx = meanReward[i] +
                         bcfg.exploreCoeff *
                             std::sqrt(logT /
                                       static_cast<double>(playCount[i]));
            if (idx > bestIdx) {
                bestIdx = idx;
                best = i;
            }
        }
        return best;
    }
    // EXP3: p_i = (1 - gamma) w_i / sum(w) + gamma / K, sampled from
    // the member Rng (clones copy the stream position, so replay is
    // bit-identical).
    double sumW = 0.0;
    for (int i = 0; i < k; ++i)
        sumW += weight[i];
    for (int i = 0; i < k; ++i)
        lastProb[i] = (1.0 - bcfg.gamma) * weight[i] / sumW +
                      bcfg.gamma / static_cast<double>(k);
    double u = rng.nextDouble();
    double acc = 0.0;
    for (int i = 0; i < k; ++i) {
        acc += lastProb[i];
        if (u < acc)
            return i;
    }
    return k - 1;
}

void
BanditAllocator::applyReward(int arm, double reward)
{
    ++playCount[arm];
    ++totalPlays;
    meanReward[arm] +=
        (reward - meanReward[arm]) / static_cast<double>(playCount[arm]);
    if (bcfg.algo == BanditAlgo::Exp3) {
        // EXP3 wants rewards in [0,1]: normalize by the running max
        // observed so far (deterministic, no oracle bound needed).
        if (reward > rewardScale)
            rewardScale = reward;
        double xhat = rewardScale > 0.0 ? reward / rewardScale : 0.0;
        double p = lastProb[arm] > 0.0 ? lastProb[arm] : 1.0;
        int k = static_cast<int>(armSet.size());
        weight[arm] *=
            std::exp(bcfg.gamma * xhat / (p * static_cast<double>(k)));
        // Keep the weights bounded: only their ratios matter.
        double maxW = *std::max_element(weight.begin(), weight.end());
        if (maxW > 1e100)
            for (double &w : weight)
                w /= maxW;
    }
}

void
BanditAllocator::pullArm(SmtCpu &cpu, int previous_arm, double reward)
{
    int next = selectArm();
    armInFlight = next;
    // The installed arm doubles as the anchor so epoch-trace records
    // and the churn admit/redistribute algebra see the live partition.
    anchorPartition = armSet[next];
    cpu.setPartition(anchorPartition);
    if (next != previous_arm)
        banditSwitches().inc();
    if (EventTrace *evt = eventTraceRef.trace) {
        Json args = Json::object();
        args.set("alg_epoch", algEpoch);
        args.set("algo", bcfg.algo == BanditAlgo::Ucb1 ? "ucb1" : "exp3");
        args.set("arm", next);
        args.set("arms", static_cast<std::uint64_t>(armSet.size()));
        args.set("plays", playCount[next]);
        args.set("stat", bcfg.algo == BanditAlgo::Ucb1 ? meanReward[next]
                                                       : weight[next]);
        args.set("reward", reward);
        args.set("switched", next != previous_arm);
        args.set("partition", shareJson(anchorPartition));
        evt->instant(cpu.now(), eventTraceRef.pid, kControlTid, "bandit",
                     "arm.pull", std::move(args));
    }
}

void
BanditAllocator::attach(SmtCpu &cpu)
{
    int nt = cpu.numThreads();
    anchorPartition = Partition::equal(nt, cpu.config().intRegs);
    roundPerf.fill(0.0);
    singleIpcEst = bcfg.singleIpc;
    lastCommitted = cpu.stats().committed;
    lastEpochStart = cpu.now();
    roundStart = cpu.now();
    lastElapsed = 0;
    algEpoch = 0;
    epochsSinceSample = 0;
    sampleRotation = 0;
    samplingThread = -1;
    bootstrapPending = 0;
    roundPos = 0;
    roundDirty = false;
    needsSolo.fill(false);
    residentAccum.fill(0);
    residentFrom.fill(cpu.now());
    int na = 0;
    for (int i = 0; i < nt; ++i) {
        activeMask[i] = cpu.threadEnabled(static_cast<ThreadId>(i));
        na += activeMask[i] ? 1 : 0;
    }
    openSystemMode = na < nt;
    for (int i = 0; i < nt; ++i)
        cpu.setFetchLocked(static_cast<ThreadId>(i), false);
    if (openSystemMode)
        anchorPartition = redistributeDetached(anchorPartition,
                                               activeMask, cfg.minShare);
    rng = Rng(bcfg.seed);
    rebuildArms(cpu);
    if (na >= 2 && !armSet.empty())
        pullArm(cpu, -1, 0.0);
    else
        cpu.clearPartition();
}

void
BanditAllocator::epoch(SmtCpu &cpu, std::uint64_t epoch_id)
{
    int nt = cpu.numThreads();
    int na = numActive(nt);
    // Consume the churn flag: it covers the epoch that just ended.
    bool dirty = roundDirty;
    roundDirty = false;
    IpcSample sample = measureEpoch(cpu);
    Partition ran = cpu.partition();
    bool ran_partitioned = cpu.partitioningEnabled();
    double reward = evalActiveMetric(sample);

    if (EventTrace *evt = eventTraceRef.trace) {
        Json args = Json::object();
        args.set("epoch", epoch_id);
        args.set("kind", "learn");
        args.set("ipc", ipcJson(sample));
        evt->complete(lastEpochStart,
                      static_cast<std::int64_t>(lastElapsed),
                      eventTraceRef.pid, kControlTid, "epoch", "epoch",
                      std::move(args));
    }

    // A churn-dirtied epoch ran (at least partly) under a different
    // active set; crediting its reward would poison the arm stats.
    int prev = armInFlight;
    bool credited = !dirty && prev >= 0 &&
                    prev < static_cast<int>(armSet.size());
    if (credited)
        applyReward(prev, reward);

    bool moved = false;
    armInFlight = -1;
    if (na >= 2 && !armSet.empty()) {
        pullArm(cpu, prev, reward);
        moved = armInFlight != prev;
    } else {
        cpu.clearPartition();
    }
    ++algEpoch;
    banditEpochs().inc();
    traceEpoch(cpu, epoch_id, sample, ran, ran_partitioned, reward, -1,
               -1, moved);
    chargeBoundary(cpu);
}

void
BanditAllocator::threadAttached(SmtCpu &cpu, ThreadId tid)
{
    int nt = cpu.numThreads();
    openSystemMode = true;
    activeMask[tid] = true;
    residentAccum[tid] = 0;
    residentFrom[tid] = cpu.now();
    lastCommitted[tid] = cpu.stats().committed[tid];
    singleIpcEst[tid] = bcfg.singleIpc[tid];
    // Drained-anchor re-seed: after an all-departure the anchor holds
    // no shares, and admitAttached conserves the total it is given.
    if (anchorPartition.total() == 0)
        anchorPartition.share[tid] = cpu.config().intRegs;
    anchorPartition =
        admitAttached(anchorPartition, activeMask, tid, cfg.minShare);
    roundDirty = true;
    rebuildArms(cpu);
    if (numActive(nt) >= 2)
        cpu.setPartition(anchorPartition);
    else
        cpu.clearPartition();
    if (EventTrace *evt = eventTraceRef.trace) {
        Json args = Json::object();
        args.set("thread", static_cast<int>(tid));
        args.set("arms", static_cast<std::uint64_t>(armSet.size()));
        args.set("anchor", shareJson(anchorPartition));
        evt->instant(cpu.now(), eventTraceRef.pid, kControlTid, "bandit",
                     "churn.attach", std::move(args));
    }
}

void
BanditAllocator::threadDetached(SmtCpu &cpu, ThreadId tid)
{
    int nt = cpu.numThreads();
    openSystemMode = true;
    if (activeMask[tid]) {
        Cycle from = std::max(residentFrom[tid], lastEpochStart);
        residentAccum[tid] += cpu.now() > from ? cpu.now() - from : 0;
    }
    activeMask[tid] = false;
    anchorPartition =
        redistributeDetached(anchorPartition, activeMask, cfg.minShare);
    roundDirty = true;
    rebuildArms(cpu);
    if (numActive(nt) >= 2)
        cpu.setPartition(anchorPartition);
    else
        cpu.clearPartition();
    if (EventTrace *evt = eventTraceRef.trace) {
        Json args = Json::object();
        args.set("thread", static_cast<int>(tid));
        args.set("arms", static_cast<std::uint64_t>(armSet.size()));
        args.set("anchor", shareJson(anchorPartition));
        evt->instant(cpu.now(), eventTraceRef.pid, kControlTid, "bandit",
                     "churn.detach", std::move(args));
    }
}

std::unique_ptr<ResourcePolicy>
BanditAllocator::clone() const
{
    return std::make_unique<BanditAllocator>(*this);
}

} // namespace smthill
