/**
 * @file
 * Resource-distribution policy interface.
 *
 * A policy observes the machine and controls fetch locks and resource
 * partitions. The experiment runner drives the machine cycle by
 * cycle, invoking cycle() before every SmtCpu::step() and epoch() at
 * every epoch boundary. All policies rely on the ICOUNT fetch
 * priority that is built into the core's fetch stage (Section 3.1.2:
 * fetch bandwidth itself is always distributed by ICOUNT).
 */

#ifndef SMTHILL_POLICY_POLICY_HH
#define SMTHILL_POLICY_POLICY_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/event_trace.hh"
#include "pipeline/cpu.hh"

namespace smthill
{

class EpochTracer;

/** Abstract base for all resource-distribution mechanisms. */
class ResourcePolicy
{
  public:
    virtual ~ResourcePolicy() = default;

    /** @return a short display name ("ICOUNT", "FLUSH", ...). */
    virtual std::string name() const = 0;

    /** Called once before simulation begins (install initial state). */
    virtual void attach(SmtCpu &cpu);

    /** Called every cycle before the machine steps. */
    virtual void cycle(SmtCpu &cpu);

    /**
     * Called at every epoch boundary.
     * @param cpu the machine, stopped at the boundary
     * @param epoch_id index of the epoch that just ended (0-based)
     */
    virtual void epoch(SmtCpu &cpu, std::uint64_t epoch_id);

    /**
     * Open-system churn hook: a job was attached to context @p tid
     * (its stream was just rebound via SmtCpu::resetContext). The
     * machine is stopped at the attach cycle. Default: no-op —
     * monitor-only policies recompute from machine state anyway.
     */
    virtual void threadAttached(SmtCpu &cpu, ThreadId tid);

    /**
     * Open-system churn hook: the job on context @p tid departed and
     * the context is now idle (disabled until the next arrival).
     * Default: no-op.
     */
    virtual void threadDetached(SmtCpu &cpu, ThreadId tid);

    /** @return a deep copy (for synchronized comparison runs). */
    virtual std::unique_ptr<ResourcePolicy> clone() const = 0;

    /**
     * Attach an epoch-trace observer (nullptr detaches). Owned by
     * the caller; zero-cost when absent. Policies that learn
     * (HillClimbing and descendants) record one EpochTraceRecord per
     * epoch() call; monitor-only policies record nothing. Clones
     * share the pointer, so detach it from trial copies that must
     * not pollute the committing run's trace.
     */
    void setEpochTracer(EpochTracer *t) { epochTracerPtr = t; }

    /** @return the attached tracer, or nullptr. */
    EpochTracer *epochTracer() const { return epochTracerPtr; }

    /**
     * Attach a cycle-level event trace (nullptr detaches). Owned by
     * the caller; zero-cost when absent. Unlike the epoch tracer the
     * link is dropped on copy (EventTraceRef semantics): the trace
     * follows the committing run, never its clones, so synchronized
     * comparisons and trial copies cannot interleave events.
     * @param pid the trace-event process id this policy's events
     *        (and its machine's, once the runner mirrors the link)
     *        are filed under
     */
    void
    setEventTrace(EventTrace *t, int pid)
    {
        eventTraceRef.trace = t;
        eventTraceRef.pid = t ? pid : 0;
    }

    /** @return the attached event trace, or nullptr. */
    EventTrace *eventTrace() const { return eventTraceRef.trace; }

    /** @return the trace-event process id of the attached trace. */
    int eventTracePid() const { return eventTraceRef.pid; }

  protected:
    EpochTracer *epochTracerPtr = nullptr;
    EventTraceRef eventTraceRef;
};

} // namespace smthill

#endif // SMTHILL_POLICY_POLICY_HH
