/**
 * @file
 * STALL (Tullsen & Brown, MICRO 2001): fetch-lock a thread when it
 * has a load outstanding beyond a threshold number of cycles, and
 * unlock when the load returns. Unlike FLUSH, already-fetched
 * instructions stay in the pipeline, so resource clog can still
 * occur; the paper discusses STALL as the fetch-lock member of the
 * related-work family (Section 2).
 */

#ifndef SMTHILL_POLICY_STALL_HH
#define SMTHILL_POLICY_STALL_HH

#include <array>

#include "policy/policy.hh"

namespace smthill
{

/** The STALL fetch-lock policy. */
class StallPolicy : public ResourcePolicy
{
  public:
    /** @param threshold cycles a load may be outstanding un-locked */
    explicit StallPolicy(Cycle threshold = 15);

    std::string name() const override { return "STALL"; }
    void attach(SmtCpu &cpu) override;
    void cycle(SmtCpu &cpu) override;
    std::unique_ptr<ResourcePolicy> clone() const override;

  private:
    Cycle threshold;
    std::array<bool, kMaxThreads> locked{};
};

} // namespace smthill

#endif // SMTHILL_POLICY_STALL_HH
