/**
 * @file
 * DCRA — Dynamically Controlled Resource Allocation (Cazorla et al.,
 * MICRO 2004). Threads are classified every cycle as "slow" (they
 * have a DL1 miss in flight) or "fast"; slow threads receive a larger
 * share of the partitioned resources so they can expose parallelism
 * past their stalled loads, while fast threads keep a guaranteed
 * share, containing resource clog. Shares are recomputed and
 * installed as partition limits every cycle.
 */

#ifndef SMTHILL_POLICY_DCRA_HH
#define SMTHILL_POLICY_DCRA_HH

#include "policy/policy.hh"

namespace smthill
{

/** The DCRA dynamic-partitioning baseline. */
class DcraPolicy : public ResourcePolicy
{
  public:
    /**
     * @param sharing_factor how many fast-thread shares a slow
     *        thread receives (the paper's C parameter; 2 by default)
     */
    explicit DcraPolicy(int sharing_factor = 2);

    std::string name() const override { return "DCRA"; }
    void attach(SmtCpu &cpu) override;
    void cycle(SmtCpu &cpu) override;
    std::unique_ptr<ResourcePolicy> clone() const override;

  private:
    /** Recompute shares from the current fast/slow classification. */
    void recompute(SmtCpu &cpu);

    int sharingFactor;
    std::uint32_t lastSlowMask = ~std::uint32_t{0};
    std::uint32_t lastActiveMask = ~std::uint32_t{0};
};

} // namespace smthill

#endif // SMTHILL_POLICY_DCRA_HH
