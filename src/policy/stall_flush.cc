#include "policy/stall_flush.hh"

#include "common/log.hh"

namespace smthill
{

StallFlushPolicy::StallFlushPolicy(Cycle trigger_cycles,
                                   double pressure_frac)
    : triggerCycles(trigger_cycles), pressureFrac(pressure_frac)
{
    if (pressure_frac <= 0.0 || pressure_frac > 1.0)
        fatal("StallFlushPolicy: pressure fraction must be in (0, 1]");
}

void
StallFlushPolicy::attach(SmtCpu &cpu)
{
    cpu.clearPartition();
    locked.fill(false);
    flushedThisStall.fill(false);
    for (int i = 0; i < cpu.numThreads(); ++i)
        cpu.setFetchLocked(static_cast<ThreadId>(i), false);
}

bool
StallFlushPolicy::underPressure(const SmtCpu &cpu) const
{
    const SmtConfig &cfg = cpu.config();
    const Occupancy &o = cpu.occupancy();
    return o.totalIntRegs() >=
               static_cast<int>(pressureFrac * cfg.intRegs) ||
           o.totalRob() >= static_cast<int>(pressureFrac * cfg.robSize) ||
           o.totalIntIq() >=
               static_cast<int>(pressureFrac * cfg.intIqSize);
}

void
StallFlushPolicy::cycle(SmtCpu &cpu)
{
    Cycle now = cpu.now();
    bool pressure = underPressure(cpu);

    for (int i = 0; i < cpu.numThreads(); ++i) {
        auto tid = static_cast<ThreadId>(i);
        const auto &misses = cpu.outstandingMisses(tid);

        bool mem_bound = false;
        InstSeq oldest_seq = 0;
        for (const OutstandingMiss &m : misses) {
            if (m.toMemory && now - m.issuedAt >= triggerCycles) {
                if (!mem_bound || m.seq < oldest_seq)
                    oldest_seq = m.seq;
                mem_bound = true;
            }
        }

        if (!mem_bound) {
            if (locked[i]) {
                locked[i] = false;
                flushedThisStall[i] = false;
                cpu.setFetchLocked(tid, false);
            }
            continue;
        }

        // Phase 1: fetch-lock only.
        if (!locked[i]) {
            locked[i] = true;
            cpu.setFetchLocked(tid, true);
        }
        // Phase 2: flush only if the machine is actually starving.
        if (pressure && !flushedThisStall[i]) {
            totalFlushed += static_cast<std::uint64_t>(
                cpu.flushThreadAfter(tid, oldest_seq));
            flushedThisStall[i] = true;
        }
    }
}

std::unique_ptr<ResourcePolicy>
StallFlushPolicy::clone() const
{
    return std::make_unique<StallFlushPolicy>(*this);
}

} // namespace smthill
