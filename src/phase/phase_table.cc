#include "phase/phase_table.hh"

#include "common/log.hh"

namespace smthill
{

PhaseTable::PhaseTable(int max_phases, double threshold)
    : maxPhases(max_phases), matchThreshold(threshold)
{
    if (max_phases < 1)
        fatal("PhaseTable: capacity must be positive");
}

int
PhaseTable::classify(const BbvSignature &signature, bool *recycled,
                     bool *created)
{
    if (recycled)
        *recycled = false;
    if (created)
        *created = true;
    ++useClock;

    Entry *best = nullptr;
    double best_dist = matchThreshold;
    for (Entry &e : entries) {
        double d = e.centroid.distance(signature);
        if (d < best_dist) {
            best_dist = d;
            best = &e;
        }
    }
    if (best) {
        // Drift the centroid toward the new observation so slowly
        // evolving phases stay matched.
        for (std::size_t i = 0; i < best->centroid.weights.size(); ++i) {
            best->centroid.weights[i] =
                0.75 * best->centroid.weights[i] +
                0.25 * signature.weights[i];
        }
        best->lastUse = useClock;
        if (created)
            *created = false;
        return best->id;
    }

    if (static_cast<int>(entries.size()) < maxPhases) {
        Entry e;
        e.centroid = signature;
        e.lastUse = useClock;
        e.id = nextId++;
        entries.push_back(std::move(e));
        return entries.back().id;
    }

    // Recycle the least recently used phase. The entry keeps its ID
    // (IDs stay bounded by the capacity instead of growing without
    // limit); the ID simply names the new phase from here on.
    std::size_t victim = 0;
    for (std::size_t i = 1; i < entries.size(); ++i)
        if (entries[i].lastUse < entries[victim].lastUse)
            victim = i;
    entries[victim].centroid = signature;
    entries[victim].lastUse = useClock;
    if (recycled)
        *recycled = true;
    return entries[victim].id;
}

} // namespace smthill
