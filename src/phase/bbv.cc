#include "phase/bbv.hh"

#include <cmath>

#include "common/log.hh"

namespace smthill
{

double
BbvSignature::distance(const BbvSignature &other) const
{
    if (weights.size() != other.weights.size())
        return 2.0; // maximal distance between unit-normalized vectors
    double d = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i)
        d += std::abs(weights[i] - other.weights[i]);
    return d;
}

BbvAccumulator::BbvAccumulator(int num_threads)
    : numThreads(num_threads),
      counts(static_cast<std::size_t>(num_threads) * kBbvEntries, 0)
{
    if (num_threads < 1 || num_threads > kMaxThreads)
        fatal("BbvAccumulator: bad thread count");
}

void
BbvAccumulator::record(ThreadId tid, std::uint32_t block_id,
                       std::uint32_t insts)
{
    // Hash the block id into the 64-entry vector.
    std::uint32_t h = block_id;
    h ^= h >> 16;
    h *= 0x85ebca6bu;
    h ^= h >> 13;
    std::size_t idx = static_cast<std::size_t>(tid) * kBbvEntries +
                      (h & (kBbvEntries - 1));
    counts[idx] += insts;
    total += insts;
}

BbvSignature
BbvAccumulator::harvest()
{
    BbvSignature sig;
    sig.weights.resize(counts.size(), 0.0);
    if (total > 0) {
        for (std::size_t i = 0; i < counts.size(); ++i)
            sig.weights[i] = static_cast<double>(counts[i]) /
                             static_cast<double>(total);
    }
    std::fill(counts.begin(), counts.end(), 0);
    total = 0;
    return sig;
}

} // namespace smthill
