#include "phase/phase_hill.hh"

#include <string>
#include <utility>

namespace smthill
{

PhaseHillClimbing::PhaseHillClimbing(HillConfig config)
    : HillClimbing(config), bbv(1)
{
}

PhaseHillClimbing::PhaseHillClimbing(const PhaseHillClimbing &other) =
    default;

std::string
PhaseHillClimbing::name() const
{
    return "PHASE-" + HillClimbing::name();
}

void
PhaseHillClimbing::branchTrampoline(void *ctx, const CommittedBranch &cb)
{
    auto *self = static_cast<PhaseHillClimbing *>(ctx);
    // Credit the block body plus its terminating branch.
    self->bbv.record(cb.tid, cb.blockId, cb.blockLength + 1);
}

void
PhaseHillClimbing::attach(SmtCpu &cpu)
{
    HillClimbing::attach(cpu);
    bbv = BbvAccumulator(cpu.numThreads());
    currentPhase = -1;
    phaseEpochs.clear();
    phaseRuns.clear();
    cpu.setBranchObserver(&PhaseHillClimbing::branchTrampoline, this);
}

void
PhaseHillClimbing::resetPhaseState(int num_threads)
{
    bbv = BbvAccumulator(num_threads);
    table = PhaseTable();
    predictor = MarkovPhasePredictor();
    learned.clear();
    phaseEpochs.clear();
    phaseRuns.clear();
    currentPhase = -1;
}

void
PhaseHillClimbing::threadAttached(SmtCpu &cpu, ThreadId tid)
{
    HillClimbing::threadAttached(cpu, tid);
    resetPhaseState(cpu.numThreads());
}

void
PhaseHillClimbing::threadDetached(SmtCpu &cpu, ThreadId tid)
{
    HillClimbing::threadDetached(cpu, tid);
    resetPhaseState(cpu.numThreads());
}

bool
PhaseHillClimbing::phaseStable(int phase) const
{
    auto epochs = phaseEpochs.find(phase);
    auto runs = phaseRuns.find(phase);
    if (epochs == phaseEpochs.end() || runs == phaseRuns.end())
        return false;
    return epochs->second >= kReuseMinSeen &&
           epochs->second >= kReuseMinAvgRun * runs->second;
}

void
PhaseHillClimbing::epoch(SmtCpu &cpu, std::uint64_t epoch_id)
{
    // Classify the epoch that just ended, unless it was a solo
    // SingleIPC sampling epoch (its BBV is unrepresentative).
    bool was_sampling = samplingActive();
    BbvSignature sig = bbv.harvest();
    if (!was_sampling && !sig.weights.empty()) {
        bool recycled = false;
        bool created = false;
        int prev = currentPhase;
        currentPhase = table.classify(sig, &recycled, &created);
        // A recycled ID names a brand-new phase; the partitioning
        // and observation history stored under it belong to the
        // evicted one.
        if (recycled) {
            learned.erase(currentPhase);
            phaseEpochs.erase(currentPhase);
            phaseRuns.erase(currentPhase);
        }
        ++phaseEpochs[currentPhase];
        if (currentPhase != prev)
            ++phaseRuns[currentPhase];
        predictor.observe(currentPhase);
        if (EventTrace *evt = eventTraceRef.trace) {
            Json args = Json::object();
            args.set("phase", currentPhase);
            args.set("prev_phase", prev);
            args.set("created", created);
            args.set("recycled", recycled);
            args.set("seen", phaseEpochs[currentPhase]);
            args.set("runs", phaseRuns[currentPhase]);
            args.set("table_size", table.size());
            evt->instant(cpu.now(), eventTraceRef.pid, kControlTid,
                         "phase", "classify", std::move(args));
            if (currentPhase != prev) {
                Json targs = Json::object();
                targs.set("from", prev);
                targs.set("to", currentPhase);
                evt->instant(cpu.now(), eventTraceRef.pid, kControlTid,
                             "phase", "transition", std::move(targs));
            }
        }
    }
    HillClimbing::epoch(cpu, epoch_id);
}

Partition
PhaseHillClimbing::overrideAnchor(SmtCpu &cpu, Partition next)
{
    if (currentPhase < 0)
        return next;

    // Remember the best partitioning learned for the current phase.
    learned[currentPhase] = next;

    // If a different, previously learned phase is predicted for the
    // next epoch, jump straight to its partitioning instead of
    // climbing toward it from here — but only across a transition
    // between two *stable* phases (see kReuseMinAvgRun): BBV noise
    // mints phantom phases whose every occurrence lasts one epoch,
    // and a predictor trained on that churn would otherwise capture
    // the anchor with a round-stale learned partitioning (stage-F
    // divergence, fuzz seeds 69/90/121).
    int predicted = predictor.predict();
    bool reused = false;
    std::string reason = "no_transition";
    if (predicted >= 0 && predicted != currentPhase) {
        auto it = learned.find(predicted);
        if (it == learned.end()) {
            reason = "not_learned";
        } else if (!phaseStable(currentPhase) ||
                   !phaseStable(predicted)) {
            reason = "unstable_phase";
        } else {
            ++reuseCount;
            reused = true;
            reason = "reuse";
            next = it->second;
        }
    }
    if (EventTrace *evt = eventTraceRef.trace) {
        Json args = Json::object();
        args.set("current", currentPhase);
        args.set("predicted", predicted);
        args.set("reused", reused);
        args.set("reason", reason);
        Json shares = Json::array();
        for (int i = 0; i < next.numThreads; ++i)
            shares.push(Json(next.share[i]));
        args.set("next_anchor", std::move(shares));
        evt->instant(cpu.now(), eventTraceRef.pid, kControlTid, "phase",
                     "reuse.decision", std::move(args));
    }
    return next;
}

std::unique_ptr<ResourcePolicy>
PhaseHillClimbing::clone() const
{
    return std::make_unique<PhaseHillClimbing>(*this);
}

} // namespace smthill
