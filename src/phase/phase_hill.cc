#include "phase/phase_hill.hh"

namespace smthill
{

PhaseHillClimbing::PhaseHillClimbing(HillConfig config)
    : HillClimbing(config), bbv(1)
{
}

PhaseHillClimbing::PhaseHillClimbing(const PhaseHillClimbing &other) =
    default;

std::string
PhaseHillClimbing::name() const
{
    return "PHASE-" + HillClimbing::name();
}

void
PhaseHillClimbing::branchTrampoline(void *ctx, const CommittedBranch &cb)
{
    auto *self = static_cast<PhaseHillClimbing *>(ctx);
    // Credit the block body plus its terminating branch.
    self->bbv.record(cb.tid, cb.blockId, cb.blockLength + 1);
}

void
PhaseHillClimbing::attach(SmtCpu &cpu)
{
    HillClimbing::attach(cpu);
    bbv = BbvAccumulator(cpu.numThreads());
    currentPhase = -1;
    cpu.setBranchObserver(&PhaseHillClimbing::branchTrampoline, this);
}

void
PhaseHillClimbing::epoch(SmtCpu &cpu, std::uint64_t epoch_id)
{
    // Classify the epoch that just ended, unless it was a solo
    // SingleIPC sampling epoch (its BBV is unrepresentative).
    bool was_sampling = samplingActive();
    BbvSignature sig = bbv.harvest();
    if (!was_sampling && !sig.weights.empty()) {
        bool recycled = false;
        currentPhase = table.classify(sig, &recycled);
        // A recycled ID names a brand-new phase; the partitioning
        // stored under it belongs to the evicted one.
        if (recycled)
            learned.erase(currentPhase);
        predictor.observe(currentPhase);
    }
    HillClimbing::epoch(cpu, epoch_id);
}

Partition
PhaseHillClimbing::overrideAnchor(SmtCpu &, Partition next)
{
    if (currentPhase < 0)
        return next;

    // Remember the best partitioning learned for the current phase.
    learned[currentPhase] = next;

    // If a different, previously learned phase is predicted for the
    // next epoch, jump straight to its partitioning instead of
    // climbing toward it from here.
    int predicted = predictor.predict();
    if (predicted >= 0 && predicted != currentPhase) {
        auto it = learned.find(predicted);
        if (it != learned.end()) {
            ++reuseCount;
            return it->second;
        }
    }
    return next;
}

std::unique_ptr<ResourcePolicy>
PhaseHillClimbing::clone() const
{
    return std::make_unique<PhaseHillClimbing>(*this);
}

} // namespace smthill
