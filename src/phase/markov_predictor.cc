#include "phase/markov_predictor.hh"

#include "common/log.hh"

namespace smthill
{

MarkovPhasePredictor::MarkovPhasePredictor(std::size_t entries)
    : table(entries)
{
    if (entries == 0 || (entries & (entries - 1)) != 0)
        fatal("MarkovPhasePredictor: entries must be a power of two");
}

std::size_t
MarkovPhasePredictor::indexOf(int phase, int run) const
{
    std::uint32_t h = static_cast<std::uint32_t>(phase) * 0x9e3779b1u ^
                      static_cast<std::uint32_t>(run) * 0x85ebca6bu;
    return h & (table.size() - 1);
}

std::uint32_t
MarkovPhasePredictor::tagOf(int phase, int run) const
{
    return (static_cast<std::uint32_t>(phase) << 16) ^
           static_cast<std::uint32_t>(run & 0xffff);
}

void
MarkovPhasePredictor::observe(int phase_id)
{
    if (curPhase >= 0) {
        // Score the prediction we made for this epoch.
        if (lastPrediction >= 0) {
            ++total;
            if (lastPrediction == phase_id)
                ++correct;
        }
        if (phase_id != curPhase) {
            // A run just ended: learn (phase, run-length) -> next.
            Entry &e = table[indexOf(curPhase, runLength)];
            e.tag = tagOf(curPhase, runLength);
            e.next = phase_id;
            curPhase = phase_id;
            runLength = 1;
        } else {
            // Saturate at the 16-bit tag range: letting the run
            // length grow past it would alias distinct (phase, run)
            // states onto each other's table entries.
            if (runLength < 0xffff)
                ++runLength;
        }
    } else {
        curPhase = phase_id;
        runLength = 1;
    }
    lastPrediction = predict();
}

int
MarkovPhasePredictor::predict() const
{
    if (curPhase < 0)
        return -1; // no observation yet: don't fabricate phase 0
    const Entry &e = table[indexOf(curPhase, runLength)];
    if (e.tag == tagOf(curPhase, runLength) && e.next >= 0)
        return e.next;
    return curPhase; // last-value fallback
}

double
MarkovPhasePredictor::accuracy() const
{
    return total == 0
               ? 0.0
               : static_cast<double>(correct) / static_cast<double>(total);
}

} // namespace smthill
