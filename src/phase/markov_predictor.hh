/**
 * @file
 * Run-length-encoded Markov phase predictor (Sherwood et al.,
 * ISCA 2003), Section 5: predicts the next epoch's phase ID from the
 * current phase and how many consecutive epochs it has persisted.
 * The paper's configuration — 2048 entries, up to 128 phase IDs — is
 * the default.
 */

#ifndef SMTHILL_PHASE_MARKOV_PREDICTOR_HH
#define SMTHILL_PHASE_MARKOV_PREDICTOR_HH

#include <cstdint>
#include <vector>

namespace smthill
{

/** RLE Markov predictor over phase IDs. */
class MarkovPhasePredictor
{
  public:
    explicit MarkovPhasePredictor(std::size_t entries = 2048);

    /**
     * Observe that the epoch that just ended belonged to @p phase_id.
     * Must be called once per epoch, in order.
     */
    void observe(int phase_id);

    /**
     * @return the predicted phase of the next epoch, or -1 before
     * the first observation (the cold predictor must not fabricate
     * phase 0). Falls back to "same phase again" (last-value
     * prediction) when the table has no history for the current
     * (phase, run-length) state.
     */
    int predict() const;

    /** Fraction of predictions that matched the next observation. */
    double accuracy() const;

    std::uint64_t predictions() const { return total; }

  private:
    struct Entry
    {
        std::uint32_t tag = ~std::uint32_t{0};
        int next = -1;
    };

    std::size_t indexOf(int phase, int run) const;
    std::uint32_t tagOf(int phase, int run) const;

    std::vector<Entry> table;
    int curPhase = -1;
    int runLength = 0;
    int lastPrediction = -1;
    std::uint64_t total = 0;
    std::uint64_t correct = 0;
};

} // namespace smthill

#endif // SMTHILL_PHASE_MARKOV_PREDICTOR_HH
