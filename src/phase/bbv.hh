/**
 * @file
 * Basic Block Vector signatures (Sherwood et al., PACT 2001),
 * Section 5: one 64-entry vector per SMT context accumulates, per
 * epoch, the number of instructions executed in each (hashed) basic
 * block. Normalized vectors are compared by Manhattan distance to
 * detect recurring phases.
 */

#ifndef SMTHILL_PHASE_BBV_HH
#define SMTHILL_PHASE_BBV_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "memory/hierarchy.hh" // kMaxThreads

namespace smthill
{

/** Entries per context in the BBV (the paper uses 64). */
inline constexpr int kBbvEntries = 64;

/** A normalized multi-context BBV signature. */
struct BbvSignature
{
    /** numThreads * kBbvEntries weights, normalized to sum 1. */
    std::vector<double> weights;

    /** @return Manhattan (L1) distance to another signature. */
    double distance(const BbvSignature &other) const;
};

/** Accumulates block execution counts during an epoch. */
class BbvAccumulator
{
  public:
    explicit BbvAccumulator(int num_threads);

    /** Credit @p insts instructions to block @p block_id of @p tid. */
    void record(ThreadId tid, std::uint32_t block_id,
                std::uint32_t insts);

    /** Extract the normalized signature and reset the counters. */
    BbvSignature harvest();

    /** Instructions accumulated since the last harvest. */
    std::uint64_t accumulated() const { return total; }

  private:
    int numThreads;
    std::vector<std::uint64_t> counts; ///< numThreads * kBbvEntries
    std::uint64_t total = 0;
};

} // namespace smthill

#endif // SMTHILL_PHASE_BBV_HH
