/**
 * @file
 * Phase classification: maps BBV signatures to stable phase IDs.
 * A new signature joins the closest stored phase if its Manhattan
 * distance is below a threshold; otherwise it founds a new phase
 * (up to 128 unique IDs, like the paper's predictor; LRU replacement
 * beyond that).
 */

#ifndef SMTHILL_PHASE_PHASE_TABLE_HH
#define SMTHILL_PHASE_PHASE_TABLE_HH

#include <cstdint>
#include <vector>

#include "phase/bbv.hh"

namespace smthill
{

/** Signature-to-phase-ID classifier. */
class PhaseTable
{
  public:
    /**
     * @param max_phases table capacity (paper: 128 unique phase IDs)
     * @param threshold Manhattan-distance match threshold; normalized
     *        BBVs differ by at most 2.0
     */
    explicit PhaseTable(int max_phases = 128, double threshold = 0.35);

    /**
     * Classify a signature: @return the ID of the matching phase,
     * creating (or recycling) an entry when nothing is close enough.
     * The matched centroid drifts toward the new signature.
     *
     * IDs are bounded by the table capacity: a recycled entry keeps
     * its ID, which from then on names the new phase. Consumers that
     * key state by phase ID (learned partitions, predictors) must
     * invalidate it when @p recycled reports the reassignment.
     *
     * @param[out] recycled if non-null, set to true when the
     *             returned ID was just recycled from an evicted phase
     * @param[out] created if non-null, set to true when the signature
     *             founded a phase (fresh entry or recycled slot)
     *             rather than matching a stored one
     */
    int classify(const BbvSignature &signature, bool *recycled = nullptr,
                 bool *created = nullptr);

    /** @return number of distinct phases currently stored. */
    int size() const { return static_cast<int>(entries.size()); }

    double threshold() const { return matchThreshold; }

  private:
    struct Entry
    {
        BbvSignature centroid;
        std::uint64_t lastUse = 0;
        int id = 0;
    };

    int maxPhases;
    double matchThreshold;
    std::vector<Entry> entries;
    std::uint64_t useClock = 0;
    int nextId = 0;
};

} // namespace smthill

#endif // SMTHILL_PHASE_PHASE_TABLE_HH
