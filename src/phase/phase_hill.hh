/**
 * @file
 * Phase-based hill climbing (Section 5): hill climbing augmented
 * with BBV phase detection and an RLE Markov phase predictor. When
 * the predictor forecasts a previously seen phase for the next
 * epoch, the learner jumps its anchor to the partitioning it had
 * learned for that phase instead of re-learning it from scratch,
 * attacking the finite-learning-time (TL) limitation.
 */

#ifndef SMTHILL_PHASE_PHASE_HILL_HH
#define SMTHILL_PHASE_PHASE_HILL_HH

#include <map>

#include "core/hill_climbing.hh"
#include "phase/bbv.hh"
#include "phase/markov_predictor.hh"
#include "phase/phase_table.hh"

namespace smthill
{

/** Hill climbing with phase-indexed partition reuse. */
class PhaseHillClimbing : public HillClimbing
{
  public:
    explicit PhaseHillClimbing(HillConfig config = HillConfig{});
    PhaseHillClimbing(const PhaseHillClimbing &other);
    PhaseHillClimbing &operator=(const PhaseHillClimbing &) = delete;

    std::string name() const override;
    void attach(SmtCpu &cpu) override;
    void epoch(SmtCpu &cpu, std::uint64_t epoch_id) override;
    void threadAttached(SmtCpu &cpu, ThreadId tid) override;
    void threadDetached(SmtCpu &cpu, ThreadId tid) override;
    std::unique_ptr<ResourcePolicy> clone() const override;

    /** @return distinct phases observed so far. */
    int phasesSeen() const { return table.size(); }

    /** @return phase-prediction accuracy so far. */
    double predictionAccuracy() const { return predictor.accuracy(); }

    /** @return how many epochs reused a stored partitioning. */
    std::uint64_t reuses() const { return reuseCount; }

    /**
     * @return the phase -> best-anchor map. Bounded by the phase
     * table's capacity: recycled phase IDs drop their stale entry.
     */
    const std::map<int, Partition> &learnedPartitions() const
    {
        return learned;
    }

    /**
     * Reuse hysteresis: a stored partitioning is only jumped to when
     * both the current and the predicted phase are *stable* — seen
     * for at least kReuseMinSeen epochs, with an average run length
     * of at least kReuseMinAvgRun epochs per occurrence. BBV noise
     * on nominally phase-free streams mints phantom phases that can
     * recur, but every occurrence lasts exactly one epoch (each
     * classification is also a transition), so their average run
     * length pins at 1 and the gate holds; genuine phases persist
     * for many epochs per visit and pass immediately. Without the
     * gate, a noise-predicted transition jumped the anchor to a
     * round-stale learned partitioning (the stage-F HILL vs
     * PHASE-HILL divergences, fuzz seeds 69/90/121).
     */
    static constexpr std::uint64_t kReuseMinSeen = 2;
    static constexpr std::uint64_t kReuseMinAvgRun = 2;

  protected:
    Partition overrideAnchor(SmtCpu &cpu, Partition next) override;

  private:
    static void branchTrampoline(void *ctx, const CommittedBranch &cb);

    /** @return true if @p phase has shown multi-epoch persistence. */
    bool phaseStable(int phase) const;

    /**
     * Forget everything phase-related. Called on open-system churn:
     * BBV signatures, the phase table, the Markov transition model,
     * and the learned partitionings all describe the *job mix* that
     * just changed — a learned partition for a departed set of jobs
     * is exactly the stale-anchor hazard the stability gate exists
     * to prevent, so the whole model restarts from scratch.
     */
    void resetPhaseState(int num_threads);

    BbvAccumulator bbv;
    PhaseTable table;
    MarkovPhasePredictor predictor;
    std::map<int, Partition> learned; ///< phase ID -> best anchor
    std::map<int, std::uint64_t> phaseEpochs; ///< epochs classified
    std::map<int, std::uint64_t> phaseRuns;   ///< maximal runs begun
    int currentPhase = -1;
    std::uint64_t reuseCount = 0;
};

} // namespace smthill

#endif // SMTHILL_PHASE_PHASE_HILL_HH
