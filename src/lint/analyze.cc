#include "lint/analyze.hh"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <tuple>

#include "common/json.hh"

namespace smthill
{
namespace lint
{

namespace
{

/** Split a path into components, normalizing separators. */
std::vector<std::string>
pathComponents(const std::string &path)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : path) {
        if (c == '/' || c == '\\') {
            if (!cur.empty() && cur != ".")
                parts.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty() && cur != ".")
        parts.push_back(cur);
    return parts;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
hasComponent(const std::vector<std::string> &parts, const char *name)
{
    return std::find(parts.begin(), parts.end(), name) != parts.end();
}

/** The module dir under `src/`, or "" if not library code. */
std::string
srcModule(const std::vector<std::string> &parts)
{
    for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
        if (parts[i] == "src")
            return parts[i + 1];
    }
    return "";
}

/** @return true if @p name is a valid `smthill.*` stat name. */
bool
statNameShaped(const std::string &name)
{
    if (name.rfind("smthill.", 0) != 0)
        return false;
    bool prevDot = false;
    for (std::size_t i = 0; i < name.size(); ++i) {
        char c = name[i];
        if (c == '.') {
            if (prevDot || i == 0 || i + 1 == name.size())
                return false;
            prevDot = true;
        } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                   c == '_') {
            prevDot = false;
        } else {
            return false;
        }
    }
    return name.find('.') != std::string::npos;
}

/** Schema identifiers (`smthill.lint.v1`) are not stat names. */
bool
versionSuffixed(const std::string &name)
{
    std::size_t dot = name.rfind('.');
    if (dot == std::string::npos || dot + 2 > name.size())
        return false;
    if (name[dot + 1] != 'v')
        return false;
    for (std::size_t i = dot + 2; i < name.size(); ++i) {
        if (name[i] < '0' || name[i] > '9')
            return false;
    }
    return dot + 2 < name.size();
}

bool
isPunct(const std::vector<Token> &toks, std::size_t i, char c)
{
    return i < toks.size() && toks[i].kind == TokKind::Punct &&
           toks[i].text.size() == 1 && toks[i].text[0] == c;
}

bool
isIdent(const std::vector<Token> &toks, std::size_t i, const char *text)
{
    return i < toks.size() && toks[i].kind == TokKind::Identifier &&
           toks[i].text == text;
}

bool
isIdentTok(const std::vector<Token> &toks, std::size_t i)
{
    return i < toks.size() && toks[i].kind == TokKind::Identifier;
}

/**
 * @return the index of the close bracket matching the open bracket at
 * @p open (one of `(`, `[`, `{`), or toks.size() when unbalanced.
 */
std::size_t
matchForward(const std::vector<Token> &toks, std::size_t open)
{
    if (open >= toks.size() || toks[open].kind != TokKind::Punct)
        return toks.size();
    char o = toks[open].text[0];
    char c = o == '(' ? ')' : o == '[' ? ']' : o == '{' ? '}' : '\0';
    if (c == '\0')
        return toks.size();
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (isPunct(toks, i, o))
            ++depth;
        else if (isPunct(toks, i, c) && --depth == 0)
            return i;
    }
    return toks.size();
}

/** Keywords that look like calls but are not callees. */
bool
isKeyword(const std::string &t)
{
    static const std::set<std::string> kw = {
        "if",        "for",       "while",    "switch",
        "return",    "catch",     "sizeof",   "alignof",
        "decltype",  "static_cast", "dynamic_cast", "reinterpret_cast",
        "const_cast", "new",      "delete",   "throw",
        "case",      "do",        "else",     "goto",
        "typeid",    "alignas",   "noexcept", "not",
        "and",       "or",        "defined",  "assert",
        "static_assert",
    };
    return kw.count(t) != 0;
}

/** Container methods that may allocate (hot-path pass). */
bool
isAllocMethod(const std::string &t)
{
    static const std::set<std::string> m = {
        "push_back", "emplace_back", "insert", "emplace",
        "resize",    "reserve",      "assign", "append",
        "push",
    };
    return m.count(t) != 0;
}

/** Methods that mutate the receiver (parallel-capture pass). */
bool
isMutatorMethod(const std::string &t)
{
    static const std::set<std::string> m = {
        "push_back", "emplace_back", "pop_back", "insert",
        "emplace",   "erase",        "clear",    "resize",
        "reserve",   "assign",       "append",   "push",
        "add",       "inc",          "set",      "record",
        "reset",
    };
    return m.count(t) != 0;
}

/** Stable finding order: file, line, rule, message. */
void
sortAnalysisFindings(std::vector<Finding> &findings)
{
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule, a.message) <
                         std::tie(b.file, b.line, b.rule, b.message);
              });
}

// ---------------------------------------------------------------------
// Phase 1: model extraction
// ---------------------------------------------------------------------

/**
 * Scan a token range for callee references and allocation-shaped
 * sites, appending to @p fn. Nested lambdas are attributed to the
 * enclosing function (they run on its behalf).
 */
void
scanBodyFacts(const std::vector<Token> &toks, std::size_t begin,
              std::size_t end, FunctionDef &fn)
{
    for (std::size_t m = begin; m < end && m < toks.size(); ++m) {
        const Token &t = toks[m];
        if (t.kind == TokKind::Identifier) {
            if (!isKeyword(t.text) && isPunct(toks, m + 1, '('))
                fn.calls.push_back({t.text, t.line});
            if (t.text == "new" && !(m > 0 && isIdent(toks, m - 1,
                                                      "operator")))
                fn.allocs.push_back({"new", t.line});
            if (t.text == "make_unique" || t.text == "make_shared")
                fn.allocs.push_back({t.text, t.line});
            if (t.text == "function" && m >= 3 &&
                isPunct(toks, m - 1, ':') && isPunct(toks, m - 2, ':') &&
                isIdent(toks, m - 3, "std"))
                fn.allocs.push_back({"std::function", t.line});
            continue;
        }
        bool dot = isPunct(toks, m, '.');
        bool arrow = isPunct(toks, m, '-') && isPunct(toks, m + 1, '>');
        std::size_t nameIdx = dot ? m + 1 : arrow ? m + 2 : toks.size();
        if (nameIdx < toks.size() && isIdentTok(toks, nameIdx) &&
            isAllocMethod(toks[nameIdx].text) &&
            isPunct(toks, nameIdx + 1, '('))
            fn.allocs.push_back(
                {toks[nameIdx].text, toks[nameIdx].line});
    }
}

/**
 * Recognize function definitions by token shape — `name(args)` plus
 * optional trailing specifiers / return arrow / constructor init
 * list, ending at `{`. Scans skip recognized bodies so statements
 * inside one function are never mistaken for nested definitions;
 * class and namespace braces are scanned through.
 */
void
extractFunctions(const ProjectModel::File &f,
                 std::vector<FunctionDef> &out)
{
    const std::vector<Token> &toks = f.lex.tokens;
    std::size_t i = 0;
    while (i < toks.size()) {
        if (!isIdentTok(toks, i) || isKeyword(toks[i].text) ||
            !isPunct(toks, i + 1, '(') ||
            (i > 0 && isPunct(toks, i - 1, '.')) ||
            (i > 1 && isPunct(toks, i - 2, '-') &&
             isPunct(toks, i - 1, '>'))) {
            ++i;
            continue;
        }
        std::size_t close = matchForward(toks, i + 1);
        if (close >= toks.size()) {
            ++i;
            continue;
        }

        std::size_t k = close + 1;
        bool isDef = false;
        std::size_t bodyOpen = 0;
        std::size_t initBegin = 0; // ctor init list, if any

        if (isPunct(toks, k, ':') && !isPunct(toks, k + 1, ':')) {
            // Constructor initializer list: runs to `{` at paren
            // depth zero, or it was something else entirely.
            initBegin = k + 1;
            int pd = 0;
            for (std::size_t m = k + 1; m < toks.size(); ++m) {
                if (isPunct(toks, m, '('))
                    ++pd;
                else if (isPunct(toks, m, ')'))
                    --pd;
                else if (pd == 0 && isPunct(toks, m, '{')) {
                    isDef = true;
                    bodyOpen = m;
                    break;
                } else if (pd == 0 && (isPunct(toks, m, ';') ||
                                       isPunct(toks, m, '}'))) {
                    break;
                }
            }
        } else {
            // Trailing `const noexcept override -> Type` before `{`;
            // anything else (`;`, `=`, an operator) is a declaration
            // or expression, not a definition.
            std::size_t m = k;
            int guard = 0;
            while (m < toks.size() && guard++ < 64) {
                const Token &t = toks[m];
                if (t.kind == TokKind::Identifier) {
                    ++m;
                    continue;
                }
                if (t.kind != TokKind::Punct)
                    break;
                char c = t.text[0];
                if (c == '{') {
                    isDef = true;
                    bodyOpen = m;
                    break;
                }
                if (c == '(') {
                    std::size_t e = matchForward(toks, m);
                    if (e >= toks.size())
                        break;
                    m = e + 1;
                    continue;
                }
                if (c == ':' || c == '<' || c == '>' || c == ',' ||
                    c == '&' || c == '*' || c == '-' || c == '[' ||
                    c == ']') {
                    ++m;
                    continue;
                }
                break;
            }
        }

        if (!isDef) {
            ++i;
            continue;
        }
        std::size_t bodyClose = matchForward(toks, bodyOpen);
        if (bodyClose >= toks.size()) {
            ++i;
            continue;
        }

        FunctionDef fn;
        fn.bare = toks[i].text;
        fn.qual = fn.bare;
        fn.file = f.path;
        fn.line = toks[i].line;
        std::size_t p = i;
        if (p > 0 && isPunct(toks, p - 1, '~'))
            --p; // destructor tilde; keep the class name
        while (p >= 3 && isPunct(toks, p - 1, ':') &&
               isPunct(toks, p - 2, ':') && isIdentTok(toks, p - 3)) {
            fn.qual = toks[p - 3].text + "::" + fn.qual;
            p -= 3;
        }
        if (initBegin != 0)
            scanBodyFacts(toks, initBegin, bodyOpen, fn);
        scanBodyFacts(toks, bodyOpen + 1, bodyClose, fn);
        out.push_back(std::move(fn));
        i = bodyClose + 1;
    }
}

/** Parse one lambda literal starting at its `[` token. */
bool
parseLambda(const std::vector<Token> &toks, std::size_t intro,
            PoolLambda &lam)
{
    std::size_t capClose = matchForward(toks, intro);
    if (capClose >= toks.size())
        return false;

    // Capture entries, split on top-level commas.
    std::vector<std::vector<std::size_t>> entries(1);
    int depth = 0;
    for (std::size_t m = intro + 1; m < capClose; ++m) {
        if (isPunct(toks, m, '(') || isPunct(toks, m, '{'))
            ++depth;
        else if (isPunct(toks, m, ')') || isPunct(toks, m, '}'))
            --depth;
        else if (depth == 0 && isPunct(toks, m, ',')) {
            entries.emplace_back();
            continue;
        }
        entries.back().push_back(m);
    }
    for (const std::vector<std::size_t> &e : entries) {
        if (e.empty())
            continue;
        if (e.size() == 1 && isPunct(toks, e[0], '&')) {
            lam.byRefDefault = true;
        } else if (e.size() == 1 && isPunct(toks, e[0], '=')) {
            lam.byValueDefault = true;
        } else if (isPunct(toks, e[0], '&') && isIdentTok(toks, e[1])) {
            lam.captures.push_back({toks[e[1]].text, true});
        } else if (isIdentTok(toks, e[0]) &&
                   toks[e[0]].text != "this") {
            lam.captures.push_back({toks[e[0]].text, false});
        } // `this` / `*this` capture the object, not a variable
    }

    // Parameter list: remember the first two names so the passes can
    // recognize index- and worker-disjoint accesses.
    std::size_t after = capClose + 1;
    if (isPunct(toks, after, '(')) {
        std::size_t pClose = matchForward(toks, after);
        if (pClose >= toks.size())
            return false;
        std::vector<std::string> names(1);
        depth = 0;
        for (std::size_t m = after + 1; m < pClose; ++m) {
            if (isPunct(toks, m, '(') || isPunct(toks, m, '<'))
                ++depth;
            else if (isPunct(toks, m, ')') || isPunct(toks, m, '>'))
                --depth;
            else if (depth == 0 && isPunct(toks, m, ','))
                names.emplace_back();
            else if (depth == 0 && isIdentTok(toks, m))
                names.back() = toks[m].text;
        }
        if (!names.empty())
            lam.indexParam = names[0];
        if (names.size() > 1)
            lam.workerParam = names[1];
        after = pClose + 1;
    }

    // Skip `mutable noexcept -> Type` to the body.
    int guard = 0;
    while (after < toks.size() && guard++ < 32 &&
           !isPunct(toks, after, '{')) {
        if (isPunct(toks, after, '(')) {
            std::size_t e = matchForward(toks, after);
            if (e >= toks.size())
                return false;
            after = e + 1;
        } else {
            ++after;
        }
    }
    if (!isPunct(toks, after, '{'))
        return false;
    std::size_t bodyClose = matchForward(toks, after);
    if (bodyClose >= toks.size())
        return false;
    lam.bodyBegin = after + 1;
    lam.bodyEnd = bodyClose;
    return true;
}

/** Lambda literals handed to pool fan-out entry points. */
void
extractPoolLambdas(const ProjectModel::File &f, std::size_t file_index,
                   std::vector<PoolLambda> &out)
{
    static const std::set<std::string> callees = {
        "parallelFor", "runGrid", "parallelForWorker", "runGridWorker",
    };
    const std::vector<Token> &toks = f.lex.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!isIdentTok(toks, i) || !callees.count(toks[i].text) ||
            !isPunct(toks, i + 1, '('))
            continue;
        std::size_t argClose = matchForward(toks, i + 1);
        if (argClose >= toks.size())
            continue;
        for (std::size_t m = i + 2; m < argClose; ++m) {
            if (!isPunct(toks, m, '[') ||
                !(isPunct(toks, m - 1, '(') || isPunct(toks, m - 1, ',')))
                continue;
            PoolLambda lam;
            lam.callee = toks[i].text;
            lam.file = f.path;
            lam.line = toks[m].line;
            lam.fileIndex = file_index;
            if (parseLambda(toks, m, lam))
                out.push_back(std::move(lam));
            break; // one lambda per call site
        }
    }
}

/** Stat registrations, lookups, and literal mentions. */
void
extractStats(const ProjectModel::File &f,
             std::map<std::string, StatUse> &stats)
{
    const std::vector<Token> &toks = f.lex.tokens;
    const bool inSrc = hasComponent(f.parts, "src");
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (isIdent(toks, i, "globalStats") && isPunct(toks, i + 1, '(') &&
            isPunct(toks, i + 2, ')') && isPunct(toks, i + 3, '.') &&
            (isIdent(toks, i + 4, "counter") ||
             isIdent(toks, i + 4, "gauge") ||
             isIdent(toks, i + 4, "distribution")) &&
            isPunct(toks, i + 5, '(') && i + 6 < toks.size() &&
            toks[i + 6].kind == TokKind::String &&
            statNameShaped(toks[i + 6].text)) {
            Site s{f.path, toks[i + 6].line};
            stats[toks[i + 6].text].lookups.push_back(s);
            if (inSrc)
                stats[toks[i + 6].text].registrations.push_back(s);
        }
        if (toks[i].kind == TokKind::String &&
            statNameShaped(toks[i].text) &&
            !versionSuffixed(toks[i].text))
            stats[toks[i].text].mentions.push_back(
                {f.path, toks[i].line});
    }
}

/** Writer/parser field sites for every schema list governing @p f. */
void
extractSchemaUses(const ProjectModel::File &f,
                  std::map<std::string, SchemaUse> &schemas)
{
    std::vector<const SchemaList *> lists;
    for (const SchemaList &s : schemaCatalog()) {
        for (const std::string &suffix : s.fileSuffixes) {
            if (endsWith(f.path, suffix)) {
                lists.push_back(&s);
                break;
            }
        }
    }
    if (lists.empty())
        return;
    const std::vector<Token> &toks = f.lex.tokens;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (!isPunct(toks, i, '.'))
            continue;
        bool write = isIdent(toks, i + 1, "set");
        bool read = isIdent(toks, i + 1, "at") ||
                    isIdent(toks, i + 1, "contains");
        if ((!write && !read) || !isPunct(toks, i + 2, '(') ||
            toks[i + 3].kind != TokKind::String)
            continue;
        const Token &arg = toks[i + 3];
        for (const SchemaList *s : lists) {
            if (!s->fields.count(arg.text))
                continue; // off-list literal: the lint rule's finding
            SchemaUse &use = schemas[s->name];
            (write ? use.written : use.parsed)[arg.text].push_back(
                {f.path, arg.line});
        }
    }
}

/**
 * Event (cat, name) literals at EventTrace emission sites in src/ and
 * bench/. A name built as `"prefix" + expr` records as "prefix*".
 */
void
extractEmittedEvents(const ProjectModel::File &f,
                     std::map<std::string, std::vector<Site>> &emitted)
{
    if (!hasComponent(f.parts, "src") && !hasComponent(f.parts, "bench"))
        return;
    const std::vector<Token> &toks = f.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        bool dot = isPunct(toks, i, '.');
        bool arrow = isPunct(toks, i, '-') && isPunct(toks, i + 1, '>');
        if (!dot && !arrow)
            continue;
        std::size_t nameIdx = dot ? i + 1 : i + 2;
        if (!isIdentTok(toks, nameIdx))
            continue;
        const std::string &kind = toks[nameIdx].text;
        if (kind != "instant" && kind != "complete" && kind != "counter")
            continue;
        if (!isPunct(toks, nameIdx + 1, '('))
            continue;
        // `globalStats().counter("...")` is a stat, not an event.
        if (dot && i >= 3 && isPunct(toks, i - 1, ')') &&
            isPunct(toks, i - 2, '(') &&
            isIdent(toks, i - 3, "globalStats"))
            continue;
        std::size_t open = nameIdx + 1;
        std::size_t close = matchForward(toks, open);
        if (close >= toks.size())
            continue;

        // Top-level string arguments in order, with concatenation
        // direction so computed names keep their literal prefix.
        struct Arg
        {
            std::string text;
            int line;
            bool plusBefore;
            bool plusAfter;
        };
        std::vector<Arg> strs;
        int depth = 0;
        for (std::size_t m = open + 1; m < close; ++m) {
            if (isPunct(toks, m, '(') || isPunct(toks, m, '[') ||
                isPunct(toks, m, '{'))
                ++depth;
            else if (isPunct(toks, m, ')') || isPunct(toks, m, ']') ||
                     isPunct(toks, m, '}'))
                --depth;
            else if (depth == 0 && toks[m].kind == TokKind::String)
                strs.push_back({toks[m].text, toks[m].line,
                                isPunct(toks, m - 1, '+'),
                                isPunct(toks, m + 1, '+')});
        }
        std::size_t slot = kind == "counter" ? 0 : 1;
        if (strs.size() <= slot)
            continue; // fully computed name: not statically checkable
        const Arg &a = strs[slot];
        if (a.plusBefore)
            continue; // literal is a suffix; no stable prefix to match
        std::string name = a.text + (a.plusAfter ? "*" : "");
        emitted[name].push_back({f.path, a.line});
    }
}

/** `kKnownEventNames` catalog entries wherever the table is defined. */
void
extractKnownEvents(const ProjectModel::File &f,
                   std::map<std::string, Site> &known)
{
    const std::vector<Token> &toks = f.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!isIdent(toks, i, "kKnownEventNames"))
            continue;
        for (std::size_t m = i + 1;
             m < toks.size() && !isPunct(toks, m, ';'); ++m) {
            if (toks[m].kind == TokKind::String &&
                !known.count(toks[m].text))
                known[toks[m].text] = {f.path, toks[m].line};
        }
    }
}

// ---------------------------------------------------------------------
// Phase 2: passes
// ---------------------------------------------------------------------

/** Routes pass findings through the suppression machinery. */
class PassReporter
{
  public:
    PassReporter(ProjectModel &project_model,
                 std::vector<Finding> &findings_out)
        : model(project_model), findings(findings_out)
    {
        for (std::size_t i = 0; i < model.files.size(); ++i)
            index[model.files[i].path] = i;
    }

    void
    report(const std::string &pass, const std::string &file, int line,
           const std::string &message)
    {
        auto it = index.find(file);
        if (it != index.end()) {
            const LexedFile &lex = model.files[it->second].lex;
            int allowLine = lex.allowLineFor(pass, line);
            if (allowLine != 0) {
                model.audit.recordUse(file, allowLine, pass);
                return;
            }
        }
        findings.push_back({pass, file, line, message});
    }

  private:
    ProjectModel &model;
    std::map<std::string, std::size_t> index;
    std::vector<Finding> &findings;
};

/**
 * parallel-capture: a by-reference capture mutated inside a pool
 * lambda races across workers unless every access is disjoint by the
 * index/worker parameter, the target is atomic (or a StatCounter /
 * StatGauge, which are atomic by construction), or the body takes a
 * lock.
 */
void
passParallelCapture(ProjectModel &model, PassReporter &rep)
{
    for (const PoolLambda &lam : model.poolLambdas) {
        const std::vector<Token> &toks =
            model.files[lam.fileIndex].lex.tokens;

        bool locked = false;
        for (std::size_t m = lam.bodyBegin; m < lam.bodyEnd; ++m) {
            if (isIdent(toks, m, "lock_guard") ||
                isIdent(toks, m, "unique_lock") ||
                isIdent(toks, m, "scoped_lock"))
                locked = true;
        }
        if (locked)
            continue;

        // Locals declared in the body shadow or replace captures.
        std::set<std::string> locals;
        if (!lam.indexParam.empty())
            locals.insert(lam.indexParam);
        if (!lam.workerParam.empty())
            locals.insert(lam.workerParam);
        for (std::size_t m = lam.bodyBegin; m < lam.bodyEnd; ++m) {
            if (!isIdentTok(toks, m) || isKeyword(toks[m].text))
                continue;
            bool prevOK =
                m > 0 && (isIdentTok(toks, m - 1) ||
                          isPunct(toks, m - 1, '&') ||
                          isPunct(toks, m - 1, '*') ||
                          isPunct(toks, m - 1, '>'));
            bool nextOK = isPunct(toks, m + 1, '=') ||
                          isPunct(toks, m + 1, ';') ||
                          isPunct(toks, m + 1, '{') ||
                          isPunct(toks, m + 1, ':') ||
                          (isPunct(toks, m + 1, '(') &&
                           isIdentTok(toks, m - 1));
            if (prevOK && nextOK)
                locals.insert(toks[m].text);
        }

        // Declaration-proximity atomics: `std::atomic<int> hits`,
        // `StatCounter &c`. Checked against the whole file so the
        // declaration may sit outside the lambda.
        std::map<std::string, bool> atomicMemo;
        auto isAtomicName = [&](const std::string &v) {
            auto memo = atomicMemo.find(v);
            if (memo != atomicMemo.end())
                return memo->second;
            bool found = false;
            for (std::size_t m = 0; m < toks.size() && !found; ++m) {
                if (!isIdentTok(toks, m) || toks[m].text != v)
                    continue;
                std::size_t lo = m >= 8 ? m - 8 : 0;
                for (std::size_t r = lo; r < m; ++r) {
                    if (isIdentTok(toks, r) &&
                        (toks[r].text.rfind("atomic", 0) == 0 ||
                         toks[r].text == "StatCounter" ||
                         toks[r].text == "StatGauge")) {
                        found = true;
                        break;
                    }
                }
            }
            atomicMemo[v] = found;
            return found;
        };

        std::set<std::string> flagged;
        for (std::size_t m = lam.bodyBegin; m < lam.bodyEnd; ++m) {
            if (!isIdentTok(toks, m) || isKeyword(toks[m].text))
                continue;
            // `row.field = x` mutates through `row`; the field name
            // is not a variable of its own.
            if (m > 0 && (isPunct(toks, m - 1, '.') ||
                          (m > 1 && isPunct(toks, m - 2, '-') &&
                           isPunct(toks, m - 1, '>'))))
                continue;
            const std::string &v = toks[m].text;
            if (locals.count(v) || flagged.count(v))
                continue;
            bool byRef = lam.byRefDefault;
            for (const Capture &cap : lam.captures) {
                if (cap.name == v) {
                    byRef = cap.byRef;
                    break;
                }
            }
            if (!byRef)
                continue;

            bool mutation = false;
            bool disjoint = false;
            std::string how = "assignment";
            // Prefix increment/decrement.
            if (m >= 2 && ((isPunct(toks, m - 2, '+') &&
                            isPunct(toks, m - 1, '+')) ||
                           (isPunct(toks, m - 2, '-') &&
                            isPunct(toks, m - 1, '-')))) {
                mutation = true;
                how = "increment";
            }
            // Walk the access chain: subscripts, member accesses.
            std::size_t q = m + 1;
            bool viaPointer = false;
            while (!mutation && q < lam.bodyEnd) {
                if (isPunct(toks, q, '[')) {
                    std::size_t e = matchForward(toks, q);
                    if (e >= toks.size())
                        break;
                    for (std::size_t r = q + 1; r < e; ++r) {
                        if (isIdentTok(toks, r) &&
                            ((!lam.indexParam.empty() &&
                              toks[r].text == lam.indexParam) ||
                             (!lam.workerParam.empty() &&
                              toks[r].text == lam.workerParam)))
                            disjoint = true;
                    }
                    q = e + 1;
                    continue;
                }
                if (isPunct(toks, q, '.') && isIdentTok(toks, q + 1)) {
                    if (isMutatorMethod(toks[q + 1].text) &&
                        isPunct(toks, q + 2, '(')) {
                        mutation = true;
                        how = "." + toks[q + 1].text + "()";
                        break;
                    }
                    q += 2;
                    continue;
                }
                if (isPunct(toks, q, '-') && isPunct(toks, q + 1, '>')) {
                    viaPointer = true; // pointee, not the capture
                    break;
                }
                break;
            }
            if (viaPointer)
                continue;
            if (!mutation && q < lam.bodyEnd) {
                if (isPunct(toks, q, '=') && !isPunct(toks, q + 1, '=')) {
                    mutation = true;
                } else if ((isPunct(toks, q, '+') ||
                            isPunct(toks, q, '-')) &&
                           toks[q].text == toks[q + 1].text) {
                    mutation = true; // postfix ++/--
                    how = "increment";
                } else {
                    static const std::string ops = "+-*/%&|^";
                    if (toks[q].kind == TokKind::Punct &&
                        ops.find(toks[q].text[0]) != std::string::npos &&
                        isPunct(toks, q + 1, '=') &&
                        !isPunct(toks, q + 2, '=')) {
                        mutation = true;
                        how = "compound assignment";
                    } else if ((isPunct(toks, q, '<') ||
                                isPunct(toks, q, '>')) &&
                               toks[q].text == toks[q + 1].text &&
                               isPunct(toks, q + 2, '=')) {
                        mutation = true;
                        how = "shift assignment";
                    }
                }
            }
            if (!mutation || disjoint || isAtomicName(v))
                continue;
            flagged.insert(v);
            rep.report(
                "parallel-capture", lam.file, toks[m].line,
                "'" + v + "' is captured by reference and mutated (" +
                    how + ") inside a " + lam.callee +
                    " lambda without index-disjoint access, atomics, "
                    "or a lock; concurrent workers race on it");
        }
    }
}

/** Match an emitted event name against a catalog entry. */
bool
eventMatches(const std::string &emitted, const std::string &entry)
{
    if (emitted == entry)
        return true;
    if (!entry.empty() && entry.back() == '*') {
        std::string prefix = entry.substr(0, entry.size() - 1);
        std::string name = emitted;
        if (!name.empty() && name.back() == '*')
            name.pop_back();
        return name.rfind(prefix, 0) == 0;
    }
    return false;
}

void
passCrossTuConsistency(ProjectModel &model, PassReporter &rep)
{
    // Stats: every counter registered by src/ earns its memory by
    // being read somewhere else; every lookup outside src/ must name
    // a registered stat.
    for (const auto &[name, use] : model.stats) {
        if (!use.registrations.empty()) {
            const Site &reg = use.registrations.front();
            bool referenced = false;
            for (const Site &s : use.mentions) {
                if (s.file != reg.file)
                    referenced = true;
            }
            if (!referenced)
                rep.report("cross-tu-consistency", reg.file, reg.line,
                           "stat \"" + name +
                               "\" is registered but never read "
                               "outside " + reg.file +
                               "; assert on it in a test, export it "
                               "in a tool, or drop the counter");
        } else {
            for (const Site &s : use.lookups)
                rep.report("cross-tu-consistency", s.file, s.line,
                           "stat \"" + name +
                               "\" is looked up here but never "
                               "registered by src/; rename to a "
                               "registered stat or register it");
        }
    }

    // Schemas: written/parsed/listed field sets must agree wherever
    // the catalog names both a writer and a parser.
    for (const SchemaList &sl : schemaCatalog()) {
        static const SchemaUse kEmpty;
        auto it = model.schemas.find(sl.name);
        const SchemaUse &use =
            it == model.schemas.end() ? kEmpty : it->second;
        bool hasWriter = !use.written.empty();
        bool hasParser = !use.parsed.empty();

        // Write/parse symmetry is a cross-TU property: it only means
        // something when a reader lives in a different file than the
        // writers (and vice versa). A single file that writes and
        // partially reads back its own document is self-consistent by
        // construction.
        std::set<std::string> writerFiles, parserFiles;
        for (const auto &[field, sites] : use.written) {
            for (const Site &s : sites)
                writerFiles.insert(s.file);
        }
        for (const auto &[field, sites] : use.parsed) {
            for (const Site &s : sites)
                parserFiles.insert(s.file);
        }
        bool distinctReader = false, distinctWriter = false;
        for (const std::string &f : parserFiles) {
            if (!writerFiles.count(f))
                distinctReader = true;
        }
        for (const std::string &f : writerFiles) {
            if (!parserFiles.count(f))
                distinctWriter = true;
        }

        // Dead listed fields anchor at the catalog entry itself.
        Site anchor;
        for (const ProjectModel::File &f : model.files) {
            if (!endsWith(f.path, "lint/lint.cc"))
                continue;
            for (const Token &t : f.lex.tokens) {
                if (t.kind == TokKind::String && t.text == sl.name) {
                    anchor = {f.path, t.line};
                    break;
                }
            }
            break;
        }

        for (const std::string &field : sl.fields) {
            bool w = use.written.count(field) != 0;
            bool p = use.parsed.count(field) != 0;
            if (!w && !p && (hasWriter || hasParser) &&
                anchor.line != 0) {
                rep.report("cross-tu-consistency", anchor.file,
                           anchor.line,
                           "schema " + sl.name + " lists field \"" +
                               field +
                               "\" but no governed file writes or "
                               "parses it; drop it from the list in "
                               "lint/lint.cc");
            } else if (w && !p && distinctReader) {
                rep.report("cross-tu-consistency",
                           use.written.at(field).front().file,
                           use.written.at(field).front().line,
                           "schema " + sl.name + " field \"" + field +
                               "\" is written here but never parsed "
                               "by the schema's reader; parse it or "
                               "drop the writer");
            } else if (p && !w && distinctWriter) {
                rep.report("cross-tu-consistency",
                           use.parsed.at(field).front().file,
                           use.parsed.at(field).front().line,
                           "schema " + sl.name + " field \"" + field +
                               "\" is parsed here but never written "
                               "by the schema's writer; dead reader "
                               "or missing writer");
            }
        }
    }

    // Events: everything the simulator emits must be catalogued in
    // kKnownEventNames (smthill_trace_report buckets strays), and
    // every catalog entry must still match an emitted event.
    for (const auto &[name, sites] : model.emittedEvents) {
        bool matched = false;
        for (const auto &[entry, site] : model.knownEventNames) {
            if (eventMatches(name, entry))
                matched = true;
        }
        if (!matched)
            rep.report("cross-tu-consistency", sites.front().file,
                       sites.front().line,
                       "event \"" + name +
                           "\" is emitted but missing from "
                           "kKnownEventNames (tools/"
                           "smthill_trace_report.cc); the trace "
                           "report would bucket it as unknown");
    }
    for (const auto &[entry, site] : model.knownEventNames) {
        bool used = false;
        for (const auto &[name, sites] : model.emittedEvents) {
            if (eventMatches(name, entry))
                used = true;
        }
        if (!used)
            rep.report("cross-tu-consistency", site.file, site.line,
                       "kKnownEventNames entry \"" + entry +
                           "\" matches no emitted event; stale after "
                           "a rename?");
    }
}

/**
 * hot-path-allocation: walk the name-matched call graph from the
 * per-cycle/per-trial roots and flag allocation-shaped sites in
 * reachable functions. The domain is library code minus the
 * offline/tooling modules (lint, validate, harness) and minus the
 * logging/trace/stat/JSON plumbing, whose costs are init-time or
 * gated off the measured path.
 */
void
passHotPathAllocation(ProjectModel &model, PassReporter &rep)
{
    auto inDomain = [](const FunctionDef &fn) {
        std::vector<std::string> parts = pathComponents(fn.file);
        if (!hasComponent(parts, "src"))
            return false;
        std::string mod = srcModule(parts);
        if (mod == "lint" || mod == "validate" || mod == "harness")
            return false;
        static const std::vector<std::string> plumbing = {
            "common/json.hh",          "common/json.cc",
            "common/log.hh",           "common/log.cc",
            "common/event_trace.hh",   "common/event_trace.cc",
            "common/stat_registry.hh", "common/stat_registry.cc",
            "common/profile.hh",       "common/profile.cc",
            "common/stat_snapshot.hh", "common/stat_snapshot.cc",
        };
        for (const std::string &suffix : plumbing) {
            if (endsWith(fn.file, suffix))
                return false;
        }
        return true;
    };

    std::map<std::string, std::vector<std::size_t>> byBare;
    for (std::size_t i = 0; i < model.functions.size(); ++i) {
        if (inDomain(model.functions[i]))
            byBare[model.functions[i].bare].push_back(i);
    }

    std::vector<std::size_t> queue;
    std::map<std::size_t, std::size_t> parent; // child -> caller
    std::set<std::size_t> visited;
    for (std::size_t i = 0; i < model.functions.size(); ++i) {
        const FunctionDef &fn = model.functions[i];
        if (!inDomain(fn))
            continue;
        if (fn.qual == "SmtCpu::step" || fn.qual == "SmtCpu::run" ||
            fn.bare == "runTrialEpoch") {
            queue.push_back(i);
            visited.insert(i);
        }
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
        std::size_t cur = queue[head];
        const std::string &callerFile = model.functions[cur].file;
        for (const CallRef &call : model.functions[cur].calls) {
            auto targets = byBare.find(call.name);
            if (targets == byBare.end())
                continue;
            // A bare name defined in several files is ambiguous
            // (generic method names like `run`); following every
            // candidate would mark half the library reachable. Such
            // calls resolve only within the caller's own file; a
            // project-unique name resolves anywhere.
            std::set<std::string> defFiles;
            for (std::size_t t : targets->second)
                defFiles.insert(model.functions[t].file);
            bool ambiguous = defFiles.size() > 1;
            for (std::size_t t : targets->second) {
                if (visited.count(t))
                    continue;
                if (ambiguous &&
                    model.functions[t].file != callerFile)
                    continue;
                visited.insert(t);
                parent[t] = cur;
                queue.push_back(t);
            }
        }
    }

    for (std::size_t i : queue) {
        const FunctionDef &fn = model.functions[i];
        if (fn.allocs.empty())
            continue;
        // Root -> ... -> fn chain for the message.
        std::vector<std::string> chain{fn.qual};
        std::size_t cur = i;
        int guard = 0;
        while (parent.count(cur) && guard++ < 32) {
            cur = parent.at(cur);
            chain.push_back(model.functions[cur].qual);
        }
        std::reverse(chain.begin(), chain.end());
        std::string via;
        for (std::size_t c = 0; c < chain.size(); ++c)
            via += (c == 0 ? "" : " -> ") + chain[c];
        for (const AllocSite &alloc : fn.allocs) {
            rep.report("hot-path-allocation", fn.file, alloc.line,
                       "'" + alloc.what + "' in " + fn.qual +
                           " allocates or grows on the per-cycle/"
                           "per-trial path (" + via +
                           "); preallocate, reserve, or hoist out of "
                           "the loop");
        }
    }
}

/**
 * stale-suppression: an allow marker that suppressed nothing across
 * the lint rules and the analyzer passes is dead weight — usually a
 * leftover from code that moved — and hides future regressions on
 * its line. Must run after every other pass has recorded its uses.
 */
void
passStaleSuppression(ProjectModel &model, PassReporter &rep)
{
    for (const auto &[file, lines] : model.audit.allows) {
        auto usedIt = model.audit.used.find(file);
        static const std::set<std::pair<int, std::string>> kNoUses;
        const auto &used =
            usedIt == model.audit.used.end() ? kNoUses : usedIt->second;
        for (const auto &[line, rules] : lines) {
            for (const std::string &rule : rules) {
                if (used.count({line, rule}))
                    continue;
                rep.report("stale-suppression", file, line,
                           "allow(" + rule +
                               ") suppresses no " + rule +
                               " finding on this or the next line; "
                               "delete the stale marker");
            }
        }
    }
}

} // namespace

std::vector<std::string>
passNames()
{
    return {
        "parallel-capture",
        "cross-tu-consistency",
        "hot-path-allocation",
        "stale-suppression",
    };
}

ProjectModel
buildProjectModel(const std::vector<SourceUnit> &units)
{
    ProjectModel model;
    // The lint-rule run seeds the suppression audit: which markers
    // exist, and which already earn their keep against lint rules.
    lintUnits(units, &model.audit);

    model.files.reserve(units.size());
    for (const auto &[path, content] : units)
        model.files.push_back(
            {path, pathComponents(path), lexFile(content)});

    for (std::size_t i = 0; i < model.files.size(); ++i) {
        const ProjectModel::File &f = model.files[i];
        extractFunctions(f, model.functions);
        extractPoolLambdas(f, i, model.poolLambdas);
        extractStats(f, model.stats);
        extractSchemaUses(f, model.schemas);
        extractEmittedEvents(f, model.emittedEvents);
        extractKnownEvents(f, model.knownEventNames);
    }
    return model;
}

std::vector<Finding>
runAnalysisPasses(ProjectModel &model)
{
    std::vector<Finding> findings;
    PassReporter rep(model, findings);
    passParallelCapture(model, rep);
    passCrossTuConsistency(model, rep);
    passHotPathAllocation(model, rep);
    passStaleSuppression(model, rep); // last: consumes remaining uses
    sortAnalysisFindings(findings);
    return findings;
}

std::vector<Finding>
analyzeUnits(const std::vector<SourceUnit> &units)
{
    ProjectModel model = buildProjectModel(units);
    return runAnalysisPasses(model);
}

std::vector<Finding>
analyzePaths(const std::vector<std::string> &paths, std::string &error)
{
    std::vector<std::string> files;
    if (!collectSourceFiles(paths, files, error))
        return {};

    std::vector<SourceUnit> units;
    units.reserve(files.size());
    for (const std::string &file : files) {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            error = file + ": cannot read";
            return {};
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        units.emplace_back(file, buf.str());
    }
    return analyzeUnits(units);
}

Json
analysisToJson(const std::vector<Finding> &findings)
{
    Json root = findingsToJson(findings);
    root.set("tool", Json("smthill_analyze"));
    Json passes = Json::array();
    for (const std::string &p : passNames())
        passes.push(Json(p));
    root.set("passes", std::move(passes));
    return root;
}

} // namespace lint
} // namespace smthill
