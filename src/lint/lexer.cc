#include "lint/lexer.hh"

#include <cctype>

namespace smthill
{
namespace lint
{

namespace
{

/**
 * Scan @p comment for `smthill-lint: allow(a, b)` and record the
 * allowed rule names for every line in [first_line, last_line].
 *
 * The marker must open the comment (only comment punctuation and
 * whitespace may precede it), so prose that merely *mentions* the
 * suppression syntax — doc comments quoting
 * `smthill-lint: allow(<rule>)` mid-sentence — never registers a
 * suppression. Without this, every documentation mention would be a
 * dead allow for the stale-suppression pass to flag.
 */
void
recordAllows(const std::string &comment, int first_line, int last_line,
             std::map<int, std::set<std::string>> &allows)
{
    const std::string marker = "smthill-lint:";
    std::size_t pos = comment.find(marker);
    if (pos == std::string::npos)
        return;
    for (std::size_t i = 0; i < pos; ++i) {
        char c = comment[i];
        if (c != '/' && c != '*' && c != '!' &&
            !std::isspace(static_cast<unsigned char>(c)))
            return; // marker quoted mid-comment, not a suppression
    }
    pos = comment.find("allow", pos + marker.size());
    if (pos == std::string::npos)
        return;
    std::size_t open = comment.find('(', pos);
    if (open == std::string::npos)
        return;
    std::size_t close = comment.find(')', open);
    if (close == std::string::npos)
        return;

    std::set<std::string> rules;
    std::string name;
    for (std::size_t i = open + 1; i <= close; ++i) {
        char c = comment[i];
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
            c == '_') {
            name.push_back(c);
        } else if (!name.empty()) {
            rules.insert(name);
            name.clear();
        }
    }
    for (int line = first_line; line <= last_line; ++line)
        allows[line].insert(rules.begin(), rules.end());
}

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

} // namespace

bool
LexedFile::suppressed(const std::string &rule, int line) const
{
    return allowLineFor(rule, line) != 0;
}

int
LexedFile::allowLineFor(const std::string &rule, int line) const
{
    for (int l : {line, line - 1}) {
        auto it = allows.find(l);
        if (it != allows.end() && it->second.count(rule))
            return l;
    }
    return 0;
}

LexedFile
lexFile(const std::string &content)
{
    LexedFile out;
    const std::size_t n = content.size();
    std::size_t i = 0;
    int line = 1;
    bool atLineStart = true;

    auto advance = [&](char c) {
        if (c == '\n') {
            ++line;
            atLineStart = true;
        }
    };

    while (i < n) {
        char c = content[i];

        if (c == '\n') {
            advance(c);
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Preprocessor directive: consume the logical line, joining
        // backslash continuations, and emit one Directive token.
        if (c == '#' && atLineStart) {
            int startLine = line;
            std::string text;
            while (i < n) {
                char d = content[i];
                if (d == '\\' && i + 1 < n && content[i + 1] == '\n') {
                    text.push_back(' ');
                    advance('\n');
                    i += 2;
                    continue;
                }
                if (d == '\n')
                    break;
                text.push_back(d);
                ++i;
            }
            out.tokens.push_back({TokKind::Directive, text, startLine});
            continue;
        }
        atLineStart = false;

        // Line comment; may carry a suppression marker.
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
            std::size_t end = content.find('\n', i);
            if (end == std::string::npos)
                end = n;
            recordAllows(content.substr(i, end - i), line, line,
                         out.allows);
            i = end;
            continue;
        }

        // Block comment; marks every spanned line.
        if (c == '/' && i + 1 < n && content[i + 1] == '*') {
            int startLine = line;
            std::size_t end = content.find("*/", i + 2);
            if (end == std::string::npos)
                end = n;
            else
                end += 2;
            std::string body = content.substr(i, end - i);
            for (char d : body)
                advance(d);
            recordAllows(body, startLine, line, out.allows);
            i = end;
            continue;
        }

        // Raw string literal (plain R"( ... )" delimiters only).
        if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
            std::size_t open = content.find('(', i + 2);
            std::string delim =
                open == std::string::npos
                    ? std::string()
                    : content.substr(i + 2, open - (i + 2));
            std::string closer = ")" + delim + "\"";
            std::size_t end = open == std::string::npos
                                  ? std::string::npos
                                  : content.find(closer, open + 1);
            int startLine = line;
            if (end == std::string::npos) {
                end = n;
            } else {
                end += closer.size();
            }
            std::string inner;
            if (open != std::string::npos && end <= n &&
                end >= closer.size() && open + 1 <= end - closer.size())
                inner = content.substr(open + 1,
                                       end - closer.size() - (open + 1));
            for (std::size_t k = i; k < end; ++k)
                advance(content[k]);
            out.tokens.push_back({TokKind::String, inner, startLine});
            i = end;
            continue;
        }

        // String / char literal with backslash escapes.
        if (c == '"' || c == '\'') {
            char quote = c;
            int startLine = line;
            std::string inner;
            ++i;
            while (i < n) {
                char d = content[i];
                if (d == '\\' && i + 1 < n) {
                    inner.push_back(d);
                    inner.push_back(content[i + 1]);
                    advance(content[i + 1]);
                    i += 2;
                    continue;
                }
                if (d == quote) {
                    ++i;
                    break;
                }
                inner.push_back(d);
                advance(d);
                ++i;
            }
            out.tokens.push_back({quote == '"' ? TokKind::String
                                               : TokKind::CharLit,
                                  inner, startLine});
            continue;
        }

        if (isIdentStart(c)) {
            std::size_t start = i;
            while (i < n && isIdentChar(content[i]))
                ++i;
            out.tokens.push_back({TokKind::Identifier,
                                  content.substr(start, i - start), line});
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            // Preprocessing number: digits, idents, quotes-as-digit
            // separators, and exponent signs.
            std::size_t start = i;
            while (i < n) {
                char d = content[i];
                if (isIdentChar(d) || d == '.' || d == '\'') {
                    ++i;
                } else if ((d == '+' || d == '-') && i > start &&
                           (content[i - 1] == 'e' ||
                            content[i - 1] == 'E' ||
                            content[i - 1] == 'p' ||
                            content[i - 1] == 'P')) {
                    ++i;
                } else {
                    break;
                }
            }
            out.tokens.push_back({TokKind::Number,
                                  content.substr(start, i - start), line});
            continue;
        }

        out.tokens.push_back({TokKind::Punct, std::string(1, c), line});
        ++i;
    }

    out.numLines = line;
    return out;
}

} // namespace lint
} // namespace smthill
