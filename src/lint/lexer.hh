/**
 * @file
 * Lightweight C++ lexer for the project linter (lint/lint.hh).
 *
 * This is not a compiler front end: it splits a source file into the
 * token classes the lint rules need — identifiers, literals,
 * punctuation, and whole preprocessor directives — while stripping
 * comments and recording `// smthill-lint: allow(<rule>)` suppression
 * markers with their line spans. Rules then pattern-match over the
 * token stream without ever confusing a keyword in a comment or a
 * string literal for real code.
 */

#ifndef SMTHILL_LINT_LEXER_HH
#define SMTHILL_LINT_LEXER_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace smthill
{
namespace lint
{

/** Token classes the rules distinguish. */
enum class TokKind
{
    Identifier, ///< identifiers and keywords
    Number,     ///< preprocessing numbers
    String,     ///< string literal; text is the raw inner bytes
    CharLit,    ///< character literal; text is the raw inner bytes
    Punct,      ///< one punctuation character per token
    Directive   ///< full preprocessor line, continuations joined
};

/** One lexed token with its 1-based source line. */
struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    int line = 0;
};

/** A lexed file: token stream plus suppression markers. */
struct LexedFile
{
    std::vector<Token> tokens;

    /**
     * Lines carrying `smthill-lint: allow(<rule>[, <rule>...])`
     * comments, mapped to the rule names they allow. A block comment
     * marks every line it spans.
     */
    std::map<int, std::set<std::string>> allows;

    /** Number of source lines (for bounds in diagnostics). */
    int numLines = 0;

    /**
     * @return true if a finding of @p rule on @p line is suppressed
     * by an allow marker on the same line or the line above.
     */
    bool suppressed(const std::string &rule, int line) const;

    /**
     * @return the line of the allow marker that suppresses a finding
     * of @p rule on @p line (the line itself or the line above), or
     * 0 when no marker applies. The stale-suppression analyzer pass
     * uses this to credit the exact marker a finding consumed.
     */
    int allowLineFor(const std::string &rule, int line) const;
};

/** Lex @p content (one file's bytes) into tokens and markers. */
LexedFile lexFile(const std::string &content);

} // namespace lint
} // namespace smthill

#endif // SMTHILL_LINT_LEXER_HH
